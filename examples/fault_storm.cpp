/**
 * @file
 * Fault storm: a long-running soft/hard error campaign comparing
 * three protection schemes on the same bank geometry —
 *
 *   1. conventional SECDED + 4-way interleaving,
 *   2. conventional OECNED + 4-way interleaving,
 *   3. 2D coding (EDC8+Intv4 horizontal, EDC32 vertical),
 *
 * under a mixed error process: mostly single-bit upsets, occasional
 * multi-bit clusters, rare row failures, plus a few manufacture-time
 * stuck-at cells. A background scrub runs periodically, as in real
 * systems. The output is the count of survived vs lost events.
 *
 * Run: ./build/examples/fault_storm [events] [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "array/fault.hh"
#include "array/protected_array.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/twod_array.hh"

using namespace tdc;

namespace
{

struct Tally
{
    int survived = 0;
    int detectedLoss = 0;
    int silentLoss = 0;
};

/** Draw one fault event from the mixed error process. */
enum class StormEvent
{
    kSingleBit,
    kSmallCluster, // 4x2
    kBigCluster,   // 24x16
    kRowFailure,
};

StormEvent
drawEvent(Rng &rng)
{
    const double p = rng.nextDouble();
    if (p < 0.80)
        return StormEvent::kSingleBit;
    if (p < 0.93)
        return StormEvent::kSmallCluster;
    if (p < 0.99)
        return StormEvent::kBigCluster;
    return StormEvent::kRowFailure;
}

void
injectEvent(MemoryArray &cells, StormEvent ev, FaultInjector &inj,
            Rng &rng)
{
    switch (ev) {
      case StormEvent::kSingleBit:
        inj.injectSingleBit(cells);
        break;
      case StormEvent::kSmallCluster:
        inj.injectCluster(cells, 4, 2);
        break;
      case StormEvent::kBigCluster:
        inj.injectCluster(cells, 24, 16);
        break;
      case StormEvent::kRowFailure:
        inj.injectFullRow(cells, rng.nextBelow(cells.rows()));
        break;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const int events = argc > 1 ? std::atoi(argv[1]) : 300;
    const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                   : 20260612;

    std::printf("fault storm: %d error events, seed %llu\n\n", events,
                (unsigned long long)seed);

    Tally conv_secded, conv_oecned, twod;

    // --- Scheme 1 & 2: conventional arrays --------------------------
    for (auto [kind, tally] :
         {std::pair<CodeKind, Tally *>{CodeKind::kSecDed, &conv_secded},
          std::pair<CodeKind, Tally *>{CodeKind::kOecNed,
                                       &conv_oecned}}) {
        Rng rng(seed);
        ProtectedArray arr(256, makeCode(kind, 64), 4);
        std::vector<std::vector<BitVector>> golden(
            arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                golden[r][s] = BitVector(64, rng.next());
                arr.writeWord(r, s, golden[r][s]);
            }
        FaultInjector inj(rng);
        for (int e = 0; e < events; ++e) {
            injectEvent(arr.cells(), drawEvent(rng), inj, rng);
            // Scrub: read every word; in-line correction repairs what
            // the code can.
            bool any_detect = false, any_silent = false;
            for (size_t r = 0; r < arr.rows(); ++r) {
                for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                    AccessResult res = arr.readWord(r, s);
                    if (!res.ok())
                        any_detect = true;
                    else if (res.data != golden[r][s])
                        any_silent = true;
                }
            }
            if (any_silent)
                ++tally->silentLoss;
            else if (any_detect)
                ++tally->detectedLoss;
            else
                ++tally->survived;
            // A lost bank would be re-initialized from a higher level;
            // restore it so events stay independent.
            if (any_detect || any_silent) {
                for (size_t r = 0; r < arr.rows(); ++r)
                    for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                        arr.writeWord(r, s, golden[r][s]);
            }
        }
    }

    // --- Scheme 3: 2D coding ----------------------------------------
    {
        Rng rng(seed);
        TwoDimArray arr(TwoDimConfig::l1Default());
        std::vector<std::vector<BitVector>> golden(
            arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                golden[r][s] = BitVector(64, rng.next());
                arr.writeWord(r, s, golden[r][s]);
            }
        FaultInjector inj(rng);
        for (int e = 0; e < events; ++e) {
            injectEvent(arr.cells(), drawEvent(rng), inj, rng);
            const bool recovered = arr.scrub();
            bool any_silent = false, any_detect = !recovered;
            for (size_t r = 0; r < arr.rows(); ++r) {
                for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                    AccessResult res = arr.readWord(r, s);
                    if (!res.ok())
                        any_detect = true;
                    else if (res.data != golden[r][s])
                        any_silent = true;
                }
            }
            if (any_silent)
                ++twod.silentLoss;
            else if (any_detect)
                ++twod.detectedLoss;
            else
                ++twod.survived;
            if (any_detect || any_silent) {
                for (size_t r = 0; r < arr.rows(); ++r)
                    for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                        arr.writeWord(r, s, golden[r][s]);
                arr.rebuildParity();
            }
        }
    }

    Table t({"Scheme", "Storage", "Survived", "Detected loss",
             "Silent loss"});
    auto row = [&](const char *name, double storage, const Tally &x) {
        t.addRow({name, Table::pct(storage), std::to_string(x.survived),
                  std::to_string(x.detectedLoss),
                  std::to_string(x.silentLoss)});
    };
    row("SECDED+Intv4", 0.125, conv_secded);
    row("OECNED+Intv4", 0.891, conv_oecned);
    row("2D EDC8+Intv4/EDC32", 0.25, twod);
    t.print();

    std::printf("\n2D coding survives the multi-bit events that defeat "
                "SECDED at a quarter of\nOECNED's storage cost.\n");
    return 0;
}
