/**
 * @file
 * Quickstart: protect a memory bank with 2D error coding, corrupt it
 * with a large clustered error, and watch the recovery process
 * reconstruct every bit.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "array/fault.hh"
#include "common/rng.hh"
#include "core/twod_array.hh"

using namespace tdc;

int
main()
{
    // The paper's L1 configuration: EDC8 horizontal code over 64-bit
    // words, 4-way physical bit interleaving, 32 vertical parity rows
    // over a 256-row bank. Guaranteed coverage: any clustered error
    // up to 32x32 bits.
    TwoDimConfig config = TwoDimConfig::l1Default();
    TwoDimArray bank(config);
    std::printf("2D-protected bank: %s\n", config.describe().c_str());
    std::printf("storage overhead: %.1f%%  (horizontal + vertical)\n\n",
                100.0 * bank.storageOverhead());

    // Fill the bank with data and keep a golden copy.
    Rng rng(12345);
    std::vector<std::vector<BitVector>> golden(
        bank.rows(), std::vector<BitVector>(bank.wordsPerRow()));
    for (size_t row = 0; row < bank.rows(); ++row) {
        for (size_t slot = 0; slot < bank.wordsPerRow(); ++slot) {
            BitVector word(64, rng.next());
            bank.writeWord(row, slot, word); // read-before-write inside
            golden[row][slot] = word;
        }
    }
    std::printf("wrote %zu words; every write performed a "
                "read-before-write to keep the\nvertical parity current "
                "(%llu updates so far)\n\n",
                bank.rows() * bank.wordsPerRow(),
                (unsigned long long)bank.vertical().updateCount());

    // A single energetic particle strike flips a solid 32x32 block.
    FaultInjector injector(rng);
    const FaultEvent hit = injector.injectCluster(bank.cells(), 32, 32);
    std::printf("injected: %s\n", hit.describe().c_str());

    // The next read of an affected word sees a horizontal detection,
    // triggers the Figure 4(b) recovery sweep, and returns the
    // original data.
    const size_t row = hit.rowLo;
    const size_t slot = bank.interleave().slotOf(hit.colLo);
    AccessResult result = bank.readWord(row, slot);
    std::printf("read row %zu slot %zu -> %s\n", row, slot,
                result.ok() ? "data recovered" : "UNRECOVERABLE");

    const RecoveryReport &report = bank.lastRecovery();
    std::printf("recovery: %zu rows reconstructed, %llu row reads "
                "(~BIST march latency), column path %s\n",
                report.rowsReconstructed.size(),
                (unsigned long long)report.rowReads,
                report.usedColumnPath ? "used" : "not needed");

    // Verify every word in the bank against the golden copy.
    size_t mismatches = 0;
    for (size_t r = 0; r < bank.rows(); ++r)
        for (size_t s = 0; s < bank.wordsPerRow(); ++s)
            mismatches += bank.readWord(r, s).data != golden[r][s];
    std::printf("full verification: %zu mismatching words out of %zu\n",
                mismatches, bank.rows() * bank.wordsPerRow());
    return mismatches == 0 ? 0 : 1;
}
