/**
 * @file
 * Yield explorer: sweep manufacture-time hard-error rates and spare
 * budgets to find the cheapest repair strategy for a cache of a given
 * size — the design-space view behind Figure 8, including the
 * 2D-coding runtime-immunity argument.
 *
 * Run: ./build/examples/yield_explorer [cache_MB] [years]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "reliability/soft_error_model.hh"
#include "reliability/yield_model.hh"

using namespace tdc;

int
main(int argc, char **argv)
{
    const double cache_mb = argc > 1 ? std::atof(argv[1]) : 16.0;
    const double years = argc > 2 ? std::atof(argv[2]) : 5.0;

    YieldParams geom;
    geom.words = size_t(cache_mb * 1024 * 1024 * 8) / 64;
    geom.wordBits = 72;
    YieldModel yield(geom);

    std::printf("cache: %.0fMB (%zu words of %zu bits), horizon: %.1f "
                "years\n\n", cache_mb, geom.words, geom.wordBits, years);

    std::printf("--- Yield vs hard-error count and spare budget ---\n\n");
    Table t({"Failing cells", "Spares only (128)", "ECC only", "ECC+8",
             "ECC+16", "ECC+32"});
    for (double f : {100.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
        t.addRow({Table::num(f, 0), Table::pct(yield.yieldSpareOnly(f, 128)),
                  Table::pct(yield.yieldEccOnly(f)),
                  Table::pct(yield.yieldEccPlusSpares(f, 8)),
                  Table::pct(yield.yieldEccPlusSpares(f, 16)),
                  Table::pct(yield.yieldEccPlusSpares(f, 32))});
    }
    t.print();

    std::printf("\n--- But: letting ECC repair hard errors costs runtime "
                "immunity ---\n\n");
    Table r({"HER", "Faulty-word fraction",
             "P(survive " + Table::num(years, 0) + "y) no 2D",
             "with 2D coding"});
    for (double her : {0.000001, 0.000005, 0.00001, 0.00005}) {
        ReliabilityParams rp = ReliabilityParams::figure8b(her);
        rp.mbitPerCache = cache_mb * 8.0;
        SoftErrorModel model(rp);
        r.addRow({Table::pct(her, 4),
                  Table::pct(model.faultyWordFraction(), 3),
                  Table::pct(model.successProbability(years)),
                  Table::pct(model.successProbabilityWith2D(years))});
    }
    r.print();

    std::printf("\nConclusion (Section 5.2): use SECDED to absorb "
                "single-bit hard faults and keep a\nsmall spare budget "
                "for multi-bit words — but only under a 2D coding "
                "umbrella,\nor field soft errors will eventually land in "
                "a pre-faulted word.\n");
    return 0;
}
