/**
 * @file
 * Manufacture-time flow (Sections 2.3 and 5.2): march-test a bank,
 * repair hard faults with spare rows — first conventionally, then
 * with ECC absorbing the single-bit words — and finally bring the
 * bank up under 2D protection so it keeps full runtime soft-error
 * immunity despite the residual hard faults.
 *
 * Run: ./build/examples/manufacture_flow [hard_faults] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "array/fault.hh"
#include "array/march_test.hh"
#include "array/spare_repair.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/twod_array.hh"

using namespace tdc;

int
main(int argc, char **argv)
{
    const size_t hard_faults =
        argc > 1 ? size_t(std::strtoull(argv[1], nullptr, 10)) : 24;
    const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                   : 20070612;
    Rng rng(seed);

    // A 2D-protectable bank geometry: 256 rows x 288 columns
    // (4 x (72,64) interleaved words per row).
    MemoryArray cells(256, 288);
    FaultInjector inj(rng);
    inj.injectRandomHardFaults(cells, hard_faults);
    std::printf("fresh die: %zu manufacture-time hard faults injected\n\n",
                hard_faults);

    // --- Step 1: BIST ------------------------------------------------
    MarchTest bist(cells);
    const MarchResult tested = bist.run();
    std::printf("March C- found %zu faulty cells in %llu operations "
                "(10N)\n\n", tested.faults.size(),
                (unsigned long long)tested.operations);

    // --- Step 2: BISR with and without ECC synergy --------------------
    Table t({"Repair strategy", "Spares used", "Repaired?"});
    for (size_t spares : {2u, 4u, 8u, 16u}) {
        SpareRepair repair(spares, 0);
        const RepairPlan conventional = repair.solve(tested.faults);
        const RepairPlan synergistic =
            repair.solveWithEcc(tested.faults, 72);
        t.addRow({"spares only (" + std::to_string(spares) + " rows)",
                  std::to_string(conventional.rowsReplaced.size()),
                  conventional.success() ? "yes" : "NO"});
        t.addRow({"ECC + " + std::to_string(spares) + " spare rows",
                  std::to_string(synergistic.rowsReplaced.size()),
                  synergistic.success() ? "yes" : "NO"});
    }
    t.print();
    std::printf("\nIn-line SECDED absorbs every single-bit-fault word, "
                "so the spare budget only\npays for multi-bit words — "
                "the Stapper-style synergy behind Figure 8(a).\n\n");

    // --- Step 3: runtime immunity under 2D coding ---------------------
    TwoDimConfig cfg = TwoDimConfig::secdedHorizontal();
    TwoDimArray bank(cfg);
    // Re-create the manufacturing faults in the protected bank.
    inj.injectRandomHardFaults(bank.cells(), hard_faults);
    std::vector<std::vector<BitVector>> golden(
        bank.rows(), std::vector<BitVector>(bank.wordsPerRow()));
    for (size_t r = 0; r < bank.rows(); ++r)
        for (size_t s = 0; s < bank.wordsPerRow(); ++s) {
            golden[r][s] = BitVector(64, rng.next());
            bank.writeWord(r, s, golden[r][s]);
        }

    // A multi-bit soft event on top of the hard faults.
    inj.injectCluster(bank.cells(), 32, 16, 1.0);
    const bool recovered = bank.scrub();
    size_t mismatches = 0;
    for (size_t r = 0; r < bank.rows(); ++r)
        for (size_t s = 0; s < bank.wordsPerRow(); ++s)
            mismatches += bank.readWord(r, s).data != golden[r][s];

    std::printf("runtime check: 32x16 soft cluster on the hard-faulted "
                "bank -> %s, %zu mismatches\n",
                recovered ? "recovered" : "NOT recovered", mismatches);
    std::printf("(inline corrections so far: %llu — the stuck cells "
                "being fixed on every read)\n",
                (unsigned long long)bank.stats().inlineCorrections);
    return recovered && mismatches == 0 ? 0 : 1;
}
