/**
 * @file
 * Scheme explorer: the ProtectionScheme registry end to end. Parses
 * schemes from spec strings (exactly what `tdc_run --scheme` does),
 * prints their canonical spec / name / storage cost, then races them
 * through the same Monte-Carlo fault grid. Pass your own specs on the
 * command line to compare any protection points the grammar can
 * express — no C++ required:
 *
 *   ./build/examples/scheme_explorer 2d:edc8/i8+vp64 conv:qecped/i8
 *
 * Run: ./build/examples/scheme_explorer [spec ...]
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/table.hh"
#include "scheme/figure_campaigns.hh"
#include "scheme/scheme.hh"

using namespace tdc;

int
main(int argc, char **argv)
{
    std::vector<std::string> specs(argv + 1, argv + argc);
    if (specs.empty())
        specs = {"conv:secded/i4", "conv:oecned/i4", "2d:edc8/i4+vp32",
                 "prod:256x256"};

    std::printf("=== Scheme explorer: %zu protection schemes ===\n\n",
                specs.size());

    try {
        Table info({"Spec", "Name", "Storage overhead"});
        for (const std::string &spec : specs) {
            const SchemePtr s = parseScheme(spec);
            info.addRow({s->spec(), s->name(),
                         Table::pct(s->storageOverhead())});
        }
        info.print();

        std::printf("\nInjection race (same seeds for every scheme):\n\n");
        customInjectionCampaign(specs,
                                {"single", "8x8", "32x32", "row:32",
                                 "col:32"},
                                25, 777)
            .print();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "scheme_explorer: %s\n", e.what());
        std::fprintf(stderr,
                     "run `tdc_run --list-schemes` for the grammar\n");
        return 2;
    }

    std::printf("\nEvery row above ran through the same registry the "
                "figure campaigns and the\ntdc_run driver use; add a "
                "spec here or on the CLI and it becomes a new\n"
                "comparison point.\n");
    return 0;
}
