/**
 * @file
 * CMP protection study: simulate one of the two Table-1 machines
 * running one workload under every protection configuration and
 * report IPC, loss, and traffic — the per-design-point view behind
 * Figures 5 and 6.
 *
 * Run: ./build/examples/cmp_protection [fat|lean] [workload] [cycles]
 *   e.g. ./build/examples/cmp_protection fat OLTP 200000
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.hh"
#include "cpu/cmp_simulator.hh"

using namespace tdc;

int
main(int argc, char **argv)
{
    const std::string machine_name = argc > 1 ? argv[1] : "fat";
    const std::string workload_name = argc > 2 ? argv[2] : "OLTP";
    const uint64_t cycles = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                     : 150000;

    const CmpConfig machine =
        machine_name == "lean" ? CmpConfig::lean() : CmpConfig::fat();
    const WorkloadProfile &workload = workloadByName(workload_name);

    std::printf("machine: %s CMP (%u cores), workload: %s, %llu cycles\n\n",
                machine.name.c_str(), machine.cores,
                workload.name.c_str(), (unsigned long long)cycles);

    const ProtectionConfig configs[] = {
        ProtectionConfig::none(),
        ProtectionConfig::l1Only(false),
        ProtectionConfig::l1Only(true),
        ProtectionConfig::l2Only(),
        ProtectionConfig::full(true),
    };

    CmpSimulator base_sim(machine, workload, ProtectionConfig::none(), 7);
    const double base_ipc = base_sim.run(cycles).ipc();

    Table t({"Protection", "IPC", "IPC loss", "L1 acc/100cyc/core",
             "L1 extra reads", "L2 acc/100cyc", "L2 extra reads"});
    for (const ProtectionConfig &prot : configs) {
        CmpSimulator sim(machine, workload, prot, 7);
        const CmpSimResult r = sim.run(cycles);
        const double l1_total =
            r.per100(r.l1ReadsData + r.l1Writes + r.l1FillEvict +
                     r.l1ExtraReads) /
            machine.cores;
        const double l2_total = r.per100(
            r.l2ReadsInst + r.l2ReadsData + r.l2Writes + r.l2ExtraReads);
        t.addRow({prot.label(), Table::num(r.ipc(), 2),
                  Table::pct((base_ipc - r.ipc()) / base_ipc),
                  Table::num(l1_total, 1),
                  Table::num(r.per100(r.l1ExtraReads) / machine.cores, 1),
                  Table::num(l2_total, 1),
                  Table::num(r.per100(r.l2ExtraReads), 1)});
    }
    t.print();

    std::printf("\nThe 'extra reads' columns are the read-before-write "
                "traffic that maintains the\nvertical parity; port "
                "stealing hides the L1 share of it in idle port "
                "cycles.\n");
    return 0;
}
