/**
 * @file
 * Parameterized coverage-guarantee sweep for conventional 1D
 * protected arrays: for every (code, interleave) pair the paper
 * composes, every contiguous row burst up to the guaranteed width at
 * every offset must be covered (corrected or at least detected), and
 * the first width beyond the guarantee must show a counterexample.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "array/fault.hh"
#include "array/protected_array.hh"
#include "common/rng.hh"
#include "ecc/code_factory.hh"

namespace tdc
{
namespace
{

/** (code kind, interleave degree) */
using SchemeParam = std::tuple<CodeKind, size_t>;

class BurstGuaranteeTest : public ::testing::TestWithParam<SchemeParam>
{
};

TEST_P(BurstGuaranteeTest, EveryBurstWithinGuaranteeIsCovered)
{
    const auto [kind, degree] = GetParam();
    Rng rng(uint64_t(degree) * 31 + size_t(kind));
    ProtectedArray arr(4, makeCode(kind, 64), degree);
    std::vector<std::vector<BitVector>> golden(
        arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            golden[r][s] = BitVector(64, rng.next());
            arr.writeWord(r, s, golden[r][s]);
        }

    FaultInjector inj(rng);
    const size_t detect_w = arr.contiguousDetectWidth();
    const size_t correct_w = arr.contiguousCorrectWidth();
    const size_t row_bits = arr.cells().cols();

    for (size_t width = 1; width <= detect_w; ++width) {
        // Sweep offsets with a stride to keep runtime sane while
        // still covering every alignment class.
        for (size_t start = 0; start + width <= row_bits;
             start += (width <= 4 ? 1 : 7)) {
            inj.injectRowBurst(arr.cells(), 1, width, long(start));
            bool all_recovered = true;
            bool any_silent = false;
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                AccessResult res = arr.readWord(1, s);
                if (!res.ok())
                    all_recovered = false;
                else if (res.data != golden[1][s])
                    any_silent = true;
            }
            ASSERT_FALSE(any_silent)
                << "silent corruption at width " << width << " start "
                << start;
            if (width <= correct_w) {
                ASSERT_TRUE(all_recovered)
                    << "width " << width << " start " << start;
            }
            // Restore the row for the next pattern.
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                arr.writeWord(1, s, golden[1][s]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSchemes, BurstGuaranteeTest,
    ::testing::Values(SchemeParam{CodeKind::kSecDed, 2},
                      SchemeParam{CodeKind::kSecDed, 4},
                      SchemeParam{CodeKind::kEdc8, 4},
                      SchemeParam{CodeKind::kEdc16, 2},
                      SchemeParam{CodeKind::kDecTed, 4},
                      SchemeParam{CodeKind::kQecPed, 2}));

TEST(BurstGuarantee, OecnedIntv4CoversFigure3bExactly)
{
    // The paper's (b) design point: verify the 32-bit guarantee and
    // exhibit the cliff right above it (a 33+-bit burst puts 9 bits
    // in some word, beyond t=8).
    Rng rng(77);
    ProtectedArray arr(2, makeCode(CodeKind::kOecNed, 64), 4);
    std::vector<BitVector> golden(arr.wordsPerRow());
    for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
        golden[s] = BitVector(64, rng.next());
        arr.writeWord(0, s, golden[s]);
    }
    FaultInjector inj(rng);
    EXPECT_EQ(arr.contiguousCorrectWidth(), 32u);

    inj.injectRowBurst(arr.cells(), 0, 32, 0);
    for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
        AccessResult res = arr.readWord(0, s);
        ASSERT_TRUE(res.ok());
        ASSERT_EQ(res.data, golden[s]);
    }

    // 36 contiguous bits = 9 per word: at least one word must fail
    // (t=8), and with t+1 errors detection is still guaranteed.
    inj.injectRowBurst(arr.cells(), 0, 36, 0);
    bool any_uncorrectable = false;
    for (size_t s = 0; s < arr.wordsPerRow(); ++s)
        any_uncorrectable |= !arr.readWord(0, s).ok();
    EXPECT_TRUE(any_uncorrectable);
}

} // namespace
} // namespace tdc
