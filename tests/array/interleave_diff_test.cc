#include <gtest/gtest.h>

#include "array/interleave.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

BitVector
randomVector(Rng &rng, size_t nbits)
{
    BitVector v(nbits);
    for (size_t i = 0; i < nbits; ++i)
        v.set(i, rng.nextBool());
    return v;
}

/** Naive bit-loop oracle for extractWord. */
BitVector
extractRef(const InterleaveMap &map, const BitVector &row, size_t slot)
{
    BitVector word(map.wordBits());
    for (size_t b = 0; b < map.wordBits(); ++b)
        word.set(b, row.get(map.physicalColumn(slot, b)));
    return word;
}

/** Naive bit-loop oracle for depositWord. */
void
depositRef(const InterleaveMap &map, BitVector &row, size_t slot,
           const BitVector &word)
{
    for (size_t b = 0; b < map.wordBits(); ++b)
        row.set(map.physicalColumn(slot, b), word.get(b));
}

/**
 * Differential test: the word-parallel strided gather/scatter must be
 * bit-exact against the naive per-bit loop for every slot, across
 * power-of-two degrees (fast path), generic degrees (fallback), and
 * word widths that exercise sub-word tails and word-boundary
 * straddles.
 */
class InterleaveDiffTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(InterleaveDiffTest, ExtractMatchesNaiveLoop)
{
    const auto [wordBits, degree] = GetParam();
    InterleaveMap map(wordBits, degree);
    Rng rng(100 + wordBits * 131 + degree);
    for (int trial = 0; trial < 20; ++trial) {
        const BitVector row = randomVector(rng, map.rowBits());
        for (size_t slot = 0; slot < degree; ++slot) {
            ASSERT_EQ(map.extractWord(row, slot),
                      extractRef(map, row, slot))
                << "slot " << slot << " trial " << trial;
        }
    }
}

TEST_P(InterleaveDiffTest, DepositMatchesNaiveLoop)
{
    const auto [wordBits, degree] = GetParam();
    InterleaveMap map(wordBits, degree);
    Rng rng(200 + wordBits * 131 + degree);
    for (int trial = 0; trial < 20; ++trial) {
        const BitVector base = randomVector(rng, map.rowBits());
        const BitVector word = randomVector(rng, wordBits);
        for (size_t slot = 0; slot < degree; ++slot) {
            BitVector fast = base;
            BitVector ref = base;
            map.depositWord(fast, slot, word);
            depositRef(map, ref, slot, word);
            ASSERT_EQ(fast, ref) << "slot " << slot << " trial " << trial;
        }
    }
}

TEST_P(InterleaveDiffTest, DepositThenExtractRoundTrips)
{
    const auto [wordBits, degree] = GetParam();
    InterleaveMap map(wordBits, degree);
    Rng rng(300 + wordBits * 131 + degree);
    BitVector row(map.rowBits());
    std::vector<BitVector> words(degree);
    for (size_t slot = 0; slot < degree; ++slot) {
        words[slot] = randomVector(rng, wordBits);
        map.depositWord(row, slot, words[slot]);
    }
    // Every slot must read back intact: deposits are disjoint.
    for (size_t slot = 0; slot < degree; ++slot)
        ASSERT_EQ(map.extractWord(row, slot), words[slot]);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, InterleaveDiffTest,
    ::testing::Values(
        // Paper geometries: L1 EDC8 (72,64) x4, L2 EDC16 (272,256) x2,
        // SECDED (72,64) x4.
        std::make_pair(size_t(72), size_t(4)),
        std::make_pair(size_t(272), size_t(2)),
        std::make_pair(size_t(72), size_t(1)),
        // Power-of-two fast-path degrees with odd word widths.
        std::make_pair(size_t(13), size_t(2)),
        std::make_pair(size_t(65), size_t(8)),
        std::make_pair(size_t(7), size_t(16)),
        std::make_pair(size_t(3), size_t(32)),
        std::make_pair(size_t(2), size_t(64)),
        std::make_pair(size_t(64), size_t(64)),
        // Generic degrees: the per-bit fallback path.
        std::make_pair(size_t(72), size_t(3)),
        std::make_pair(size_t(29), size_t(5)),
        std::make_pair(size_t(10), size_t(7)),
        std::make_pair(size_t(8), size_t(96))));

TEST(InterleaveFastPath, EngagedForEveryDegreeUpTo64)
{
    // The per-phase plan cache covers non-dividing degrees too (the
    // old per-bit fallback only remains for degrees above 64).
    for (size_t d : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 12u, 16u, 32u, 48u, 64u})
        EXPECT_TRUE(InterleaveMap(16, d).wordParallel()) << "degree " << d;
    for (size_t d : {65u, 96u, 128u})
        EXPECT_FALSE(InterleaveMap(16, d).wordParallel()) << "degree " << d;
}

TEST(InterleaveFastPath, ExtractWordIntoReusesBuffer)
{
    InterleaveMap map(72, 4);
    Rng rng(42);
    const BitVector row = randomVector(rng, map.rowBits());
    BitVector scratch; // wrong size on first use: must self-correct
    map.extractWordInto(row, 2, scratch);
    EXPECT_EQ(scratch, extractRef(map, row, 2));
    // Second call with a stale value in the buffer must fully
    // overwrite it.
    map.extractWordInto(row, 3, scratch);
    EXPECT_EQ(scratch, extractRef(map, row, 3));
}

} // namespace
} // namespace tdc
