#include <gtest/gtest.h>

#include "array/fault.hh"
#include "array/product_code_array.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

ProductCodeArray
filled(size_t rows, size_t cols, Rng &rng,
       std::vector<BitVector> *golden = nullptr)
{
    ProductCodeArray arr(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
        BitVector row(cols);
        for (size_t c = 0; c < cols; ++c)
            row.set(c, rng.nextBool());
        arr.writeRow(r, row);
        if (golden)
            golden->push_back(row);
    }
    return arr;
}

TEST(ProductCodeArray, CleanAfterWrites)
{
    Rng rng(1);
    ProductCodeArray arr = filled(32, 64, rng);
    const ProductCodeReport rep = arr.checkAndCorrect();
    EXPECT_TRUE(rep.clean);
    EXPECT_EQ(rep.corrected, 0u);
}

TEST(ProductCodeArray, StorageOverheadIsTiny)
{
    ProductCodeArray arr(256, 256);
    // (256+256) / 256*256 ~ 0.8%: the area efficiency that made
    // product codes attractive (Tanner).
    EXPECT_NEAR(arr.storageOverhead(), 512.0 / 65536.0, 1e-12);
}

TEST(ProductCodeArray, CorrectsEverySingleBit)
{
    Rng rng(2);
    std::vector<BitVector> golden;
    ProductCodeArray arr = filled(16, 32, rng, &golden);
    for (int trial = 0; trial < 100; ++trial) {
        const size_t r = rng.nextBelow(16);
        const size_t c = rng.nextBelow(32);
        arr.cells().flipBit(r, c);
        const ProductCodeReport rep = arr.checkAndCorrect();
        ASSERT_TRUE(rep.clean);
        ASSERT_EQ(rep.corrected, 1u);
        ASSERT_EQ(arr.readRow(r), golden[r]);
    }
}

TEST(ProductCodeArray, CorrectsMultipleErrorsInOneRow)
{
    Rng rng(3);
    std::vector<BitVector> golden;
    ProductCodeArray arr = filled(16, 32, rng, &golden);
    // 3 errors confined to one row: one bad row, three bad columns —
    // unambiguous intersection.
    arr.cells().flipBit(5, 1);
    arr.cells().flipBit(5, 9);
    arr.cells().flipBit(5, 20);
    const ProductCodeReport rep = arr.checkAndCorrect();
    EXPECT_TRUE(rep.clean);
    EXPECT_EQ(rep.corrected, 3u);
    EXPECT_EQ(arr.readRow(5), golden[5]);
}

TEST(ProductCodeArray, CorrectsOddErrorsInOneColumn)
{
    // Three flips in one column: three rows flagged, one column
    // flagged (odd count) -> unambiguous intersection.
    Rng rng(4);
    std::vector<BitVector> golden;
    ProductCodeArray arr = filled(16, 32, rng, &golden);
    arr.cells().flipBit(2, 7);
    arr.cells().flipBit(9, 7);
    arr.cells().flipBit(12, 7);
    const ProductCodeReport rep = arr.checkAndCorrect();
    EXPECT_TRUE(rep.clean);
    EXPECT_EQ(rep.corrected, 3u);
    EXPECT_EQ(arr.readRow(2), golden[2]);
    EXPECT_EQ(arr.readRow(9), golden[9]);
    EXPECT_EQ(arr.readRow(12), golden[12]);
}

TEST(ProductCodeArray, EvenErrorsInOneColumnAreUncorrectable)
{
    // An even number of flips in the same column cancels the column
    // parity: the rows are flagged but no column is, so the errors
    // cannot be located (another cancellation 2D coding's interleaved
    // vertical dimension is designed around).
    Rng rng(8);
    ProductCodeArray arr = filled(16, 32, rng);
    arr.cells().flipBit(2, 7);
    arr.cells().flipBit(9, 7);
    const ProductCodeReport rep = arr.checkAndCorrect();
    EXPECT_FALSE(rep.clean);
    EXPECT_TRUE(rep.uncorrectable);
}

TEST(ProductCodeArray, DiagonalPairIsAmbiguous)
{
    // The classic product-code failure the paper's 2D scheme fixes:
    // flips at (3,4) and (8,11) flag rows {3,8} and columns {4,11};
    // the alternative placement {(3,11),(8,4)} explains the same
    // syndrome, so decoding must give up rather than guess.
    Rng rng(5);
    ProductCodeArray arr = filled(16, 32, rng);
    arr.cells().flipBit(3, 4);
    arr.cells().flipBit(8, 11);
    const ProductCodeReport rep = arr.checkAndCorrect();
    EXPECT_FALSE(rep.clean);
    EXPECT_TRUE(rep.uncorrectable);
}

TEST(ProductCodeArray, SolidBlockIsSilentlyInvisible)
{
    // A solid 2x2 block flips two bits in each affected row and two
    // in each affected column: every line parity stays even, both
    // syndromes are zero, and the corruption passes as clean. This is
    // the fundamental multi-bit weakness of plain HV product codes —
    // the paper's interleaved EDC dimensions are designed to avoid
    // exactly this cancellation for clusters within coverage.
    Rng rng(6);
    std::vector<BitVector> golden;
    ProductCodeArray arr = filled(16, 32, rng, &golden);
    arr.cells().flipBit(3, 4);
    arr.cells().flipBit(3, 11);
    arr.cells().flipBit(8, 4);
    arr.cells().flipBit(8, 11);
    const ProductCodeReport rep = arr.checkAndCorrect();
    EXPECT_TRUE(rep.clean);
    EXPECT_NE(arr.readRow(3), golden[3]) << "corruption is silent";
}

TEST(ProductCodeArray, BurstInOneRowCorrected)
{
    Rng rng(7);
    std::vector<BitVector> golden;
    ProductCodeArray arr = filled(32, 64, rng, &golden);
    FaultInjector inj(rng);
    inj.injectRowBurst(arr.cells(), 10, 7);
    const ProductCodeReport rep = arr.checkAndCorrect();
    EXPECT_TRUE(rep.clean);
    EXPECT_EQ(rep.corrected, 7u);
    EXPECT_EQ(arr.readRow(10), golden[10]);
}

} // namespace
} // namespace tdc
