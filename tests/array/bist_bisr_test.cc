#include <gtest/gtest.h>

#include "array/fault.hh"
#include "array/march_test.hh"
#include "array/spare_repair.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

TEST(MarchTest, CleanArrayReportsNoFaults)
{
    MemoryArray arr(32, 64);
    MarchTest bist(arr);
    const MarchResult res = bist.run();
    EXPECT_TRUE(res.clean());
    // 10N operations: 6 elements, 4 of which do read+write, one
    // write-only, one read-only.
    EXPECT_EQ(res.operations, 10ull * 32 * 64);
}

TEST(MarchTest, DetectsEveryStuckAtFault)
{
    Rng rng(1);
    MemoryArray arr(16, 32);
    FaultInjector inj(rng);
    const FaultEvent ev = inj.injectRandomHardFaults(arr, 10);

    MarchTest bist(arr);
    const MarchResult res = bist.run();
    ASSERT_EQ(res.faults.size(), 10u);
    // Every injected cell appears in the fault map.
    for (auto [r, c] : ev.cells) {
        bool found = false;
        for (const MarchFault &f : res.faults)
            found |= f.row == r && f.col == c;
        EXPECT_TRUE(found) << r << "," << c;
    }
}

TEST(MarchTest, DetectsStuckAtBothPolarities)
{
    MemoryArray arr(8, 8);
    arr.addStuckAt(2, 3, true);  // stuck-at-1
    arr.addStuckAt(5, 6, false); // stuck-at-0
    MarchTest bist(arr);
    const MarchResult res = bist.run();
    ASSERT_EQ(res.faults.size(), 2u);
}

TEST(MarchTest, IsDestructiveButLeavesZeros)
{
    MemoryArray arr(4, 16);
    arr.writeRow(0, BitVector(16, 0xFFFF));
    MarchTest bist(arr);
    bist.run();
    for (size_t r = 0; r < 4; ++r)
        EXPECT_TRUE(arr.readRow(r).none());
}

TEST(SpareRepair, NoFaultsNoSparesUsed)
{
    SpareRepair repair(4, 4);
    const RepairPlan plan = repair.solve({});
    EXPECT_TRUE(plan.success());
    EXPECT_TRUE(plan.rowsReplaced.empty());
    EXPECT_TRUE(plan.colsReplaced.empty());
}

TEST(SpareRepair, SingleFaultUsesOneSpare)
{
    SpareRepair repair(2, 2);
    const RepairPlan plan = repair.solve({{5, 9, true}});
    EXPECT_TRUE(plan.success());
    EXPECT_EQ(plan.rowsReplaced.size() + plan.colsReplaced.size(), 1u);
}

TEST(SpareRepair, RowFailureForcesSpareRow)
{
    // 8 faults in one row with only 2 spare columns: must-repair
    // picks a spare row.
    SpareRepair repair(1, 2);
    std::vector<MarchFault> faults;
    for (size_t c = 0; c < 8; ++c)
        faults.push_back({3, c * 4, true});
    const RepairPlan plan = repair.solve(faults);
    EXPECT_TRUE(plan.success());
    ASSERT_EQ(plan.rowsReplaced.size(), 1u);
    EXPECT_EQ(plan.rowsReplaced[0], 3u);
}

TEST(SpareRepair, ColumnFailureForcesSpareColumn)
{
    SpareRepair repair(2, 1);
    std::vector<MarchFault> faults;
    for (size_t r = 0; r < 8; ++r)
        faults.push_back({r, 17, true});
    const RepairPlan plan = repair.solve(faults);
    EXPECT_TRUE(plan.success());
    ASSERT_EQ(plan.colsReplaced.size(), 1u);
    EXPECT_EQ(plan.colsReplaced[0], 17u);
}

TEST(SpareRepair, CrossPatternNeedsBoth)
{
    // A full row and a full column of faults: one spare of each.
    SpareRepair repair(1, 1);
    std::vector<MarchFault> faults;
    for (size_t c = 0; c < 16; ++c)
        faults.push_back({4, c, true});
    for (size_t r = 0; r < 16; ++r)
        if (r != 4)
            faults.push_back({r, 9, true});
    const RepairPlan plan = repair.solve(faults);
    EXPECT_TRUE(plan.success());
    EXPECT_EQ(plan.rowsReplaced.size(), 1u);
    EXPECT_EQ(plan.colsReplaced.size(), 1u);
}

TEST(SpareRepair, ReportsUnrepairableHonestly)
{
    // More scattered faulty rows than spares.
    SpareRepair repair(2, 0);
    std::vector<MarchFault> faults = {
        {1, 5, true}, {3, 9, true}, {7, 2, true}, {11, 30, true}};
    const RepairPlan plan = repair.solve(faults);
    EXPECT_FALSE(plan.success());
    EXPECT_EQ(plan.unrepaired.size(), 2u);
}

TEST(SpareRepair, EccAbsorbsSingleBitWords)
{
    // Section 5.2: with in-line SECDED, only words holding >= 2
    // faults consume spares. 6 scattered single-bit faults in
    // distinct 64-bit words need zero spares.
    SpareRepair repair(1, 1);
    std::vector<MarchFault> faults;
    for (size_t i = 0; i < 6; ++i)
        faults.push_back({i * 3, i * 64 + (i * 13) % 64, true});
    const RepairPlan no_ecc = repair.solve(faults);
    EXPECT_FALSE(no_ecc.success()); // 6 lines, 2 spares

    const RepairPlan with_ecc = repair.solveWithEcc(faults, 64);
    EXPECT_TRUE(with_ecc.success());
    EXPECT_TRUE(with_ecc.rowsReplaced.empty());
    EXPECT_TRUE(with_ecc.colsReplaced.empty());
}

TEST(SpareRepair, EccPlusSparesCoversMultiBitWords)
{
    SpareRepair repair(1, 0);
    // One word with a double fault + three single-fault words.
    std::vector<MarchFault> faults = {
        {2, 10, true}, {2, 30, true}, // same 64-bit word, row 2
        {5, 100, true},
        {9, 200, true},
        {12, 300, true},
    };
    const RepairPlan plan = repair.solveWithEcc(faults, 64);
    EXPECT_TRUE(plan.success());
    ASSERT_EQ(plan.rowsReplaced.size(), 1u);
    EXPECT_EQ(plan.rowsReplaced[0], 2u);
}

TEST(BistBisr, EndToEndManufactureFlow)
{
    // Full manufacture-time flow: inject hard faults, march-test,
    // repair with ECC synergy, verify the plan covers every multi-bit
    // word.
    Rng rng(9);
    MemoryArray arr(64, 256);
    FaultInjector inj(rng);
    inj.injectRandomHardFaults(arr, 30);

    MarchTest bist(arr);
    const MarchResult tested = bist.run();
    EXPECT_EQ(tested.faults.size(), 30u);

    SpareRepair repair(4, 4);
    const RepairPlan plan = repair.solveWithEcc(tested.faults, 64);
    EXPECT_TRUE(plan.success());
}

} // namespace
} // namespace tdc
