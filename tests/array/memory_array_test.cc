#include <gtest/gtest.h>

#include "array/memory_array.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

TEST(MemoryArray, RowRoundTrip)
{
    MemoryArray arr(8, 64);
    BitVector row(64, 0xDEADBEEFCAFEF00Dull);
    arr.writeRow(3, row);
    EXPECT_EQ(arr.readRow(3), row);
    EXPECT_TRUE(arr.readRow(2).none());
}

TEST(MemoryArray, BitAccess)
{
    MemoryArray arr(4, 16);
    arr.writeBit(1, 7, true);
    EXPECT_TRUE(arr.readBit(1, 7));
    EXPECT_FALSE(arr.readBit(1, 6));
    arr.flipBit(1, 7);
    EXPECT_FALSE(arr.readBit(1, 7));
}

TEST(MemoryArray, FlipModelsSoftError)
{
    MemoryArray arr(2, 8);
    arr.writeRow(0, BitVector(8, 0b1010));
    arr.flipBit(0, 0);
    EXPECT_EQ(arr.readRow(0).toUint64(), 0b1011u);
}

TEST(MemoryArray, StuckAtForcesReadValue)
{
    MemoryArray arr(2, 8);
    arr.writeRow(0, BitVector(8, 0x00));
    arr.addStuckAt(0, 3, true);
    EXPECT_TRUE(arr.readBit(0, 3));
    EXPECT_TRUE(arr.readRow(0).get(3));
    // Writing cannot change a stuck cell's observed value.
    arr.writeRow(0, BitVector(8, 0x00));
    EXPECT_TRUE(arr.readBit(0, 3));
}

TEST(MemoryArray, StuckAtZeroMasksStoredOne)
{
    MemoryArray arr(2, 8);
    arr.writeRow(1, BitVector(8, 0xFF));
    arr.addStuckAt(1, 0, false);
    EXPECT_FALSE(arr.readRow(1).get(0));
    EXPECT_TRUE(arr.readRow(1).get(1));
}

TEST(MemoryArray, ClearFaultRestoresStoredState)
{
    MemoryArray arr(1, 4);
    arr.writeRow(0, BitVector(4, 0b0110));
    arr.addStuckAt(0, 1, false);
    EXPECT_FALSE(arr.readBit(0, 1));
    arr.clearFault(0, 1);
    EXPECT_TRUE(arr.readBit(0, 1));
    EXPECT_EQ(arr.faultCount(), 0u);
}

TEST(MemoryArray, ClearAllFaults)
{
    MemoryArray arr(4, 4);
    arr.addStuckAt(0, 0, true);
    arr.addStuckAt(1, 1, true);
    arr.addStuckAt(2, 2, true);
    EXPECT_EQ(arr.faultCount(), 3u);
    arr.clearAllFaults();
    EXPECT_EQ(arr.faultCount(), 0u);
    EXPECT_FALSE(arr.isStuck(0, 0));
}

TEST(MemoryArray, AccessCounters)
{
    MemoryArray arr(4, 8);
    arr.readRow(0);
    arr.readRow(1);
    arr.writeRow(2, BitVector(8));
    EXPECT_EQ(arr.readCount(), 2u);
    EXPECT_EQ(arr.writeCount(), 1u);
    arr.resetCounters();
    EXPECT_EQ(arr.readCount(), 0u);
    EXPECT_EQ(arr.writeCount(), 0u);
}

TEST(MemoryArray, IsStuckQuery)
{
    MemoryArray arr(2, 2);
    EXPECT_FALSE(arr.isStuck(0, 0));
    arr.addStuckAt(0, 0, true);
    EXPECT_TRUE(arr.isStuck(0, 0));
    EXPECT_FALSE(arr.isStuck(0, 1));
}

} // namespace
} // namespace tdc
