#include <gtest/gtest.h>

#include "array/fault.hh"
#include "array/protected_array.hh"
#include "common/rng.hh"
#include "ecc/code_factory.hh"

namespace tdc
{
namespace
{

/** Fill every word with a deterministic pseudo-random pattern. */
void
fill(ProtectedArray &arr, Rng &rng,
     std::vector<std::vector<BitVector>> &golden)
{
    golden.assign(arr.rows(),
                  std::vector<BitVector>(arr.wordsPerRow()));
    for (size_t r = 0; r < arr.rows(); ++r) {
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            BitVector data(arr.dataBits());
            for (size_t b = 0; b < data.size(); ++b)
                data.set(b, rng.nextBool());
            arr.writeWord(r, s, data);
            golden[r][s] = data;
        }
    }
}

TEST(ProtectedArray, GeometryMatchesFigure3a)
{
    // Figure 3(a): 256x256 data bits as 4 x (72,64) SECDED words per
    // row -> 256x288 physical bits, 12.5% overhead.
    ProtectedArray arr(256, makeCode(CodeKind::kSecDed, 64), 4);
    EXPECT_EQ(arr.rows(), 256u);
    EXPECT_EQ(arr.cells().cols(), 288u);
    EXPECT_EQ(arr.words(), 1024u);
    EXPECT_DOUBLE_EQ(arr.storageOverhead(), 0.125);
}

TEST(ProtectedArray, CleanRoundTrip)
{
    Rng rng(90);
    ProtectedArray arr(16, makeCode(CodeKind::kSecDed, 64), 4);
    std::vector<std::vector<BitVector>> golden;
    fill(arr, rng, golden);
    for (size_t r = 0; r < arr.rows(); ++r) {
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            AccessResult res = arr.readWord(r, s);
            ASSERT_EQ(res.status, DecodeStatus::kClean);
            ASSERT_EQ(res.data, golden[r][s]);
        }
    }
}

TEST(ProtectedArray, SecdedIntv4CorrectsFourBitRowBursts)
{
    // The Figure 3(a) coverage claim: any contiguous row burst of
    // <= 4 bits lands on 4 different words (one bit each) and is
    // corrected by per-word SECDED.
    Rng rng(91);
    ProtectedArray arr(16, makeCode(CodeKind::kSecDed, 64), 4);
    std::vector<std::vector<BitVector>> golden;
    fill(arr, rng, golden);
    FaultInjector inj(rng);

    for (size_t width = 1; width <= 4; ++width) {
        for (int trial = 0; trial < 30; ++trial) {
            const size_t row = rng.nextBelow(arr.rows());
            inj.injectRowBurst(arr.cells(), row, width);
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                AccessResult res = arr.readWord(row, s);
                ASSERT_TRUE(res.ok()) << "width " << width;
                ASSERT_EQ(res.data, golden[row][s]);
            }
            // readWord wrote corrections back; the row is clean now.
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                ASSERT_EQ(arr.peekWord(row, s).status,
                          DecodeStatus::kClean);
        }
    }
}

TEST(ProtectedArray, SecdedIntv4CannotCorrectWiderBursts)
{
    // A burst wider than degree puts >= 2 errors into some word:
    // SECDED detects but cannot correct -> data loss (the paper's
    // motivation for 2D coding).
    Rng rng(92);
    ProtectedArray arr(16, makeCode(CodeKind::kSecDed, 64), 4);
    std::vector<std::vector<BitVector>> golden;
    fill(arr, rng, golden);
    FaultInjector inj(rng);

    const size_t row = 3;
    inj.injectRowBurst(arr.cells(), row, 8, 0);
    bool any_uncorrectable = false;
    for (size_t s = 0; s < arr.wordsPerRow(); ++s)
        any_uncorrectable |= !arr.readWord(row, s).ok();
    EXPECT_TRUE(any_uncorrectable);
}

TEST(ProtectedArray, OecnedIntv4Corrects32BitRowBursts)
{
    // Figure 3(b): (121,64) OECNED with 4-way interleaving corrects
    // 32-bit row bursts (8 bits per word, all correctable).
    Rng rng(93);
    ProtectedArray arr(8, makeCode(CodeKind::kOecNed, 64), 4);
    std::vector<std::vector<BitVector>> golden;
    fill(arr, rng, golden);
    FaultInjector inj(rng);
    EXPECT_EQ(arr.contiguousCorrectWidth(), 32u);

    for (int trial = 0; trial < 20; ++trial) {
        const size_t row = rng.nextBelow(arr.rows());
        inj.injectRowBurst(arr.cells(), row, 32);
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            AccessResult res = arr.readWord(row, s);
            ASSERT_TRUE(res.ok());
            ASSERT_EQ(res.data, golden[row][s]);
        }
    }
}

TEST(ProtectedArray, OecnedOverheadMatchesFigure3b)
{
    ProtectedArray arr(8, makeCode(CodeKind::kOecNed, 64), 4);
    EXPECT_NEAR(arr.storageOverhead(), 0.891, 0.001);
}

TEST(ProtectedArray, EdcDetectsButNeverCorrects)
{
    Rng rng(94);
    ProtectedArray arr(8, makeCode(CodeKind::kEdc8, 64), 4);
    std::vector<std::vector<BitVector>> golden;
    fill(arr, rng, golden);
    FaultInjector inj(rng);

    const size_t row = 1;
    inj.injectRowBurst(arr.cells(), row, 16, 4);
    size_t detected = 0;
    for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
        AccessResult res = arr.readWord(row, s);
        detected += res.status == DecodeStatus::kDetectedUncorrectable;
    }
    EXPECT_GT(detected, 0u);
    EXPECT_EQ(arr.contiguousCorrectWidth(), 0u);
    EXPECT_EQ(arr.contiguousDetectWidth(), 32u);
}

TEST(ProtectedArray, StuckAtFaultCorrectedOnEveryRead)
{
    // Manufacture-time single-bit hard error under SECDED: corrected
    // in-line on every read (the yield-enhancement usage of ECC).
    Rng rng(95);
    ProtectedArray arr(4, makeCode(CodeKind::kSecDed, 64), 2);
    std::vector<std::vector<BitVector>> golden;
    fill(arr, rng, golden);
    arr.cells().addStuckAt(2, 5, !arr.cells().readBit(2, 5));

    for (int pass = 0; pass < 3; ++pass) {
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            AccessResult res = arr.readWord(2, s);
            ASSERT_TRUE(res.ok());
            ASSERT_EQ(res.data, golden[2][s]);
        }
        // Rewrite pattern; the stuck cell re-corrupts the word.
        for (size_t s = 0; s < arr.wordsPerRow(); ++s)
            arr.writeWord(2, s, golden[2][s]);
    }
}

TEST(ProtectedArray, PeekDoesNotRepair)
{
    Rng rng(96);
    ProtectedArray arr(4, makeCode(CodeKind::kSecDed, 64), 2);
    std::vector<std::vector<BitVector>> golden;
    fill(arr, rng, golden);
    arr.cells().flipBit(0, 0);
    AccessResult first = arr.peekWord(0, arr.interleave().slotOf(0));
    EXPECT_EQ(first.status, DecodeStatus::kCorrected);
    AccessResult second = arr.peekWord(0, arr.interleave().slotOf(0));
    EXPECT_EQ(second.status, DecodeStatus::kCorrected) << "peek repaired";
}

} // namespace
} // namespace tdc
