/**
 * @file
 * The device-derived DRAM fault shapes: chip kill, row hammer and
 * sense-amp failure. Parse/spec round-trips (with the chip-kill spec()
 * special case: colLo is a chip selector, not a cell anchor), malformed
 * specs quoting the offending token, and exact injector footprints on
 * a symbol-annotated array.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "array/fault.hh"
#include "array/memory_array.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

void
expectFaultError(const std::string &spec)
{
    try {
        parseFaultModel(spec);
        FAIL() << spec << " parsed";
    } catch (const std::invalid_argument &e) {
        // The offending spec must be quoted for actionable driver errors.
        EXPECT_NE(std::string(e.what()).find("\"" + spec + "\""),
                  std::string::npos)
            << spec << " -> " << e.what();
    }
}

/** 8 rows x 4 chips of 4-bit symbols. */
MemoryArray
symbolArray()
{
    MemoryArray arr(8, 16);
    arr.setSymbolBits(4);
    return arr;
}

TEST(DramFaultParse, ChipKillRoundTrips)
{
    const FaultModel any = parseFaultModel("chip:any");
    EXPECT_EQ(any.shape, FaultShape::kChipKill);
    EXPECT_EQ(any.colLo, -1);
    EXPECT_EQ(any.spec(), "chip:any");

    const FaultModel zero = parseFaultModel("chip:0");
    EXPECT_EQ(zero.colLo, 0); // chip 0 is a legal selector
    EXPECT_EQ(zero.spec(), "chip:0");

    const FaultModel three = parseFaultModel("chip:3");
    EXPECT_EQ(three.colLo, 3);
    EXPECT_EQ(parseFaultModel(three.spec()).spec(), "chip:3");
}

TEST(DramFaultParse, HardChipKillSpecSkipsAnchorSuffix)
{
    FaultModel m = FaultModel::chipKill(2);
    m.persistence = FaultPersistence::kStuckAt;
    // colLo = 2 is the chip selector; the generic "/@row,col" anchor
    // suffix must not leak into the spec, only "/hard".
    EXPECT_EQ(m.spec(), "chip:2/hard");
}

TEST(DramFaultParse, RowHammerRoundTrips)
{
    const FaultModel solid = parseFaultModel("hammer:3");
    EXPECT_EQ(solid.shape, FaultShape::kRowHammer);
    EXPECT_EQ(solid.height, 3u);
    EXPECT_EQ(solid.density, 1.0);
    EXPECT_EQ(solid.spec(), "hammer:3");

    const FaultModel sparse = parseFaultModel("hammer:4@0.5");
    EXPECT_EQ(sparse.height, 4u);
    EXPECT_EQ(sparse.density, 0.5);
    EXPECT_EQ(sparse.spec(), "hammer:4@0.5");
    EXPECT_EQ(parseFaultModel(sparse.spec()).spec(), sparse.spec());
}

TEST(DramFaultParse, SenseAmpRoundTrips)
{
    const FaultModel m = parseFaultModel("senseamp:16");
    EXPECT_EQ(m.shape, FaultShape::kSenseAmp);
    EXPECT_EQ(m.height, 16u);
    EXPECT_EQ(m.spec(), "senseamp:16");
    EXPECT_EQ(parseFaultModel(m.spec()).spec(), m.spec());
}

TEST(DramFaultParse, MalformedSpecsQuoteTheToken)
{
    expectFaultError("chip:");
    expectFaultError("chip:x");
    expectFaultError("chip:1.5");
    expectFaultError("chip:70000");
    expectFaultError("hammer:");
    expectFaultError("hammer:0");
    expectFaultError("hammer:4@0");
    expectFaultError("hammer:4@1.5");
    expectFaultError("senseamp:0");
    expectFaultError("senseamp:");
}

TEST(DramFaultParse, DescribeLabels)
{
    EXPECT_EQ(FaultModel::chipKill().describe(), "chip kill");
    EXPECT_EQ(FaultModel::chipKill(3).describe(), "chip 3 kill");
    EXPECT_EQ(FaultModel::rowHammer(4, 0.5).describe(),
              "hammer 4 rows @50%");
    EXPECT_EQ(FaultModel::rowHammer(2).describe(), "hammer 2 rows");
    EXPECT_EQ(FaultModel::senseAmp(16).describe(), "sense-amp 2x16");
}

TEST(DramFaultInject, ChipKillCoversExactlyOneSymbolGroup)
{
    MemoryArray arr = symbolArray();
    Rng rng(1);
    FaultInjector injector(rng);
    const FaultEvent ev = injector.inject(arr, FaultModel::chipKill(2));
    EXPECT_EQ(ev.shape, FaultShape::kChipKill);
    EXPECT_EQ(ev.cells.size(), 8u * 4u);
    EXPECT_EQ(ev.rowLo, 0u);
    EXPECT_EQ(ev.rowHi, 7u);
    EXPECT_EQ(ev.colLo, 8u);  // chip 2 -> columns 8..11
    EXPECT_EQ(ev.colHi, 11u);
    for (size_t r = 0; r < 8; ++r)
        for (size_t c = 0; c < 16; ++c)
            EXPECT_EQ(arr.readBit(r, c), c >= 8 && c < 12)
                << r << "," << c;
}

TEST(DramFaultInject, RandomChipKillAlignsToSymbolBoundary)
{
    Rng rng(7);
    FaultInjector injector(rng);
    for (int i = 0; i < 10; ++i) {
        MemoryArray arr = symbolArray();
        const FaultEvent ev = injector.inject(arr, FaultModel::chipKill());
        EXPECT_EQ(ev.colLo % 4, 0u);
        EXPECT_EQ(ev.colHi, ev.colLo + 3);
        EXPECT_EQ(ev.cells.size(), 8u * 4u);
    }
}

TEST(DramFaultInject, HardChipKillInstallsStuckAts)
{
    MemoryArray arr = symbolArray();
    Rng rng(3);
    FaultInjector injector(rng);
    FaultModel m = FaultModel::chipKill(1);
    m.persistence = FaultPersistence::kStuckAt;
    injector.inject(arr, m);
    EXPECT_EQ(arr.faultCount(), 8u * 4u);
    EXPECT_TRUE(arr.isStuck(0, 4));
    EXPECT_TRUE(arr.isStuck(7, 7));
    EXPECT_FALSE(arr.isStuck(0, 3));
}

TEST(DramFaultInject, SolidHammerFillsTheBand)
{
    MemoryArray arr = symbolArray();
    Rng rng(5);
    FaultInjector injector(rng);
    FaultModel m = FaultModel::rowHammer(2);
    m.rowLo = 3;
    const FaultEvent ev = injector.inject(arr, m);
    EXPECT_EQ(ev.rowLo, 3u);
    EXPECT_EQ(ev.rowHi, 4u);
    EXPECT_EQ(ev.cells.size(), 2u * 16u);
}

TEST(DramFaultInject, SparseHammerStaysInBandAndIsNonEmpty)
{
    Rng rng(11);
    FaultInjector injector(rng);
    for (int i = 0; i < 20; ++i) {
        MemoryArray arr = symbolArray();
        FaultModel m = FaultModel::rowHammer(3, 0.05);
        const FaultEvent ev = injector.inject(arr, m);
        // The injector re-rolls an empty draw: every event observable.
        EXPECT_FALSE(ev.cells.empty());
        for (const auto &[r, c] : ev.cells) {
            EXPECT_GE(r, ev.rowLo);
            EXPECT_LE(r, ev.rowHi);
            EXPECT_LT(c, 16u);
        }
        EXPECT_LE(ev.rowHi - ev.rowLo, 2u);
    }
}

TEST(DramFaultInject, HammerBandClampsToArrayHeight)
{
    MemoryArray arr(4, 8);
    Rng rng(2);
    FaultInjector injector(rng);
    const FaultEvent ev = injector.inject(arr, FaultModel::rowHammer(64));
    EXPECT_EQ(ev.rowLo, 0u);
    EXPECT_EQ(ev.rowHi, 3u);
    EXPECT_EQ(ev.cells.size(), 4u * 8u);
}

TEST(DramFaultInject, SenseAmpIsTwoAdjacentColumns)
{
    MemoryArray arr = symbolArray();
    Rng rng(6);
    FaultInjector injector(rng);
    FaultModel m = FaultModel::senseAmp(4);
    m.rowLo = 2;
    m.colLo = 5;
    const FaultEvent ev = injector.inject(arr, m);
    EXPECT_EQ(ev.rowLo, 2u);
    EXPECT_EQ(ev.rowHi, 5u);
    EXPECT_EQ(ev.colLo, 5u);
    EXPECT_EQ(ev.colHi, 6u);
    EXPECT_EQ(ev.cells.size(), 4u * 2u);
}

TEST(DramFaultInject, EventDescribeNamesTheNewShapes)
{
    MemoryArray arr = symbolArray();
    Rng rng(8);
    FaultInjector injector(rng);
    EXPECT_NE(injector.inject(arr, FaultModel::chipKill(0))
                  .describe()
                  .find("chip-kill"),
              std::string::npos);
    EXPECT_NE(injector.inject(arr, FaultModel::rowHammer(2))
                  .describe()
                  .find("row-hammer"),
              std::string::npos);
    EXPECT_NE(injector.inject(arr, FaultModel::senseAmp(3))
                  .describe()
                  .find("sense-amp"),
              std::string::npos);
}

} // namespace
} // namespace tdc
