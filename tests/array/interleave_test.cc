#include <gtest/gtest.h>

#include "array/interleave.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

TEST(InterleaveMap, Geometry)
{
    InterleaveMap map(72, 4);
    EXPECT_EQ(map.wordBits(), 72u);
    EXPECT_EQ(map.degree(), 4u);
    EXPECT_EQ(map.rowBits(), 288u);
}

TEST(InterleaveMap, DegreeOneIsIdentity)
{
    InterleaveMap map(16, 1);
    for (size_t b = 0; b < 16; ++b)
        EXPECT_EQ(map.physicalColumn(0, b), b);
}

TEST(InterleaveMap, ColumnsPartitionAcrossSlots)
{
    InterleaveMap map(8, 4);
    std::vector<int> owner(map.rowBits(), -1);
    for (size_t slot = 0; slot < 4; ++slot) {
        for (size_t b = 0; b < 8; ++b) {
            const size_t col = map.physicalColumn(slot, b);
            ASSERT_LT(col, map.rowBits());
            ASSERT_EQ(owner[col], -1) << "column claimed twice";
            owner[col] = int(slot);
            EXPECT_EQ(map.slotOf(col), slot);
            EXPECT_EQ(map.bitOf(col), b);
        }
    }
    for (int o : owner)
        EXPECT_NE(o, -1);
}

TEST(InterleaveMap, AdjacentColumnsBelongToDifferentWords)
{
    // The defining property of bit interleaving (Figure 2(a)): a
    // physically contiguous burst of width <= degree touches each
    // word at most once.
    InterleaveMap map(64, 4);
    for (size_t col = 0; col + 1 < map.rowBits(); ++col)
        EXPECT_NE(map.slotOf(col), map.slotOf(col + 1));
}

TEST(InterleaveMap, ContiguousBurstFootprintPerWord)
{
    // A burst of degree*w contiguous columns touches exactly w bits
    // in each word, and those bits are contiguous within the word.
    InterleaveMap map(64, 4);
    const size_t width = 4 * 8; // 32 physical columns
    const size_t start = 20;
    std::vector<std::vector<size_t>> touched(4);
    for (size_t col = start; col < start + width; ++col)
        touched[map.slotOf(col)].push_back(map.bitOf(col));
    for (size_t slot = 0; slot < 4; ++slot) {
        ASSERT_EQ(touched[slot].size(), 8u);
        for (size_t i = 1; i < touched[slot].size(); ++i)
            EXPECT_EQ(touched[slot][i], touched[slot][i - 1] + 1);
    }
}

TEST(InterleaveMap, ExtractDepositRoundTrip)
{
    Rng rng(70);
    InterleaveMap map(72, 4);
    BitVector row(map.rowBits());
    std::vector<BitVector> words;
    for (size_t slot = 0; slot < 4; ++slot) {
        BitVector w(72);
        for (size_t b = 0; b < 72; ++b)
            w.set(b, rng.nextBool());
        map.depositWord(row, slot, w);
        words.push_back(w);
    }
    for (size_t slot = 0; slot < 4; ++slot)
        EXPECT_EQ(map.extractWord(row, slot), words[slot]);
}

TEST(InterleaveMap, DepositDoesNotDisturbOtherSlots)
{
    InterleaveMap map(8, 2);
    BitVector row(16);
    BitVector a(8, 0xFF);
    map.depositWord(row, 0, a);
    const BitVector before = map.extractWord(row, 1);
    map.depositWord(row, 0, BitVector(8, 0x00));
    EXPECT_EQ(map.extractWord(row, 1), before);
}

TEST(InterleaveMap, ContiguousCoverageArithmetic)
{
    // EDC8 + 4-way interleave detects 32-bit row bursts (the paper's
    // L1 configuration).
    InterleaveMap map(72, 4);
    EXPECT_EQ(map.contiguousCoverage(8), 32u);
    // EDC16 + 2-way detects 32-bit bursts (the L2 configuration).
    InterleaveMap l2(272, 2);
    EXPECT_EQ(l2.contiguousCoverage(16), 32u);
}

} // namespace
} // namespace tdc
