#include <gtest/gtest.h>

#include <set>

#include "array/fault.hh"

namespace tdc
{
namespace
{

TEST(FaultInjector, SingleBitFlipsExactlyOneCell)
{
    Rng rng(80);
    FaultInjector inj(rng);
    MemoryArray arr(16, 16);
    const FaultEvent ev = inj.injectSingleBit(arr);
    EXPECT_EQ(ev.cells.size(), 1u);
    EXPECT_EQ(ev.width(), 1u);
    EXPECT_EQ(ev.height(), 1u);
    size_t flipped = 0;
    for (size_t r = 0; r < 16; ++r)
        flipped += arr.readRow(r).popcount();
    EXPECT_EQ(flipped, 1u);
}

TEST(FaultInjector, RowBurstIsContiguous)
{
    Rng rng(81);
    FaultInjector inj(rng);
    MemoryArray arr(8, 64);
    const FaultEvent ev = inj.injectRowBurst(arr, 5, 12);
    EXPECT_EQ(ev.cells.size(), 12u);
    EXPECT_EQ(ev.width(), 12u);
    EXPECT_EQ(ev.height(), 1u);
    const BitVector row = arr.readRow(5);
    EXPECT_EQ(row.popcount(), 12u);
    EXPECT_EQ(row.findLast() - row.findFirst() + 1, 12u);
}

TEST(FaultInjector, RowBurstAtFixedOffset)
{
    Rng rng(82);
    FaultInjector inj(rng);
    MemoryArray arr(4, 32);
    const FaultEvent ev = inj.injectRowBurst(arr, 0, 4, 10);
    EXPECT_EQ(ev.colLo, 10u);
    EXPECT_EQ(ev.colHi, 13u);
    for (size_t c = 10; c < 14; ++c)
        EXPECT_TRUE(arr.readBit(0, c));
}

TEST(FaultInjector, ColumnBurstIsVertical)
{
    Rng rng(83);
    FaultInjector inj(rng);
    MemoryArray arr(64, 8);
    const FaultEvent ev = inj.injectColumnBurst(arr, 3, 20);
    EXPECT_EQ(ev.cells.size(), 20u);
    EXPECT_EQ(ev.height(), 20u);
    EXPECT_EQ(ev.width(), 1u);
    EXPECT_EQ(arr.readRow(ev.rowLo).popcount(), 1u);
    for (size_t r = ev.rowLo; r <= ev.rowHi; ++r)
        EXPECT_TRUE(arr.readBit(r, 3));
}

TEST(FaultInjector, SolidClusterFlipsEveryCell)
{
    Rng rng(84);
    FaultInjector inj(rng);
    MemoryArray arr(64, 64);
    const FaultEvent ev = inj.injectCluster(arr, 8, 8, 1.0);
    EXPECT_EQ(ev.cells.size(), 64u);
    EXPECT_EQ(ev.width(), 8u);
    EXPECT_EQ(ev.height(), 8u);
    for (size_t r = ev.rowLo; r <= ev.rowHi; ++r)
        for (size_t c = ev.colLo; c <= ev.colHi; ++c)
            EXPECT_TRUE(arr.readBit(r, c));
}

TEST(FaultInjector, SparseClusterStaysInsideBoundingBox)
{
    Rng rng(85);
    FaultInjector inj(rng);
    MemoryArray arr(128, 128);
    const FaultEvent ev = inj.injectCluster(arr, 16, 16, 0.4);
    EXPECT_GT(ev.cells.size(), 0u);
    for (auto [r, c] : ev.cells) {
        EXPECT_GE(r, ev.rowLo);
        EXPECT_LE(r, ev.rowHi);
        EXPECT_GE(c, ev.colLo);
        EXPECT_LE(c, ev.colHi);
    }
    // Every spanned row participates (footprint is exact).
    std::set<size_t> rows_hit;
    for (auto [r, c] : ev.cells)
        rows_hit.insert(r);
    EXPECT_EQ(rows_hit.size(), 16u);
}

TEST(FaultInjector, FullRowAndColumn)
{
    Rng rng(86);
    FaultInjector inj(rng);
    MemoryArray arr(32, 48);
    inj.injectFullRow(arr, 7);
    EXPECT_EQ(arr.readRow(7).popcount(), 48u);
    inj.injectFullColumn(arr, 11);
    // Row 7 column 11 flipped twice: back to zero.
    EXPECT_FALSE(arr.readBit(7, 11));
    EXPECT_TRUE(arr.readBit(0, 11));
    EXPECT_TRUE(arr.readBit(31, 11));
}

TEST(FaultInjector, HardFaultsAreStuckAt)
{
    Rng rng(87);
    FaultInjector inj(rng);
    MemoryArray arr(16, 16);
    const FaultEvent ev = inj.injectSingleBit(arr,
                                              FaultPersistence::kStuckAt);
    EXPECT_EQ(arr.faultCount(), 1u);
    auto [r, c] = ev.cells[0];
    const bool observed = arr.readBit(r, c);
    // Writing the complement must not change the observed value.
    arr.writeBit(r, c, !observed);
    EXPECT_EQ(arr.readBit(r, c), observed);
}

TEST(FaultInjector, RandomHardFaultsAreDistinct)
{
    Rng rng(88);
    FaultInjector inj(rng);
    MemoryArray arr(64, 64);
    const FaultEvent ev = inj.injectRandomHardFaults(arr, 100);
    EXPECT_EQ(ev.cells.size(), 100u);
    EXPECT_EQ(arr.faultCount(), 100u);
    std::set<std::pair<size_t, size_t>> unique(ev.cells.begin(),
                                               ev.cells.end());
    EXPECT_EQ(unique.size(), 100u);
}

TEST(FaultEvent, DescribeMentionsShapeAndSize)
{
    Rng rng(89);
    FaultInjector inj(rng);
    MemoryArray arr(8, 8);
    const FaultEvent ev = inj.injectCluster(arr, 4, 2, 1.0);
    const std::string s = ev.describe();
    EXPECT_NE(s.find("cluster"), std::string::npos);
    EXPECT_NE(s.find("4x2"), std::string::npos);
    EXPECT_NE(s.find("soft"), std::string::npos);
}

} // namespace
} // namespace tdc
