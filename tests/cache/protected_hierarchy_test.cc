#include <gtest/gtest.h>

#include <map>

#include "array/fault.hh"
#include "cache/protected_hierarchy.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

CacheParams
smallL1()
{
    CacheParams p;
    p.capacityBytes = 8 * 1024; // 128 lines
    p.associativity = 2;
    p.lineBytes = 64;
    p.name = "L1";
    return p;
}

CacheParams
smallL2()
{
    CacheParams p;
    p.capacityBytes = 32 * 1024; // 512 lines
    p.associativity = 4;
    p.lineBytes = 64;
    p.name = "L2";
    return p;
}

TwoDimConfig
bankConfig()
{
    TwoDimConfig cfg = TwoDimConfig::l1Default();
    cfg.dataRows = 64;
    cfg.verticalParityRows = 8;
    return cfg;
}

LineData
patternLine(Rng &rng)
{
    LineData line;
    for (auto &w : line.words)
        w = rng.next();
    return line;
}

TEST(ProtectedHierarchy, ReadsReturnWhatWasWritten)
{
    Rng rng(1);
    ProtectedCacheHierarchy h(smallL1(), smallL2(), bankConfig(),
                              bankConfig());
    std::map<uint64_t, LineData> shadow;
    // Working set larger than L1 but within L2.
    for (int step = 0; step < 3000; ++step) {
        const uint64_t addr = rng.nextBelow(256) * 64;
        if (rng.nextBool(0.4)) {
            const LineData d = patternLine(rng);
            h.writeLine(addr, d);
            shadow[addr] = d;
        } else if (shadow.count(addr)) {
            ASSERT_EQ(h.readLine(addr), shadow[addr]) << "step " << step;
        }
    }
    EXPECT_GT(h.stats().l1Misses, 0u);
    EXPECT_GT(h.stats().writebacksToL2, 0u);
}

TEST(ProtectedHierarchy, SurvivesWorkingSetBeyondL2)
{
    // Lines spill all the way to memory and come back intact.
    Rng rng(2);
    ProtectedCacheHierarchy h(smallL1(), smallL2(), bankConfig(),
                              bankConfig());
    std::map<uint64_t, LineData> shadow;
    for (uint64_t i = 0; i < 1024; ++i) { // 2x the L2 line count
        const uint64_t addr = i * 64;
        const LineData d = patternLine(rng);
        h.writeLine(addr, d);
        shadow[addr] = d;
    }
    for (auto &[addr, d] : shadow)
        ASSERT_EQ(h.readLine(addr), d);
    EXPECT_GT(h.stats().writebacksToMemory, 0u);
    EXPECT_EQ(h.stats().dataLossEvents, 0u);
}

TEST(ProtectedHierarchy, ClusterInL1StoreIsTransparent)
{
    Rng rng(3);
    ProtectedCacheHierarchy h(smallL1(), smallL2(), bankConfig(),
                              bankConfig());
    std::map<uint64_t, LineData> shadow;
    for (uint64_t i = 0; i < 128; ++i) {
        const uint64_t addr = i * 64;
        const LineData d = patternLine(rng);
        h.writeLine(addr, d);
        shadow[addr] = d;
    }
    // A 32x8 solid cluster hits one L1 data bank.
    FaultInjector inj(rng);
    inj.injectCluster(h.l1Data().bank(0).cells(), 32, 8, 1.0);

    // All lines still read correctly: recovery runs inside readWord.
    for (auto &[addr, d] : shadow)
        ASSERT_EQ(h.readLine(addr), d);
    EXPECT_EQ(h.stats().dataLossEvents, 0u);
}

TEST(ProtectedHierarchy, ClusterInL2StoreIsTransparent)
{
    Rng rng(4);
    ProtectedCacheHierarchy h(smallL1(), smallL2(), bankConfig(),
                              bankConfig());
    std::map<uint64_t, LineData> shadow;
    // Fill past L1 so much of the data lives only in L2.
    for (uint64_t i = 0; i < 400; ++i) {
        const uint64_t addr = i * 64;
        const LineData d = patternLine(rng);
        h.writeLine(addr, d);
        shadow[addr] = d;
    }
    FaultInjector inj(rng);
    inj.injectCluster(h.l2Data().bank(1).cells(), 32, 8, 1.0);
    ASSERT_TRUE(h.scrubAll());
    for (auto &[addr, d] : shadow)
        ASSERT_EQ(h.readLine(addr), d);
}

TEST(ProtectedHierarchy, PeriodicScrubUnderFaultStream)
{
    Rng rng(5);
    ProtectedCacheHierarchy h(smallL1(), smallL2(), bankConfig(),
                              bankConfig());
    FaultInjector inj(rng);
    std::map<uint64_t, LineData> shadow;
    for (int step = 0; step < 2000; ++step) {
        const uint64_t addr = rng.nextBelow(300) * 64;
        if (rng.nextBool(0.5)) {
            const LineData d = patternLine(rng);
            h.writeLine(addr, d);
            shadow[addr] = d;
        } else if (shadow.count(addr)) {
            ASSERT_EQ(h.readLine(addr), shadow[addr]) << "step " << step;
        }
        if (step % 250 == 100) {
            // In-coverage events in both levels, then scrub.
            inj.injectCluster(
                h.l1Data().bank(rng.nextBelow(h.l1Data().banks())).cells(),
                16, 4, 1.0);
            inj.injectCluster(
                h.l2Data().bank(rng.nextBelow(h.l2Data().banks())).cells(),
                16, 4, 1.0);
            ASSERT_TRUE(h.scrubAll()) << "step " << step;
        }
    }
    EXPECT_EQ(h.stats().dataLossEvents, 0u);
}

TEST(ProtectedHierarchy, StatsAreCoherent)
{
    Rng rng(6);
    ProtectedCacheHierarchy h(smallL1(), smallL2(), bankConfig(),
                              bankConfig());
    for (uint64_t i = 0; i < 64; ++i)
        h.writeLine(i * 64, patternLine(rng));
    for (uint64_t i = 0; i < 64; ++i)
        h.readLine(i * 64);
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.reads, 64u);
    EXPECT_EQ(s.writes, 64u);
    EXPECT_EQ(s.l1Hits + s.l1Misses, 128u);
    // Working set fits in L1: reads all hit.
    EXPECT_EQ(s.l1Hits, 64u + 0u + 64u - s.l1Misses);
}

} // namespace
} // namespace tdc
