#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

TEST(CacheParams, Table1Geometries)
{
    const CacheParams l1 = CacheParams::l1();
    EXPECT_EQ(l1.numSets(), 512u);
    EXPECT_EQ(l1.numLines(), 1024u);

    const CacheParams l2f = CacheParams::l2Fat();
    EXPECT_EQ(l2f.numLines(), 262144u);
    EXPECT_EQ(l2f.associativity, 8u);

    const CacheParams l2l = CacheParams::l2Lean();
    EXPECT_EQ(l2l.numLines(), 65536u);
    EXPECT_EQ(l2l.associativity, 16u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(CacheParams::l1());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1020, false).hit); // same 64B line
    EXPECT_FALSE(c.access(0x2000, false).hit);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsOldest)
{
    CacheParams p;
    p.capacityBytes = 4 * 64; // 2 sets x 2 ways
    p.associativity = 2;
    p.lineBytes = 64;
    Cache c(p);

    // Three lines mapping to set 0 (set stride = 2 lines = 128B).
    const uint64_t a = 0 * 128, b = 1 * 128 + 0, cc = 2 * 128;
    // a, b, c all map to set 0? set = (addr/64) % 2: a->0, b->0? 128/64=2 %2=0 yes.
    c.access(a, false);
    c.access(b, false);
    c.access(a, false); // a is now MRU
    const CacheAccessOutcome out = c.access(cc, false);
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedAddr, b); // b was LRU
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
}

TEST(Cache, WriteBackDirtyEviction)
{
    CacheParams p;
    p.capacityBytes = 2 * 64; // 1 set x 2 ways
    p.associativity = 2;
    p.lineBytes = 64;
    Cache c(p);

    c.access(0, true); // dirty
    c.access(64, false);
    const CacheAccessOutcome out = c.access(128, false); // evicts line 0
    EXPECT_TRUE(out.evicted);
    EXPECT_TRUE(out.evictedDirty);
    EXPECT_EQ(out.evictedAddr, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, WriteThroughNeverDirty)
{
    CacheParams p;
    p.capacityBytes = 2 * 64;
    p.associativity = 2;
    p.lineBytes = 64;
    p.writeBack = false;
    Cache c(p);
    c.access(0, true);
    c.access(64, true);
    const CacheAccessOutcome out = c.access(128, false);
    EXPECT_TRUE(out.evicted);
    EXPECT_FALSE(out.evictedDirty);
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(CacheParams::l1());
    c.access(0x5000, true);
    bool dirty = false;
    EXPECT_TRUE(c.invalidate(0x5000, &dirty));
    EXPECT_TRUE(dirty);
    EXPECT_FALSE(c.contains(0x5000));
    EXPECT_FALSE(c.invalidate(0x5000));
}

TEST(Cache, OccupancyGrowsToCapacity)
{
    CacheParams p;
    p.capacityBytes = 8 * 64;
    p.associativity = 2;
    p.lineBytes = 64;
    Cache c(p);
    for (uint64_t i = 0; i < 100; ++i)
        c.access(i * 64, false);
    EXPECT_EQ(c.occupancy(), 8u);
}

TEST(Cache, HitRateOnLoopingWorkingSet)
{
    // A working set that fits must converge to ~100% hit rate.
    Cache c(CacheParams::l1());
    for (int pass = 0; pass < 10; ++pass)
        for (uint64_t a = 0; a < 32 * 1024; a += 64)
            c.access(a, false);
    EXPECT_GT(c.hitRate(), 0.89);
    c.resetStats();
    for (uint64_t a = 0; a < 32 * 1024; a += 64)
        c.access(a, false);
    EXPECT_DOUBLE_EQ(c.hitRate(), 1.0);
}

TEST(Cache, ThrashingWorkingSetMissesHard)
{
    // A streaming footprint 4x the capacity re-misses every pass.
    Cache c(CacheParams::l1());
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t a = 0; a < 256 * 1024; a += 64)
            c.access(a, false);
    EXPECT_LT(c.hitRate(), 0.01);
}

TEST(Cache, SetIndexingIsConflictAccurate)
{
    // Lines separated by exactly numSets*lineBytes conflict; others
    // don't.
    const CacheParams p = CacheParams::l1(); // 512 sets, 2 ways
    Cache c(p);
    const uint64_t stride = p.numSets() * p.lineBytes;
    c.access(0, false);
    c.access(stride, false);
    c.access(2 * stride, false); // evicts addr 0
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(stride));
    EXPECT_TRUE(c.contains(2 * stride));
    // A line in a different set is untouched by this.
    c.access(64, false);
    EXPECT_TRUE(c.contains(64));
}

} // namespace
} // namespace tdc
