/**
 * @file
 * Cross-module integration tests: the 2D-coded array driven by a real
 * cache's access stream, the Section 5.2 yield scenario end to end,
 * and consistency between the timing simulator's protection traffic
 * and the functional coding layer's semantics.
 */

#include <gtest/gtest.h>

#include <map>

#include "array/fault.hh"
#include "cache/cache.hh"
#include "common/rng.hh"
#include "core/twod_array.hh"
#include "cpu/cmp_simulator.hh"
#include "reliability/soft_error_model.hh"
#include "workload/instruction_stream.hh"

namespace tdc
{
namespace
{

/**
 * Drive a 2D-protected data bank with the line-fill/write-back stream
 * of a real set-associative cache. Each cache line maps to one
 * (row, slot) word in the bank; every fill and write goes through
 * writeWord (read-before-write), every hit read through readWord.
 * Faults are injected mid-stream; data integrity is checked
 * continuously against a software-golden map.
 */
TEST(EndToEnd, CacheStreamOverTwoDimBank)
{
    Rng rng(4242);
    CacheParams cp;
    cp.capacityBytes = 16 * 1024; // 256 lines
    cp.associativity = 2;
    cp.lineBytes = 64;
    Cache cache(cp);

    TwoDimConfig cfg = TwoDimConfig::l1Default(); // 256 rows x 4 words
    TwoDimArray bank(cfg);
    FaultInjector inj(rng);

    // line index (0..255) -> (row, slot)
    auto place = [&](uint64_t line_addr) {
        const uint64_t idx = (line_addr / cp.lineBytes) % 256;
        return std::pair<size_t, size_t>(idx / 4, idx % 4);
    };

    // Golden copy is per bank word: distinct line addresses may share
    // a bank word (the bank models the cache's data array, and the
    // cache multiplexes lines onto it), so the invariant under test is
    // that each word always returns the last value written to it.
    std::map<std::pair<size_t, size_t>, uint64_t> golden;
    uint64_t next_value = 1;

    for (int step = 0; step < 4000; ++step) {
        // Working set a bit larger than the cache: evictions happen.
        const uint64_t addr = rng.nextBelow(320) * cp.lineBytes;
        const bool is_write = rng.nextBool(0.3);
        const CacheAccessOutcome out = cache.access(addr, is_write);
        auto [row, slot] = place(addr);

        const std::pair<size_t, size_t> word_key(row, slot);
        if (!out.hit || is_write) {
            // Fill or write: store a fresh value through the 2D bank.
            const uint64_t value = next_value++;
            bank.writeWord(row, slot, BitVector(64, value));
            golden[word_key] = value;
        } else if (golden.count(word_key)) {
            // Read hit: bank word must match the last written value.
            AccessResult res = bank.readWord(row, slot);
            ASSERT_TRUE(res.ok());
            const uint64_t expect = golden[word_key];
            ASSERT_EQ(res.data.toUint64(), expect) << "step " << step;
        }

        // Periodic error events + scrub.
        if (step % 500 == 250) {
            inj.injectCluster(bank.cells(), 16, 8, 1.0);
            ASSERT_TRUE(bank.scrub()) << "step " << step;
        }
    }
    EXPECT_TRUE(bank.verifyParity());
}

TEST(EndToEnd, Section52YieldScenario)
{
    // Manufacture-time: scatter single-bit stuck-at faults; SECDED
    // horizontal corrects them in line (no spares consumed). In the
    // field: soft-error clusters arrive; the vertical dimension keeps
    // recovering them even in words that carry a hard fault.
    Rng rng(777);
    TwoDimConfig cfg = TwoDimConfig::secdedHorizontal();
    cfg.dataRows = 128;
    cfg.verticalParityRows = 16;
    TwoDimArray bank(cfg);

    std::vector<std::vector<BitVector>> golden(
        bank.rows(), std::vector<BitVector>(bank.wordsPerRow()));
    for (size_t r = 0; r < bank.rows(); ++r)
        for (size_t s = 0; s < bank.wordsPerRow(); ++s) {
            golden[r][s] = BitVector(64, rng.next());
            bank.writeWord(r, s, golden[r][s]);
        }

    // 12 manufacture-time hard faults (well below one per word-pair).
    FaultInjector inj(rng);
    inj.injectRandomHardFaults(bank.cells(), 12);

    // All data still readable (inline SECDED corrections).
    for (size_t r = 0; r < bank.rows(); ++r)
        for (size_t s = 0; s < bank.wordsPerRow(); ++s) {
            AccessResult res = bank.readWord(r, s);
            ASSERT_TRUE(res.ok());
            ASSERT_EQ(res.data, golden[r][s]);
        }

    // Five years of in-field events: bursts within coverage.
    for (int event = 0; event < 20; ++event) {
        inj.injectRowBurst(bank.cells(),
                           rng.nextBelow(bank.rows()), 8);
        ASSERT_TRUE(bank.scrub()) << "event " << event;
        for (size_t r = 0; r < bank.rows(); ++r)
            for (size_t s = 0; s < bank.wordsPerRow(); ++s)
                ASSERT_EQ(bank.readWord(r, s).data, golden[r][s]);
    }

    // The closed-form model agrees qualitatively: with 2D the success
    // probability is 1; without it, it decays.
    SoftErrorModel model(ReliabilityParams::figure8b(0.00005));
    EXPECT_LT(model.successProbability(5.0), 1.0);
    EXPECT_DOUBLE_EQ(model.successProbabilityWith2D(5.0), 1.0);
}

TEST(EndToEnd, SimulatorTrafficMatchesCodingSemantics)
{
    // The timing simulator must charge exactly one extra read per
    // array write (store drain or fill) — the same rule the
    // functional TwoDimArray implements (readBeforeWrites == writes).
    const WorkloadProfile &w = workloadByName("OLTP");
    CmpSimulator sim(CmpConfig::fat(), w, ProtectionConfig::l1Only(false),
                     9);
    const CmpSimResult r = sim.run(50000);
    EXPECT_EQ(r.l1ExtraReads, r.l1Writes + r.l1FillEvict);

    TwoDimArray arr(TwoDimConfig::l1Default());
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        arr.writeWord(rng.nextBelow(arr.rows()), rng.nextBelow(4),
                      BitVector(64, rng.next()));
    EXPECT_EQ(arr.stats().readBeforeWrites, arr.stats().writes);
}

TEST(EndToEnd, MatchedPairRunsShareInstructionStreams)
{
    // The SimFlex-style matched-pair methodology requires baseline and
    // protected runs to see identical instruction sequences: their
    // committed instruction counts may differ (stalls), but their
    // demand miss *rates* must be statistically identical.
    const WorkloadProfile &w = workloadByName("DSS");
    CmpSimulator base(CmpConfig::lean(), w, ProtectionConfig::none(), 5);
    CmpSimulator prot(CmpConfig::lean(), w, ProtectionConfig::full(true),
                      5);
    const CmpSimResult rb = base.run(80000);
    const CmpSimResult rp = prot.run(80000);
    const double base_miss_rate =
        double(rb.l2ReadsData) / double(rb.l1ReadsData);
    const double prot_miss_rate =
        double(rp.l2ReadsData) / double(rp.l1ReadsData);
    EXPECT_NEAR(base_miss_rate, prot_miss_rate, 0.004);
    // And protection can only lower IPC, never raise it materially.
    EXPECT_LT(rp.ipc(), rb.ipc() * 1.005);
}

TEST(EndToEnd, RecoveryUnderConcurrentHardAndSoftFaults)
{
    // Mixed persistence: stuck-at cells plus a transient cluster in
    // the same bank. Scrub must repair the transients; the stuck
    // cells keep being inline-corrected (SECDED horizontal).
    Rng rng(31415);
    TwoDimConfig cfg = TwoDimConfig::secdedHorizontal();
    cfg.dataRows = 64;
    cfg.verticalParityRows = 8;
    TwoDimArray bank(cfg);
    std::vector<std::vector<BitVector>> golden(
        bank.rows(), std::vector<BitVector>(bank.wordsPerRow()));
    for (size_t r = 0; r < bank.rows(); ++r)
        for (size_t s = 0; s < bank.wordsPerRow(); ++s) {
            golden[r][s] = BitVector(64, rng.next());
            bank.writeWord(r, s, golden[r][s]);
        }

    FaultInjector inj(rng);
    inj.injectRandomHardFaults(bank.cells(), 5);
    inj.injectCluster(bank.cells(), 8, 4, 1.0);

    ASSERT_TRUE(bank.scrub());
    for (size_t r = 0; r < bank.rows(); ++r)
        for (size_t s = 0; s < bank.wordsPerRow(); ++s)
            ASSERT_EQ(bank.readWord(r, s).data, golden[r][s]);
}

} // namespace
} // namespace tdc
