#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/hsiao.hh"

namespace tdc
{
namespace
{

TEST(HsiaoSecDed, PaperGeometries)
{
    // The two word widths the paper protects: (72,64) and (266,256).
    HsiaoSecDedCode l1(64);
    EXPECT_EQ(l1.checkBits(), 8u);
    EXPECT_EQ(l1.codewordBits(), 72u);

    HsiaoSecDedCode l2(256);
    EXPECT_EQ(l2.checkBits(), 10u);
    EXPECT_EQ(l2.codewordBits(), 266u);
}

TEST(HsiaoSecDed, CheckBitsForSmallWidths)
{
    EXPECT_EQ(HsiaoSecDedCode::checkBitsFor(8), 5u);  // (13,8)
    EXPECT_EQ(HsiaoSecDedCode::checkBitsFor(16), 6u); // (22,16)
    EXPECT_EQ(HsiaoSecDedCode::checkBitsFor(32), 7u); // (39,32)
    EXPECT_EQ(HsiaoSecDedCode::checkBitsFor(48), 7u);
}

class HsiaoWidthTest : public ::testing::TestWithParam<size_t>
{
  protected:
    HsiaoSecDedCode code{GetParam()};
};

TEST_P(HsiaoWidthTest, CleanRoundTrip)
{
    Rng rng(21);
    const size_t k = GetParam();
    for (int trial = 0; trial < 50; ++trial) {
        BitVector data(k);
        for (size_t i = 0; i < k; ++i)
            data.set(i, rng.nextBool());
        auto result = code.decode(code.encode(data));
        EXPECT_TRUE(result.clean());
        EXPECT_EQ(result.data, data);
    }
}

TEST_P(HsiaoWidthTest, CorrectsEverySingleBitError)
{
    Rng rng(22);
    const size_t k = GetParam();
    BitVector data(k);
    for (size_t i = 0; i < k; ++i)
        data.set(i, rng.nextBool());
    BitVector cw = code.encode(data);
    for (size_t i = 0; i < cw.size(); ++i) {
        BitVector bad = cw;
        bad.flip(i);
        auto result = code.decode(bad);
        ASSERT_TRUE(result.corrected()) << "bit " << i;
        EXPECT_EQ(result.data, data) << "bit " << i;
        ASSERT_EQ(result.correctedPositions.size(), 1u);
        EXPECT_EQ(result.correctedPositions[0], i);
    }
}

TEST_P(HsiaoWidthTest, DetectsEveryDoubleBitError)
{
    Rng rng(23);
    const size_t k = GetParam();
    BitVector data(k);
    for (size_t i = 0; i < k; ++i)
        data.set(i, rng.nextBool());
    BitVector cw = code.encode(data);
    const size_t n = cw.size();
    // Exhaustive for small widths, randomized pairs for wide words.
    const bool exhaustive = n <= 80;
    const int random_trials = 2000;
    auto check_pair = [&](size_t i, size_t j) {
        BitVector bad = cw;
        bad.flip(i);
        bad.flip(j);
        EXPECT_TRUE(code.decode(bad).uncorrectable())
            << "pair " << i << "," << j;
    };
    if (exhaustive) {
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                check_pair(i, j);
    } else {
        for (int t = 0; t < random_trials; ++t) {
            const size_t i = rng.nextBelow(n);
            size_t j;
            do {
                j = rng.nextBelow(n);
            } while (j == i);
            check_pair(i, j);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, HsiaoWidthTest,
                         ::testing::Values(8, 16, 32, 48, 64, 128, 256));

TEST(HsiaoSecDed, MinDistanceIsFour)
{
    HsiaoSecDedCode code(16);
    EXPECT_EQ(code.minDistance(), 4u);
}

TEST(HsiaoSecDed, RowWeightsAreBalancedAndCounted)
{
    HsiaoSecDedCode code(64);
    // Hsiao (72,64): total H weight = 64 data columns (mostly weight 3)
    // + 8 unit check columns.
    EXPECT_GE(code.totalRowWeight(), 64u * 3 + 8);
    EXPECT_GE(code.maxRowWeight(), (code.totalRowWeight() + 7) / 8);
    EXPECT_LT(code.maxRowWeight(), 72u);
}

TEST(HsiaoSecDed, TripleErrorNeverMiscorrectsSilently)
{
    // With d_min = 4, three errors either look like a (wrong) single-
    // bit correction or are flagged; they must never decode as clean.
    HsiaoSecDedCode code(32);
    Rng rng(25);
    BitVector data(32, 0xCAFEBABE);
    BitVector cw = code.encode(data);
    for (int trial = 0; trial < 500; ++trial) {
        size_t a = rng.nextBelow(cw.size()), b, c;
        do {
            b = rng.nextBelow(cw.size());
        } while (b == a);
        do {
            c = rng.nextBelow(cw.size());
        } while (c == a || c == b);
        BitVector bad = cw;
        bad.flip(a);
        bad.flip(b);
        bad.flip(c);
        EXPECT_FALSE(code.decode(bad).clean());
    }
}

} // namespace
} // namespace tdc
