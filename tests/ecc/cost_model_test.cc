#include <gtest/gtest.h>

#include "ecc/cost_model.hh"

namespace tdc
{
namespace
{

TEST(CostModel, StorageOverheadMatchesPaperFigure1b)
{
    // Figure 1(b): extra memory storage for 64-bit words.
    EXPECT_DOUBLE_EQ(codingCost(CodeKind::kEdc8, 64).storageOverhead,
                     8.0 / 64.0); // 12.5%
    EXPECT_DOUBLE_EQ(codingCost(CodeKind::kSecDed, 64).storageOverhead,
                     8.0 / 64.0); // 12.5%
    EXPECT_DOUBLE_EQ(codingCost(CodeKind::kDecTed, 64).storageOverhead,
                     15.0 / 64.0);
    EXPECT_DOUBLE_EQ(codingCost(CodeKind::kQecPed, 64).storageOverhead,
                     29.0 / 64.0);
    // OECNED on 64b: 57/64 = 89.06% -> the "89.1%" in Figure 3(b).
    EXPECT_NEAR(codingCost(CodeKind::kOecNed, 64).storageOverhead, 0.891,
                0.001);
}

TEST(CostModel, WiderWordsAmortizeCheckBits)
{
    // Figure 1(b): 256-bit words pay relatively less for every code.
    for (CodeKind kind : kFigure1Kinds) {
        EXPECT_LT(codingCost(kind, 256).storageOverhead,
                  codingCost(kind, 64).storageOverhead)
            << codeKindName(kind);
    }
}

TEST(CostModel, LatencyOrderingMatchesStrength)
{
    // Detection latency must be monotonically non-decreasing in code
    // strength for a fixed word size (Figure 7 middle bars).
    const auto edc = codingCost(CodeKind::kEdc8, 64);
    const auto sec = codingCost(CodeKind::kSecDed, 64);
    const auto dec = codingCost(CodeKind::kDecTed, 64);
    const auto oec = codingCost(CodeKind::kOecNed, 64);
    EXPECT_LE(edc.detectLevels, sec.detectLevels);
    EXPECT_LE(sec.detectLevels, dec.detectLevels + dec.correctLevels);
    EXPECT_LT(dec.detectLevels + dec.correctLevels,
              oec.detectLevels + oec.correctLevels);
}

TEST(CostModel, Edc8MatchesByteParityLatency)
{
    // The paper's argument for EDC8 in L1: same latency class as byte
    // parity (XOR over 8 bits + small OR), no correction stage.
    const auto edc8 = codingCost(CodeKind::kEdc8, 64);
    EXPECT_EQ(edc8.encodeLevels, 3u); // log2(8)
    EXPECT_EQ(edc8.correctLevels, 0u);
}

TEST(CostModel, EnergyGrowsWithStrength)
{
    const auto sec = codingCost(CodeKind::kSecDed, 64);
    const auto dec = codingCost(CodeKind::kDecTed, 64);
    const auto qec = codingCost(CodeKind::kQecPed, 64);
    const auto oec = codingCost(CodeKind::kOecNed, 64);
    EXPECT_LT(sec.detectGates, dec.detectGates);
    EXPECT_LT(dec.detectGates, qec.detectGates);
    EXPECT_LT(qec.detectGates, oec.detectGates);
}

TEST(CostModel, CheckBitsOfConvenience)
{
    EXPECT_EQ(checkBitsOf(CodeKind::kSecDed, 64), 8u);
    EXPECT_EQ(checkBitsOf(CodeKind::kSecDed, 256), 10u);
    EXPECT_EQ(checkBitsOf(CodeKind::kOecNed, 64), 57u);
}

TEST(CostModel, DataBitsRecorded)
{
    const auto c = codingCost(CodeKind::kDecTed, 128);
    EXPECT_EQ(c.dataBits, 128u);
    EXPECT_EQ(c.checkBits, 17u); // GF(2^8): 2*8 inner + 1 extended parity
}

} // namespace
} // namespace tdc
