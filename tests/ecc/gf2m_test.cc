#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/gf2m.hh"

namespace tdc
{
namespace
{

class GF2mFieldTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    GF2m field{GetParam()};
};

TEST_P(GF2mFieldTest, AlphaHasFullOrder)
{
    // alpha^i for i in [0, order) must enumerate all nonzero elements.
    std::vector<bool> seen(field.size(), false);
    for (uint32_t i = 0; i < field.order(); ++i) {
        const uint32_t v = field.alphaPow(i);
        ASSERT_NE(v, 0u);
        ASSERT_FALSE(seen[v]) << "repeat at exponent " << i;
        seen[v] = true;
    }
}

TEST_P(GF2mFieldTest, LogIsInverseOfExp)
{
    for (uint32_t a = 1; a < field.size(); ++a)
        EXPECT_EQ(field.alphaPow(field.log(a)), a);
}

TEST_P(GF2mFieldTest, MultiplicationCommutesAndAssociates)
{
    Rng rng(31 + GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        const uint32_t a = uint32_t(rng.nextBelow(field.size()));
        const uint32_t b = uint32_t(rng.nextBelow(field.size()));
        const uint32_t c = uint32_t(rng.nextBelow(field.size()));
        EXPECT_EQ(field.mul(a, b), field.mul(b, a));
        EXPECT_EQ(field.mul(field.mul(a, b), c),
                  field.mul(a, field.mul(b, c)));
    }
}

TEST_P(GF2mFieldTest, DistributesOverAddition)
{
    Rng rng(32 + GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        const uint32_t a = uint32_t(rng.nextBelow(field.size()));
        const uint32_t b = uint32_t(rng.nextBelow(field.size()));
        const uint32_t c = uint32_t(rng.nextBelow(field.size()));
        EXPECT_EQ(field.mul(a, field.add(b, c)),
                  field.add(field.mul(a, b), field.mul(a, c)));
    }
}

TEST_P(GF2mFieldTest, InverseIsInverse)
{
    for (uint32_t a = 1; a < field.size(); ++a)
        EXPECT_EQ(field.mul(a, field.inv(a)), 1u);
}

TEST_P(GF2mFieldTest, DivisionMatchesInverseMultiply)
{
    Rng rng(33 + GetParam());
    for (int trial = 0; trial < 100; ++trial) {
        const uint32_t a = uint32_t(rng.nextBelow(field.size()));
        const uint32_t b = 1 + uint32_t(rng.nextBelow(field.order()));
        EXPECT_EQ(field.div(a, b), field.mul(a, field.inv(b)));
    }
}

TEST_P(GF2mFieldTest, NegativeExponents)
{
    EXPECT_EQ(field.alphaPow(-1), field.inv(2)); // alpha = 2
    EXPECT_EQ(field.alphaPow(-int64_t(field.order())), 1u);
    EXPECT_EQ(field.alphaPow(0), 1u);
}

TEST_P(GF2mFieldTest, PowMatchesRepeatedMul)
{
    Rng rng(34 + GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        const uint32_t a = 1 + uint32_t(rng.nextBelow(field.order()));
        uint32_t acc = 1;
        for (int64_t e = 0; e < 8; ++e) {
            EXPECT_EQ(field.pow(a, e), acc);
            acc = field.mul(acc, a);
        }
    }
}

TEST_P(GF2mFieldTest, SqrMatchesMul)
{
    // Squaring is a bijection in characteristic 2, so the sqr table
    // shortcut must both agree with mul and enumerate every element.
    std::vector<bool> seen(field.size(), false);
    for (uint32_t a = 0; a < field.size(); ++a) {
        const uint32_t s = field.sqr(a);
        ASSERT_EQ(s, field.mul(a, a)) << a;
        ASSERT_FALSE(seen[s]) << a;
        seen[s] = true;
    }
}

TEST_P(GF2mFieldTest, SolveQuadraticExhaustive)
{
    // Every c: either no y with y^2 + y = c (odd trace, exactly half
    // the field) or the reported y and y^1 both solve it.
    uint32_t solvable = 0;
    for (uint32_t c = 0; c < field.size(); ++c) {
        const uint32_t y = field.solveQuadratic(c);
        if (y == GF2m::kNoRoot)
            continue;
        ++solvable;
        ASSERT_EQ(uint32_t(field.sqr(y) ^ y), c);
        const uint32_t y2 = y ^ 1;
        ASSERT_EQ(uint32_t(field.sqr(y2) ^ y2), c);
    }
    EXPECT_EQ(solvable, field.size() / 2);
}

TEST_P(GF2mFieldTest, MulColumnMatchesScalarMul)
{
    Rng rng(GetParam());
    std::vector<uint32_t> in(37), out(37);
    for (auto &v : in)
        v = uint32_t(rng.nextBelow(field.size()));
    for (uint32_t a : {uint32_t(0), uint32_t(1),
                       uint32_t(field.size() - 1), uint32_t(3)}) {
        field.mulColumn(a, in.data(), out.data(), in.size());
        for (size_t i = 0; i < in.size(); ++i)
            ASSERT_EQ(out[i], field.mul(a, in[i]));
    }
    // Aliasing in-place is allowed.
    std::vector<uint32_t> alias = in;
    field.mulColumn(5, alias.data(), alias.data(), alias.size());
    for (size_t i = 0; i < in.size(); ++i)
        ASSERT_EQ(alias[i], field.mul(5, in[i]));
}

INSTANTIATE_TEST_SUITE_P(Degrees, GF2mFieldTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10));

TEST(GFPoly, DegreeAndTrim)
{
    GFPoly p({1, 2, 0, 0});
    EXPECT_EQ(p.degree(), 1u);
    GFPoly zero({0, 0});
    EXPECT_TRUE(zero.isZero());
    EXPECT_EQ(zero.degree(), 0u);
}

TEST(GFPoly, EvalHorner)
{
    GF2m field(4);
    // p(x) = x^2 + x + 1 at x = alpha: alpha^2 ^ alpha ^ 1.
    GFPoly p({1, 1, 1});
    const uint32_t a = field.alphaPow(1);
    const uint32_t expect =
        field.add(field.add(field.mul(a, a), a), 1);
    EXPECT_EQ(p.eval(field, a), expect);
}

TEST(GFPoly, MulDegreeAdds)
{
    GF2m field(5);
    GFPoly a({1, 1});    // x + 1
    GFPoly b({2, 0, 1}); // x^2 + 2
    GFPoly c = GFPoly::mul(field, a, b);
    EXPECT_EQ(c.degree(), 3u);
}

TEST(GFPoly, RootsOfProductAreRootsOfFactors)
{
    GF2m field(6);
    Rng rng(40);
    const uint32_t r1 = 1 + uint32_t(rng.nextBelow(field.order()));
    const uint32_t r2 = 1 + uint32_t(rng.nextBelow(field.order()));
    // (x + r1)(x + r2)
    GFPoly p = GFPoly::mul(field, GFPoly({r1, 1}), GFPoly({r2, 1}));
    EXPECT_EQ(p.eval(field, r1), 0u);
    EXPECT_EQ(p.eval(field, r2), 0u);
}

TEST(GFPoly, DerivativeChar2)
{
    // d/dx (x^3 + x^2 + x + 1) = x^2 + 1 in characteristic 2
    // (the even-power term 2x vanishes).
    GFPoly p({1, 1, 1, 1});
    GFPoly d = p.derivative();
    EXPECT_EQ(d.coeff(0), 1u);
    EXPECT_EQ(d.coeff(1), 0u);
    EXPECT_EQ(d.coeff(2), 1u);
    EXPECT_EQ(d.degree(), 2u);
}

TEST(GFPoly, AddIsXorOfCoefficients)
{
    GFPoly a({1, 2, 3});
    GFPoly b({3, 2, 1});
    GFPoly c = GFPoly::add(a, b);
    EXPECT_EQ(c.coeff(0), 2u);
    EXPECT_EQ(c.coeff(1), 0u);
    EXPECT_EQ(c.coeff(2), 2u);
}

} // namespace
} // namespace tdc
