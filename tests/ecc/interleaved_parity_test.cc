#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/interleaved_parity.hh"

namespace tdc
{
namespace
{

TEST(InterleavedParity, Edc8Geometry)
{
    InterleavedParityCode code(64, 8);
    EXPECT_EQ(code.dataBits(), 64u);
    EXPECT_EQ(code.checkBits(), 8u);
    EXPECT_EQ(code.codewordBits(), 72u); // (72,64) like the paper
    EXPECT_EQ(code.burstDetectCapability(), 8u);
    EXPECT_DOUBLE_EQ(code.storageOverhead(), 0.125);
}

TEST(InterleavedParity, CheckBitsMatchDefinition)
{
    // parity_bit[i] = xor(data[i], data[i+8], data[i+16], ...) per the
    // paper's EDC8 definition.
    InterleavedParityCode code(64, 8);
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        BitVector data(64, rng.next());
        BitVector check = code.computeCheck(data);
        for (size_t i = 0; i < 8; ++i) {
            bool expected = false;
            for (size_t j = i; j < 64; j += 8)
                expected ^= data.get(j);
            EXPECT_EQ(check.get(i), expected);
        }
    }
}

TEST(InterleavedParity, CleanRoundTrip)
{
    InterleavedParityCode code(64, 8);
    Rng rng(4);
    for (int trial = 0; trial < 100; ++trial) {
        BitVector data(64, rng.next());
        auto result = code.decode(code.encode(data));
        EXPECT_TRUE(result.clean());
        EXPECT_EQ(result.data, data);
    }
}

/** Sweep over interleave factor n: the detection guarantee must hold
 *  for every contiguous burst of width <= n at every offset. */
class EdcBurstTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(EdcBurstTest, DetectsAllBurstsUpToN)
{
    const size_t n = GetParam();
    InterleavedParityCode code(64, n);
    Rng rng(5);
    BitVector data(64, rng.next());
    BitVector cw = code.encode(data);

    for (size_t width = 1; width <= n; ++width) {
        for (size_t start = 0; start + width <= 64; ++start) {
            BitVector bad = cw;
            for (size_t i = 0; i < width; ++i)
                bad.flip(start + i);
            EXPECT_TRUE(code.decode(bad).uncorrectable())
                << "n=" << n << " width=" << width << " start=" << start;
        }
    }
}

TEST_P(EdcBurstTest, RandomSubsetOfBurstAlsoDetected)
{
    // Any non-empty subset of a <= n wide window flips at most one bit
    // per parity class, so it must be detected too.
    const size_t n = GetParam();
    InterleavedParityCode code(64, n);
    Rng rng(6 + n);
    BitVector cw = code.encode(BitVector(64, rng.next()));
    for (int trial = 0; trial < 200; ++trial) {
        const size_t start = rng.nextBelow(64 - n + 1);
        BitVector bad = cw;
        size_t flips = 0;
        for (size_t i = 0; i < n; ++i) {
            if (rng.nextBool()) {
                bad.flip(start + i);
                ++flips;
            }
        }
        if (flips == 0)
            continue;
        EXPECT_TRUE(code.decode(bad).uncorrectable());
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, EdcBurstTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(InterleavedParity, BurstOfNPlusOneCanEscape)
{
    // Two flips n apart land in the same parity class and cancel:
    // documents why the paper pairs EDCn with n-wide coverage claims.
    InterleavedParityCode code(64, 8);
    BitVector cw = code.encode(BitVector(64, 0xDEADBEEF));
    cw.flip(0);
    cw.flip(8);
    EXPECT_TRUE(code.decode(cw).clean());
}

TEST(InterleavedParity, SyndromeIdentifiesColumnClasses)
{
    InterleavedParityCode code(64, 8);
    BitVector cw = code.encode(BitVector(64, 0x123456789ABCDEFull));
    cw.flip(3);  // class 3
    cw.flip(12); // class 4
    BitVector syn = code.syndrome(cw);
    EXPECT_EQ(syn.popcount(), 2u);
    EXPECT_TRUE(syn.get(3));
    EXPECT_TRUE(syn.get(4));
}

TEST(InterleavedParity, CheckBitErrorDetected)
{
    InterleavedParityCode code(64, 8);
    BitVector cw = code.encode(BitVector(64, 77));
    cw.flip(64 + 5); // flip a stored check bit
    auto result = code.decode(cw);
    EXPECT_TRUE(result.uncorrectable());
    // Data bits themselves are intact.
    EXPECT_EQ(result.data.toUint64(), 77u);
}

TEST(InterleavedParity, NonMultipleWordWidth)
{
    InterleavedParityCode code(48, 32); // tag-array geometry
    Rng rng(9);
    BitVector data(48, rng.next());
    auto result = code.decode(code.encode(data));
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.data, data);
}

} // namespace
} // namespace tdc
