/**
 * @file
 * Differential tests pinning the word-parallel codec paths (table-
 * driven Hsiao, folded EDC parity, byte-table BCH division) against
 * naive bit-loop references kept here as oracles.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/hsiao.hh"
#include "ecc/interleaved_parity.hh"

namespace tdc
{
namespace
{

BitVector
randomVector(Rng &rng, size_t nbits)
{
    BitVector v(nbits);
    for (size_t i = 0; i < nbits; ++i)
        v.set(i, rng.nextBool());
    return v;
}

// --- Hsiao oracle ---------------------------------------------------

/**
 * Re-derivation of the Hsiao H columns exactly as documented: all
 * odd-weight-(>=3) r-bit values, smallest weight first, ascending
 * numeric order within a weight; check columns are unit vectors.
 */
std::vector<uint64_t>
hsiaoColumnsRef(size_t k, size_t r)
{
    std::vector<uint64_t> cols;
    for (size_t w = 3; cols.size() < k && w <= r; w += 2) {
        for (uint64_t v = 0; v < (uint64_t(1) << r) && cols.size() < k;
             ++v) {
            if (size_t(std::popcount(v)) == w)
                cols.push_back(v);
        }
    }
    for (size_t i = 0; i < r; ++i)
        cols.push_back(uint64_t(1) << i);
    return cols;
}

/** Naive bit-at-a-time Hsiao check computation. */
BitVector
hsiaoCheckRef(const std::vector<uint64_t> &cols, size_t r,
              const BitVector &data)
{
    uint64_t acc = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        if (data.get(i))
            acc ^= cols[i];
    }
    return BitVector(r, acc);
}

class HsiaoDiffTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(HsiaoDiffTest, CheckBitsMatchNaiveColumnXor)
{
    const size_t k = GetParam();
    HsiaoSecDedCode code(k);
    const auto cols = hsiaoColumnsRef(k, code.checkBits());
    Rng rng(500 + k);
    for (int trial = 0; trial < 100; ++trial) {
        const BitVector data = randomVector(rng, k);
        ASSERT_EQ(code.computeCheck(data),
                  hsiaoCheckRef(cols, code.checkBits(), data))
            << "trial " << trial;
    }
}

TEST_P(HsiaoDiffTest, EverySingleBitErrorIsCorrectedAtItsPosition)
{
    const size_t k = GetParam();
    HsiaoSecDedCode code(k);
    Rng rng(600 + k);
    const BitVector data = randomVector(rng, k);
    const BitVector cw = code.encode(data);
    for (size_t i = 0; i < cw.size(); ++i) {
        BitVector bad = cw;
        bad.flip(i);
        const DecodeResult res = code.decode(bad);
        ASSERT_TRUE(res.corrected()) << "position " << i;
        ASSERT_EQ(res.correctedPositions.size(), 1u);
        ASSERT_EQ(res.correctedPositions[0], i);
        ASSERT_EQ(res.data, data) << "position " << i;
    }
}

TEST_P(HsiaoDiffTest, EveryDoubleBitErrorIsDetected)
{
    const size_t k = GetParam();
    HsiaoSecDedCode code(k);
    Rng rng(700 + k);
    const BitVector cw = code.encode(randomVector(rng, k));
    for (size_t i = 0; i < cw.size(); ++i) {
        for (size_t j = i + 1; j < cw.size(); ++j) {
            BitVector bad = cw;
            bad.flip(i);
            bad.flip(j);
            ASSERT_TRUE(code.decode(bad).uncorrectable())
                << "positions " << i << "," << j;
        }
    }
}

// k = 12 is deliberately not byte-aligned: it exercises the rowMask
// fallback instead of the byte-syndrome table.
INSTANTIATE_TEST_SUITE_P(Widths, HsiaoDiffTest,
                         ::testing::Values(size_t(12), size_t(16),
                                           size_t(64), size_t(256)));

// --- EDCn oracle ----------------------------------------------------

/** Naive per-bit interleaved parity. */
BitVector
edcCheckRef(size_t n, const BitVector &data)
{
    BitVector check(n);
    for (size_t i = 0; i < data.size(); ++i) {
        if (data.get(i))
            check.flip(i % n);
    }
    return check;
}

struct EdcGeometry
{
    size_t k;
    size_t n;
};

class EdcDiffTest : public ::testing::TestWithParam<EdcGeometry>
{
};

TEST_P(EdcDiffTest, CheckBitsMatchNaiveClassParity)
{
    const auto [k, n] = GetParam();
    InterleavedParityCode code(k, n);
    Rng rng(800 + k * 7 + n);
    for (int trial = 0; trial < 100; ++trial) {
        const BitVector data = randomVector(rng, k);
        ASSERT_EQ(code.computeCheck(data), edcCheckRef(n, data))
            << "trial " << trial;
    }
}

TEST_P(EdcDiffTest, SyndromeFlagsExactlyTheFlippedClasses)
{
    const auto [k, n] = GetParam();
    InterleavedParityCode code(k, n);
    Rng rng(900 + k * 7 + n);
    const BitVector cw = code.encode(randomVector(rng, k));
    EXPECT_TRUE(code.syndrome(cw).none());
    // Every single-bit error (data or check region) flips exactly its
    // own parity class, and decode must report detection.
    for (size_t i = 0; i < cw.size(); ++i) {
        BitVector bad = cw;
        bad.flip(i);
        const BitVector syn = code.syndrome(bad);
        ASSERT_EQ(syn.popcount(), 1u) << "position " << i;
        const size_t cls = i < k ? i % n : i - k;
        ASSERT_TRUE(syn.get(cls)) << "position " << i;
        ASSERT_TRUE(code.decode(bad).uncorrectable()) << "position " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, EdcDiffTest,
    ::testing::Values(
        // Paper codes (fast path): EDC8/64, EDC16/256, EDC32.
        EdcGeometry{64, 8}, EdcGeometry{256, 16}, EdcGeometry{256, 32},
        // Fast path with data widths off the word grid.
        EdcGeometry{72, 8}, EdcGeometry{100, 4}, EdcGeometry{65, 1},
        EdcGeometry{64, 64},
        // Generic class counts: the per-bit fallback.
        EdcGeometry{60, 3}, EdcGeometry{66, 6}, EdcGeometry{96, 24}));

// --- BCH oracle -----------------------------------------------------

/** Naive bit-serial LFSR division of x^r * d(x) by g(x). */
BitVector
bchRemainderRef(const std::vector<bool> &gen, size_t r,
                const BitVector &data)
{
    BitVector rem(r);
    for (size_t j = data.size(); j-- > 0;) {
        const bool feedback = rem.get(r - 1) ^ data.get(j);
        for (size_t i = r - 1; i > 0; --i)
            rem.set(i, rem.get(i - 1) ^ (feedback && gen[i]));
        rem.set(0, feedback && gen[0]);
    }
    return rem;
}

TEST(BchDiff, ByteTableDivisionMatchesBitSerialReference)
{
    for (size_t t : {2u, 4u, 8u}) {
        BchCode code(64, t);
        Rng rng(1000 + t);
        for (int trial = 0; trial < 50; ++trial) {
            const BitVector data = randomVector(rng, 64);
            ASSERT_EQ(code.computeCheck(data),
                      bchRemainderRef(code.generator(), code.checkBits(),
                                      data))
                << "t=" << t << " trial " << trial;
        }
    }
}

TEST(BchDiff, ScratchReuseKeepsDecodesIndependent)
{
    // Back-to-back decodes through the cached scratch buffers must not
    // leak state: interleave clean and corrupted codewords.
    BchCode code(64, 2);
    Rng rng(1100);
    const BitVector a = randomVector(rng, 64);
    const BitVector b = randomVector(rng, 64);
    const BitVector cwA = code.encode(a);
    BitVector cwB = code.encode(b);
    cwB.flip(5);
    cwB.flip(40);
    for (int round = 0; round < 10; ++round) {
        const DecodeResult ra = code.decode(cwA);
        ASSERT_TRUE(ra.clean());
        ASSERT_EQ(ra.data, a);
        const DecodeResult rb = code.decode(cwB);
        ASSERT_TRUE(rb.corrected());
        ASSERT_EQ(rb.data, b);
    }
}

} // namespace
} // namespace tdc
