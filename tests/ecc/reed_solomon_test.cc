/**
 * @file
 * The SymbolRsCode SSC-DSD contract, differential-pinned against its
 * symbol-serial naive oracle (the PR 2-3 pattern at symbol level):
 *  - encode produces zero-syndrome words and round-trips data;
 *  - EVERY single-symbol error (all positions x all values at b=4) is
 *    corrected back to the exact transmitted word;
 *  - every double-symbol error is detected, never miscorrected;
 *  - on random beyond-capacity garbage the fast decoder and the naive
 *    trial-patch oracle agree exactly (status and corrections);
 *  - erasure mode corrects the erased symbol plus one extra error.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"

namespace tdc
{
namespace
{

std::vector<uint32_t>
randomCodeword(const SymbolRsCode &rs, Rng &rng)
{
    std::vector<uint32_t> word(rs.codeSymbols(), 0);
    for (size_t i = SymbolRsCode::kCheckSymbols; i < word.size(); ++i)
        word[i] = uint32_t(rng.nextBelow(rs.field().size()));
    rs.encode(word);
    return word;
}

TEST(SymbolRs, EncodeYieldsZeroSyndromes)
{
    Rng rng(1);
    for (unsigned b : {4u, 8u}) {
        const SymbolRsCode rs(b, b == 4 ? 12 : 8);
        for (int i = 0; i < 50; ++i)
            EXPECT_TRUE(rs.syndromeClean(randomCodeword(rs, rng)));
    }
}

TEST(SymbolRs, EncodePreservesDataSymbols)
{
    const SymbolRsCode rs(4, 12);
    Rng rng(2);
    std::vector<uint32_t> word(rs.codeSymbols(), 0);
    for (size_t i = SymbolRsCode::kCheckSymbols; i < word.size(); ++i)
        word[i] = uint32_t(rng.nextBelow(16));
    const std::vector<uint32_t> data = word;
    rs.encode(word);
    for (size_t i = SymbolRsCode::kCheckSymbols; i < word.size(); ++i)
        EXPECT_EQ(word[i], data[i]);
}

TEST(SymbolRs, CtorRejectsOversizedAndEmptyCodes)
{
    EXPECT_THROW(SymbolRsCode(4, 13), std::invalid_argument); // n=16>15
    EXPECT_THROW(SymbolRsCode(4, 0), std::invalid_argument);
    EXPECT_NO_THROW(SymbolRsCode(4, 12));
    EXPECT_NO_THROW(SymbolRsCode(8, 252)); // n = 255
}

TEST(SymbolRs, ExhaustiveSingleSymbolCorrectionAtB4)
{
    const SymbolRsCode rs(4, 12);
    Rng rng(3);
    const std::vector<uint32_t> golden = randomCodeword(rs, rng);
    for (size_t pos = 0; pos < rs.codeSymbols(); ++pos) {
        for (uint32_t e = 1; e < rs.field().size(); ++e) {
            std::vector<uint32_t> word = golden;
            word[pos] ^= e;
            const SymbolDecodeResult res = rs.decode(word);
            ASSERT_TRUE(res.corrected()) << "pos " << pos << " e " << e;
            ASSERT_EQ(word, golden) << "pos " << pos << " e " << e;
            ASSERT_EQ(res.corrections.size(), 1u);
            EXPECT_EQ(res.corrections[0].first, pos);
            EXPECT_EQ(res.corrections[0].second, e);
        }
    }
}

TEST(SymbolRs, ExhaustiveSingleSymbolCorrectionAtB8)
{
    const SymbolRsCode rs(8, 8);
    Rng rng(4);
    const std::vector<uint32_t> golden = randomCodeword(rs, rng);
    for (size_t pos = 0; pos < rs.codeSymbols(); ++pos) {
        for (uint32_t e = 1; e < rs.field().size(); ++e) {
            std::vector<uint32_t> word = golden;
            word[pos] ^= e;
            ASSERT_TRUE(rs.decode(word).corrected())
                << "pos " << pos << " e " << e;
            ASSERT_EQ(word, golden) << "pos " << pos << " e " << e;
        }
    }
}

TEST(SymbolRs, EveryDoubleSymbolErrorIsDetectedAtB4)
{
    const SymbolRsCode rs(4, 12);
    Rng rng(5);
    const std::vector<uint32_t> golden = randomCodeword(rs, rng);
    for (size_t p = 0; p < rs.codeSymbols(); ++p) {
        for (size_t q = p + 1; q < rs.codeSymbols(); ++q) {
            for (uint32_t e1 = 1; e1 < 16; ++e1) {
                for (uint32_t e2 = 1; e2 < 16; ++e2) {
                    std::vector<uint32_t> word = golden;
                    word[p] ^= e1;
                    word[q] ^= e2;
                    ASSERT_TRUE(rs.decode(word).uncorrectable())
                        << p << "," << q << " e " << e1 << "," << e2;
                }
            }
        }
    }
}

TEST(SymbolRs, NaiveOracleAgreesOnCleanSingleAndDouble)
{
    for (unsigned b : {4u, 8u}) {
        const SymbolRsCode rs(b, b == 4 ? 12 : 8);
        Rng rng(6 + b);
        for (int i = 0; i < 30; ++i) {
            std::vector<uint32_t> word = randomCodeword(rs, rng);
            const size_t weight = rng.nextBelow(3); // 0, 1 or 2 errors
            std::vector<size_t> touched;
            while (touched.size() < weight) {
                const size_t pos = rng.nextBelow(rs.codeSymbols());
                bool seen = false;
                for (size_t t : touched)
                    seen |= t == pos;
                if (seen)
                    continue;
                word[pos] ^= uint32_t(rng.nextBelow(rs.field().size() - 1)) + 1;
                touched.push_back(pos);
            }
            std::vector<uint32_t> fast_word = word, naive_word = word;
            const SymbolDecodeResult fast = rs.decode(fast_word);
            const SymbolDecodeResult naive = rs.decodeNaive(naive_word);
            ASSERT_EQ(fast.status, naive.status) << "weight " << weight;
            ASSERT_EQ(fast_word, naive_word);
            ASSERT_EQ(fast.corrections, naive.corrections);
        }
    }
}

TEST(SymbolRs, NaiveOracleAgreesBeyondCapacity)
{
    // Random garbage words: mostly weight >= 3 patterns. The fast
    // decoder claims a correction exactly when a single-symbol patch
    // explains the syndromes -- which is precisely what the oracle
    // tests by trial-patching, so status AND patch must agree.
    for (unsigned b : {4u, 8u}) {
        const SymbolRsCode rs(b, b == 4 ? 12 : 8);
        Rng rng(100 + b);
        int corrected = 0, detected = 0;
        for (int i = 0; i < 300; ++i) {
            std::vector<uint32_t> word(rs.codeSymbols());
            for (uint32_t &sym : word)
                sym = uint32_t(rng.nextBelow(rs.field().size()));
            std::vector<uint32_t> fast_word = word, naive_word = word;
            const SymbolDecodeResult fast = rs.decode(fast_word);
            const SymbolDecodeResult naive = rs.decodeNaive(naive_word);
            ASSERT_EQ(fast.status, naive.status) << "word " << i;
            ASSERT_EQ(fast_word, naive_word) << "word " << i;
            ASSERT_EQ(fast.corrections, naive.corrections) << "word " << i;
            corrected += fast.corrected() ? 1 : 0;
            detected += fast.uncorrectable() ? 1 : 0;
        }
        // Random words should exercise both outcomes.
        EXPECT_GT(detected, 0) << "b=" << b;
        EXPECT_GT(corrected + detected, 250) << "b=" << b;
    }
}

TEST(SymbolRs, ErasureDecodeCorrectsDeadSymbolPlusOneError)
{
    const SymbolRsCode rs(4, 12);
    Rng rng(7);
    const std::vector<uint32_t> golden = randomCodeword(rs, rng);
    for (size_t dead = 0; dead < rs.codeSymbols(); ++dead) {
        // Erased symbol corrupted, plus one error somewhere else.
        for (size_t q = 0; q < rs.codeSymbols(); ++q) {
            if (q == dead)
                continue;
            std::vector<uint32_t> word = golden;
            word[dead] ^= 0x5u;
            word[q] ^= 0x9u;
            ASSERT_TRUE(rs.decodeErasure(word, dead).corrected())
                << dead << "," << q;
            ASSERT_EQ(word, golden) << dead << "," << q;
        }
        // Erasure alone.
        std::vector<uint32_t> word = golden;
        word[dead] ^= 0xFu;
        ASSERT_TRUE(rs.decodeErasure(word, dead).corrected());
        ASSERT_EQ(word, golden);
        // Error elsewhere while the dead symbol happens to be intact.
        word = golden;
        word[(dead + 1) % rs.codeSymbols()] ^= 0x3u;
        ASSERT_TRUE(rs.decodeErasure(word, dead).corrected());
        ASSERT_EQ(word, golden);
        // Clean word stays clean.
        word = golden;
        EXPECT_TRUE(rs.decodeErasure(word, dead).clean());
    }
}

TEST(SymbolRs, ErasurePlusDoubleErrorNeverPassesSilently)
{
    // 1 erasure + 2 errors exceeds d-1; the decoder may flag it or
    // miscorrect, but a "corrected" claim must at least be consistent:
    // re-encoding the result must produce a valid codeword.
    const SymbolRsCode rs(4, 12);
    Rng rng(8);
    const std::vector<uint32_t> golden = randomCodeword(rs, rng);
    for (int i = 0; i < 200; ++i) {
        std::vector<uint32_t> word = golden;
        const size_t dead = rng.nextBelow(rs.codeSymbols());
        word[dead] ^= uint32_t(rng.nextBelow(15)) + 1;
        for (int k = 0; k < 2; ++k)
            word[rng.nextBelow(rs.codeSymbols())] ^=
                uint32_t(rng.nextBelow(15)) + 1;
        const SymbolDecodeResult res = rs.decodeErasure(word, dead);
        if (res.corrected() || res.clean()) {
            EXPECT_TRUE(rs.syndromeClean(word));
        }
    }
}

} // namespace
} // namespace tdc
