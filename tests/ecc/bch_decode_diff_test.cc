/**
 * @file
 * Differential tests pinning the table-driven BCH decode engine
 * (byte-table syndromes, inversion-free Berlekamp-Massey, closed-form
 * + deflating-Chien error location) bit-exact against the retained
 * element-at-a-time oracle (decodeNaive), in the same spirit as the
 * word-parallel access-path differentials of the interleave layer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "ecc/bch.hh"

namespace tdc
{
namespace
{

/** Inject @p nerrs random distinct flips into @p cw. */
void
injectRandom(BitVector &cw, size_t nerrs, Rng &rng)
{
    std::vector<size_t> positions;
    while (positions.size() < nerrs) {
        const size_t p = rng.nextBelow(cw.size());
        bool dup = false;
        for (size_t q : positions)
            dup |= q == p;
        if (!dup)
            positions.push_back(p);
    }
    for (size_t p : positions)
        cw.flip(p);
}

void
expectSameDecode(const BchCode &code, const BitVector &cw,
                 const char *what)
{
    const DecodeResult fast = code.decode(cw);
    const DecodeResult naive = code.decodeNaive(cw);
    ASSERT_EQ(int(fast.status), int(naive.status)) << what;
    ASSERT_EQ(fast.data, naive.data) << what;
    ASSERT_EQ(fast.correctedPositions, naive.correctedPositions) << what;
}

struct BchParam
{
    size_t k;
    size_t t;
};

class BchDecodeDiffTest : public ::testing::TestWithParam<BchParam>
{
  protected:
    BchDecodeDiffTest() : code(GetParam().k, GetParam().t) {}
    BchCode code;
};

TEST_P(BchDecodeDiffTest, RandomErrorPatternsMatchOracle)
{
    // 0 .. t+2 random errors: clean, every correctable count, and
    // beyond-capacity patterns where the uncorrectable verdicts (and
    // any miscorrection the inner code is entitled to) must agree
    // exactly.
    Rng rng(60);
    const size_t k = GetParam().k;
    const size_t t = GetParam().t;
    for (size_t nerrs = 0; nerrs <= t + 2; ++nerrs) {
        for (int trial = 0; trial < 40; ++trial) {
            BitVector data(k);
            for (size_t i = 0; i < k; ++i)
                data.set(i, rng.nextBool());
            BitVector cw = code.encode(data);
            injectRandom(cw, nerrs, rng);
            expectSameDecode(code, cw,
                             ("nerrs=" + std::to_string(nerrs)).c_str());
        }
    }
}

TEST_P(BchDecodeDiffTest, BurstPatternsMatchOracle)
{
    // Contiguous bursts walk every alignment, covering check-bit and
    // data/check straddling positions systematically.
    Rng rng(61);
    const size_t k = GetParam().k;
    const size_t t = GetParam().t;
    BitVector data(k);
    for (size_t i = 0; i < k; ++i)
        data.set(i, rng.nextBool());
    const BitVector cw = code.encode(data);
    for (size_t width = 1; width <= t + 1; ++width) {
        for (size_t start = 0; start + width <= cw.size(); start += 3) {
            BitVector bad = cw;
            for (size_t i = 0; i < width; ++i)
                bad.flip(start + i);
            expectSameDecode(code, bad,
                             ("burst width=" + std::to_string(width) +
                              " start=" + std::to_string(start))
                                 .c_str());
        }
    }
}

// Every factory geometry (the DECTED/QECPED/OECNED inner codes at
// paper word widths) plus degree-odd/even field corners: m=5 (k=16),
// m=7 (k=64), m=8 (k=128, order divisible by 3), m=9 (k=256).
INSTANTIATE_TEST_SUITE_P(
    Geometries, BchDecodeDiffTest,
    ::testing::Values(BchParam{16, 2}, BchParam{32, 2}, BchParam{64, 2},
                      BchParam{64, 3}, BchParam{64, 4}, BchParam{64, 8},
                      BchParam{48, 4}, BchParam{128, 4},
                      BchParam{128, 3}, BchParam{256, 2},
                      BchParam{256, 8}));

TEST(BchDecodeDiff, ExhaustiveTriplesSmallCode)
{
    // Every 3-bit pattern on a small t=3 code: the closed-form cubic
    // solver (linearized-kernel path) sees every split/non-split case
    // the geometry can produce, compared against the oracle.
    BchCode code(16, 3);
    Rng rng(62);
    BitVector data(16);
    for (size_t i = 0; i < 16; ++i)
        data.set(i, rng.nextBool());
    const BitVector cw = code.encode(data);
    const size_t n = cw.size();
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            for (size_t l = j + 1; l < n; ++l) {
                BitVector bad = cw;
                bad.flip(i);
                bad.flip(j);
                bad.flip(l);
                const DecodeResult fast = code.decode(bad);
                const DecodeResult naive = code.decodeNaive(bad);
                ASSERT_EQ(int(fast.status), int(naive.status))
                    << i << "," << j << "," << l;
                ASSERT_EQ(fast.data, naive.data)
                    << i << "," << j << "," << l;
                ASSERT_EQ(fast.correctedPositions,
                          naive.correctedPositions)
                    << i << "," << j << "," << l;
            }
        }
    }
}

TEST(BchDecodeDiff, ExtendedCodeStillCorrectsAndDetects)
{
    // End-to-end sanity through the extended wrapper on the paper's
    // OECNED geometry: the fast inner engine must preserve the
    // correct-up-to-t / detect-t-plus-1 contract.
    ExtendedBchCode code(64, 8, "OECNED");
    Rng rng(63);
    for (int trial = 0; trial < 50; ++trial) {
        BitVector data(64, rng.next());
        BitVector cw = code.encode(data);
        injectRandom(cw, 8, rng);
        const DecodeResult res = code.decode(cw);
        ASSERT_TRUE(res.corrected());
        ASSERT_EQ(res.data, data);
    }
    for (int trial = 0; trial < 50; ++trial) {
        BitVector data(64, rng.next());
        BitVector cw = code.encode(data);
        injectRandom(cw, 9, rng);
        EXPECT_TRUE(code.decode(cw).uncorrectable());
    }
}

} // namespace
} // namespace tdc
