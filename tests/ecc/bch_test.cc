#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/code_factory.hh"

namespace tdc
{
namespace
{

/** Inject @p nerrs random distinct flips into @p cw. */
void
injectRandom(BitVector &cw, size_t nerrs, Rng &rng)
{
    std::vector<size_t> positions;
    while (positions.size() < nerrs) {
        const size_t p = rng.nextBelow(cw.size());
        bool dup = false;
        for (size_t q : positions)
            dup |= q == p;
        if (!dup)
            positions.push_back(p);
    }
    for (size_t p : positions)
        cw.flip(p);
}

TEST(BchCode, PaperGeometries64)
{
    // Check-bit counts the paper quotes for 64-bit words (Figure 3
    // uses the (121,64) OECNED; extended codes add the parity bit).
    ExtendedBchCode dec(64, 2, "DECTED");
    ExtendedBchCode qec(64, 4, "QECPED");
    ExtendedBchCode oec(64, 8, "OECNED");
    EXPECT_EQ(dec.codewordBits(), 79u); // 64 + 14 + 1
    EXPECT_EQ(qec.codewordBits(), 93u); // 64 + 28 + 1
    EXPECT_EQ(oec.codewordBits(), 121u); // 64 + 56 + 1: paper's (121,64)
}

TEST(BchCode, PaperGeometries256)
{
    ExtendedBchCode dec(256, 2, "DECTED");
    ExtendedBchCode qec(256, 4, "QECPED");
    ExtendedBchCode oec(256, 8, "OECNED");
    EXPECT_EQ(dec.checkBits(), 19u); // 2*9 + 1
    EXPECT_EQ(qec.checkBits(), 37u); // 4*9 + 1
    EXPECT_EQ(oec.checkBits(), 73u); // 8*9 + 1
}

struct BchParam
{
    size_t k;
    size_t t;
};

class BchCodeTest : public ::testing::TestWithParam<BchParam>
{
  protected:
    BchCodeTest() : code(GetParam().k, GetParam().t) {}
    BchCode code;
};

TEST_P(BchCodeTest, CleanRoundTrip)
{
    Rng rng(50);
    const size_t k = GetParam().k;
    for (int trial = 0; trial < 30; ++trial) {
        BitVector data(k);
        for (size_t i = 0; i < k; ++i)
            data.set(i, rng.nextBool());
        auto result = code.decode(code.encode(data));
        ASSERT_TRUE(result.clean());
        ASSERT_EQ(result.data, data);
    }
}

TEST_P(BchCodeTest, CorrectsUpToTErrors)
{
    Rng rng(51);
    const size_t k = GetParam().k;
    const size_t t = GetParam().t;
    for (size_t nerrs = 1; nerrs <= t; ++nerrs) {
        for (int trial = 0; trial < 25; ++trial) {
            BitVector data(k);
            for (size_t i = 0; i < k; ++i)
                data.set(i, rng.nextBool());
            BitVector cw = code.encode(data);
            injectRandom(cw, nerrs, rng);
            auto result = code.decode(cw);
            ASSERT_TRUE(result.corrected())
                << "k=" << k << " t=" << t << " nerrs=" << nerrs;
            ASSERT_EQ(result.data, data);
            ASSERT_EQ(result.correctedPositions.size(), nerrs);
        }
    }
}

TEST_P(BchCodeTest, CorrectsAdjacentBursts)
{
    // Clustered (burst) errors are the paper's threat model; any burst
    // of <= t bits is a fortiori correctable.
    Rng rng(52);
    const size_t k = GetParam().k;
    const size_t t = GetParam().t;
    BitVector data(k);
    for (size_t i = 0; i < k; ++i)
        data.set(i, rng.nextBool());
    const BitVector cw = code.encode(data);
    for (size_t start = 0; start + t <= cw.size(); start += 7) {
        BitVector bad = cw;
        for (size_t i = 0; i < t; ++i)
            bad.flip(start + i);
        auto result = code.decode(bad);
        ASSERT_TRUE(result.corrected()) << "start " << start;
        ASSERT_EQ(result.data, data);
    }
}

TEST_P(BchCodeTest, NeverDecodesTPlusOneAsClean)
{
    // t+1 errors may miscorrect (inner code only guarantees detect at
    // t+1 via the extended wrapper) but can never produce a zero
    // syndrome: distance is > t+1.
    Rng rng(53);
    const size_t k = GetParam().k;
    const size_t t = GetParam().t;
    BitVector data(k);
    for (size_t i = 0; i < k; ++i)
        data.set(i, rng.nextBool());
    const BitVector cw = code.encode(data);
    for (int trial = 0; trial < 50; ++trial) {
        BitVector bad = cw;
        injectRandom(bad, t + 1, rng);
        EXPECT_FALSE(code.decode(bad).clean());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BchCodeTest,
    ::testing::Values(BchParam{16, 2}, BchParam{32, 2}, BchParam{64, 2},
                      BchParam{64, 4}, BchParam{64, 8}, BchParam{48, 4},
                      BchParam{128, 4}, BchParam{256, 2},
                      BchParam{256, 8}));

class ExtendedBchTest : public ::testing::TestWithParam<BchParam>
{
  protected:
    ExtendedBchTest() : code(GetParam().k, GetParam().t, "EXT") {}
    ExtendedBchCode code;
};

TEST_P(ExtendedBchTest, CorrectsUpToT)
{
    Rng rng(54);
    const size_t k = GetParam().k;
    const size_t t = GetParam().t;
    for (size_t nerrs = 1; nerrs <= t; ++nerrs) {
        for (int trial = 0; trial < 20; ++trial) {
            BitVector data(k);
            for (size_t i = 0; i < k; ++i)
                data.set(i, rng.nextBool());
            BitVector cw = code.encode(data);
            injectRandom(cw, nerrs, rng);
            auto result = code.decode(cw);
            ASSERT_TRUE(result.corrected());
            ASSERT_EQ(result.data, data);
        }
    }
}

TEST_P(ExtendedBchTest, DetectsTPlusOneErrors)
{
    // This is the "xED" in DECTED/QECPED/OECNED: t+1 random errors are
    // guaranteed detected (never silently miscorrected) thanks to the
    // overall parity bit.
    Rng rng(55);
    const size_t k = GetParam().k;
    const size_t t = GetParam().t;
    BitVector data(k);
    for (size_t i = 0; i < k; ++i)
        data.set(i, rng.nextBool());
    const BitVector cw = code.encode(data);
    for (int trial = 0; trial < 100; ++trial) {
        BitVector bad = cw;
        injectRandom(bad, t + 1, rng);
        auto result = code.decode(bad);
        EXPECT_TRUE(result.uncorrectable())
            << "t+1 errors must be flagged, not miscorrected";
    }
}

TEST_P(ExtendedBchTest, ParityBitErrorAloneIsCorrected)
{
    Rng rng(56);
    const size_t k = GetParam().k;
    BitVector data(k);
    for (size_t i = 0; i < k; ++i)
        data.set(i, rng.nextBool());
    BitVector cw = code.encode(data);
    cw.flip(cw.size() - 1);
    auto result = code.decode(cw);
    ASSERT_TRUE(result.corrected());
    EXPECT_EQ(result.data, data);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ExtendedBchTest,
    ::testing::Values(BchParam{64, 2}, BchParam{64, 4}, BchParam{64, 8},
                      BchParam{256, 2}, BchParam{48, 2}));

TEST(BchCode, RowWeightAccessors)
{
    BchCode code(64, 2);
    EXPECT_GT(code.maxRowWeight(), 1u);
    EXPECT_LE(code.maxRowWeight(), 65u);
    EXPECT_GT(code.totalRowWeight(), code.checkBits());
}

TEST(BchCode, GeneratorDividesEncoding)
{
    // Property: every codeword polynomial must evaluate to zero at
    // alpha^1..alpha^2t (that is what "syndromes are zero" means).
    BchCode code(32, 3);
    Rng rng(57);
    for (int trial = 0; trial < 10; ++trial) {
        BitVector data(32, rng.next());
        auto result = code.decode(code.encode(data));
        EXPECT_TRUE(result.clean());
    }
}

TEST(CodeFactory, AllKindsConstructAndRoundTrip)
{
    Rng rng(58);
    for (CodeKind kind :
         {CodeKind::kParity, CodeKind::kEdc8, CodeKind::kEdc16,
          CodeKind::kEdc32, CodeKind::kSecDed, CodeKind::kDecTed,
          CodeKind::kQecPed, CodeKind::kOecNed}) {
        CodePtr code = makeCode(kind, 64);
        ASSERT_NE(code, nullptr);
        BitVector data(64, rng.next());
        auto result = code->decode(code->encode(data));
        EXPECT_TRUE(result.clean()) << codeKindName(kind);
        EXPECT_EQ(result.data, data) << codeKindName(kind);
    }
}

TEST(CodeFactory, CorrectionCapabilities)
{
    EXPECT_EQ(makeCode(CodeKind::kSecDed, 64)->correctCapability(), 1u);
    EXPECT_EQ(makeCode(CodeKind::kDecTed, 64)->correctCapability(), 2u);
    EXPECT_EQ(makeCode(CodeKind::kQecPed, 64)->correctCapability(), 4u);
    EXPECT_EQ(makeCode(CodeKind::kOecNed, 64)->correctCapability(), 8u);
    EXPECT_EQ(makeCode(CodeKind::kEdc8, 64)->correctCapability(), 0u);
}

TEST(CodeFactory, HammingDistancesMatchPaperTable)
{
    // Figure 1's legend: SECDED HD=4, DECTED HD=6, QECPED HD=10,
    // OECNED HD=18.
    EXPECT_EQ(makeCode(CodeKind::kSecDed, 64)->minDistance(), 4u);
    EXPECT_EQ(makeCode(CodeKind::kDecTed, 64)->minDistance(), 6u);
    EXPECT_EQ(makeCode(CodeKind::kQecPed, 64)->minDistance(), 10u);
    EXPECT_EQ(makeCode(CodeKind::kOecNed, 64)->minDistance(), 18u);
}

} // namespace
} // namespace tdc
