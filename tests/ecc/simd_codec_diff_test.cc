/**
 * @file
 * Backend differentials for the codec kernels: EDC folds, Hsiao
 * encode/syndrome, BCH decode (including the quartic closed form that
 * only the accelerated tiers use) and every syndromeClean override
 * must return identical results on the scalar tier and on each
 * hardware tier this machine offers — the guarantee that lets the
 * campaigns run under any TDC_SIMD setting without output drift.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/cpu_features.hh"
#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/hsiao.hh"
#include "ecc/interleaved_parity.hh"

namespace tdc
{
namespace
{

std::vector<SimdBackend>
availableBackends()
{
    std::vector<SimdBackend> out = {SimdBackend::kScalar};
    if (bestSimdBackend() >= SimdBackend::kBmi2)
        out.push_back(SimdBackend::kBmi2);
    if (bestSimdBackend() >= SimdBackend::kAvx2)
        out.push_back(SimdBackend::kAvx2);
    return out;
}

BitVector
randomBits(size_t n, Rng &rng)
{
    BitVector v(n);
    for (size_t i = 0; i < n; ++i)
        v.set(i, rng.nextBool());
    return v;
}

/** Flip 0..max_errs random positions (possibly none). */
void
injectUpTo(BitVector &cw, size_t max_errs, Rng &rng)
{
    const size_t n = rng.nextBelow(max_errs + 1);
    for (size_t i = 0; i < n; ++i)
        cw.flip(size_t(rng.nextBelow(cw.size())));
}

void
expectBackendInvariantDecode(const Code &code, const BitVector &cw)
{
    DecodeResult ref;
    bool refClean = false;
    {
        ScopedSimdBackend scalar(SimdBackend::kScalar);
        ref = code.decode(cw);
        refClean = code.syndromeClean(cw);
    }
    EXPECT_EQ(refClean, ref.clean());
    for (SimdBackend b : availableBackends()) {
        ScopedSimdBackend guard(b);
        const DecodeResult got = code.decode(cw);
        EXPECT_EQ(int(got.status), int(ref.status))
            << code.name() << " backend=" << simdBackendName(b);
        EXPECT_EQ(got.data, ref.data) << code.name();
        EXPECT_EQ(got.correctedPositions, ref.correctedPositions)
            << code.name();
        EXPECT_EQ(code.syndromeClean(cw), refClean) << code.name();
    }
}

TEST(SimdCodecDiff, EdcChecksAndSyndromesAreBackendInvariant)
{
    Rng rng(31);
    // The two paper geometries plus a non-dividing-class oddball.
    const InterleavedParityCode codes[] = {
        InterleavedParityCode(64, 8),
        InterleavedParityCode(256, 16),
        InterleavedParityCode(96, 12),
    };
    for (const auto &code : codes) {
        for (int trial = 0; trial < 200; ++trial) {
            const BitVector data = randomBits(code.dataBits(), rng);
            BitVector cw = code.encode(data);
            if (trial % 2)
                injectUpTo(cw, 4, rng);

            BitVector refCheck, refSyn;
            bool refClean = false;
            {
                ScopedSimdBackend scalar(SimdBackend::kScalar);
                refCheck = code.computeCheck(data);
                refSyn = code.syndrome(cw);
                refClean = code.syndromeClean(cw);
            }
            for (SimdBackend b : availableBackends()) {
                ScopedSimdBackend guard(b);
                EXPECT_EQ(code.computeCheck(data), refCheck);
                EXPECT_EQ(code.syndrome(cw), refSyn);
                EXPECT_EQ(code.syndromeClean(cw), refClean);
            }
            expectBackendInvariantDecode(code, cw);
        }
    }
}

TEST(SimdCodecDiff, HsiaoEncodeAndDecodeAreBackendInvariant)
{
    Rng rng(32);
    const HsiaoSecDedCode codes[] = {HsiaoSecDedCode(64),
                                     HsiaoSecDedCode(256)};
    for (const auto &code : codes) {
        for (int trial = 0; trial < 200; ++trial) {
            const BitVector data = randomBits(code.dataBits(), rng);
            BitVector cw = code.encode(data);
            injectUpTo(cw, 3, rng); // clean, corrected and detected

            BitVector refCheck;
            {
                ScopedSimdBackend scalar(SimdBackend::kScalar);
                refCheck = code.computeCheck(data);
            }
            for (SimdBackend b : availableBackends()) {
                ScopedSimdBackend guard(b);
                EXPECT_EQ(code.computeCheck(data), refCheck);
            }
            expectBackendInvariantDecode(code, cw);
        }
    }
}

TEST(SimdCodecDiff, BchDecodeIsBackendInvariantThroughDegreeFour)
{
    Rng rng(33);
    // t = 4 exercises the quartic closed form on the accelerated
    // tiers against the scalar Chien-then-cubic route; t = 8 covers
    // sweep-then-closed-form deflation chains.
    const BchCode codes[] = {BchCode(64, 4), BchCode(64, 8)};
    for (const auto &code : codes) {
        const size_t t = code.correctCapability();
        for (size_t nerrs = 0; nerrs <= t + 1; ++nerrs) {
            for (int trial = 0; trial < 30; ++trial) {
                const BitVector data = randomBits(code.dataBits(), rng);
                BitVector cw = code.encode(data);
                for (size_t i = 0; i < nerrs; ++i)
                    cw.flip(size_t(rng.nextBelow(cw.size())));
                expectBackendInvariantDecode(code, cw);
            }
        }
    }
}

TEST(SimdCodecDiff, ExtendedBchSyndromeCleanMatchesDecodeOnAllBackends)
{
    Rng rng(34);
    const ExtendedBchCode code(64, 4, "QECPED");
    for (int trial = 0; trial < 300; ++trial) {
        const BitVector data = randomBits(code.dataBits(), rng);
        BitVector cw = code.encode(data);
        injectUpTo(cw, 6, rng);
        expectBackendInvariantDecode(code, cw);
    }
}

} // namespace
} // namespace tdc
