#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/parity.hh"

namespace tdc
{
namespace
{

TEST(ParityCode, Geometry)
{
    ParityCode code(64);
    EXPECT_EQ(code.dataBits(), 64u);
    EXPECT_EQ(code.checkBits(), 1u);
    EXPECT_EQ(code.codewordBits(), 65u);
    EXPECT_EQ(code.correctCapability(), 0u);
    EXPECT_EQ(code.detectCapability(), 1u);
}

TEST(ParityCode, CleanRoundTrip)
{
    ParityCode code(32);
    Rng rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        BitVector data(32, rng.next());
        BitVector cw = code.encode(data);
        auto result = code.decode(cw);
        EXPECT_TRUE(result.clean());
        EXPECT_EQ(result.data, data);
    }
}

TEST(ParityCode, DetectsEverySingleFlip)
{
    ParityCode code(16);
    BitVector data(16, 0xBEEF);
    BitVector cw = code.encode(data);
    for (size_t i = 0; i < cw.size(); ++i) {
        BitVector bad = cw;
        bad.flip(i);
        EXPECT_TRUE(code.decode(bad).uncorrectable()) << "bit " << i;
    }
}

TEST(ParityCode, MissesDoubleFlips)
{
    // Double errors are invisible to single parity: this documents the
    // limitation that motivates stronger codes.
    ParityCode code(16);
    BitVector cw = code.encode(BitVector(16, 0x1234));
    cw.flip(3);
    cw.flip(9);
    EXPECT_TRUE(code.decode(cw).clean());
}

} // namespace
} // namespace tdc
