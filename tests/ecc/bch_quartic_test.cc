/**
 * @file
 * Exhaustive verification of the degree-4 closed-form BCH locator
 * (the accelerated-tier replacement for the Chien sweep at four
 * errors), mirroring the deg-3 exhaustive suite of the closed-form
 * family: on a small-field t=4 code, every 4-subset of codeword
 * positions must decode back to exactly those positions, with the
 * scalar tier (sweep route) and the naive oracle agreeing on
 * subsampled patterns.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/cpu_features.hh"
#include "common/rng.hh"
#include "ecc/bch.hh"

namespace tdc
{
namespace
{

void
expectCorrectsExactly(const BchCode &code, const BitVector &cw,
                      const std::vector<size_t> &flipped)
{
    const DecodeResult d = code.decode(cw);
    ASSERT_EQ(int(d.status), int(DecodeStatus::kCorrected))
        << "flips at " << flipped[0] << "," << flipped[1] << ","
        << flipped[2] << "," << flipped[3];
    std::vector<size_t> got = d.correctedPositions;
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, flipped);
}

TEST(BchQuartic, EveryFourErrorPatternLocatesExhaustively)
{
    // Small field so the full C(n,4) sweep stays cheap; t = 4 makes
    // every quadruple correctable and drives the locator to degree 4.
    const BchCode code(16, 4);
    const size_t n = code.codewordBits();
    ASSERT_LE(n, 48u) << "geometry grew; exhaustive sweep too big";

    Rng rng(41);
    BitVector data(code.dataBits());
    for (size_t i = 0; i < data.size(); ++i)
        data.set(i, rng.nextBool());
    const BitVector clean = code.encode(data);

    // Accelerated tier (quartic closed form) on every quadruple; the
    // scalar tier (Chien-then-cubic) and the naive oracle on
    // subsamples, all three required to agree.
    const bool haveAccel = bestSimdBackend() >= SimdBackend::kBmi2;
    size_t combo = 0;
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = a + 1; b < n; ++b) {
            for (size_t c = b + 1; c < n; ++c) {
                for (size_t d = c + 1; d < n; ++d, ++combo) {
                    BitVector cw = clean;
                    cw.flip(a);
                    cw.flip(b);
                    cw.flip(c);
                    cw.flip(d);
                    const std::vector<size_t> flips = {a, b, c, d};

                    if (haveAccel) {
                        ScopedSimdBackend accel(SimdBackend::kBmi2);
                        expectCorrectsExactly(code, cw, flips);
                    }
                    if (!haveAccel || combo % 13 == 0) {
                        ScopedSimdBackend scalar(SimdBackend::kScalar);
                        expectCorrectsExactly(code, cw, flips);
                    }
                    if (combo % 97 == 0) {
                        const DecodeResult naive = code.decodeNaive(cw);
                        EXPECT_EQ(int(naive.status),
                                  int(DecodeStatus::kCorrected));
                    }
                }
            }
        }
    }
    EXPECT_GT(combo, 10000u); // sanity: the sweep really ran
}

TEST(BchQuartic, BeyondCapacityQuadrupleNeighborhoodsAgreeWithOracle)
{
    // 5 and 6 random errors on the same small code: the verdict
    // (usually uncorrectable, occasionally a legitimate t-bounded
    // miscorrection) must match the naive oracle on every backend.
    const BchCode code(16, 4);
    Rng rng(42);
    for (int trial = 0; trial < 400; ++trial) {
        BitVector data(code.dataBits());
        for (size_t i = 0; i < data.size(); ++i)
            data.set(i, rng.nextBool());
        BitVector cw = code.encode(data);
        const size_t nerrs = 5 + trial % 2;
        for (size_t i = 0; i < nerrs; ++i)
            cw.flip(size_t(rng.nextBelow(cw.size())));

        const DecodeResult naive = code.decodeNaive(cw);
        for (SimdBackend b : {SimdBackend::kScalar, SimdBackend::kBmi2}) {
            if (b > bestSimdBackend())
                continue;
            ScopedSimdBackend guard(b);
            const DecodeResult fast = code.decode(cw);
            EXPECT_EQ(int(fast.status), int(naive.status))
                << simdBackendName(b);
            EXPECT_EQ(fast.data, naive.data);
            EXPECT_EQ(fast.correctedPositions, naive.correctedPositions);
        }
    }
}

TEST(BchQuartic, DegreeFourPathsCoverShiftAndDeflation)
{
    // Wider field sanity: random quadruples on the paper's QECPED
    // inner code hit all three quartic sub-cases (a == 0 affine,
    // shifted reciprocal, f(rr) == 0 deflation) over many trials.
    if (bestSimdBackend() < SimdBackend::kBmi2)
        GTEST_SKIP() << "no accelerated tier on this machine";
    const BchCode code(64, 4);
    const size_t n = code.codewordBits();
    Rng rng(43);
    ScopedSimdBackend accel(SimdBackend::kBmi2);
    for (int trial = 0; trial < 3000; ++trial) {
        BitVector cw = code.encode(BitVector(code.dataBits()));
        std::vector<size_t> flips;
        while (flips.size() < 4) {
            const size_t p = rng.nextBelow(n);
            bool dup = false;
            for (size_t q : flips)
                dup |= q == p;
            if (!dup)
                flips.push_back(p);
        }
        for (size_t p : flips)
            cw.flip(p);
        std::sort(flips.begin(), flips.end());
        expectCorrectsExactly(code, cw, flips);
    }
}

} // namespace
} // namespace tdc
