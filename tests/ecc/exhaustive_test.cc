/**
 * @file
 * Exhaustive small-geometry sweeps: stronger evidence than sampling
 * for the guarantees the larger randomized tests rely on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/bch.hh"
#include "ecc/hsiao.hh"

namespace tdc
{
namespace
{

TEST(Exhaustive, DectedCorrectsEveryDoublePattern16)
{
    // Every possible 2-bit error pattern on a (16, t=2) extended BCH
    // codeword — no sampling.
    ExtendedBchCode code(16, 2, "DECTED");
    Rng rng(1);
    const BitVector data(16, rng.next());
    const BitVector cw = code.encode(data);
    const size_t n = cw.size();
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            BitVector bad = cw;
            bad.flip(i);
            bad.flip(j);
            DecodeResult res = code.decode(bad);
            ASSERT_TRUE(res.corrected()) << i << "," << j;
            ASSERT_EQ(res.data, data) << i << "," << j;
        }
    }
}

TEST(Exhaustive, DectedDetectsEveryTriplePattern8)
{
    // Every 3-bit pattern on a tiny (8, t=2) code must be flagged,
    // never miscorrected into clean or silently accepted.
    ExtendedBchCode code(8, 2, "DECTED");
    Rng rng(2);
    const BitVector data(8, rng.next());
    const BitVector cw = code.encode(data);
    const size_t n = cw.size();
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            for (size_t k = j + 1; k < n; ++k) {
                BitVector bad = cw;
                bad.flip(i);
                bad.flip(j);
                bad.flip(k);
                DecodeResult res = code.decode(bad);
                ASSERT_TRUE(res.uncorrectable())
                    << i << "," << j << "," << k;
            }
        }
    }
}

TEST(Exhaustive, SecdedEveryCodewordBitPairOn32)
{
    // Every single AND double error on (39,32) SECDED, every data
    // value bit position exercised.
    HsiaoSecDedCode code(32);
    Rng rng(3);
    for (int trial = 0; trial < 3; ++trial) {
        const BitVector data(32, rng.next());
        const BitVector cw = code.encode(data);
        for (size_t i = 0; i < cw.size(); ++i) {
            BitVector one = cw;
            one.flip(i);
            DecodeResult r1 = code.decode(one);
            ASSERT_TRUE(r1.corrected());
            ASSERT_EQ(r1.data, data);
            for (size_t j = i + 1; j < cw.size(); ++j) {
                BitVector two = one;
                two.flip(j);
                ASSERT_TRUE(code.decode(two).uncorrectable())
                    << i << "," << j;
            }
        }
    }
}

TEST(Exhaustive, QecpedEveryQuadInOneByte64)
{
    // All 4-bit patterns confined to any aligned byte of a 64-bit
    // QECPED word (the clustered footprints the paper cares about).
    ExtendedBchCode code(64, 4, "QECPED");
    Rng rng(4);
    const BitVector data(64, rng.next());
    const BitVector cw = code.encode(data);
    for (size_t byte = 0; byte < 8; ++byte) {
        const size_t base = byte * 8;
        for (unsigned mask = 0; mask < 256; ++mask) {
            if (__builtin_popcount(mask) != 4)
                continue;
            BitVector bad = cw;
            for (size_t b = 0; b < 8; ++b)
                if (mask & (1u << b))
                    bad.flip(base + b);
            DecodeResult res = code.decode(bad);
            ASSERT_TRUE(res.corrected()) << "byte " << byte << " mask "
                                         << mask;
            ASSERT_EQ(res.data, data);
        }
    }
}

TEST(Exhaustive, AllZeroAndAllOneDataWords)
{
    // Degenerate data patterns through every code family.
    for (size_t k : {16u, 64u}) {
        for (auto make : {+[](size_t kk) -> CodePtr {
                              return std::make_shared<HsiaoSecDedCode>(kk);
                          },
                          +[](size_t kk) -> CodePtr {
                              return std::make_shared<ExtendedBchCode>(
                                  kk, 2, "DECTED");
                          }}) {
            const CodePtr code = make(k);
            BitVector zeros(k);
            BitVector ones(k);
            for (size_t i = 0; i < k; ++i)
                ones.set(i, true);
            for (const BitVector &data : {zeros, ones}) {
                DecodeResult clean = code->decode(code->encode(data));
                ASSERT_TRUE(clean.clean());
                ASSERT_EQ(clean.data, data);
                BitVector bad = code->encode(data);
                bad.flip(k / 2);
                DecodeResult fixed = code->decode(bad);
                ASSERT_TRUE(fixed.corrected());
                ASSERT_EQ(fixed.data, data);
            }
        }
    }
}

} // namespace
} // namespace tdc
