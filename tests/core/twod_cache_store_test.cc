#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "array/fault.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/twod_cache_store.hh"

namespace tdc
{
namespace
{

TwoDimConfig
smallBank()
{
    TwoDimConfig cfg = TwoDimConfig::l1Default();
    cfg.dataRows = 32;
    cfg.verticalParityRows = 8;
    return cfg;
}

TEST(TwoDimCacheStore, ZeroBankConstructionThrows)
{
    // Regression: storageOverhead() (and every other bankArray[0]
    // accessor) used to dereference an empty bank vector when the
    // store was built with zero banks; construction now refuses.
    EXPECT_THROW(TwoDimCacheStore(smallBank(), 0), std::invalid_argument);
}

TEST(TwoDimCacheStore, OutOfRangeBankIndicesThrowWithoutSideEffects)
{
    TwoDimCacheStore store(smallBank(), 2);
    for (size_t w = 0; w < store.totalWords(); ++w)
        store.writeWord(w, BitVector(64, w));
    EXPECT_THROW(store.recoverBanks({0, 2}), std::out_of_range);
    EXPECT_THROW(
        store.injectAndRecover({{0, FaultModel::singleBit()},
                                {2, FaultModel::cluster(4, 4)}},
                               1),
        std::out_of_range);
    // The bad batch was rejected up front: nothing was injected or
    // recovered, and every word still reads clean.
    EXPECT_EQ(store.aggregateStats().recoveries, 0u);
    for (size_t w = 0; w < store.totalWords(); ++w)
        ASSERT_EQ(store.readWord(w).data.toUint64(), w);
}

TEST(TwoDimCacheStore, Geometry)
{
    TwoDimCacheStore store(smallBank(), 4);
    EXPECT_EQ(store.banks(), 4u);
    EXPECT_EQ(store.wordsPerBank(), 32u * 4);
    EXPECT_EQ(store.totalWords(), 512u);
    EXPECT_EQ(store.dataBits(), 64u);
}

TEST(TwoDimCacheStore, WordsInterleaveAcrossBanks)
{
    TwoDimCacheStore store(smallBank(), 4);
    for (size_t w = 0; w < 16; ++w)
        EXPECT_EQ(store.bankOf(w), w % 4);
}

TEST(TwoDimCacheStore, RoundTripAllWords)
{
    Rng rng(11);
    TwoDimCacheStore store(smallBank(), 4);
    std::vector<uint64_t> golden(store.totalWords());
    for (size_t w = 0; w < store.totalWords(); ++w) {
        golden[w] = rng.next();
        store.writeWord(w, BitVector(64, golden[w]));
    }
    for (size_t w = 0; w < store.totalWords(); ++w) {
        AccessResult res = store.readWord(w);
        ASSERT_TRUE(res.ok());
        ASSERT_EQ(res.data.toUint64(), golden[w]);
    }
}

TEST(TwoDimCacheStore, DistinctWordsMapToDistinctCells)
{
    // Writing one word must not disturb any other word.
    Rng rng(12);
    TwoDimCacheStore store(smallBank(), 2);
    std::vector<uint64_t> golden(store.totalWords());
    for (size_t w = 0; w < store.totalWords(); ++w) {
        golden[w] = rng.next();
        store.writeWord(w, BitVector(64, golden[w]));
    }
    store.writeWord(37, BitVector(64, uint64_t(0xABCD)));
    golden[37] = 0xABCD;
    for (size_t w = 0; w < store.totalWords(); ++w)
        ASSERT_EQ(store.readWord(w).data.toUint64(), golden[w]);
}

TEST(TwoDimCacheStore, SimultaneousEventsInDifferentBanksRecover)
{
    // Each bank has its own vertical parity: clusters in two banks at
    // once are independently correctable.
    Rng rng(13);
    TwoDimCacheStore store(smallBank(), 4);
    std::vector<uint64_t> golden(store.totalWords());
    for (size_t w = 0; w < store.totalWords(); ++w) {
        golden[w] = rng.next();
        store.writeWord(w, BitVector(64, golden[w]));
    }
    FaultInjector inj(rng);
    inj.injectCluster(store.bank(0).cells(), 32, 8, 1.0);
    inj.injectCluster(store.bank(2).cells(), 16, 4, 1.0);

    EXPECT_TRUE(store.scrubAll());
    for (size_t w = 0; w < store.totalWords(); ++w)
        ASSERT_EQ(store.readWord(w).data.toUint64(), golden[w]);
}

TEST(TwoDimCacheStore, AggregateStatsSumBanks)
{
    TwoDimCacheStore store(smallBank(), 4);
    for (size_t w = 0; w < store.totalWords(); ++w)
        store.writeWord(w, BitVector(64, w));
    const TwoDimStats s = store.aggregateStats();
    EXPECT_EQ(s.writes, store.totalWords());
    EXPECT_EQ(s.readBeforeWrites, store.totalWords());
}

TEST(TwoDimCacheStore, RecoverAllReportsEveryBank)
{
    Rng rng(15);
    TwoDimCacheStore store(smallBank(), 3);
    for (size_t w = 0; w < store.totalWords(); ++w)
        store.writeWord(w, BitVector(64, rng.next()));
    FaultInjector inj(rng);
    inj.injectCluster(store.bank(1).cells(), 16, 4, 1.0);

    const CacheRecoveryReport report = store.recoverAll();
    EXPECT_TRUE(report.success);
    ASSERT_EQ(report.banks.size(), 3u);
    for (size_t b = 0; b < 3; ++b)
        EXPECT_EQ(report.banks[b].bank, b);
    // Only the damaged bank reconstructs rows; the summed counters
    // match the per-bank reports.
    uint64_t rows_sum = 0;
    for (const auto &br : report.banks)
        rows_sum += br.report.rowsReconstructed.size();
    EXPECT_EQ(report.rowsReconstructed, rows_sum);
    EXPECT_GT(report.banks[1].report.rowsReconstructed.size(), 0u);
    EXPECT_EQ(report.banks[0].report.rowsReconstructed.size(), 0u);
}

TEST(TwoDimCacheStore, InjectAndRecoverHitsOnlyTargetedBanks)
{
    Rng rng(16);
    TwoDimCacheStore store(smallBank(), 4);
    for (size_t w = 0; w < store.totalWords(); ++w)
        store.writeWord(w, BitVector(64, rng.next()));

    const std::vector<BankFaultSpec> events = {
        {2, FaultModel::cluster(16, 4)},
        {0, FaultModel::rowBurst(12)},
        {2, FaultModel::columnBurst(3)},
    };
    // Seed re-tuned when injection events moved to their own seed
    // domain: the three events must land recoverably for the sweep
    // assertions below.
    const CacheRecoveryReport report = store.injectAndRecover(events, 72);
    EXPECT_TRUE(report.success);
    // Banks 0 and 2 were swept (deduped, ascending); 1 and 3 untouched.
    ASSERT_EQ(report.banks.size(), 2u);
    EXPECT_EQ(report.banks[0].bank, 0u);
    EXPECT_EQ(report.banks[1].bank, 2u);
    EXPECT_EQ(store.bank(1).stats().recoveries, 0u);
    EXPECT_EQ(store.bank(3).stats().recoveries, 0u);
    EXPECT_EQ(store.bank(0).stats().recoveries, 1u);
    EXPECT_EQ(store.bank(2).stats().recoveries, 1u);
}

TEST(TwoDimCacheStore, BatchSweepsBitIdenticalAtEveryThreadCount)
{
    struct ThreadGuard
    {
        ~ThreadGuard() { setParallelThreads(0); }
    } guard;

    // One deterministic scenario, re-run at every pool size: same
    // repaired words, same merged report, same aggregate stats.
    const auto scenario = [] {
        Rng rng(17);
        TwoDimCacheStore store(smallBank(), 4);
        for (size_t w = 0; w < store.totalWords(); ++w)
            store.writeWord(w, BitVector(64, rng.next()));
        const std::vector<BankFaultSpec> events = {
            {0, FaultModel::cluster(32, 8)},
            {1, FaultModel::cluster(8, 8)},
            {3, FaultModel::rowBurst(16)},
        };
        const CacheRecoveryReport rep = store.injectAndRecover(events, 5);
        const bool scrubbed = store.scrubAll();
        std::vector<uint64_t> words;
        for (size_t w = 0; w < store.totalWords(); ++w)
            words.push_back(store.readWord(w).data.toUint64());
        return std::tuple(rep.success, rep.rowReads,
                          rep.rowsReconstructed, rep.columnsRepaired,
                          scrubbed, store.aggregateStats(),
                          std::move(words));
    };

    setParallelThreads(1);
    const auto serial = scenario();
    EXPECT_TRUE(std::get<0>(serial));
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(scenario(), serial) << threads << " threads";
    }
}

TEST(TwoDimCacheStore, InjectionStreamsLiveInTheirOwnSeedDomain)
{
    // Regression for the seed-stream collision bug class: event i of
    // injectAndRecover used to draw from the *un-domained* stream
    // shardSeed(seed, i) — the very stream any other per-event
    // consumer of the same campaign seed (scrub scheduling, service
    // traffic) naturally counts through, so "independent" random
    // choices were byte-identical. Events must come from the
    // injection-domain namespace instead.
    const uint64_t seed = 0xD00D;
    for (uint64_t i = 0; i < 64; ++i) {
        EXPECT_NE(shardSeed(seed, kSeedDomainInjection, i),
                  shardSeed(seed, i))
            << "event " << i << " collides with the legacy stream";
        EXPECT_NE(shardSeed(seed, kSeedDomainInjection, i),
                  shardSeed(seed, kSeedDomainScrub, i))
            << "event " << i << " collides with the scrub domain";
    }

    // The store's injector really consumes the domain stream: a
    // single-bit event replayed through the documented contract lands
    // on the same cell, while the legacy stream picks a different one.
    TwoDimCacheStore store(smallBank(), 2);
    for (size_t w = 0; w < store.totalWords(); ++w)
        store.writeWord(w, BitVector(64, w));
    TwoDimCacheStore replay(smallBank(), 2);
    for (size_t w = 0; w < replay.totalWords(); ++w)
        replay.writeWord(w, BitVector(64, w));

    const FaultModel single = FaultModel::singleBit();
    store.injectAndRecover({{0, single}}, seed);

    Rng domain_rng(shardSeed(seed, kSeedDomainInjection, 0));
    FaultInjector domain_inj(domain_rng);
    const FaultEvent domain_event =
        domain_inj.inject(replay.bank(0).cells(), single);

    Rng legacy_rng(shardSeed(seed, 0));
    FaultInjector legacy_inj(legacy_rng);
    MemoryArray scratch(replay.bank(0).cells().rows(),
                        replay.bank(0).cells().cols());
    const FaultEvent legacy_event = legacy_inj.inject(scratch, single);

    // Store and domain-replay recovered identical sweeps (same cell
    // hit => same rows reconstructed / reads charged).
    replay.recoverBanks({0});
    EXPECT_EQ(store.bank(0).stats(), replay.bank(0).stats());
    EXPECT_NE(domain_event.cells, legacy_event.cells)
        << "injection still draws from the legacy counter namespace";
}

TEST(TwoDimCacheStore, FailureInOneBankDoesNotAffectOthers)
{
    Rng rng(14);
    TwoDimCacheStore store(smallBank(), 2);
    std::vector<uint64_t> golden(store.totalWords());
    for (size_t w = 0; w < store.totalWords(); ++w) {
        golden[w] = rng.next();
        store.writeWord(w, BitVector(64, golden[w]));
    }
    // Beyond-coverage damage in bank 0 (16x16 solid on V=8 bank).
    FaultInjector inj(rng);
    inj.injectCluster(store.bank(0).cells(), 16, 16, 1.0, 0, 0);
    EXPECT_FALSE(store.scrubAll());
    // Bank 1's words all still read correctly.
    for (size_t w = 1; w < store.totalWords(); w += 2)
        ASSERT_EQ(store.readWord(w).data.toUint64(), golden[w]);
}

} // namespace
} // namespace tdc
