#include <gtest/gtest.h>

#include "array/fault.hh"
#include "common/rng.hh"
#include "core/twod_cache_store.hh"

namespace tdc
{
namespace
{

TwoDimConfig
smallBank()
{
    TwoDimConfig cfg = TwoDimConfig::l1Default();
    cfg.dataRows = 32;
    cfg.verticalParityRows = 8;
    return cfg;
}

TEST(TwoDimCacheStore, Geometry)
{
    TwoDimCacheStore store(smallBank(), 4);
    EXPECT_EQ(store.banks(), 4u);
    EXPECT_EQ(store.wordsPerBank(), 32u * 4);
    EXPECT_EQ(store.totalWords(), 512u);
    EXPECT_EQ(store.dataBits(), 64u);
}

TEST(TwoDimCacheStore, WordsInterleaveAcrossBanks)
{
    TwoDimCacheStore store(smallBank(), 4);
    for (size_t w = 0; w < 16; ++w)
        EXPECT_EQ(store.bankOf(w), w % 4);
}

TEST(TwoDimCacheStore, RoundTripAllWords)
{
    Rng rng(11);
    TwoDimCacheStore store(smallBank(), 4);
    std::vector<uint64_t> golden(store.totalWords());
    for (size_t w = 0; w < store.totalWords(); ++w) {
        golden[w] = rng.next();
        store.writeWord(w, BitVector(64, golden[w]));
    }
    for (size_t w = 0; w < store.totalWords(); ++w) {
        AccessResult res = store.readWord(w);
        ASSERT_TRUE(res.ok());
        ASSERT_EQ(res.data.toUint64(), golden[w]);
    }
}

TEST(TwoDimCacheStore, DistinctWordsMapToDistinctCells)
{
    // Writing one word must not disturb any other word.
    Rng rng(12);
    TwoDimCacheStore store(smallBank(), 2);
    std::vector<uint64_t> golden(store.totalWords());
    for (size_t w = 0; w < store.totalWords(); ++w) {
        golden[w] = rng.next();
        store.writeWord(w, BitVector(64, golden[w]));
    }
    store.writeWord(37, BitVector(64, uint64_t(0xABCD)));
    golden[37] = 0xABCD;
    for (size_t w = 0; w < store.totalWords(); ++w)
        ASSERT_EQ(store.readWord(w).data.toUint64(), golden[w]);
}

TEST(TwoDimCacheStore, SimultaneousEventsInDifferentBanksRecover)
{
    // Each bank has its own vertical parity: clusters in two banks at
    // once are independently correctable.
    Rng rng(13);
    TwoDimCacheStore store(smallBank(), 4);
    std::vector<uint64_t> golden(store.totalWords());
    for (size_t w = 0; w < store.totalWords(); ++w) {
        golden[w] = rng.next();
        store.writeWord(w, BitVector(64, golden[w]));
    }
    FaultInjector inj(rng);
    inj.injectCluster(store.bank(0).cells(), 32, 8, 1.0);
    inj.injectCluster(store.bank(2).cells(), 16, 4, 1.0);

    EXPECT_TRUE(store.scrubAll());
    for (size_t w = 0; w < store.totalWords(); ++w)
        ASSERT_EQ(store.readWord(w).data.toUint64(), golden[w]);
}

TEST(TwoDimCacheStore, AggregateStatsSumBanks)
{
    TwoDimCacheStore store(smallBank(), 4);
    for (size_t w = 0; w < store.totalWords(); ++w)
        store.writeWord(w, BitVector(64, w));
    const TwoDimStats s = store.aggregateStats();
    EXPECT_EQ(s.writes, store.totalWords());
    EXPECT_EQ(s.readBeforeWrites, store.totalWords());
}

TEST(TwoDimCacheStore, FailureInOneBankDoesNotAffectOthers)
{
    Rng rng(14);
    TwoDimCacheStore store(smallBank(), 2);
    std::vector<uint64_t> golden(store.totalWords());
    for (size_t w = 0; w < store.totalWords(); ++w) {
        golden[w] = rng.next();
        store.writeWord(w, BitVector(64, golden[w]));
    }
    // Beyond-coverage damage in bank 0 (16x16 solid on V=8 bank).
    FaultInjector inj(rng);
    inj.injectCluster(store.bank(0).cells(), 16, 16, 1.0, 0, 0);
    EXPECT_FALSE(store.scrubAll());
    // Bank 1's words all still read correctly.
    for (size_t w = 1; w < store.totalWords(); w += 2)
        ASSERT_EQ(store.readWord(w).data.toUint64(), golden[w]);
}

} // namespace
} // namespace tdc
