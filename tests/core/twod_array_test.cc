#include <gtest/gtest.h>

#include "array/fault.hh"
#include "common/rng.hh"
#include "core/twod_array.hh"

namespace tdc
{
namespace
{

/** Fill every word and keep golden copies. */
std::vector<std::vector<BitVector>>
fill(TwoDimArray &arr, Rng &rng)
{
    std::vector<std::vector<BitVector>> golden(
        arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
    for (size_t r = 0; r < arr.rows(); ++r) {
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            BitVector data(arr.dataBits());
            for (size_t b = 0; b < data.size(); ++b)
                data.set(b, rng.nextBool());
            arr.writeWord(r, s, data);
            golden[r][s] = data;
        }
    }
    return golden;
}

/** Verify every word reads back equal to its golden copy. */
void
expectAllGolden(TwoDimArray &arr,
                const std::vector<std::vector<BitVector>> &golden)
{
    for (size_t r = 0; r < arr.rows(); ++r) {
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            AccessResult res = arr.readWord(r, s);
            ASSERT_TRUE(res.ok()) << "row " << r << " slot " << s;
            ASSERT_EQ(res.data, golden[r][s])
                << "row " << r << " slot " << s;
        }
    }
}

/** A small L1-flavoured config to keep exhaustive tests fast. */
TwoDimConfig
smallConfig()
{
    TwoDimConfig cfg = TwoDimConfig::l1Default();
    cfg.dataRows = 64;
    cfg.verticalParityRows = 8;
    return cfg;
}

TEST(TwoDimArray, GeometryAndOverheadMatchFigure3c)
{
    // Figure 3(c): EDC8+Intv4 horizontal (12.5%) + 32 parity rows per
    // 256 data rows (12.5%) = 25% total.
    TwoDimArray arr(TwoDimConfig::l1Default());
    EXPECT_EQ(arr.rows(), 256u);
    EXPECT_EQ(arr.wordsPerRow(), 4u);
    EXPECT_DOUBLE_EQ(arr.storageOverhead(), 0.25);
    EXPECT_EQ(arr.config().clusterWidthCoverage(), 32u);
    EXPECT_EQ(arr.config().clusterHeightCoverage(), 32u);
}

TEST(TwoDimArray, CleanRoundTripAndParityInvariant)
{
    Rng rng(110);
    TwoDimArray arr(smallConfig());
    auto golden = fill(arr, rng);
    EXPECT_TRUE(arr.verifyParity());
    EXPECT_TRUE(arr.verifyClean());
    expectAllGolden(arr, golden);
    // Overwrites keep the parity consistent.
    for (int step = 0; step < 200; ++step) {
        const size_t r = rng.nextBelow(arr.rows());
        const size_t s = rng.nextBelow(arr.wordsPerRow());
        BitVector data(arr.dataBits(), rng.next());
        arr.writeWord(r, s, data);
        golden[r][s] = data;
    }
    EXPECT_TRUE(arr.verifyParity());
    expectAllGolden(arr, golden);
}

TEST(TwoDimArray, EveryWriteIsReadBeforeWrite)
{
    TwoDimArray arr(smallConfig());
    arr.resetStats();
    BitVector data(arr.dataBits(), 42);
    for (int i = 0; i < 10; ++i)
        arr.writeWord(0, 0, data);
    EXPECT_EQ(arr.stats().writes, 10u);
    EXPECT_EQ(arr.stats().readBeforeWrites, 10u);
}

TEST(TwoDimArray, RecoversSingleRowBurst)
{
    // A 32-bit burst in one row: horizontal EDC8+Intv4 detects it,
    // the vertical group reconstructs the row.
    Rng rng(111);
    TwoDimArray arr(smallConfig());
    auto golden = fill(arr, rng);
    FaultInjector inj(rng);
    inj.injectRowBurst(arr.cells(), 13, 32);

    expectAllGolden(arr, golden); // readWord triggers recovery
    EXPECT_TRUE(arr.verifyClean());
    EXPECT_EQ(arr.stats().recoveries, 1u);
    EXPECT_EQ(arr.stats().recoveryFailures, 0u);
    EXPECT_FALSE(arr.lastRecovery().usedColumnPath);
}

TEST(TwoDimArray, RecoversFullRowFailure)
{
    Rng rng(112);
    TwoDimArray arr(smallConfig());
    auto golden = fill(arr, rng);
    FaultInjector inj(rng);
    inj.injectFullRow(arr.cells(), 29);
    expectAllGolden(arr, golden);
    EXPECT_TRUE(arr.verifyClean());
}

/** Cluster sweep: every (width, height) up to the coverage bound must
 *  be corrected. Parameterized over footprint sizes. */
class ClusterCoverageTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(ClusterCoverageTest, ClusterWithinCoverageIsCorrected)
{
    const auto [width, height] = GetParam();
    Rng rng(113 + width * 64 + height);
    TwoDimArray arr(smallConfig());
    auto golden = fill(arr, rng);
    FaultInjector inj(rng);

    for (int trial = 0; trial < 5; ++trial) {
        inj.injectCluster(arr.cells(), width, height, 1.0);
        const bool ok = arr.scrub();
        ASSERT_TRUE(ok) << width << "x" << height;
        expectAllGolden(arr, golden);
        ASSERT_TRUE(arr.verifyParity());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Footprints, ClusterCoverageTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{2, 8},
                      std::pair<size_t, size_t>{8, 2},
                      std::pair<size_t, size_t>{8, 8},
                      std::pair<size_t, size_t>{16, 4},
                      std::pair<size_t, size_t>{32, 8},
                      std::pair<size_t, size_t>{32, 1},
                      std::pair<size_t, size_t>{1, 8}));

TEST(ClusterCoverage, SparseClustersAlsoCorrected)
{
    Rng rng(114);
    TwoDimArray arr(smallConfig());
    auto golden = fill(arr, rng);
    FaultInjector inj(rng);
    for (int trial = 0; trial < 10; ++trial) {
        inj.injectCluster(arr.cells(), 32, 8, 0.5);
        ASSERT_TRUE(arr.scrub());
        expectAllGolden(arr, golden);
    }
}

TEST(TwoDimArray, FullConfigCorrects32x32Cluster)
{
    // The headline claim: the paper's L1 configuration corrects
    // clustered errors up to 32x32 bits.
    Rng rng(115);
    TwoDimArray arr(TwoDimConfig::l1Default());
    auto golden = fill(arr, rng);
    FaultInjector inj(rng);
    inj.injectCluster(arr.cells(), 32, 32, 1.0);
    ASSERT_TRUE(arr.scrub());
    expectAllGolden(arr, golden);
    EXPECT_TRUE(arr.verifyParity());
}

TEST(TwoDimArray, ClusterTallerThanVButNarrowRecoversViaColumns)
{
    // Taller than the vertical interleave factor: row groups have
    // multiple faulty rows, so the column-location path must engage.
    // Narrow errors (single column) are locatable.
    Rng rng(116);
    TwoDimConfig cfg = smallConfig(); // V = 8
    TwoDimArray arr(cfg);
    auto golden = fill(arr, rng);
    FaultInjector inj(rng);
    inj.injectColumnBurst(arr.cells(), 17, 20); // 20 rows > V=8
    ASSERT_TRUE(arr.scrub());
    expectAllGolden(arr, golden);
    EXPECT_TRUE(arr.lastRecovery().usedColumnPath);
}

TEST(TwoDimArray, ClusterExceedingBothDimensionsFailsHonestly)
{
    // The paper: "This example scheme does not correct multi-bit
    // errors that span over 32 lines in both horizontal and vertical
    // directions." With V=8 and width coverage 32, a detectable
    // 16-wide x 16-tall solid cluster defeats both paths: every
    // parity group holds two faulty rows (row path fails) and the
    // two rows per group flip the same columns, so their vertical
    // mismatch cancels (column path finds no suspects). Recovery must
    // report failure, not silently corrupt.
    Rng rng(117);
    TwoDimArray arr(smallConfig());
    fill(arr, rng);
    FaultInjector inj(rng);
    inj.injectCluster(arr.cells(), 16, 16, 1.0, 0, 0);
    const bool ok = arr.scrub();
    EXPECT_FALSE(ok);
    EXPECT_GT(arr.stats().recoveryFailures, 0u);
}

TEST(TwoDimArray, WideEvenClusterIsSilentlyUndetectable)
{
    // Coverage boundary in the *detection* dimension: a solid burst
    // of width 2 * classCount * degree flips every EDC parity class
    // an even number of times, so the horizontal code sees nothing.
    // This is exactly why the paper sizes the horizontal dimension to
    // the largest expected footprint: beyond it, corruption is
    // silent (not a recovery failure).
    Rng rng(130);
    TwoDimArray arr(smallConfig()); // EDC8 + Intv4: detect width 32
    auto golden = fill(arr, rng);
    FaultInjector inj(rng);
    inj.injectRowBurst(arr.cells(), 9, 64, 0);

    EXPECT_TRUE(arr.scrub()); // nothing detected
    bool mismatch = false;
    for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
        AccessResult res = arr.readWord(9, s);
        EXPECT_EQ(res.status, DecodeStatus::kClean);
        mismatch |= res.data != golden[9][s];
    }
    EXPECT_TRUE(mismatch) << "corruption should have slipped through";
}

TEST(TwoDimArray, SecdedHorizontalCorrectsSingleBitInline)
{
    // Section 5.2 configuration: SECDED horizontal fixes single-bit
    // errors without entering recovery.
    Rng rng(118);
    TwoDimConfig cfg = TwoDimConfig::secdedHorizontal();
    cfg.dataRows = 64;
    cfg.verticalParityRows = 8;
    TwoDimArray arr(cfg);
    auto golden = fill(arr, rng);
    arr.cells().flipBit(10, 100);
    expectAllGolden(arr, golden);
    EXPECT_EQ(arr.stats().recoveries, 0u);
    EXPECT_GE(arr.stats().inlineCorrections, 1u);
    EXPECT_TRUE(arr.verifyParity()); // inline fix maintained parity
}

TEST(TwoDimArray, SecdedHorizontalStuckCellKeepsMultiBitProtection)
{
    // The yield argument: a manufacture-time stuck-at bit is corrected
    // in-line by SECDED, and the vertical code still recovers a later
    // multi-bit soft error in the same bank.
    Rng rng(119);
    TwoDimConfig cfg = TwoDimConfig::secdedHorizontal();
    cfg.dataRows = 64;
    cfg.verticalParityRows = 8;
    TwoDimArray arr(cfg);
    auto golden = fill(arr, rng);

    // Hard fault somewhere in row 5.
    arr.cells().addStuckAt(5, 7, !arr.cells().readBit(5, 7));
    expectAllGolden(arr, golden);

    // Later, a multi-bit soft error hits a different row. SECDED with
    // 4-way interleaving guarantees *detection* of bursts up to 8
    // bits (2 per word), which the vertical dimension then repairs.
    FaultInjector inj(rng);
    inj.injectRowBurst(arr.cells(), 40, 8);
    ASSERT_TRUE(arr.scrub());
    expectAllGolden(arr, golden);
}

TEST(TwoDimArray, RecoveryLatencyIsProportionalToBankRows)
{
    // The paper likens recovery to a BIST march: row reads should be
    // O(rows), not O(rows^2).
    Rng rng(120);
    TwoDimArray arr(smallConfig());
    fill(arr, rng);
    FaultInjector inj(rng);
    inj.injectRowBurst(arr.cells(), 20, 32);
    const RecoveryReport rep = arr.recover();
    ASSERT_TRUE(rep.success);
    EXPECT_LE(rep.rowReads, 3 * arr.rows());
}

TEST(TwoDimArray, ErrorInParityRowDoesNotCorruptData)
{
    // Faults in the vertical code itself: data reads stay clean; the
    // parity can be rebuilt.
    Rng rng(121);
    TwoDimArray arr(smallConfig());
    auto golden = fill(arr, rng);
    arr.vertical().cells().flipBit(3, 50);
    EXPECT_FALSE(arr.verifyParity());
    expectAllGolden(arr, golden);
    arr.rebuildParity();
    EXPECT_TRUE(arr.verifyParity());
}

TEST(TwoDimArray, ReadsDoNotDisturbParity)
{
    Rng rng(122);
    TwoDimArray arr(smallConfig());
    fill(arr, rng);
    for (int i = 0; i < 100; ++i)
        arr.readWord(rng.nextBelow(arr.rows()),
                     rng.nextBelow(arr.wordsPerRow()));
    EXPECT_TRUE(arr.verifyParity());
}

TEST(TwoDimArray, L2ConfigurationAlsoCovers32x32)
{
    // EDC16+Intv2 over 256-bit words: same 32x32 coverage with less
    // interleaving power cost (the paper's L2 design point).
    Rng rng(123);
    TwoDimConfig cfg = TwoDimConfig::l2Default();
    cfg.dataRows = 64; // keep the test fast
    TwoDimArray arr(cfg);
    EXPECT_EQ(cfg.clusterWidthCoverage(), 32u);
    auto golden = fill(arr, rng);
    FaultInjector inj(rng);
    inj.injectCluster(arr.cells(), 32, 16, 1.0);
    ASSERT_TRUE(arr.scrub());
    expectAllGolden(arr, golden);
}

} // namespace
} // namespace tdc
