/**
 * @file
 * Pins the allocation-free clean-read invariant: fault-free reads
 * borrow the stored row as a span and never materialize a row copy.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/twod_array.hh"

namespace tdc
{
namespace
{

TwoDimConfig
smallConfig()
{
    TwoDimConfig cfg = TwoDimConfig::l1Default();
    cfg.dataRows = 32;
    cfg.verticalParityRows = 8;
    return cfg;
}

BitVector
randomWord(Rng &rng, size_t nbits)
{
    BitVector v(nbits);
    for (size_t i = 0; i < nbits; ++i)
        v.set(i, rng.nextBool());
    return v;
}

TEST(TwoDimFastPath, CleanReadsBorrowAndNeverCopyRows)
{
    TwoDimArray arr(smallConfig());
    Rng rng(7);
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t s = 0; s < arr.wordsPerRow(); ++s)
            arr.writeWord(r, s, randomWord(rng, arr.dataBits()));

    arr.resetStats();
    uint64_t reads = 0;
    for (int round = 0; round < 3; ++round) {
        for (size_t r = 0; r < arr.rows(); ++r) {
            for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
                ASSERT_TRUE(arr.readWord(r, s).ok());
                ++reads;
            }
        }
    }
    // The fault-free bank serves every read by borrowing the stored
    // row: zero row copies is the fast-path contract.
    EXPECT_EQ(arr.stats().rowBorrows, reads);
    EXPECT_EQ(arr.stats().rowCopies, 0u);
    EXPECT_EQ(arr.stats().reads, reads);
}

TEST(TwoDimFastPath, StuckRowsFallBackToCopies)
{
    TwoDimArray arr(smallConfig());
    Rng rng(8);
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t s = 0; s < arr.wordsPerRow(); ++s)
            arr.writeWord(r, s, randomWord(rng, arr.dataBits()));

    // Pin one cell of row 3 to its stored value: the read data stays
    // clean, but the overlay forces the copy path for that row only.
    const bool stored = arr.cells().readBit(3, 0);
    arr.cells().addStuckAt(3, 0, stored);

    arr.resetStats();
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t s = 0; s < arr.wordsPerRow(); ++s)
            ASSERT_TRUE(arr.readWord(r, s).ok());

    EXPECT_EQ(arr.stats().rowCopies, arr.wordsPerRow());
    EXPECT_EQ(arr.stats().rowBorrows,
              (arr.rows() - 1) * arr.wordsPerRow());

    // Clearing the fault restores the all-borrow regime.
    arr.cells().clearFault(3, 0);
    arr.resetStats();
    for (size_t s = 0; s < arr.wordsPerRow(); ++s)
        ASSERT_TRUE(arr.readWord(3, s).ok());
    EXPECT_EQ(arr.stats().rowCopies, 0u);
    EXPECT_EQ(arr.stats().rowBorrows, arr.wordsPerRow());
}

TEST(TwoDimFastPath, WritesKeepVerticalParityConsistent)
{
    // The in-place delta fold must leave parity identical to a full
    // rebuild after any write pattern, including rewrites of the same
    // slot and writes of identical data (zero delta).
    TwoDimArray arr(smallConfig());
    Rng rng(9);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t r = rng.nextBelow(arr.rows());
        const size_t s = rng.nextBelow(arr.wordsPerRow());
        BitVector w = randomWord(rng, arr.dataBits());
        arr.writeWord(r, s, w);
        if (trial % 3 == 0)
            arr.writeWord(r, s, w); // identical rewrite: delta == 0
    }
    EXPECT_TRUE(arr.verifyParity());
}

} // namespace
} // namespace tdc
