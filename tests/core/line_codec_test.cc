/**
 * @file
 * The batched line codec's contract: lineClean must equal the
 * per-slot syndrome ground truth on every backend (the fused EDC fold
 * included), correctLine must reproduce the historical slot-loop
 * repair, and encodeLine must round-trip — for fused and non-fused
 * geometries alike.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/cpu_features.hh"
#include "common/rng.hh"
#include "core/line_codec.hh"
#include "ecc/bch.hh"
#include "ecc/hsiao.hh"
#include "ecc/interleaved_parity.hh"

namespace tdc
{
namespace
{

std::vector<SimdBackend>
availableBackends()
{
    std::vector<SimdBackend> out = {SimdBackend::kScalar};
    if (bestSimdBackend() >= SimdBackend::kBmi2)
        out.push_back(SimdBackend::kBmi2);
    if (bestSimdBackend() >= SimdBackend::kAvx2)
        out.push_back(SimdBackend::kAvx2);
    return out;
}

/** Ground truth: every slot's syndrome vanishes (per-slot extract). */
bool
refLineClean(const Code &code, const InterleaveMap &map,
             const BitVector &row)
{
    for (size_t slot = 0; slot < map.degree(); ++slot) {
        if (!code.decode(map.extractWord(row, slot)).clean())
            return false;
    }
    return true;
}

struct Geometry
{
    const char *label;
    std::shared_ptr<Code> code;
    size_t degree;
    bool fused;
};

std::vector<Geometry>
geometries()
{
    return {
        // L1: EDC8 over 64-bit words, 4-way interleave -> p = 32.
        {"edc8/i4", std::make_shared<InterleavedParityCode>(64, 8), 4,
         true},
        // L2: EDC16 over 256-bit words, 2-way interleave -> p = 32.
        {"edc16/i2", std::make_shared<InterleavedParityCode>(256, 16), 2,
         true},
        // Non-dividing period 3*8 = 24: fused fold must stay off.
        {"edc8/i3", std::make_shared<InterleavedParityCode>(64, 8), 3,
         false},
        // Non-EDC horizontals: per-slot syndromeClean path.
        {"secded/i4", std::make_shared<HsiaoSecDedCode>(64), 4, false},
        {"qecped-inner/i2", std::make_shared<BchCode>(64, 4), 2, false},
    };
}

TEST(LineCodec, FusedFoldEngagesExactlyForAlignedEdcGeometries)
{
    for (const Geometry &g : geometries()) {
        const InterleaveMap map(g.code->codewordBits(), g.degree);
        const LineCodec line(*g.code, map);
        EXPECT_EQ(line.fusedCheck(), g.fused) << g.label;
    }
}

TEST(LineCodec, LineCleanMatchesPerSlotTruthOnEveryBackend)
{
    Rng rng(51);
    for (const Geometry &g : geometries()) {
        const InterleaveMap map(g.code->codewordBits(), g.degree);
        const LineCodec line(*g.code, map);

        // A clean row, that row with one flip at every single column,
        // and fully random rows.
        std::vector<BitVector> words;
        for (size_t s = 0; s < g.degree; ++s) {
            BitVector w(g.code->dataBits());
            for (size_t i = 0; i < w.size(); ++i)
                w.set(i, rng.nextBool());
            words.push_back(w);
        }
        BitVector cleanRow(map.rowBits());
        line.encodeLine(words, cleanRow);

        std::vector<BitVector> rows = {cleanRow};
        for (size_t col = 0; col < map.rowBits(); ++col) {
            BitVector r = cleanRow;
            r.flip(col);
            rows.push_back(r);
        }
        for (int trial = 0; trial < 20; ++trial) {
            BitVector r(map.rowBits());
            for (size_t i = 0; i < r.size(); ++i)
                r.set(i, rng.nextBool());
            rows.push_back(r);
        }

        for (const BitVector &row : rows) {
            const bool truth = refLineClean(*g.code, map, row);
            for (SimdBackend b : availableBackends()) {
                ScopedSimdBackend guard(b);
                EXPECT_EQ(line.lineClean(row), truth)
                    << g.label << " backend=" << simdBackendName(b);
            }
        }
    }
}

TEST(LineCodec, CorrectLineReproducesTheSlotLoopRepair)
{
    Rng rng(52);
    const Geometry g = geometries()[3]; // secded/i4: correctable slots
    const InterleaveMap map(g.code->codewordBits(), g.degree);
    const LineCodec line(*g.code, map);

    for (int trial = 0; trial < 100; ++trial) {
        std::vector<BitVector> words;
        for (size_t s = 0; s < g.degree; ++s) {
            BitVector w(g.code->dataBits());
            for (size_t i = 0; i < w.size(); ++i)
                w.set(i, rng.nextBool());
            words.push_back(w);
        }
        BitVector row(map.rowBits());
        line.encodeLine(words, row);

        // 0..degree single-bit slot errors (correctable), sometimes a
        // double flip in one slot (uncorrectable).
        const size_t dirty = rng.nextBelow(g.degree + 1);
        const bool poison = trial % 5 == 0 && dirty > 0;
        for (size_t s = 0; s < dirty; ++s) {
            const size_t bit = rng.nextBelow(g.code->codewordBits());
            row.flip(map.physicalColumn(s, bit));
            if (poison && s == 0) {
                const size_t other =
                    (bit + 1) % g.code->codewordBits();
                row.flip(map.physicalColumn(s, other));
            }
        }

        // Reference: the historical per-slot loop.
        BitVector refRow = row;
        bool refOk = true;
        for (size_t slot = 0; slot < map.degree(); ++slot) {
            DecodeResult d =
                g.code->decode(map.extractWord(refRow, slot));
            if (d.uncorrectable()) {
                refOk = false;
                break;
            }
            if (d.corrected())
                map.depositWord(refRow, slot, g.code->encode(d.data));
        }

        for (SimdBackend b : availableBackends()) {
            ScopedSimdBackend guard(b);
            BitVector got = row;
            bool changed = false;
            const bool ok = line.correctLine(got, changed);
            EXPECT_EQ(ok, refOk) << simdBackendName(b);
            if (ok) {
                EXPECT_EQ(got, refRow);
                EXPECT_EQ(changed, got != row);
                EXPECT_TRUE(line.lineClean(got));
            }
        }
    }
}

TEST(LineCodec, EncodeLineRoundTripsThroughExtract)
{
    Rng rng(53);
    for (const Geometry &g : geometries()) {
        const InterleaveMap map(g.code->codewordBits(), g.degree);
        const LineCodec line(*g.code, map);
        std::vector<BitVector> words;
        for (size_t s = 0; s < g.degree; ++s) {
            BitVector w(g.code->dataBits());
            for (size_t i = 0; i < w.size(); ++i)
                w.set(i, rng.nextBool());
            words.push_back(w);
        }
        BitVector row(map.rowBits());
        line.encodeLine(words, row);
        EXPECT_TRUE(line.lineClean(row)) << g.label;
        for (size_t s = 0; s < g.degree; ++s) {
            const DecodeResult d =
                g.code->decode(map.extractWord(row, s));
            EXPECT_TRUE(d.clean());
            EXPECT_EQ(d.data, words[s]) << g.label << " slot " << s;
        }
    }
}

} // namespace
} // namespace tdc
