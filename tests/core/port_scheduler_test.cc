#include <gtest/gtest.h>

#include "core/port_scheduler.hh"

namespace tdc
{
namespace
{

TEST(PortScheduler, DemandWithinBandwidthHasNoDelay)
{
    PortScheduler ps(2, 0);
    for (uint64_t c = 0; c < 10; ++c) {
        ps.advanceTo(c);
        EXPECT_EQ(ps.issueDemand(), 0u);
        EXPECT_EQ(ps.issueDemand(), 0u);
    }
    EXPECT_EQ(ps.totalDelay(), 0u);
    EXPECT_EQ(ps.demandIssued(), 20u);
}

TEST(PortScheduler, OversubscriptionSpillsToNextCycle)
{
    PortScheduler ps(1, 0);
    ps.advanceTo(0);
    EXPECT_EQ(ps.issueDemand(), 0u); // fills cycle 0
    EXPECT_EQ(ps.issueDemand(), 1u); // spills to cycle 1
    EXPECT_EQ(ps.issueDemand(), 2u); // spills to cycle 2
    EXPECT_EQ(ps.totalDelay(), 3u);
}

TEST(PortScheduler, BacklogDrainsOverTime)
{
    PortScheduler ps(1, 0);
    ps.advanceTo(0);
    ps.issueDemand();
    ps.issueDemand(); // backlog 1 cycle deep
    ps.advanceTo(5);  // plenty of idle time elapses
    EXPECT_EQ(ps.issueDemand(), 0u);
}

TEST(PortScheduler, NoStealingChargesEveryRead)
{
    PortScheduler ps(1, 0);
    ps.advanceTo(0);
    EXPECT_EQ(ps.issueStolenRead(), 1u);
    EXPECT_EQ(ps.stolenCharged(), 1u);
    EXPECT_EQ(ps.stolenAbsorbed(), 0u);
    EXPECT_EQ(ps.stealEfficiency(), 0.0);
}

TEST(PortScheduler, StealingAbsorbsIntoIdleSlots)
{
    // One port, idle cycles 0..9, then a burst of stolen reads at 10:
    // the window holds 8 idle slots, so 8 reads are free.
    PortScheduler ps(1, 8);
    ps.advanceTo(10); // cycles 0..9 idle
    unsigned charged = 0;
    for (int i = 0; i < 10; ++i)
        charged += ps.issueStolenRead();
    EXPECT_EQ(ps.stolenAbsorbed(), 8u);
    EXPECT_EQ(charged, 2u);
    EXPECT_NEAR(ps.stealEfficiency(), 0.8, 1e-9);
}

TEST(PortScheduler, BusyPortLeavesNothingToSteal)
{
    PortScheduler ps(1, 8);
    for (uint64_t c = 0; c < 8; ++c) {
        ps.advanceTo(c);
        ps.issueDemand(); // saturate every cycle
    }
    ps.advanceTo(8);
    EXPECT_EQ(ps.issueStolenRead(), 1u);
    EXPECT_EQ(ps.stolenAbsorbed(), 0u);
}

TEST(PortScheduler, WindowLimitsHowFarBackStealingSees)
{
    // Idle at cycles 0..1, then saturated 2..9: a window of 4 only
    // remembers the busy cycles.
    PortScheduler ps(1, 4);
    ps.advanceTo(2);
    for (uint64_t c = 2; c < 10; ++c) {
        ps.advanceTo(c);
        ps.issueDemand();
    }
    ps.advanceTo(10);
    EXPECT_EQ(ps.issueStolenRead(), 1u); // old idle slots expired
}

TEST(PortScheduler, MultiPortIdleSlotsAccumulate)
{
    PortScheduler ps(2, 16);
    // One demand per cycle leaves one idle slot per cycle.
    for (uint64_t c = 0; c < 6; ++c) {
        ps.advanceTo(c);
        ps.issueDemand();
    }
    ps.advanceTo(6);
    unsigned absorbed = 0;
    for (int i = 0; i < 6; ++i)
        absorbed += ps.issueStolenRead() == 0 ? 1 : 0;
    EXPECT_EQ(absorbed, 6u);
}

TEST(PortScheduler, ChargedStolenReadOccupiesARealSlot)
{
    PortScheduler ps(1, 0);
    ps.advanceTo(0);
    ps.issueStolenRead();             // takes cycle 0
    EXPECT_EQ(ps.issueDemand(), 1u);  // demand pushed to cycle 1
}

} // namespace
} // namespace tdc
