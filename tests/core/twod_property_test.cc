/**
 * @file
 * Property-style tests of the 2D coding scheme:
 *  - a coverage matrix parameterized over configuration x footprint,
 *  - a differential shadow-model stress test over random operation
 *    streams, and
 *  - recovery honesty under corrupted vertical parity.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "array/fault.hh"
#include "common/rng.hh"
#include "core/twod_array.hh"

namespace tdc
{
namespace
{

/** (horizontal kind, vertical rows, cluster width, cluster height) */
using CoverageParam = std::tuple<CodeKind, size_t, size_t, size_t>;

class CoverageMatrixTest : public ::testing::TestWithParam<CoverageParam>
{
};

TEST_P(CoverageMatrixTest, FootprintWithinGuaranteeIsAlwaysCorrected)
{
    const auto [kind, vrows, width, height] = GetParam();
    TwoDimConfig cfg;
    cfg.horizontalKind = kind;
    cfg.wordBits = 64;
    cfg.interleaveDegree = 4;
    cfg.verticalParityRows = vrows;
    cfg.dataRows = 64;

    // Parameter sets are chosen within the guarantee:
    //   height <= vrows, width <= interleave * burst-detect width.
    ASSERT_LE(height, vrows);

    Rng rng(uint64_t(width) * 1315423911u + height * 2654435761u +
            vrows);
    TwoDimArray arr(cfg);
    std::vector<std::vector<BitVector>> golden(
        arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            golden[r][s] = BitVector(64, rng.next());
            arr.writeWord(r, s, golden[r][s]);
        }

    FaultInjector inj(rng);
    for (int trial = 0; trial < 4; ++trial) {
        inj.injectCluster(arr.cells(), width, height, 1.0);
        ASSERT_TRUE(arr.scrub());
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                ASSERT_EQ(arr.readWord(r, s).data, golden[r][s]);
        ASSERT_TRUE(arr.verifyParity());
    }
}

INSTANTIATE_TEST_SUITE_P(
    EdcConfigs, CoverageMatrixTest,
    ::testing::Values(
        CoverageParam{CodeKind::kEdc8, 8, 1, 1},
        CoverageParam{CodeKind::kEdc8, 8, 32, 8},
        CoverageParam{CodeKind::kEdc8, 16, 32, 16},
        CoverageParam{CodeKind::kEdc8, 32, 32, 32},
        CoverageParam{CodeKind::kEdc8, 32, 17, 29},
        CoverageParam{CodeKind::kEdc16, 8, 32, 8},
        CoverageParam{CodeKind::kEdc16, 16, 64, 16},
        CoverageParam{CodeKind::kEdc32, 8, 128, 8}));

INSTANTIATE_TEST_SUITE_P(
    SecdedConfigs, CoverageMatrixTest,
    ::testing::Values(
        // SECDED horizontal: detect guarantee is 2 bits/word -> 8
        // contiguous columns at interleave 4.
        CoverageParam{CodeKind::kSecDed, 8, 8, 8},
        CoverageParam{CodeKind::kSecDed, 16, 8, 16},
        CoverageParam{CodeKind::kSecDed, 32, 8, 32},
        CoverageParam{CodeKind::kSecDed, 32, 1, 32}));

/**
 * Differential stress: a shadow std::map is the specification; the
 * 2D array must agree after an arbitrary interleaving of writes,
 * reads, in-coverage fault events and scrubs.
 */
TEST(TwoDimShadowModel, RandomOperationStreamsAgreeWithSpec)
{
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Rng rng(seed);
        TwoDimConfig cfg = TwoDimConfig::l1Default();
        cfg.dataRows = 64;
        cfg.verticalParityRows = 8;
        TwoDimArray arr(cfg);
        FaultInjector inj(rng);
        std::map<std::pair<size_t, size_t>, uint64_t> shadow;

        for (int op = 0; op < 1500; ++op) {
            const double dice = rng.nextDouble();
            const size_t row = rng.nextBelow(arr.rows());
            const size_t slot = rng.nextBelow(arr.wordsPerRow());
            if (dice < 0.45) {
                const uint64_t value = rng.next();
                arr.writeWord(row, slot, BitVector(64, value));
                shadow[{row, slot}] = value;
            } else if (dice < 0.90) {
                auto it = shadow.find({row, slot});
                if (it != shadow.end()) {
                    AccessResult res = arr.readWord(row, slot);
                    ASSERT_TRUE(res.ok()) << "seed " << seed;
                    ASSERT_EQ(res.data.toUint64(), it->second)
                        << "seed " << seed << " op " << op;
                }
            } else if (dice < 0.97) {
                // In-coverage fault event.
                inj.injectCluster(arr.cells(),
                                  1 + rng.nextBelow(32),
                                  1 + rng.nextBelow(8), 1.0);
                ASSERT_TRUE(arr.scrub()) << "seed " << seed;
            } else {
                ASSERT_TRUE(arr.scrub());
            }
        }
        // Final sweep: every written word matches the specification.
        for (const auto &[key, value] : shadow) {
            ASSERT_EQ(arr.readWord(key.first, key.second)
                          .data.toUint64(),
                      value);
        }
        ASSERT_TRUE(arr.verifyParity());
    }
}

TEST(TwoDimHonesty, CorruptedParityRowNeverCausesSilentCorruption)
{
    // If the vertical parity itself is corrupted, a subsequent row
    // reconstruction would produce garbage — the verification step of
    // the recovery process must catch that and report failure instead
    // of writing a wrong row and declaring success.
    Rng rng(99);
    TwoDimConfig cfg = TwoDimConfig::l1Default();
    cfg.dataRows = 64;
    cfg.verticalParityRows = 8;
    TwoDimArray arr(cfg);
    std::vector<std::vector<BitVector>> golden(
        arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            golden[r][s] = BitVector(64, rng.next());
            arr.writeWord(r, s, golden[r][s]);
        }

    // Corrupt the parity row of group 2 heavily, then lose row 10
    // (group 2) to a burst.
    for (size_t c = 0; c < 40; ++c)
        arr.vertical().cells().flipBit(2, c * 7 % arr.cells().cols());
    FaultInjector inj(rng);
    inj.injectRowBurst(arr.cells(), 10, 32);

    const RecoveryReport report = arr.recover();
    // Either the recovery honestly fails, or — if the corrupted
    // parity happens to decode — every word it claims clean must
    // actually be clean per the horizontal code. It must never return
    // success with an inconsistent bank.
    if (report.success) {
        EXPECT_TRUE(arr.verifyClean());
    } else {
        EXPECT_GT(arr.stats().recoveryFailures, 0u);
    }
}

TEST(TwoDimHonesty, RecoveryIsIdempotent)
{
    Rng rng(100);
    TwoDimConfig cfg = TwoDimConfig::l1Default();
    cfg.dataRows = 64;
    cfg.verticalParityRows = 8;
    TwoDimArray arr(cfg);
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t s = 0; s < arr.wordsPerRow(); ++s)
            arr.writeWord(r, s, BitVector(64, rng.next()));
    FaultInjector inj(rng);
    inj.injectCluster(arr.cells(), 32, 8, 1.0);
    ASSERT_TRUE(arr.recover().success);
    // A second recovery on a clean bank reconstructs nothing.
    const RecoveryReport second = arr.recover();
    EXPECT_TRUE(second.success);
    EXPECT_TRUE(second.rowsReconstructed.empty());
    EXPECT_TRUE(second.columnsRepaired.empty());
}

} // namespace
} // namespace tdc
