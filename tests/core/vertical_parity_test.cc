#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/vertical_parity.hh"

namespace tdc
{
namespace
{

TEST(VerticalParity, Geometry)
{
    VerticalParity vp(256, 288, 32);
    EXPECT_EQ(vp.groups(), 32u);
    EXPECT_EQ(vp.rowBits(), 288u);
    EXPECT_DOUBLE_EQ(vp.storageOverhead(), 32.0 / 256.0); // 12.5%
}

TEST(VerticalParity, GroupAssignmentIsRowModV)
{
    VerticalParity vp(256, 64, 32);
    EXPECT_EQ(vp.groupOf(0), 0u);
    EXPECT_EQ(vp.groupOf(31), 31u);
    EXPECT_EQ(vp.groupOf(32), 0u);
    EXPECT_EQ(vp.groupOf(255), 31u);
}

TEST(VerticalParity, StartsClean)
{
    VerticalParity vp(64, 32, 8);
    for (size_t g = 0; g < 8; ++g)
        EXPECT_TRUE(vp.readGroup(g).none());
}

TEST(VerticalParity, DeltaUpdateMatchesRecomputation)
{
    // Incremental old^new maintenance must equal a from-scratch XOR
    // of all covered rows: the fundamental invariant of the vertical
    // dimension.
    Rng rng(100);
    const size_t rows = 64, bits = 96, groups = 8;
    VerticalParity vp(rows, bits, groups);
    std::vector<BitVector> shadow(rows, BitVector(bits));

    for (int step = 0; step < 500; ++step) {
        const size_t r = rng.nextBelow(rows);
        BitVector next(bits);
        for (size_t b = 0; b < bits; ++b)
            next.set(b, rng.nextBool());
        vp.applyDelta(r, shadow[r] ^ next);
        shadow[r] = next;
    }

    for (size_t g = 0; g < groups; ++g) {
        BitVector expect(bits);
        for (size_t r = g; r < rows; r += groups)
            expect ^= shadow[r];
        EXPECT_EQ(vp.readGroup(g), expect) << "group " << g;
    }
}

TEST(VerticalParity, DoubleDeltaCancels)
{
    VerticalParity vp(16, 32, 4);
    BitVector delta(32, 0xA5A5);
    vp.applyDelta(5, delta);
    EXPECT_TRUE(vp.readGroup(1).any());
    vp.applyDelta(5, delta);
    EXPECT_TRUE(vp.readGroup(1).none());
}

TEST(VerticalParity, UpdatesOnlyOwnGroup)
{
    VerticalParity vp(16, 8, 4);
    vp.applyDelta(6, BitVector(8, 0xFF)); // group 2
    for (size_t g = 0; g < 4; ++g) {
        if (g == 2)
            EXPECT_TRUE(vp.readGroup(g).any());
        else
            EXPECT_TRUE(vp.readGroup(g).none());
    }
}

TEST(VerticalParity, UpdateCountTracksWrites)
{
    VerticalParity vp(16, 8, 4);
    EXPECT_EQ(vp.updateCount(), 0u);
    vp.applyDelta(0, BitVector(8, 1));
    vp.applyDelta(1, BitVector(8, 1));
    EXPECT_EQ(vp.updateCount(), 2u);
}

TEST(VerticalParity, WriteGroupOverrides)
{
    VerticalParity vp(16, 8, 4);
    BitVector v(8, 0x3C);
    vp.writeGroup(3, v);
    EXPECT_EQ(vp.readGroup(3), v);
}

} // namespace
} // namespace tdc
