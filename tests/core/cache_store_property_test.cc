/**
 * @file
 * Property-based suite for the whole-cache store: random clustered
 * injections (row bursts, column bursts, rectangles — several banks at
 * once) must always recover through the store API as long as every
 * event stays within one bank's guaranteed coverage, and the store's
 * batch sweeps must behave exactly like hand-driven per-bank
 * TwoDimArray oracles (same repaired data, same reports, same stats).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/twod_cache_store.hh"

namespace tdc
{
namespace
{

TwoDimConfig
smallBank()
{
    TwoDimConfig cfg = TwoDimConfig::l1Default();
    cfg.dataRows = 32;
    cfg.verticalParityRows = 8;
    return cfg;
}

/** Fill store and per-bank oracles with identical random data. */
struct Mirror
{
    TwoDimCacheStore store;
    std::vector<std::unique_ptr<TwoDimArray>> oracle;
    std::vector<uint64_t> golden; ///< by flat word index

    Mirror(const TwoDimConfig &cfg, size_t banks, Rng &rng)
        : store(cfg, banks)
    {
        for (size_t b = 0; b < banks; ++b)
            oracle.push_back(std::make_unique<TwoDimArray>(cfg));
        const size_t slots = store.bank(0).wordsPerRow();
        golden.resize(store.totalWords());
        for (size_t w = 0; w < store.totalWords(); ++w) {
            golden[w] = rng.next();
            const BitVector v(64, golden[w]);
            store.writeWord(w, v);
            const size_t local = w / banks;
            oracle[w % banks]->writeWord(local / slots, local % slots, v);
        }
    }

    void verifyAllWordsMatchGolden()
    {
        for (size_t w = 0; w < store.totalWords(); ++w) {
            const AccessResult res = store.readWord(w);
            ASSERT_TRUE(res.ok()) << "word " << w;
            ASSERT_EQ(res.data.toUint64(), golden[w]) << "word " << w;
        }
    }
};

/** A random in-coverage fault event with a fully pinned footprint. */
FaultModel
randomCoveredFault(const TwoDimConfig &cfg, size_t row_bits, Rng &rng)
{
    const size_t wcov = cfg.clusterWidthCoverage();
    const size_t hcov = cfg.clusterHeightCoverage();
    FaultModel m;
    switch (rng.nextBelow(3)) {
      case 0:
        m = FaultModel::rowBurst(1 + rng.nextBelow(wcov));
        m.height = 1;
        break;
      case 1:
        m = FaultModel::columnBurst(1 + rng.nextBelow(hcov));
        m.width = 1;
        break;
      default:
        m = FaultModel::cluster(1 + rng.nextBelow(wcov),
                                1 + rng.nextBelow(hcov));
        break;
    }
    m.rowLo = long(rng.nextBelow(cfg.dataRows - m.height + 1));
    m.colLo = long(rng.nextBelow(row_bits - m.width + 1));
    return m;
}

/** Pick @p count distinct banks. */
std::vector<size_t>
distinctBanks(size_t banks, size_t count, Rng &rng)
{
    std::vector<size_t> all(banks);
    for (size_t b = 0; b < banks; ++b)
        all[b] = b;
    for (size_t i = 0; i < count; ++i)
        std::swap(all[i], all[i + rng.nextBelow(banks - i)]);
    all.resize(count);
    return all;
}

TEST(CacheStoreProperty, CoveredInjectionsAlwaysRecoverAndMatchOracles)
{
    Rng rng(0xC0FFEE);
    const TwoDimConfig cfg = smallBank();

    for (int iter = 0; iter < 24; ++iter) {
        const size_t banks = 2 + rng.nextBelow(3); // 2..4 banks
        Mirror m(cfg, banks, rng);
        const size_t row_bits = m.store.bank(0).cells().cols();

        // Simultaneous events in distinct banks: independently
        // correctable by construction (the paper's deployment claim).
        const size_t events = 1 + rng.nextBelow(banks);
        const std::vector<size_t> hit = distinctBanks(banks, events, rng);
        for (size_t b : hit) {
            const FaultModel fault = randomCoveredFault(cfg, row_bits,
                                                        rng);
            // Fully pinned footprint + solid density: the same event
            // lands identically in the store bank and its oracle.
            Rng store_rng(1), oracle_rng(1);
            FaultInjector store_inj(store_rng), oracle_inj(oracle_rng);
            store_inj.inject(m.store.bank(b).cells(), fault);
            oracle_inj.inject(m.oracle[b]->cells(), fault);
        }

        // The store API must fully recover...
        const CacheRecoveryReport report =
            m.store.recoverBanks({hit.begin(), hit.end()});
        EXPECT_TRUE(report.success) << "iter " << iter;

        // ...and behave exactly like the hand-driven per-bank oracles.
        // (Stats are compared before the word-level verification pass,
        // which charges extra reads to the store.)
        std::vector<size_t> sorted(hit.begin(), hit.end());
        std::sort(sorted.begin(), sorted.end());
        ASSERT_EQ(report.banks.size(), sorted.size());
        for (size_t i = 0; i < sorted.size(); ++i) {
            const size_t b = sorted[i];
            const RecoveryReport oracle_rep = m.oracle[b]->recover();
            EXPECT_TRUE(oracle_rep.success);
            const RecoveryReport &store_rep = report.banks[i].report;
            EXPECT_EQ(report.banks[i].bank, b);
            EXPECT_EQ(store_rep.rowReads, oracle_rep.rowReads);
            EXPECT_EQ(store_rep.rowsReconstructed,
                      oracle_rep.rowsReconstructed);
            EXPECT_EQ(store_rep.columnsRepaired,
                      oracle_rep.columnsRepaired);
            EXPECT_EQ(m.store.bank(b).stats(), m.oracle[b]->stats());
        }
        m.verifyAllWordsMatchGolden();
    }
}

TEST(CacheStoreProperty, InjectAndRecoverMatchesHandDrivenOracle)
{
    Rng rng(0xBEEF);
    const TwoDimConfig cfg = smallBank();

    for (int iter = 0; iter < 12; ++iter) {
        const size_t banks = 2 + rng.nextBelow(3);
        Mirror m(cfg, banks, rng);
        const uint64_t seed = rng.next();

        // Random in-coverage footprints with *random* anchors: the
        // batch API draws them from shardSeed(seed, i) streams.
        const size_t events = 1 + rng.nextBelow(banks);
        const std::vector<size_t> hit = distinctBanks(banks, events, rng);
        std::vector<BankFaultSpec> specs;
        for (size_t i = 0; i < events; ++i) {
            FaultModel fault;
            switch (rng.nextBelow(3)) {
              case 0:
                fault = FaultModel::rowBurst(
                    1 + rng.nextBelow(cfg.clusterWidthCoverage()));
                break;
              case 1:
                fault = FaultModel::columnBurst(
                    1 + rng.nextBelow(cfg.clusterHeightCoverage()));
                break;
              default:
                fault = FaultModel::cluster(
                    1 + rng.nextBelow(cfg.clusterWidthCoverage()),
                    1 + rng.nextBelow(cfg.clusterHeightCoverage()));
                break;
            }
            specs.push_back({hit[i], fault});
        }

        // Replay the documented seeding contract on the oracles first:
        // event i draws from the injection-domain stream.
        for (size_t i = 0; i < specs.size(); ++i) {
            Rng event_rng(shardSeed(seed, kSeedDomainInjection, i));
            FaultInjector inj(event_rng);
            inj.inject(m.oracle[specs[i].bank]->cells(), specs[i].fault);
        }

        const CacheRecoveryReport report =
            m.store.injectAndRecover(specs, seed);
        EXPECT_TRUE(report.success) << "iter " << iter;

        std::vector<size_t> sorted(hit.begin(), hit.end());
        std::sort(sorted.begin(), sorted.end());
        ASSERT_EQ(report.banks.size(), sorted.size());
        for (size_t i = 0; i < sorted.size(); ++i) {
            const size_t b = sorted[i];
            const RecoveryReport oracle_rep = m.oracle[b]->recover();
            EXPECT_TRUE(oracle_rep.success);
            EXPECT_EQ(report.banks[i].report.rowsReconstructed,
                      oracle_rep.rowsReconstructed);
            EXPECT_EQ(report.banks[i].report.columnsRepaired,
                      oracle_rep.columnsRepaired);
            EXPECT_EQ(m.store.bank(b).stats(), m.oracle[b]->stats());
        }
        m.verifyAllWordsMatchGolden();
    }
}

} // namespace
} // namespace tdc
