#include <gtest/gtest.h>

#include "vlsi/sram_model.hh"

namespace tdc
{
namespace
{

TEST(SramModel, GeometryAccounting)
{
    // 64kB of 64-bit data words with (72,64) codewords, 4-way.
    SramModel model(8192, 72, 4);
    EXPECT_EQ(model.totalRows(), 2048u);
    EXPECT_EQ(model.rowBits(), 288u);
    EXPECT_FALSE(model.candidates().empty());
}

TEST(SramModel, MetricsArePositive)
{
    SramModel model(8192, 72, 4);
    for (const SramOrg &org : model.candidates()) {
        const SramMetrics m = model.evaluate(org);
        EXPECT_GT(m.delay, 0.0);
        EXPECT_GT(m.readEnergy, 0.0);
        EXPECT_GT(m.area, 0.0);
    }
}

TEST(SramModel, ObjectivesAchieveTheirGoal)
{
    SramModel model(16384, 266, 2);
    const SramMetrics d = model.optimize(SramObjective::kDelay);
    const SramMetrics p = model.optimize(SramObjective::kPower);
    // The delay-optimal point cannot be slower than the power-optimal
    // point and vice versa.
    EXPECT_LE(d.delay, p.delay);
    EXPECT_LE(p.readEnergy, d.readEnergy);
}

TEST(SramModel, EnergyGrowsWithInterleaving)
{
    // Figure 2(b)/(c): read energy increases with interleave degree
    // under every objective.
    for (SramObjective obj :
         {SramObjective::kDelay, SramObjective::kPower,
          SramObjective::kDelayArea, SramObjective::kBalanced}) {
        double prev = 0.0;
        for (size_t d = 1; d <= 16; d *= 2) {
            SramModel model(8192, 72, d);
            const double e = model.optimize(obj).readEnergy;
            EXPECT_GT(e, prev) << sramObjectiveName(obj) << " d=" << d;
            prev = e;
        }
    }
}

TEST(SramModel, WideWordArrayPaysMoreForInterleaving)
{
    // The 4MB cache's 256-bit words make interleaving relatively more
    // expensive than the 64kB cache's 64-bit words (Figure 2(c) vs
    // 2(b)).
    auto relative_growth = [](size_t words, size_t cw) {
        SramModel base(words, cw, 1);
        SramModel deep(words, cw, 8);
        const double e0 =
            base.optimize(SramObjective::kBalanced).readEnergy;
        const double e8 =
            deep.optimize(SramObjective::kBalanced).readEnergy;
        return e8 / e0;
    };
    const double l1_growth = relative_growth(8192, 72);
    const double l2_growth = relative_growth(16384, 266);
    EXPECT_GT(l2_growth, l1_growth);
}

TEST(SramModel, PowerOptSpendsAreaToSaveEnergy)
{
    SramModel model(16384, 266, 8);
    const SramMetrics p = model.optimize(SramObjective::kPower);
    const SramMetrics da = model.optimize(SramObjective::kDelayArea);
    EXPECT_LE(p.readEnergy, da.readEnergy);
    // and typically pays for it in area (segmentation adds sense amps)
    EXPECT_GE(p.area, da.area * 0.99);
}

TEST(SramModel, BankingReducesNothingButArea)
{
    // cacheArrayMetrics: one activated bank determines energy/delay;
    // area sums over banks.
    const SramMetrics one =
        cacheArrayMetrics(1 << 20, 256, 10, 2, 1,
                          SramObjective::kBalanced);
    const SramMetrics eight =
        cacheArrayMetrics(8 << 20, 256, 10, 2, 8,
                          SramObjective::kBalanced);
    EXPECT_NEAR(eight.readEnergy, one.readEnergy, 1e-9);
    EXPECT_NEAR(eight.area, 8.0 * one.area, 1e-6);
}

TEST(SramModel, CheckBitsIncreaseEnergyProportionally)
{
    const SramMetrics plain =
        cacheArrayMetrics(64 * 1024, 64, 0, 2, 1,
                          SramObjective::kBalanced);
    const SramMetrics secded =
        cacheArrayMetrics(64 * 1024, 64, 8, 2, 1,
                          SramObjective::kBalanced);
    const SramMetrics oecned =
        cacheArrayMetrics(64 * 1024, 64, 57, 2, 1,
                          SramObjective::kBalanced);
    EXPECT_GT(secded.readEnergy, plain.readEnergy);
    EXPECT_GT(oecned.readEnergy, secded.readEnergy);
    // 57 extra bits on 64 must cost visibly more than 8 extra bits.
    const double secded_extra = secded.readEnergy / plain.readEnergy - 1;
    const double oecned_extra = oecned.readEnergy / plain.readEnergy - 1;
    EXPECT_GT(oecned_extra, 3.0 * secded_extra);
}

} // namespace
} // namespace tdc
