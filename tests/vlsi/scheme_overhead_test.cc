#include <gtest/gtest.h>

#include "vlsi/scheme_overhead.hh"

namespace tdc
{
namespace
{

// (Scheme display names live in the scheme layer now; see
// tests/scheme/scheme_test.cc NamesComeFromCodeKindName.)

TEST(SchemeOverhead, TwoDimAreaMatchesFigure3c)
{
    // 2D(EDC8+Intv4, EDC32/256 rows): 12.5% horizontal + 12.5%
    // vertical = 25%.
    const SchemeOverhead o = evaluateScheme(
        SchemeSpec::twoDim(CodeKind::kEdc8, 4, 32, 256),
        CacheGeometry::l1());
    EXPECT_DOUBLE_EQ(o.codeAreaFraction, 0.25);
}

TEST(SchemeOverhead, ConventionalAreaIsStorageOnly)
{
    const SchemeOverhead o = evaluateScheme(
        SchemeSpec::conventional(CodeKind::kSecDed, 2),
        CacheGeometry::l1());
    EXPECT_DOUBLE_EQ(o.codeAreaFraction, 0.125);
}

TEST(SchemeOverhead, TwoDimBeatsConventionalMultiBitSchemes)
{
    // The Figure 7 headline: for the same 32-bit coverage target, 2D
    // coding has lower area, latency and power than every
    // conventional combination.
    const CacheGeometry l1 = CacheGeometry::l1();
    const SchemeSpec twod = SchemeSpec::twoDim(CodeKind::kEdc8, 4);
    const SchemeSpec conv[] = {
        SchemeSpec::conventional(CodeKind::kDecTed, 16),
        SchemeSpec::conventional(CodeKind::kQecPed, 8),
        SchemeSpec::conventional(CodeKind::kOecNed, 4),
    };
    const SchemeOverhead o2d = evaluateScheme(twod, l1);
    for (const SchemeSpec &c : conv) {
        const SchemeOverhead oc = evaluateScheme(c, l1);
        EXPECT_LT(o2d.codeAreaFraction, oc.codeAreaFraction)
            << codeKindName(c.horizontal);
        EXPECT_LT(o2d.codingLatencyLevels, oc.codingLatencyLevels)
            << codeKindName(c.horizontal);
        EXPECT_LT(o2d.dynamicEnergy, oc.dynamicEnergy)
            << codeKindName(c.horizontal);
    }
}

TEST(SchemeOverhead, TwoDimNearBaselineSecded)
{
    // Paper: the extra area of 2D vs baseline SECDED+Intv2 is only a
    // few percentage points of data storage (5-6%), and power stays
    // in the same ballpark rather than the 3-5x of strong ECC.
    const CacheGeometry l1 = CacheGeometry::l1();
    const NormalizedOverhead n = normalizeScheme(
        SchemeSpec::twoDim(CodeKind::kEdc8, 4),
        SchemeSpec::conventional(CodeKind::kSecDed, 2), l1);
    EXPECT_LT(n.area, 2.5);  // 25% vs 12.5% fraction -> 2x
    EXPECT_LE(n.latency, 1.0); // detection-only path is not slower
    EXPECT_LT(n.power, 2.0);

    const NormalizedOverhead oec = normalizeScheme(
        SchemeSpec::conventional(CodeKind::kOecNed, 4),
        SchemeSpec::conventional(CodeKind::kSecDed, 2), l1);
    EXPECT_GT(oec.power, 2.0); // conventional strong ECC blows up
    EXPECT_GT(oec.area, 5.0);
}

TEST(SchemeOverhead, WriteThroughBurnsPowerToSaveArea)
{
    const CacheGeometry l1 = CacheGeometry::l1();
    const SchemeOverhead wt = evaluateScheme(
        SchemeSpec::writeThrough(CodeKind::kEdc8, 4), l1);
    const SchemeOverhead twod = evaluateScheme(
        SchemeSpec::twoDim(CodeKind::kEdc8, 4), l1);
    // Same horizontal code => smaller on-array area than 2D...
    EXPECT_LT(wt.codeAreaFraction, twod.codeAreaFraction);
    // ...but much higher dynamic power (duplicate L2 writes).
    EXPECT_GT(wt.dynamicEnergy, 1.5 * twod.dynamicEnergy);
}

TEST(SchemeOverhead, L2SchemesRankLikeL1)
{
    const CacheGeometry l2 = CacheGeometry::l2();
    const SchemeOverhead o2d = evaluateScheme(
        SchemeSpec::twoDim(CodeKind::kEdc16, 2), l2);
    const SchemeOverhead oc = evaluateScheme(
        SchemeSpec::conventional(CodeKind::kOecNed, 4), l2);
    EXPECT_LT(o2d.codeAreaFraction, oc.codeAreaFraction);
    EXPECT_LT(o2d.dynamicEnergy, oc.dynamicEnergy);
}

TEST(SchemeOverhead, NormalizationIsExactForReferenceScheme)
{
    const SchemeSpec ref = SchemeSpec::conventional(CodeKind::kSecDed, 2);
    const NormalizedOverhead n =
        normalizeScheme(ref, ref, CacheGeometry::l1());
    EXPECT_DOUBLE_EQ(n.area, 1.0);
    EXPECT_DOUBLE_EQ(n.latency, 1.0);
    EXPECT_DOUBLE_EQ(n.power, 1.0);
}

} // namespace
} // namespace tdc
