#include <gtest/gtest.h>

#include "reliability/yield_model.hh"

namespace tdc
{
namespace
{

TEST(YieldParams, Figure8aGeometry)
{
    const YieldParams p = YieldParams::l2Cache16MB();
    EXPECT_EQ(p.words, 2u * 1024 * 1024);
    EXPECT_EQ(p.wordBits, 72u);
    EXPECT_EQ(p.totalBits(), 2ull * 1024 * 1024 * 72);
}

TEST(YieldModel, ZeroFaultsIsPerfectYield)
{
    YieldModel m(YieldParams::l2Cache16MB());
    EXPECT_DOUBLE_EQ(m.yieldSpareOnly(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.yieldEccOnly(0), 1.0);
    EXPECT_DOUBLE_EQ(m.yieldEccPlusSpares(0, 16), 1.0);
}

TEST(YieldModel, ExpectedCountsScaleSensibly)
{
    YieldModel m(YieldParams::l2Cache16MB());
    // With few faults relative to words, nearly all land in distinct
    // words.
    EXPECT_NEAR(m.expectedFaultyWords(1000), 1000.0, 1.0);
    // Multi-fault words are second-order rare.
    EXPECT_LT(m.expectedMultiFaultWords(1000), 1.0);
    EXPECT_GT(m.expectedMultiFaultWords(4000),
              m.expectedMultiFaultWords(1000));
}

TEST(YieldModel, SpareOnlyCollapsesQuickly)
{
    // Figure 8(a): 128 spare rows are exhausted as soon as more than
    // ~128 cells fail anywhere.
    YieldModel m(YieldParams::l2Cache16MB());
    EXPECT_GT(m.yieldSpareOnly(100, 128), 0.95);
    EXPECT_LT(m.yieldSpareOnly(400, 128), 0.01);
    EXPECT_LT(m.yieldSpareOnly(4000, 128), 1e-6);
}

TEST(YieldModel, EccOnlyDegradesGradually)
{
    YieldModel m(YieldParams::l2Cache16MB());
    // E[multi-fault words] ~ F^2 / (2N): ~0.15 at 800 faults, ~3.7 at
    // 4000 -> yield e^-3.7 ~ 2% ("ECC alone has poor yield").
    const double y800 = m.yieldEccOnly(800);
    const double y4000 = m.yieldEccOnly(4000);
    EXPECT_GT(y800, 0.8);
    EXPECT_LT(y4000, y800);
    EXPECT_GT(y4000, 0.005); // degraded gradually, not a cliff
    EXPECT_LT(y4000, 0.10);
}

TEST(YieldModel, EccPlusSparesDominatesEverything)
{
    // The paper's headline for Figure 8(a): ECC + a few spares beats
    // both ECC-only and spares-only across the sweep.
    YieldModel m(YieldParams::l2Cache16MB());
    for (double f : {400.0, 800.0, 1600.0, 3200.0, 4000.0}) {
        const double combo16 = m.yieldEccPlusSpares(f, 16);
        EXPECT_GE(combo16, m.yieldEccOnly(f));
        EXPECT_GE(combo16, m.yieldSpareOnly(f, 128));
        EXPECT_GT(combo16, 0.99) << f;
        EXPECT_GE(m.yieldEccPlusSpares(f, 32), combo16);
    }
}

TEST(YieldModel, YieldIsMonotonicInFaultsAndSpares)
{
    YieldModel m(YieldParams::l2Cache16MB());
    double prev = 1.0;
    for (double f = 0; f <= 4000; f += 500) {
        const double y = m.yieldEccOnly(f);
        EXPECT_LE(y, prev + 1e-12);
        prev = y;
    }
    EXPECT_LE(m.yieldEccPlusSpares(4000, 8),
              m.yieldEccPlusSpares(4000, 16));
}

TEST(YieldModel, MonteCarloAgreesWithAnalytic)
{
    // Use a small array so the Monte Carlo runs fast but collisions
    // still happen.
    YieldParams p;
    p.words = 4096;
    p.wordBits = 72;
    YieldModel m(p);
    Rng rng(1234);
    const size_t faults = 128;
    const auto mc = m.monteCarlo(faults, 4, 400, rng);
    EXPECT_NEAR(mc.eccOnly, m.yieldEccOnly(double(faults)), 0.08);
    EXPECT_NEAR(mc.eccPlusSpares, m.yieldEccPlusSpares(double(faults), 4),
                0.08);
    EXPECT_NEAR(mc.spareOnly, m.yieldSpareOnly(double(faults), 4), 0.08);
}

} // namespace
} // namespace tdc
