/**
 * @file
 * Unit and determinism-differential tests of the unified campaign
 * driver: the grid executor must assemble tables correctly and be
 * bit-identical at every worker-pool size, and the injection-campaign
 * arms (conventional / 2D / product code) must be pure functions of
 * their parameters with sane coverage verdicts.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "reliability/campaign.hh"
#include "reliability/figure_campaigns.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

CampaignGrid
arithmeticGrid()
{
    CampaignGrid grid;
    grid.title = "--- test ---";
    grid.rowHeader = "Row";
    grid.rowLabels = {"r0", "r1", "r2"};
    grid.colHeaders = {"c0", "c1"};
    grid.cell = [](size_t row, size_t col) {
        // Derived from the cell index only: any execution order must
        // produce the same table.
        return std::to_string(shardSeed(41, row * 2 + col) % 1000);
    };
    grid.summary = [](const std::vector<std::vector<std::string>> &cells) {
        std::vector<std::string> row{"sum-rows",
                                     std::to_string(cells.size())};
        return std::vector<std::vector<std::string>>{row};
    };
    return grid;
}

TEST(Campaign, GridAssemblesLabelsCellsAndSummary)
{
    const CampaignResult res = runCampaignGrid(arithmeticGrid());
    ASSERT_EQ(res.headers.size(), 3u);
    EXPECT_EQ(res.headers[0], "Row");
    ASSERT_EQ(res.cells.size(), 3u);
    ASSERT_EQ(res.cells[0].size(), 2u);
    // rows = 3 grid rows + 1 summary row, each led by its label.
    ASSERT_EQ(res.rows.size(), 4u);
    EXPECT_EQ(res.rows[1][0], "r1");
    EXPECT_EQ(res.rows[1][1], res.cells[1][0]);
    EXPECT_EQ(res.rows[3][0], "sum-rows");
    EXPECT_EQ(res.rows[3][1], "3");
    // The rendered output embeds the title and all four rows.
    const std::string text = res.render();
    EXPECT_NE(text.find("--- test ---"), std::string::npos);
    EXPECT_NE(text.find("sum-rows"), std::string::npos);
}

TEST(Campaign, GridIdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const std::string serial = runCampaignGrid(arithmeticGrid()).render();
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(runCampaignGrid(arithmeticGrid()).render(), serial)
            << threads << " threads";
    }
}

TEST(Campaign, InjectionCampaignIdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    const FaultModel fault = FaultModel::cluster(8, 8);
    const std::vector<InjectionScheme> schemes = {
        InjectionScheme::conventional(CodeKind::kSecDed, 4, 64),
        InjectionScheme::twoDim(TwoDimConfig::l1Default()),
        InjectionScheme::productCode(64, 64),
    };
    for (const InjectionScheme &scheme : schemes) {
        setParallelThreads(1);
        const InjectionOutcome serial =
            runInjectionCampaign(scheme, fault, 8, 404);
        EXPECT_EQ(serial.trials, 8);
        EXPECT_EQ(serial.corrected + serial.detectedOnly + serial.silent,
                  serial.trials);
        for (unsigned threads : {2u, 4u, 8u}) {
            setParallelThreads(threads);
            EXPECT_EQ(runInjectionCampaign(scheme, fault, 8, 404), serial)
                << threads << " threads";
        }
    }
}

TEST(Campaign, InjectionVerdictsMatchCoverageGuarantees)
{
    // Single-bit events: every scheme corrects them.
    const FaultModel single = FaultModel::singleBit();
    EXPECT_EQ(runInjectionCampaign(
                  InjectionScheme::conventional(CodeKind::kSecDed, 4, 64),
                  single, 6, 1)
                  .verdict(),
              "corrected");
    EXPECT_EQ(runInjectionCampaign(
                  InjectionScheme::twoDim(TwoDimConfig::l1Default()),
                  single, 6, 1)
                  .verdict(),
              "corrected");
    EXPECT_EQ(runInjectionCampaign(InjectionScheme::productCode(64, 64),
                                   single, 6, 1)
                  .verdict(),
              "corrected");

    // A 2x2 block: in 2D coverage; ambiguous for the product code
    // (rectangular multi-bit patterns are the classic failure).
    const FaultModel block = FaultModel::cluster(2, 2);
    EXPECT_EQ(runInjectionCampaign(
                  InjectionScheme::twoDim(TwoDimConfig::l1Default()),
                  block, 6, 2)
                  .verdict(),
              "corrected");
    const InjectionOutcome product = runInjectionCampaign(
        InjectionScheme::productCode(64, 64), block, 6, 2);
    EXPECT_EQ(product.corrected, 0);

    // Beyond-coverage clusters on the 2D bank are detected, not
    // silent (the EDC8 horizontal always sees odd per-word flips).
    const InjectionOutcome wide = runInjectionCampaign(
        InjectionScheme::twoDim(TwoDimConfig::l1Default()),
        FaultModel::cluster(33, 64), 4, 3);
    EXPECT_EQ(wide.corrected, 0);
    EXPECT_EQ(wide.silent, 0);
    EXPECT_EQ(wide.detectedOnly, 4);
}

TEST(Campaign, Figure3InjectionGridIdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const std::string serial = figure3InjectionCampaign(3, 11).render();
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(figure3InjectionCampaign(3, 11).render(), serial)
            << threads << " threads";
    }
}

TEST(Campaign, RelatedWorkAndMonteCarloGridsIdenticalAcrossThreads)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const std::string related = relatedWorkCampaign(3, 21).render();
    const std::string yield_mc =
        figure8YieldMonteCarloCampaign(50, 22).render();
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(relatedWorkCampaign(3, 21).render(), related);
        EXPECT_EQ(figure8YieldMonteCarloCampaign(50, 22).render(),
                  yield_mc);
    }
}

} // namespace
} // namespace tdc
