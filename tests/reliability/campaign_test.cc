/**
 * @file
 * Unit and determinism-differential tests of the campaign-grid
 * executor: it must assemble tables correctly and be bit-identical at
 * every worker-pool size. (The injection-campaign arms live behind
 * the ProtectionScheme API now and are covered by the scheme-layer
 * tests.)
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "reliability/campaign.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

CampaignGrid
arithmeticGrid()
{
    CampaignGrid grid;
    grid.title = "--- test ---";
    grid.rowHeader = "Row";
    grid.rowLabels = {"r0", "r1", "r2"};
    grid.colHeaders = {"c0", "c1"};
    grid.cell = [](size_t row, size_t col) {
        // Derived from the cell index only: any execution order must
        // produce the same table.
        return std::to_string(shardSeed(41, row * 2 + col) % 1000);
    };
    grid.summary = [](const std::vector<std::vector<std::string>> &cells) {
        std::vector<std::string> row{"sum-rows",
                                     std::to_string(cells.size())};
        return std::vector<std::vector<std::string>>{row};
    };
    return grid;
}

TEST(Campaign, GridAssemblesLabelsCellsAndSummary)
{
    const CampaignResult res = runCampaignGrid(arithmeticGrid());
    ASSERT_EQ(res.headers.size(), 3u);
    EXPECT_EQ(res.headers[0], "Row");
    ASSERT_EQ(res.cells.size(), 3u);
    ASSERT_EQ(res.cells[0].size(), 2u);
    // rows = 3 grid rows + 1 summary row, each led by its label.
    ASSERT_EQ(res.rows.size(), 4u);
    EXPECT_EQ(res.rows[1][0], "r1");
    EXPECT_EQ(res.rows[1][1], res.cells[1][0]);
    EXPECT_EQ(res.rows[3][0], "sum-rows");
    EXPECT_EQ(res.rows[3][1], "3");
    // The rendered output embeds the title and all four rows.
    const std::string text = res.render();
    EXPECT_NE(text.find("--- test ---"), std::string::npos);
    EXPECT_NE(text.find("sum-rows"), std::string::npos);
}

TEST(Campaign, GridIdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const std::string serial = runCampaignGrid(arithmeticGrid()).render();
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(runCampaignGrid(arithmeticGrid()).render(), serial)
            << threads << " threads";
    }
}

} // namespace
} // namespace tdc
