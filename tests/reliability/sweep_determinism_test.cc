/**
 * @file
 * Determinism contract of the threaded sweeps: counter-based RNG
 * streams make every Monte-Carlo result a pure function of its
 * parameters, so running with 1, 2, 4 or 8 workers must reproduce the
 * serial counters bit for bit.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "reliability/recovery_sweep.hh"
#include "reliability/soft_error_model.hh"
#include "reliability/yield_model.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

TEST(SweepDeterminism, RecoverySweepIdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    RecoverySweepParams params;
    params.trials = 12;
    params.seed = 2026;
    params.fault = FaultModel::cluster(16, 16);

    setParallelThreads(1);
    const RecoverySweepResult serial = runRecoverySweep(params);
    EXPECT_EQ(serial.trials, 12);
    EXPECT_EQ(serial.recovered + serial.detectedOnly + serial.silent,
              serial.trials);
    // A 16x16 cluster is inside the guaranteed 32x32 coverage.
    EXPECT_EQ(serial.recovered, serial.trials);

    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        const RecoverySweepResult threaded = runRecoverySweep(params);
        EXPECT_EQ(threaded, serial) << threads << " threads";
    }
}

TEST(SweepDeterminism, BeyondCoverageClustersAreCountedNotSilent)
{
    ThreadGuard guard;
    setParallelThreads(4);
    // A solid 33x64 cluster breaks both guarantees (33 > 32 columns,
    // 64 > 32 rows; every vertical group holds two full-width faulty
    // rows whose parity contributions cancel), but the horizontal
    // EDC8 still sees an odd bit count in every faulty word — the
    // sweep must report the trials as detected, never silent.
    RecoverySweepParams params;
    params.trials = 6;
    params.seed = 5;
    params.fault = FaultModel::cluster(33, 64);
    const RecoverySweepResult res = runRecoverySweep(params);
    EXPECT_EQ(res.trials, 6);
    EXPECT_EQ(res.recovered, 0);
    EXPECT_EQ(res.detectedOnly, 6);
    EXPECT_EQ(res.silent, 0);
}

TEST(SweepDeterminism, SoftErrorMonteCarloIdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    const SoftErrorModel model(ReliabilityParams::figure8b(1e-4));
    setParallelThreads(1);
    const double serial = model.monteCarloParallel(5.0, 2000, 77);
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(model.monteCarloParallel(5.0, 2000, 77), serial)
            << threads << " threads";
    }
    // And it still estimates the analytic curve.
    EXPECT_NEAR(serial, model.successProbability(5.0), 0.05);
}

TEST(SweepDeterminism, YieldMonteCarloIdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    YieldParams params;
    params.words = 4096;
    params.wordBits = 72;
    const YieldModel model(params);
    setParallelThreads(1);
    const YieldModel::McResult serial =
        model.monteCarloParallel(64, 4, 200, 11);
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        const YieldModel::McResult threaded =
            model.monteCarloParallel(64, 4, 200, 11);
        EXPECT_EQ(threaded.spareOnly, serial.spareOnly);
        EXPECT_EQ(threaded.eccOnly, serial.eccOnly);
        EXPECT_EQ(threaded.eccPlusSpares, serial.eccPlusSpares);
    }
}

} // namespace
} // namespace tdc
