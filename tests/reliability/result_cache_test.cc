/**
 * @file
 * ResultCache contract: two-tier memoization, a versioned
 * self-verifying disk format, and graceful recovery from every
 * corruption mode the store can meet in the wild — truncation, stale
 * format salt, bit flips, digest-colliding foreign entries, width
 * mismatches — all of which must silently recompute, never crash or
 * return wrong data. Concurrent writers sharing one directory (the
 * multi-process campaign case) must never observe torn entries.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "reliability/result_cache.hh"

namespace tdc
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory per test. */
class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tdc_cache_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir() const { return dir_.string(); }

    fs::path entryPath(const std::string &key) const
    {
        return dir_ / ResultCache::entryFileName(key);
    }

    fs::path dir_;
};

ResultCache::Record
record(std::vector<int64_t> ints, std::vector<double> reals)
{
    ResultCache::Record r;
    r.ints = std::move(ints);
    r.reals = std::move(reals);
    return r;
}

TEST_F(ResultCacheTest, MemoryTierMemoizes)
{
    ResultCache cache; // no disk tier
    int calls = 0;
    const auto compute = [&] {
        ++calls;
        return record({1, 2, 3}, {0.5});
    };
    EXPECT_EQ(cache.memoize("k", compute), record({1, 2, 3}, {0.5}));
    EXPECT_EQ(cache.memoize("k", compute), record({1, 2, 3}, {0.5}));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().memoryHits, 1u);
    EXPECT_EQ(cache.stats().stored, 0u); // no disk tier configured
}

TEST_F(ResultCacheTest, DiskTierSurvivesProcessRestart)
{
    ResultCache cache(dir());
    int calls = 0;
    const auto compute = [&] {
        ++calls;
        return record({42}, {3.14159, -0.0});
    };
    const ResultCache::Record first = cache.memoize("key", compute);
    EXPECT_TRUE(fs::exists(entryPath("key")));

    // A fresh process is modeled by dropping the memory tier.
    cache.clearMemory();
    const ResultCache::Record second = cache.memoize("key", compute);
    EXPECT_EQ(first, second);
    EXPECT_EQ(calls, 1) << "disk tier should have served the reload";
    EXPECT_EQ(cache.stats().diskHits, 1u);

    // Bit-exact doubles: -0.0 must come back as -0.0.
    EXPECT_TRUE(std::signbit(second.reals[1]));
}

TEST_F(ResultCacheTest, TruncatedEntryRecomputes)
{
    ResultCache cache(dir());
    cache.memoize("key", [] { return record({7}, {1.25}); });

    // Truncate the entry to half its size.
    const fs::path path = entryPath("key");
    const auto full = fs::file_size(path);
    fs::resize_file(path, full / 2);

    cache.clearMemory();
    const ResultCache::Record r =
        cache.memoize("key", [] { return record({7}, {1.25}); });
    EXPECT_EQ(r, record({7}, {1.25}));
    EXPECT_EQ(cache.stats().corrupt, 1u);
    // The rewritten entry is whole again.
    cache.clearMemory();
    cache.memoize("key", [] { return record({7}, {1.25}); });
    EXPECT_EQ(cache.stats().diskHits, 1u);
}

TEST_F(ResultCacheTest, FlippedByteRecomputes)
{
    ResultCache cache(dir());
    cache.memoize("key", [] { return record({1, 2}, {}); });

    const fs::path path = entryPath("key");
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekp(-3, std::ios::end); // inside the checksum-protected tail
    char byte = 0;
    f.seekg(-3, std::ios::end);
    f.read(&byte, 1);
    byte = char(byte ^ 0x40);
    f.seekp(-3, std::ios::end);
    f.write(&byte, 1);
    f.close();

    cache.clearMemory();
    EXPECT_EQ(cache.memoize("key", [] { return record({1, 2}, {}); }),
              record({1, 2}, {}));
    EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(ResultCacheTest, StaleVersionSaltRecomputes)
{
    ResultCache cache(dir());
    cache.memoize("key", [] { return record({9}, {}); });

    // Rewrite the entry's version word (bytes 8..11, after the 8-byte
    // magic) to a stale value. The file is otherwise intact, so only
    // the salt check can reject it.
    const fs::path path = entryPath("key");
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    const uint32_t stale = ResultCache::kFormatVersion + 1000;
    f.seekp(8);
    f.write(reinterpret_cast<const char *>(&stale), sizeof(stale));
    f.close();

    cache.clearMemory();
    EXPECT_EQ(cache.memoize("key", [] { return record({9}, {}); }),
              record({9}, {}));
    EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(ResultCacheTest, ForeignKeyInCollidingFileRecomputes)
{
    // An entry file whose *content* echoes a different key (as after a
    // digest collision or a file renamed by hand) must not be served.
    ResultCache cache(dir());
    cache.memoize("other-key", [] { return record({13}, {}); });
    fs::rename(entryPath("other-key"), entryPath("key"));

    cache.clearMemory();
    int calls = 0;
    EXPECT_EQ(cache.memoize("key",
                            [&] {
                                ++calls;
                                return record({77}, {});
                            }),
              record({77}, {}));
    EXPECT_EQ(calls, 1);
    EXPECT_GE(cache.stats().corrupt, 1u);
}

TEST_F(ResultCacheTest, RealsWidthMismatchRecomputes)
{
    ResultCache cache(dir());
    cache.reals("key", 2, [] { return std::vector<double>{1.0, 2.0}; });
    cache.clearMemory();
    // Same key, different expected width: treat as corrupt, recompute.
    const std::vector<double> v =
        cache.reals("key", 3,
                    [] { return std::vector<double>{5.0, 6.0, 7.0}; });
    EXPECT_EQ(v, (std::vector<double>{5.0, 6.0, 7.0}));
}

TEST_F(ResultCacheTest, OutcomeRoundTrips)
{
    ResultCache cache(dir());
    InjectionOutcome o;
    o.trials = 100;
    o.corrected = 97;
    o.detectedOnly = 2;
    o.silent = 1;
    const InjectionOutcome cached =
        cache.outcome("key", [&] { return o; });
    EXPECT_EQ(cached, o);
    cache.clearMemory();
    const InjectionOutcome reloaded = cache.outcome("key", [&] {
        ADD_FAILURE() << "should have been served from disk";
        return InjectionOutcome{};
    });
    EXPECT_EQ(reloaded, o);
}

TEST_F(ResultCacheTest, SetDirectoryEnablesAndDisablesDiskTier)
{
    ResultCache cache;
    cache.memoize("key", [] { return record({1}, {}); });
    EXPECT_FALSE(fs::exists(entryPath("key")));

    cache.setDirectory(dir());
    cache.memoize("key2", [] { return record({2}, {}); });
    EXPECT_TRUE(fs::exists(entryPath("key2")));

    cache.setDirectory("");
    cache.memoize("key3", [] { return record({3}, {}); });
    EXPECT_FALSE(fs::exists(entryPath("key3")));
}

TEST_F(ResultCacheTest, EntryFileNameIsStableAndSafe)
{
    const std::string name = ResultCache::entryFileName(
        "inject|scheme=2d:edc8/i4+vp32|fault=32x32|trials=100|seed=1");
    EXPECT_EQ(name, ResultCache::entryFileName(
                        "inject|scheme=2d:edc8/i4+vp32|fault=32x32|"
                        "trials=100|seed=1"));
    // Digest hex + extension: no separators that could escape the
    // cache directory.
    EXPECT_EQ(name.find('/'), std::string::npos);
    EXPECT_EQ(name.find('\\'), std::string::npos);
    EXPECT_NE(name.find(".tdcr"), std::string::npos);
}

TEST_F(ResultCacheTest, ConcurrentWritersSharingDirectory)
{
    // Model N processes sharing --cache-dir: distinct ResultCache
    // instances (separate memory tiers, separate locks) hammering the
    // same keys. Atomic rename publication means every lookup either
    // misses or returns a whole, correct entry.
    constexpr int kWriters = 8;
    constexpr int kKeys = 16;
    std::deque<ResultCache> caches; // ResultCache is not movable
    for (int i = 0; i < kWriters; ++i)
        caches.emplace_back(dir());

    std::vector<std::thread> threads;
    std::vector<int> failures(kWriters, 0);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            for (int round = 0; round < 3; ++round) {
                caches[size_t(w)].clearMemory();
                for (int k = 0; k < kKeys; ++k) {
                    const std::string key = "key" + std::to_string(k);
                    const ResultCache::Record r =
                        caches[size_t(w)].memoize(key, [&] {
                            return record({k, k * k},
                                          {double(k) / 3.0});
                        });
                    if (r != record({k, k * k}, {double(k) / 3.0}))
                        ++failures[size_t(w)];
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int w = 0; w < kWriters; ++w)
        EXPECT_EQ(failures[size_t(w)], 0) << "writer " << w;
    // No stray tmp files left behind.
    size_t tmp_files = 0;
    for (const auto &e : fs::directory_iterator(dir()))
        if (e.path().extension() != ".tdcr")
            ++tmp_files;
    EXPECT_EQ(tmp_files, 0u);
}

TEST_F(ResultCacheTest, StatsDescribeMentionsEveryCounter)
{
    ResultCache cache(dir());
    cache.memoize("a", [] { return record({1}, {}); });
    cache.memoize("a", [] { return record({1}, {}); });
    const std::string line = cache.stats().describe();
    EXPECT_NE(line.find("hit"), std::string::npos) << line;
    EXPECT_NE(line.find("miss"), std::string::npos) << line;
    cache.resetStats();
    EXPECT_EQ(cache.stats(), CacheStats{});
}

} // namespace
} // namespace tdc
