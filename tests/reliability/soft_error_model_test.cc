#include <gtest/gtest.h>

#include "reliability/soft_error_model.hh"

namespace tdc
{
namespace
{

TEST(ReliabilityParams, Figure8bSetup)
{
    const ReliabilityParams p = ReliabilityParams::figure8b(0.00001);
    EXPECT_EQ(p.numCaches, 10u);
    EXPECT_DOUBLE_EQ(p.totalMbit(), 1280.0);
    // 1280 Mb * 1000 FIT/Mb = 1.28e6 FIT = 1.28e-3 errors/hour.
    EXPECT_NEAR(p.softErrorsPerHour(), 1.28e-3, 1e-9);
}

TEST(SoftErrorModel, FaultyWordFractionScalesWithHer)
{
    SoftErrorModel lo(ReliabilityParams::figure8b(0.000005));
    SoftErrorModel hi(ReliabilityParams::figure8b(0.00005));
    EXPECT_NEAR(lo.faultyWordFraction(), 72 * 0.000005, 1e-6);
    EXPECT_GT(hi.faultyWordFraction(), 9.0 * lo.faultyWordFraction());
}

TEST(SoftErrorModel, ExpectedSoftErrorsPerYear)
{
    SoftErrorModel m(ReliabilityParams::figure8b(0.00001));
    // 1.28e-3 per hour * 8760 hours = ~11.2 soft errors / year.
    EXPECT_NEAR(m.expectedSoftErrors(1.0), 11.2, 0.1);
    EXPECT_NEAR(m.expectedSoftErrors(5.0), 56.1, 0.3);
}

TEST(SoftErrorModel, SuccessDecaysWithTime)
{
    SoftErrorModel m(ReliabilityParams::figure8b(0.00005));
    double prev = 1.0;
    for (double years = 0; years <= 5.0; years += 1.0) {
        const double p = m.successProbability(years);
        EXPECT_LE(p, prev + 1e-12);
        EXPECT_GT(p, 0.0);
        prev = p;
    }
    EXPECT_DOUBLE_EQ(m.successProbability(0.0), 1.0);
}

TEST(SoftErrorModel, HigherHardErrorRateIsWorse)
{
    // Figure 8(b): the HER=0.005% curve decays fastest.
    SoftErrorModel her1(ReliabilityParams::figure8b(0.000005));
    SoftErrorModel her2(ReliabilityParams::figure8b(0.00001));
    SoftErrorModel her3(ReliabilityParams::figure8b(0.00005));
    const double y = 5.0;
    EXPECT_GT(her1.successProbability(y), her2.successProbability(y));
    EXPECT_GT(her2.successProbability(y), her3.successProbability(y));
    // The worst curve loses meaningful reliability within 5 years.
    EXPECT_LT(her3.successProbability(y), 0.95);
}

TEST(SoftErrorModel, TwoDimCodingStaysPerfect)
{
    SoftErrorModel m(ReliabilityParams::figure8b(0.00005));
    for (double years = 0; years <= 5.0; years += 0.5)
        EXPECT_DOUBLE_EQ(m.successProbabilityWith2D(years), 1.0);
    // And strictly beats the no-2D deployment at every horizon > 0.
    EXPECT_GT(m.successProbabilityWith2D(5.0),
              m.successProbability(5.0));
}

TEST(SoftErrorModel, MonteCarloMatchesClosedForm)
{
    SoftErrorModel m(ReliabilityParams::figure8b(0.0001));
    Rng rng(777);
    const double analytic = m.successProbability(3.0);
    const double mc = m.monteCarlo(3.0, 4000, rng);
    EXPECT_NEAR(mc, analytic, 0.03);
}

} // namespace
} // namespace tdc
