#include <gtest/gtest.h>

#include <unordered_set>

#include "reliability/scrub_model.hh"

namespace tdc
{
namespace
{

ScrubParams
baseParams(double interval_hours)
{
    ScrubParams p;
    p.words = 2 * 1024 * 1024;
    p.wordBits = 72;
    p.errorsPerHour = 1.28e-3;
    p.scrubIntervalHours = interval_hours;
    return p;
}

TEST(ScrubModel, PerReadCheckingHasNoVulnerabilityWindow)
{
    ScrubModel m(baseParams(0.0));
    EXPECT_DOUBLE_EQ(m.expectedUncorrectable(5 * 8760.0), 0.0);
    EXPECT_DOUBLE_EQ(m.survivalProbability(5 * 8760.0), 1.0);
}

TEST(ScrubModel, DoubleUpsetProbabilityIsSecondOrder)
{
    ScrubModel m(baseParams(24.0));
    const double p = m.doubleUpsetProbPerWordPerInterval();
    const double rt = m.params().perWordRate() * 24.0;
    EXPECT_GT(p, 0.0);
    EXPECT_NEAR(p, rt * rt / 2.0, rt * rt); // ~ (rT)^2/2
}

TEST(ScrubModel, LongerIntervalsAreStrictlyWorse)
{
    // The paper's Section 2.1 claim: scrubbing coverage degrades with
    // the interval; per-read checking is the limit case.
    double prev_survival = 1.0;
    for (double interval : {1.0, 24.0, 24.0 * 7, 24.0 * 30}) {
        ScrubModel m(baseParams(interval));
        const double s = m.survivalProbability(5 * 8760.0);
        EXPECT_LT(s, prev_survival) << interval;
        prev_survival = s;
    }
}

TEST(ScrubModel, ExpectedEventsLinearInInterval)
{
    // E[uncorrectable] = N * M * r^2 * T / 2 to first order: doubling
    // T doubles the expected events.
    ScrubModel day(baseParams(24.0));
    ScrubModel two_days(baseParams(48.0));
    const double mission = 8760.0;
    const double e1 = day.expectedUncorrectable(mission);
    const double e2 = two_days.expectedUncorrectable(mission);
    EXPECT_NEAR(e2 / e1, 2.0, 0.01);
}

TEST(ScrubModel, MonteCarloAgreesWithClosedForm)
{
    // Scale the rate up so double upsets are common enough to sample.
    ScrubParams p = baseParams(24.0);
    p.words = 4096;
    p.errorsPerHour = 2.0;
    ScrubModel m(p);
    Rng rng(123);
    const double mission = 24.0 * 30;
    const double analytic = m.survivalProbability(mission);
    const double mc = m.monteCarlo(mission, 500, rng);
    EXPECT_NEAR(mc, analytic, 0.07);
}

TEST(ScrubModel, MonteCarloCoversThePartialFinalWindow)
{
    // Regression: a mission that is not a whole number of scrub
    // intervals used to drop the residual window (uint64_t
    // truncation), biasing the simulated survival high. Half a window
    // of extra exposure is enough to show up against the closed form.
    ScrubParams p = baseParams(24.0);
    p.words = 4096;
    p.errorsPerHour = 2.0;
    ScrubModel m(p);
    Rng rng(123);
    const double mission = 24.0 * 30 + 12.0;
    const double analytic = m.survivalProbability(mission);
    const double mc = m.monteCarlo(mission, 500, rng);
    EXPECT_NEAR(mc, analytic, 0.07);
}

TEST(ScrubModel, SubIntervalMissionCanStillFail)
{
    // Regression: with mission < interval the truncated loop ran zero
    // windows and every trial "survived" regardless of the upset
    // rate. A mission half a window long at an extreme rate must lose
    // most trials.
    ScrubParams p = baseParams(24.0);
    p.words = 16;
    p.errorsPerHour = 0.5;
    ScrubModel m(p);
    Rng rng(7);
    const double mc = m.monteCarlo(12.0, 400, rng);
    EXPECT_LT(mc, 0.7);
    EXPECT_GT(mc, 0.0);
}

TEST(ScrubModel, ScratchRewriteMatchesHashSetOracle)
{
    // The reusable scratch vector must consume the RNG stream draw for
    // draw like the original per-interval unordered_set (insert, then
    // detect the duplicate): same seed, same survival estimate. The
    // oracle reimplements the original loop over whole windows only,
    // so use an exact-multiple mission where the partial-window branch
    // draws nothing.
    ScrubParams p = baseParams(24.0);
    p.words = 512;
    p.errorsPerHour = 1.0;
    ScrubModel m(p);
    const double mission = 24.0 * 20;
    const int trials = 300;

    Rng oracle_rng(2024);
    const double mean = p.errorsPerHour * p.scrubIntervalHours;
    const uint64_t intervals =
        uint64_t(mission / p.scrubIntervalHours);
    int survived = 0;
    for (int t = 0; t < trials; ++t) {
        bool ok = true;
        for (uint64_t i = 0; i < intervals && ok; ++i) {
            const uint64_t upsets = oracle_rng.nextPoisson(mean);
            std::unordered_set<uint64_t> hit;
            for (uint64_t u = 0; u < upsets; ++u) {
                const uint64_t word = oracle_rng.nextBelow(p.words);
                if (!hit.insert(word).second) {
                    ok = false;
                    break;
                }
            }
        }
        survived += ok;
    }

    Rng rng(2024);
    const double mc = m.monteCarlo(mission, trials, rng);
    EXPECT_DOUBLE_EQ(mc, double(survived) / double(trials));
}

} // namespace
} // namespace tdc
