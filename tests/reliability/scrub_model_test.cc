#include <gtest/gtest.h>

#include "reliability/scrub_model.hh"

namespace tdc
{
namespace
{

ScrubParams
baseParams(double interval_hours)
{
    ScrubParams p;
    p.words = 2 * 1024 * 1024;
    p.wordBits = 72;
    p.errorsPerHour = 1.28e-3;
    p.scrubIntervalHours = interval_hours;
    return p;
}

TEST(ScrubModel, PerReadCheckingHasNoVulnerabilityWindow)
{
    ScrubModel m(baseParams(0.0));
    EXPECT_DOUBLE_EQ(m.expectedUncorrectable(5 * 8760.0), 0.0);
    EXPECT_DOUBLE_EQ(m.survivalProbability(5 * 8760.0), 1.0);
}

TEST(ScrubModel, DoubleUpsetProbabilityIsSecondOrder)
{
    ScrubModel m(baseParams(24.0));
    const double p = m.doubleUpsetProbPerWordPerInterval();
    const double rt = m.params().perWordRate() * 24.0;
    EXPECT_GT(p, 0.0);
    EXPECT_NEAR(p, rt * rt / 2.0, rt * rt); // ~ (rT)^2/2
}

TEST(ScrubModel, LongerIntervalsAreStrictlyWorse)
{
    // The paper's Section 2.1 claim: scrubbing coverage degrades with
    // the interval; per-read checking is the limit case.
    double prev_survival = 1.0;
    for (double interval : {1.0, 24.0, 24.0 * 7, 24.0 * 30}) {
        ScrubModel m(baseParams(interval));
        const double s = m.survivalProbability(5 * 8760.0);
        EXPECT_LT(s, prev_survival) << interval;
        prev_survival = s;
    }
}

TEST(ScrubModel, ExpectedEventsLinearInInterval)
{
    // E[uncorrectable] = N * M * r^2 * T / 2 to first order: doubling
    // T doubles the expected events.
    ScrubModel day(baseParams(24.0));
    ScrubModel two_days(baseParams(48.0));
    const double mission = 8760.0;
    const double e1 = day.expectedUncorrectable(mission);
    const double e2 = two_days.expectedUncorrectable(mission);
    EXPECT_NEAR(e2 / e1, 2.0, 0.01);
}

TEST(ScrubModel, MonteCarloAgreesWithClosedForm)
{
    // Scale the rate up so double upsets are common enough to sample.
    ScrubParams p = baseParams(24.0);
    p.words = 4096;
    p.errorsPerHour = 2.0;
    ScrubModel m(p);
    Rng rng(123);
    const double mission = 24.0 * 30;
    const double analytic = m.survivalProbability(mission);
    const double mc = m.monteCarlo(mission, 500, rng);
    EXPECT_NEAR(mc, analytic, 0.07);
}

} // namespace
} // namespace tdc
