#include <gtest/gtest.h>

#include "workload/instruction_stream.hh"
#include "workload/workload_profile.hh"

namespace tdc
{
namespace
{

TEST(WorkloadProfile, SixStandardWorkloadsInFigureOrder)
{
    const auto &all = standardWorkloads();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name, "OLTP");
    EXPECT_EQ(all[1].name, "DSS");
    EXPECT_EQ(all[2].name, "Web");
    EXPECT_EQ(all[3].name, "Moldyn");
    EXPECT_EQ(all[4].name, "Ocean");
    EXPECT_EQ(all[5].name, "Sparse");
}

TEST(WorkloadProfile, CommercialVsScientificSplit)
{
    for (const auto &w : standardWorkloads()) {
        const bool is_sci = w.name == "Moldyn" || w.name == "Ocean" ||
                            w.name == "Sparse";
        EXPECT_EQ(w.scientific, is_sci) << w.name;
    }
}

TEST(WorkloadProfile, CommercialHasInstructionFootprint)
{
    // Commercial workloads miss the L1I visibly; scientific kernels
    // fit (the Read:Inst traffic split of Figure 6(c)/(d)).
    for (const auto &w : standardWorkloads()) {
        if (w.scientific)
            EXPECT_LT(w.l1iMissRate, 0.005) << w.name;
        else
            EXPECT_GT(w.l1iMissRate, 0.01) << w.name;
    }
}

TEST(WorkloadProfile, LookupByName)
{
    EXPECT_EQ(workloadByName("Ocean").name, "Ocean");
    EXPECT_DOUBLE_EQ(workloadByName("DSS").loadFrac, 0.30);
}

TEST(WorkloadProfile, ProbabilitiesAreSane)
{
    for (const auto &w : standardWorkloads()) {
        EXPECT_GT(w.loadFrac, 0.0);
        EXPECT_GT(w.storeFrac, 0.0);
        EXPECT_LT(w.loadFrac + w.storeFrac, 0.6) << w.name;
        EXPECT_GT(w.loadFrac, w.storeFrac) << w.name;
        EXPECT_GT(w.l1dMissRate, 0.0);
        EXPECT_LT(w.l1dMissRate, 0.2);
        EXPECT_GT(w.l2MissRate, 0.0);
        EXPECT_LT(w.l2MissRate, 0.8);
    }
}

TEST(InstructionStream, DeterministicPerSeed)
{
    const WorkloadProfile &w = workloadByName("OLTP");
    InstructionStream a(w, 7);
    InstructionStream b(w, 7);
    for (int i = 0; i < 1000; ++i) {
        const SyntheticInstr x = a.next();
        const SyntheticInstr y = b.next();
        ASSERT_EQ(x.kind, y.kind);
        ASSERT_EQ(x.l1dMiss, y.l1dMiss);
        ASSERT_EQ(x.bubbles, y.bubbles);
        ASSERT_EQ(x.bankHash, y.bankHash);
    }
}

TEST(InstructionStream, MixMatchesProfileFractions)
{
    const WorkloadProfile &w = workloadByName("DSS");
    InstructionStream s(w, 11);
    const int n = 200000;
    int loads = 0, stores = 0, l1d_misses = 0, data_ops = 0;
    for (int i = 0; i < n; ++i) {
        const SyntheticInstr instr = s.next();
        if (instr.kind == SyntheticInstr::Kind::kLoad)
            ++loads;
        if (instr.kind == SyntheticInstr::Kind::kStore)
            ++stores;
        if (instr.kind != SyntheticInstr::Kind::kNonMem) {
            ++data_ops;
            l1d_misses += instr.l1dMiss;
        }
    }
    // Bursts boost the memory mix above the base fractions, so allow
    // a one-sided margin.
    EXPECT_GT(double(loads) / n, w.loadFrac * 0.9);
    EXPECT_LT(double(loads) / n, w.loadFrac * 1.4);
    EXPECT_GT(double(stores) / n, w.storeFrac * 0.9);
    EXPECT_NEAR(double(l1d_misses) / data_ops, w.l1dMissRate,
                w.l1dMissRate * 0.2);
}

TEST(InstructionStream, BurstsOccurAndEnd)
{
    const WorkloadProfile &w = workloadByName("Web");
    InstructionStream s(w, 13);
    bool saw_burst = false, saw_calm_after_burst = false;
    for (int i = 0; i < 100000; ++i) {
        s.next();
        if (s.bursty())
            saw_burst = true;
        else if (saw_burst)
            saw_calm_after_burst = true;
    }
    EXPECT_TRUE(saw_burst);
    EXPECT_TRUE(saw_calm_after_burst);
}

TEST(InstructionStream, BubblesReflectIlpParameter)
{
    const WorkloadProfile &oltp = workloadByName("OLTP"); // low ILP
    const WorkloadProfile &mol = workloadByName("Moldyn"); // high ILP
    InstructionStream a(oltp, 17);
    InstructionStream b(mol, 17);
    uint64_t bub_a = 0, bub_b = 0;
    for (int i = 0; i < 100000; ++i) {
        bub_a += a.next().bubbles;
        bub_b += b.next().bubbles;
    }
    EXPECT_GT(bub_a, bub_b);
}

TEST(InstructionStream, MissFlagsOnlyOnDataOps)
{
    const WorkloadProfile &w = workloadByName("Sparse");
    InstructionStream s(w, 19);
    for (int i = 0; i < 10000; ++i) {
        const SyntheticInstr instr = s.next();
        if (instr.kind == SyntheticInstr::Kind::kNonMem) {
            EXPECT_FALSE(instr.l1dMiss);
            EXPECT_FALSE(instr.l2Miss);
        }
        if (!instr.l1dMiss) {
            EXPECT_FALSE(instr.l2Miss);
            EXPECT_FALSE(instr.dirtyEvict);
        }
    }
}

} // namespace
} // namespace tdc
