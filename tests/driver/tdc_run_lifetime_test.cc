/**
 * @file
 * The tdc_run lifetime surface:
 *  - "--figure lifetime" emits exactly the scrub and spare campaign
 *    tables the builders produce;
 *  - a custom "--lifetime" grid matches customLifetimeCampaign with
 *    the same axes, is bit-identical at TDC_THREADS {1, 8}, and
 *    replays identically warm from the result cache;
 *  - malformed --fit-mix specs and misused flags exit 2 with the
 *    offending token quoted, never a table.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.hh"
#include "driver/tdc_run.hh"
#include "reliability/result_cache.hh"
#include "scheme/figure_campaigns.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

std::string
runOk(const std::vector<std::string> &args)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_TRUE(err.empty()) << err;
    return out;
}

/** Run expecting a usage failure; returns stderr. */
std::string
runUsageError(const std::vector<std::string> &args)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    EXPECT_EQ(code, 2) << out;
    EXPECT_FALSE(err.empty());
    return err;
}

TEST(TdcRunLifetime, FigureMatchesCampaignBuilders)
{
    const std::string out = runOk({"--figure", "lifetime"});
    EXPECT_NE(out.find(lifetimeScrubCampaign().render()),
              std::string::npos);
    EXPECT_NE(out.find(lifetimeSpareCampaign().render()),
              std::string::npos);
}

TEST(TdcRunLifetime, CustomGridMatchesTheCampaignBuilder)
{
    const std::string out = runOk(
        {"--lifetime", "--scheme", "conv:secded/i4/r64", "--fit-mix",
         "single*50000", "--scrub-interval", "24", "--spares", "2",
         "--mission", "10000", "--trials", "16", "--seed", "31"});
    EXPECT_NE(out.find(customLifetimeCampaign({"conv:secded/i4/r64"},
                                              {"single*50000"}, {24.0},
                                              {2}, 10000.0, 16, 31)
                           .render()),
              std::string::npos);
}

TEST(TdcRunLifetime, GridIsThreadCountInvariant)
{
    ThreadGuard guard;
    const std::vector<std::string> args = {
        "--lifetime",        "--scheme", "2d:edc8/i4+vp32/r64",
        "--fit-mix",         "jaguar*10000", "--scrub-interval",
        "168",               "--mission", "20000",
        "--trials",          "12",        "--seed", "77"};
    resultCache().clearMemory();
    setParallelThreads(1);
    const std::string one = runOk(args);
    resultCache().clearMemory();
    setParallelThreads(8);
    const std::string eight = runOk(args);
    EXPECT_EQ(one, eight);
}

TEST(TdcRunLifetime, WarmCacheReplaysExactly)
{
    const std::vector<std::string> args = {
        "--lifetime", "--scheme", "prod:64x64",  "--fit-mix",
        "permanent*20000", "--scrub-interval", "168", "--mission",
        "20000",      "--trials", "10",          "--seed", "9"};
    resultCache().clearMemory();
    const std::string cold = runOk(args);
    const std::string warm = runOk(args);
    EXPECT_EQ(cold, warm);
    resultCache().clearMemory();
}

TEST(TdcRunLifetime, MalformedFitMixExitsTwo)
{
    const std::string err = runUsageError(
        {"--lifetime", "--scheme", "conv:secded/i4/r64", "--fit-mix",
         "bogus"});
    EXPECT_NE(err.find("\"bogus\""), std::string::npos) << err;
    EXPECT_NE(runUsageError({"--lifetime", "--fit-mix", "jaguar*0"})
                  .find("jaguar*0"),
              std::string::npos);
}

TEST(TdcRunLifetime, MisusedFlagsExitTwo)
{
    // --fault is an injection-grid axis; lifetime rows come from
    // --fit-mix.
    EXPECT_NE(runUsageError({"--lifetime", "--fault", "32x32"})
                  .find("--fit-mix"),
              std::string::npos);
    // --fit-mix / --spares only mean something under --lifetime.
    EXPECT_NE(runUsageError({"--scheme", "conv:secded/i4", "--fit-mix",
                             "jaguar"})
                  .find("--lifetime"),
              std::string::npos);
    EXPECT_NE(runUsageError({"--scheme", "conv:secded/i4", "--spares",
                             "2"})
                  .find("--lifetime"),
              std::string::npos);
    // Serve keeps its tick semantics and rejects a second interval.
    EXPECT_NE(runUsageError({"--serve", "uniform/n100/w30",
                             "--scrub-interval", "64",
                             "--scrub-interval", "128"})
                  .find("at most one"),
              std::string::npos);
    // Malformed hours.
    EXPECT_NE(runUsageError({"--lifetime", "--scrub-interval", "-5"})
                  .find("-5"),
              std::string::npos);
}

} // namespace
} // namespace tdc
