/**
 * @file
 * The --figure chipkill driver path and the dram: spec surface:
 *  - the figure renders both tables, byte-identical across
 *    --threads {1,8} and cold/warm cache;
 *  - custom grids accept dram: schemes and the device-derived fault
 *    shapes, with the same determinism;
 *  - --list-schemes / --list-faults advertise the new grammar;
 *  - malformed dram:/fault tokens exit 2 quoting the token;
 *  - --optimize expands dram: patterns and the emitted CSV satisfies
 *    the Pareto property recomputed from its own numbers.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.hh"
#include "driver/tdc_run.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

std::string
runOk(const std::vector<std::string> &args)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_TRUE(err.empty()) << err;
    return out;
}

/** EXPECT exit 2 with @p token quoted on stderr and no stdout. */
void
expectUsageError(const std::vector<std::string> &args,
                 const std::string &token)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    EXPECT_EQ(code, 2) << "args should have failed";
    EXPECT_TRUE(out.empty());
    EXPECT_NE(err.find(token), std::string::npos)
        << "stderr \"" << err << "\" does not quote \"" << token << "\"";
}

TEST(TdcRunChipkill, FigureRendersBothTables)
{
    const std::string out = runOk({"--figure", "chipkill"});
    EXPECT_NE(out.find("Chipkill/DDC vs 2D coding"), std::string::npos);
    EXPECT_NE(out.find("Storage overhead"), std::string::npos);
    EXPECT_NE(out.find("Guaranteed coverage"), std::string::npos);
    // All five contenders appear.
    EXPECT_NE(out.find("SECDED+Intv4"), std::string::npos);
    EXPECT_NE(out.find("2D(EDC8+Intv4,EDC32)"), std::string::npos);
    EXPECT_NE(out.find("HVProd(64x64)"), std::string::npos);
    EXPECT_NE(out.find("Chipkill(x4,RS15/12)"), std::string::npos);
    EXPECT_NE(out.find("IECC+Chipkill(x8,RS11/8)"), std::string::npos);
    // The injection grid exercises the device-derived shapes.
    EXPECT_NE(out.find("chip:any"), std::string::npos);
    EXPECT_NE(out.find("hammer:3@0.5"), std::string::npos);
    EXPECT_NE(out.find("senseamp:16"), std::string::npos);
}

TEST(TdcRunChipkill, FigureIsListedInTheRegistry)
{
    const std::string out = runOk({"--list-figures"});
    EXPECT_NE(out.find("chipkill"), std::string::npos);
}

TEST(TdcRunChipkill, FigureDeterministicAcrossThreadsAndCache)
{
    ThreadGuard guard;
    const std::string t1 =
        runOk({"--figure", "chipkill", "--threads", "1"});
    const std::string t8 =
        runOk({"--figure", "chipkill", "--threads", "8"});
    const std::string warm =
        runOk({"--figure", "chipkill", "--threads", "1"});
    EXPECT_EQ(t1, t8);
    EXPECT_EQ(t1, warm);
}

TEST(TdcRunChipkill, CustomGridAcceptsDramSchemesAndFaults)
{
    ThreadGuard guard;
    const std::vector<std::string> base = {
        "--scheme", "dram:chipkill/x4",
        "--scheme", "dram:iecc+chipkill/x8",
        "--fault", "chip:any",
        "--fault", "hammer:2@0.5",
        "--fault", "senseamp:8",
        "--trials", "10", "--seed", "11"};
    std::vector<std::string> t1 = base;
    t1.insert(t1.end(), {"--threads", "1"});
    std::vector<std::string> t8 = base;
    t8.insert(t8.end(), {"--threads", "8"});
    const std::string a = runOk(t1);
    const std::string b = runOk(t8);
    const std::string warm = runOk(t1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, warm);
    EXPECT_NE(a.find("Chipkill(x4,RS15/12)"), std::string::npos);
    EXPECT_NE(a.find("chip kill"), std::string::npos); // describe() label
}

TEST(TdcRunChipkill, ListSchemesAdvertisesTheDramFamily)
{
    const std::string out = runOk({"--list-schemes"});
    EXPECT_NE(out.find("dram:{chipkill|iecc+chipkill}/x{4|8}"),
              std::string::npos);
    EXPECT_NE(out.find("dram:chipkill/x4"), std::string::npos);
    EXPECT_NE(out.find("dram:iecc+chipkill/x8"), std::string::npos);
}

TEST(TdcRunChipkill, ListFaultsAdvertisesTheDeviceShapes)
{
    const std::string out = runOk({"--list-faults"});
    EXPECT_NE(out.find("chip:<I>"), std::string::npos);
    EXPECT_NE(out.find("chip:any"), std::string::npos);
    EXPECT_NE(out.find("hammer:<W>[@D]"), std::string::npos);
    EXPECT_NE(out.find("senseamp:<H>"), std::string::npos);
}

TEST(TdcRunChipkill, MalformedTokensExitTwoQuotingThem)
{
    expectUsageError({"--scheme", "dram:chipkill/x9", "--fault", "single"},
                     "x9");
    expectUsageError({"--scheme", "dram:secded/x4", "--fault", "single"},
                     "secded");
    expectUsageError({"--scheme", "dram:chipkill", "--fault", "single"},
                     "width");
    expectUsageError(
        {"--scheme", "dram:chipkill/x4", "--fault", "chip:70000"},
        "chip:70000");
    expectUsageError(
        {"--scheme", "dram:chipkill/x4", "--fault", "hammer:4@0"},
        "hammer:4@0");
    expectUsageError(
        {"--scheme", "dram:chipkill/x4", "--fault", "senseamp:0"},
        "senseamp:0");
    // No VLSI cost model: the area objective names the scheme.
    expectUsageError({"--optimize", "dram:chipkill/x4", "--objective",
                      "area"},
                     "dram:chipkill/x4");
}

TEST(TdcRunChipkill, OptimizePatternGrammarCoversDram)
{
    // Satellite: the {a,b} pattern grammar expands dram variants and
    // widths; the frontier property is re-verified from the emitted
    // CSV alone (the optimizer must not claim a dominated point).
    const std::string csv = runOk(
        {"--optimize", "dram:{chipkill,iecc+chipkill}/x{4,8}", "--fault",
         "chip:any", "--fault", "8x8", "--trials", "5", "--seed", "5",
         "--format", "csv"});

    struct Point
    {
        double coverage = 0.0, overhead = 0.0;
        bool frontier = false;
        size_t dominatedBy = 0;
    };
    std::vector<Point> points;
    const size_t block = csv.find("# Evaluated design points");
    ASSERT_NE(block, std::string::npos) << csv;
    size_t pos = csv.find('\n', block);
    pos = csv.find('\n', pos + 1) + 1; // skip the header row
    while (pos < csv.size() && csv[pos] != '\n' && csv[pos] != '#') {
        const size_t eol = csv.find('\n', pos);
        const std::string line = csv.substr(pos, eol - pos);
        std::vector<std::string> cells;
        size_t start = 0;
        while (true) {
            const size_t comma = line.find(',', start);
            cells.push_back(line.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        ASSERT_EQ(cells.size(), 5u) << line;
        points.push_back({std::stod(cells[1]), std::stod(cells[2]),
                          cells[3] == "yes",
                          size_t(std::stoul(cells[4]))});
        pos = eol + 1;
    }
    ASSERT_EQ(points.size(), 4u); // 2 variants x 2 widths

    for (const Point &p : points) {
        size_t dominated_by = 0;
        for (const Point &q : points) {
            const bool dominates =
                q.coverage >= p.coverage && q.overhead <= p.overhead &&
                (q.coverage > p.coverage || q.overhead < p.overhead);
            dominated_by += dominates ? 1 : 0;
            if (p.frontier) {
                EXPECT_FALSE(dominates);
            }
        }
        EXPECT_EQ(dominated_by, p.dominatedBy);
        EXPECT_EQ(p.frontier, dominated_by == 0);
    }
}

} // namespace
} // namespace tdc
