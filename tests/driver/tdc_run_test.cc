/**
 * @file
 * The tdc_run driver contract:
 *  - "--figure fig1/fig2/fig7" emits the very tables the
 *    CampaignGoldenPins suite pins (driver output == campaign-builder
 *    output, so the CLI can never drift from the pinned figures);
 *  - a CLI-launched custom scheme x fault grid is bit-identical at
 *    TDC_THREADS=1 and 8;
 *  - csv/json formats carry the same cells as the table format;
 *  - usage errors (unknown flags/figures, malformed specs) fail with
 *    exit code 2 and a quoted offending token, never a table.
 */

#include <gtest/gtest.h>

#include "common/cpu_features.hh"
#include "common/parallel.hh"
#include "driver/tdc_run.hh"
#include "scheme/figure_campaigns.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

/** Run the driver, asserting success, and return its stdout. */
std::string
runOk(const std::vector<std::string> &args)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_TRUE(err.empty()) << err;
    return out;
}

TEST(TdcRun, Figure1MatchesCampaignBuilders)
{
    const std::string out = runOk({"--figure", "fig1"});
    EXPECT_NE(out.find(figure1StorageCampaign().render()),
              std::string::npos);
    EXPECT_NE(out.find(figure1EnergyCampaign().render()),
              std::string::npos);
}

TEST(TdcRun, Figure2MatchesCampaignBuilders)
{
    const std::string out = runOk({"--figure", "fig2"});
    EXPECT_NE(
        out.find(figure2EnergyCampaign(
                     "--- Figure 2(b): 64kB cache, (72,64) SECDED words "
                     "---",
                     64 * 1024, 64, 1)
                     .render()),
        std::string::npos);
    EXPECT_NE(
        out.find(figure2EnergyCampaign(
                     "--- Figure 2(c): 4MB cache, (266,256) SECDED words, "
                     "8 banks ---",
                     4 * 1024 * 1024, 256, 8)
                     .render()),
        std::string::npos);
}

TEST(TdcRun, Figure7MatchesCampaignBuilders)
{
    const std::string out = runOk({"--figure", "fig7"});
    EXPECT_NE(
        out.find(figure7Campaign(
                     "--- Figure 7(a): 64kB L1 data cache (normalized to "
                     "SECDED+Intv2 = 100%) ---",
                     CacheGeometry::l1(),
                     {"2d:edc8/i4+vp32", "conv:dected/i16",
                      "conv:qecped/i8", "conv:oecned/i4", "wt:edc8/i4"})
                     .render()),
        std::string::npos);
    EXPECT_NE(
        out.find(figure7Campaign(
                     "--- Figure 7(b): 4MB L2 cache (normalized to "
                     "SECDED+Intv2 = 100%) ---",
                     CacheGeometry::l2(),
                     {"2d:edc16/i2+vp32/w256", "conv:dected/i16",
                      "conv:qecped/i8", "conv:oecned/i4"})
                     .render()),
        std::string::npos);
}

TEST(TdcRun, SeedKeepsFullUint64Precision)
{
    ThreadGuard guard;
    setParallelThreads(1);
    // 2^53+1 is not representable as a double: a seed routed through
    // strtod would collapse onto 2^53. The campaign title embeds the
    // parsed seed verbatim, so it pins the full-precision path.
    std::string out53p1, err;
    ASSERT_EQ(tdcRun({"--scheme", "conv:secded/i4/r16", "--fault", "4x4",
                      "--events", "3", "--seed", "9007199254740993"},
                     out53p1, err),
              0);
    EXPECT_NE(out53p1.find("seed 9007199254740993"), std::string::npos);
    // Seed 0 is legitimate.
    std::string out0;
    EXPECT_EQ(tdcRun({"--scheme", "conv:secded/i4/r16", "--fault", "4x4",
                      "--events", "1", "--seed", "0"},
                     out0, err),
              0);
}

TEST(TdcRun, CustomGridIdenticalAtOneAndEightThreads)
{
    ThreadGuard guard;
    const std::vector<std::string> args = {
        "--scheme", "2d:edc8/i4+vp32", "--scheme", "conv:secded/i4/r64",
        "--fault",  "8x8",             "--fault",  "row:16",
        "--events", "4",               "--seed",   "99",
    };
    setParallelThreads(1);
    const std::string serial = runOk(args);
    setParallelThreads(8);
    EXPECT_EQ(runOk(args), serial);
    EXPECT_NE(serial.find("2D(EDC8+Intv4,EDC32)"), std::string::npos);
    // --threads is an alternative spelling of the same pool override.
    setParallelThreads(1);
    std::vector<std::string> threaded = args;
    threaded.push_back("--threads");
    threaded.push_back("8");
    EXPECT_EQ(runOk(threaded), serial);
}

TEST(TdcRun, CustomIpcGridRunsWorkloadSubset)
{
    ThreadGuard guard;
    setParallelThreads(2);
    const std::string out =
        runOk({"--machine", "lean", "--protection", "l1+steal",
               "--protection", "wt", "--workload", "OLTP", "--cycles",
               "20000"});
    EXPECT_NE(out.find("IPC loss: lean CMP"), std::string::npos);
    EXPECT_NE(out.find("OLTP"), std::string::npos);
    EXPECT_NE(out.find("L1+steal"), std::string::npos);
    EXPECT_NE(out.find("WT-L1 + 2D-L2"), std::string::npos);
    // Only the requested workload appears.
    EXPECT_EQ(out.find("Ocean"), std::string::npos);
}

TEST(TdcRun, CsvAndJsonCarryTheTableCells)
{
    const std::string csv =
        runOk({"--figure", "fig1", "--format", "csv"});
    EXPECT_NE(csv.find("Code,HD,64b word,256b word"), std::string::npos);
    EXPECT_NE(csv.find("OECNED,18,89.1%,28.5%"), std::string::npos);

    const std::string json =
        runOk({"--figure", "fig1", "--format", "json"});
    EXPECT_NE(json.find("\"tables\""), std::string::npos);
    EXPECT_NE(json.find("\"headers\": [\"Code\", \"HD\", \"64b word\", "
                        "\"256b word\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"OECNED\", \"18\", \"89.1%\", \"28.5%\""),
              std::string::npos);
}

TEST(TdcRun, ListFlagsEnumerateRegistries)
{
    const std::string figures = runOk({"--list-figures"});
    for (const FigureDef &figure : figureList())
        EXPECT_NE(figures.find(figure.key), std::string::npos);

    const std::string schemes = runOk({"--list-schemes"});
    EXPECT_NE(schemes.find("conv:"), std::string::npos);
    EXPECT_NE(schemes.find("2d:"), std::string::npos);
    EXPECT_NE(schemes.find("prod:"), std::string::npos);
    EXPECT_NE(schemes.find("SECDED"), std::string::npos);

    const std::string faults = runOk({"--list-faults"});
    EXPECT_NE(faults.find("fullrow"), std::string::npos);
}

TEST(TdcRun, UsageErrorsExitTwoWithQuotedToken)
{
    const auto expectUsageError = [](const std::vector<std::string> &args,
                                     const std::string &needle) {
        std::string out, err;
        EXPECT_EQ(tdcRun(args, out, err), 2);
        EXPECT_NE(err.find(needle), std::string::npos) << err;
        EXPECT_EQ(out.find("---"), std::string::npos);
    };
    expectUsageError({"--bogus"}, "\"--bogus\"");
    expectUsageError({"--figure", "fig99"}, "\"fig99\"");
    expectUsageError({"--scheme", "conv:edc9/i4"}, "\"edc9\"");
    expectUsageError({"--scheme", "conv:secded/i4", "--fault", "blob"},
                     "\"blob\"");
    expectUsageError({"--fault", "8x8"}, "--scheme");
    expectUsageError({"--workload", "OLTP"}, "--protection");
    expectUsageError({"--machine", "huge"}, "\"huge\"");
    expectUsageError({"--format", "xml"}, "\"xml\"");
    expectUsageError({"--events", "0", "--figure", "fig1"}, "--events");
    expectUsageError({"--seed", "12x", "--figure", "fig1"}, "\"12x\"");
    expectUsageError({"--protection", "l3"}, "\"l3\"");
    expectUsageError({"--protection", "l1", "--workload", "NoSuch"},
                     "\"NoSuch\"");
    expectUsageError({}, "usage");
}

TEST(TdcRun, ServeEmitsLatencyAndReliabilityTables)
{
    const std::string out = runOk({"--serve", "uniform/n4000/w30",
                                   "--scrub-interval", "17",
                                   "--fault-interval", "501"});
    EXPECT_NE(out.find("serve uniform/n4000/w30"), std::string::npos);
    EXPECT_NE(out.find("RBW stolen"), std::string::npos);
    EXPECT_NE(out.find("p999"), std::string::npos);
    EXPECT_NE(out.find("ScrubSteps"), std::string::npos);
    EXPECT_NE(out.find("all"), std::string::npos);
}

TEST(TdcRun, ServeIsThreadCountInvariant)
{
    ThreadGuard guard;
    const std::vector<std::string> args = {
        "--serve", "zipf90/n6000/w40", "--scrub-interval", "13",
        "--fault-interval", "301", "--format", "json"};
    std::vector<std::string> one = args, eight = args;
    one.insert(one.end(), {"--threads", "1"});
    eight.insert(eight.end(), {"--threads", "8"});
    EXPECT_EQ(runOk(one), runOk(eight));
}

TEST(TdcRun, ServeRecordsAReplayableTrace)
{
    const std::string path =
        testing::TempDir() + "tdc_run_serve_trace.bin";
    const std::string recorded =
        runOk({"--serve", "burst32/n3000/w50", "--record-trace", path,
               "--format", "csv"});
    const std::string replayed =
        runOk({"--serve", "trace:" + path, "--format", "csv"});
    // Identical data rows; only the spec named in the titles differs.
    const auto stripTitles = [](const std::string &text) {
        std::string kept;
        size_t start = 0;
        while (start < text.size()) {
            size_t end = text.find('\n', start);
            if (end == std::string::npos)
                end = text.size();
            if (text[start] != '#')
                kept += text.substr(start, end - start) + "\n";
            start = end + 1;
        }
        return kept;
    };
    EXPECT_EQ(stripTitles(recorded), stripTitles(replayed));
    std::remove(path.c_str());
}

TEST(TdcRun, ServeUsageErrorsExitTwoWithQuotedToken)
{
    const auto expectUsageError = [](const std::vector<std::string> &args,
                                     const std::string &needle) {
        std::string out, err;
        EXPECT_EQ(tdcRun(args, out, err), 2);
        EXPECT_NE(err.find(needle), std::string::npos) << err;
        EXPECT_TRUE(out.empty()) << out;
    };
    expectUsageError({"--serve", "gauss/n100"}, "\"gauss\"");
    expectUsageError({"--serve", "uniform/n0"}, "\"n0\"");
    expectUsageError({"--serve", "uniform/q4"}, "\"q4\"");
    expectUsageError({"--serve", "trace:"}, "trace:");
    expectUsageError({"--serve", "uniform", "--scheme", "conv:secded/i4"},
                     "2d");
    expectUsageError({"--serve", "uniform", "--scheme", "2d:edc8/i0+vp32"},
                     "\"i0\"");
    expectUsageError({"--serve", "uniform", "--fault", "0x4"}, "\"0x4\"");
    expectUsageError({"--serve", "uniform", "--figure", "fig1"},
                     "--serve");
    expectUsageError({"--serve", "uniform", "--protection", "l1"},
                     "--serve");
    expectUsageError({"--serve", "uniform", "--scheme", "2d:edc8/i4+vp32",
                      "--scheme", "2d:edc8/i2+vp32"},
                     "at most one");
    expectUsageError({"--serve", "uniform", "--shards", "0"}, "--shards");
    expectUsageError({"--serve", "uniform", "--scrub-interval", "x"},
                     "--scrub-interval");
}

TEST(TdcRun, ServeMissingTraceFileExitsOne)
{
    std::string out, err;
    EXPECT_EQ(tdcRun({"--serve", "trace:/no/such/trace.bin"}, out, err),
              1);
    EXPECT_NE(err.find("/no/such/trace.bin"), std::string::npos) << err;
}

TEST(TdcRun, CpuFlagReportsFeaturesAndBackendAndExitsZero)
{
    const std::string out = runOk({"--cpu"});
    EXPECT_NE(out.find("bmi2"), std::string::npos);
    EXPECT_NE(out.find("avx2"), std::string::npos);
    EXPECT_NE(out.find("best supported"), std::string::npos);
    EXPECT_NE(out.find("active"), std::string::npos);
    // The active row always names a valid backend.
    EXPECT_NE(out.find(simdBackendName(activeSimdBackend())),
              std::string::npos);

    // json carries the same report as structured tables.
    const std::string json = runOk({"--cpu", "--format", "json"});
    EXPECT_NE(json.find("\"cpu features\""), std::string::npos);
    EXPECT_NE(json.find("\"simd codec backend\""), std::string::npos);

    // The usage text advertises the flag; unknown flags still exit 2.
    EXPECT_NE(runOk({"--help"}).find("--cpu"), std::string::npos);
    std::string o, e;
    EXPECT_EQ(tdcRun({"--cpus"}, o, e), 2);
    EXPECT_NE(e.find("\"--cpus\""), std::string::npos);
}

TEST(TdcRun, CampaignOutputIsBackendInvariant)
{
    // The same injection grid must emit identical bytes on the scalar
    // tier and on the dispatched tier, at one worker thread and at
    // eight — the no-output-drift guarantee TDC_SIMD is allowed to
    // rely on.
    ThreadGuard guard;
    const std::vector<std::string> args = {
        "--scheme", "2d:edc8/i4+vp32", "--scheme", "conv:qecped/i2/r64",
        "--fault",  "8x8",             "--fault",  "col:6",
        "--events", "4",               "--seed",   "77",
    };
    std::string ref;
    {
        ScopedSimdBackend scalar(SimdBackend::kScalar);
        setParallelThreads(1);
        ref = runOk(args);
    }
    for (SimdBackend b : {SimdBackend::kBmi2, SimdBackend::kAvx2}) {
        if (b > bestSimdBackend())
            continue;
        ScopedSimdBackend backend(b);
        for (unsigned threads : {1u, 8u}) {
            setParallelThreads(threads);
            EXPECT_EQ(runOk(args), ref)
                << simdBackendName(b) << " threads=" << threads;
        }
    }
}

TEST(TdcRun, ServeOutputIsBackendInvariant)
{
    ThreadGuard guard;
    const std::vector<std::string> args = {
        "--serve", "zipf90/n5000/w40", "--scrub-interval", "13",
        "--fault-interval", "301", "--format", "json"};
    std::string ref;
    {
        ScopedSimdBackend scalar(SimdBackend::kScalar);
        setParallelThreads(1);
        ref = runOk(args);
    }
    for (SimdBackend b : {SimdBackend::kBmi2, SimdBackend::kAvx2}) {
        if (b > bestSimdBackend())
            continue;
        ScopedSimdBackend backend(b);
        for (unsigned threads : {1u, 8u}) {
            setParallelThreads(threads);
            EXPECT_EQ(runOk(args), ref)
                << simdBackendName(b) << " threads=" << threads;
        }
    }
}

} // namespace
} // namespace tdc
