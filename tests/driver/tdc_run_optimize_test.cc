/**
 * @file
 * The --optimize autotuner contract:
 *  - the Pareto property: NO emitted frontier point is dominated by
 *    ANY evaluated point, and every non-frontier point is dominated by
 *    at least one (checked on a >= 100-spec grid from the emitted
 *    evaluated-points table alone);
 *  - frontier and evaluated tables agree with evaluateDesignSpace();
 *  - runs are deterministic and cache-accelerated;
 *  - malformed patterns / objectives exit 2 quoting the token.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.hh"
#include "driver/optimize.hh"
#include "driver/tdc_run.hh"
#include "scheme/spec_gen.hh"

namespace tdc
{
namespace
{

/** The >= 100-point design grid the property test sweeps. */
const std::vector<std::string> kGridPatterns = {
    "2d:edc{8,16,32}/i{1,2,4,8,16}+vp{16,32,64}",
    "conv:{parity,edc8,edc16,edc32,secded,dected,qecped,oecned}"
    "/i{1,2,4,8,16}",
    "wt:edc{8,16,32}/i{1,2,4,8,16}",
    "prod:{64,128,256}x{64,128,256}",
};

std::string
runOk(const std::vector<std::string> &args)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_TRUE(err.empty()) << err;
    return out;
}

/** Split one csv line (the emitted cells never contain commas). */
std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> cells;
    size_t start = 0;
    while (true) {
        const size_t comma = line.find(',', start);
        cells.push_back(line.substr(
            start,
            comma == std::string::npos ? std::string::npos
                                       : comma - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return cells;
}

struct CsvPoint
{
    std::string spec;
    double coverage;
    double overhead;
    bool frontier;
    size_t dominatedBy;
};

/** Parse the "Evaluated design points" block out of csv output. */
std::vector<CsvPoint>
parseEvaluated(const std::string &csv)
{
    std::vector<CsvPoint> points;
    const size_t block = csv.find("# Evaluated design points");
    EXPECT_NE(block, std::string::npos) << csv;
    size_t pos = csv.find('\n', block);
    pos = csv.find('\n', pos + 1) + 1; // skip the header row
    while (pos < csv.size() && csv[pos] != '\n' && csv[pos] != '#') {
        const size_t eol = csv.find('\n', pos);
        const std::vector<std::string> cells =
            splitCsv(csv.substr(pos, eol - pos));
        if (cells.size() != 5)
            break;
        points.push_back({cells[0], std::stod(cells[1]),
                          std::stod(cells[2]), cells[3] == "yes",
                          size_t(std::stoul(cells[4]))});
        pos = eol + 1;
    }
    return points;
}

std::vector<std::string>
gridArgs(const std::string &format)
{
    std::vector<std::string> args;
    for (const std::string &p : kGridPatterns) {
        args.push_back("--optimize");
        args.push_back(p);
    }
    args.insert(args.end(),
                {"--fault", "single", "--fault", "32x32", "--trials", "5",
                 "--seed", "99", "--format", format});
    return args;
}

TEST(TdcRunOptimize, FrontierPropertyOnLargeGrid)
{
    ASSERT_GE(expandSpecPatterns(kGridPatterns).size(), 100u);

    const std::string csv = runOk(gridArgs("csv"));
    const std::vector<CsvPoint> points = parseEvaluated(csv);
    ASSERT_GE(points.size(), 100u);

    // Recompute dominance from the emitted numbers alone: a frontier
    // point must not be dominated by ANY evaluated point, and every
    // dominated-by count must match.
    for (const CsvPoint &p : points) {
        size_t dominated_by = 0;
        for (const CsvPoint &q : points) {
            const bool dominates =
                q.coverage >= p.coverage && q.overhead <= p.overhead &&
                (q.coverage > p.coverage || q.overhead < p.overhead);
            dominated_by += dominates ? 1 : 0;
            if (p.frontier) {
                EXPECT_FALSE(dominates)
                    << p.spec << " is on the frontier but dominated by "
                    << q.spec;
            }
        }
        EXPECT_EQ(dominated_by, p.dominatedBy) << p.spec;
        EXPECT_EQ(p.frontier, dominated_by == 0) << p.spec;
    }

    // The frontier table lists exactly the non-dominated points (same
    // run, so the expensive grid is evaluated once).
    const size_t block = csv.find("# Pareto frontier");
    ASSERT_NE(block, std::string::npos);
    size_t pos = csv.find('\n', block);
    pos = csv.find('\n', pos + 1) + 1;
    size_t frontier_rows = 0;
    while (pos < csv.size() && csv[pos] != '\n' && csv[pos] != '#') {
        ++frontier_rows;
        pos = csv.find('\n', pos) + 1;
    }
    size_t expected = 0;
    for (const CsvPoint &p : points)
        expected += p.frontier ? 1 : 0;
    EXPECT_EQ(frontier_rows, expected);
    EXPECT_GT(expected, 0u);
    EXPECT_LT(expected, points.size());
}

TEST(TdcRunOptimize, MatchesEvaluateDesignSpace)
{
    OptimizeRequest req;
    req.patterns = {"2d:edc{8,16}/i{2,4}+vp32"};
    req.faults = {"single", "32x32"};
    req.trials = 5;
    req.seed = 99;
    const std::vector<DesignPoint> direct = evaluateDesignSpace(req);
    ASSERT_EQ(direct.size(), 4u);

    const std::string csv = runOk(
        {"--optimize", "2d:edc{8,16}/i{2,4}+vp32", "--fault", "single",
         "--fault", "32x32", "--trials", "5", "--seed", "99", "--format",
         "csv"});
    const std::vector<CsvPoint> emitted = parseEvaluated(csv);
    ASSERT_EQ(emitted.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(emitted[i].spec, direct[i].spec);
        EXPECT_NEAR(emitted[i].coverage, direct[i].coverage, 1e-6);
        EXPECT_NEAR(emitted[i].overhead, direct[i].overhead, 1e-6);
        EXPECT_EQ(emitted[i].dominatedBy, direct[i].dominatedBy);
    }
}

TEST(TdcRunOptimize, DeterministicAcrossRepeatsAndThreads)
{
    struct ThreadGuard
    {
        ~ThreadGuard() { setParallelThreads(0); }
    } guard;

    const std::vector<std::string> base = {
        "--optimize", "2d:edc8/i{2,4}+vp{16,32}", "--trials", "10",
        "--seed", "7"};
    std::vector<std::string> t1 = base;
    t1.insert(t1.end(), {"--threads", "1"});
    std::vector<std::string> t8 = base;
    t8.insert(t8.end(), {"--threads", "8"});
    const std::string a = runOk(t1);
    const std::string b = runOk(t8);
    const std::string c = runOk(t1); // warm: served from the cache
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
}

TEST(TdcRunOptimize, ObjectiveAxisChangesOverheadColumn)
{
    const std::vector<std::string> base = {
        "--optimize", "2d:edc8/i{2,4}+vp32", "--trials", "5", "--format",
        "csv"};
    std::vector<std::string> area = base;
    area.insert(area.end(), {"--objective", "area"});
    const std::string storage_csv = runOk(base);
    const std::string area_csv = runOk(area);
    EXPECT_NE(storage_csv.find("Overhead (storage)"), std::string::npos);
    EXPECT_NE(area_csv.find("Overhead (area)"), std::string::npos);
    EXPECT_NE(storage_csv, area_csv);
}

/** EXPECT exit 2 with @p token quoted on stderr and no stdout. */
void
expectUsageError(const std::vector<std::string> &args,
                 const std::string &token)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    EXPECT_EQ(code, 2) << "args should have failed";
    EXPECT_TRUE(out.empty());
    EXPECT_NE(err.find(token), std::string::npos)
        << "stderr \"" << err << "\" does not quote \"" << token << "\"";
}

TEST(TdcRunOptimize, UsageErrorsExitTwoQuotingTheToken)
{
    expectUsageError({"--optimize", "2d:edc{8,16"}, "{");
    expectUsageError({"--optimize", "i{4..2}"}, "{4..2}");
    expectUsageError({"--optimize", "2d:edc{8,16}/i2+vp32", "--objective",
                      "speed"},
                     "speed");
    expectUsageError({"--optimize", "conv:nosuchcode/i2"}, "nosuchcode");
    expectUsageError({"--optimize", "prod:64x64", "--objective", "area"},
                     "prod:64x64");
    expectUsageError({"--fault", "single"}, "--fault");
}

} // namespace
} // namespace tdc
