/**
 * @file
 * End-to-end determinism of the campaign result cache through the
 * tdc_run CLI: figure output is byte-identical across {cold, warm,
 * corrupt-entry recompute} x TDC_THREADS {1, 8}, the second run
 * reports hits, truncating entries degrades gracefully, and
 * --cache-stats renders in every output format.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "driver/tdc_run.hh"
#include "reliability/result_cache.hh"

namespace tdc
{
namespace
{

namespace fs = std::filesystem;

/**
 * Every test drives the process-global resultCache() through the CLI,
 * so isolate: fresh scratch dir, no configured directory, empty
 * memory tier, default thread pool on both entry and exit.
 */
class TdcRunCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tdc_run_cache_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
        resultCache().setDirectory("");
        resultCache().clearMemory();
        resultCache().resetStats();
    }

    void TearDown() override
    {
        resultCache().setDirectory("");
        resultCache().clearMemory();
        setParallelThreads(0);
        fs::remove_all(dir_);
    }

    std::string dir() const { return dir_.string(); }

    /** A fresh process against the shared --cache-dir is modeled by
     *  dropping the in-memory tier. */
    void modelFreshProcess() { resultCache().clearMemory(); }

    /** Truncate every on-disk entry to half its size. */
    void corruptAllEntries()
    {
        size_t corrupted = 0;
        for (const auto &e : fs::directory_iterator(dir_)) {
            fs::resize_file(e.path(), fs::file_size(e.path()) / 2);
            ++corrupted;
        }
        ASSERT_GT(corrupted, 0u);
    }

    fs::path dir_;
};

std::string
runOk(const std::vector<std::string> &args)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_TRUE(err.empty()) << err;
    return out;
}

TEST_F(TdcRunCacheTest, FigureByteIdenticalColdWarmCorruptAcrossThreads)
{
    // The acceptance matrix: {cold, warm, corrupt-entry recompute} x
    // TDC_THREADS {1, 8} must all produce the same bytes.
    const auto figure = [&](const char *threads) {
        return runOk({"--figure", "fig3", "--cache-dir", dir(),
                      "--threads", threads});
    };

    const std::string cold = figure("1");

    modelFreshProcess();
    const std::string warm_t1 = figure("1");
    modelFreshProcess();
    const std::string warm_t8 = figure("8");

    corruptAllEntries();
    modelFreshProcess();
    const std::string corrupt_t1 = figure("1");
    modelFreshProcess();
    const std::string corrupt_t8 = figure("8");

    EXPECT_EQ(cold, warm_t1);
    EXPECT_EQ(cold, warm_t8);
    EXPECT_EQ(cold, corrupt_t1) << "corrupt entries must recompute to "
                                   "the identical result";
    EXPECT_EQ(cold, corrupt_t8);

    // And a cacheless run is the same bytes too.
    resultCache().setDirectory("");
    modelFreshProcess();
    EXPECT_EQ(cold, runOk({"--figure", "fig3", "--threads", "1"}));
}

TEST_F(TdcRunCacheTest, SecondRunReportsHitsFirstReportsMisses)
{
    const std::string cold =
        runOk({"--figure", "fig8", "--cache-dir", dir(), "--cache-stats"});
    EXPECT_NE(cold.find("cache: 0 hits"), std::string::npos) << cold;
    EXPECT_NE(cold.find("stored"), std::string::npos);

    modelFreshProcess();
    const std::string warm =
        runOk({"--figure", "fig8", "--cache-dir", dir(), "--cache-stats"});
    EXPECT_EQ(warm.find("cache: 0 hits"), std::string::npos) << warm;
    EXPECT_NE(warm.find("disk"), std::string::npos);

    // Everything before the stats line is byte-identical.
    const auto body = [](const std::string &s) {
        return s.substr(0, s.rfind("cache: "));
    };
    EXPECT_EQ(body(cold), body(warm));
}

TEST_F(TdcRunCacheTest, TruncatedStoreRecomputesAndHeals)
{
    runOk({"--figure", "fig8", "--cache-dir", dir()});
    corruptAllEntries();

    // The corrupt run recomputes (no disk hits) and rewrites entries.
    modelFreshProcess();
    resultCache().resetStats();
    runOk({"--figure", "fig8", "--cache-dir", dir()});
    const CacheStats after_corrupt = resultCache().stats();
    EXPECT_EQ(after_corrupt.diskHits, 0u);
    EXPECT_GT(after_corrupt.corrupt, 0u);
    EXPECT_GT(after_corrupt.stored, 0u);

    // The healed store serves the next fresh process from disk.
    modelFreshProcess();
    resultCache().resetStats();
    runOk({"--figure", "fig8", "--cache-dir", dir()});
    EXPECT_GT(resultCache().stats().diskHits, 0u);
    EXPECT_EQ(resultCache().stats().misses, 0u);
}

TEST_F(TdcRunCacheTest, CacheStatsRendersInEveryFormat)
{
    const std::string table =
        runOk({"--figure", "fig8", "--cache-dir", dir(), "--cache-stats"});
    EXPECT_NE(table.find("\ncache: "), std::string::npos);

    const std::string csv =
        runOk({"--figure", "fig8", "--cache-dir", dir(), "--cache-stats",
               "--format", "csv"});
    EXPECT_NE(csv.find("# cache: "), std::string::npos);

    const std::string json =
        runOk({"--figure", "fig8", "--cache-dir", dir(), "--cache-stats",
               "--format", "json"});
    EXPECT_NE(json.find("\"cache\": {\"memory_hits\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"tables\""), std::string::npos);

    // Without the flag, no stats line leaks into the output.
    const std::string plain =
        runOk({"--figure", "fig8", "--cache-dir", dir()});
    EXPECT_EQ(plain.find("cache: "), std::string::npos);
}

TEST_F(TdcRunCacheTest, CustomGridSharesEntriesWithRepeatRuns)
{
    const std::vector<std::string> args = {
        "--scheme", "2d:edc8/i4+vp32", "--scheme", "conv:secded/i2",
        "--fault",  "single",          "--fault",  "16x16",
        "--events", "20",              "--cache-dir", dir()};
    const std::string cold = runOk(args);
    ASSERT_FALSE(fs::is_empty(dir_));

    modelFreshProcess();
    resultCache().resetStats();
    const std::string warm = runOk(args);
    EXPECT_EQ(cold, warm);
    EXPECT_GT(resultCache().stats().diskHits, 0u);
    EXPECT_EQ(resultCache().stats().misses, 0u);
}

TEST_F(TdcRunCacheTest, CacheDirFlagRequiresValue)
{
    std::string out, err;
    EXPECT_EQ(tdcRun({"--figure", "fig8", "--cache-dir"}, out, err), 2);
    EXPECT_NE(err.find("--cache-dir"), std::string::npos);
}

} // namespace
} // namespace tdc
