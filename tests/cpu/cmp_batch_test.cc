#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "cpu/cmp_batch.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

TEST(CmpBatch, MatchesIndividualRunsAtEveryThreadCount)
{
    ThreadGuard guard;
    constexpr uint64_t kCycles = 20000;
    const std::vector<WorkloadProfile> &workloads = standardWorkloads();
    std::vector<CmpRunSpec> specs;
    for (size_t i = 0; i < 3 && i < workloads.size(); ++i) {
        specs.push_back({CmpConfig::fat(), workloads[i],
                         ProtectionConfig::none(), 7});
        specs.push_back({CmpConfig::lean(), workloads[i],
                         ProtectionConfig::full(true), 7});
    }

    // Ground truth: direct serial simulation per spec.
    std::vector<CmpSimResult> expected;
    for (const CmpRunSpec &spec : specs) {
        CmpSimulator sim(spec.machine, spec.workload, spec.protection,
                         spec.seed);
        expected.push_back(sim.run(kCycles));
    }

    for (unsigned threads : {1u, 2u, 4u}) {
        setParallelThreads(threads);
        const std::vector<CmpSimResult> got = runCmpBatch(specs, kCycles);
        ASSERT_EQ(got.size(), expected.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].cycles, expected[i].cycles) << i;
            EXPECT_EQ(got[i].instructions, expected[i].instructions)
                << i << " at " << threads << " threads";
            EXPECT_EQ(got[i].l1Writes, expected[i].l1Writes) << i;
            EXPECT_EQ(got[i].l2Writes, expected[i].l2Writes) << i;
        }
    }
}

} // namespace
} // namespace tdc
