/**
 * @file
 * Determinism-differential tests for the Figure 5 IPC-loss campaign:
 * the campaign table must equal the values computed by hand from a
 * serial cmp_batch (matched-pair baseline), and must be bit-identical
 * at every worker-pool size.
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "common/table.hh"
#include "cpu/ipc_campaign.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

IpcLossCampaignSpec
smallSpec()
{
    IpcLossCampaignSpec spec =
        IpcLossCampaignSpec::figure5(CmpConfig::fat(), "--- test ---");
    spec.cycles = 20000; // keep the grid cheap for unit testing
    spec.seed = 7;
    return spec;
}

TEST(IpcCampaign, MatchesHandComputedLossTable)
{
    const IpcLossCampaignSpec spec = smallSpec();
    const CampaignResult res = runIpcLossCampaign(spec);

    const std::vector<WorkloadProfile> &workloads = standardWorkloads();
    ASSERT_EQ(res.cells.size(), workloads.size());
    ASSERT_EQ(res.rows.size(), workloads.size() + 1); // + Average row
    EXPECT_EQ(res.rows.back()[0], "Average");

    // Recompute one workload row with plain matched-pair runs.
    const size_t wi = 2;
    std::vector<CmpRunSpec> pair = {
        {spec.machine, workloads[wi], ProtectionConfig::none(), spec.seed},
        {spec.machine, workloads[wi], ProtectionConfig::full(true),
         spec.seed},
    };
    const std::vector<CmpSimResult> runs = runCmpBatch(pair, spec.cycles);
    const double loss =
        (runs[0].ipc() - runs[1].ipc()) / runs[0].ipc();
    // Column 3 is "L1(steal) + L2" == ProtectionConfig::full(true).
    EXPECT_EQ(res.cells[wi][3], Table::pct(loss));
}

TEST(IpcCampaign, IdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const std::string serial = runIpcLossCampaign(smallSpec()).render();
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(runIpcLossCampaign(smallSpec()).render(), serial)
            << threads << " threads";
    }
}

} // namespace
} // namespace tdc
