#include <gtest/gtest.h>

#include "cpu/cmp_simulator.hh"

namespace tdc
{
namespace
{

constexpr uint64_t kCycles = 60000;

CmpSimResult
simulate(const CmpConfig &m, const std::string &workload,
         const ProtectionConfig &prot, uint64_t seed = 42)
{
    CmpSimulator sim(m, workloadByName(workload), prot, seed);
    return sim.run(kCycles);
}

double
ipcLoss(const CmpSimResult &base, const CmpSimResult &prot)
{
    return (base.ipc() - prot.ipc()) / base.ipc();
}

TEST(CmpConfig, Table1Machines)
{
    const CmpConfig fat = CmpConfig::fat();
    EXPECT_EQ(fat.cores, 4u);
    EXPECT_EQ(fat.issueWidth, 4u);
    EXPECT_TRUE(fat.outOfOrder);
    EXPECT_EQ(fat.l1Ports, 2u);
    EXPECT_EQ(fat.l2HitLatency, 16u);

    const CmpConfig lean = CmpConfig::lean();
    EXPECT_EQ(lean.cores, 8u);
    EXPECT_EQ(lean.issueWidth, 2u);
    EXPECT_FALSE(lean.outOfOrder);
    EXPECT_EQ(lean.threadsPerCore, 4u);
    EXPECT_EQ(lean.l1Ports, 1u);
    EXPECT_EQ(lean.l2HitLatency, 12u);
}

TEST(ProtectionConfig, Labels)
{
    EXPECT_EQ(ProtectionConfig::none().label(), "baseline");
    EXPECT_EQ(ProtectionConfig::l1Only(false).label(), "L1");
    EXPECT_EQ(ProtectionConfig::l1Only(true).label(), "L1+steal");
    EXPECT_EQ(ProtectionConfig::l2Only().label(), "L2");
    EXPECT_EQ(ProtectionConfig::full().label(), "L1+steal L2");
}

TEST(CmpSimulator, Deterministic)
{
    const CmpSimResult a =
        simulate(CmpConfig::fat(), "OLTP", ProtectionConfig::none());
    const CmpSimResult b =
        simulate(CmpConfig::fat(), "OLTP", ProtectionConfig::none());
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1ReadsData, b.l1ReadsData);
}

TEST(CmpSimulator, IpcWithinMachineLimits)
{
    for (const auto &w : standardWorkloads()) {
        const CmpSimResult fat = simulate(CmpConfig::fat(), w.name,
                                          ProtectionConfig::none());
        EXPECT_GT(fat.ipc(), 1.0) << w.name;
        EXPECT_LT(fat.ipc(), 16.0) << w.name; // 4 cores x 4-wide

        const CmpSimResult lean = simulate(CmpConfig::lean(), w.name,
                                           ProtectionConfig::none());
        EXPECT_GT(lean.ipc(), 1.0) << w.name;
        EXPECT_LT(lean.ipc(), 16.0) << w.name; // 8 cores x 2-wide
    }
}

TEST(CmpSimulator, BaselineIssuesNoExtraReads)
{
    const CmpSimResult r =
        simulate(CmpConfig::fat(), "OLTP", ProtectionConfig::none());
    EXPECT_EQ(r.l1ExtraReads, 0u);
    EXPECT_EQ(r.l2ExtraReads, 0u);
    EXPECT_GT(r.l1ReadsData, 0u);
    EXPECT_GT(r.l2ReadsData, 0u);
    EXPECT_GT(r.l2ReadsInst, 0u); // OLTP misses the L1I
}

TEST(CmpSimulator, TwoDimL1AddsOneExtraReadPerArrayWrite)
{
    const CmpSimResult r = simulate(CmpConfig::fat(), "OLTP",
                                    ProtectionConfig::l1Only(false));
    // Every store drain and every fill triggers a read-before-write.
    EXPECT_EQ(r.l1ExtraReads, r.l1Writes + r.l1FillEvict);
    EXPECT_EQ(r.l2ExtraReads, 0u);
}

TEST(CmpSimulator, TwoDimL2AddsExtraReadsOnWritebacks)
{
    const CmpSimResult r =
        simulate(CmpConfig::fat(), "OLTP", ProtectionConfig::l2Only());
    EXPECT_EQ(r.l1ExtraReads, 0u);
    // Every L2 array write — write-backs from L1 and memory refills —
    // triggers one read-before-write.
    EXPECT_EQ(r.l2ExtraReads, r.l2Writes + r.l2FillEvict);
    EXPECT_GT(r.l2Writes, 0u);
    EXPECT_GT(r.l2FillEvict, 0u);
}

TEST(CmpSimulator, ExtraReadsAreTensOfPercentOfTraffic)
{
    // Figure 6: 2D coding adds roughly 20% more cache accesses.
    const CmpSimResult r = simulate(CmpConfig::fat(), "Web",
                                    ProtectionConfig::full(true));
    const uint64_t total = r.l1ReadsData + r.l1Writes + r.l1FillEvict +
                           r.l1ExtraReads;
    const double frac = double(r.l1ExtraReads) / double(total);
    EXPECT_GT(frac, 0.10);
    EXPECT_LT(frac, 0.35);
}

TEST(CmpSimulator, ProtectionCostsIpcButModestly)
{
    // The paper's headline: both machines tolerate full 2D protection
    // with low single-digit IPC loss.
    for (const CmpConfig &m : {CmpConfig::fat(), CmpConfig::lean()}) {
        double total_loss = 0.0;
        for (const auto &w : standardWorkloads()) {
            const CmpSimResult base =
                simulate(m, w.name, ProtectionConfig::none());
            const CmpSimResult prot =
                simulate(m, w.name, ProtectionConfig::full(true));
            const double loss = ipcLoss(base, prot);
            EXPECT_GE(loss, -0.01) << m.name << " " << w.name;
            EXPECT_LT(loss, 0.10) << m.name << " " << w.name;
            total_loss += loss;
        }
        EXPECT_LT(total_loss / 6.0, 0.05) << m.name;
    }
}

TEST(CmpSimulator, PortStealingRecoversMostL1Contention)
{
    // Figure 5(a): port stealing removes the bulk of the L1 port
    // contention caused by read-before-write.
    const CmpConfig fat = CmpConfig::fat();
    for (const char *w : {"OLTP", "Web", "Moldyn"}) {
        const CmpSimResult base =
            simulate(fat, w, ProtectionConfig::none());
        const CmpSimResult nosteal =
            simulate(fat, w, ProtectionConfig::l1Only(false));
        const CmpSimResult steal =
            simulate(fat, w, ProtectionConfig::l1Only(true));
        const double loss_nosteal = ipcLoss(base, nosteal);
        const double loss_steal = ipcLoss(base, steal);
        EXPECT_LT(loss_steal, loss_nosteal * 0.6) << w;
    }
}

TEST(CmpSimulator, FatSuffersMoreFromL1LeanFromL2)
{
    // The bandwidth-usage asymmetry of Section 5.1: the fat CMP's
    // loss is dominated by L1 port pressure, the lean CMP sees a
    // relatively larger L2 share.
    auto shares = [](const CmpConfig &m) {
        double l1 = 0, l2 = 0;
        for (const char *w : {"OLTP", "Web"}) {
            const CmpSimResult base =
                simulate(m, w, ProtectionConfig::none());
            l1 += ipcLoss(base,
                          simulate(m, w, ProtectionConfig::l1Only(false)));
            l2 += ipcLoss(base, simulate(m, w, ProtectionConfig::l2Only()));
        }
        return std::pair<double, double>(l1, l2);
    };
    const auto [fat_l1, fat_l2] = shares(CmpConfig::fat());
    const auto [lean_l1, lean_l2] = shares(CmpConfig::lean());
    // L2 loss share is larger on the lean machine than on the fat one.
    EXPECT_GT(lean_l2 / (lean_l1 + lean_l2 + 1e-9),
              fat_l2 / (fat_l1 + fat_l2 + 1e-9));
}

TEST(CmpSimulator, LeanL2TrafficExceedsFat)
{
    // Eight lean cores push more aggregate L2 traffic than four fat
    // cores (Figure 6(c) vs (d)).
    const CmpSimResult fat = simulate(CmpConfig::fat(), "OLTP",
                                      ProtectionConfig::none());
    const CmpSimResult lean = simulate(CmpConfig::lean(), "OLTP",
                                       ProtectionConfig::none());
    const auto l2_total = [](const CmpSimResult &r) {
        return r.per100(r.l2ReadsInst + r.l2ReadsData + r.l2Writes +
                        r.l2FillEvict);
    };
    EXPECT_GT(l2_total(lean), l2_total(fat));
}

TEST(CmpSimulator, ScientificWorkloadsSkipL1I)
{
    const CmpSimResult r = simulate(CmpConfig::fat(), "Moldyn",
                                    ProtectionConfig::none());
    const CmpSimResult o = simulate(CmpConfig::fat(), "OLTP",
                                    ProtectionConfig::none());
    EXPECT_LT(r.per100(r.l2ReadsInst), o.per100(o.l2ReadsInst) * 0.3);
}

} // namespace
} // namespace tdc
