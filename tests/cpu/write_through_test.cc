#include <gtest/gtest.h>

#include "cpu/cmp_simulator.hh"

namespace tdc
{
namespace
{

constexpr uint64_t kCycles = 60000;

CmpSimResult
simulate(const CmpConfig &m, const char *workload,
         const ProtectionConfig &prot)
{
    CmpSimulator sim(m, workloadByName(workload), prot, 42);
    return sim.run(kCycles);
}

TEST(WriteThrough, Label)
{
    EXPECT_EQ(ProtectionConfig::writeThroughL1().label(),
              "WT-L1 + 2D-L2");
}

TEST(WriteThrough, DuplicatesEveryStoreIntoL2)
{
    const CmpSimResult wb =
        simulate(CmpConfig::fat(), "OLTP", ProtectionConfig::none());
    const CmpSimResult wt = simulate(CmpConfig::fat(), "OLTP",
                                     ProtectionConfig::writeThroughL1());
    // Write-through L2 writes include every store drain, not just
    // dirty evictions: several times the write-back traffic.
    EXPECT_GT(wt.l2Writes, 3 * wb.l2Writes);
    // And no L1 read-before-write (the L1 carries only EDC).
    EXPECT_EQ(wt.l1ExtraReads, 0u);
    // The 2D-protected L2 pays read-before-write on those stores.
    EXPECT_EQ(wt.l2ExtraReads, wt.l2Writes + wt.l2FillEvict);
}

TEST(WriteThrough, CostsMoreThanTwoDimOnLean)
{
    // The paper's argument (Sections 2.1, 5.1): with a shared L2 and
    // many threads, write-through duplication is more expensive than
    // 2D-protected write-back.
    const CmpConfig lean = CmpConfig::lean();
    CmpSimulator base(lean, workloadByName("Web"),
                      ProtectionConfig::none(), 42);
    const double base_ipc = base.run(kCycles).ipc();
    const double wt_ipc =
        simulate(lean, "Web", ProtectionConfig::writeThroughL1()).ipc();
    const double twod_ipc =
        simulate(lean, "Web", ProtectionConfig::full(true)).ipc();
    EXPECT_LT(wt_ipc, twod_ipc);
    EXPECT_GT((base_ipc - wt_ipc) / base_ipc,
              (base_ipc - twod_ipc) / base_ipc);
}

TEST(DirtyTransfers, HappenAndScaleWithSharing)
{
    const CmpSimResult oltp =
        simulate(CmpConfig::fat(), "OLTP", ProtectionConfig::none());
    const CmpSimResult sparse =
        simulate(CmpConfig::fat(), "Sparse", ProtectionConfig::none());
    EXPECT_GT(oltp.l1DirtyTransfers, 0u);
    // OLTP shares dirty data far more than Sparse (profile fractions
    // 0.14 vs 0.03), modulo their different miss volumes.
    const double oltp_rate =
        double(oltp.l1DirtyTransfers) / double(oltp.l1ReadsData);
    const double sparse_rate =
        double(sparse.l1DirtyTransfers) / double(sparse.l1ReadsData);
    EXPECT_GT(oltp_rate, 2.0 * sparse_rate);
}

TEST(Mshr, OutstandingMissesAreBounded)
{
    // With a tiny MSHR file the simulator must still run and lose
    // throughput, never deadlock.
    CmpConfig m = CmpConfig::fat();
    m.mshrs = 2;
    CmpSimulator tight(m, workloadByName("Ocean"),
                       ProtectionConfig::none(), 42);
    const double ipc_tight = tight.run(kCycles).ipc();

    CmpConfig wide = CmpConfig::fat();
    wide.mshrs = 64;
    CmpSimulator loose(wide, workloadByName("Ocean"),
                       ProtectionConfig::none(), 42);
    const double ipc_loose = loose.run(kCycles).ipc();
    EXPECT_GT(ipc_tight, 0.5);
    EXPECT_LE(ipc_tight, ipc_loose);
}

TEST(Mshr, InOrderMachineAlsoBounded)
{
    CmpConfig m = CmpConfig::lean();
    m.mshrs = 1;
    CmpSimulator sim(m, workloadByName("Sparse"),
                     ProtectionConfig::none(), 42);
    const CmpSimResult r = sim.run(kCycles);
    EXPECT_GT(r.ipc(), 0.2);
}

} // namespace
} // namespace tdc
