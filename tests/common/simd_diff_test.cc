/**
 * @file
 * Differential suite for the dispatched interleave primitives: every
 * BitCompressPlan operation must produce identical bits on the scalar
 * (butterfly) tier and on every hardware tier this machine offers,
 * over random masks and the adversarial patterns (empty, full,
 * alternating, half, single-bit, stride) that stress the butterfly
 * stages hardest.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bit_span.hh"
#include "common/cpu_features.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

std::vector<SimdBackend>
availableBackends()
{
    std::vector<SimdBackend> out = {SimdBackend::kScalar};
    if (bestSimdBackend() >= SimdBackend::kBmi2)
        out.push_back(SimdBackend::kBmi2);
    if (bestSimdBackend() >= SimdBackend::kAvx2)
        out.push_back(SimdBackend::kAvx2);
    return out;
}

std::vector<uint64_t>
adversarialMasks()
{
    std::vector<uint64_t> masks = {
        0,
        ~uint64_t(0),
        0xAAAAAAAAAAAAAAAAULL,
        0x5555555555555555ULL,
        0x00000000FFFFFFFFULL,
        0xFFFFFFFF00000000ULL,
        0x8000000000000001ULL,
        0x0F0F0F0F0F0F0F0FULL,
        0xFF00FF00FF00FF00ULL,
    };
    for (unsigned i = 0; i < 64; ++i)
        masks.push_back(uint64_t(1) << i);
    for (unsigned stride = 1; stride <= 64; ++stride)
        masks.push_back(strideMask64(stride));
    return masks;
}

TEST(SimdDiff, CompressMatchesScalarOnEveryBackend)
{
    Rng rng(21);
    std::vector<uint64_t> masks = adversarialMasks();
    for (int i = 0; i < 200; ++i)
        masks.push_back(rng.next() & rng.next());

    for (uint64_t mask : masks) {
        const BitCompressPlan plan(mask);
        for (int trial = 0; trial < 16; ++trial) {
            const uint64_t x = rng.next();
            uint64_t ref;
            {
                ScopedSimdBackend scalar(SimdBackend::kScalar);
                ref = plan.compress(x);
            }
            for (SimdBackend b : availableBackends()) {
                ScopedSimdBackend guard(b);
                EXPECT_EQ(plan.compress(x), ref)
                    << "mask=" << std::hex << mask << " backend="
                    << simdBackendName(b);
            }
        }
    }
}

TEST(SimdDiff, ExpandMatchesScalarOnEveryBackend)
{
    Rng rng(22);
    std::vector<uint64_t> masks = adversarialMasks();
    for (int i = 0; i < 200; ++i)
        masks.push_back(rng.next() | rng.next());

    for (uint64_t mask : masks) {
        const BitCompressPlan plan(mask);
        for (int trial = 0; trial < 16; ++trial) {
            const uint64_t x = rng.next();
            uint64_t ref;
            {
                ScopedSimdBackend scalar(SimdBackend::kScalar);
                ref = plan.expand(x);
            }
            for (SimdBackend b : availableBackends()) {
                ScopedSimdBackend guard(b);
                EXPECT_EQ(plan.expand(x), ref)
                    << "mask=" << std::hex << mask << " backend="
                    << simdBackendName(b);
            }
        }
    }
}

TEST(SimdDiff, CompressExpandRoundTripUnderEveryBackend)
{
    Rng rng(23);
    for (SimdBackend b : availableBackends()) {
        ScopedSimdBackend guard(b);
        for (int trial = 0; trial < 500; ++trial) {
            const uint64_t mask = rng.next();
            const BitCompressPlan plan(mask);
            const uint64_t x = rng.next();
            // expand(compress(x)) reproduces exactly the masked bits.
            EXPECT_EQ(plan.expand(plan.compress(x)), x & mask);
        }
    }
}

} // namespace
} // namespace tdc
