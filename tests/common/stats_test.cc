#include <gtest/gtest.h>

#include "common/stats.hh"

namespace tdc
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 4.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 4.0);
    EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(StatGroup, IncrementCreatesAndAdds)
{
    StatGroup g;
    g.inc("reads");
    g.inc("reads", 4);
    g.inc("writes", 2);
    EXPECT_EQ(g.get("reads"), 5u);
    EXPECT_EQ(g.get("writes"), 2u);
    EXPECT_EQ(g.get("absent"), 0u);
}

TEST(StatGroup, SetOverrides)
{
    StatGroup g;
    g.inc("x", 10);
    g.set("x", 3);
    EXPECT_EQ(g.get("x"), 3u);
}

TEST(StatGroup, PreservesInsertionOrder)
{
    StatGroup g;
    g.inc("b");
    g.inc("a");
    g.inc("c");
    const auto &e = g.entries();
    ASSERT_EQ(e.size(), 3u);
    EXPECT_EQ(e[0].first, "b");
    EXPECT_EQ(e[1].first, "a");
    EXPECT_EQ(e[2].first, "c");
}

TEST(StatGroup, ClearZeroesButKeepsNames)
{
    StatGroup g;
    g.inc("n", 7);
    g.clear();
    EXPECT_EQ(g.get("n"), 0u);
    EXPECT_EQ(g.entries().size(), 1u);
}

} // namespace
} // namespace tdc
