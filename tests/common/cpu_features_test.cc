/**
 * @file
 * Contract of the runtime CPU probe and SIMD backend dispatch layer:
 * name/parse round trips, tier ordering against the probed features,
 * clamping of requests the CPU cannot honor, scoped overrides, and
 * bit-exactness of the hardware kernels against software references.
 */

#include <gtest/gtest.h>

#include "common/cpu_features.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

/** Software PEXT: gather the bits of @p x selected by @p mask. */
uint64_t
refPext(uint64_t x, uint64_t mask)
{
    uint64_t out = 0;
    unsigned j = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if ((mask >> i) & 1)
            out |= uint64_t((x >> i) & 1) << j++;
    }
    return out;
}

/** Software PDEP: scatter the low bits of @p x to the mask positions. */
uint64_t
refPdep(uint64_t x, uint64_t mask)
{
    uint64_t out = 0;
    unsigned j = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if ((mask >> i) & 1)
            out |= uint64_t((x >> j++) & 1) << i;
    }
    return out;
}

TEST(CpuFeatures, BackendNamesRoundTripThroughParse)
{
    for (SimdBackend b :
         {SimdBackend::kScalar, SimdBackend::kBmi2, SimdBackend::kAvx2}) {
        const auto parsed = parseSimdBackend(simdBackendName(b));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, b);
    }
    EXPECT_FALSE(parseSimdBackend("").has_value());
    EXPECT_FALSE(parseSimdBackend("sse2").has_value());
    EXPECT_FALSE(parseSimdBackend("BMI2").has_value());
}

TEST(CpuFeatures, BestBackendIsConsistentWithProbedFeatures)
{
    const CpuFeatures &f = cpuFeatures();
    const SimdBackend best = bestSimdBackend();
    if (best >= SimdBackend::kBmi2) {
        EXPECT_TRUE(f.bmi2);
    }
    if (best >= SimdBackend::kAvx2) {
        EXPECT_TRUE(f.avx2);
    }
    // The tiers are cumulative: avx2 without bmi2 must not be offered.
    if (!f.bmi2) {
        EXPECT_EQ(best, SimdBackend::kScalar);
    }
}

TEST(CpuFeatures, SetBackendClampsToTheSupportedTier)
{
    const SimdBackend before = activeSimdBackend();
    const SimdBackend best = bestSimdBackend();

    EXPECT_EQ(setSimdBackend(SimdBackend::kScalar), SimdBackend::kScalar);
    EXPECT_EQ(activeSimdBackend(), SimdBackend::kScalar);
    EXPECT_FALSE(simdBmi2Active());
    EXPECT_FALSE(simdAvx2Active());

    // An over-ambitious request lands on the best supported tier, never
    // above it.
    EXPECT_EQ(setSimdBackend(SimdBackend::kAvx2), best);
    EXPECT_LE(int(activeSimdBackend()), int(best));

    setSimdBackend(before);
}

TEST(CpuFeatures, ScopedOverrideRestoresThePreviousBackend)
{
    const SimdBackend before = activeSimdBackend();
    {
        ScopedSimdBackend scalar(SimdBackend::kScalar);
        EXPECT_EQ(activeSimdBackend(), SimdBackend::kScalar);
        {
            ScopedSimdBackend inner(SimdBackend::kBmi2);
            EXPECT_LE(int(activeSimdBackend()), int(bestSimdBackend()));
        }
        EXPECT_EQ(activeSimdBackend(), SimdBackend::kScalar);
    }
    EXPECT_EQ(activeSimdBackend(), before);
}

TEST(CpuFeatures, PextPdepKernelsMatchSoftwareReference)
{
    if (!cpuFeatures().bmi2)
        GTEST_SKIP() << "no BMI2 on this machine";
    Rng rng(7);
    for (int trial = 0; trial < 2000; ++trial) {
        const uint64_t x = rng.next();
        const uint64_t mask = rng.next() & rng.next(); // sparse-ish
        EXPECT_EQ(simd::pextBmi2(x, mask), refPext(x, mask));
        EXPECT_EQ(simd::pdepBmi2(x, mask), refPdep(x, mask));
    }
    const uint64_t edgeMasks[] = {0,
                                  ~uint64_t(0),
                                  0xAAAAAAAAAAAAAAAAULL,
                                  0x5555555555555555ULL,
                                  0x00000000FFFFFFFFULL,
                                  0xFFFFFFFF00000000ULL,
                                  1,
                                  uint64_t(1) << 63};
    for (uint64_t mask : edgeMasks) {
        const uint64_t x = 0xDEADBEEFCAFEF00DULL;
        EXPECT_EQ(simd::pextBmi2(x, mask), refPext(x, mask));
        EXPECT_EQ(simd::pdepBmi2(x, mask), refPdep(x, mask));
    }
}

TEST(CpuFeatures, XorFoldKernelMatchesScalarLoop)
{
    if (!cpuFeatures().avx2)
        GTEST_SKIP() << "no AVX2 on this machine";
    Rng rng(11);
    for (size_t nwords = 0; nwords <= 40; ++nwords) {
        std::vector<uint64_t> words(nwords);
        for (uint64_t &w : words)
            w = rng.next();
        uint64_t ref = 0;
        for (uint64_t w : words)
            ref ^= w;
        EXPECT_EQ(simd::xorFoldAvx2(words.data(), nwords), ref)
            << "nwords=" << nwords;
    }
}

} // namespace
} // namespace tdc
