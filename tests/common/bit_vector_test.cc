#include <gtest/gtest.h>

#include "common/bit_vector.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

TEST(BitVector, DefaultIsEmpty)
{
    BitVector v;
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
    EXPECT_TRUE(v.none());
}

TEST(BitVector, ConstructedCleared)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ValueConstructor)
{
    BitVector v(8, 0b10110101);
    EXPECT_TRUE(v.get(0));
    EXPECT_FALSE(v.get(1));
    EXPECT_TRUE(v.get(2));
    EXPECT_EQ(v.toUint64(), 0b10110101u);
}

TEST(BitVector, ValueConstructorTruncatesAboveLength)
{
    BitVector v(4, 0xFF);
    EXPECT_EQ(v.toUint64(), 0xFu);
    EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVector, SetGetFlip)
{
    BitVector v(100);
    v.set(63, true);
    v.set(64, true);
    v.set(99, true);
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(99));
    EXPECT_EQ(v.popcount(), 3u);
    v.flip(64);
    EXPECT_FALSE(v.get(64));
    v.flip(0);
    EXPECT_TRUE(v.get(0));
    EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, FindFirstLast)
{
    BitVector v(200);
    EXPECT_EQ(v.findFirst(), 200u);
    EXPECT_EQ(v.findLast(), 200u);
    v.set(5, true);
    v.set(150, true);
    EXPECT_EQ(v.findFirst(), 5u);
    EXPECT_EQ(v.findLast(), 150u);
}

TEST(BitVector, XorAndOr)
{
    BitVector a(8, 0b1100);
    BitVector b(8, 0b1010);
    EXPECT_EQ((a ^ b).toUint64(), 0b0110u);
    EXPECT_EQ((a & b).toUint64(), 0b1000u);
    EXPECT_EQ((a | b).toUint64(), 0b1110u);
}

TEST(BitVector, EqualityConsidersLength)
{
    BitVector a(8, 3);
    BitVector b(9, 3);
    BitVector c(8, 3);
    EXPECT_NE(a, b);
    EXPECT_EQ(a, c);
}

TEST(BitVector, SliceWithinOneWord)
{
    BitVector v(32, 0b11011001);
    BitVector s = v.slice(3, 5);
    EXPECT_EQ(s.size(), 5u);
    EXPECT_EQ(s.toUint64(), 0b11011u);
}

TEST(BitVector, SliceAcrossWordBoundary)
{
    BitVector v(128);
    for (size_t i = 60; i < 70; ++i)
        v.set(i, true);
    BitVector s = v.slice(58, 16);
    EXPECT_EQ(s.size(), 16u);
    EXPECT_EQ(s.popcount(), 10u);
    EXPECT_FALSE(s.get(0));
    EXPECT_FALSE(s.get(1));
    EXPECT_TRUE(s.get(2));
    EXPECT_TRUE(s.get(11));
    EXPECT_FALSE(s.get(12));
}

TEST(BitVector, SliceRoundTripRandom)
{
    Rng rng(42);
    BitVector v(333);
    for (size_t i = 0; i < v.size(); ++i)
        v.set(i, rng.nextBool());
    for (int trial = 0; trial < 50; ++trial) {
        const size_t pos = rng.nextBelow(300);
        const size_t len = 1 + rng.nextBelow(33);
        BitVector s = v.slice(pos, len);
        for (size_t i = 0; i < len; ++i)
            EXPECT_EQ(s.get(i), v.get(pos + i));
    }
}

TEST(BitVector, SetSlice)
{
    BitVector v(64);
    BitVector patch(8, 0xA5);
    v.setSlice(30, patch);
    EXPECT_EQ(v.slice(30, 8).toUint64(), 0xA5u);
    EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVector, AppendAndPushBack)
{
    BitVector v(4, 0b1010);
    BitVector w(4, 0b0110);
    v.append(w);
    EXPECT_EQ(v.size(), 8u);
    EXPECT_EQ(v.toUint64(), 0b01101010u);
    v.pushBack(true);
    EXPECT_EQ(v.size(), 9u);
    EXPECT_TRUE(v.get(8));
}

TEST(BitVector, Parity)
{
    BitVector v(100);
    EXPECT_FALSE(v.parity());
    v.set(10, true);
    EXPECT_TRUE(v.parity());
    v.set(90, true);
    EXPECT_FALSE(v.parity());
}

TEST(BitVector, ClearResets)
{
    BitVector v(70, ~uint64_t(0));
    EXPECT_GT(v.popcount(), 0u);
    v.clear();
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.size(), 70u);
}

TEST(BitVector, ToString)
{
    BitVector v(5, 0b10011);
    EXPECT_EQ(v.toString(), "11001"); // bit 0 first
}

TEST(BitVector, XorIsInvolution)
{
    Rng rng(7);
    BitVector a(257);
    BitVector b(257);
    for (size_t i = 0; i < a.size(); ++i) {
        a.set(i, rng.nextBool());
        b.set(i, rng.nextBool());
    }
    BitVector c = a ^ b;
    EXPECT_EQ(c ^ b, a);
    EXPECT_EQ(c ^ a, b);
}

} // namespace
} // namespace tdc
