#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"

namespace tdc
{
namespace
{

/** Restores the default thread count when a test exits. */
struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadGuard guard;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        setParallelThreads(threads);
        constexpr size_t kN = 1000;
        std::vector<std::atomic<int>> hits(kN);
        parallelFor(kN, [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < kN; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at "
                                         << threads << " threads";
    }
}

TEST(ParallelFor, ZeroAndSingleIteration)
{
    ThreadGuard guard;
    setParallelThreads(4);
    int calls = 0;
    parallelFor(0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SetThreadsIsObservable)
{
    ThreadGuard guard;
    setParallelThreads(3);
    EXPECT_EQ(parallelThreads(), 3u);
    setParallelThreads(0);
    EXPECT_GE(parallelThreads(), 1u);
}

TEST(ParallelFor, PropagatesFirstException)
{
    ThreadGuard guard;
    setParallelThreads(4);
    EXPECT_THROW(parallelFor(64,
                             [&](size_t i) {
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // The pool must stay usable afterwards.
    std::atomic<size_t> sum{0};
    parallelFor(10, [&](size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45u);
}

TEST(ParallelFor, NestedCallsRunSerially)
{
    ThreadGuard guard;
    setParallelThreads(4);
    std::vector<std::atomic<int>> hits(16 * 8);
    parallelFor(16, [&](size_t outer) {
        parallelFor(8, [&](size_t inner) { ++hits[outer * 8 + inner]; });
    });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ShardSeed, DeterministicAndDecorrelated)
{
    EXPECT_EQ(shardSeed(42, 7), shardSeed(42, 7));
    EXPECT_NE(shardSeed(42, 7), shardSeed(42, 8));
    EXPECT_NE(shardSeed(42, 7), shardSeed(43, 7));
    // Adjacent (base, shard) pairs must not collide the way raw
    // addition would: shardSeed(s, i+1) != shardSeed(s+stride, i).
    EXPECT_NE(shardSeed(1, 2), shardSeed(2, 1));
}

} // namespace
} // namespace tdc
