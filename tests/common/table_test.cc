#include <gtest/gtest.h>

#include "common/table.hh"

namespace tdc
{
namespace
{

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.125, 1), "12.5%");
    EXPECT_EQ(Table::pct(0.891, 1), "89.1%");
}

TEST(Table, RenderContainsHeaderAndCells)
{
    Table t({"scheme", "overhead"});
    t.addRow({"SECDED", "12.5%"});
    t.addRow({"OECNED", "89.1%"});
    const std::string out = t.render();
    EXPECT_NE(out.find("scheme"), std::string::npos);
    EXPECT_NE(out.find("overhead"), std::string::npos);
    EXPECT_NE(out.find("SECDED"), std::string::npos);
    EXPECT_NE(out.find("89.1%"), std::string::npos);
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.render());
}

TEST(Table, ColumnsAligned)
{
    Table t({"x", "yyyy"});
    t.addRow({"long-cell", "1"});
    const std::string out = t.render();
    // Header line and data line must be equally long (aligned table).
    const size_t first_nl = out.find('\n');
    const size_t second_nl = out.find('\n', first_nl + 1);
    const size_t third_nl = out.find('\n', second_nl + 1);
    const std::string header = out.substr(0, first_nl);
    const std::string data =
        out.substr(second_nl + 1, third_nl - second_nl - 1);
    EXPECT_EQ(header.size(), data.size());
}

} // namespace
} // namespace tdc
