#include <gtest/gtest.h>

#include "common/bit_matrix.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

TEST(BitMatrix, Dimensions)
{
    BitMatrix m(16, 256);
    EXPECT_EQ(m.rows(), 16u);
    EXPECT_EQ(m.cols(), 256u);
    EXPECT_EQ(m.popcount(), 0u);
}

TEST(BitMatrix, SetGetFlip)
{
    BitMatrix m(4, 4);
    m.set(2, 3, true);
    EXPECT_TRUE(m.get(2, 3));
    EXPECT_FALSE(m.get(3, 2));
    m.flip(2, 3);
    EXPECT_FALSE(m.get(2, 3));
    m.flip(0, 0);
    EXPECT_TRUE(m.get(0, 0));
}

TEST(BitMatrix, RowAccess)
{
    BitMatrix m(3, 8);
    BitVector r(8, 0b1101);
    m.setRow(1, r);
    EXPECT_EQ(m.row(1), r);
    EXPECT_TRUE(m.get(1, 0));
    EXPECT_FALSE(m.get(1, 1));
    EXPECT_TRUE(m.get(1, 3));
}

TEST(BitMatrix, ColumnExtractAndSet)
{
    BitMatrix m(8, 3);
    BitVector c(8, 0b10110010);
    m.setColumn(2, c);
    EXPECT_EQ(m.column(2), c);
    EXPECT_EQ(m.column(0).popcount(), 0u);
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_TRUE(m.get(7, 2));
}

TEST(BitMatrix, RowColumnConsistency)
{
    Rng rng(99);
    BitMatrix m(32, 64);
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            m.set(r, c, rng.nextBool());
    // column(c).get(r) must agree with row(r).get(c) everywhere.
    for (size_t c = 0; c < m.cols(); ++c) {
        BitVector col = m.column(c);
        for (size_t r = 0; r < m.rows(); ++r)
            ASSERT_EQ(col.get(r), m.row(r).get(c));
    }
}

TEST(BitMatrix, ClearAndPopcount)
{
    BitMatrix m(5, 5);
    for (size_t i = 0; i < 5; ++i)
        m.set(i, i, true);
    EXPECT_EQ(m.popcount(), 5u);
    m.clear();
    EXPECT_EQ(m.popcount(), 0u);
}

TEST(BitMatrix, Equality)
{
    BitMatrix a(2, 2);
    BitMatrix b(2, 2);
    EXPECT_EQ(a, b);
    a.set(0, 1, true);
    EXPECT_NE(a, b);
    b.set(0, 1, true);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace tdc
