#include <gtest/gtest.h>

#include "common/bit_span.hh"
#include "common/bit_vector.hh"
#include "common/rng.hh"

namespace tdc
{
namespace
{

BitVector
randomVector(Rng &rng, size_t nbits)
{
    BitVector v(nbits);
    for (size_t i = 0; i < nbits; ++i)
        v.set(i, rng.nextBool());
    return v;
}

TEST(ConstBitSpan, MirrorsTheViewedVector)
{
    Rng rng(1);
    for (size_t nbits : {1u, 7u, 63u, 64u, 65u, 128u, 288u, 500u}) {
        const BitVector v = randomVector(rng, nbits);
        ConstBitSpan span(v);
        ASSERT_EQ(span.size(), v.size());
        EXPECT_EQ(span.popcount(), v.popcount());
        EXPECT_EQ(span.parity(), v.parity());
        EXPECT_EQ(span.none(), v.none());
        for (size_t i = 0; i < nbits; ++i)
            ASSERT_EQ(span.get(i), v.get(i)) << "bit " << i;
        EXPECT_EQ(span.toBitVector(), v);
    }
}

TEST(ConstBitSpan, ParityOfAndMatchesMaterializedAnd)
{
    Rng rng(2);
    for (size_t nbits : {5u, 64u, 72u, 129u, 288u}) {
        for (int trial = 0; trial < 20; ++trial) {
            const BitVector a = randomVector(rng, nbits);
            const BitVector b = randomVector(rng, nbits);
            EXPECT_EQ(ConstBitSpan(a).parityOfAnd(ConstBitSpan(b)),
                      (a & b).parity());
        }
    }
}

TEST(BitSpan, XorWithMatchesOperator)
{
    Rng rng(3);
    for (size_t nbits : {1u, 64u, 72u, 200u, 320u, 321u}) {
        BitVector a = randomVector(rng, nbits);
        const BitVector b = randomVector(rng, nbits);
        const BitVector expect = a ^ b;
        BitSpan(a).xorWith(ConstBitSpan(b));
        EXPECT_EQ(a, expect);
    }
}

TEST(BitSpan, XorWithSelfAliasingZeroes)
{
    // A span XORed with a span over the same storage must produce
    // all-zero — the aliasing case the in-place delta fold relies on.
    Rng rng(4);
    BitVector v = randomVector(rng, 150);
    BitSpan(v).xorWith(ConstBitSpan(v));
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.size(), 150u);
}

TEST(BitSpan, MutationsWriteThroughToTheVector)
{
    BitVector v(100);
    BitSpan span(v);
    span.set(0, true);
    span.set(64, true);
    span.set(99, true);
    EXPECT_EQ(v.popcount(), 3u);
    EXPECT_TRUE(v.get(64));
    span.set(64, false);
    EXPECT_FALSE(v.get(64));
    span.clear();
    EXPECT_TRUE(v.none());
}

TEST(BitSpan, CopyFromPreservesSubWordTail)
{
    Rng rng(5);
    const BitVector src = randomVector(rng, 70); // sub-word tail: 6 bits
    BitVector dst(70);
    BitSpan(dst).copyFrom(ConstBitSpan(src));
    EXPECT_EQ(dst, src);
}

TEST(StrideMask, KnownPatterns)
{
    EXPECT_EQ(strideMask64(1), ~uint64_t(0));
    EXPECT_EQ(strideMask64(2), 0x5555555555555555ull);
    EXPECT_EQ(strideMask64(4), 0x1111111111111111ull);
    EXPECT_EQ(strideMask64(8), 0x0101010101010101ull);
    EXPECT_EQ(strideMask64(64), 1ull);
}

/** Naive reference for PEXT: gather mask-selected bits to the low end. */
uint64_t
compressRef(uint64_t x, uint64_t mask)
{
    uint64_t out = 0;
    size_t o = 0;
    for (size_t i = 0; i < 64; ++i) {
        if ((mask >> i) & 1) {
            out |= ((x >> i) & 1) << o;
            ++o;
        }
    }
    return out;
}

/** Naive reference for PDEP: scatter low bits to mask positions. */
uint64_t
expandRef(uint64_t x, uint64_t mask)
{
    uint64_t out = 0;
    size_t o = 0;
    for (size_t i = 0; i < 64; ++i) {
        if ((mask >> i) & 1) {
            out |= ((x >> o) & 1) << i;
            ++o;
        }
    }
    return out;
}

TEST(BitCompressPlan, MatchesNaiveReferenceOnRandomMasks)
{
    Rng rng(6);
    for (int m = 0; m < 50; ++m) {
        const uint64_t mask = rng.next();
        BitCompressPlan plan(mask);
        ASSERT_EQ(plan.count(), unsigned(std::popcount(mask)));
        for (int t = 0; t < 50; ++t) {
            const uint64_t x = rng.next();
            ASSERT_EQ(plan.compress(x), compressRef(x, mask))
                << "mask " << std::hex << mask << " x " << x;
            ASSERT_EQ(plan.expand(x), expandRef(x, mask))
                << "mask " << std::hex << mask << " x " << x;
        }
    }
}

TEST(BitCompressPlan, StrideMasksRoundTrip)
{
    Rng rng(7);
    for (size_t stride : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        BitCompressPlan plan(strideMask64(stride));
        for (int t = 0; t < 100; ++t) {
            const uint64_t x = rng.next();
            // compress(expand(low bits)) is the identity on the low bits.
            const uint64_t low =
                plan.count() < 64 ? x & ((uint64_t(1) << plan.count()) - 1)
                                  : x;
            EXPECT_EQ(plan.compress(plan.expand(low)), low);
            // expand(compress(x)) keeps exactly the masked bits.
            EXPECT_EQ(plan.expand(plan.compress(x)), x & plan.mask());
        }
    }
}

TEST(BitCompressPlan, EdgeMasks)
{
    BitCompressPlan zero(0);
    EXPECT_EQ(zero.count(), 0u);
    EXPECT_EQ(zero.compress(~uint64_t(0)), 0u);
    EXPECT_EQ(zero.expand(~uint64_t(0)), 0u);

    BitCompressPlan all(~uint64_t(0));
    EXPECT_EQ(all.count(), 64u);
    EXPECT_EQ(all.compress(0x123456789abcdef0ull), 0x123456789abcdef0ull);
    EXPECT_EQ(all.expand(0x123456789abcdef0ull), 0x123456789abcdef0ull);

    BitCompressPlan top(uint64_t(1) << 63);
    EXPECT_EQ(top.compress(~uint64_t(0)), 1u);
    EXPECT_EQ(top.expand(1), uint64_t(1) << 63);
}

// --- BitVector word-level additions & small-buffer storage ---------

TEST(BitVectorWords, SetBitsSubWordEdges)
{
    BitVector v(100);
    v.setBits(0, 0xFF, 8);
    EXPECT_EQ(v.toUint64(0, 8), 0xFFu);
    // Straddles the word 0 / word 1 boundary.
    v.setBits(60, 0b1011, 4);
    EXPECT_EQ(v.toUint64(60, 4), 0b1011u);
    // Truncated at the end of the vector.
    v.setBits(96, 0xFF, 8);
    EXPECT_EQ(v.toUint64(96, 4), 0xFu);
    EXPECT_EQ(v.size(), 100u);
    // Value bits above len must be masked off.
    BitVector w(64);
    w.setBits(4, ~uint64_t(0), 4);
    EXPECT_EQ(w.popcount(), 4u);
}

TEST(BitVectorWords, ToUint64AcrossWordBoundary)
{
    Rng rng(8);
    const BitVector v = randomVector(rng, 200);
    for (size_t pos : {0u, 1u, 37u, 63u, 64u, 65u, 130u, 190u}) {
        for (size_t len : {1u, 8u, 33u, 64u}) {
            uint64_t expect = 0;
            const size_t n = std::min(len, v.size() - pos);
            for (size_t i = 0; i < n; ++i)
                expect |= uint64_t(v.get(pos + i)) << i;
            ASSERT_EQ(v.toUint64(pos, len), expect)
                << "pos " << pos << " len " << len;
        }
    }
}

TEST(BitVectorWords, SetSliceMatchesBitLoop)
{
    Rng rng(9);
    for (size_t pos : {0u, 5u, 64u, 70u, 127u}) {
        for (size_t len : {1u, 7u, 64u, 72u, 150u}) {
            BitVector dst = randomVector(rng, 300);
            BitVector ref = dst;
            const BitVector src = randomVector(rng, len);
            dst.setSlice(pos, src);
            for (size_t i = 0; i < len; ++i)
                ref.set(pos + i, src.get(i));
            ASSERT_EQ(dst, ref) << "pos " << pos << " len " << len;
        }
    }
}

TEST(BitVectorStorage, CopyAndMoveAcrossInlineBoundary)
{
    Rng rng(10);
    // 320 bits is the inline capacity; 321+ spills to the heap.
    for (size_t nbits : {64u, 320u, 321u, 1024u}) {
        const BitVector orig = randomVector(rng, nbits);

        BitVector copy(orig);
        EXPECT_EQ(copy, orig);

        BitVector moved(std::move(copy));
        EXPECT_EQ(moved, orig);

        BitVector assigned;
        assigned = orig;
        EXPECT_EQ(assigned, orig);

        BitVector moveAssigned;
        moveAssigned = std::move(moved);
        EXPECT_EQ(moveAssigned, orig);

        // Assigning into a previously-heap vector must reuse/shrink
        // correctly in both directions.
        BitVector big = randomVector(rng, 1000);
        big = orig;
        EXPECT_EQ(big, orig);
        BitVector small = randomVector(rng, 10);
        small = orig;
        EXPECT_EQ(small, orig);
    }
}

TEST(BitVectorStorage, GrowthAcrossInlineBoundaryPreservesContent)
{
    Rng rng(11);
    BitVector v;
    std::string expect;
    for (int i = 0; i < 400; ++i) {
        const bool bit = rng.nextBool();
        v.pushBack(bit);
        expect.push_back(bit ? '1' : '0');
    }
    EXPECT_EQ(v.size(), 400u);
    EXPECT_EQ(v.toString(), expect);

    BitVector a = randomVector(rng, 300);
    const BitVector b = randomVector(rng, 300);
    const BitVector aCopy = a;
    a.append(b);
    ASSERT_EQ(a.size(), 600u);
    EXPECT_EQ(a.slice(0, 300), aCopy);
    EXPECT_EQ(a.slice(300, 300), b);
}

} // namespace
} // namespace tdc
