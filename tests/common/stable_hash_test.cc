/**
 * @file
 * StableHash contract: the digest is a pure, platform-independent
 * function of the framed update stream. The pinned digests below ARE
 * the on-disk cache-key format — if one of these changes, every
 * existing cache entry silently misses, so a change here must come
 * with a ResultCache::kFormatVersion bump.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/stable_hash.hh"

namespace tdc
{
namespace
{

TEST(StableHash, PinnedDigests)
{
    // Frozen values: recomputing them on any platform/compiler must
    // reproduce these exact hex strings (they name cache entry files).
    EXPECT_EQ(stableHash("").hex(), "2f357d9da874ef25e6a2f96e333f4330");
    EXPECT_EQ(stableHash("abc").hex(),
              "4730fcce876be31992d174c455838a74");
    EXPECT_EQ(stableHash("inject|scheme=2d:edc8/i4+vp32|fault=32x32|"
                         "trials=100|seed=12345")
                  .hex(),
              "2bc1b95a986c37461595415273df2231");
    // Self-consistency across incremental and one-shot hashing.
    StableHash h;
    h.update(std::string_view("abc"));
    EXPECT_EQ(h.digest().hex(), "4730fcce876be31992d174c455838a74");
}

TEST(StableHash, FramingSeparatesConcatenations)
{
    // "ab" + "c" must differ from "abc" (typed updates are framed), so
    // structurally different keys can never collide by concatenation.
    StableHash split;
    split.update(std::string_view("ab"));
    split.update(std::string_view("c"));
    StableHash whole;
    whole.update(std::string_view("abc"));
    EXPECT_NE(split.digest().hex(), whole.digest().hex());
}

TEST(StableHash, TypedUpdatesAreDistinct)
{
    // The integer 1, the double 1.0, and the string "1" hash apart.
    StableHash as_int, as_double, as_string;
    as_int.update(uint64_t(1));
    as_double.update(1.0);
    as_string.update(std::string_view("1"));
    EXPECT_NE(as_int.digest().hex(), as_double.digest().hex());
    EXPECT_NE(as_int.digest().hex(), as_string.digest().hex());
    EXPECT_NE(as_double.digest().hex(), as_string.digest().hex());
}

TEST(StableHash, DoubleHashingIsBitExact)
{
    // 0.0 and -0.0 have different bit patterns, so they hash apart —
    // the cache stores IEEE-754 payloads, not numeric equivalence
    // classes.
    StableHash pos, neg;
    pos.update(0.0);
    neg.update(-0.0);
    EXPECT_NE(pos.digest().hex(), neg.digest().hex());
}

TEST(StableHash, HexRoundTripsDigestFields)
{
    const StableDigest d = stableHash("round-trip");
    const std::string hex = d.hex();
    ASSERT_EQ(hex.size(), 32u);
    // hi is the first 16 hex chars, lo the last 16.
    EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  (unsigned long long)d.hi, (unsigned long long)d.lo);
    EXPECT_EQ(hex, buf);
}

TEST(StableHash, AvalanchesOnSmallKeyChanges)
{
    // One-character key edits flip about half the digest bits.
    const StableDigest a = stableHash("trials=100");
    const StableDigest b = stableHash("trials=101");
    const uint64_t diff_hi = a.hi ^ b.hi;
    const uint64_t diff_lo = a.lo ^ b.lo;
    const int bits = __builtin_popcountll(diff_hi) +
                     __builtin_popcountll(diff_lo);
    EXPECT_GT(bits, 32);
    EXPECT_LT(bits, 96);
}

} // namespace
} // namespace tdc
