#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"

namespace tdc
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(7), 7u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(6);
    int seen[5] = {};
    for (int i = 0; i < 1000; ++i)
        ++seen[rng.nextBelow(5)];
    for (int count : seen)
        EXPECT_GT(count, 100); // ~200 expected per bucket
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(8);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMean)
{
    Rng rng(10);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += rng.nextExponential(2.0);
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, PoissonSmallMean)
{
    Rng rng(12);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += double(rng.nextPoisson(3.5));
    EXPECT_NEAR(sum / 20000.0, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesApproximation)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 5000; ++i)
        sum += double(rng.nextPoisson(500.0));
    EXPECT_NEAR(sum / 5000.0, 500.0, 3.0);
}

TEST(Rng, PoissonZeroMean)
{
    Rng rng(14);
    EXPECT_EQ(rng.nextPoisson(0.0), 0u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(15);
    double sum = 0, sumsq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sumsq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

} // namespace
} // namespace tdc
