/**
 * @file
 * The lifetime/FIT engine contract:
 *  - FIT-mix specs round-trip canonically and malformed specs throw
 *    with the offending token quoted;
 *  - event timelines are pure functions of (mix, mission, seed),
 *    ordered, in-range, and scale with the acceleration factor;
 *  - runLifetime is bit-identical at TDC_THREADS {1, 2, 4, 8} and
 *    equals a serial oracle that re-implements the documented trial
 *    loop through the public API;
 *  - cachedSchemeLifetime replays from the result cache exactly;
 *  - more scrubbing and more spares never make MTTF worse (the
 *    paired-event-history monotonicity the figure tables rely on).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "reliability/lifetime.hh"
#include "reliability/result_cache.hh"
#include "scheme/scheme.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

LifetimeParams
baseParams(double scrub_hours, int spares)
{
    LifetimeParams p;
    p.mix = parseFitMix("jaguar*10000");
    p.missionHours = 5.0 * 8760.0;
    p.scrubIntervalHours = scrub_hours;
    p.spareRows = spares;
    p.trials = 32;
    p.seed = 4242;
    return p;
}

LifetimeResult
runScheme(const std::string &spec, const LifetimeParams &base)
{
    const SchemePtr scheme = parseScheme(spec);
    LifetimeParams p = base;
    p.schemeSpec = scheme->spec();
    return runLifetime(p, [&](uint64_t seed) {
        return scheme->openLifetimeSession(seed);
    });
}

TEST(FitMix, SpecsRoundTripCanonically)
{
    EXPECT_EQ(parseFitMix("jaguar").spec(), "jaguar");
    EXPECT_EQ(parseFitMix("jaguar*10000").spec(), "jaguar*10000");
    EXPECT_EQ(parseFitMix("single*2.5").spec(), "single*2.5");
    // Scientific notation is accepted and re-spelled exactly.
    EXPECT_EQ(parseFitMix("transient*1e4").spec(), "transient*10000");
}

TEST(FitMix, JaguarRatesMatchThePublishedMix)
{
    const FitMix mix = jaguarFitMix();
    ASSERT_EQ(mix.classes.size(), 7u);
    EXPECT_NEAR(mix.totalFitTransient(), 19.2, 1e-9);
    EXPECT_NEAR(mix.totalFitPermanent(), 46.9, 1e-9);
    EXPECT_NEAR(mix.totalFit(), 66.1, 1e-9);
}

TEST(FitMix, RestrictedMixesZeroTheOtherPersistence)
{
    EXPECT_DOUBLE_EQ(parseFitMix("transient").totalFitPermanent(), 0.0);
    EXPECT_GT(parseFitMix("transient").totalFitTransient(), 0.0);
    EXPECT_DOUBLE_EQ(parseFitMix("permanent").totalFitTransient(), 0.0);
    EXPECT_GT(parseFitMix("permanent").totalFitPermanent(), 0.0);
}

TEST(FitMix, MalformedSpecsQuoteTheToken)
{
    try {
        parseFitMix("bogus*3");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("\"bogus*3\""),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(parseFitMix("jaguar*0"), std::invalid_argument);
    EXPECT_THROW(parseFitMix("jaguar*-2"), std::invalid_argument);
    EXPECT_THROW(parseFitMix("jaguar*nope"), std::invalid_argument);
    EXPECT_THROW(parseFitMix(""), std::invalid_argument);
}

TEST(LifetimeTimeline, PureFunctionOfMixMissionSeed)
{
    const FitMix mix = parseFitMix("jaguar*10000");
    const std::vector<LifetimeEvent> a =
        drawEventTimeline(mix, 43800.0, 77);
    const std::vector<LifetimeEvent> b =
        drawEventTimeline(mix, 43800.0, 77);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].hours, b[i].hours);
        EXPECT_EQ(a[i].classIndex, b[i].classIndex);
        EXPECT_EQ(a[i].hard, b[i].hard);
    }
    EXPECT_FALSE(a.empty());
    double prev = 0.0;
    for (const LifetimeEvent &ev : a) {
        EXPECT_GE(ev.hours, prev);
        EXPECT_LT(ev.hours, 43800.0);
        EXPECT_LT(ev.classIndex, mix.classes.size());
        prev = ev.hours;
    }
}

TEST(LifetimeTimeline, EventCountTracksTheAcceleration)
{
    const double mission = 43800.0;
    const FitMix mix = parseFitMix("jaguar*10000");
    const double expected = mix.eventsPerHour() * mission; // ~29
    const double n =
        double(drawEventTimeline(mix, mission, 11).size());
    EXPECT_GT(n, expected * 0.5);
    EXPECT_LT(n, expected * 1.5);
    // An empty mission draws nothing.
    EXPECT_TRUE(drawEventTimeline(mix, 0.0, 11).empty());
}

TEST(LifetimeEngine, BitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const LifetimeResult one =
        runScheme("conv:secded/i4/r64", baseParams(168.0, 2));
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        const LifetimeResult again =
            runScheme("conv:secded/i4/r64", baseParams(168.0, 2));
        EXPECT_EQ(again, one) << threads;
    }
}

TEST(LifetimeEngine, MatchesASerialOracle)
{
    // Re-implement the documented trial loop through the public API:
    // timeline and golden fill from the kSeedDomainLifetime streams,
    // event k's coordinates from the kSeedDomainInjection stream
    // counted by event index, windows batched by floor(hours / T),
    // failure clock = the failing window's first arrival, spare repair
    // (most-stuck first, ties to the low row) after clean scrubs only.
    const SchemePtr scheme = parseScheme("conv:secded/i4/r64");
    LifetimeParams p = baseParams(168.0, 2);
    p.schemeSpec = scheme->spec();

    LifetimeResult oracle;
    for (int t = 0; t < p.trials; ++t) {
        const uint64_t trial_seed = shardSeed(p.seed, uint64_t(t));
        const std::vector<LifetimeEvent> timeline = drawEventTimeline(
            p.mix, p.missionHours,
            shardSeed(trial_seed, kSeedDomainLifetime, 0));
        ++oracle.trials;
        oracle.events += int64_t(timeline.size());
        double observed = p.missionHours;
        bool due = false, sdc = false;
        if (!timeline.empty()) {
            std::unique_ptr<DeviceSession> dev =
                scheme->openLifetimeSession(
                    shardSeed(trial_seed, kSeedDomainLifetime, 1));
            int spares = p.spareRows;
            size_t i = 0;
            while (i < timeline.size()) {
                size_t j = i + 1;
                const uint64_t window = uint64_t(
                    timeline[i].hours / p.scrubIntervalHours);
                while (j < timeline.size() &&
                       uint64_t(timeline[j].hours /
                                p.scrubIntervalHours) == window)
                    ++j;
                for (size_t k = i; k < j; ++k) {
                    FaultModel fault =
                        p.mix.classes[timeline[k].classIndex].shape;
                    fault.persistence =
                        timeline[k].hard ? FaultPersistence::kStuckAt
                                         : FaultPersistence::kTransient;
                    Rng rng(shardSeed(trial_seed, kSeedDomainInjection,
                                      uint64_t(k)));
                    dev->inject(fault, rng);
                    oracle.hardEvents += timeline[k].hard;
                }
                ++oracle.scrubs;
                const DeviceSession::Verdict v = dev->scrubAndVerify();
                const int64_t batch = int64_t(j - i);
                if (v == DeviceSession::Verdict::kCorrected)
                    oracle.correctedEvents += batch;
                else if (v == DeviceSession::Verdict::kDue)
                    oracle.dueEvents += batch;
                else
                    oracle.sdcEvents += batch;
                if (v != DeviceSession::Verdict::kCorrected) {
                    due = v == DeviceSession::Verdict::kDue;
                    sdc = v == DeviceSession::Verdict::kSdc;
                    observed = timeline[i].hours;
                    break;
                }
                if (spares > 0) {
                    std::vector<std::pair<size_t, size_t>> stuck =
                        dev->stuckRows();
                    std::sort(stuck.begin(), stuck.end(),
                              [](const auto &a, const auto &b) {
                                  return a.second != b.second
                                             ? a.second > b.second
                                             : a.first < b.first;
                              });
                    for (const auto &[row, count] : stuck) {
                        if (spares == 0)
                            break;
                        dev->repairRow(row);
                        --spares;
                        ++oracle.repairs;
                    }
                }
                i = j;
            }
        }
        oracle.survived += !due && !sdc;
        oracle.dueTrials += due;
        oracle.sdcTrials += sdc;
        oracle.deviceHours += observed;
    }

    ThreadGuard guard;
    setParallelThreads(4);
    const LifetimeResult engine =
        runLifetime(p, [&](uint64_t seed) {
            return scheme->openLifetimeSession(seed);
        });
    EXPECT_EQ(engine, oracle);
}

TEST(LifetimeEngine, MoreScrubbingIsNeverWorse)
{
    // Nested intervals (720 = 30 * 24; 0 refines everything) over the
    // same event histories: shrinking the accumulation window can only
    // move failures later or prevent them.
    const LifetimeResult monthly =
        runScheme("conv:secded/i4/r64", baseParams(720.0, 0));
    const LifetimeResult daily =
        runScheme("conv:secded/i4/r64", baseParams(24.0, 0));
    const LifetimeResult per_event =
        runScheme("conv:secded/i4/r64", baseParams(0.0, 0));
    EXPECT_LE(daily.failures(), monthly.failures());
    EXPECT_LE(per_event.failures(), daily.failures());
    EXPECT_GE(daily.deviceHours, monthly.deviceHours);
    EXPECT_GE(per_event.deviceHours, daily.deviceHours);
}

TEST(LifetimeEngine, MoreSparesAreNeverWorse)
{
    const LifetimeResult none =
        runScheme("conv:secded/i4/r64", baseParams(168.0, 0));
    const LifetimeResult some =
        runScheme("conv:secded/i4/r64", baseParams(168.0, 2));
    const LifetimeResult many =
        runScheme("conv:secded/i4/r64", baseParams(168.0, 8));
    EXPECT_LE(some.failures(), none.failures());
    EXPECT_LE(many.failures(), some.failures());
    EXPECT_GE(some.deviceHours, none.deviceHours);
    EXPECT_GE(many.deviceHours, some.deviceHours);
    EXPECT_GE(many.repairs, some.repairs);
    EXPECT_EQ(none.repairs, 0);
    // The shared timeline makes the comparison paired, not just
    // statistical: every configuration faced identical arrivals (and a
    // longer-lived device can only inject more of its timeline).
    EXPECT_EQ(none.events, many.events);
    EXPECT_GE(some.hardEvents, none.hardEvents);
    EXPECT_GE(many.hardEvents, some.hardEvents);
}

TEST(LifetimeEngine, EverySchemeFamilyOpensASession)
{
    for (const std::string spec :
         {"conv:secded/i4/r64", "wt:edc8/i4/r64", "2d:edc8/i4+vp32/r64",
          "prod:64x64"}) {
        LifetimeParams p = baseParams(168.0, 0);
        p.trials = 8;
        const LifetimeResult res = runScheme(spec, p);
        EXPECT_EQ(res.trials, 8) << spec;
        EXPECT_GT(res.events, 0) << spec;
        EXPECT_GT(res.scrubs, 0) << spec;
        EXPECT_GT(res.deviceHours, 0.0) << spec;
    }
}

TEST(LifetimeEngine, CachedEqualsDirect)
{
    resultCache().setDirectory("");
    resultCache().clearMemory();
    resultCache().resetStats();

    const SchemePtr scheme = parseScheme("2d:edc8/i4+vp32/r64");
    LifetimeParams p = baseParams(168.0, 0);
    p.trials = 12;
    p.schemeSpec = scheme->spec();
    const LifetimeResult direct = runLifetime(p, [&](uint64_t seed) {
        return scheme->openLifetimeSession(seed);
    });

    const LifetimeResult cold = cachedSchemeLifetime(*scheme, p);
    EXPECT_EQ(cold, direct);
    EXPECT_GE(resultCache().stats().misses, 1u);

    const LifetimeResult warm = cachedSchemeLifetime(*scheme, p);
    EXPECT_EQ(warm, direct);
    EXPECT_GE(resultCache().stats().memoryHits, 1u);
    resultCache().clearMemory();
}

TEST(LifetimeEngine, CacheKeyNamesEveryAxis)
{
    LifetimeParams p = baseParams(168.0, 3);
    p.schemeSpec = "conv:secded/i4/r64";
    const std::string key = lifetimeCacheKey(p);
    EXPECT_NE(key.find("lifetime|"), std::string::npos);
    EXPECT_NE(key.find("scheme=conv:secded/i4/r64"), std::string::npos);
    EXPECT_NE(key.find("mix=jaguar*10000"), std::string::npos);
    EXPECT_NE(key.find("scrub=168"), std::string::npos);
    EXPECT_NE(key.find("spares=3"), std::string::npos);
    EXPECT_NE(key.find("trials=32"), std::string::npos);
    EXPECT_NE(key.find("seed=4242"), std::string::npos);
    // Every axis changes the key.
    for (const auto &mutate :
         std::vector<std::function<void(LifetimeParams &)>>{
             [](LifetimeParams &q) { q.schemeSpec = "prod:64x64"; },
             [](LifetimeParams &q) { q.mix = parseFitMix("single"); },
             [](LifetimeParams &q) { q.missionHours = 100.0; },
             [](LifetimeParams &q) { q.scrubIntervalHours = 0.0; },
             [](LifetimeParams &q) { q.spareRows = 0; },
             [](LifetimeParams &q) { q.trials = 1; },
             [](LifetimeParams &q) { q.seed = 1; }}) {
        LifetimeParams q = p;
        mutate(q);
        EXPECT_NE(lifetimeCacheKey(q), key);
    }
}

TEST(LifetimeResultMath, EstimatorsHandleTheEdges)
{
    LifetimeResult r;
    EXPECT_EQ(r.failures(), 0);
    EXPECT_TRUE(std::isinf(r.mttfHours()));
    EXPECT_EQ(r.fit(), 0.0);
    EXPECT_EQ(r.survivalRate(), 1.0);
    EXPECT_EQ(r.summary().find("mttf inf"), 0u);

    r.trials = 4;
    r.survived = 2;
    r.dueTrials = 1;
    r.sdcTrials = 1;
    r.deviceHours = 2000.0;
    EXPECT_EQ(r.failures(), 2);
    EXPECT_DOUBLE_EQ(r.mttfHours(), 1000.0);
    EXPECT_DOUBLE_EQ(r.fit(), 2e9 / 2000.0);
    EXPECT_DOUBLE_EQ(r.survivalRate(), 0.5);
    EXPECT_NE(r.summary().find("(2/4)"), std::string::npos);
}

} // namespace
} // namespace tdc
