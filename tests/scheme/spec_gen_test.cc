/**
 * @file
 * Spec-pattern expansion contract (--optimize grids): brace groups
 * expand deterministically (leftmost varies slowest), range steps
 * behave, malformed patterns throw std::invalid_argument quoting the
 * offending token, and multi-pattern expansion dedupes.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "scheme/spec_gen.hh"

namespace tdc
{
namespace
{

using Specs = std::vector<std::string>;

TEST(SpecGen, NoGroupsExpandsToItself)
{
    EXPECT_EQ(expandSpecPattern("conv:secded/i4"),
              Specs{"conv:secded/i4"});
}

TEST(SpecGen, AlternativesExpandInOrder)
{
    EXPECT_EQ(expandSpecPattern("2d:edc{8,16,32}/i4"),
              (Specs{"2d:edc8/i4", "2d:edc16/i4", "2d:edc32/i4"}));
}

TEST(SpecGen, CartesianProductLeftmostVariesSlowest)
{
    EXPECT_EQ(expandSpecPattern("a{1,2}b{3,4}"),
              (Specs{"a1b3", "a1b4", "a2b3", "a2b4"}));
}

TEST(SpecGen, UnitRange)
{
    EXPECT_EQ(expandSpecPattern("i{2..5}"),
              (Specs{"i2", "i3", "i4", "i5"}));
    EXPECT_EQ(expandSpecPattern("i{7..7}"), Specs{"i7"});
}

TEST(SpecGen, AdditiveStepRange)
{
    EXPECT_EQ(expandSpecPattern("vp{16..64..+16}"),
              (Specs{"vp16", "vp32", "vp48", "vp64"}));
    // A step overshooting hi stops before it.
    EXPECT_EQ(expandSpecPattern("w{1..10..+4}"),
              (Specs{"w1", "w5", "w9"}));
}

TEST(SpecGen, MultiplicativeStepRange)
{
    EXPECT_EQ(expandSpecPattern("i{1..8..x2}"),
              (Specs{"i1", "i2", "i4", "i8"}));
    EXPECT_EQ(expandSpecPattern("vp{16..64..x2}"),
              (Specs{"vp16", "vp32", "vp64"}));
}

TEST(SpecGen, ThreeGroupGridMatchesIssueExample)
{
    // The flagship --optimize example: 3 x 5 x 3 = 45 specs.
    const Specs specs = expandSpecPattern(
        "2d:edc{8,16,32}/i{1,2,4,8,16}+vp{16,32,64}");
    EXPECT_EQ(specs.size(), 45u);
    EXPECT_EQ(specs.front(), "2d:edc8/i1+vp16");
    EXPECT_EQ(specs.back(), "2d:edc32/i16+vp64");
}

TEST(SpecGen, MultiPatternDedupes)
{
    const Specs specs = expandSpecPatterns(
        {"2d:edc8/i{2,4}+vp32", "2d:edc8/i{4,8}+vp32"});
    EXPECT_EQ(specs, (Specs{"2d:edc8/i2+vp32", "2d:edc8/i4+vp32",
                            "2d:edc8/i8+vp32"}));
}

/** EXPECT that expanding @p pattern throws quoting @p token. */
void
expectPatternError(const std::string &pattern, const std::string &token)
{
    try {
        expandSpecPattern(pattern);
        FAIL() << "pattern \"" << pattern << "\" should have thrown";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
            << "error \"" << e.what() << "\" does not quote \"" << token
            << "\"";
    }
}

TEST(SpecGen, MalformedPatternsQuoteTheOffendingToken)
{
    expectPatternError("2d:edc{8,16", "{");
    expectPatternError("2d:edc8}/i4", "}");
    expectPatternError("2d:edc{}/i4", "{}");
    expectPatternError("2d:edc{8,,16}/i4", "{8,,16}");
    expectPatternError("i{4..2}", "{4..2}");
    expectPatternError("i{a..4}", "{a..4}");
    expectPatternError("i{1..4..x1}", "{1..4..x1}");
    expectPatternError("i{1..4..*2}", "{1..4..*2}");
    expectPatternError("i{1..4..+0}", "{1..4..+0}");
    expectPatternError("", "empty");
}

TEST(SpecGen, GridLimitGuards)
{
    // 256 * 256 * 256 > 65536 must be rejected, not expanded.
    expectPatternError("a{1..256}b{1..256}c{1..256}", "grid limit");
}

} // namespace
} // namespace tdc
