/**
 * @file
 * The cached-injection contract that makes the result cache safe:
 *  - cachedInjectAndRecover returns exactly what a direct
 *    injectAndRecover call returns (cold, warm-from-memory, and
 *    warm-from-disk);
 *  - FaultModel::spec() round-trips through parseFaultModel for every
 *    grammar-representable model and distinguishes the non-grammar
 *    variants (anchored, stuck-at), so distinct fault models can never
 *    share a cache entry;
 *  - injectionCacheKey separates every key axis.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "reliability/result_cache.hh"
#include "scheme/scheme.hh"

namespace tdc
{
namespace
{

namespace fs = std::filesystem;

TEST(CachedInjection, MatchesDirectCallColdAndWarm)
{
    const SchemePtr scheme = parseScheme("2d:edc8/i4+vp32");
    const FaultModel fault = parseFaultModel("16x16");
    const InjectionOutcome direct =
        scheme->injectAndRecover(fault, 40, 777);

    const InjectionOutcome cold =
        cachedInjectAndRecover(*scheme, fault, 40, 777);
    const InjectionOutcome warm =
        cachedInjectAndRecover(*scheme, fault, 40, 777);
    EXPECT_EQ(cold, direct);
    EXPECT_EQ(warm, direct);
}

TEST(CachedInjection, DiskRoundTripIsExact)
{
    const fs::path dir =
        fs::temp_directory_path() / "tdc_cached_injection_test";
    fs::remove_all(dir);

    ResultCache cache(dir.string());
    const SchemePtr scheme = parseScheme("conv:secded/i2");
    const FaultModel fault = parseFaultModel("row:8");
    const InjectionOutcome direct =
        scheme->injectAndRecover(fault, 25, 42);

    const std::string key =
        injectionCacheKey(scheme->spec(), fault.spec(), 25, 42);
    cache.outcome(key,
                  [&] { return scheme->injectAndRecover(fault, 25, 42); });
    cache.clearMemory(); // force the disk tier
    const InjectionOutcome reloaded = cache.outcome(key, [&] {
        ADD_FAILURE() << "expected a disk hit";
        return InjectionOutcome{};
    });
    EXPECT_EQ(reloaded, direct);
    fs::remove_all(dir);
}

TEST(CachedInjection, KeySeparatesEveryAxis)
{
    const std::string base =
        injectionCacheKey("2d:edc8/i4+vp32", "32x32", 100, 1);
    EXPECT_NE(base, injectionCacheKey("2d:edc8/i2+vp32", "32x32", 100, 1));
    EXPECT_NE(base, injectionCacheKey("2d:edc8/i4+vp32", "16x16", 100, 1));
    EXPECT_NE(base, injectionCacheKey("2d:edc8/i4+vp32", "32x32", 101, 1));
    EXPECT_NE(base, injectionCacheKey("2d:edc8/i4+vp32", "32x32", 100, 2));
}

TEST(FaultModelSpec, RoundTripsEveryGrammarForm)
{
    for (const char *spec :
         {"single", "row:32", "col:8", "32x32", "16x16@0.5", "8x4@0.25",
          "fullrow", "fullcol"}) {
        const FaultModel m = parseFaultModel(spec);
        EXPECT_EQ(m.spec(), spec) << "canonical form drifted";
        // And the canonical form re-parses to the same canonical form.
        EXPECT_EQ(parseFaultModel(m.spec()).spec(), m.spec());
    }
}

TEST(FaultModelSpec, DensityPrintsWithRoundTripPrecision)
{
    FaultModel m = FaultModel::cluster(8, 8, 1.0 / 3.0);
    const FaultModel reparsed = parseFaultModel(m.spec());
    EXPECT_EQ(reparsed.density, m.density)
        << "density must survive spec() exactly, got " << m.spec();
}

TEST(FaultModelSpec, NonGrammarVariantsAreDistinguished)
{
    FaultModel anchored = FaultModel::cluster(8, 8);
    FaultModel plain = FaultModel::cluster(8, 8);
    anchored.rowLo = 3;
    anchored.colLo = 5;
    EXPECT_NE(anchored.spec(), plain.spec());
    EXPECT_NE(anchored.spec().find("@3,5"), std::string::npos)
        << anchored.spec();

    FaultModel hard = FaultModel::singleBit();
    hard.persistence = FaultPersistence::kStuckAt;
    EXPECT_NE(hard.spec(), FaultModel::singleBit().spec());
    EXPECT_NE(hard.spec().find("hard"), std::string::npos) << hard.spec();
}

} // namespace
} // namespace tdc
