/**
 * @file
 * Lifetime monotonicity for chipkill sessions, the paired-seed form of
 * the PR 9 suite: every configuration in a comparison faces the exact
 * same event timelines (same trial seeds), so more spare chips or a
 * shorter scrub interval can never be worse — as an identity on the
 * shared histories, not a statistical tendency.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/parallel.hh"
#include "reliability/lifetime.hh"
#include "scheme/scheme.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

LifetimeParams
dramParams(double scrub_hours, int spares)
{
    LifetimeParams p;
    p.mix = parseFitMix("jaguar*10000");
    p.missionHours = 5.0 * 8760.0;
    p.scrubIntervalHours = scrub_hours;
    p.spareRows = spares;
    p.trials = 24;
    p.seed = 90210;
    return p;
}

LifetimeResult
runDram(const std::string &spec, const LifetimeParams &base)
{
    const SchemePtr scheme = parseScheme(spec);
    LifetimeParams p = base;
    p.schemeSpec = scheme->spec();
    return runLifetime(p, [&](uint64_t seed) {
        return scheme->openLifetimeSession(seed);
    });
}

TEST(DramLifetime, EveryDramVariantOpensASession)
{
    for (const std::string spec :
         {"dram:chipkill/x4", "dram:iecc+chipkill/x8",
          "dram:chipkill/x4/cols"}) {
        LifetimeParams p = dramParams(168.0, 1);
        p.trials = 6;
        const LifetimeResult res = runDram(spec, p);
        EXPECT_EQ(res.trials, 6) << spec;
        EXPECT_GT(res.events, 0) << spec;
        EXPECT_GT(res.scrubs, 0) << spec;
        EXPECT_GT(res.deviceHours, 0.0) << spec;
    }
}

TEST(DramLifetime, MoreSpareChipsAreNeverWorse)
{
    const LifetimeResult none = runDram("dram:chipkill/x4",
                                        dramParams(168.0, 0));
    const LifetimeResult some = runDram("dram:chipkill/x4",
                                        dramParams(168.0, 2));
    const LifetimeResult many = runDram("dram:chipkill/x4",
                                        dramParams(168.0, 6));
    EXPECT_LE(some.failures(), none.failures());
    EXPECT_LE(many.failures(), some.failures());
    EXPECT_GE(some.deviceHours, none.deviceHours);
    EXPECT_GE(many.deviceHours, some.deviceHours);
    EXPECT_GE(many.repairs, some.repairs);
    EXPECT_EQ(none.repairs, 0);
    // Paired comparison: identical timelines, so event totals agree
    // and a longer-lived device only injects more of its own timeline.
    EXPECT_EQ(none.events, many.events);
    EXPECT_GE(some.hardEvents, none.hardEvents);
    EXPECT_GE(many.hardEvents, some.hardEvents);
}

TEST(DramLifetime, MoreScrubbingIsNeverWorse)
{
    const LifetimeResult monthly = runDram("dram:chipkill/x4",
                                           dramParams(720.0, 0));
    const LifetimeResult daily = runDram("dram:chipkill/x4",
                                         dramParams(24.0, 0));
    const LifetimeResult per_event = runDram("dram:chipkill/x4",
                                             dramParams(0.0, 0));
    EXPECT_LE(daily.failures(), monthly.failures());
    EXPECT_LE(per_event.failures(), daily.failures());
    EXPECT_GE(daily.deviceHours, monthly.deviceHours);
    EXPECT_GE(per_event.deviceHours, daily.deviceHours);
}

TEST(DramLifetime, IeccMonotonicityHoldsToo)
{
    const LifetimeResult none = runDram("dram:iecc+chipkill/x8",
                                        dramParams(168.0, 0));
    const LifetimeResult some = runDram("dram:iecc+chipkill/x8",
                                        dramParams(168.0, 4));
    EXPECT_LE(some.failures(), none.failures());
    EXPECT_GE(some.deviceHours, none.deviceHours);
    EXPECT_EQ(none.events, some.events);
}

TEST(DramLifetime, ColumnRepairMonotonicityAndGranularity)
{
    // /cols spends the budget column-by-column; monotonicity must hold
    // at that granularity as well (spares here count columns).
    const LifetimeResult none = runDram("dram:chipkill/x4/cols",
                                        dramParams(168.0, 0));
    const LifetimeResult some = runDram("dram:chipkill/x4/cols",
                                        dramParams(168.0, 8));
    EXPECT_LE(some.failures(), none.failures());
    EXPECT_GE(some.deviceHours, none.deviceHours);
    EXPECT_EQ(none.events, some.events);
    EXPECT_EQ(none.repairs, 0);
}

TEST(DramLifetime, BitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const LifetimeResult one = runDram("dram:chipkill/x4",
                                       dramParams(168.0, 2));
    for (unsigned threads : {2u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(runDram("dram:chipkill/x4", dramParams(168.0, 2)), one)
            << threads;
    }
}

} // namespace
} // namespace tdc
