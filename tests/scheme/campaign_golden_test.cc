/**
 * @file
 * Golden-value pins for the figure-campaign summary tables. The
 * expected strings below are the *pre-port* outputs of
 * bench_fig1/bench_fig2/bench_fig7 (verified byte-identical when the
 * benches moved onto the campaign driver), so these tests guarantee
 * (a) the port did not change a single cell and (b) future changes to
 * the cost/VLSI models or the campaign driver cannot silently drift
 * the published tables. CI runs this suite by name and fails if any
 * of it is skipped.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "scheme/figure_campaigns.hh"

namespace tdc
{
namespace
{

/**
 * Table cells are space-padded to the column width; the literals below
 * are stored without that invisible padding, so both sides are
 * normalized line-by-line before comparison. Every visible character
 * is still pinned exactly.
 */
std::string
stripTrailingSpaces(const std::string &text)
{
    std::istringstream is(text);
    std::string out, line;
    while (std::getline(is, line)) {
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        out += line;
        out += '\n';
    }
    return out;
}

#define EXPECT_TABLE_EQ(actual, expected) \
    EXPECT_EQ(stripTrailingSpaces(actual), stripTrailingSpaces(expected))

TEST(CampaignGoldenPins, Figure1StorageTable)
{
    EXPECT_TABLE_EQ(figure1StorageCampaign().render(),
              R"TBL(Code    HD  64b word  256b word
-------------------------------
EDC8    2   12.5%     3.1%
SECDED  4   12.5%     3.9%
DECTED  6   23.4%     7.4%
QECPED  10  45.3%     14.5%
OECNED  18  89.1%     28.5%
)TBL");
}

TEST(CampaignGoldenPins, Figure1EnergyTable)
{
    EXPECT_TABLE_EQ(figure1EnergyCampaign().render(),
              R"TBL(Code    64b word / 64kB array  256b word / 4MB array
----------------------------------------------------
EDC8    12.0%                  10.4%
SECDED  23.9%                  36.0%
DECTED  55.1%                  83.6%
QECPED  106.0%                 163.7%
OECNED  190.7%                 324.4%
)TBL");
}

TEST(CampaignGoldenPins, Figure2L1Table)
{
    EXPECT_TABLE_EQ(
        figure2EnergyCampaign(
            "--- Figure 2(b): 64kB cache, (72,64) SECDED words ---",
            64 * 1024, 64, 1)
            .render(),
        R"TBL(--- Figure 2(b): 64kB cache, (72,64) SECDED words ---

Degree  Delay-opt  Delay+Area-opt  Balanced  Power-opt
------------------------------------------------------
1:1     1.00       1.03            1.00      1.00
2:1     1.13       1.27            1.13      1.10
4:1     1.36       1.50            1.36      1.33
8:1     1.99       2.32            1.99      1.82
16:1    3.33       4.00            3.01      2.84
)TBL");
}

TEST(CampaignGoldenPins, Figure2L2Table)
{
    EXPECT_TABLE_EQ(
        figure2EnergyCampaign(
            "--- Figure 2(c): 4MB cache, (266,256) SECDED words, 8 "
            "banks ---",
            4 * 1024 * 1024, 256, 8)
            .render(),
        R"TBL(--- Figure 2(c): 4MB cache, (266,256) SECDED words, 8 banks ---

Degree  Delay-opt  Delay+Area-opt  Balanced  Power-opt
------------------------------------------------------
1:1     1.00       1.09            1.00      1.00
2:1     1.29       1.54            1.20      1.20
4:1     1.96       2.49            1.71      1.61
8:1     2.80       4.43            2.55      2.46
16:1    5.04       8.33            4.50      4.16
)TBL");
}

TEST(CampaignGoldenPins, Figure7L1Table)
{
    EXPECT_TABLE_EQ(
        figure7Campaign("--- Figure 7(a): 64kB L1 data cache (normalized "
                        "to SECDED+Intv2 = 100%) ---",
                        CacheGeometry::l1(),
                        {
                            "2d:edc8/i4+vp32",
                            "conv:dected/i16",
                            "conv:qecped/i8",
                            "conv:oecned/i4",
                            "wt:edc8/i4",
                        })
            .render(),
        R"TBL(--- Figure 7(a): 64kB L1 data cache (normalized to SECDED+Intv2 = 100%) ---

Scheme                  Code area  Coding latency  Dynamic power
----------------------------------------------------------------
2D(EDC8+Intv4,EDC32)    112%       58%             140%
DECTED+Intv16           188%       175%            283%
QECPED+Intv8            362%       300%            253%
OECNED+Intv4            712%       575%            272%
EDC8+Intv4(Wr-through)  100%       58%             237%
)TBL");
}

TEST(CampaignGoldenPins, Figure7L2Table)
{
    EXPECT_TABLE_EQ(
        figure7Campaign("--- Figure 7(b): 4MB L2 cache (normalized to "
                        "SECDED+Intv2 = 100%) ---",
                        CacheGeometry::l2(),
                        {
                            "2d:edc16/i2+vp32/w256",
                            "conv:dected/i16",
                            "conv:qecped/i8",
                            "conv:oecned/i4",
                        })
            .render(),
        R"TBL(--- Figure 7(b): 4MB L2 cache (normalized to SECDED+Intv2 = 100%) ---

Scheme                 Code area  Coding latency  Dynamic power
---------------------------------------------------------------
2D(EDC16+Intv2,EDC32)  170%       56%             120%
DECTED+Intv16          190%       162%            350%
QECPED+Intv8           370%       269%            288%
OECNED+Intv4           730%       500%            352%
)TBL");
}

} // namespace
} // namespace tdc
