/**
 * @file
 * Regression for non-dividing interleave degrees (i3): once served by
 * the per-bit fallback, now by the shared per-phase plan cache. The
 * specs must keep parsing and round-tripping, the recovery machinery
 * must behave, and the outcome must be identical on every dispatch
 * backend (the plans are the layer the BMI2 paths plug into).
 */

#include <gtest/gtest.h>

#include "common/cpu_features.hh"
#include "scheme/scheme.hh"

namespace tdc
{
namespace
{

TEST(InterleaveI3, ConvSpecRoundTripsAndRecoversOnEveryBackend)
{
    const SchemePtr scheme = parseScheme("conv:secded/i3/r16");
    EXPECT_EQ(scheme->spec(), "conv:secded/i3/r16");

    const FaultModel fault = parseFaultModel("2x2");
    InjectionOutcome ref;
    {
        ScopedSimdBackend scalar(SimdBackend::kScalar);
        ref = scheme->injectAndRecover(fault, 25, 7);
    }
    EXPECT_EQ(ref.trials, 25);
    EXPECT_EQ(ref.silent, 0);
    // 2x2 cluster under 3-way interleave: at most one flip per word
    // class pair — SECDED corrects it.
    EXPECT_EQ(ref.corrected, 25);

    for (SimdBackend b : {SimdBackend::kBmi2, SimdBackend::kAvx2}) {
        if (b > bestSimdBackend())
            continue;
        ScopedSimdBackend guard(b);
        const InjectionOutcome got = scheme->injectAndRecover(fault, 25, 7);
        EXPECT_EQ(got.trials, ref.trials);
        EXPECT_EQ(got.corrected, ref.corrected);
        EXPECT_EQ(got.detectedOnly, ref.detectedOnly);
        EXPECT_EQ(got.silent, ref.silent);
    }
}

TEST(InterleaveI3, TwoDimSpecRoundTripsAndRecovers)
{
    const SchemePtr scheme = parseScheme("2d:edc8/i3+vp8/r16");
    EXPECT_EQ(scheme->spec(), "2d:edc8/i3+vp8/r16");

    const FaultModel fault = parseFaultModel("3x3");
    InjectionOutcome ref;
    {
        ScopedSimdBackend scalar(SimdBackend::kScalar);
        ref = scheme->injectAndRecover(fault, 25, 11);
    }
    EXPECT_EQ(ref.trials, 25);
    EXPECT_EQ(ref.silent, 0);

    for (SimdBackend b : {SimdBackend::kBmi2, SimdBackend::kAvx2}) {
        if (b > bestSimdBackend())
            continue;
        ScopedSimdBackend guard(b);
        const InjectionOutcome got = scheme->injectAndRecover(fault, 25, 11);
        EXPECT_EQ(got.corrected, ref.corrected);
        EXPECT_EQ(got.detectedOnly, ref.detectedOnly);
        EXPECT_EQ(got.silent, ref.silent);
    }
}

} // namespace
} // namespace tdc
