/**
 * @file
 * The ProtectionScheme API contract:
 *  - every registered example spec parses, runs, and round-trips
 *    (parseScheme(s->spec()) reconstructs an equal scheme);
 *  - spec()/name() are canonical and single-sourced from
 *    codeKindName;
 *  - malformed specs and out-of-range degrees throw
 *    std::invalid_argument quoting the offending token;
 *  - injectAndRecover is a pure function of its arguments at every
 *    worker-pool size, with verdicts matching the coverage
 *    guarantees (ported from the pre-registry campaign tests);
 *  - the figure campaigns built on the registry stay bit-identical
 *    across thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hh"
#include "scheme/figure_campaigns.hh"
#include "scheme/scheme.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

TEST(SchemeRegistry, BuiltinFamiliesArePresent)
{
    std::vector<std::string> keys;
    for (const SchemeFamily &family : schemeFamilies())
        keys.push_back(family.key);
    EXPECT_NE(std::find(keys.begin(), keys.end(), "conv"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "2d"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "wt"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "prod"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "dram"), keys.end());
}

TEST(SchemeRegistry, EveryRegisteredExampleRoundTrips)
{
    const std::vector<std::string> examples = exampleSchemeSpecs();
    ASSERT_FALSE(examples.empty());
    for (const std::string &example : examples) {
        const SchemePtr s = parseScheme(example);
        ASSERT_NE(s, nullptr) << example;
        // parseScheme(s.spec()) == s: same canonical spec, same name,
        // same storage, same injection behaviour (spot-checked by the
        // determinism test below).
        const SchemePtr back = parseScheme(s->spec());
        EXPECT_EQ(back->spec(), s->spec()) << example;
        EXPECT_EQ(back->name(), s->name()) << example;
        EXPECT_DOUBLE_EQ(back->storageOverhead(), s->storageOverhead())
            << example;
        EXPECT_FALSE(s->name().empty()) << example;
    }
}

TEST(SchemeRegistry, CanonicalSpecOmitsDefaultGeometry)
{
    EXPECT_EQ(parseScheme("conv:secded/i4/w64/r256")->spec(),
              "conv:secded/i4");
    EXPECT_EQ(parseScheme("conv:SECDED/i4")->spec(), "conv:secded/i4");
    EXPECT_EQ(parseScheme("2d:edc8/i4")->spec(), "2d:edc8/i4+vp32");
    EXPECT_EQ(parseScheme("2d:edc8/i4/vp16")->spec(), "2d:edc8/i4+vp16");
    EXPECT_EQ(parseScheme("conv:secded/i2/w256")->spec(),
              "conv:secded/i2/w256");
}

TEST(SchemeRegistry, NamesComeFromCodeKindName)
{
    EXPECT_EQ(parseScheme("conv:secded/i4")->name(), "SECDED+Intv4");
    EXPECT_EQ(parseScheme("conv:oecned/i4")->name(), "OECNED+Intv4");
    EXPECT_EQ(parseScheme("2d:edc8/i4+vp32")->name(),
              "2D(EDC8+Intv4,EDC32)");
    EXPECT_EQ(parseScheme("2d:edc16/i2+vp32/w256")->name(),
              "2D(EDC16+Intv2,EDC32)");
    EXPECT_EQ(parseScheme("wt:edc8/i4")->name(), "EDC8+Intv4(Wr-through)");
    EXPECT_EQ(parseScheme("prod:256x256")->name(), "HVProd(256x256)");
}

TEST(SchemeRegistry, StorageOverheadsMatchTheBackends)
{
    EXPECT_NEAR(parseScheme("conv:secded/i4")->storageOverhead(), 0.125,
                1e-9);
    EXPECT_NEAR(parseScheme("prod:256x256")->storageOverhead(),
                512.0 / 65536.0, 1e-12);
    // 2D: horizontal EDC8 (12.5%) + 32/256 vertical rows = 25%.
    EXPECT_NEAR(parseScheme("2d:edc8/i4+vp32")->storageOverhead(), 0.25,
                1e-9);
}

TEST(SchemeRegistry, CostSpecSupport)
{
    EXPECT_TRUE(parseScheme("conv:dected/i16")->hasCostModel());
    EXPECT_TRUE(parseScheme("2d:edc8/i4+vp32")->hasCostModel());
    EXPECT_TRUE(parseScheme("wt:edc8/i4")->hasCostModel());
    EXPECT_FALSE(parseScheme("prod:64x64")->hasCostModel());
    EXPECT_THROW(parseScheme("prod:64x64")->costSpec(), std::logic_error);
    EXPECT_FALSE(parseScheme("dram:chipkill/x4")->hasCostModel());
    EXPECT_THROW(parseScheme("dram:chipkill/x4")->costSpec(),
                 std::logic_error);

    // The cost description matches the legacy SchemeSpec constructors
    // the golden-pinned Figure 7 tables were produced with.
    const SchemeSpec conv = parseScheme("conv:dected/i16")->costSpec();
    EXPECT_EQ(conv.style, SchemeStyle::kConventional);
    EXPECT_EQ(conv.horizontal, CodeKind::kDecTed);
    EXPECT_EQ(conv.interleave, 16u);
    const SchemeSpec twod = parseScheme("2d:edc8/i4+vp32")->costSpec();
    EXPECT_EQ(twod.style, SchemeStyle::kTwoDim);
    EXPECT_EQ(twod.verticalRows, 32u);
    const SchemeSpec wt = parseScheme("wt:edc8/i4")->costSpec();
    EXPECT_EQ(wt.style, SchemeStyle::kWriteThrough);
}

TEST(SchemeRegistry, RegisterSchemeExtendsAndReplaces)
{
    SchemeFamily family;
    family.key = "test-fam";
    family.grammar = "test-fam:<anything>";
    family.description = "unit-test family";
    family.examples = {"test-fam:x"};
    family.parse = [](const std::string &, const std::string &) {
        return makeProductCodeScheme(16, 16);
    };
    registerScheme(family);
    EXPECT_EQ(parseScheme("test-fam:anything")->name(), "HVProd(16x16)");

    // Re-registration replaces (last wins).
    family.parse = [](const std::string &, const std::string &) {
        return makeProductCodeScheme(32, 32);
    };
    registerScheme(family);
    EXPECT_EQ(parseScheme("test-fam:anything")->name(), "HVProd(32x32)");
}

TEST(SchemeErrors, MalformedSpecsThrowWithOffendingTokenQuoted)
{
    const auto expectThrow = [](const std::string &spec,
                                const std::string &quoted) {
        try {
            parseScheme(spec);
            FAIL() << "no throw for " << spec;
        } catch (const std::invalid_argument &e) {
            EXPECT_NE(std::string(e.what()).find(quoted),
                      std::string::npos)
                << spec << " -> " << e.what();
        }
    };

    // Family-level errors.
    expectThrow("secded", "missing \":\"");
    expectThrow("bogus:secded/i4", "\"bogus\"");
    // Unknown code / token.
    expectThrow("conv:edc9/i4", "\"edc9\"");
    expectThrow("conv:secded/i4/z9", "\"z9\"");
    // Missing or malformed numbers.
    expectThrow("conv:secded", "/i<deg>");
    expectThrow("conv:secded/i", "\"i\"");
    expectThrow("conv:secded/ix4", "\"ix4\"");
    // Out-of-range degrees and geometry.
    expectThrow("conv:secded/i0", "\"i0\"");
    expectThrow("conv:secded/i65", "\"i65\"");
    expectThrow("conv:secded/i4/w4", "\"w4\"");
    expectThrow("conv:secded/i4/r0", "\"r0\"");
    expectThrow("2d:edc8/i4+vp0", "\"vp0\"");
    expectThrow("2d:edc8/i4+vp512/r256", "vp512");
    // ...but the vp-vs-rows guard is a 2d-only constraint: small
    // conventional banks are fine (regression: the default vp=32 must
    // not be checked against conv/wt row counts).
    EXPECT_EQ(parseScheme("conv:secded/i4/r16")->spec(),
              "conv:secded/i4/r16");
    EXPECT_EQ(parseScheme("wt:edc8/i4/r8")->spec(), "wt:edc8/i4/r8");
    // EDC class-width mismatch.
    expectThrow("conv:edc32/i4/w40", "edc32");
    // Product-code geometry.
    expectThrow("prod:256", "\"256\"");
    expectThrow("prod:0x64", "\"0x64\"");
    expectThrow("prod:64x", "\"64x\"");
    expectThrow("prod:64x9999999", "\"64x9999999\"");
}

TEST(SchemeErrors, FaultModelSpecsThrowWithOffendingTokenQuoted)
{
    EXPECT_THROW(parseFaultModel("blob"), std::invalid_argument);
    EXPECT_THROW(parseFaultModel("0x4"), std::invalid_argument);
    EXPECT_THROW(parseFaultModel("4x"), std::invalid_argument);
    EXPECT_THROW(parseFaultModel("row:"), std::invalid_argument);
    EXPECT_THROW(parseFaultModel("col:abc"), std::invalid_argument);
    EXPECT_THROW(parseFaultModel("8x8@0"), std::invalid_argument);
    EXPECT_THROW(parseFaultModel("8x8@1.5"), std::invalid_argument);
    try {
        parseFaultModel("9x9x9");
        FAIL();
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("9x9x9"), std::string::npos);
    }

    // And the happy paths the campaigns rely on.
    EXPECT_EQ(parseFaultModel("32x32").describe(), "32x32");
    EXPECT_EQ(parseFaultModel("single").shape, FaultShape::kSingleBit);
    EXPECT_EQ(parseFaultModel("row:32").shape, FaultShape::kRowBurst);
    EXPECT_EQ(parseFaultModel("col:8").shape, FaultShape::kColumnBurst);
    EXPECT_EQ(parseFaultModel("fullrow").shape, FaultShape::kFullRow);
    EXPECT_EQ(parseFaultModel("fullcol").shape, FaultShape::kFullColumn);
    EXPECT_NEAR(parseFaultModel("16x16@0.5").density, 0.5, 1e-12);
}

TEST(SchemeInjection, IdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    const FaultModel fault = FaultModel::cluster(8, 8);
    for (const char *spec :
         {"conv:secded/i4/r64", "2d:edc8/i4+vp32", "prod:64x64"}) {
        const SchemePtr scheme = parseScheme(spec);
        setParallelThreads(1);
        const InjectionOutcome serial =
            scheme->injectAndRecover(fault, 8, 404);
        EXPECT_EQ(serial.trials, 8);
        EXPECT_EQ(serial.corrected + serial.detectedOnly + serial.silent,
                  serial.trials);
        for (unsigned threads : {2u, 4u, 8u}) {
            setParallelThreads(threads);
            EXPECT_EQ(scheme->injectAndRecover(fault, 8, 404), serial)
                << spec << " @ " << threads << " threads";
        }
    }
}

TEST(SchemeInjection, VerdictsMatchCoverageGuarantees)
{
    // Single-bit events: every scheme corrects them.
    const FaultModel single = FaultModel::singleBit();
    EXPECT_EQ(parseScheme("conv:secded/i4/r64")
                  ->injectAndRecover(single, 6, 1)
                  .verdict(),
              "corrected");
    EXPECT_EQ(parseScheme("2d:edc8/i4+vp32")
                  ->injectAndRecover(single, 6, 1)
                  .verdict(),
              "corrected");
    EXPECT_EQ(parseScheme("prod:64x64")
                  ->injectAndRecover(single, 6, 1)
                  .verdict(),
              "corrected");

    // A 2x2 block: in 2D coverage; ambiguous for the product code
    // (rectangular multi-bit patterns are the classic failure).
    const FaultModel block = FaultModel::cluster(2, 2);
    EXPECT_EQ(parseScheme("2d:edc8/i4+vp32")
                  ->injectAndRecover(block, 6, 2)
                  .verdict(),
              "corrected");
    EXPECT_EQ(
        parseScheme("prod:64x64")->injectAndRecover(block, 6, 2).corrected,
        0);

    // Beyond-coverage clusters on the 2D bank are detected, not
    // silent (the EDC8 horizontal always sees odd per-word flips).
    const InjectionOutcome wide =
        parseScheme("2d:edc8/i4+vp32")
            ->injectAndRecover(FaultModel::cluster(33, 64), 4, 3);
    EXPECT_EQ(wide.corrected, 0);
    EXPECT_EQ(wide.silent, 0);
    EXPECT_EQ(wide.detectedOnly, 4);
}

TEST(SchemeInjection, WriteThroughInjectsLikeConventional)
{
    // Same EDC-coded array; duplication only changes the cost model.
    const FaultModel fault = FaultModel::cluster(4, 4);
    EXPECT_EQ(
        parseScheme("wt:edc8/i4/r64")->injectAndRecover(fault, 6, 77),
        parseScheme("conv:edc8/i4/r64")->injectAndRecover(fault, 6, 77));
}

TEST(SchemeInjection, OutcomeSummaryFormat)
{
    const InjectionOutcome out =
        parseScheme("conv:secded/i4/r64")
            ->injectAndRecover(FaultModel::singleBit(), 4, 9);
    EXPECT_EQ(out.summary(), "corrected 4/4");
}

TEST(SchemeCampaigns, Figure3InjectionGridIdenticalAtEveryThreadCount)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const std::string serial = figure3InjectionCampaign(3, 11).render();
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(figure3InjectionCampaign(3, 11).render(), serial)
            << threads << " threads";
    }
}

TEST(SchemeCampaigns, RelatedWorkAndMonteCarloGridsIdenticalAcrossThreads)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const std::string related = relatedWorkCampaign(3, 21).render();
    const std::string yield_mc =
        figure8YieldMonteCarloCampaign(50, 22).render();
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(relatedWorkCampaign(3, 21).render(), related);
        EXPECT_EQ(figure8YieldMonteCarloCampaign(50, 22).render(),
                  yield_mc);
    }
}

TEST(SchemeCampaigns, CustomInjectionCampaignLabelsFromRegistry)
{
    ThreadGuard guard;
    setParallelThreads(2);
    const CampaignResult res = customInjectionCampaign(
        {"conv:secded/i4/r64", "2d:edc8/i4+vp32"}, {"single", "4x4"}, 3,
        7);
    ASSERT_EQ(res.headers.size(), 3u);
    EXPECT_EQ(res.headers[1], "SECDED+Intv4");
    EXPECT_EQ(res.headers[2], "2D(EDC8+Intv4,EDC32)");
    ASSERT_EQ(res.rows.size(), 2u);
    EXPECT_EQ(res.rows[0][0], "1x1");
    EXPECT_EQ(res.rows[1][0], "4x4");
    // Every cell carries the events count.
    for (const auto &row : res.cells)
        for (const std::string &cell : row)
            EXPECT_NE(cell.find("/3"), std::string::npos) << cell;
}

} // namespace
} // namespace tdc
