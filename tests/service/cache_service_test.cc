/**
 * @file
 * Unit contract of the concurrent cache service: config validation,
 * address checking, read-your-writes, port-stealing effect, background
 * scrub repairing injected faults before demand reads ever see them,
 * and the per-request outcome vector.
 */

#include <gtest/gtest.h>

#include "service/cache_service.hh"
#include "service/request_gen.hh"

namespace tdc
{
namespace
{

ServiceConfig
smallConfig()
{
    ServiceConfig cfg;
    cfg.bank.dataRows = 32;
    cfg.bank.verticalParityRows = 8;
    cfg.banksPerShard = 2;
    cfg.shards = 2;
    return cfg;
}

TEST(CacheService, RejectsDegenerateConfigs)
{
    ServiceConfig cfg = smallConfig();
    cfg.shards = 0;
    EXPECT_THROW(CacheService{cfg}, std::invalid_argument);
    cfg = smallConfig();
    cfg.banksPerShard = 0;
    EXPECT_THROW(CacheService{cfg}, std::invalid_argument);
    cfg = smallConfig();
    cfg.ports = 0;
    EXPECT_THROW(CacheService{cfg}, std::invalid_argument);
}

TEST(CacheService, RejectsOutOfRangeAddressesUpFront)
{
    const ServiceConfig cfg = smallConfig();
    const CacheService service(cfg);
    std::vector<ServiceRequest> reqs(3);
    reqs[1].address = cfg.totalWords(); // one past the end
    EXPECT_THROW(service.serve(reqs), std::out_of_range);
}

TEST(CacheService, ReadsReturnTheLastWrittenValue)
{
    ServiceConfig cfg = smallConfig();
    cfg.recordOutcomes = true;
    const CacheService service(cfg);

    // Write every word twice (two different values), then read all.
    std::vector<ServiceRequest> reqs;
    uint64_t tick = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (size_t a = 0; a < cfg.totalWords(); ++a)
            reqs.push_back({tick++, RequestOp::kWrite, a,
                            0x1000u * (pass + 1) + a});
    }
    const size_t first_read = reqs.size();
    for (size_t a = 0; a < cfg.totalWords(); ++a)
        reqs.push_back({tick++, RequestOp::kRead, a, 0});

    const ServiceReport report = service.serve(reqs);
    EXPECT_EQ(report.total.counters.requests, reqs.size());
    EXPECT_EQ(report.total.counters.writes, 2 * cfg.totalWords());
    EXPECT_EQ(report.total.counters.reads, cfg.totalWords());
    // No faults anywhere: every read decodes clean against the last
    // write, nothing corrected, nothing lost.
    EXPECT_EQ(report.total.counters.sdc, 0u);
    EXPECT_EQ(report.total.counters.due, 0u);
    EXPECT_EQ(report.total.counters.corrected, 0u);
    ASSERT_EQ(report.outcomes.size(), reqs.size());
    for (size_t i = first_read; i < reqs.size(); ++i) {
        EXPECT_EQ(report.outcomes[i].status, DecodeStatus::kClean);
        EXPECT_FALSE(report.outcomes[i].silent);
    }
}

TEST(CacheService, UnwrittenWordsReadAsZeroClean)
{
    ServiceConfig cfg = smallConfig();
    cfg.recordOutcomes = true;
    const CacheService service(cfg);
    std::vector<ServiceRequest> reqs;
    for (size_t a = 0; a < cfg.totalWords(); ++a)
        reqs.push_back({a, RequestOp::kRead, a, 0});
    const ServiceReport report = service.serve(reqs);
    EXPECT_EQ(report.total.counters.sdc, 0u);
    EXPECT_EQ(report.total.counters.due, 0u);
}

TEST(CacheService, PortStealingAbsorbsRbwReadsUnderLightLoad)
{
    // One request every 4 ticks leaves plenty of idle slots: with a
    // steal window the RBW reads ride them; without one every RBW
    // read charges a demand slot and queues the write behind it.
    const auto run = [](unsigned window) {
        ServiceConfig cfg = smallConfig();
        cfg.stealWindow = window;
        std::vector<ServiceRequest> reqs;
        for (size_t i = 0; i < 500; ++i)
            reqs.push_back({i * 4, RequestOp::kWrite,
                            i % cfg.totalWords(), i});
        return CacheService(cfg).serve(reqs);
    };
    const ServiceReport stealing = run(8);
    // The very first write per shard has no idle history yet; all
    // later RBW reads must be absorbed.
    EXPECT_GE(stealing.total.counters.rbwAbsorbed, 496u);
    EXPECT_LE(stealing.total.counters.rbwCharged, 4u);

    const ServiceReport charged = run(0);
    EXPECT_EQ(charged.total.counters.rbwAbsorbed, 0u);
    EXPECT_EQ(charged.total.counters.rbwCharged, 500u);
    // Charged RBW reads queue in front of writes: latency suffers.
    EXPECT_GT(charged.total.latency.sum(), stealing.total.latency.sum());
}

TEST(CacheService, ScrubbedFaultsAreNeverVisibleToLaterReads)
{
    // Scrub sweeps a full shard (2 banks x 32 rows, one row per step,
    // every 5 ticks = 320-tick cycle) three times over between fault
    // arrivals (every 1000 ticks), so at most one single-bit transient
    // is ever outstanding per bank — and one is always recoverable.
    // No read in the entire run may be DUE or silent.
    ServiceConfig cfg = smallConfig();
    cfg.recordOutcomes = true;
    cfg.scrubInterval = 5;
    cfg.faultInterval = 1000;
    cfg.fault = FaultModel::singleBit();
    const CacheService service(cfg);

    std::vector<ServiceRequest> reqs;
    uint64_t tick = 0;
    for (size_t a = 0; a < cfg.totalWords(); ++a)
        reqs.push_back({tick++, RequestOp::kWrite, a, a + 7});
    for (int pass = 0; pass < 40; ++pass) {
        for (size_t a = 0; a < cfg.totalWords(); ++a)
            reqs.push_back({tick, RequestOp::kRead, a, 0});
        tick += 500; // long idle stretch: faults land, scrub cleans
    }

    const ServiceReport report = service.serve(reqs);
    EXPECT_GT(report.total.counters.faultEvents, 30u);
    EXPECT_GT(report.total.counters.scrubSteps, 1000u);
    EXPECT_EQ(report.total.counters.due, 0u);
    EXPECT_EQ(report.total.counters.sdc, 0u);
    for (const RequestOutcome &out : report.outcomes)
        EXPECT_FALSE(out.silent);
    // Something was actually repaired along the way (scrub or demand).
    EXPECT_GT(report.total.counters.scrubRepairs +
                  report.total.counters.corrected,
              0u);
}

TEST(CacheService, ThroughputCountsSimulatedTicksOnly)
{
    const ServiceConfig cfg = smallConfig();
    std::vector<ServiceRequest> reqs;
    for (size_t i = 0; i < 1000; ++i)
        reqs.push_back({i, RequestOp::kRead, i % cfg.totalWords(), 0});
    const ServiceReport report = CacheService(cfg).serve(reqs);
    EXPECT_EQ(report.ticks, 1000u);
    EXPECT_EQ(report.throughputPerKTick(), 1000.0);
}

TEST(CacheService, TablesCarryOneRowPerShardPlusTotal)
{
    const ServiceConfig cfg = smallConfig();
    std::vector<ServiceRequest> reqs;
    for (size_t i = 0; i < 64; ++i)
        reqs.push_back({i, RequestOp::kWrite, i % cfg.totalWords(), i});
    const ServiceReport report = CacheService(cfg).serve(reqs);
    EXPECT_EQ(serviceLatencyTable(report).data().size(), cfg.shards + 1);
    EXPECT_EQ(serviceReliabilityTable(report).data().size(),
              cfg.shards + 1);
}

} // namespace
} // namespace tdc
