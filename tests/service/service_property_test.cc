/**
 * @file
 * The property layer pinning the concurrent service to a serial
 * single-shard oracle: an independent, straight-line reimplementation
 * of the documented shard semantics (partition by address mod shards,
 * per-shard clamped clock, RBW port stealing, round-robin scrub,
 * injection-domain fault streams, golden-value classification). For
 * every generator shape the sharded parallel service must match the
 * oracle EXACTLY — final store statistics, every reliability counter,
 * the full latency histogram, and every per-request outcome — and
 * faults that scrub repaired must never surface in later reads.
 *
 * The oracle deliberately shares no code with src/service; if either
 * side drifts from the documented contract, this suite fails.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "array/fault.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/port_scheduler.hh"
#include "core/twod_cache_store.hh"
#include "service/cache_service.hh"
#include "service/request_gen.hh"

namespace tdc
{
namespace
{

/** Serial oracle for ONE shard, mirroring the documented contract. */
class ShardOracle
{
  public:
    ShardOracle(const ServiceConfig &cfg, size_t shard)
        : cfg(cfg), store(cfg.bank, cfg.banksPerShard),
          sched(cfg.ports, cfg.stealWindow),
          base(shardSeed(cfg.seed, shard)),
          golden(store.totalWords(), 0), written(store.totalWords(), 0)
    {
    }

    RequestOutcome
    serve(const ServiceRequest &req)
    {
        const uint64_t t = std::max(req.tick, clock);
        background(t);
        sched.advanceTo(t);
        clock = t;

        ++counters.requests;
        RequestOutcome out;
        uint64_t latency = 0;
        const size_t local = req.address / cfg.shards;
        if (req.op == RequestOp::kRead) {
            ++counters.reads;
            const unsigned delay = sched.issueDemand();
            counters.portDelay += delay;
            uint64_t sweep = 0;
            const AccessResult res = read(local, sweep);
            counters.recoveryRowReads += sweep;
            latency = cfg.readLatency + delay + sweep;
            out.status = res.status;
            if (!res.ok()) {
                ++counters.due;
            } else {
                const BitVector expect =
                    written[local]
                        ? expandValue(golden[local], store.dataBits())
                        : BitVector(store.dataBits());
                if (res.data != expect) {
                    out.silent = true;
                    ++counters.sdc;
                } else if (res.status == DecodeStatus::kCorrected ||
                           sweep != 0) {
                    ++counters.corrected;
                }
            }
        } else {
            ++counters.writes;
            if (sched.issueStolenRead() == 0)
                ++counters.rbwAbsorbed;
            else
                ++counters.rbwCharged;
            const unsigned delay = sched.issueDemand();
            counters.portDelay += delay;
            latency = cfg.writeLatency + delay;
            store.writeWord(local, expandValue(req.value,
                                               store.dataBits()));
            golden[local] = req.value;
            written[local] = 1;
        }
        latency_hist.add(latency);
        out.latency = uint32_t(std::min<uint64_t>(latency, 0xffffffffULL));
        return out;
    }

    ShardServiceReport
    report()
    {
        ShardServiceReport rep;
        rep.counters = counters;
        rep.latency = latency_hist;
        rep.store = store.aggregateStats();
        return rep;
    }

  private:
    AccessResult
    read(size_t local, uint64_t &sweep)
    {
        TwoDimArray &bank = store.bank(store.bankOf(local));
        const uint64_t before = bank.stats().recoveries;
        const AccessResult res = store.readWord(local);
        if (bank.stats().recoveries != before) {
            ++counters.recoveries;
            sweep = bank.lastRecovery().rowReads;
        }
        return res;
    }

    void
    background(uint64_t t)
    {
        while (true) {
            const uint64_t scrub_at =
                cfg.scrubInterval == 0
                    ? UINT64_MAX
                    : (scrub_steps + 1) * cfg.scrubInterval;
            const uint64_t fault_at =
                cfg.faultInterval == 0
                    ? UINT64_MAX
                    : (fault_events + 1) * cfg.faultInterval;
            if (scrub_at > t && fault_at > t)
                return;
            if (scrub_at <= fault_at)
                scrub(scrub_at);
            else
                fault(fault_at);
        }
    }

    void
    scrub(uint64_t tick)
    {
        sched.advanceTo(std::max(tick, clock));
        clock = std::max(tick, clock);
        ++scrub_steps;
        ++counters.scrubSteps;
        const size_t rows = cfg.bank.dataRows;
        const size_t slots = store.bank(0).wordsPerRow();
        const size_t global =
            (scrub_steps - 1) % (cfg.banksPerShard * rows);
        const size_t bank = global / rows, row = global % rows;
        for (size_t slot = 0; slot < slots; ++slot) {
            sched.issueStolenRead();
            const size_t local =
                (row * slots + slot) * cfg.banksPerShard + bank;
            uint64_t sweep = 0;
            const AccessResult res = read(local, sweep);
            if (!res.ok())
                ++counters.scrubDue;
            else if (res.status == DecodeStatus::kCorrected || sweep != 0)
                ++counters.scrubRepairs;
        }
    }

    void
    fault(uint64_t tick)
    {
        sched.advanceTo(std::max(tick, clock));
        clock = std::max(tick, clock);
        Rng rng(shardSeed(base, kSeedDomainInjection, fault_events));
        ++fault_events;
        ++counters.faultEvents;
        FaultInjector inj(rng);
        const size_t bank = size_t(rng.nextBelow(cfg.banksPerShard));
        inj.inject(store.bank(bank).cells(), cfg.fault);
    }

    const ServiceConfig &cfg;
    TwoDimCacheStore store;
    PortScheduler sched;
    uint64_t base;
    uint64_t clock = 0;
    uint64_t scrub_steps = 0;
    uint64_t fault_events = 0;
    std::vector<uint64_t> golden;
    std::vector<char> written;
    ServiceCounters counters;
    LatencyHistogram latency_hist;
};

/** Serve @p requests through per-shard serial oracles. */
ServiceReport
oracleServe(const ServiceConfig &cfg,
            const std::vector<ServiceRequest> &requests)
{
    std::vector<std::unique_ptr<ShardOracle>> oracles;
    oracles.reserve(cfg.shards);
    for (size_t s = 0; s < cfg.shards; ++s)
        oracles.push_back(std::make_unique<ShardOracle>(cfg, s));

    ServiceReport report;
    report.outcomes.resize(requests.size());
    for (size_t i = 0; i < requests.size(); ++i)
        report.outcomes[i] =
            oracles[requests[i].address % cfg.shards]->serve(requests[i]);

    for (size_t s = 0; s < cfg.shards; ++s) {
        report.shards.push_back(oracles[s]->report());
        report.total.counters += report.shards.back().counters;
        report.total.latency += report.shards.back().latency;
        report.total.store += report.shards.back().store;
    }
    for (const ServiceRequest &r : requests)
        report.ticks = std::max(report.ticks, r.tick + 1);
    return report;
}

ServiceConfig
propertyConfig()
{
    ServiceConfig cfg;
    cfg.bank.dataRows = 32;
    cfg.bank.verticalParityRows = 8;
    cfg.banksPerShard = 2;
    cfg.shards = 3; // deliberately not a power of two
    cfg.seed = 0xC0FFEEu;
    return cfg;
}

void
expectMatchesOracle(const ServiceConfig &cfg,
                    const std::vector<ServiceRequest> &requests)
{
    ServiceConfig parallel_cfg = cfg;
    parallel_cfg.recordOutcomes = true;
    const ServiceReport got =
        CacheService(parallel_cfg).serve(requests);
    const ServiceReport want = oracleServe(cfg, requests);

    ASSERT_EQ(got.shards.size(), want.shards.size());
    for (size_t s = 0; s < got.shards.size(); ++s) {
        EXPECT_EQ(got.shards[s].counters, want.shards[s].counters)
            << "shard " << s;
        EXPECT_EQ(got.shards[s].latency, want.shards[s].latency)
            << "shard " << s;
        EXPECT_EQ(got.shards[s].store, want.shards[s].store)
            << "shard " << s;
    }
    EXPECT_EQ(got.total, want.total);
    EXPECT_EQ(got.ticks, want.ticks);
    EXPECT_EQ(got.outcomes, want.outcomes);
}

TEST(ServiceProperty, UniformStreamMatchesTheSerialOracle)
{
    const ServiceConfig cfg = propertyConfig();
    expectMatchesOracle(
        cfg, buildRequests(parseRequestSpec("uniform/n6000/w40"),
                           cfg.totalWords(), 11));
}

TEST(ServiceProperty, ZipfStreamMatchesTheSerialOracle)
{
    const ServiceConfig cfg = propertyConfig();
    expectMatchesOracle(
        cfg, buildRequests(parseRequestSpec("zipf95/n6000/w40"),
                           cfg.totalWords(), 12));
}

TEST(ServiceProperty, BurstStreamWithBackgroundEventsMatchesTheOracle)
{
    ServiceConfig cfg = propertyConfig();
    cfg.scrubInterval = 7;
    cfg.faultInterval = 113;
    cfg.fault = FaultModel::singleBit();
    expectMatchesOracle(
        cfg, buildRequests(parseRequestSpec("burst16/n6000/w40/g96"),
                           cfg.totalWords(), 13));
}

TEST(ServiceProperty, MultiPortStolenWindowMatchesTheOracle)
{
    ServiceConfig cfg = propertyConfig();
    cfg.ports = 2;
    cfg.stealWindow = 3;
    cfg.scrubInterval = 19;
    expectMatchesOracle(
        cfg, buildRequests(parseRequestSpec("uniform/n4000/w70"),
                           cfg.totalWords(), 14));
}

TEST(ServiceProperty, ScrubRepairedFaultsStayInvisible)
{
    // The oracle replays the same injection streams, so any fault the
    // service scrubbed away must also be gone in the oracle — and
    // neither side may ever see it again in a later read. With
    // single-bit transients and a scrub period far shorter than the
    // fault period, both sides must agree AND read everything clean.
    ServiceConfig cfg = propertyConfig();
    cfg.scrubInterval = 5;
    cfg.faultInterval = 2000;
    cfg.fault = FaultModel::singleBit();

    std::vector<ServiceRequest> reqs;
    uint64_t tick = 0;
    for (size_t a = 0; a < cfg.totalWords(); ++a)
        reqs.push_back({tick++, RequestOp::kWrite, a, a * 3 + 1});
    for (int pass = 0; pass < 30; ++pass) {
        tick += 900;
        for (size_t a = 0; a < cfg.totalWords(); ++a)
            reqs.push_back({tick, RequestOp::kRead, a, 0});
    }
    expectMatchesOracle(cfg, reqs);

    ServiceConfig rec = cfg;
    rec.recordOutcomes = true;
    const ServiceReport report = CacheService(rec).serve(reqs);
    EXPECT_GT(report.total.counters.faultEvents, 10u);
    EXPECT_EQ(report.total.counters.due, 0u);
    EXPECT_EQ(report.total.counters.sdc, 0u);
}

} // namespace
} // namespace tdc
