/**
 * @file
 * The binary trace format contract: writeTrace/readTrace round-trip
 * every request byte-exactly, the serialized image is stable (so
 * recorded traces replay across machines), and every malformed image
 * — bad magic, wrong version, truncated header or body, garbage op
 * byte — is rejected with std::invalid_argument naming the problem.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "service/request.hh"
#include "service/request_gen.hh"

namespace tdc
{
namespace
{

std::vector<ServiceRequest>
sampleStream(size_t count)
{
    RequestStreamSpec spec;
    spec.dist = RequestDist::kBurst;
    spec.count = count;
    spec.burstLen = 32;
    return buildRequests(spec, 4096, 0xFEEDu);
}

std::string
serialize(const std::vector<ServiceRequest> &requests)
{
    std::ostringstream out;
    writeTrace(out, requests);
    return out.str();
}

std::vector<ServiceRequest>
deserialize(const std::string &bytes)
{
    std::istringstream in(bytes);
    return readTrace(in);
}

TEST(TraceFormat, RoundTripsEveryField)
{
    const std::vector<ServiceRequest> requests = sampleStream(1000);
    EXPECT_EQ(deserialize(serialize(requests)), requests);
}

TEST(TraceFormat, RoundTripsAnEmptyStream)
{
    const std::vector<ServiceRequest> empty;
    EXPECT_EQ(deserialize(serialize(empty)), empty);
}

TEST(TraceFormat, SerializationIsByteStable)
{
    // Same stream, serialized twice: identical bytes. And the image
    // is exactly header + 25 bytes per record.
    const std::vector<ServiceRequest> requests = sampleStream(100);
    const std::string a = serialize(requests);
    EXPECT_EQ(a, serialize(requests));
    EXPECT_EQ(a.size(), 16u + 25u * requests.size());
    EXPECT_EQ(a.substr(0, 8), "TDCTRACE");
}

TEST(TraceFormat, FileRoundTripIsByteIdentical)
{
    const std::vector<ServiceRequest> requests = sampleStream(500);
    const std::string path =
        testing::TempDir() + "tdc_trace_roundtrip.bin";
    writeTrace(path, requests);

    std::ifstream in(path, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes, serialize(requests));
    EXPECT_EQ(readTrace(path), requests);
    std::remove(path.c_str());
}

TEST(TraceFormat, LittleEndianLayoutIsPinned)
{
    // One hand-built record pins the byte layout for good: any
    // accidental field reorder or endianness flip breaks replay of
    // previously recorded traces.
    ServiceRequest r;
    r.tick = 0x0102030405060708ULL;
    r.op = RequestOp::kWrite;
    r.address = 0x1112131415161718ULL;
    r.value = 0x2122232425262728ULL;
    const std::string bytes = serialize({r});
    const std::string expected =
        std::string("TDCTRACE") +
        std::string("\x01\x00\x00\x00", 4) + // version 1
        std::string("\x01\x00\x00\x00", 4) + // count 1
        std::string("\x08\x07\x06\x05\x04\x03\x02\x01", 8) +
        std::string(1, '\x01') +             // op = write
        std::string("\x18\x17\x16\x15\x14\x13\x12\x11", 8) +
        std::string("\x28\x27\x26\x25\x24\x23\x22\x21", 8);
    EXPECT_EQ(bytes, expected);
}

void
expectRejects(std::string bytes, const std::string &needle)
{
    try {
        deserialize(bytes);
        FAIL() << "accepted a malformed trace (wanted error mentioning "
               << needle << ")";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
    }
}

TEST(TraceFormat, RejectsShortHeader)
{
    expectRejects("", "header");
    expectRejects("TDCTRACE", "header");
    expectRejects("TDCTRAC", "header");
}

TEST(TraceFormat, RejectsBadMagic)
{
    std::string bytes = serialize(sampleStream(2));
    bytes[0] = 'X';
    expectRejects(bytes, "magic");
}

TEST(TraceFormat, RejectsUnknownVersion)
{
    std::string bytes = serialize(sampleStream(2));
    bytes[8] = 7;
    expectRejects(bytes, "version \"7\"");
}

TEST(TraceFormat, RejectsTruncatedBody)
{
    const std::string bytes = serialize(sampleStream(3));
    expectRejects(bytes.substr(0, bytes.size() - 1), "truncated");
    expectRejects(bytes + "x", "truncated");
    // Count promises more records than the body carries.
    std::string lying = bytes;
    lying[12] = 9;
    expectRejects(lying, "9");
}

TEST(TraceFormat, RejectsMalformedOpByte)
{
    std::string bytes = serialize(sampleStream(2));
    bytes[16 + 8] = 2; // first record's op
    expectRejects(bytes, "op byte \"2\"");
}

TEST(TraceFormat, MissingFileThrowsRuntimeError)
{
    EXPECT_THROW(readTrace(testing::TempDir() + "tdc_no_such_trace.bin"),
                 std::runtime_error);
}

} // namespace
} // namespace tdc
