/**
 * @file
 * The request-stream generator contract, plus the grammar fuzz layer:
 *  - parseRequestSpec round-trips through RequestStreamSpec::spec();
 *  - generated streams honor their knobs (count, write fraction,
 *    address bounds, non-decreasing ticks, zipf skew, burst shape)
 *    and are pure functions of (spec, words, seed) at any pool size;
 *  - a few hundred malformed strings thrown at parseScheme,
 *    parseFaultModel, and parseRequestSpec all fail with
 *    std::invalid_argument quoting the offending input — never an
 *    accept, never a crash, never a different exception type.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "array/fault.hh"
#include "common/parallel.hh"
#include "scheme/scheme.hh"
#include "service/request_gen.hh"

namespace tdc
{
namespace
{

// --- grammar round-trip ---------------------------------------------

TEST(RequestSpec, ParsesTheDocumentedExamples)
{
    const RequestStreamSpec u = parseRequestSpec("uniform/n1e6/w30");
    EXPECT_EQ(u.dist, RequestDist::kUniform);
    EXPECT_EQ(u.count, 1000000u);
    EXPECT_EQ(u.writePct, 30u);

    const RequestStreamSpec z = parseRequestSpec("zipf90/n1e5");
    EXPECT_EQ(z.dist, RequestDist::kZipf);
    EXPECT_EQ(z.zipfHundredths, 90u);

    const RequestStreamSpec b = parseRequestSpec("burst128/n1e5/g512");
    EXPECT_EQ(b.dist, RequestDist::kBurst);
    EXPECT_EQ(b.burstLen, 128u);
    EXPECT_EQ(b.burstGap, 512u);

    const RequestStreamSpec t = parseRequestSpec("trace:/tmp/x.bin");
    EXPECT_EQ(t.dist, RequestDist::kTrace);
    EXPECT_EQ(t.tracePath, "/tmp/x.bin");
}

TEST(RequestSpec, SpecRoundTrips)
{
    const std::vector<std::string> specs = {
        "uniform/n100/w30",   "zipf80/n100000/w30",
        "zipf99/n1000/w0",    "burst64/n100000/w30",
        "burst32/n500/w100/g4096", "trace:/tmp/a.bin",
    };
    for (const std::string &s : specs) {
        const RequestStreamSpec parsed = parseRequestSpec(s);
        EXPECT_EQ(parseRequestSpec(parsed.spec()), parsed) << s;
    }
}

TEST(RequestSpec, DefaultsMatchTheGrammarDoc)
{
    const RequestStreamSpec s = parseRequestSpec("uniform");
    EXPECT_EQ(s.count, 100000u);
    EXPECT_EQ(s.writePct, 30u);
    const RequestStreamSpec z = parseRequestSpec("zipf");
    EXPECT_EQ(z.zipfHundredths, 80u);
    const RequestStreamSpec b = parseRequestSpec("burst");
    EXPECT_EQ(b.burstLen, 64u);
    EXPECT_EQ(b.burstGap, 0u); // rendered as 4 * burstLen at build time
}

// --- generator properties -------------------------------------------

TEST(RequestGen, HonorsCountBoundsAndTickOrder)
{
    for (const char *spec :
         {"uniform/n5000/w25", "zipf90/n5000/w25", "burst16/n5000/w25"}) {
        const std::vector<ServiceRequest> reqs =
            buildRequests(parseRequestSpec(spec), 2048, 42);
        ASSERT_EQ(reqs.size(), 5000u) << spec;
        uint64_t last_tick = 0;
        size_t writes = 0;
        for (const ServiceRequest &r : reqs) {
            EXPECT_LT(r.address, 2048u) << spec;
            EXPECT_GE(r.tick, last_tick) << spec;
            last_tick = r.tick;
            writes += r.op == RequestOp::kWrite;
        }
        // 25% +- 3% at n=5000.
        EXPECT_NEAR(double(writes) / 5000.0, 0.25, 0.03) << spec;
    }
}

TEST(RequestGen, WritePctEndpointsAreExact)
{
    for (const ServiceRequest &r :
         buildRequests(parseRequestSpec("uniform/n2000/w0"), 64, 1))
        EXPECT_EQ(r.op, RequestOp::kRead);
    for (const ServiceRequest &r :
         buildRequests(parseRequestSpec("uniform/n2000/w100"), 64, 1))
        EXPECT_EQ(r.op, RequestOp::kWrite);
}

TEST(RequestGen, ZipfSkewsAndUniformDoesNot)
{
    // Top-10% most popular addresses should hold far more than 10% of
    // zipf-90 traffic, and close to 10% of uniform traffic.
    const size_t words = 1000;
    const auto topDecileShare = [&](const char *spec) {
        std::vector<size_t> hits(words, 0);
        for (const ServiceRequest &r :
             buildRequests(parseRequestSpec(spec), words, 7))
            ++hits[r.address];
        std::sort(hits.rbegin(), hits.rend());
        size_t top = 0, total = 0;
        for (size_t i = 0; i < words; ++i) {
            total += hits[i];
            if (i < words / 10)
                top += hits[i];
        }
        return double(top) / double(total);
    };
    EXPECT_GT(topDecileShare("zipf90/n20000"), 0.5);
    EXPECT_LT(topDecileShare("uniform/n20000"), 0.2);
}

TEST(RequestGen, BurstsAreConsecutiveRunsWithGaps)
{
    const std::vector<ServiceRequest> reqs =
        buildRequests(parseRequestSpec("burst8/n64/g100"), 4096, 3);
    for (size_t i = 0; i < reqs.size(); ++i) {
        const size_t burst = i / 8, offset = i % 8;
        EXPECT_EQ(reqs[i].tick, burst * 100 + offset);
        if (offset != 0) {
            EXPECT_EQ(reqs[i].address,
                      (reqs[i - 1].address + 1) % 4096);
        }
    }
}

TEST(RequestGen, StreamIsAPureFunctionOfSpecWordsSeed)
{
    const RequestStreamSpec spec = parseRequestSpec("zipf85/n4000");
    const std::vector<ServiceRequest> base = buildRequests(spec, 512, 99);
    for (unsigned threads : {1u, 2u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(buildRequests(spec, 512, 99), base)
            << "threads=" << threads;
    }
    setParallelThreads(0);
    EXPECT_NE(buildRequests(spec, 512, 100), base) << "seed must matter";
}

// --- the malformed-spec fuzz corpus ---------------------------------

/** One malformed input aimed at one parser. */
struct FuzzCase
{
    enum Parser { kScheme, kFault, kRequest } parser;
    std::string input;
    /** Substring the error message must carry (usually the input). */
    std::string needle;
};

void
expectRejected(const FuzzCase &c)
{
    try {
        switch (c.parser) {
          case FuzzCase::kScheme: parseScheme(c.input); break;
          case FuzzCase::kFault: parseFaultModel(c.input); break;
          case FuzzCase::kRequest: parseRequestSpec(c.input); break;
        }
        FAIL() << "parser accepted malformed input \"" << c.input << "\"";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
            << "input \"" << c.input << "\" raised \"" << e.what()
            << "\" which does not quote \"" << c.needle << "\"";
    } catch (const std::exception &e) {
        FAIL() << "input \"" << c.input << "\" raised "
               << typeid(e).name() << " (\"" << e.what()
               << "\") instead of std::invalid_argument";
    }
}

std::vector<FuzzCase>
fuzzCorpus()
{
    std::vector<FuzzCase> cases;
    const auto scheme = [&](std::string in, std::string needle) {
        cases.push_back({FuzzCase::kScheme, std::move(in),
                         std::move(needle)});
    };
    const auto fault = [&](std::string in, std::string needle) {
        cases.push_back({FuzzCase::kFault, std::move(in),
                         std::move(needle)});
    };
    const auto request = [&](std::string in, std::string needle) {
        cases.push_back({FuzzCase::kRequest, std::move(in),
                         std::move(needle)});
    };

    // -- scheme grammar: hand-picked structural breaks ---------------
    scheme("", "");
    scheme("conv", "conv");
    scheme("2d", "2d");
    scheme(":", "\"\"");
    scheme("conv:", "conv:");
    scheme("2d:", "2d:");
    scheme("wt:", "wt:");
    scheme("prod:", "prod:");
    scheme("conv:secded", "missing interleave degree");
    scheme("2d:edc8+vp32", "missing interleave degree");
    scheme("conv:bogus/i4", "bogus");
    scheme("2d:edc9/i4+vp32", "edc9");
    scheme("conv:secded/i0", "i0");
    scheme("conv:secded/i65", "i65");
    scheme("conv:secded/i4x", "i4x");
    scheme("conv:secded/ix", "ix");
    scheme("conv:secded/i4/q7", "q7");
    scheme("conv:secded/i4/w7", "w7");
    scheme("conv:secded/i4/w513", "w513");
    scheme("conv:secded/i4/r0", "r0");
    scheme("conv:secded/i4/r65537", "r65537");
    scheme("conv:secded/i4/vp32", "vp32"); // vp is 2d-only
    scheme("2d:edc8/i4+vp0", "vp0");
    scheme("2d:edc8/i4+vp4097", "vp4097");
    scheme("2d:edc8/i4+vp512/r256", "vp512"); // vp exceeds data rows
    scheme("2d:edc8/i4+vpx", "vpx");
    scheme("2d:edc8/i4+vp32/w60", "60");     // not a multiple of 8
    scheme("2d:edc16/i2+vp32/w72", "72");    // not a multiple of 16
    scheme("prod:256", "256");
    scheme("prod:x", "x");
    scheme("prod:256x", "256x");
    scheme("prod:x256", "x256");
    scheme("prod:0x256", "0x256");
    scheme("prod:256x0", "256x0");
    scheme("prod:99999999x2", "99999999");
    scheme("conv::secded/i4", ":secded");
    scheme(" conv:secded/i4", " conv");
    scheme("CONV:secded/i4", "CONV"); // families are case-sensitive
    scheme("conv:secd3d/i4", "secd3d");

    // -- scheme grammar: dram family structural breaks ---------------
    scheme("dram", "dram");
    scheme("dram:", "dram:");
    scheme("dram:chipkill", "width");
    scheme("dram:iecc", "iecc");
    scheme("dram:secded/x4", "secded");
    scheme("dram:CHIPKILL/x4", "CHIPKILL"); // variants are case-sensitive
    scheme("dram:chipkill/x5", "x5");
    scheme("dram:chipkill/x", "x");
    scheme("dram:chipkill/x4/z9", "z9");
    scheme("dram:chipkill/x4/r0", "r0");
    scheme("dram:chipkill/x4/r4097", "r4097");
    scheme("dram:chipkill/x4/rx", "rx");
    scheme("dram:chipkill/x4/b0", "b0");
    scheme("dram:chipkill/x4/b65", "b65");
    scheme("dram:chipkill/x4/cols/extra", "extra");
    scheme("dram:iecc+chipkill/x8/columns", "columns");
    for (int i = 0; i < 8; ++i) {
        const std::string variant = "ddr" + std::to_string(i);
        scheme("dram:" + variant + "/x4", variant);
    }

    // -- scheme grammar: generated unknown families ------------------
    for (int i = 0; i < 24; ++i) {
        const std::string family = "fam" + std::to_string(i);
        scheme(family + ":x/i4", family);
    }

    // -- fault grammar: hand-picked structural breaks ----------------
    fault("", "");
    fault("bogus", "bogus");
    fault("singlebit", "singlebit");
    fault("Single", "Single");
    fault("row", "row");
    fault("row:", "row:");
    fault("row:0", "row:0");
    fault("row:abc", "row:abc");
    fault("row:65537", "row:65537");
    fault("row:-3", "row:-3");
    fault("col:", "col:");
    fault("col:0", "col:0");
    fault("col:1e3", "col:1e3");
    fault("x", "x");
    fault("32x", "32x");
    fault("x32", "x32");
    fault("axb", "axb");
    fault("32x32x32", "32x32x32");
    fault("32x32@", "32x32@");
    fault("32x32@0", "32x32@0");
    fault("32x32@-0.5", "32x32@-0.5");
    fault("32x32@1.5", "32x32@1.5");
    fault("32x32@dense", "32x32@dense");
    fault("@0.5", "@0.5");
    fault("fullrows", "fullrows");

    // -- fault grammar: device-derived DRAM shapes -------------------
    fault("chip:", "chip:");
    fault("chip:x", "chip:x");
    fault("chip:-1", "chip:-1");
    fault("chip:1.5", "chip:1.5");
    fault("chip:70000", "chip:70000");
    fault("chip:any2", "chip:any2");
    fault("chipkill", "chipkill"); // shape names are spec prefixes only
    fault("hammer:", "hammer:");
    fault("hammer:0", "hammer:0");
    fault("hammer:x", "hammer:x");
    fault("hammer:65537", "hammer:65537");
    fault("hammer:4@", "hammer:4@");
    fault("hammer:4@0", "hammer:4@0");
    fault("hammer:4@2", "hammer:4@2");
    fault("hammer:4@-0.5", "hammer:4@-0.5");
    fault("senseamp:", "senseamp:");
    fault("senseamp:0", "senseamp:0");
    fault("senseamp:-2", "senseamp:-2");
    fault("senseamp:tall", "senseamp:tall");

    // -- fault grammar: generated zero-dimension clusters ------------
    for (int d = 1; d <= 20; ++d) {
        fault("0x" + std::to_string(d), "0x" + std::to_string(d));
        fault(std::to_string(d) + "x0", std::to_string(d) + "x0");
    }
    // -- fault grammar: generated out-of-range densities -------------
    for (int i = 0; i < 10; ++i) {
        const std::string dens = std::to_string(2 + i) + ".5";
        fault("8x8@" + dens, "8x8@" + dens);
    }

    // -- scheme grammar: generated out-of-range degrees --------------
    for (int i = 0; i < 10; ++i) {
        const std::string tok = "i" + std::to_string(65 + i);
        scheme("conv:secded/" + tok, tok);
    }

    // -- request grammar: hand-picked structural breaks --------------
    request("", "");
    request("trace:", "trace:");
    request("gauss", "gauss");
    request("uniform2", "uniform2");
    request("zipfx", "zipfx");
    request("zipf0", "zipf0");
    request("zipf100", "zipf100");
    request("zipf1e2", "zipf1e2");
    request("burst0", "burst0");
    request("bursty", "bursty");
    request("uniform/", "\"\"");
    request("uniform//w5", "\"\"");
    request("uniform/x5", "x5");
    request("uniform/n", "\"n\"");
    request("uniform/n0", "n0");
    request("uniform/n-5", "n-5");
    request("uniform/n2e9", "n2e9");
    request("uniform/n1.5", "n1.5");
    request("uniform/nmany", "nmany");
    request("uniform/w101", "w101");
    request("uniform/w-1", "w-1");
    request("uniform/wfifty", "wfifty");
    request("uniform/b8", "b8");   // burst-only knob
    request("uniform/g8", "g8");   // burst-only knob
    request("zipf80/b8", "b8");
    request("burst8/b0", "b0");
    request("burst8/g0", "g0");
    request("burst8/gx", "gx");
    request("n100", "n100");
    request("UNIFORM", "UNIFORM");

    // -- request grammar: generated corrupt option tokens ------------
    for (int i = 0; i < 26; ++i) {
        const std::string tok(1, char('a' + i));
        if (tok == "n" || tok == "w" || tok == "b" || tok == "g")
            continue; // real knobs (rejected elsewhere when malformed)
        request("uniform/" + tok + "5", tok + "5");
    }
    for (int i = 0; i < 12; ++i) {
        const std::string head = "dist" + std::to_string(i);
        request(head + "/n100", head);
    }
    return cases;
}

TEST(GrammarFuzz, CorpusHoldsAtLeastTwoHundredCases)
{
    EXPECT_GE(fuzzCorpus().size(), 200u);
}

TEST(GrammarFuzz, EveryMalformedSpecThrowsInvalidArgumentQuotingIt)
{
    for (const FuzzCase &c : fuzzCorpus())
        expectRejected(c);
}

TEST(GrammarFuzz, ParseTwoDimConfigSharesTheSchemeGrammar)
{
    // The direct-config entry point rejects exactly like parseScheme,
    // plus non-2d families.
    EXPECT_THROW(parseTwoDimConfig("2d:edc8"), std::invalid_argument);
    EXPECT_THROW(parseTwoDimConfig("2d:edc8/i0+vp32"),
                 std::invalid_argument);
    EXPECT_THROW(parseTwoDimConfig("conv:secded/i4"),
                 std::invalid_argument);
    EXPECT_THROW(parseTwoDimConfig("nocolon"), std::invalid_argument);

    const TwoDimConfig cfg = parseTwoDimConfig("2d:edc16/i2+vp16/w256");
    EXPECT_EQ(cfg.horizontalKind, CodeKind::kEdc16);
    EXPECT_EQ(cfg.interleaveDegree, 2u);
    EXPECT_EQ(cfg.verticalParityRows, 16u);
    EXPECT_EQ(cfg.wordBits, 256u);
}

} // namespace
} // namespace tdc
