/**
 * @file
 * Exact-percentile semantics of the integer latency histogram: p50 /
 * p99 / p999 come from cumulative counts over per-cycle bins (never
 * interpolation), merging shard histograms is equivalent to observing
 * the union stream, and equality is bin-exact — the property the
 * service determinism pins lean on.
 */

#include <gtest/gtest.h>

#include "service/latency_histogram.hh"

namespace tdc
{
namespace
{

TEST(LatencyHistogram, EmptyIsAllZero)
{
    const LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p999(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, PercentilesAreExactOrderStatistics)
{
    // 1..100, once each: pXX is exactly XX.
    LatencyHistogram h;
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.p50(), 50u);
    EXPECT_EQ(h.p99(), 99u);
    EXPECT_EQ(h.percentile(1.0), 100u);
    EXPECT_EQ(h.percentile(0.0), 1u); // never below the minimum sample
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.mean(), 50.5);
}

TEST(LatencyHistogram, EveryRankOfAHundredIsExact)
{
    // Regression: ceil(p * total) in floating point overshot whenever
    // p * total landed epsilon above an integer — percentile(0.07) on
    // 1..100 returned 8 (0.07 * 100 = 7.0000000000000007). Every rank
    // of the 1..100 histogram must map to its own value.
    LatencyHistogram h;
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.07), 7u);
    for (uint64_t k = 1; k <= 100; ++k)
        EXPECT_EQ(h.percentile(double(k) / 100.0), k) << k;
}

TEST(LatencyHistogram, SingleSampleIsEveryPercentile)
{
    LatencyHistogram h;
    h.add(42);
    for (double p : {0.0, 0.001, 0.5, 0.999, 1.0})
        EXPECT_EQ(h.percentile(p), 42u) << p;
}

TEST(LatencyHistogram, OutOfRangeProbabilitiesClamp)
{
    LatencyHistogram h;
    h.add(3);
    h.add(9);
    EXPECT_EQ(h.percentile(-0.5), 3u);
    EXPECT_EQ(h.percentile(1.5), 9u);
}

TEST(LatencyHistogram, TailPercentileSeesTheRareSample)
{
    // 1999 fast + 1 slow: p999 must already surface the outlier
    // (ceil(0.999 * 2000) = 1998 < 2000 keeps it at the fast bin,
    // 2999 fast + 1 slow pushes p999 over).
    LatencyHistogram h;
    for (int i = 0; i < 1999; ++i)
        h.add(2);
    h.add(500);
    EXPECT_EQ(h.p50(), 2u);
    EXPECT_EQ(h.p999(), 2u);
    EXPECT_EQ(h.percentile(1.0), 500u);
    EXPECT_EQ(h.max(), 500u);
}

TEST(LatencyHistogram, MergeEqualsUnionStream)
{
    LatencyHistogram a, b, both;
    for (uint64_t v : {3u, 7u, 7u, 90u}) {
        a.add(v);
        both.add(v);
    }
    for (uint64_t v : {1u, 7u, 200u}) {
        b.add(v);
        both.add(v);
    }
    a += b;
    EXPECT_EQ(a, both);
    EXPECT_EQ(a.count(), 7u);
    EXPECT_EQ(a.max(), 200u);
}

TEST(LatencyHistogram, EqualStreamsCompareEqual)
{
    LatencyHistogram a, b;
    for (uint64_t v : {5u, 9u, 5u}) {
        a.add(v);
        b.add(v);
    }
    EXPECT_EQ(a, b);
    b.add(5);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace tdc
