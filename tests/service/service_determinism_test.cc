/**
 * @file
 * The service determinism pins: one reference run, then the whole
 * report — every counter, every latency bin, every per-request
 * outcome, every per-shard store statistic — must be bit-identical at
 * TDC_THREADS = 1, 2, 4, and 8, for generated streams and for a trace
 * recorded and replayed through the binary format. A seed change must
 * change the outcome (the pins must actually pin something).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/parallel.hh"
#include "service/cache_service.hh"
#include "service/request_gen.hh"

namespace tdc
{
namespace
{

struct ThreadGuard
{
    ~ThreadGuard() { setParallelThreads(0); }
};

ServiceConfig
pinnedConfig()
{
    ServiceConfig cfg;
    cfg.bank.dataRows = 64;
    cfg.bank.verticalParityRows = 16;
    cfg.banksPerShard = 4;
    cfg.shards = 4;
    cfg.stealWindow = 8;
    cfg.scrubInterval = 11;
    cfg.faultInterval = 401;
    cfg.recordOutcomes = true;
    cfg.seed = 2026;
    return cfg;
}

void
expectIdenticalAcrossThreadCounts(const ServiceConfig &cfg,
                                  const std::vector<ServiceRequest> &reqs)
{
    ThreadGuard guard;
    setParallelThreads(1);
    const ServiceReport reference = CacheService(cfg).serve(reqs);
    for (unsigned threads : {2u, 4u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(CacheService(cfg).serve(reqs), reference)
            << "TDC_THREADS=" << threads;
    }
}

TEST(ServiceDeterminism, UniformStreamIsThreadCountInvariant)
{
    const ServiceConfig cfg = pinnedConfig();
    expectIdenticalAcrossThreadCounts(
        cfg, buildRequests(parseRequestSpec("uniform/n20000/w30"),
                           cfg.totalWords(), cfg.seed));
}

TEST(ServiceDeterminism, ZipfStreamIsThreadCountInvariant)
{
    const ServiceConfig cfg = pinnedConfig();
    expectIdenticalAcrossThreadCounts(
        cfg, buildRequests(parseRequestSpec("zipf90/n20000/w30"),
                           cfg.totalWords(), cfg.seed));
}

TEST(ServiceDeterminism, BurstStreamIsThreadCountInvariant)
{
    const ServiceConfig cfg = pinnedConfig();
    expectIdenticalAcrossThreadCounts(
        cfg, buildRequests(parseRequestSpec("burst64/n20000/w30"),
                           cfg.totalWords(), cfg.seed));
}

TEST(ServiceDeterminism, RecordedTraceReplaysBitIdentically)
{
    // Generate -> record -> load -> the loaded stream is byte-equal,
    // and serving the replayed trace reproduces the generated run's
    // report exactly, across thread counts.
    ThreadGuard guard;
    const ServiceConfig cfg = pinnedConfig();
    const std::vector<ServiceRequest> generated =
        buildRequests(parseRequestSpec("zipf85/n15000/w40"),
                      cfg.totalWords(), cfg.seed);

    const std::string path =
        testing::TempDir() + "tdc_service_replay.bin";
    writeTrace(path, generated);
    RequestStreamSpec replay;
    replay.dist = RequestDist::kTrace;
    replay.tracePath = path;
    const std::vector<ServiceRequest> loaded =
        buildRequests(replay, 0, 0); // words/seed ignored for traces
    ASSERT_EQ(loaded, generated);

    setParallelThreads(1);
    const ServiceReport reference = CacheService(cfg).serve(generated);
    for (unsigned threads : {1u, 8u}) {
        setParallelThreads(threads);
        EXPECT_EQ(CacheService(cfg).serve(loaded), reference)
            << "TDC_THREADS=" << threads;
    }
    std::remove(path.c_str());
}

TEST(ServiceDeterminism, SeedActuallyMatters)
{
    const ServiceConfig cfg = pinnedConfig();
    const std::vector<ServiceRequest> reqs =
        buildRequests(parseRequestSpec("uniform/n5000/w30"),
                      cfg.totalWords(), cfg.seed);
    ServiceConfig other = cfg;
    other.seed = cfg.seed + 1;
    // Same request stream, different service seed: the background
    // fault events differ, so the reports must differ.
    EXPECT_NE(CacheService(cfg).serve(reqs),
              CacheService(other).serve(reqs));
}

TEST(ServiceDeterminism, RepeatedRunsAreIdentical)
{
    const ServiceConfig cfg = pinnedConfig();
    const std::vector<ServiceRequest> reqs =
        buildRequests(parseRequestSpec("burst32/n8000/w50/g256"),
                      cfg.totalWords(), 7);
    const CacheService service(cfg);
    EXPECT_EQ(service.serve(reqs), service.serve(reqs));
}

} // namespace
} // namespace tdc
