/**
 * @file
 * The dram: scheme family end to end: spec parsing and canonical
 * round-trips, name/overhead pins, injectAndRecover determinism and
 * coverage behavior, and the dead-chip erasure ride-through that makes
 * IECC+chipkill survive a standing chip kill plus a second fault.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "common/rng.hh"
#include "scheme/dram_scheme.hh"
#include "scheme/scheme.hh"

namespace tdc
{
namespace
{

/** EXPECT a parse failure whose message quotes @p needle. */
void
expectParseError(const std::string &spec, const std::string &needle)
{
    try {
        parseScheme(spec);
        FAIL() << spec << " parsed";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << spec << " -> " << e.what();
    }
}

TEST(DramScheme, NamesAndSpecsArePinned)
{
    const SchemePtr x4 = parseScheme("dram:chipkill/x4");
    EXPECT_EQ(x4->name(), "Chipkill(x4,RS15/12)");
    EXPECT_EQ(x4->spec(), "dram:chipkill/x4");

    const SchemePtr x8 = parseScheme("dram:iecc+chipkill/x8");
    EXPECT_EQ(x8->name(), "IECC+Chipkill(x8,RS11/8)");
    EXPECT_EQ(x8->spec(), "dram:iecc+chipkill/x8");
}

TEST(DramScheme, CanonicalSpecOmitsDefaultsAndKeepsOverrides)
{
    // Explicit defaults normalize away.
    EXPECT_EQ(parseScheme("dram:chipkill/x4/r32/b2")->spec(),
              "dram:chipkill/x4");
    // Non-defaults and /cols survive.
    EXPECT_EQ(parseScheme("dram:chipkill/x8/r16/b4/cols")->spec(),
              "dram:chipkill/x8/r16/b4/cols");
    // Round-trip through the registry.
    const SchemePtr s = parseScheme("dram:iecc+chipkill/x4/cols");
    EXPECT_EQ(parseScheme(s->spec())->spec(), s->spec());
}

TEST(DramScheme, StorageOverheadPins)
{
    // Plain chipkill: 3 check chips per k data chips.
    EXPECT_NEAR(parseScheme("dram:chipkill/x4")->storageOverhead(),
                3.0 / 12.0, 1e-12);
    EXPECT_NEAR(parseScheme("dram:chipkill/x8")->storageOverhead(),
                3.0 / 8.0, 1e-12);
    // IECC adds per-chip SEC-DED check columns on top.
    EXPECT_GT(parseScheme("dram:iecc+chipkill/x4")->storageOverhead(),
              parseScheme("dram:chipkill/x4")->storageOverhead());
}

TEST(DramScheme, MalformedSpecsQuoteTheToken)
{
    expectParseError("dram:", "variant");
    expectParseError("dram:secded/x4", "secded");
    expectParseError("dram:chipkill", "width");
    expectParseError("dram:chipkill/x5", "x5");
    expectParseError("dram:chipkill/x4/z9", "z9");
    expectParseError("dram:chipkill/x4/r0", "r0");
    expectParseError("dram:chipkill/x4/b65", "b65");
}

TEST(DramScheme, InjectAndRecoverIsDeterministic)
{
    const SchemePtr s = parseScheme("dram:chipkill/x4");
    const FaultModel chip = FaultModel::chipKill();
    const InjectionOutcome a = s->injectAndRecover(chip, 20, 777);
    const InjectionOutcome b = s->injectAndRecover(chip, 20, 777);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.trials, 20);
}

TEST(DramScheme, ChipKillIsAlwaysCorrected)
{
    // A whole-chip failure is exactly one symbol per codeword: SSC
    // territory, whichever chip dies.
    for (const char *spec : {"dram:chipkill/x4", "dram:chipkill/x8",
                             "dram:iecc+chipkill/x4"}) {
        const InjectionOutcome o = parseScheme(spec)->injectAndRecover(
            FaultModel::chipKill(), 30, 4242);
        EXPECT_EQ(o.corrected, o.trials) << spec;
        EXPECT_EQ(o.silent, 0) << spec;
    }
}

TEST(DramScheme, SingleBitAndFullColumnAreCorrected)
{
    const SchemePtr s = parseScheme("dram:chipkill/x4");
    for (const FaultModel &fm :
         {FaultModel::singleBit(), FaultModel::fullColumn()}) {
        const InjectionOutcome o = s->injectAndRecover(fm, 25, 99);
        EXPECT_EQ(o.corrected, o.trials) << fm.describe();
    }
}

TEST(DramScheme, NoSilentCorruptionAcrossShapes)
{
    // Whatever the coverage, d=4 symbol decoding must never pass
    // corrupted data unflagged for these footprints.
    const SchemePtr s = parseScheme("dram:iecc+chipkill/x8");
    for (const FaultModel &fm :
         {FaultModel::chipKill(), FaultModel::rowHammer(3, 0.5),
          FaultModel::senseAmp(16), FaultModel::cluster(8, 8)}) {
        const InjectionOutcome o = s->injectAndRecover(fm, 20, 31337);
        EXPECT_EQ(o.silent, 0) << fm.describe();
    }
}

TEST(DramScheme, SessionSurvivesChipKillThenSecondFault)
{
    // Hard chip kill -> two scrubs mark the chip dead (standing
    // erasure) -> a later single-bit fault elsewhere is erasure+error,
    // still within d=4 reach. The ride-through that motivates the
    // dead-chip detector.
    const SchemePtr s = parseScheme("dram:chipkill/x4");
    const std::unique_ptr<DeviceSession> session =
        s->openLifetimeSession(2024);
    Rng rng(555);

    FaultModel kill = FaultModel::chipKill(2);
    kill.persistence = FaultPersistence::kStuckAt;
    session->inject(kill, rng);
    EXPECT_EQ(session->scrubAndVerify(), DeviceSession::Verdict::kCorrected);
    EXPECT_EQ(session->scrubAndVerify(), DeviceSession::Verdict::kCorrected);

    // Chip 2 is now a standing erasure; a transient single bit in some
    // other chip must still come back corrected.
    FaultModel single = FaultModel::singleBit();
    single.colLo = 40; // chip 10 on x4
    session->inject(single, rng);
    EXPECT_EQ(session->scrubAndVerify(), DeviceSession::Verdict::kCorrected);
}

TEST(DramScheme, TransientChipKillHealsInsteadOfGoingDead)
{
    // A transient whole-chip upset is scrubbed away on the first pass;
    // the dead-chip streak detector must NOT retire the chip, so a
    // later kill of a DIFFERENT chip is still plain SSC.
    const SchemePtr s = parseScheme("dram:chipkill/x4");
    const std::unique_ptr<DeviceSession> session =
        s->openLifetimeSession(77);
    Rng rng(1);

    session->inject(FaultModel::chipKill(0), rng);
    EXPECT_EQ(session->scrubAndVerify(), DeviceSession::Verdict::kCorrected);
    EXPECT_TRUE(session->stuckRows().empty());

    FaultModel kill = FaultModel::chipKill(5);
    kill.persistence = FaultPersistence::kStuckAt;
    session->inject(kill, rng);
    EXPECT_EQ(session->scrubAndVerify(), DeviceSession::Verdict::kCorrected);
}

TEST(DramScheme, SpareUnitsFollowTheRepairGranularity)
{
    Rng rng(9);
    FaultModel kill = FaultModel::chipKill(1);
    kill.persistence = FaultPersistence::kStuckAt;

    // Chip granularity: one repair unit for the whole chip.
    const std::unique_ptr<DeviceSession> chips =
        parseScheme("dram:chipkill/x4")->openLifetimeSession(3);
    chips->inject(kill, rng);
    chips->scrubAndVerify();
    ASSERT_EQ(chips->stuckRows().size(), 1u);
    EXPECT_EQ(chips->stuckRows()[0].first, 1u);
    chips->repairRow(1);
    EXPECT_TRUE(chips->stuckRows().empty());
    EXPECT_EQ(chips->scrubAndVerify(), DeviceSession::Verdict::kCorrected);

    // Column granularity: the same kill needs symbolBits spare columns.
    const std::unique_ptr<DeviceSession> cols =
        parseScheme("dram:chipkill/x4/cols")->openLifetimeSession(3);
    cols->inject(kill, rng);
    cols->scrubAndVerify();
    ASSERT_EQ(cols->stuckRows().size(), 4u); // cols 4..7
    EXPECT_EQ(cols->stuckRows()[0].first, 4u);
    for (size_t c = 4; c < 8; ++c)
        cols->repairRow(c);
    EXPECT_TRUE(cols->stuckRows().empty());
    EXPECT_EQ(cols->scrubAndVerify(), DeviceSession::Verdict::kCorrected);
}

TEST(DramScheme, CachedInjectIsByteIdenticalColdAndWarm)
{
    const SchemePtr s = parseScheme("dram:iecc+chipkill/x8");
    const FaultModel fm = FaultModel::senseAmp(8);
    const InjectionOutcome cold = cachedInjectAndRecover(*s, fm, 15, 606);
    const InjectionOutcome warm = cachedInjectAndRecover(*s, fm, 15, 606);
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(cold, s->injectAndRecover(fm, 15, 606));
}

} // namespace
} // namespace tdc
