/**
 * @file
 * DramArray geometry and symbol access, the per-chip/column/bank
 * stuck-fault summaries that drive spare-unit repair, and the ChipSecded
 * in-DRAM ECC exhaustive single/double behavior.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "dram/chip_iecc.hh"
#include "dram/dram_array.hh"

namespace tdc
{
namespace
{

DramGeometry
smallGeometry()
{
    DramGeometry g;
    g.symbolBits = 4;
    g.chips = 5;
    g.banks = 2;
    g.rowsPerBank = 4;
    return g;
}

TEST(DramArray, GeometryAndUnitMaps)
{
    const DramGeometry g = smallGeometry();
    DramArray dram(g);
    EXPECT_EQ(dram.cells().rows(), 8u);
    EXPECT_EQ(dram.cells().cols(), 20u);
    EXPECT_EQ(dram.cells().symbolBits(), 4u);
    EXPECT_EQ(dram.chipOfCol(0), 0u);
    EXPECT_EQ(dram.chipOfCol(3), 0u);
    EXPECT_EQ(dram.chipOfCol(4), 1u);
    EXPECT_EQ(dram.chipOfCol(19), 4u);
    EXPECT_EQ(dram.bankOfRow(0), 0u);
    EXPECT_EQ(dram.bankOfRow(3), 0u);
    EXPECT_EQ(dram.bankOfRow(4), 1u);
}

TEST(DramArray, CtorValidatesGeometry)
{
    DramGeometry g = smallGeometry();
    g.symbolBits = 0;
    EXPECT_THROW(DramArray a(g), std::invalid_argument);
    g = smallGeometry();
    g.chips = 0;
    EXPECT_THROW(DramArray a(g), std::invalid_argument);
    g = smallGeometry();
    g.rowsPerBank = 0;
    EXPECT_THROW(DramArray a(g), std::invalid_argument);
}

TEST(DramArray, SymbolRoundTripIsLsbFirstPerChip)
{
    DramArray dram(smallGeometry());
    dram.writeSymbol(2, 1, 0x9u); // bits 0 and 3 of chip 1
    EXPECT_EQ(dram.readSymbol(2, 1), 0x9u);
    EXPECT_TRUE(dram.cells().readBit(2, 4));  // chip 1, bit 0 -> col 4
    EXPECT_FALSE(dram.cells().readBit(2, 5));
    EXPECT_FALSE(dram.cells().readBit(2, 6));
    EXPECT_TRUE(dram.cells().readBit(2, 7));  // bit 3 -> col 7
    EXPECT_EQ(dram.readSymbol(2, 0), 0u); // neighbors untouched
    EXPECT_EQ(dram.readSymbol(2, 2), 0u);
}

TEST(DramArray, CodewordRoundTrip)
{
    DramArray dram(smallGeometry());
    const std::vector<uint32_t> word = {0x1, 0xF, 0x0, 0xA, 0x5};
    dram.writeCodeword(3, word);
    EXPECT_EQ(dram.readCodeword(3), word);
    // Other rows stay clear.
    EXPECT_EQ(dram.readCodeword(2), std::vector<uint32_t>(5, 0));
}

TEST(DramArray, StuckSummariesGroupByRepairUnit)
{
    DramArray dram(smallGeometry());
    // Two stuck cells in chip 1 (cols 4..7), one in chip 3 (cols 12..15).
    dram.cells().addStuckAt(0, 5, true);
    dram.cells().addStuckAt(6, 6, false);
    dram.cells().addStuckAt(1, 13, true);

    const auto chips = dram.stuckChips();
    ASSERT_EQ(chips.size(), 2u);
    EXPECT_EQ(chips[0], std::make_pair(size_t(1), size_t(2)));
    EXPECT_EQ(chips[1], std::make_pair(size_t(3), size_t(1)));

    const auto cols = dram.stuckColumns();
    ASSERT_EQ(cols.size(), 3u);
    EXPECT_EQ(cols[0], std::make_pair(size_t(5), size_t(1)));
    EXPECT_EQ(cols[1], std::make_pair(size_t(6), size_t(1)));
    EXPECT_EQ(cols[2], std::make_pair(size_t(13), size_t(1)));

    const auto banks = dram.stuckBanks();
    ASSERT_EQ(banks.size(), 2u);
    EXPECT_EQ(banks[0], std::make_pair(size_t(0), size_t(2))); // rows 0,1
    EXPECT_EQ(banks[1], std::make_pair(size_t(1), size_t(1))); // row 6
}

TEST(DramArray, RepairChipClearsOnlyThatGroup)
{
    DramArray dram(smallGeometry());
    dram.cells().addStuckAt(0, 5, true);
    dram.cells().addStuckAt(6, 6, false);
    dram.cells().addStuckAt(1, 13, true);
    dram.repairChip(1);
    EXPECT_FALSE(dram.cells().isStuck(0, 5));
    EXPECT_FALSE(dram.cells().isStuck(6, 6));
    EXPECT_TRUE(dram.cells().isStuck(1, 13));
    ASSERT_EQ(dram.stuckChips().size(), 1u);
    EXPECT_EQ(dram.stuckChips()[0].first, 3u);
}

TEST(DramArray, RepairColumnClearsOnlyThatColumn)
{
    DramArray dram(smallGeometry());
    dram.cells().addStuckAt(0, 5, true);
    dram.cells().addStuckAt(6, 5, false);
    dram.cells().addStuckAt(2, 6, true);
    dram.repairColumn(5);
    EXPECT_EQ(dram.cells().faultCount(), 1u);
    EXPECT_TRUE(dram.cells().isStuck(2, 6));
}

TEST(ChipIecc, CheckWidthsMatchExtendedHamming)
{
    EXPECT_EQ(ChipSecded(4).checkBits(), 4u); // 3 hamming + parity
    EXPECT_EQ(ChipSecded(8).checkBits(), 5u); // 4 hamming + parity
    EXPECT_EQ(ChipSecded(16).checkBits(), 6u);
    EXPECT_THROW(ChipSecded(1), std::invalid_argument);
    EXPECT_THROW(ChipSecded(17), std::invalid_argument);
}

TEST(ChipIecc, CleanBurstDecodesClean)
{
    for (unsigned b : {4u, 8u}) {
        const ChipSecded iecc(b);
        for (uint32_t sym = 0; sym < (1u << b); ++sym) {
            uint32_t s = sym;
            EXPECT_EQ(iecc.decode(s, iecc.encode(sym)), DecodeStatus::kClean);
            EXPECT_EQ(s, sym);
        }
    }
}

TEST(ChipIecc, ExhaustiveSingleDataBitCorrection)
{
    for (unsigned b : {4u, 8u}) {
        const ChipSecded iecc(b);
        for (uint32_t sym = 0; sym < (1u << b); ++sym) {
            const uint32_t check = iecc.encode(sym);
            for (unsigned j = 0; j < b; ++j) {
                uint32_t s = sym ^ (1u << j);
                ASSERT_EQ(iecc.decode(s, check), DecodeStatus::kCorrected)
                    << "b=" << b << " sym=" << sym << " bit=" << j;
                ASSERT_EQ(s, sym);
            }
        }
    }
}

TEST(ChipIecc, ExhaustiveDoubleDataBitDetection)
{
    for (unsigned b : {4u, 8u}) {
        const ChipSecded iecc(b);
        for (uint32_t sym = 0; sym < (1u << b); ++sym) {
            const uint32_t check = iecc.encode(sym);
            for (unsigned i = 0; i < b; ++i) {
                for (unsigned j = i + 1; j < b; ++j) {
                    uint32_t s = sym ^ (1u << i) ^ (1u << j);
                    ASSERT_EQ(iecc.decode(s, check),
                              DecodeStatus::kDetectedUncorrectable)
                        << "b=" << b << " sym=" << sym << " bits=" << i
                        << "," << j;
                }
            }
        }
    }
}

} // namespace
} // namespace tdc
