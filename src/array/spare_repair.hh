/**
 * @file
 * BISR: spare row/column allocation from a BIST fault map — the
 * conventional hardware-redundancy repair of Section 2.3.
 */

#ifndef TDC_ARRAY_SPARE_REPAIR_HH
#define TDC_ARRAY_SPARE_REPAIR_HH

#include <cstdint>
#include <vector>

#include "array/march_test.hh"

namespace tdc
{

/** Allocation produced by the repair solver. */
struct RepairPlan
{
    /** Physical rows remapped to spare rows. */
    std::vector<size_t> rowsReplaced;
    /** Physical columns remapped to spare columns. */
    std::vector<size_t> colsReplaced;
    /** Faults left uncovered (chip is bad if nonempty). */
    std::vector<MarchFault> unrepaired;

    bool success() const { return unrepaired.empty(); }
};

/**
 * Greedy must-repair allocator, the standard BISR algorithm:
 *
 *  1. Any row with more faults than the spare-column budget *must*
 *     use a spare row (a column per fault would overrun), and dually
 *     for columns — iterate until closure.
 *  2. Remaining sparse faults are covered greedily: pick whichever
 *     line (row or column) covers the most remaining faults while
 *     budget remains.
 *
 * Exact minimum repair is NP-complete; the must-repair + greedy
 * heuristic is what real BISR controllers ship.
 */
class SpareRepair
{
  public:
    /**
     * @param spare_rows available spare rows
     * @param spare_cols available spare columns
     */
    SpareRepair(size_t spare_rows, size_t spare_cols)
        : spareRows(spare_rows), spareCols(spare_cols)
    {
    }

    /** Solve the allocation for @p faults. */
    RepairPlan solve(const std::vector<MarchFault> &faults) const;

    /**
     * Convenience for the yield studies: with @p ecc_corrects_single,
     * words containing exactly one faulty bit are repaired by in-line
     * ECC and removed from the fault map before spare allocation
     * (Section 5.2's synergistic configuration). @p word_bits groups
     * columns into words within a row.
     */
    RepairPlan solveWithEcc(const std::vector<MarchFault> &faults,
                            size_t word_bits) const;

  private:
    size_t spareRows;
    size_t spareCols;
};

} // namespace tdc

#endif // TDC_ARRAY_SPARE_REPAIR_HH
