#include "array/protected_array.hh"

#include <cassert>

namespace tdc
{

ProtectedArray::ProtectedArray(size_t rows, CodePtr code, size_t degree)
    : horizontal(std::move(code)),
      map(horizontal->codewordBits(), degree),
      array(rows, map.rowBits())
{
}

void
ProtectedArray::writeWord(size_t row, size_t slot, const BitVector &data)
{
    assert(data.size() == horizontal->dataBits());
    BitVector phys_row = array.readRow(row);
    map.depositWord(phys_row, slot, horizontal->encode(data));
    array.writeRow(row, phys_row);
}

AccessResult
ProtectedArray::readWord(size_t row, size_t slot)
{
    const BitVector phys_row = array.readRow(row);
    const BitVector codeword = map.extractWord(phys_row, slot);
    DecodeResult decoded = horizontal->decode(codeword);

    AccessResult result;
    result.status = decoded.status;
    result.data = std::move(decoded.data);

    if (result.status == DecodeStatus::kCorrected) {
        // In-line correction: repair the stored copy too.
        BitVector fixed_row = phys_row;
        map.depositWord(fixed_row, slot, horizontal->encode(result.data));
        array.writeRow(row, fixed_row);
    }
    return result;
}

AccessResult
ProtectedArray::peekWord(size_t row, size_t slot) const
{
    const BitVector phys_row = array.readRow(row);
    DecodeResult decoded =
        horizontal->decode(map.extractWord(phys_row, slot));
    AccessResult result;
    result.status = decoded.status;
    result.data = std::move(decoded.data);
    return result;
}

size_t
ProtectedArray::contiguousDetectWidth() const
{
    return map.degree() * horizontal->burstDetectCapability();
}

size_t
ProtectedArray::contiguousCorrectWidth() const
{
    return map.degree() * horizontal->correctCapability();
}

} // namespace tdc
