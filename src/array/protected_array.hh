/**
 * @file
 * Conventional one-dimensional protection: per-word horizontal code +
 * physical bit interleaving. The baseline of Figures 3(a) and 3(b).
 */

#ifndef TDC_ARRAY_PROTECTED_ARRAY_HH
#define TDC_ARRAY_PROTECTED_ARRAY_HH

#include <optional>

#include "array/interleave.hh"
#include "array/memory_array.hh"
#include "ecc/code.hh"

namespace tdc
{

/** Outcome of one protected word access. */
struct AccessResult
{
    DecodeStatus status = DecodeStatus::kClean;
    BitVector data;

    bool ok() const { return status != DecodeStatus::kDetectedUncorrectable; }
};

/**
 * An SRAM array protected the conventional way: each logical word is
 * encoded with a per-word code and the resulting codewords are d-way
 * physically interleaved along rows. There is no vertical dimension;
 * whatever the horizontal code cannot correct is lost.
 *
 * Geometry: dataRows x (degree * codewordBits) physical cells, holding
 * dataRows * degree logical words.
 */
class ProtectedArray
{
  public:
    /**
     * @param rows number of physical rows
     * @param code per-word horizontal code (shared, immutable)
     * @param degree physical interleave factor
     */
    ProtectedArray(size_t rows, CodePtr code, size_t degree);

    size_t rows() const { return array.rows(); }
    size_t wordsPerRow() const { return map.degree(); }
    size_t words() const { return rows() * wordsPerRow(); }
    size_t dataBits() const { return horizontal->dataBits(); }

    /** Underlying cell array, exposed for fault injection. */
    MemoryArray &cells() { return array; }
    const MemoryArray &cells() const { return array; }

    /** Interleave geometry. */
    const InterleaveMap &interleave() const { return map; }

    /** The horizontal code. */
    const Code &code() const { return *horizontal; }

    /** Encode and store @p data into word @p slot of row @p row. */
    void writeWord(size_t row, size_t slot, const BitVector &data);

    /**
     * Read and decode word @p slot of row @p row. On kCorrected the
     * repaired codeword is written back (in-line correction).
     */
    AccessResult readWord(size_t row, size_t slot);

    /** Decode without write-back (used by scrubbing sweeps). */
    AccessResult peekWord(size_t row, size_t slot) const;

    /**
     * Fraction of cell storage spent on check bits:
     * checkBits / dataBits per word (interleaving does not change it).
     */
    double storageOverhead() const { return horizontal->storageOverhead(); }

    /**
     * Widest physically-contiguous row-direction error guaranteed
     * covered (detected, and corrected iff the code corrects):
     * degree * per-word guarantee.
     */
    size_t contiguousDetectWidth() const;
    size_t contiguousCorrectWidth() const;

  private:
    CodePtr horizontal;
    InterleaveMap map;
    MemoryArray array;
};

} // namespace tdc

#endif // TDC_ARRAY_PROTECTED_ARRAY_HH
