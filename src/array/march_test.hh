/**
 * @file
 * Memory BIST: a March C- test engine over a MemoryArray.
 *
 * The paper assumes on-chip BIST/BISR hardware both for
 * manufacture-time repair (Section 2.3) and as the host of the 2D
 * recovery process (Section 4: "The recovery process can be
 * implemented as part of the on-chip BIST/BISR hardware"). This is
 * that substrate: March C- detects all stuck-at, transition and
 * coupling faults visible at cell granularity, and reports the faulty
 * cell coordinates for the repair allocator.
 */

#ifndef TDC_ARRAY_MARCH_TEST_HH
#define TDC_ARRAY_MARCH_TEST_HH

#include <cstdint>
#include <vector>

#include "array/memory_array.hh"

namespace tdc
{

/** One observed mismatch during a march element. */
struct MarchFault
{
    size_t row = 0;
    size_t col = 0;
    /** Value the cell produced instead of the expected one. */
    bool observed = false;

    bool operator==(const MarchFault &other) const = default;
};

/** Result of a full march run. */
struct MarchResult
{
    /** Distinct faulty cells (deduplicated across elements). */
    std::vector<MarchFault> faults;
    /** Total single-cell read/write operations performed. */
    uint64_t operations = 0;

    bool clean() const { return faults.empty(); }
};

/**
 * March C-: {up(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0);
 * down(r1)}... The canonical 10N variant implemented here is
 *
 *   M0: up   w0
 *   M1: up   r0 w1
 *   M2: up   r1 w0
 *   M3: down r0 w1
 *   M4: down r1 w0
 *   M5: down r0
 *
 * Note the test is destructive: array contents are overwritten (ends
 * all-zero), exactly like the hardware. Run it at manufacture time or
 * on a bank taken out of service.
 */
class MarchTest
{
  public:
    explicit MarchTest(MemoryArray &array) : arr(array) {}

    /** Run the full March C- sequence. */
    MarchResult run();

    /** Cost model: operations per cell of March C- (10N). */
    static constexpr unsigned opsPerCell = 10;

  private:
    /** One march element over all cells in the given direction. */
    void element(bool ascending, bool read_first, bool expect,
                 bool write_after, bool write_value, MarchResult &out);

    MemoryArray &arr;
};

} // namespace tdc

#endif // TDC_ARRAY_MARCH_TEST_HH
