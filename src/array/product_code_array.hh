/**
 * @file
 * Related-work baseline: a classic HV-parity / product-code protected
 * array (Calingaert '61, Elias '54, Tanner '84, Yamada '84 — the
 * paper's Section 6).
 *
 * One even-parity bit per row and one parity bit per column protect
 * the whole array. A single flipped cell produces exactly one row
 * mismatch and one column mismatch whose intersection locates it.
 * Unlike 2D coding, detection *requires reading both parity sets*
 * (no cheap per-word fast path), and multi-bit patterns quickly
 * become ambiguous or invisible — the deficiencies that motivate the
 * paper's decoupled horizontal/vertical design.
 */

#ifndef TDC_ARRAY_PRODUCT_CODE_ARRAY_HH
#define TDC_ARRAY_PRODUCT_CODE_ARRAY_HH

#include <cstdint>

#include "array/memory_array.hh"
#include "common/bit_vector.hh"

namespace tdc
{

/** Result of a product-code check/correct pass. */
struct ProductCodeReport
{
    /** Array consistent with both parity sets. */
    bool clean = false;
    /** Bits flipped back by intersection decoding. */
    size_t corrected = 0;
    /** Mismatches remained that could not be resolved. */
    bool uncorrectable = false;
};

/**
 * R x C data array with R row-parity bits and C column-parity bits,
 * maintained on every write.
 */
class ProductCodeArray
{
  public:
    ProductCodeArray(size_t rows, size_t cols);

    size_t rows() const { return data.rows(); }
    size_t cols() const { return data.cols(); }

    /** Underlying cells, exposed for fault injection. */
    MemoryArray &cells() { return data; }

    /** Write a full row, updating both parity sets. */
    void writeRow(size_t r, const BitVector &value);

    /** Read a full row (no checking: product codes have no per-word
     *  detection path; integrity comes from check()). */
    BitVector readRow(size_t r) const { return data.readRow(r); }

    /**
     * Full-array check-and-correct sweep: recompute row and column
     * parities; while exactly pairable mismatches remain, flip the
     * intersection cells. Single-bit errors are always corrected;
     * rectangular multi-bit patterns with >= 2 rows and >= 2 columns
     * are ambiguous (the classic product-code failure) and reported
     * uncorrectable; patterns with even counts per line are invisible.
     */
    ProductCodeReport checkAndCorrect();

    /** Storage overhead: (R + C) extra bits over R*C data bits. */
    double storageOverhead() const
    {
        return double(rows() + cols()) / double(rows() * cols());
    }

  private:
    /** Row/column parity mismatch vectors vs. stored parity. */
    BitVector rowSyndrome() const;
    BitVector colSyndrome() const;

    MemoryArray data;
    BitVector rowParity; ///< parity bit per row
    BitVector colParity; ///< parity bit per column
};

} // namespace tdc

#endif // TDC_ARRAY_PRODUCT_CODE_ARRAY_HH
