#include "array/memory_array.hh"

#include <cassert>

namespace tdc
{

MemoryArray::MemoryArray(size_t rows, size_t cols)
    : cells(rows, cols)
{
    assert(rows > 0 && cols > 0);
}

BitVector
MemoryArray::readRow(size_t r) const
{
    assert(r < rows());
    ++reads;
    BitVector row = cells.row(r);
    if (!stuckCells.empty()) {
        for (size_t c = 0; c < cols(); ++c) {
            auto it = stuckCells.find(key(r, c));
            if (it != stuckCells.end())
                row.set(c, it->second);
        }
    }
    return row;
}

void
MemoryArray::writeRow(size_t r, const BitVector &value)
{
    assert(r < rows());
    assert(value.size() == cols());
    ++writes;
    cells.setRow(r, value);
}

bool
MemoryArray::readBit(size_t r, size_t c) const
{
    assert(r < rows() && c < cols());
    auto it = stuckCells.find(key(r, c));
    if (it != stuckCells.end())
        return it->second;
    return cells.get(r, c);
}

void
MemoryArray::writeBit(size_t r, size_t c, bool value)
{
    assert(r < rows() && c < cols());
    cells.set(r, c, value);
}

void
MemoryArray::flipBit(size_t r, size_t c)
{
    assert(r < rows() && c < cols());
    cells.flip(r, c);
}

void
MemoryArray::addStuckAt(size_t r, size_t c, bool value)
{
    assert(r < rows() && c < cols());
    stuckCells[key(r, c)] = value;
}

void
MemoryArray::clearFault(size_t r, size_t c)
{
    stuckCells.erase(key(r, c));
}

void
MemoryArray::clearAllFaults()
{
    stuckCells.clear();
}

bool
MemoryArray::isStuck(size_t r, size_t c) const
{
    return stuckCells.count(key(r, c)) != 0;
}

void
MemoryArray::resetCounters()
{
    reads = 0;
    writes = 0;
}

} // namespace tdc
