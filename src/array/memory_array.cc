#include "array/memory_array.hh"

#include <algorithm>
#include <cassert>

namespace tdc
{

MemoryArray::MemoryArray(size_t rows, size_t cols)
    : cells(rows, cols)
{
    assert(rows > 0 && cols > 0);
}

BitVector
MemoryArray::readRow(size_t r) const
{
    BitVector row;
    readRowInto(r, row);
    return row;
}

void
MemoryArray::readRowInto(size_t r, BitVector &out) const
{
    assert(r < rows());
    ++reads;
    copyRowInto(r, out);
}

void
MemoryArray::copyRowInto(size_t r, BitVector &out) const
{
    assert(r < rows());
    out = cells.row(r);
    auto it = stuckByRow.find(r);
    if (it != stuckByRow.end()) {
        for (const auto &[c, v] : it->second)
            out.set(c, v);
    }
}

ConstBitSpan
MemoryArray::viewRow(size_t r) const
{
    assert(r < rows());
    assert(!rowHasStuck(r) && "stuck rows must be read through readRow");
    ++reads;
    return ConstBitSpan(cells.row(r));
}

void
MemoryArray::writeRow(size_t r, const BitVector &value)
{
    assert(r < rows());
    assert(value.size() == cols());
    ++writes;
    cells.setRow(r, value);
}

void
MemoryArray::xorRow(size_t r, const BitVector &delta)
{
    assert(r < rows());
    assert(delta.size() == cols());
    ++writes;
    cells.row(r) ^= delta;
}

bool
MemoryArray::readBit(size_t r, size_t c) const
{
    assert(r < rows() && c < cols());
    auto it = stuckByRow.find(r);
    if (it != stuckByRow.end()) {
        for (const auto &[col, v] : it->second)
            if (col == c)
                return v;
    }
    return cells.get(r, c);
}

void
MemoryArray::writeBit(size_t r, size_t c, bool value)
{
    assert(r < rows() && c < cols());
    cells.set(r, c, value);
}

void
MemoryArray::flipBit(size_t r, size_t c)
{
    assert(r < rows() && c < cols());
    cells.flip(r, c);
}

void
MemoryArray::addStuckAt(size_t r, size_t c, bool value)
{
    assert(r < rows() && c < cols());
    auto &row_faults = stuckByRow[r];
    for (auto &[col, v] : row_faults) {
        if (col == c) {
            v = value;
            return;
        }
    }
    row_faults.emplace_back(c, value);
    ++stuckTotal;
}

void
MemoryArray::clearFault(size_t r, size_t c)
{
    auto it = stuckByRow.find(r);
    if (it == stuckByRow.end())
        return;
    auto &row_faults = it->second;
    auto pos = std::find_if(row_faults.begin(), row_faults.end(),
                            [c](const auto &f) { return f.first == c; });
    if (pos == row_faults.end())
        return;
    row_faults.erase(pos);
    --stuckTotal;
    if (row_faults.empty())
        stuckByRow.erase(it);
}

void
MemoryArray::clearAllFaults()
{
    stuckByRow.clear();
    stuckTotal = 0;
}

std::vector<std::pair<size_t, size_t>>
MemoryArray::stuckRows() const
{
    std::vector<std::pair<size_t, size_t>> out;
    out.reserve(stuckByRow.size());
    for (const auto &[row, faults] : stuckByRow)
        out.emplace_back(row, faults.size());
    std::sort(out.begin(), out.end());
    return out;
}

void
MemoryArray::clearRowFaults(size_t r)
{
    auto it = stuckByRow.find(r);
    if (it == stuckByRow.end())
        return;
    // Materialize each stuck value into the stored state so the
    // visible row is unchanged by the overlay removal.
    for (const auto &[col, value] : it->second)
        cells.set(r, col, value);
    stuckTotal -= it->second.size();
    stuckByRow.erase(it);
}

bool
MemoryArray::isStuck(size_t r, size_t c) const
{
    auto it = stuckByRow.find(r);
    if (it == stuckByRow.end())
        return false;
    for (const auto &[col, v] : it->second)
        if (col == c)
            return true;
    return false;
}

void
MemoryArray::resetCounters()
{
    reads = 0;
    writes = 0;
}

} // namespace tdc
