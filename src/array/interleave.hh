/**
 * @file
 * Physical bit interleaving (column multiplexing) geometry.
 */

#ifndef TDC_ARRAY_INTERLEAVE_HH
#define TDC_ARRAY_INTERLEAVE_HH

#include <cstddef>
#include <vector>

#include "common/bit_span.hh"
#include "common/bit_vector.hh"

namespace tdc
{

/**
 * Maps logical codeword bits to physical columns of a bit-interleaved
 * SRAM row (Figure 2(a) of the paper).
 *
 * A physical row holds @p degree codewords of @p wordBits bits each,
 * interleaved so that bit b of word w sits at physical column
 * b*degree + w. Physically adjacent cells therefore belong to
 * different logical words, which is what converts a physically
 * contiguous multi-bit upset into <= degree separate small errors,
 * one per codeword.
 *
 * Gather/scatter is word-parallel for every degree up to 64: within a
 * 64-bit row word the columns of one slot are the positions congruent
 * to a fixed phase (mod degree), so each (phase) gets a precomputed
 * PEXT-style compress plan (BitCompressPlan — a single hardware PEXT/
 * PDEP on BMI2 machines). When the degree divides 64 the phase is the
 * slot index in every word (the classic stride case); otherwise the
 * phase walks by 64 mod degree per word and the per-phase plan cache
 * covers all of them, so non-dividing degrees (e.g. i3) run the same
 * word-parallel path instead of a per-bit loop. Degrees above 64 keep
 * the per-bit fallback.
 */
class InterleaveMap
{
  public:
    /**
     * @param word_bits codeword width (data + check bits)
     * @param degree interleave factor (1 = no interleaving)
     */
    InterleaveMap(size_t word_bits, size_t degree);

    size_t wordBits() const { return wordWidth; }
    size_t degree() const { return intvDegree; }

    /** Physical row width = wordBits * degree. */
    size_t rowBits() const { return wordWidth * intvDegree; }

    /** Physical column of bit @p bit of word slot @p slot. */
    size_t physicalColumn(size_t slot, size_t bit) const;

    /** Word slot that owns physical column @p col. */
    size_t slotOf(size_t col) const { return col % intvDegree; }

    /** Bit index within its word of physical column @p col. */
    size_t bitOf(size_t col) const { return col / intvDegree; }

    /** Gather word slot @p slot out of a physical row. */
    BitVector extractWord(const BitVector &row, size_t slot) const;

    /**
     * Gather word slot @p slot out of @p row into @p word, reusing
     * the storage of @p word (resized once if its length differs).
     * The allocation-free form the access hot paths use; the span
     * overload lets a clean read borrow the stored row directly.
     */
    void extractWordInto(ConstBitSpan row, size_t slot,
                         BitVector &word) const;
    void extractWordInto(const BitVector &row, size_t slot,
                         BitVector &word) const
    {
        extractWordInto(ConstBitSpan(row), slot, word);
    }

    /** Scatter @p word into slot @p slot of a physical row. */
    void depositWord(BitVector &row, size_t slot,
                     const BitVector &word) const;

    /** True iff the word-parallel gather/scatter path is active. */
    bool wordParallel() const { return !plans.empty(); }

    /**
     * Maximum physically-contiguous error width (in columns) whose
     * per-word footprint stays within @p per_word_bits contiguous
     * bits: degree * per_word_bits. This is the paper's "EDC8+Intv4
     * detects 32-bit errors along a row" arithmetic.
     */
    size_t contiguousCoverage(size_t per_word_bits) const
    {
        return intvDegree * per_word_bits;
    }

  private:
    /** Per-bit gather, the degree > 64 fallback. */
    void extractWordSlow(ConstBitSpan row, size_t slot,
                         BitVector &word) const;

    /** Per-bit scatter, the degree > 64 fallback. */
    void depositWordSlow(BitVector &row, size_t slot,
                         const BitVector &word) const;

    size_t wordWidth;
    size_t intvDegree;

    /**
     * Plan cache, one compress/expand plan per in-word phase: plans[p]
     * selects word positions congruent to p (mod degree). Empty iff
     * degree > 64 (per-bit fallback).
     */
    std::vector<BitCompressPlan> plans;

    /**
     * Phase advance between consecutive 64-bit row words,
     * (degree - 64 mod degree) mod degree: zero exactly when the
     * degree divides 64.
     */
    size_t phaseStep = 0;
};

} // namespace tdc

#endif // TDC_ARRAY_INTERLEAVE_HH
