/**
 * @file
 * Physical bit interleaving (column multiplexing) geometry.
 */

#ifndef TDC_ARRAY_INTERLEAVE_HH
#define TDC_ARRAY_INTERLEAVE_HH

#include <cstddef>

#include "common/bit_vector.hh"

namespace tdc
{

/**
 * Maps logical codeword bits to physical columns of a bit-interleaved
 * SRAM row (Figure 2(a) of the paper).
 *
 * A physical row holds @p degree codewords of @p wordBits bits each,
 * interleaved so that bit b of word w sits at physical column
 * b*degree + w. Physically adjacent cells therefore belong to
 * different logical words, which is what converts a physically
 * contiguous multi-bit upset into <= degree separate small errors,
 * one per codeword.
 */
class InterleaveMap
{
  public:
    /**
     * @param word_bits codeword width (data + check bits)
     * @param degree interleave factor (1 = no interleaving)
     */
    InterleaveMap(size_t word_bits, size_t degree);

    size_t wordBits() const { return wordWidth; }
    size_t degree() const { return intvDegree; }

    /** Physical row width = wordBits * degree. */
    size_t rowBits() const { return wordWidth * intvDegree; }

    /** Physical column of bit @p bit of word slot @p slot. */
    size_t physicalColumn(size_t slot, size_t bit) const;

    /** Word slot that owns physical column @p col. */
    size_t slotOf(size_t col) const { return col % intvDegree; }

    /** Bit index within its word of physical column @p col. */
    size_t bitOf(size_t col) const { return col / intvDegree; }

    /** Gather word slot @p slot out of a physical row. */
    BitVector extractWord(const BitVector &row, size_t slot) const;

    /** Scatter @p word into slot @p slot of a physical row. */
    void depositWord(BitVector &row, size_t slot,
                     const BitVector &word) const;

    /**
     * Maximum physically-contiguous error width (in columns) whose
     * per-word footprint stays within @p per_word_bits contiguous
     * bits: degree * per_word_bits. This is the paper's "EDC8+Intv4
     * detects 32-bit errors along a row" arithmetic.
     */
    size_t contiguousCoverage(size_t per_word_bits) const
    {
        return intvDegree * per_word_bits;
    }

  private:
    size_t wordWidth;
    size_t intvDegree;
};

} // namespace tdc

#endif // TDC_ARRAY_INTERLEAVE_HH
