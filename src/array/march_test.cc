#include "array/march_test.hh"

#include <set>

namespace tdc
{

void
MarchTest::element(bool ascending, bool read_first, bool expect,
                   bool write_after, bool write_value, MarchResult &out)
{
    const size_t rows = arr.rows();
    const size_t cols = arr.cols();
    const size_t total = rows * cols;
    for (size_t i = 0; i < total; ++i) {
        const size_t idx = ascending ? i : total - 1 - i;
        const size_t r = idx / cols;
        const size_t c = idx % cols;
        if (read_first) {
            const bool value = arr.readBit(r, c);
            ++out.operations;
            if (value != expect)
                out.faults.push_back({r, c, value});
        }
        if (write_after) {
            arr.writeBit(r, c, write_value);
            ++out.operations;
        }
    }
}

MarchResult
MarchTest::run()
{
    MarchResult out;
    // M0: up w0
    element(true, false, false, true, false, out);
    // M1: up r0 w1
    element(true, true, false, true, true, out);
    // M2: up r1 w0
    element(true, true, true, true, false, out);
    // M3: down r0 w1
    element(false, true, false, true, true, out);
    // M4: down r1 w0
    element(false, true, true, true, false, out);
    // M5: down r0
    element(false, true, false, false, false, out);

    // Deduplicate faulty cells (a stuck cell fails several elements).
    std::set<std::pair<size_t, size_t>> seen;
    std::vector<MarchFault> unique;
    for (const MarchFault &f : out.faults) {
        if (seen.insert({f.row, f.col}).second)
            unique.push_back(f);
    }
    out.faults = std::move(unique);
    return out;
}

} // namespace tdc
