/**
 * @file
 * Fault descriptors and the fault injector: the error-event generator
 * used by every coverage and reliability experiment.
 */

#ifndef TDC_ARRAY_FAULT_HH
#define TDC_ARRAY_FAULT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "array/memory_array.hh"
#include "common/rng.hh"

namespace tdc
{

/** The error-event shapes discussed in the paper's Sections 1-3. */
enum class FaultShape
{
    /** One cell upset: the dominant soft-error event today. */
    kSingleBit,
    /** Contiguous horizontal burst in one row (wordline-direction). */
    kRowBurst,
    /** Contiguous vertical burst in one column (bitline-direction). */
    kColumnBurst,
    /**
     * Rectangular cluster: every cell inside a WxH footprint flips
     * with a given density (1.0 = solid block). Models single-event
     * multi-bit upsets from one particle strike.
     */
    kCluster,
    /** Entire physical row fails. */
    kFullRow,
    /** Entire physical column fails. */
    kFullColumn,
    /**
     * Whole-device failure: every cell of one symbol-wide chip column
     * group fails (DRAM chip kill; on a plain bit array the symbol
     * width is 1 and this degenerates to a full column).
     */
    kChipKill,
    /**
     * Row-hammer-style disturbance: a band of adjacent victim rows
     * across the full array width, each cell flipping with a given
     * activation-dependent density.
     */
    kRowHammer,
    /**
     * Sense-amplifier failure: a shared sense amp serves a bitline
     * pair, so two adjacent columns fail together over a window of
     * rows.
     */
    kSenseAmp,
};

/** Soft (transient) vs hard (persistent stuck-at) manifestation. */
enum class FaultPersistence
{
    kTransient,
    kStuckAt,
};

/** One injected fault event with its ground-truth footprint. */
struct FaultEvent
{
    FaultShape shape = FaultShape::kSingleBit;
    FaultPersistence persistence = FaultPersistence::kTransient;

    /** Affected cells (row, col), the ground truth for verification. */
    std::vector<std::pair<size_t, size_t>> cells;

    /** Bounding box (inclusive) of the footprint. */
    size_t rowLo = 0, rowHi = 0, colLo = 0, colHi = 0;

    size_t width() const { return colHi - colLo + 1; }
    size_t height() const { return rowHi - rowLo + 1; }

    std::string describe() const;
};

/**
 * Declarative fault-event description: the shape x footprint x density
 * axis of an injection campaign, decoupled from any concrete array so
 * campaign grids and batch recovery APIs can carry it by value. Feed
 * it to FaultInjector::inject to realize one event.
 */
struct FaultModel
{
    FaultShape shape = FaultShape::kCluster;
    FaultPersistence persistence = FaultPersistence::kTransient;

    /** Footprint in physical columns (row direction). Ignored by
     *  single-bit / column-burst / full-row / full-column shapes. */
    size_t width = 1;

    /** Footprint in rows (column direction). Ignored by single-bit /
     *  row-burst / full-row / full-column shapes. */
    size_t height = 1;

    /** Per-cell flip probability inside a cluster footprint. */
    double density = 1.0;

    /** Anchor (top-left) of the footprint; -1 = uniform random draw
     *  at injection time. */
    long rowLo = -1;
    long colLo = -1;

    static FaultModel singleBit();
    static FaultModel rowBurst(size_t width);
    static FaultModel columnBurst(size_t height);
    static FaultModel cluster(size_t width, size_t height,
                              double density = 1.0);
    static FaultModel fullRow();
    static FaultModel fullColumn();

    /** Whole-chip kill; @p chip = -1 draws a random chip. The chip
     *  index rides in colLo (it selects a symbol group, not a cell). */
    static FaultModel chipKill(long chip = -1);

    /** Row-hammer band of @p rows victim rows, per-cell density. */
    static FaultModel rowHammer(size_t rows, double density = 1.0);

    /** Sense-amp failure: 2 adjacent columns x @p height rows. */
    static FaultModel senseAmp(size_t height);

    /** Short label for campaign tables, e.g. "32x32" for clusters. */
    std::string describe() const;

    /**
     * Canonical spec string: the campaign result cache's key axis. For
     * grammar-representable models this is exactly the parseFaultModel
     * spelling and round-trips (parseFaultModel(m.spec()).spec() ==
     * m.spec()); models the grammar cannot express — fixed anchors,
     * stuck-at persistence — append "/@<row>,<col>" and "/hard"
     * suffixes so distinct models never share a cache entry. Density
     * is printed with just enough digits to round-trip exactly.
     */
    std::string spec() const;
};

/**
 * Shortest decimal string that strtod parses back to exactly @p v —
 * the double printer every canonical spec / cache-key axis shares
 * (FaultModel density, FIT-mix scales, lifetime mission/scrub hours),
 * so equal doubles always map to one spelling and one cache entry.
 */
std::string exactDouble(double v);

/**
 * Parse a fault-model spec string (the --fault axis of the tdc_run
 * driver):
 *
 *   single            one-cell upset (uniform random position)
 *   row:W             W-bit horizontal burst
 *   col:H             H-bit vertical burst
 *   WxH               solid WxH cluster  (e.g. "32x32")
 *   WxH@D             WxH cluster, per-cell flip probability D in (0,1]
 *   fullrow           an entire physical row
 *   fullcol           an entire physical column
 *   chip:I            kill chip I (whole symbol column group)
 *   chip:any          kill a uniformly random chip
 *   hammer:W          row-hammer band of W victim rows (solid)
 *   hammer:W@D        row-hammer band, per-cell flip probability D
 *   senseamp:H        sense-amp failure: 2 adjacent columns x H rows
 *
 * Malformed specs or out-of-range footprints throw
 * std::invalid_argument quoting the offending token.
 */
FaultModel parseFaultModel(const std::string &spec);

/**
 * Injects fault events into a MemoryArray. Transient events flip the
 * stored state; stuck-at events install overlay faults with the
 * complement of the current stored value (so they are observable).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(Rng &rng) : rng(rng) {}

    /** Flip/stick one random cell. */
    FaultEvent injectSingleBit(MemoryArray &arr,
                               FaultPersistence p =
                                   FaultPersistence::kTransient);

    /** Contiguous burst of @p width cells in row @p row at a random
     *  start (or @p col_lo if >= 0). */
    FaultEvent injectRowBurst(MemoryArray &arr, size_t row, size_t width,
                              long col_lo = -1,
                              FaultPersistence p =
                                  FaultPersistence::kTransient);

    /** Contiguous burst of @p height cells in column @p col. */
    FaultEvent injectColumnBurst(MemoryArray &arr, size_t col,
                                 size_t height, long row_lo = -1,
                                 FaultPersistence p =
                                     FaultPersistence::kTransient);

    /**
     * WxH rectangular cluster at a random (or given) anchor; each cell
     * in the footprint flips with probability @p density, but the
     * event is re-rolled until at least one cell in every spanned row
     * flips (so width/height describe the real footprint).
     */
    FaultEvent injectCluster(MemoryArray &arr, size_t width, size_t height,
                             double density = 1.0, long row_lo = -1,
                             long col_lo = -1,
                             FaultPersistence p =
                                 FaultPersistence::kTransient);

    /** Fail an entire row. */
    FaultEvent injectFullRow(MemoryArray &arr, size_t row,
                             FaultPersistence p =
                                 FaultPersistence::kTransient);

    /** Fail an entire column. */
    FaultEvent injectFullColumn(MemoryArray &arr, size_t col,
                                FaultPersistence p =
                                    FaultPersistence::kTransient);

    /**
     * Kill chip @p chip: every cell in its symbolBits()-wide column
     * group, over all rows. @p chip = -1 draws a random chip.
     */
    FaultEvent injectChipKill(MemoryArray &arr, long chip = -1,
                              FaultPersistence p =
                                  FaultPersistence::kTransient);

    /**
     * Row-hammer band: @p rows adjacent victim rows (clamped to the
     * array) across the full width, each cell flipping with
     * probability @p density, re-rolled until at least one cell flips.
     */
    FaultEvent injectRowHammer(MemoryArray &arr, size_t rows,
                               double density = 1.0, long row_lo = -1,
                               FaultPersistence p =
                                   FaultPersistence::kTransient);

    /**
     * Sense-amp failure: two adjacent columns (or one, on a 1-column
     * array) over @p height rows (clamped to the array).
     */
    FaultEvent injectSenseAmp(MemoryArray &arr, size_t height,
                              long row_lo = -1, long col_lo = -1,
                              FaultPersistence p =
                                  FaultPersistence::kTransient);

    /**
     * Realize one @p model event: dispatch to the shape-specific
     * injector, drawing any unanchored coordinates from the RNG.
     */
    FaultEvent inject(MemoryArray &arr, const FaultModel &model);

    /**
     * Scatter @p count independent single-cell stuck-at faults
     * uniformly over the array (the manufacture-time hard-error model
     * of Section 5.2). Returns one event listing every cell.
     */
    FaultEvent injectRandomHardFaults(MemoryArray &arr, size_t count);

  private:
    void applyCell(MemoryArray &arr, size_t r, size_t c,
                   FaultPersistence p, FaultEvent &event);

    Rng &rng;
};

} // namespace tdc

#endif // TDC_ARRAY_FAULT_HH
