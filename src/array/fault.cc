#include "array/fault.hh"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tdc
{

namespace
{

/** Parse a positive decimal footprint dimension out of @p token. */
size_t
parseDim(const std::string &token, const std::string &digits)
{
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument("bad fault footprint in \"" + token +
                                    "\"");
    const unsigned long long v = std::strtoull(digits.c_str(), nullptr, 10);
    if (v == 0 || v > 65536)
        throw std::invalid_argument("fault footprint out of range in \"" +
                                    token + "\"");
    return size_t(v);
}

/** Per-cell flip probability out of the "@D" suffix of @p token. */
double
parseDensity(const std::string &token, const std::string &dens)
{
    char *end = nullptr;
    const double density = std::strtod(dens.c_str(), &end);
    if (dens.empty() || end != dens.c_str() + dens.size() ||
        density <= 0.0 || density > 1.0)
        throw std::invalid_argument("bad cluster density in \"" + token +
                                    "\"");
    return density;
}

} // namespace

FaultModel
parseFaultModel(const std::string &spec)
{
    if (spec == "single")
        return FaultModel::singleBit();
    if (spec == "fullrow" || spec == "full-row")
        return FaultModel::fullRow();
    if (spec == "fullcol" || spec == "full-col")
        return FaultModel::fullColumn();
    if (spec.rfind("row:", 0) == 0)
        return FaultModel::rowBurst(parseDim(spec, spec.substr(4)));
    if (spec.rfind("col:", 0) == 0)
        return FaultModel::columnBurst(parseDim(spec, spec.substr(4)));
    if (spec.rfind("chip:", 0) == 0) {
        const std::string idx = spec.substr(5);
        if (idx == "any")
            return FaultModel::chipKill();
        // Chip 0 is legal, so parseDim (which rejects 0) cannot serve.
        if (idx.empty() ||
            idx.find_first_not_of("0123456789") != std::string::npos)
            throw std::invalid_argument("bad chip index in \"" + spec +
                                        "\"");
        const unsigned long long v =
            std::strtoull(idx.c_str(), nullptr, 10);
        if (v > 65535)
            throw std::invalid_argument("chip index out of range in \"" +
                                        spec + "\"");
        return FaultModel::chipKill(long(v));
    }
    if (spec.rfind("hammer:", 0) == 0) {
        std::string body = spec.substr(7);
        double density = 1.0;
        if (const size_t at = body.find('@'); at != std::string::npos) {
            density = parseDensity(spec, body.substr(at + 1));
            body = body.substr(0, at);
        }
        return FaultModel::rowHammer(parseDim(spec, body), density);
    }
    if (spec.rfind("senseamp:", 0) == 0)
        return FaultModel::senseAmp(parseDim(spec, spec.substr(9)));

    // WxH[@D] cluster.
    std::string body = spec;
    double density = 1.0;
    if (const size_t at = body.find('@'); at != std::string::npos) {
        density = parseDensity(spec, body.substr(at + 1));
        body = body.substr(0, at);
    }
    const size_t x = body.find('x');
    if (x == std::string::npos)
        throw std::invalid_argument("unknown fault model \"" + spec + "\"");
    const size_t w = parseDim(spec, body.substr(0, x));
    const size_t h = parseDim(spec, body.substr(x + 1));
    return FaultModel::cluster(w, h, density);
}

std::string
FaultEvent::describe() const
{
    const char *shape_name = nullptr;
    switch (shape) {
      case FaultShape::kSingleBit: shape_name = "single-bit"; break;
      case FaultShape::kRowBurst: shape_name = "row-burst"; break;
      case FaultShape::kColumnBurst: shape_name = "column-burst"; break;
      case FaultShape::kCluster: shape_name = "cluster"; break;
      case FaultShape::kFullRow: shape_name = "full-row"; break;
      case FaultShape::kFullColumn: shape_name = "full-column"; break;
      case FaultShape::kChipKill: shape_name = "chip-kill"; break;
      case FaultShape::kRowHammer: shape_name = "row-hammer"; break;
      case FaultShape::kSenseAmp: shape_name = "sense-amp"; break;
    }
    return std::string(shape_name) + " " + std::to_string(width()) + "x" +
           std::to_string(height()) + " (" + std::to_string(cells.size()) +
           " cells, " +
           (persistence == FaultPersistence::kTransient ? "soft" : "hard") +
           ")";
}

FaultModel
FaultModel::singleBit()
{
    FaultModel m;
    m.shape = FaultShape::kSingleBit;
    return m;
}

FaultModel
FaultModel::rowBurst(size_t width)
{
    FaultModel m;
    m.shape = FaultShape::kRowBurst;
    m.width = width;
    return m;
}

FaultModel
FaultModel::columnBurst(size_t height)
{
    FaultModel m;
    m.shape = FaultShape::kColumnBurst;
    m.height = height;
    return m;
}

FaultModel
FaultModel::cluster(size_t width, size_t height, double density)
{
    FaultModel m;
    m.shape = FaultShape::kCluster;
    m.width = width;
    m.height = height;
    m.density = density;
    return m;
}

FaultModel
FaultModel::fullRow()
{
    FaultModel m;
    m.shape = FaultShape::kFullRow;
    return m;
}

FaultModel
FaultModel::fullColumn()
{
    FaultModel m;
    m.shape = FaultShape::kFullColumn;
    return m;
}

FaultModel
FaultModel::chipKill(long chip)
{
    FaultModel m;
    m.shape = FaultShape::kChipKill;
    m.colLo = chip;
    return m;
}

FaultModel
FaultModel::rowHammer(size_t rows, double density)
{
    FaultModel m;
    m.shape = FaultShape::kRowHammer;
    m.height = rows;
    m.density = density;
    return m;
}

FaultModel
FaultModel::senseAmp(size_t height)
{
    FaultModel m;
    m.shape = FaultShape::kSenseAmp;
    m.width = 2;
    m.height = height;
    return m;
}

std::string
FaultModel::describe() const
{
    switch (shape) {
      case FaultShape::kSingleBit: return "1x1";
      case FaultShape::kRowBurst:
        return std::to_string(width) + "x1 burst";
      case FaultShape::kColumnBurst:
        return "1x" + std::to_string(height) + " burst";
      case FaultShape::kCluster:
        return std::to_string(width) + "x" + std::to_string(height) +
               (density < 1.0
                    ? " @" + std::to_string(int(density * 100)) + "%"
                    : "");
      case FaultShape::kFullRow: return "full row";
      case FaultShape::kFullColumn: return "full column";
      case FaultShape::kChipKill:
        return colLo >= 0 ? "chip " + std::to_string(colLo) + " kill"
                          : "chip kill";
      case FaultShape::kRowHammer:
        return "hammer " + std::to_string(height) + " rows" +
               (density < 1.0
                    ? " @" + std::to_string(int(density * 100)) + "%"
                    : "");
      case FaultShape::kSenseAmp:
        return "sense-amp 2x" + std::to_string(height);
    }
    return "?";
}

std::string
exactDouble(double v)
{
    char buf[64];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
FaultModel::spec() const
{
    std::string base;
    switch (shape) {
      case FaultShape::kSingleBit: base = "single"; break;
      case FaultShape::kRowBurst:
        base = "row:" + std::to_string(width);
        break;
      case FaultShape::kColumnBurst:
        base = "col:" + std::to_string(height);
        break;
      case FaultShape::kCluster:
        base = std::to_string(width) + "x" + std::to_string(height);
        if (density < 1.0)
            base += "@" + exactDouble(density);
        break;
      case FaultShape::kFullRow: base = "fullrow"; break;
      case FaultShape::kFullColumn: base = "fullcol"; break;
      case FaultShape::kChipKill:
        // colLo carries the chip selector, not a cell anchor, so the
        // generic "/@row,col" suffix below must not fire for it.
        base = "chip:" +
               (colLo >= 0 ? std::to_string(colLo) : std::string("any"));
        if (persistence == FaultPersistence::kStuckAt)
            base += "/hard";
        return base;
      case FaultShape::kRowHammer:
        base = "hammer:" + std::to_string(height);
        if (density < 1.0)
            base += "@" + exactDouble(density);
        break;
      case FaultShape::kSenseAmp:
        base = "senseamp:" + std::to_string(height);
        break;
    }
    if (rowLo >= 0 || colLo >= 0)
        base += "/@" + std::to_string(rowLo) + "," + std::to_string(colLo);
    if (persistence == FaultPersistence::kStuckAt)
        base += "/hard";
    return base;
}

void
FaultInjector::applyCell(MemoryArray &arr, size_t r, size_t c,
                         FaultPersistence p, FaultEvent &event)
{
    if (p == FaultPersistence::kTransient) {
        arr.flipBit(r, c);
    } else {
        // Stick at the complement of the stored value so the fault is
        // observable immediately.
        arr.addStuckAt(r, c, !arr.readBit(r, c));
    }
    event.cells.emplace_back(r, c);
}

FaultEvent
FaultInjector::injectSingleBit(MemoryArray &arr, FaultPersistence p)
{
    FaultEvent event;
    event.shape = FaultShape::kSingleBit;
    event.persistence = p;
    const size_t r = rng.nextBelow(arr.rows());
    const size_t c = rng.nextBelow(arr.cols());
    applyCell(arr, r, c, p, event);
    event.rowLo = event.rowHi = r;
    event.colLo = event.colHi = c;
    return event;
}

FaultEvent
FaultInjector::injectRowBurst(MemoryArray &arr, size_t row, size_t width,
                              long col_lo, FaultPersistence p)
{
    assert(width >= 1 && width <= arr.cols());
    FaultEvent event;
    event.shape = FaultShape::kRowBurst;
    event.persistence = p;
    const size_t lo = col_lo >= 0 ? size_t(col_lo)
                                  : rng.nextBelow(arr.cols() - width + 1);
    assert(lo + width <= arr.cols());
    for (size_t c = lo; c < lo + width; ++c)
        applyCell(arr, row, c, p, event);
    event.rowLo = event.rowHi = row;
    event.colLo = lo;
    event.colHi = lo + width - 1;
    return event;
}

FaultEvent
FaultInjector::injectColumnBurst(MemoryArray &arr, size_t col,
                                 size_t height, long row_lo,
                                 FaultPersistence p)
{
    assert(height >= 1 && height <= arr.rows());
    FaultEvent event;
    event.shape = FaultShape::kColumnBurst;
    event.persistence = p;
    const size_t lo = row_lo >= 0 ? size_t(row_lo)
                                  : rng.nextBelow(arr.rows() - height + 1);
    assert(lo + height <= arr.rows());
    for (size_t r = lo; r < lo + height; ++r)
        applyCell(arr, r, col, p, event);
    event.rowLo = lo;
    event.rowHi = lo + height - 1;
    event.colLo = event.colHi = col;
    return event;
}

FaultEvent
FaultInjector::injectCluster(MemoryArray &arr, size_t width, size_t height,
                             double density, long row_lo, long col_lo,
                             FaultPersistence p)
{
    assert(width >= 1 && width <= arr.cols());
    assert(height >= 1 && height <= arr.rows());
    assert(density > 0.0 && density <= 1.0);

    FaultEvent event;
    event.shape = FaultShape::kCluster;
    event.persistence = p;
    const size_t rlo = row_lo >= 0
                           ? size_t(row_lo)
                           : rng.nextBelow(arr.rows() - height + 1);
    const size_t clo = col_lo >= 0
                           ? size_t(col_lo)
                           : rng.nextBelow(arr.cols() - width + 1);
    assert(rlo + height <= arr.rows());
    assert(clo + width <= arr.cols());

    // Choose the footprint first (re-rolling until every row of the
    // footprint participates), then apply, so the advertised bounding
    // box matches what was really flipped.
    std::vector<std::pair<size_t, size_t>> chosen;
    for (int attempt = 0; attempt < 1000; ++attempt) {
        chosen.clear();
        bool all_rows_hit = true;
        for (size_t r = 0; r < height; ++r) {
            bool row_hit = false;
            for (size_t c = 0; c < width; ++c) {
                if (density >= 1.0 || rng.nextBool(density)) {
                    chosen.emplace_back(rlo + r, clo + c);
                    row_hit = true;
                }
            }
            all_rows_hit &= row_hit;
        }
        if (all_rows_hit)
            break;
    }
    for (auto [r, c] : chosen)
        applyCell(arr, r, c, p, event);

    event.rowLo = rlo;
    event.rowHi = rlo + height - 1;
    event.colLo = clo;
    event.colHi = clo + width - 1;
    return event;
}

FaultEvent
FaultInjector::injectFullRow(MemoryArray &arr, size_t row,
                             FaultPersistence p)
{
    FaultEvent event;
    event.shape = FaultShape::kFullRow;
    event.persistence = p;
    for (size_t c = 0; c < arr.cols(); ++c)
        applyCell(arr, row, c, p, event);
    event.rowLo = event.rowHi = row;
    event.colLo = 0;
    event.colHi = arr.cols() - 1;
    return event;
}

FaultEvent
FaultInjector::injectFullColumn(MemoryArray &arr, size_t col,
                                FaultPersistence p)
{
    FaultEvent event;
    event.shape = FaultShape::kFullColumn;
    event.persistence = p;
    for (size_t r = 0; r < arr.rows(); ++r)
        applyCell(arr, r, col, p, event);
    event.rowLo = 0;
    event.rowHi = arr.rows() - 1;
    event.colLo = event.colHi = col;
    return event;
}

FaultEvent
FaultInjector::injectChipKill(MemoryArray &arr, long chip,
                              FaultPersistence p)
{
    const size_t bits = arr.symbolBits();
    const size_t chips = arr.cols() / bits;
    assert(chips >= 1 && arr.cols() % bits == 0);
    FaultEvent event;
    event.shape = FaultShape::kChipKill;
    event.persistence = p;
    const size_t which =
        chip >= 0 ? size_t(chip) % chips : rng.nextBelow(chips);
    const size_t lo = which * bits;
    for (size_t r = 0; r < arr.rows(); ++r)
        for (size_t c = lo; c < lo + bits; ++c)
            applyCell(arr, r, c, p, event);
    event.rowLo = 0;
    event.rowHi = arr.rows() - 1;
    event.colLo = lo;
    event.colHi = lo + bits - 1;
    return event;
}

FaultEvent
FaultInjector::injectRowHammer(MemoryArray &arr, size_t rows,
                               double density, long row_lo,
                               FaultPersistence p)
{
    assert(rows >= 1 && density > 0.0 && density <= 1.0);
    const size_t band = rows < arr.rows() ? rows : arr.rows();
    FaultEvent event;
    event.shape = FaultShape::kRowHammer;
    event.persistence = p;
    const size_t lo = row_lo >= 0
                          ? size_t(row_lo) % (arr.rows() - band + 1)
                          : rng.nextBelow(arr.rows() - band + 1);
    // A hammer band is stochastic per cell; re-roll only until the
    // event is non-empty so every injection is observable.
    std::vector<std::pair<size_t, size_t>> chosen;
    for (int attempt = 0; attempt < 1000 && chosen.empty(); ++attempt) {
        for (size_t r = lo; r < lo + band; ++r)
            for (size_t c = 0; c < arr.cols(); ++c)
                if (density >= 1.0 || rng.nextBool(density))
                    chosen.emplace_back(r, c);
    }
    for (auto [r, c] : chosen)
        applyCell(arr, r, c, p, event);
    event.rowLo = lo;
    event.rowHi = lo + band - 1;
    event.colLo = 0;
    event.colHi = arr.cols() - 1;
    return event;
}

FaultEvent
FaultInjector::injectSenseAmp(MemoryArray &arr, size_t height,
                              long row_lo, long col_lo,
                              FaultPersistence p)
{
    assert(height >= 1);
    const size_t span = height < arr.rows() ? height : arr.rows();
    const size_t width = arr.cols() >= 2 ? 2 : 1;
    FaultEvent event;
    event.shape = FaultShape::kSenseAmp;
    event.persistence = p;
    const size_t rlo = row_lo >= 0
                           ? size_t(row_lo) % (arr.rows() - span + 1)
                           : rng.nextBelow(arr.rows() - span + 1);
    const size_t clo = col_lo >= 0
                           ? size_t(col_lo) % (arr.cols() - width + 1)
                           : rng.nextBelow(arr.cols() - width + 1);
    for (size_t r = rlo; r < rlo + span; ++r)
        for (size_t c = clo; c < clo + width; ++c)
            applyCell(arr, r, c, p, event);
    event.rowLo = rlo;
    event.rowHi = rlo + span - 1;
    event.colLo = clo;
    event.colHi = clo + width - 1;
    return event;
}

FaultEvent
FaultInjector::inject(MemoryArray &arr, const FaultModel &m)
{
    switch (m.shape) {
      case FaultShape::kSingleBit:
        return injectSingleBit(arr, m.persistence);
      case FaultShape::kRowBurst: {
        const size_t row = m.rowLo >= 0 ? size_t(m.rowLo)
                                        : rng.nextBelow(arr.rows());
        return injectRowBurst(arr, row, m.width, m.colLo, m.persistence);
      }
      case FaultShape::kColumnBurst: {
        const size_t col = m.colLo >= 0 ? size_t(m.colLo)
                                        : rng.nextBelow(arr.cols());
        return injectColumnBurst(arr, col, m.height, m.rowLo,
                                 m.persistence);
      }
      case FaultShape::kCluster:
        return injectCluster(arr, m.width, m.height, m.density, m.rowLo,
                             m.colLo, m.persistence);
      case FaultShape::kFullRow: {
        const size_t row = m.rowLo >= 0 ? size_t(m.rowLo)
                                        : rng.nextBelow(arr.rows());
        return injectFullRow(arr, row, m.persistence);
      }
      case FaultShape::kFullColumn: {
        const size_t col = m.colLo >= 0 ? size_t(m.colLo)
                                        : rng.nextBelow(arr.cols());
        return injectFullColumn(arr, col, m.persistence);
      }
      case FaultShape::kChipKill:
        return injectChipKill(arr, m.colLo, m.persistence);
      case FaultShape::kRowHammer:
        return injectRowHammer(arr, m.height, m.density, m.rowLo,
                               m.persistence);
      case FaultShape::kSenseAmp:
        return injectSenseAmp(arr, m.height, m.rowLo, m.colLo,
                              m.persistence);
    }
    return {};
}

FaultEvent
FaultInjector::injectRandomHardFaults(MemoryArray &arr, size_t count)
{
    FaultEvent event;
    event.shape = FaultShape::kSingleBit;
    event.persistence = FaultPersistence::kStuckAt;
    size_t placed = 0;
    while (placed < count) {
        const size_t r = rng.nextBelow(arr.rows());
        const size_t c = rng.nextBelow(arr.cols());
        if (arr.isStuck(r, c))
            continue;
        applyCell(arr, r, c, FaultPersistence::kStuckAt, event);
        ++placed;
    }
    event.rowLo = 0;
    event.rowHi = arr.rows() - 1;
    event.colLo = 0;
    event.colHi = arr.cols() - 1;
    return event;
}

} // namespace tdc
