#include "array/spare_repair.hh"

#include <algorithm>
#include <map>
#include <set>

namespace tdc
{

namespace
{

/** Count faults per row and per column. */
void
tally(const std::vector<MarchFault> &faults,
      std::map<size_t, size_t> &per_row, std::map<size_t, size_t> &per_col)
{
    per_row.clear();
    per_col.clear();
    for (const MarchFault &f : faults) {
        ++per_row[f.row];
        ++per_col[f.col];
    }
}

/** Remove all faults on a given row (or column). */
void
removeLine(std::vector<MarchFault> &faults, size_t index, bool is_row)
{
    faults.erase(std::remove_if(faults.begin(), faults.end(),
                                [&](const MarchFault &f) {
                                    return (is_row ? f.row : f.col) ==
                                           index;
                                }),
                 faults.end());
}

} // namespace

RepairPlan
SpareRepair::solve(const std::vector<MarchFault> &faults) const
{
    RepairPlan plan;
    std::vector<MarchFault> remaining = faults;
    size_t rows_left = spareRows;
    size_t cols_left = spareCols;

    // Phase 1: must-repair closure.
    bool changed = true;
    while (changed) {
        changed = false;
        std::map<size_t, size_t> per_row, per_col;
        tally(remaining, per_row, per_col);
        for (const auto &[row, count] : per_row) {
            if (count > cols_left && rows_left > 0) {
                plan.rowsReplaced.push_back(row);
                --rows_left;
                removeLine(remaining, row, true);
                changed = true;
                break;
            }
        }
        if (changed)
            continue;
        for (const auto &[col, count] : per_col) {
            if (count > rows_left && cols_left > 0) {
                plan.colsReplaced.push_back(col);
                --cols_left;
                removeLine(remaining, col, false);
                changed = true;
                break;
            }
        }
    }

    // Phase 2: greedy cover.
    while (!remaining.empty() && (rows_left > 0 || cols_left > 0)) {
        std::map<size_t, size_t> per_row, per_col;
        tally(remaining, per_row, per_col);
        size_t best_row = 0, best_row_count = 0;
        for (const auto &[row, count] : per_row) {
            if (count > best_row_count) {
                best_row = row;
                best_row_count = count;
            }
        }
        size_t best_col = 0, best_col_count = 0;
        for (const auto &[col, count] : per_col) {
            if (count > best_col_count) {
                best_col = col;
                best_col_count = count;
            }
        }
        const bool use_row =
            rows_left > 0 &&
            (cols_left == 0 || best_row_count >= best_col_count);
        if (use_row) {
            plan.rowsReplaced.push_back(best_row);
            --rows_left;
            removeLine(remaining, best_row, true);
        } else {
            plan.colsReplaced.push_back(best_col);
            --cols_left;
            removeLine(remaining, best_col, false);
        }
    }

    plan.unrepaired = std::move(remaining);
    return plan;
}

RepairPlan
SpareRepair::solveWithEcc(const std::vector<MarchFault> &faults,
                          size_t word_bits) const
{
    // Group faults into (row, word) buckets; single-fault words are
    // absorbed by in-line ECC and need no spare resources.
    std::map<std::pair<size_t, size_t>, std::vector<MarchFault>> words;
    for (const MarchFault &f : faults)
        words[{f.row, f.col / word_bits}].push_back(f);

    std::vector<MarchFault> multi;
    for (const auto &[key, list] : words) {
        if (list.size() >= 2)
            multi.insert(multi.end(), list.begin(), list.end());
    }
    return solve(multi);
}

} // namespace tdc
