#include "array/product_code_array.hh"

#include <cassert>

namespace tdc
{

ProductCodeArray::ProductCodeArray(size_t rows, size_t cols)
    : data(rows, cols), rowParity(rows), colParity(cols)
{
}

void
ProductCodeArray::writeRow(size_t r, const BitVector &value)
{
    assert(value.size() == cols());
    const BitVector old = data.readRow(r);
    data.writeRow(r, value);
    const BitVector delta = old ^ value;
    // Row parity: overall parity of the new row content.
    rowParity.set(r, value.parity());
    // Column parity: absorb the per-column change.
    colParity ^= delta;
}

BitVector
ProductCodeArray::rowSyndrome() const
{
    BitVector syn(rows());
    for (size_t r = 0; r < rows(); ++r)
        syn.set(r, data.readRow(r).parity() != rowParity.get(r));
    return syn;
}

BitVector
ProductCodeArray::colSyndrome() const
{
    BitVector acc(cols());
    for (size_t r = 0; r < rows(); ++r)
        acc ^= data.readRow(r);
    acc ^= colParity;
    return acc;
}

ProductCodeReport
ProductCodeArray::checkAndCorrect()
{
    ProductCodeReport report;
    const BitVector rows_bad = rowSyndrome();
    const BitVector cols_bad = colSyndrome();

    const size_t nr = rows_bad.popcount();
    const size_t nc = cols_bad.popcount();

    if (nr == 0 && nc == 0) {
        report.clean = true;
        return report;
    }

    // Intersection decoding is unambiguous only when at most one line
    // is flagged in one of the two dimensions: one bad row with k bad
    // columns = k errors in that row; one bad column with k bad rows
    // likewise. With >= 2 bad rows AND >= 2 bad columns the error
    // pattern is ambiguous (any permutation matching the syndrome is
    // equally plausible), the classic product-code limitation.
    if (nr >= 2 && nc >= 2) {
        report.uncorrectable = true;
        return report;
    }
    if (nr == 0 || nc == 0) {
        // Parity-bit-only corruption (errors in the check storage) or
        // an invisible even pattern; treat parity as stale and rebuild.
        report.uncorrectable = true;
        return report;
    }

    for (size_t r = 0; r < rows(); ++r) {
        if (!rows_bad.get(r))
            continue;
        for (size_t c = 0; c < cols(); ++c) {
            if (cols_bad.get(c)) {
                data.flipBit(r, c);
                ++report.corrected;
            }
        }
    }

    report.clean = rowSyndrome().none() && colSyndrome().none();
    report.uncorrectable = !report.clean;
    return report;
}

} // namespace tdc
