#include "array/interleave.hh"

#include <algorithm>
#include <cassert>

namespace tdc
{

InterleaveMap::InterleaveMap(size_t word_bits, size_t degree)
    : wordWidth(word_bits), intvDegree(degree)
{
    assert(wordWidth > 0);
    assert(intvDegree > 0);
    if (intvDegree <= 64) {
        // One plan per in-word phase. For degrees dividing 64 every
        // row word uses phase == slot; for the others the phase walks
        // by phaseStep per word, and the cache holds all of them (at
        // most degree plans, shared by every slot).
        const uint64_t base = strideMask64(intvDegree);
        plans.reserve(intvDegree);
        for (size_t p = 0; p < intvDegree; ++p)
            plans.emplace_back(base << p);
        phaseStep = (intvDegree - 64 % intvDegree) % intvDegree;
    }
}

size_t
InterleaveMap::physicalColumn(size_t slot, size_t bit) const
{
    assert(slot < intvDegree);
    assert(bit < wordWidth);
    return bit * intvDegree + slot;
}

BitVector
InterleaveMap::extractWord(const BitVector &row, size_t slot) const
{
    BitVector word(wordWidth);
    extractWordInto(row, slot, word);
    return word;
}

void
InterleaveMap::extractWordInto(ConstBitSpan row, size_t slot,
                               BitVector &word) const
{
    assert(row.size() == rowBits());
    assert(slot < intvDegree);
    if (word.size() != wordWidth)
        word = BitVector(wordWidth);

    if (plans.empty()) {
        extractWordSlow(row, slot, word);
        return;
    }

    // Word-parallel gather: row word i holds columns [i*64, i*64+64);
    // the ones belonging to this slot sit at in-word positions
    // p == phase (mod degree), where the phase starts at the slot
    // index and advances by phaseStep per word. The phase's compress
    // plan packs them to the low end (one PEXT, or six shift/AND/OR
    // stages on the scalar tier).
    const uint64_t *src = row.words();
    uint64_t *dst = word.wordData();
    const size_t dstWords = word.wordCount();
    for (size_t i = 0; i < dstWords; ++i)
        dst[i] = 0;

    size_t dstPos = 0;
    size_t phase = slot;
    const size_t srcWords = row.wordCount();
    for (size_t i = 0; i < srcWords; ++i) {
        const size_t valid = std::min<size_t>(rowBits() - i * 64, 64);
        if (valid > phase) {
            const size_t cnt = (valid - phase + intvDegree - 1) / intvDegree;
            uint64_t chunk = plans[phase].compress(src[i]);
            if (cnt < 64)
                chunk &= (uint64_t(1) << cnt) - 1;
            const size_t off = dstPos % 64;
            dst[dstPos / 64] |= chunk << off;
            if (off + cnt > 64)
                dst[dstPos / 64 + 1] |= chunk >> (64 - off);
            dstPos += cnt;
        }
        phase += phaseStep;
        if (phase >= intvDegree)
            phase -= intvDegree;
    }
    assert(dstPos == wordWidth);
}

void
InterleaveMap::depositWord(BitVector &row, size_t slot,
                           const BitVector &word) const
{
    assert(row.size() == rowBits());
    assert(word.size() == wordWidth);
    assert(slot < intvDegree);

    if (plans.empty()) {
        depositWordSlow(row, slot, word);
        return;
    }

    // Word-parallel scatter: the inverse of extractWordInto. For each
    // row word, expand the next chunk of codeword bits onto the
    // phase's positions and splice it in under the same mask.
    const uint64_t *src = word.wordData();
    uint64_t *dst = row.wordData();
    size_t srcPos = 0;
    size_t phase = slot;
    const size_t dstWords = row.wordCount();
    for (size_t i = 0; i < dstWords; ++i) {
        const size_t valid = std::min<size_t>(rowBits() - i * 64, 64);
        if (valid > phase) {
            const size_t cnt = (valid - phase + intvDegree - 1) / intvDegree;
            // Gather cnt source bits starting at srcPos (spans <= 2
            // words).
            const size_t off = srcPos % 64;
            uint64_t chunk = src[srcPos / 64] >> off;
            if (off != 0 && srcPos / 64 + 1 < word.wordCount())
                chunk |= src[srcPos / 64 + 1] << (64 - off);
            if (cnt < 64)
                chunk &= (uint64_t(1) << cnt) - 1;
            const BitCompressPlan &plan = plans[phase];
            const uint64_t spread = plan.expand(chunk);
            const uint64_t lanes = cnt < 64
                                       ? plan.expand((uint64_t(1) << cnt) - 1)
                                       : plan.mask();
            dst[i] = (dst[i] & ~lanes) | spread;
            srcPos += cnt;
        }
        phase += phaseStep;
        if (phase >= intvDegree)
            phase -= intvDegree;
    }
    assert(srcPos == wordWidth);
}

void
InterleaveMap::extractWordSlow(ConstBitSpan row, size_t slot,
                               BitVector &word) const
{
    for (size_t b = 0; b < wordWidth; ++b)
        word.set(b, row.get(physicalColumn(slot, b)));
}

void
InterleaveMap::depositWordSlow(BitVector &row, size_t slot,
                               const BitVector &word) const
{
    for (size_t b = 0; b < wordWidth; ++b)
        row.set(physicalColumn(slot, b), word.get(b));
}

} // namespace tdc
