#include "array/interleave.hh"

#include <cassert>

namespace tdc
{

InterleaveMap::InterleaveMap(size_t word_bits, size_t degree)
    : wordWidth(word_bits), intvDegree(degree)
{
    assert(wordWidth > 0);
    assert(intvDegree > 0);
    if (intvDegree <= 64 && 64 % intvDegree == 0)
        plan.emplace(strideMask64(intvDegree));
}

size_t
InterleaveMap::physicalColumn(size_t slot, size_t bit) const
{
    assert(slot < intvDegree);
    assert(bit < wordWidth);
    return bit * intvDegree + slot;
}

BitVector
InterleaveMap::extractWord(const BitVector &row, size_t slot) const
{
    BitVector word(wordWidth);
    extractWordInto(row, slot, word);
    return word;
}

void
InterleaveMap::extractWordInto(ConstBitSpan row, size_t slot,
                               BitVector &word) const
{
    assert(row.size() == rowBits());
    assert(slot < intvDegree);
    if (word.size() != wordWidth)
        word = BitVector(wordWidth);

    if (!plan) {
        extractWordSlow(row, slot, word);
        return;
    }

    // Word-parallel gather: row word i holds columns [i*64, i*64+64);
    // the ones belonging to this slot sit at in-word positions
    // p == slot (mod degree). Shifting right by slot aligns them to
    // the stride mask, and the compress plan packs them to the low
    // end in six shift/AND/OR stages.
    const uint64_t *src = row.words();
    uint64_t *dst = word.wordData();
    const size_t dstWords = word.wordCount();
    for (size_t i = 0; i < dstWords; ++i)
        dst[i] = 0;

    size_t dstPos = 0;
    const size_t srcWords = row.wordCount();
    for (size_t i = 0; i < srcWords; ++i) {
        const size_t valid = std::min<size_t>(rowBits() - i * 64, 64);
        if (valid <= slot)
            break; // partial top word with no column of this slot
        const size_t cnt = (valid - slot + intvDegree - 1) / intvDegree;
        uint64_t chunk = plan->compress(src[i] >> slot);
        if (cnt < 64)
            chunk &= (uint64_t(1) << cnt) - 1;
        const size_t off = dstPos % 64;
        dst[dstPos / 64] |= chunk << off;
        if (off + cnt > 64)
            dst[dstPos / 64 + 1] |= chunk >> (64 - off);
        dstPos += cnt;
    }
    assert(dstPos == wordWidth);
}

void
InterleaveMap::depositWord(BitVector &row, size_t slot,
                           const BitVector &word) const
{
    assert(row.size() == rowBits());
    assert(word.size() == wordWidth);
    assert(slot < intvDegree);

    if (!plan) {
        depositWordSlow(row, slot, word);
        return;
    }

    // Word-parallel scatter: the inverse of extractWordInto. For each
    // row word, expand the next chunk of codeword bits onto the
    // stride positions and splice it in under the same mask.
    const uint64_t *src = word.wordData();
    uint64_t *dst = row.wordData();
    size_t srcPos = 0;
    const size_t dstWords = row.wordCount();
    for (size_t i = 0; i < dstWords; ++i) {
        const size_t valid = std::min<size_t>(rowBits() - i * 64, 64);
        if (valid <= slot)
            break;
        const size_t cnt = (valid - slot + intvDegree - 1) / intvDegree;
        // Gather cnt source bits starting at srcPos (spans <= 2 words).
        const size_t off = srcPos % 64;
        uint64_t chunk = src[srcPos / 64] >> off;
        if (off != 0 && srcPos / 64 + 1 < word.wordCount())
            chunk |= src[srcPos / 64 + 1] << (64 - off);
        if (cnt < 64)
            chunk &= (uint64_t(1) << cnt) - 1;
        const uint64_t spread = plan->expand(chunk) << slot;
        const uint64_t lanes =
            cnt < 64 ? plan->expand((uint64_t(1) << cnt) - 1) << slot
                     : plan->mask() << slot;
        dst[i] = (dst[i] & ~lanes) | spread;
        srcPos += cnt;
    }
    assert(srcPos == wordWidth);
}

void
InterleaveMap::extractWordSlow(ConstBitSpan row, size_t slot,
                               BitVector &word) const
{
    for (size_t b = 0; b < wordWidth; ++b)
        word.set(b, row.get(physicalColumn(slot, b)));
}

void
InterleaveMap::depositWordSlow(BitVector &row, size_t slot,
                               const BitVector &word) const
{
    for (size_t b = 0; b < wordWidth; ++b)
        row.set(physicalColumn(slot, b), word.get(b));
}

} // namespace tdc
