#include "array/interleave.hh"

#include <cassert>

namespace tdc
{

InterleaveMap::InterleaveMap(size_t word_bits, size_t degree)
    : wordWidth(word_bits), intvDegree(degree)
{
    assert(wordWidth > 0);
    assert(intvDegree > 0);
}

size_t
InterleaveMap::physicalColumn(size_t slot, size_t bit) const
{
    assert(slot < intvDegree);
    assert(bit < wordWidth);
    return bit * intvDegree + slot;
}

BitVector
InterleaveMap::extractWord(const BitVector &row, size_t slot) const
{
    assert(row.size() == rowBits());
    BitVector word(wordWidth);
    for (size_t b = 0; b < wordWidth; ++b)
        word.set(b, row.get(physicalColumn(slot, b)));
    return word;
}

void
InterleaveMap::depositWord(BitVector &row, size_t slot,
                           const BitVector &word) const
{
    assert(row.size() == rowBits());
    assert(word.size() == wordWidth);
    for (size_t b = 0; b < wordWidth; ++b)
        row.set(physicalColumn(slot, b), word.get(b));
}

} // namespace tdc
