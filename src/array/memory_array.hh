/**
 * @file
 * Functional model of one SRAM cell array with a hard-fault overlay.
 */

#ifndef TDC_ARRAY_MEMORY_ARRAY_HH
#define TDC_ARRAY_MEMORY_ARRAY_HH

#include <cstdint>
#include <unordered_map>

#include "common/bit_matrix.hh"
#include "common/bit_vector.hh"

namespace tdc
{

/**
 * A rows x cols SRAM cell array. Stored state lives in a BitMatrix;
 * an overlay of stuck-at faults models manufacture-time and in-field
 * hard errors: a stuck cell reads its stuck value regardless of what
 * was written. Soft errors are injected by flipping stored state
 * directly (see FaultInjector).
 *
 * Reads and writes are whole physical rows, matching wordline
 * granularity; the interleave map slices words out of rows.
 */
class MemoryArray
{
  public:
    MemoryArray(size_t rows, size_t cols);

    size_t rows() const { return cells.rows(); }
    size_t cols() const { return cells.cols(); }

    /** Read physical row @p r with stuck-at faults applied. */
    BitVector readRow(size_t r) const;

    /** Write physical row @p r (stuck cells silently keep their value). */
    void writeRow(size_t r, const BitVector &value);

    /** Read a single cell (with faults applied). */
    bool readBit(size_t r, size_t c) const;

    /** Write a single cell. */
    void writeBit(size_t r, size_t c, bool value);

    /** Flip stored state (models a soft-error upset). */
    void flipBit(size_t r, size_t c);

    /** Pin cell (r, c) to @p value until clearFault/clearAllFaults. */
    void addStuckAt(size_t r, size_t c, bool value);

    /** Remove a stuck-at fault (cell reverts to stored state). */
    void clearFault(size_t r, size_t c);

    /** Remove every stuck-at fault. */
    void clearAllFaults();

    /** Number of stuck-at cells currently installed. */
    size_t faultCount() const { return stuckCells.size(); }

    /** True iff cell (r, c) has a stuck-at fault. */
    bool isStuck(size_t r, size_t c) const;

    uint64_t readCount() const { return reads; }
    uint64_t writeCount() const { return writes; }
    void resetCounters();

  private:
    uint64_t key(size_t r, size_t c) const { return r * cols() + c; }

    BitMatrix cells;
    std::unordered_map<uint64_t, bool> stuckCells;
    mutable uint64_t reads = 0;
    uint64_t writes = 0;
};

} // namespace tdc

#endif // TDC_ARRAY_MEMORY_ARRAY_HH
