/**
 * @file
 * Functional model of one SRAM cell array with a hard-fault overlay.
 */

#ifndef TDC_ARRAY_MEMORY_ARRAY_HH
#define TDC_ARRAY_MEMORY_ARRAY_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bit_matrix.hh"
#include "common/bit_span.hh"
#include "common/bit_vector.hh"

namespace tdc
{

/**
 * A rows x cols SRAM cell array. Stored state lives in a BitMatrix;
 * an overlay of stuck-at faults models manufacture-time and in-field
 * hard errors: a stuck cell reads its stuck value regardless of what
 * was written. Soft errors are injected by flipping stored state
 * directly (see FaultInjector).
 *
 * Reads and writes are whole physical rows, matching wordline
 * granularity; the interleave map slices words out of rows. The fault
 * overlay is kept per row, so fault-free rows (the overwhelmingly
 * common case) can be *borrowed* as a ConstBitSpan instead of copied —
 * the basis of the allocation-free clean-read path in TwoDimArray.
 */
class MemoryArray
{
  public:
    MemoryArray(size_t rows, size_t cols);

    size_t rows() const { return cells.rows(); }
    size_t cols() const { return cells.cols(); }

    /**
     * Symbol (device burst) width annotation: how many adjacent
     * columns one physical device contributes per row. 1 for plain
     * SRAM bit arrays; DramArray sets the per-chip burst width so
     * symbol-granular fault shapes (chip kill) know the column
     * grouping. Purely an annotation — no read/write path consults it.
     * @pre cols() % bits == 0
     */
    void setSymbolBits(size_t bits) { symbolWidth = bits; }
    size_t symbolBits() const { return symbolWidth; }

    /** Read physical row @p r with stuck-at faults applied. */
    BitVector readRow(size_t r) const;

    /**
     * Read physical row @p r into @p out, reusing its storage (the
     * allocation-free form for reusable row scratch buffers).
     */
    void readRowInto(size_t r, BitVector &out) const;

    /**
     * Snapshot row @p r (with faults applied) into @p out *without*
     * charging a port access. For consumers that already read/latched
     * the row this access — e.g. the in-line correction path, which
     * re-materializes the row it just borrowed — so the modeled read
     * count stays one per access.
     */
    void copyRowInto(size_t r, BitVector &out) const;

    /**
     * Borrow physical row @p r as a non-owning view — no copy, no
     * allocation. @pre !rowHasStuck(r) (a stuck overlay would need a
     * materialized copy; callers check and fall back to readRow).
     * The view is invalidated by any write to the array.
     */
    ConstBitSpan viewRow(size_t r) const;

    /** True iff any cell of row @p r has a stuck-at fault. */
    bool rowHasStuck(size_t r) const
    {
        return !stuckByRow.empty() && stuckByRow.count(r) != 0;
    }

    /** Write physical row @p r (stuck cells silently keep their value). */
    void writeRow(size_t r, const BitVector &value);

    /**
     * XOR @p delta into stored row @p r: the in-place form of
     * readRow ^ delta followed by writeRow, used by the incremental
     * vertical-parity update. Counts as one write (the read-modify-
     * write happens at the sense amps, not through the port model).
     */
    void xorRow(size_t r, const BitVector &delta);

    /** Read a single cell (with faults applied). */
    bool readBit(size_t r, size_t c) const;

    /** Write a single cell. */
    void writeBit(size_t r, size_t c, bool value);

    /** Flip stored state (models a soft-error upset). */
    void flipBit(size_t r, size_t c);

    /** Pin cell (r, c) to @p value until clearFault/clearAllFaults. */
    void addStuckAt(size_t r, size_t c, bool value);

    /** Remove a stuck-at fault (cell reverts to stored state). */
    void clearFault(size_t r, size_t c);

    /** Remove every stuck-at fault. */
    void clearAllFaults();

    /**
     * Rows currently holding stuck-at cells, as (row, stuck-cell
     * count) pairs sorted by row index — a deterministic snapshot of
     * the hard-fault overlay for repair policies (spare-row budgets
     * pick the most-stuck row first).
     */
    std::vector<std::pair<size_t, size_t>> stuckRows() const;

    /**
     * Clear every stuck-at fault in row @p r, preserving each cell's
     * visible value: the stored bit is set to the value the cell was
     * stuck at before the overlay entry is dropped. Visible state is
     * therefore unchanged, so incrementally-maintained derived state
     * (vertical / product parity, which tracks visible values through
     * read-before-write) stays consistent across the repair.
     */
    void clearRowFaults(size_t r);

    /** Number of stuck-at cells currently installed. */
    size_t faultCount() const { return stuckTotal; }

    /** True iff cell (r, c) has a stuck-at fault. */
    bool isStuck(size_t r, size_t c) const;

    uint64_t readCount() const { return reads; }
    uint64_t writeCount() const { return writes; }
    void resetCounters();

  private:
    BitMatrix cells;
    /** Stuck cells of each faulty row, as (column, stuck value). */
    std::unordered_map<size_t, std::vector<std::pair<size_t, bool>>>
        stuckByRow;
    size_t stuckTotal = 0;
    size_t symbolWidth = 1;
    mutable uint64_t reads = 0;
    uint64_t writes = 0;
};

} // namespace tdc

#endif // TDC_ARRAY_MEMORY_ARRAY_HH
