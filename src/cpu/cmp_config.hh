/**
 * @file
 * The two Table-1 machine configurations: the "fat" out-of-order CMP
 * and the "lean" in-order multithreaded CMP.
 */

#ifndef TDC_CPU_CMP_CONFIG_HH
#define TDC_CPU_CMP_CONFIG_HH

#include <cstddef>
#include <string>

namespace tdc
{

/** Machine description (timing-relevant subset of Table 1). */
struct CmpConfig
{
    std::string name = "cmp";

    unsigned cores = 4;
    /** Superscalar issue width per core. */
    unsigned issueWidth = 4;
    /** true = OoO with a reorder window; false = in-order blocking. */
    bool outOfOrder = true;
    /** Hardware threads per core (in-order cores only). */
    unsigned threadsPerCore = 1;
    /** In-flight window (ROB) entries available to hide load misses. */
    unsigned robSize = 64;
    /** Store queue entries per core. */
    unsigned storeQueue = 64;

    /** L1 D-cache ports per core. */
    unsigned l1Ports = 2;
    /** L1 hit latency (cycles). */
    unsigned l1HitLatency = 2;

    /** Shared L2: banks, per-bank ports = 1. */
    unsigned l2Banks = 4;
    /** L2 hit latency incl. crossbar (cycles). */
    unsigned l2HitLatency = 16;
    /** Cycles an L2 bank stays busy per operation (tag + data beats). */
    unsigned l2BankBusy = 4;
    /**
     * Issue slots lost per cycle of extra load latency from L1 port
     * contention (load-to-use sensitivity of the pipeline). OoO cores
     * partially hide it; in-order cores block the thread instead.
     */
    unsigned loadUseSlots = 2;

    /**
     * Multiplier on workload ILP bubbles for in-order pipelines:
     * without reordering, dependency stalls that an OoO core would
     * hide serialize the thread.
     */
    double bubbleScale = 1.0;

    /** Port-stealing lookback window (store-queue residency). */
    unsigned stealWindow = 12;

    /** Main memory latency (cycles @ 4 GHz, 60 ns). */
    unsigned memLatency = 240;

    /** MSHRs per core (outstanding L1 misses). */
    unsigned mshrs = 16;

    /**
     * The "fat" CMP: four 4-wide OoO cores, 2-port L1D, 16MB shared
     * L2 (16-cycle hit).
     */
    static CmpConfig fat();

    /**
     * The "lean" CMP: eight 2-wide in-order 4-thread cores, 1-port
     * L1D, 4MB shared L2 (12-cycle hit).
     */
    static CmpConfig lean();
};

/** Which caches carry 2D protection in a simulation run. */
struct ProtectionConfig
{
    /** 2D-protect the L1 data caches (read-before-write on stores
     *  and fills). */
    bool l1TwoDim = false;
    /** Use port stealing for the L1 read-before-write reads. */
    bool l1PortStealing = false;
    /** 2D-protect the shared L2 (read-before-write on write-backs
     *  and fills). */
    bool l2TwoDim = false;
    /**
     * Alternative L1 protection: EDC-only write-through L1 that
     * duplicates every store into the (multi-bit tolerant) L2 — the
     * scheme many commercial processors use and the paper's Figure 7
     * right-most bar. Mutually exclusive with l1TwoDim.
     */
    bool l1WriteThrough = false;

    static ProtectionConfig none() { return {}; }
    static ProtectionConfig l1Only(bool stealing)
    {
        return {true, stealing, false, false};
    }
    static ProtectionConfig l2Only()
    {
        return {false, false, true, false};
    }
    static ProtectionConfig full(bool stealing = true)
    {
        return {true, stealing, true, false};
    }
    /** Write-through L1 over a 2D-protected L2. */
    static ProtectionConfig writeThroughL1()
    {
        return {false, false, true, true};
    }

    std::string label() const;

    /**
     * Parse a protection spec: "none" | "wt" (write-through L1 over a
     * 2D L2) | "+"-joined tokens from {l1, steal, l2}, e.g. "l1+steal",
     * "l1+steal+l2". Throws std::invalid_argument quoting an unknown
     * token ("steal" without "l1" is also rejected).
     */
    static ProtectionConfig parse(const std::string &spec);
};

} // namespace tdc

#endif // TDC_CPU_CMP_CONFIG_HH
