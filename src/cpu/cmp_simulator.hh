/**
 * @file
 * Cycle-level CMP cache-hierarchy timing simulator.
 *
 * This is the repository's stand-in for the FLEXUS full-system
 * simulation of Section 5: synthetic per-core instruction streams
 * (workload module) drive out-of-order or in-order-SMT core front
 * ends against per-core L1 D-cache ports and a shared banked L2. The
 * 2D-protection hooks charge the read-before-write traffic exactly
 * where the paper does: store drains, fills, and L2 write-backs, with
 * optional port stealing for the L1 read halves.
 */

#ifndef TDC_CPU_CMP_SIMULATOR_HH
#define TDC_CPU_CMP_SIMULATOR_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "core/port_scheduler.hh"
#include "cpu/cmp_config.hh"
#include "workload/instruction_stream.hh"
#include "workload/workload_profile.hh"

namespace tdc
{

/** Result of one simulation run. */
struct CmpSimResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;

    /** Aggregate user instructions committed per cycle. */
    double ipc() const
    {
        return cycles == 0 ? 0.0 : double(instructions) / double(cycles);
    }

    /**
     * Access counters for the Figure 6 breakdown. L1 counters are
     * summed over all cores.
     */
    uint64_t l1ReadsData = 0;
    uint64_t l1Writes = 0;       ///< store drains into the L1 array
    uint64_t l1FillEvict = 0;    ///< refills (and the evictions they cause)
    uint64_t l1ExtraReads = 0;   ///< 2D read-before-write reads
    uint64_t l1DirtyTransfers = 0; ///< L1-to-L1 dirty data transfers
    uint64_t l2ReadsInst = 0;    ///< instruction-side refills
    uint64_t l2ReadsData = 0;    ///< data-side refills
    uint64_t l2Writes = 0;       ///< write-backs from L1 (+ WT stores)
    uint64_t l2FillEvict = 0;    ///< memory refills into L2
    uint64_t l2ExtraReads = 0;   ///< 2D read-before-write reads in L2

    /** Accesses per 100 cycles helpers. */
    double per100(uint64_t count) const
    {
        return cycles == 0 ? 0.0
                           : 100.0 * double(count) / double(cycles);
    }
};

/**
 * The simulator. One instance simulates one (machine, workload,
 * protection) combination. Pair baseline and protected runs on the
 * same seed for matched-pair IPC comparison.
 */
class CmpSimulator
{
  public:
    CmpSimulator(const CmpConfig &machine, const WorkloadProfile &workload,
                 const ProtectionConfig &protection, uint64_t seed = 1);

    /** Run for @p cycles cycles and return the aggregate result. */
    CmpSimResult run(uint64_t cycles);

  private:
    /** One pending load (or ifetch miss) completion. */
    struct Pending
    {
        uint64_t doneCycle = 0;
        bool isIfetch = false;
        bool fillsL1 = false;     ///< refill writes the L1 array
        bool dirtyEvict = false;  ///< refill evicts a dirty line
        unsigned bank = 0;        ///< L2 bank (for fills / write-backs)
        unsigned thread = 0;      ///< issuing hardware thread
    };

    /** Per-hardware-thread state (one per thread per core). */
    struct ThreadState
    {
        std::unique_ptr<InstructionStream> stream;
        uint64_t blockedUntil = 0; ///< in-order: waiting on a load/ifetch
        unsigned bubbleDebt = 0;   ///< pending ILP bubbles
    };

    /** Per-core state. */
    struct CoreState
    {
        unsigned selfIndex = 0;
        std::vector<ThreadState> threads;
        unsigned nextThread = 0; ///< SMT round-robin pointer
        std::unique_ptr<PortScheduler> l1Ports;
        std::vector<Pending> pending; ///< outstanding loads (OoO window)
        unsigned storeQueueOcc = 0;
        uint64_t lastDrain = 0;       ///< cycle of the last SQ drain
        uint64_t fetchStallUntil = 0; ///< OoO ifetch-miss stall
    };

    /** Outstanding L1 misses of a core (MSHR occupancy). */
    static unsigned outstandingMisses(const CoreState &core);

    /**
     * Service an L1 miss: either an L1-to-L1 dirty transfer from a
     * peer core or an L2 (and possibly memory) access. Returns the
     * total fill latency beyond the L1 port delay.
     */
    unsigned serviceMiss(CoreState &core, const SyntheticInstr &instr,
                         unsigned bank);

    /** Charge an L2 bank access; returns its queueing delay. */
    unsigned accessL2(unsigned bank, bool is_write);

    /** Batch-drain the store queue through the L1 ports. */
    void drainStoreQueue(CoreState &core);

    /** Handle completion-side work (fills, evictions) for one core. */
    void completePending(CoreState &core);

    /** Issue-side logic for an out-of-order core. */
    void stepOutOfOrderCore(CoreState &core);

    /** Issue-side logic for an in-order SMT core. */
    void stepInOrderCore(CoreState &core);

    /** Latency of a data access beyond the L1 (L2 / memory). */
    unsigned missLatency(const SyntheticInstr &instr, unsigned bank_delay)
        const;

    CmpConfig machine;
    WorkloadProfile workload;
    ProtectionConfig protection;

    std::vector<CoreState> cores;
    std::vector<std::unique_ptr<PortScheduler>> l2Banks;

    uint64_t now = 0;
    CmpSimResult result;
};

} // namespace tdc

#endif // TDC_CPU_CMP_SIMULATOR_HH
