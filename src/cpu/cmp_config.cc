#include "cpu/cmp_config.hh"

#include <stdexcept>

namespace tdc
{

CmpConfig
CmpConfig::fat()
{
    CmpConfig c;
    c.name = "fat";
    c.cores = 4;
    c.issueWidth = 4;
    c.outOfOrder = true;
    c.threadsPerCore = 1;
    c.robSize = 64;
    c.storeQueue = 64;
    c.l1Ports = 2;
    c.l1HitLatency = 2;
    c.l2Banks = 4;
    c.l2HitLatency = 16;
    c.l2BankBusy = 4;
    c.loadUseSlots = 3;
    c.bubbleScale = 1.0;
    c.stealWindow = 1;
    c.memLatency = 240;
    c.mshrs = 16;
    return c;
}

CmpConfig
CmpConfig::lean()
{
    CmpConfig c;
    c.name = "lean";
    c.cores = 8;
    c.issueWidth = 2;
    c.outOfOrder = false;
    c.threadsPerCore = 4;
    c.robSize = 8; // in-order: tiny in-flight window
    c.storeQueue = 64;
    c.l1Ports = 1;
    c.l1HitLatency = 2;
    c.l2Banks = 4;
    c.l2HitLatency = 12;
    c.l2BankBusy = 5; // 16-way tag + data beats
    c.loadUseSlots = 2;
    c.bubbleScale = 4.0; // no reordering to hide dependency stalls
    c.stealWindow = 4;
    c.memLatency = 240;
    c.mshrs = 16;
    return c;
}

std::string
ProtectionConfig::label() const
{
    if (l1WriteThrough)
        return l2TwoDim ? "WT-L1 + 2D-L2" : "WT-L1";
    if (!l1TwoDim && !l2TwoDim)
        return "baseline";
    std::string out;
    if (l1TwoDim) {
        out += "L1";
        if (l1PortStealing)
            out += "+steal";
    }
    if (l2TwoDim) {
        if (!out.empty())
            out += " ";
        out += "L2";
    }
    return out;
}

ProtectionConfig
ProtectionConfig::parse(const std::string &spec)
{
    if (spec == "none")
        return none();
    if (spec == "wt")
        return writeThroughL1();

    ProtectionConfig cfg;
    std::string token;
    const auto consume = [&]() {
        if (token == "l1")
            cfg.l1TwoDim = true;
        else if (token == "steal")
            cfg.l1PortStealing = true;
        else if (token == "l2")
            cfg.l2TwoDim = true;
        else
            throw std::invalid_argument("protection spec \"" + spec +
                                        "\": unknown token \"" + token +
                                        "\"");
        token.clear();
    };
    for (char c : spec) {
        if (c == '+')
            consume();
        else
            token += c;
    }
    consume();
    if (cfg.l1PortStealing && !cfg.l1TwoDim)
        throw std::invalid_argument("protection spec \"" + spec +
                                    "\": \"steal\" requires \"l1\"");
    return cfg;
}

} // namespace tdc
