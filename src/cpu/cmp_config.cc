#include "cpu/cmp_config.hh"

namespace tdc
{

CmpConfig
CmpConfig::fat()
{
    CmpConfig c;
    c.name = "fat";
    c.cores = 4;
    c.issueWidth = 4;
    c.outOfOrder = true;
    c.threadsPerCore = 1;
    c.robSize = 64;
    c.storeQueue = 64;
    c.l1Ports = 2;
    c.l1HitLatency = 2;
    c.l2Banks = 4;
    c.l2HitLatency = 16;
    c.l2BankBusy = 4;
    c.loadUseSlots = 3;
    c.bubbleScale = 1.0;
    c.stealWindow = 1;
    c.memLatency = 240;
    c.mshrs = 16;
    return c;
}

CmpConfig
CmpConfig::lean()
{
    CmpConfig c;
    c.name = "lean";
    c.cores = 8;
    c.issueWidth = 2;
    c.outOfOrder = false;
    c.threadsPerCore = 4;
    c.robSize = 8; // in-order: tiny in-flight window
    c.storeQueue = 64;
    c.l1Ports = 1;
    c.l1HitLatency = 2;
    c.l2Banks = 4;
    c.l2HitLatency = 12;
    c.l2BankBusy = 5; // 16-way tag + data beats
    c.loadUseSlots = 2;
    c.bubbleScale = 4.0; // no reordering to hide dependency stalls
    c.stealWindow = 4;
    c.memLatency = 240;
    c.mshrs = 16;
    return c;
}

std::string
ProtectionConfig::label() const
{
    if (l1WriteThrough)
        return l2TwoDim ? "WT-L1 + 2D-L2" : "WT-L1";
    if (!l1TwoDim && !l2TwoDim)
        return "baseline";
    std::string out;
    if (l1TwoDim) {
        out += "L1";
        if (l1PortStealing)
            out += "+steal";
    }
    if (l2TwoDim) {
        if (!out.empty())
            out += " ";
        out += "L2";
    }
    return out;
}

} // namespace tdc
