#include "cpu/cmp_batch.hh"

#include "common/parallel.hh"

namespace tdc
{

std::vector<CmpSimResult>
runCmpBatch(const std::vector<CmpRunSpec> &specs, uint64_t cycles)
{
    std::vector<CmpSimResult> results(specs.size());
    parallelFor(specs.size(), [&](size_t i) {
        const CmpRunSpec &spec = specs[i];
        CmpSimulator sim(spec.machine, spec.workload, spec.protection,
                         spec.seed);
        results[i] = sim.run(cycles);
    });
    return results;
}

} // namespace tdc
