/**
 * @file
 * Batched CMP simulation: run many independent (machine, workload,
 * protection, seed) combinations across the worker pool. The Figure
 * 5/6 studies are grids of such runs; each CmpSimulator instance is
 * self-contained, so the grid is embarrassingly parallel and the
 * per-spec results are independent of thread count by construction.
 */

#ifndef TDC_CPU_CMP_BATCH_HH
#define TDC_CPU_CMP_BATCH_HH

#include <vector>

#include "cpu/cmp_simulator.hh"

namespace tdc
{

/** One simulation to run. */
struct CmpRunSpec
{
    CmpConfig machine;
    WorkloadProfile workload;
    ProtectionConfig protection;
    uint64_t seed = 1;
};

/**
 * Run every spec for @p cycles cycles, sharding specs across the
 * parallelFor pool. results[i] corresponds to specs[i].
 */
std::vector<CmpSimResult> runCmpBatch(const std::vector<CmpRunSpec> &specs,
                                      uint64_t cycles);

} // namespace tdc

#endif // TDC_CPU_CMP_BATCH_HH
