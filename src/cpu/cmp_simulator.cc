#include "cpu/cmp_simulator.hh"

#include <algorithm>
#include <cassert>

namespace tdc
{

namespace
{

/**
 * Store-queue drain policy: writes coalesce and drain in batches (a
 * write buffer drains when it fills or when the oldest entry times
 * out). Batching is what makes the read-before-write reads cluster —
 * and why port stealing cannot hide all of them.
 */
constexpr unsigned kDrainBatch = 4;
constexpr unsigned kDrainTimeout = 16;

} // namespace

CmpSimulator::CmpSimulator(const CmpConfig &machine_,
                           const WorkloadProfile &workload_,
                           const ProtectionConfig &protection_,
                           uint64_t seed)
    : machine(machine_), workload(workload_), protection(protection_)
{
    cores.resize(machine.cores);
    uint64_t stream_seed = seed * 7919;
    for (unsigned c = 0; c < machine.cores; ++c) {
        CoreState &core = cores[c];
        core.selfIndex = c;
        core.threads.resize(machine.threadsPerCore);
        for (ThreadState &t : core.threads) {
            t.stream = std::make_unique<InstructionStream>(workload,
                                                           ++stream_seed);
        }
        const unsigned window =
            protection.l1PortStealing ? machine.stealWindow : 0;
        core.l1Ports =
            std::make_unique<PortScheduler>(machine.l1Ports, window);
    }
    for (unsigned b = 0; b < machine.l2Banks; ++b)
        l2Banks.push_back(std::make_unique<PortScheduler>(1, 0));
}

unsigned
CmpSimulator::accessL2(unsigned bank, bool is_write)
{
    assert(bank < l2Banks.size());
    PortScheduler &sched = *l2Banks[bank];
    sched.advanceTo(now);

    unsigned delay = 0;
    if (is_write && protection.l2TwoDim) {
        // Read-before-write in the L2 bank: the old line is read to
        // update the vertical parity before the write lands.
        for (unsigned i = 0; i < machine.l2BankBusy; ++i)
            delay = sched.issueDemand();
        ++result.l2ExtraReads;
    }
    for (unsigned i = 0; i < machine.l2BankBusy; ++i)
        delay = sched.issueDemand();
    return delay;
}

unsigned
CmpSimulator::missLatency(const SyntheticInstr &instr,
                          unsigned bank_delay) const
{
    unsigned latency = machine.l1HitLatency + machine.l2HitLatency +
                       bank_delay;
    if (instr.l2Miss)
        latency += machine.memLatency;
    return latency;
}

unsigned
CmpSimulator::outstandingMisses(const CoreState &core)
{
    unsigned count = 0;
    for (const Pending &p : core.pending)
        count += p.fillsL1;
    return count;
}

unsigned
CmpSimulator::serviceMiss(CoreState &core, const SyntheticInstr &instr,
                          unsigned bank)
{
    if (instr.dirtyShared && machine.cores > 1) {
        // L1-to-L1 transfer of dirty data: the peer's L1 sources the
        // line over the crossbar instead of the L2. The peer pays one
        // port access for the source read.
        CoreState &peer =
            cores[(core.selfIndex + 1 + instr.bankHash % (machine.cores -
                                                          1)) %
                  machine.cores];
        peer.l1Ports->advanceTo(now);
        peer.l1Ports->issueDemand();
        ++result.l1DirtyTransfers;
        return machine.l1HitLatency + machine.l2HitLatency;
    }

    const unsigned bank_delay = accessL2(bank, false);
    ++result.l2ReadsData;
    if (instr.l2Miss) {
        // The memory refill writes the line into the L2 (another
        // write the 2D L2 must read-before-write).
        accessL2(bank, true);
        ++result.l2FillEvict;
    }
    return missLatency(instr, bank_delay);
}

void
CmpSimulator::completePending(CoreState &core)
{
    for (size_t i = 0; i < core.pending.size();) {
        Pending &p = core.pending[i];
        if (p.doneCycle > now) {
            ++i;
            continue;
        }
        if (p.fillsL1) {
            // The refill writes the L1 array; under 2D coding the
            // fill is a write and therefore a read-before-write.
            core.l1Ports->advanceTo(now);
            if (protection.l1TwoDim) {
                if (protection.l1PortStealing)
                    core.l1Ports->issueStolenRead();
                else
                    core.l1Ports->issueDemand();
                ++result.l1ExtraReads;
            }
            core.l1Ports->issueDemand();
            ++result.l1FillEvict;
            if (p.dirtyEvict) {
                // Dirty victim: write-back into the L2 bank.
                accessL2(p.bank, true);
                ++result.l2Writes;
            }
        }
        if (p.isIfetch && core.threads[p.thread].blockedUntil <= now)
            core.threads[p.thread].blockedUntil = now;
        core.pending[i] = core.pending.back();
        core.pending.pop_back();
    }
}

void
CmpSimulator::drainStoreQueue(CoreState &core)
{
    // Writes coalesce; the buffer drains a batch when it fills or the
    // oldest entry times out. Clustered drains mean the 2D
    // read-before-write reads arrive in clusters too, which is why
    // port stealing cannot absorb every one of them.
    const bool full_batch = core.storeQueueOcc >= kDrainBatch;
    const bool timed_out = core.storeQueueOcc > 0 &&
                           now - core.lastDrain >= kDrainTimeout;
    if (!full_batch && !timed_out)
        return;
    core.lastDrain = now;
    const unsigned n = std::min<unsigned>(kDrainBatch,
                                          core.storeQueueOcc);
    for (unsigned d = 0; d < n; ++d) {
        if (protection.l1TwoDim) {
            if (protection.l1PortStealing)
                core.l1Ports->issueStolenRead();
            else
                core.l1Ports->issueDemand();
            ++result.l1ExtraReads;
        }
        core.l1Ports->issueDemand();
        ++result.l1Writes;
        --core.storeQueueOcc;
        if (protection.l1WriteThrough) {
            // Duplicate the store into the next level: the L2 write
            // that makes the write-through alternative expensive,
            // especially with a shared L2 (Section 2.1).
            const unsigned bank =
                unsigned((now * 2654435761u + d) % machine.l2Banks);
            accessL2(bank, true);
            ++result.l2Writes;
        }
    }
}

void
CmpSimulator::stepOutOfOrderCore(CoreState &core)
{
    core.l1Ports->advanceTo(now);
    completePending(core);
    drainStoreQueue(core);

    if (now < core.fetchStallUntil)
        return; // waiting on an instruction refill

    ThreadState &thread = core.threads[0];
    bool sq_stall = false;
    for (unsigned slot = 0; slot < machine.issueWidth; ++slot) {
        if (core.pending.size() >= machine.robSize)
            break; // in-flight window full: stall

        // ILP bubbles (dependency stalls attached to the previous
        // instruction) consume issue slots without committing work.
        if (thread.bubbleDebt > 0) {
            --thread.bubbleDebt;
            continue;
        }

        const SyntheticInstr instr = thread.stream->next();
        thread.bubbleDebt = instr.bubbles;

        if (instr.ifetchMiss) {
            const unsigned bank = instr.bankHash % machine.l2Banks;
            const unsigned delay = accessL2(bank, false);
            ++result.l2ReadsInst;
            core.fetchStallUntil =
                now + machine.l2HitLatency + delay +
                (instr.l2Miss ? machine.memLatency : 0);
        }

        switch (instr.kind) {
          case SyntheticInstr::Kind::kNonMem:
            break;
          case SyntheticInstr::Kind::kLoad: {
            const unsigned port_delay = core.l1Ports->issueDemand();
            ++result.l1ReadsData;
            // Port contention lengthens the load-to-use path; even an
            // OoO core loses some issue slots to dependents waiting.
            thread.bubbleDebt += port_delay * machine.loadUseSlots;
            Pending p;
            p.thread = 0;
            if (instr.l1dMiss) {
                const unsigned bank = instr.bankHash % machine.l2Banks;
                p.doneCycle =
                    now + port_delay + serviceMiss(core, instr, bank);
                p.fillsL1 = true;
                p.dirtyEvict = instr.dirtyEvict;
                p.bank = bank;
            } else {
                p.doneCycle = now + port_delay + machine.l1HitLatency;
            }
            core.pending.push_back(p);
            // A full MSHR file is a structural hazard: no further
            // issue this cycle.
            if (instr.l1dMiss &&
                outstandingMisses(core) >= machine.mshrs) {
                sq_stall = true;
            }
            break;
          }
          case SyntheticInstr::Kind::kStore:
            if (core.storeQueueOcc >= machine.storeQueue) {
                // Store queue full: the store cannot issue; the core
                // stalls for the rest of this cycle.
                sq_stall = true;
                break;
            }
            ++core.storeQueueOcc;
            break;
        }
        if (sq_stall)
            break;
        ++result.instructions;

        if (instr.ifetchMiss)
            break; // fetch redirects; later slots are bubbles
    }
}

void
CmpSimulator::stepInOrderCore(CoreState &core)
{
    core.l1Ports->advanceTo(now);
    completePending(core);
    drainStoreQueue(core);

    // Fine-grain multithreading: each issue slot goes to the next
    // ready thread (round-robin).
    const unsigned nthreads = unsigned(core.threads.size());
    for (unsigned slot = 0; slot < machine.issueWidth; ++slot) {
        ThreadState *picked = nullptr;
        for (unsigned k = 0; k < nthreads; ++k) {
            ThreadState &cand =
                core.threads[(core.nextThread + k) % nthreads];
            if (cand.blockedUntil <= now) {
                picked = &cand;
                core.nextThread = (core.nextThread + k + 1) % nthreads;
                break;
            }
        }
        if (picked == nullptr)
            break; // every thread is blocked

        const SyntheticInstr instr = picked->stream->next();
        const unsigned thread_id =
            unsigned(picked - core.threads.data());

        // Dependency bubbles stall this thread; the other hardware
        // threads keep the issue slots busy (fine-grain SMT latency
        // hiding).
        if (instr.bubbles > 0) {
            const double scaled =
                double(instr.bubbles) * machine.bubbleScale;
            const uint64_t stall = uint64_t(
                (scaled + machine.issueWidth - 1) / machine.issueWidth);
            picked->blockedUntil =
                std::max(picked->blockedUntil, now + stall);
        }

        if (instr.ifetchMiss) {
            const unsigned bank = instr.bankHash % machine.l2Banks;
            const unsigned delay = accessL2(bank, false);
            ++result.l2ReadsInst;
            picked->blockedUntil =
                now + machine.l2HitLatency + delay +
                (instr.l2Miss ? machine.memLatency : 0);
        }

        switch (instr.kind) {
          case SyntheticInstr::Kind::kNonMem:
            break;
          case SyntheticInstr::Kind::kLoad: {
            const unsigned port_delay = core.l1Ports->issueDemand();
            ++result.l1ReadsData;
            if (instr.l1dMiss) {
                // A full MSHR file is a structural hazard: the thread
                // stalls and the load replays once an MSHR frees up
                // (the instruction is not committed now).
                if (outstandingMisses(core) >= machine.mshrs) {
                    picked->blockedUntil = now + 2;
                    continue;
                }
                const unsigned bank = instr.bankHash % machine.l2Banks;
                const uint64_t done =
                    now + port_delay + serviceMiss(core, instr, bank);
                // In-order: the thread blocks until the load returns.
                picked->blockedUntil =
                    std::max(picked->blockedUntil, done);
                Pending p;
                p.doneCycle = done;
                p.fillsL1 = true;
                p.dirtyEvict = instr.dirtyEvict;
                p.bank = bank;
                p.thread = thread_id;
                core.pending.push_back(p);
            } else {
                // In-order blocking load: the thread waits for the L1
                // hit (plus any port-contention delay); the other
                // hardware threads hide the gap.
                picked->blockedUntil = std::max(
                    picked->blockedUntil,
                    now + port_delay + machine.l1HitLatency);
            }
            break;
          }
          case SyntheticInstr::Kind::kStore:
            if (core.storeQueueOcc >= machine.storeQueue) {
                // Retry next cycle.
                picked->blockedUntil = now + 1;
                continue;
            }
            ++core.storeQueueOcc;
            break;
        }
        ++result.instructions;
    }
}

CmpSimResult
CmpSimulator::run(uint64_t cycles)
{
    const uint64_t end = now + cycles;
    for (; now < end; ++now) {
        for (CoreState &core : cores) {
            if (machine.outOfOrder)
                stepOutOfOrderCore(core);
            else
                stepInOrderCore(core);
        }
    }
    result.cycles += cycles;
    return result;
}

} // namespace tdc
