/**
 * @file
 * The Figure 5/6-style IPC-loss campaign: a declarative grid of
 * (machine x workload x protection) CmpSimulator runs, executed as one
 * cmp_batch over the worker pool and rendered through the unified
 * campaign driver. Baseline and protected runs are matched-pair (same
 * seed), the SimFlex-style methodology of Section 5.
 */

#ifndef TDC_CPU_IPC_CAMPAIGN_HH
#define TDC_CPU_IPC_CAMPAIGN_HH

#include <string>
#include <vector>

#include "cpu/cmp_batch.hh"
#include "reliability/campaign.hh"

namespace tdc
{

/** One IPC-loss figure panel: a machine swept over workloads x
 *  protections, each protected run paired with a same-seed baseline. */
struct IpcLossCampaignSpec
{
    CmpConfig machine;

    /** Workloads (rows). Empty = standardWorkloads(). */
    std::vector<WorkloadProfile> workloads;

    /** Protected configurations (columns) and their table headers. */
    std::vector<ProtectionConfig> protections;
    std::vector<std::string> columnHeaders;

    /** Cycles per run and the matched-pair seed. */
    uint64_t cycles = 150000;
    uint64_t seed = 42;

    /** Panel heading ("--- Figure 5(a) ---"); empty = table only. */
    std::string title;

    /** The four protection columns of Figure 5. */
    static IpcLossCampaignSpec figure5(const CmpConfig &machine,
                                       const std::string &title);

    /**
     * A custom panel from protection spec strings (see
     * ProtectionConfig::parse); column headers default to each
     * config's label(). Workload names filter standardWorkloads()
     * (empty = all); unknown names throw std::invalid_argument.
     */
    static IpcLossCampaignSpec fromProtectionSpecs(
        const CmpConfig &machine, const std::string &title,
        const std::vector<std::string> &protection_specs,
        const std::vector<std::string> &workload_names = {});
};

/**
 * Run the whole grid as one cmp_batch (every workload x {baseline +
 * protections} spec in parallel), then tabulate the relative IPC loss
 * per cell plus a per-column "Average" summary row. Bit-identical at
 * any thread count: each CmpSimulator run is self-contained and the
 * table reduction happens in grid order.
 */
CampaignResult runIpcLossCampaign(const IpcLossCampaignSpec &spec);

} // namespace tdc

#endif // TDC_CPU_IPC_CAMPAIGN_HH
