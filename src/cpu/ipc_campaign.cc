#include "cpu/ipc_campaign.hh"

#include <cassert>
#include <stdexcept>

namespace tdc
{

IpcLossCampaignSpec
IpcLossCampaignSpec::figure5(const CmpConfig &machine,
                             const std::string &title)
{
    // Figure 5's protection axis as registry specs, with the paper's
    // column wording kept over the default label() headers.
    IpcLossCampaignSpec spec =
        fromProtectionSpecs(machine, title,
                            {"l1", "l1+steal", "l2", "l1+steal+l2"});
    spec.columnHeaders = {"L1 D-cache", "L1 + port stealing", "L2 cache",
                          "L1(steal) + L2"};
    return spec;
}

IpcLossCampaignSpec
IpcLossCampaignSpec::fromProtectionSpecs(
    const CmpConfig &machine, const std::string &title,
    const std::vector<std::string> &protection_specs,
    const std::vector<std::string> &workload_names)
{
    IpcLossCampaignSpec spec;
    spec.machine = machine;
    spec.title = title;
    for (const std::string &p : protection_specs) {
        spec.protections.push_back(ProtectionConfig::parse(p));
        spec.columnHeaders.push_back(spec.protections.back().label());
    }
    for (const std::string &name : workload_names) {
        bool found = false;
        for (const WorkloadProfile &w : standardWorkloads()) {
            if (w.name == name) {
                spec.workloads.push_back(w);
                found = true;
                break;
            }
        }
        if (!found)
            throw std::invalid_argument("unknown workload \"" + name +
                                        "\"");
    }
    return spec;
}

CampaignResult
runIpcLossCampaign(const IpcLossCampaignSpec &spec)
{
    assert(spec.protections.size() == spec.columnHeaders.size());
    const std::vector<WorkloadProfile> &workloads =
        spec.workloads.empty() ? standardWorkloads() : spec.workloads;
    const size_t np = spec.protections.size();
    const size_t stride = np + 1; // baseline + protected runs

    // One flat batch over the pool: per workload, the matched-pair
    // baseline followed by every protected configuration.
    std::vector<CmpRunSpec> runs;
    runs.reserve(workloads.size() * stride);
    for (const WorkloadProfile &w : workloads) {
        runs.push_back({spec.machine, w, ProtectionConfig::none(),
                        spec.seed});
        for (const ProtectionConfig &prot : spec.protections)
            runs.push_back({spec.machine, w, prot, spec.seed});
    }
    const std::vector<CmpSimResult> results = runCmpBatch(runs,
                                                          spec.cycles);

    // Relative IPC loss per cell, computed serially in grid order.
    std::vector<std::vector<double>> loss(workloads.size(),
                                          std::vector<double>(np));
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const double base = results[wi * stride].ipc();
        for (size_t pi = 0; pi < np; ++pi)
            loss[wi][pi] =
                (base - results[wi * stride + 1 + pi].ipc()) / base;
    }

    CampaignGrid grid;
    grid.title = spec.title;
    grid.rowHeader = "Workload";
    for (const WorkloadProfile &w : workloads)
        grid.rowLabels.push_back(w.name);
    grid.colHeaders = spec.columnHeaders;
    grid.parallelCells = false; // the batch above did the heavy work
    grid.cell = [&](size_t row, size_t col) {
        return Table::pct(loss[row][col]);
    };
    grid.summary = [&](const std::vector<std::vector<std::string>> &) {
        std::vector<std::string> avg{"Average"};
        for (size_t pi = 0; pi < np; ++pi) {
            double sum = 0.0;
            for (size_t wi = 0; wi < workloads.size(); ++wi)
                sum += loss[wi][pi];
            avg.push_back(Table::pct(sum / double(workloads.size())));
        }
        return std::vector<std::vector<std::string>>{std::move(avg)};
    };
    return runCampaignGrid(grid);
}

} // namespace tdc
