/**
 * @file
 * A functional two-level cache hierarchy whose data arrays are
 * 2D-protected stores: the adoption-level view of the paper's scheme.
 *
 * Tags and replacement come from the functional Cache model; line
 * data lives in TwoDimCacheStore banks indexed by the cache frame
 * (set, way). Fills, write hits and write-backs all route through
 * writeWord — i.e. through the read-before-write vertical-parity
 * maintenance — and reads go through the horizontal detection path
 * with transparent recovery.
 */

#ifndef TDC_CACHE_PROTECTED_HIERARCHY_HH
#define TDC_CACHE_PROTECTED_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "cache/cache.hh"
#include "core/twod_cache_store.hh"

namespace tdc
{

/** One 64-byte cache line as eight 64-bit words. */
struct LineData
{
    std::array<uint64_t, 8> words{};

    bool operator==(const LineData &other) const = default;
};

/** Aggregate statistics of the hierarchy. */
struct HierarchyStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t writebacksToL2 = 0;
    uint64_t writebacksToMemory = 0;
    uint64_t dataLossEvents = 0; ///< uncorrectable reads observed
};

/**
 * L1 + shared L2 with 2D-protected data stores and a simple
 * word-granular backing memory. Single-requester functional model:
 * the timing aspects live in src/cpu, this class answers "does the
 * data survive the full movement through a protected hierarchy".
 */
class ProtectedCacheHierarchy
{
  public:
    /**
     * @param l1_params / l2_params tag-array geometries
     * @param l1_bank / l2_bank per-bank 2D configurations for the two
     *        data stores (word width must be 64)
     */
    ProtectedCacheHierarchy(const CacheParams &l1_params,
                            const CacheParams &l2_params,
                            const TwoDimConfig &l1_bank,
                            const TwoDimConfig &l2_bank);

    /** Write a full line (marks it dirty in L1). */
    void writeLine(uint64_t addr, const LineData &data);

    /** Read a full line (filling through L2/memory on misses). */
    LineData readLine(uint64_t addr);

    /** Scrub both data stores; true iff both end clean. */
    bool scrubAll();

    /** Data stores, exposed for fault injection. */
    TwoDimCacheStore &l1Data() { return l1Store; }
    TwoDimCacheStore &l2Data() { return l2Store; }

    const HierarchyStats &stats() const { return stat; }

  private:
    /** Align @p addr down to its line base. */
    uint64_t lineBase(uint64_t addr) const;

    /** Read/write a whole line in a store at a given frame. */
    LineData readFrame(TwoDimCacheStore &store, size_t frame);
    void writeFrame(TwoDimCacheStore &store, size_t frame,
                    const LineData &data);

    /** Fetch a line into L2 (from memory if needed); returns the L2
     *  frame that now holds it. */
    size_t fetchIntoL2(uint64_t addr);

    Cache l1Tags;
    Cache l2Tags;
    TwoDimCacheStore l1Store;
    TwoDimCacheStore l2Store;
    std::unordered_map<uint64_t, LineData> memory;
    HierarchyStats stat;
};

} // namespace tdc

#endif // TDC_CACHE_PROTECTED_HIERARCHY_HH
