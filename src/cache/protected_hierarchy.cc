#include "cache/protected_hierarchy.hh"

#include <cassert>

namespace tdc
{

namespace
{

/** Banks needed so a store holds at least @p frames lines. */
size_t
banksFor(const TwoDimConfig &bank, size_t frames)
{
    const size_t words_needed = frames * 8;
    const size_t words_per_bank = bank.dataRows * bank.interleaveDegree;
    return (words_needed + words_per_bank - 1) / words_per_bank;
}

} // namespace

ProtectedCacheHierarchy::ProtectedCacheHierarchy(
    const CacheParams &l1_params, const CacheParams &l2_params,
    const TwoDimConfig &l1_bank, const TwoDimConfig &l2_bank)
    : l1Tags(l1_params),
      l2Tags(l2_params),
      l1Store(l1_bank, banksFor(l1_bank, l1_params.numLines())),
      l2Store(l2_bank, banksFor(l2_bank, l2_params.numLines()))
{
    assert(l1_bank.wordBits == 64 && l2_bank.wordBits == 64);
    assert(l1_params.lineBytes == 64 && l2_params.lineBytes == 64);
    assert(l1Store.totalWords() >= l1_params.numLines() * 8);
    assert(l2Store.totalWords() >= l2_params.numLines() * 8);
}

uint64_t
ProtectedCacheHierarchy::lineBase(uint64_t addr) const
{
    return addr & ~uint64_t(63);
}

LineData
ProtectedCacheHierarchy::readFrame(TwoDimCacheStore &store, size_t frame)
{
    LineData line;
    for (size_t w = 0; w < 8; ++w) {
        AccessResult res = store.readWord(frame * 8 + w);
        if (res.status == DecodeStatus::kDetectedUncorrectable)
            ++stat.dataLossEvents;
        line.words[w] = res.data.toUint64();
    }
    return line;
}

void
ProtectedCacheHierarchy::writeFrame(TwoDimCacheStore &store, size_t frame,
                                    const LineData &data)
{
    for (size_t w = 0; w < 8; ++w)
        store.writeWord(frame * 8 + w, BitVector(64, data.words[w]));
}

size_t
ProtectedCacheHierarchy::fetchIntoL2(uint64_t addr)
{
    const CacheAccessOutcome out = l2Tags.access(addr, false);
    if (out.hit) {
        ++stat.l2Hits;
        return out.frame;
    }
    ++stat.l2Misses;
    // L2 victim write-back to memory (read its data before the frame
    // is reused).
    if (out.evicted && out.evictedDirty) {
        memory[out.evictedAddr] = readFrame(l2Store, out.frame);
        ++stat.writebacksToMemory;
    }
    // Fill from memory (absent lines read as zero).
    auto it = memory.find(lineBase(addr));
    writeFrame(l2Store, out.frame,
               it != memory.end() ? it->second : LineData{});
    return out.frame;
}

LineData
ProtectedCacheHierarchy::readLine(uint64_t addr)
{
    ++stat.reads;
    const uint64_t base = lineBase(addr);
    const CacheAccessOutcome out = l1Tags.access(base, false);
    if (out.hit) {
        ++stat.l1Hits;
        return readFrame(l1Store, out.frame);
    }
    ++stat.l1Misses;
    // Write back the dirty victim into L2 before reusing the frame.
    if (out.evicted && out.evictedDirty) {
        const LineData victim = readFrame(l1Store, out.frame);
        const CacheAccessOutcome wb =
            l2Tags.access(out.evictedAddr, true);
        if (wb.evicted && wb.evictedDirty) {
            memory[wb.evictedAddr] = readFrame(l2Store, wb.frame);
            ++stat.writebacksToMemory;
        }
        writeFrame(l2Store, wb.frame, victim);
        ++stat.writebacksToL2;
    }
    const size_t l2_frame = fetchIntoL2(base);
    const LineData line = readFrame(l2Store, l2_frame);
    writeFrame(l1Store, out.frame, line);
    return line;
}

void
ProtectedCacheHierarchy::writeLine(uint64_t addr, const LineData &data)
{
    ++stat.writes;
    const uint64_t base = lineBase(addr);
    const CacheAccessOutcome out = l1Tags.access(base, true);
    if (!out.hit) {
        ++stat.l1Misses;
        if (out.evicted && out.evictedDirty) {
            const LineData victim = readFrame(l1Store, out.frame);
            const CacheAccessOutcome wb =
                l2Tags.access(out.evictedAddr, true);
            if (wb.evicted && wb.evictedDirty) {
                memory[wb.evictedAddr] = readFrame(l2Store, wb.frame);
                ++stat.writebacksToMemory;
            }
            writeFrame(l2Store, wb.frame, victim);
            ++stat.writebacksToL2;
        }
        // Write-allocate: fetch the line through L2 first (the write
        // below fully overwrites it, but allocation keeps the L2
        // inclusive state simple).
        fetchIntoL2(base);
    } else {
        ++stat.l1Hits;
    }
    writeFrame(l1Store, out.frame, data);
}

bool
ProtectedCacheHierarchy::scrubAll()
{
    const bool a = l1Store.scrubAll();
    const bool b = l2Store.scrubAll();
    return a && b;
}

} // namespace tdc
