/**
 * @file
 * Functional set-associative cache model: tags, LRU replacement,
 * write-back dirty state. Used by the examples and integration tests
 * to exercise the 2D coding layer under realistic access streams;
 * the cycle-level CMP simulation (src/cpu) models timing separately.
 */

#ifndef TDC_CACHE_CACHE_HH
#define TDC_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tdc
{

/** Static geometry of one cache. */
struct CacheParams
{
    size_t capacityBytes = 64 * 1024;
    size_t associativity = 2;
    size_t lineBytes = 64;
    bool writeBack = true;
    std::string name = "cache";

    size_t numSets() const
    {
        return capacityBytes / (lineBytes * associativity);
    }
    size_t numLines() const { return capacityBytes / lineBytes; }

    /** Table 1 L1: 64kB, 2-way, 64B lines, write-back. */
    static CacheParams l1();
    /** Table 1 fat-CMP L2: 16MB, 8-way, 64B lines. */
    static CacheParams l2Fat();
    /** Table 1 lean-CMP L2: 4MB, 16-way, 64B lines. */
    static CacheParams l2Lean();
};

/** Outcome of one functional cache access. */
struct CacheAccessOutcome
{
    bool hit = false;
    /** A line was evicted to make room. */
    bool evicted = false;
    /** The evicted line was dirty (write-back traffic). */
    bool evictedDirty = false;
    /** Address of the evicted line (valid iff evicted). */
    uint64_t evictedAddr = 0;
    /**
     * Frame (set * associativity + way) the line occupies after the
     * access: the physical data-array slot a protected data store
     * maps to.
     */
    size_t frame = 0;
};

/**
 * Functional set-associative cache with true-LRU replacement and
 * write-back dirty tracking. Thread-unsafe by design (one per
 * simulated bank/core).
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    const CacheParams &params() const { return cfg; }

    /**
     * Access @p addr; allocate on miss. Write hits/allocations mark
     * the line dirty when the cache is write-back.
     */
    CacheAccessOutcome access(uint64_t addr, bool is_write);

    /** Tag probe without side effects. */
    bool contains(uint64_t addr) const;

    /** Invalidate the line holding @p addr; returns true if present.
     *  @p was_dirty reports the dirty state of the dropped line. */
    bool invalidate(uint64_t addr, bool *was_dirty = nullptr);

    /** Number of resident lines. */
    size_t occupancy() const;

    uint64_t hits() const { return hitCount; }
    uint64_t misses() const { return missCount; }
    uint64_t writebacks() const { return writebackCount; }
    double hitRate() const;
    void resetStats();

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lruStamp = 0;
    };

    size_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;
    uint64_t lineAddr(uint64_t tag, size_t set) const;

    CacheParams cfg;
    std::vector<Line> lines; // sets * assoc, set-major
    uint64_t lruClock = 0;
    uint64_t hitCount = 0;
    uint64_t missCount = 0;
    uint64_t writebackCount = 0;
};

} // namespace tdc

#endif // TDC_CACHE_CACHE_HH
