#include "cache/cache.hh"

#include <cassert>

namespace tdc
{

CacheParams
CacheParams::l1()
{
    CacheParams p;
    p.capacityBytes = 64 * 1024;
    p.associativity = 2;
    p.lineBytes = 64;
    p.writeBack = true;
    p.name = "L1";
    return p;
}

CacheParams
CacheParams::l2Fat()
{
    CacheParams p;
    p.capacityBytes = 16ull * 1024 * 1024;
    p.associativity = 8;
    p.lineBytes = 64;
    p.writeBack = true;
    p.name = "L2(fat)";
    return p;
}

CacheParams
CacheParams::l2Lean()
{
    CacheParams p;
    p.capacityBytes = 4ull * 1024 * 1024;
    p.associativity = 16;
    p.lineBytes = 64;
    p.writeBack = true;
    p.name = "L2(lean)";
    return p;
}

Cache::Cache(const CacheParams &params)
    : cfg(params), lines(params.numSets() * params.associativity)
{
    assert(cfg.capacityBytes % (cfg.lineBytes * cfg.associativity) == 0);
}

size_t
Cache::setIndex(uint64_t addr) const
{
    return (addr / cfg.lineBytes) % cfg.numSets();
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr / cfg.lineBytes / cfg.numSets();
}

uint64_t
Cache::lineAddr(uint64_t tag, size_t set) const
{
    return (tag * cfg.numSets() + set) * cfg.lineBytes;
}

CacheAccessOutcome
Cache::access(uint64_t addr, bool is_write)
{
    CacheAccessOutcome out;
    const size_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line *base = &lines[set * cfg.associativity];

    ++lruClock;
    Line *victim = base;
    for (size_t w = 0; w < cfg.associativity; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            out.hit = true;
            out.frame = set * cfg.associativity + w;
            line.lruStamp = lruClock;
            if (is_write && cfg.writeBack)
                line.dirty = true;
            ++hitCount;
            return out;
        }
        if (!line.valid) {
            victim = &line; // prefer an invalid way
        } else if (victim->valid && line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }

    ++missCount;
    if (victim->valid) {
        out.evicted = true;
        out.evictedDirty = victim->dirty;
        out.evictedAddr = lineAddr(victim->tag, set);
        if (victim->dirty)
            ++writebackCount;
    }
    victim->valid = true;
    victim->dirty = is_write && cfg.writeBack;
    victim->tag = tag;
    victim->lruStamp = lruClock;
    out.frame = size_t(victim - &lines[0]);
    return out;
}

bool
Cache::contains(uint64_t addr) const
{
    const size_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    const Line *base = &lines[set * cfg.associativity];
    for (size_t w = 0; w < cfg.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(uint64_t addr, bool *was_dirty)
{
    const size_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line *base = &lines[set * cfg.associativity];
    for (size_t w = 0; w < cfg.associativity; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            if (was_dirty != nullptr)
                *was_dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return true;
        }
    }
    if (was_dirty != nullptr)
        *was_dirty = false;
    return false;
}

size_t
Cache::occupancy() const
{
    size_t count = 0;
    for (const Line &line : lines)
        count += line.valid;
    return count;
}

double
Cache::hitRate() const
{
    const uint64_t total = hitCount + missCount;
    return total == 0 ? 0.0 : double(hitCount) / double(total);
}

void
Cache::resetStats()
{
    hitCount = 0;
    missCount = 0;
    writebackCount = 0;
}

} // namespace tdc
