/**
 * @file
 * Analytical SRAM array model with organization exploration — the
 * repository's stand-in for Cacti 4.0 (see DESIGN.md substitutions).
 */

#ifndef TDC_VLSI_SRAM_MODEL_HH
#define TDC_VLSI_SRAM_MODEL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "vlsi/tech.hh"

namespace tdc
{

/** Objective functions Cacti optimizes for (Section 2.2). */
enum class SramObjective
{
    kDelay,          ///< delay-only optimal
    kPower,          ///< power-only optimal
    kDelayArea,      ///< delay+area optimal
    kBalanced,       ///< power+delay+area balanced
};

std::string sramObjectiveName(SramObjective obj);

/** One candidate physical organization of the array. */
struct SramOrg
{
    size_t subarrayRows = 0; ///< rows per subarray (bitline height)
    size_t segmentation = 1; ///< bitline segments per subarray
    size_t numSubarrays = 0;
    size_t subarrayCols = 0; ///< columns per subarray (wordline width)
};

/** Metrics of one organization, in normalized units. */
struct SramMetrics
{
    double delay = 0.0;        ///< access time
    double readEnergy = 0.0;   ///< dynamic energy per read access
    double area = 0.0;         ///< silicon area
    SramOrg org;
};

/**
 * Model of one SRAM bank storing `words` codewords of `codewordBits`
 * bits, physically interleaved `interleave` ways (so each physical
 * row holds `interleave` codewords and an access column-muxes one of
 * them out).
 *
 * explore() enumerates subarray heights and bitline segmentation
 * factors; optimize() picks the best organization under an objective,
 * mirroring how the paper lets Cacti re-optimize each design point as
 * the interleave degree changes.
 */
class SramModel
{
  public:
    SramModel(size_t words, size_t codeword_bits, size_t interleave,
              const TechParams &tech = defaultTech());

    size_t words() const { return numWords; }
    size_t codewordBits() const { return cwBits; }
    size_t interleave() const { return intv; }
    size_t totalRows() const;
    size_t rowBits() const { return cwBits * intv; }

    /** Metrics of one explicit organization. */
    SramMetrics evaluate(const SramOrg &org) const;

    /** All legal candidate organizations. */
    std::vector<SramOrg> candidates() const;

    /** Best organization under @p objective. */
    SramMetrics optimize(SramObjective objective) const;

  private:
    size_t numWords;
    size_t cwBits;
    size_t intv;
    TechParams tech;
};

/**
 * Convenience: energy per read of a cache data array of
 * @p capacity_bytes data bytes, @p data_bits wide words carrying
 * @p check_bits extra code bits, @p interleave-way interleaved,
 * divided into @p banks independently accessed banks (only one bank
 * activates per access), optimized for @p objective.
 */
SramMetrics cacheArrayMetrics(size_t capacity_bytes, size_t data_bits,
                              size_t check_bits, size_t interleave,
                              size_t banks, SramObjective objective,
                              const TechParams &tech = defaultTech());

} // namespace tdc

#endif // TDC_VLSI_SRAM_MODEL_HH
