#include "vlsi/sram_model.hh"

#include <cassert>
#include <cmath>
#include <limits>

namespace tdc
{

std::string
sramObjectiveName(SramObjective obj)
{
    switch (obj) {
      case SramObjective::kDelay: return "delay-opt";
      case SramObjective::kPower: return "power-opt";
      case SramObjective::kDelayArea: return "delay+area-opt";
      case SramObjective::kBalanced: return "balanced";
    }
    return {};
}

SramModel::SramModel(size_t words, size_t codeword_bits, size_t interleave,
                     const TechParams &tech_)
    : numWords(words), cwBits(codeword_bits), intv(interleave), tech(tech_)
{
    assert(numWords > 0 && cwBits > 0 && intv > 0);
    assert(numWords % intv == 0 && "words must fill whole rows");
}

size_t
SramModel::totalRows() const
{
    return numWords / intv;
}

std::vector<SramOrg>
SramModel::candidates() const
{
    std::vector<SramOrg> out;
    const size_t rows = totalRows();
    for (size_t sub_rows = 16; sub_rows <= 2048; sub_rows *= 2) {
        if (sub_rows > rows)
            break;
        for (size_t seg = 1; seg <= 8; seg *= 2) {
            if (seg >= sub_rows)
                break;
            SramOrg org;
            org.subarrayRows = sub_rows;
            org.segmentation = seg;
            org.subarrayCols = rowBits();
            org.numSubarrays = (rows + sub_rows - 1) / sub_rows;
            out.push_back(org);
        }
    }
    assert(!out.empty());
    return out;
}

SramMetrics
SramModel::evaluate(const SramOrg &org) const
{
    SramMetrics m;
    m.org = org;

    const double cols = double(org.subarrayCols);
    const double seg_rows = double(org.subarrayRows) / double(org.segmentation);
    const double total_bits =
        double(org.numSubarrays) * double(org.subarrayRows) * cols;
    const double addr_bits = std::log2(double(totalRows()));
    const double mux_levels =
        intv > 1 ? std::log2(double(intv)) : 0.0;

    // --- Delay: decode -> wordline -> bitline -> sense -> mux ->
    //     global route. Only one subarray activates per access.
    m.delay = tech.decodeBase + tech.decodePerBit * addr_bits +
              tech.wordlinePerCol * cols +
              tech.bitlinePerRow * seg_rows + tech.senseAmp +
              tech.muxPerLevel * mux_levels +
              tech.routePerSqrtBit * std::sqrt(total_bits) +
              tech.routePerSubarrayLevel *
                  std::log2(double(org.numSubarrays) + 1.0);

    // --- Energy per read. The dominant term is the bitline partial
    //     swing of *every* column in the activated subarray (this is
    //     the pseudo-read cost that makes deep interleaving
    //     expensive, Section 2.2). Sensing is also per-column;
    //     output drive is per selected codeword bit only.
    m.readEnergy = tech.eDecodePerBit * addr_bits +
                   tech.eWordlinePerCol * cols +
                   tech.eBitlinePerColRow * cols * seg_rows +
                   tech.eSenseAmpPerCol * cols +
                   tech.ePerOutputBit * double(cwBits) +
                   tech.eRoutePerSqrtBit * std::sqrt(total_bits) +
                   tech.ePerSubarray * double(org.numSubarrays);

    // --- Area: cells + per-segment sense-amp strips + decoders +
    //     global wiring overhead.
    const double cell_area = tech.cellArea * total_bits;
    const double sa_area = tech.senseAmpAreaPerCol * cols *
                           double(org.segmentation) *
                           double(org.numSubarrays);
    const double dec_area = tech.decodeAreaPerRow *
                            double(org.subarrayRows) *
                            double(org.numSubarrays);
    m.area = (cell_area + sa_area + dec_area) *
             (1.0 + tech.areaWireOverhead);
    return m;
}

SramMetrics
SramModel::optimize(SramObjective objective) const
{
    const std::vector<SramOrg> cands = candidates();
    std::vector<SramMetrics> metrics;
    metrics.reserve(cands.size());
    double min_delay = std::numeric_limits<double>::max();
    double min_energy = min_delay, min_area = min_delay;
    for (const SramOrg &org : cands) {
        metrics.push_back(evaluate(org));
        min_delay = std::min(min_delay, metrics.back().delay);
        min_energy = std::min(min_energy, metrics.back().readEnergy);
        min_area = std::min(min_area, metrics.back().area);
    }

    // Weighted sum of metrics normalized to the per-metric optimum,
    // the standard Cacti objective formulation.
    auto score = [&](const SramMetrics &m) {
        const double nd = m.delay / min_delay;
        const double ne = m.readEnergy / min_energy;
        const double na = m.area / min_area;
        switch (objective) {
          case SramObjective::kDelay: return nd;
          case SramObjective::kPower: return ne;
          case SramObjective::kDelayArea: return nd + 0.5 * na;
          case SramObjective::kBalanced: return nd + ne + 0.5 * na;
        }
        return nd;
    };

    size_t best = 0;
    for (size_t i = 1; i < metrics.size(); ++i) {
        if (score(metrics[i]) < score(metrics[best]))
            best = i;
    }
    return metrics[best];
}

SramMetrics
cacheArrayMetrics(size_t capacity_bytes, size_t data_bits,
                  size_t check_bits, size_t interleave, size_t banks,
                  SramObjective objective, const TechParams &tech)
{
    assert(capacity_bytes * 8 % (data_bits * banks) == 0);
    const size_t words_per_bank = capacity_bytes * 8 / data_bits / banks;
    SramModel model(words_per_bank, data_bits + check_bits, interleave,
                    tech);
    SramMetrics m = model.optimize(objective);
    // Area scales with bank count; delay and per-access energy are
    // those of the single activated bank.
    m.area *= double(banks);
    return m;
}

} // namespace tdc
