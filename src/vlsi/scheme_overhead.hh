/**
 * @file
 * Composite area / latency / power model of complete cache protection
 * schemes: conventional (ECC + physical interleaving), 2D coding, and
 * the write-through duplication alternative. Feeds Figures 1(c) and 7.
 */

#ifndef TDC_VLSI_SCHEME_OVERHEAD_HH
#define TDC_VLSI_SCHEME_OVERHEAD_HH

#include <string>

#include "ecc/cost_model.hh"
#include "vlsi/sram_model.hh"

namespace tdc
{

/** Kind of protection scheme being modelled. */
enum class SchemeStyle
{
    /** Per-word horizontal code + physical interleaving only. */
    kConventional,
    /** 2D: horizontal code + interleave + vertical parity rows. */
    kTwoDim,
    /**
     * EDC-only L1 with write-through duplication into L2: cheap array
     * but every store is duplicated in the next level (Figure 7(a)
     * right-most bar).
     */
    kWriteThrough,
};

/** Full description of a protection scheme applied to one cache. */
struct SchemeSpec
{
    SchemeStyle style = SchemeStyle::kConventional;
    CodeKind horizontal = CodeKind::kSecDed;
    size_t interleave = 2;
    /** Vertical parity rows per bank (2D only). */
    size_t verticalRows = 32;
    /**
     * Data rows per recovery bank for the vertical storage fraction.
     * 0 (default) derives it from the subarray height the SRAM
     * optimizer picks — the paper adds "32 parity rows per cache
     * bank", so the fraction depends on the real bank organization,
     * not on the illustrative 256-row array of Figure 3.
     */
    size_t dataRowsPerBank = 0;

    // Display naming lives in the scheme layer (ProtectionScheme::
    // name(), single-sourced from codeKindName) — this struct is the
    // pure cost description.

    static SchemeSpec conventional(CodeKind kind, size_t interleave);
    static SchemeSpec twoDim(CodeKind horizontal, size_t interleave,
                             size_t vertical_rows = 32,
                             size_t data_rows = 0);
    static SchemeSpec writeThrough(CodeKind kind, size_t interleave);
};

/** The cache geometry a scheme is evaluated on. */
struct CacheGeometry
{
    size_t capacityBytes = 64 * 1024;
    size_t wordBits = 64;
    size_t banks = 1;
    /** Fraction of accesses that are writes (for write-through and
     *  read-before-write power accounting). */
    double writeFraction = 0.25;
    /** Energy multiplier of a duplicate write into the next cache
     *  level, relative to one read of *this* cache (write-through
     *  only; L2 accesses are far more expensive than L1). */
    double nextLevelWriteCost = 4.0;

    /** 64 kB L1 geometry used by the paper's Figure 7(a). */
    static CacheGeometry l1();
    /** 4 MB, 8-bank L2 geometry of Figure 7(b). */
    static CacheGeometry l2();
};

/** Absolute overhead figures of one scheme on one geometry. */
struct SchemeOverhead
{
    /** Check-bit (+ vertical row) storage, fraction of data bits. */
    double codeAreaFraction = 0.0;
    /** Coding latency in logic levels on the read path. */
    double codingLatencyLevels = 0.0;
    /**
     * Dynamic power per *demand* access: array read energy + coding
     * energy, times the access multiplier of the scheme (1.2 for 2D's
     * read-before-write traffic, 1 + writeFraction * cost for
     * write-through duplication).
     */
    double dynamicEnergy = 0.0;

    /** Array energy excluding scheme multipliers (for reporting). */
    double baseArrayEnergy = 0.0;
};

/** Evaluate @p spec on @p geom under @p objective. */
SchemeOverhead evaluateScheme(const SchemeSpec &spec,
                              const CacheGeometry &geom,
                              SramObjective objective =
                                  SramObjective::kBalanced,
                              const TechParams &tech = defaultTech());

/**
 * Overheads of @p spec normalized to a reference scheme (the paper
 * normalizes Figure 7 to SECDED + 2-way interleaving).
 */
struct NormalizedOverhead
{
    double area = 1.0;
    double latency = 1.0;
    double power = 1.0;
};

NormalizedOverhead normalizeScheme(const SchemeSpec &spec,
                                   const SchemeSpec &reference,
                                   const CacheGeometry &geom,
                                   SramObjective objective =
                                       SramObjective::kBalanced,
                                   const TechParams &tech = defaultTech());

} // namespace tdc

#endif // TDC_VLSI_SCHEME_OVERHEAD_HH
