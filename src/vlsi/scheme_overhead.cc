#include "vlsi/scheme_overhead.hh"

#include <cassert>

namespace tdc
{

SchemeSpec
SchemeSpec::conventional(CodeKind kind, size_t interleave)
{
    SchemeSpec s;
    s.style = SchemeStyle::kConventional;
    s.horizontal = kind;
    s.interleave = interleave;
    return s;
}

SchemeSpec
SchemeSpec::twoDim(CodeKind horizontal, size_t interleave,
                   size_t vertical_rows, size_t data_rows)
{
    SchemeSpec s;
    s.style = SchemeStyle::kTwoDim;
    s.horizontal = horizontal;
    s.interleave = interleave;
    s.verticalRows = vertical_rows;
    s.dataRowsPerBank = data_rows;
    return s;
}

SchemeSpec
SchemeSpec::writeThrough(CodeKind kind, size_t interleave)
{
    SchemeSpec s;
    s.style = SchemeStyle::kWriteThrough;
    s.horizontal = kind;
    s.interleave = interleave;
    return s;
}

CacheGeometry
CacheGeometry::l1()
{
    CacheGeometry g;
    g.capacityBytes = 64 * 1024;
    g.wordBits = 64;
    g.banks = 1;
    g.writeFraction = 0.30; // stores/total in an L1 D-cache
    g.nextLevelWriteCost = 4.0;
    return g;
}

CacheGeometry
CacheGeometry::l2()
{
    CacheGeometry g;
    g.capacityBytes = 4 * 1024 * 1024;
    g.wordBits = 256;
    g.banks = 8;
    g.writeFraction = 0.45; // fills + write-backs dominate L2 traffic
    g.nextLevelWriteCost = 6.0; // off-chip
    return g;
}

SchemeOverhead
evaluateScheme(const SchemeSpec &spec, const CacheGeometry &geom,
               SramObjective objective, const TechParams &tech)
{
    SchemeOverhead out;

    const CodingCost coding = codingCost(spec.horizontal, geom.wordBits);

    const SramMetrics array = cacheArrayMetrics(
        geom.capacityBytes, geom.wordBits, coding.checkBits,
        spec.interleave, geom.banks, objective, tech);

    // --- Code storage -----------------------------------------------
    out.codeAreaFraction = coding.storageOverhead;
    if (spec.style == SchemeStyle::kTwoDim) {
        const size_t bank_rows =
            spec.dataRowsPerBank != 0
                ? spec.dataRowsPerBank
                : array.org.subarrayRows * array.org.numSubarrays;
        out.codeAreaFraction +=
            double(spec.verticalRows) / double(bank_rows);
    }

    // --- Coding latency ---------------------------------------------
    // Conventional ECC corrects in line on the read path, so its
    // latency includes the correction stage. 2D coding and
    // write-through EDC only *detect* on reads; correction is out of
    // band (the whole point of decoupling detection from correction).
    out.codingLatencyLevels = double(coding.detectLevels);
    if (spec.style == SchemeStyle::kConventional &&
        makeCode(spec.horizontal, geom.wordBits)->correctCapability() > 0) {
        out.codingLatencyLevels += double(coding.correctLevels);
    }

    // --- Dynamic energy ---------------------------------------------
    out.baseArrayEnergy = array.readEnergy;

    const double coding_energy =
        tech.ePerGate * double(coding.detectGates);
    double per_access = array.readEnergy + coding_energy;

    double access_multiplier = 1.0;
    switch (spec.style) {
      case SchemeStyle::kConventional:
        break;
      case SchemeStyle::kTwoDim:
        // Read-before-write converts every write into read+write and
        // adds the (small, register-like) vertical row update. The
        // paper measures ~20% more accesses (Figure 6); we charge the
        // measured write fraction directly.
        access_multiplier = 1.0 + geom.writeFraction;
        break;
      case SchemeStyle::kWriteThrough:
        // Every write is duplicated into the next level at a much
        // higher per-access energy.
        access_multiplier =
            1.0 + geom.writeFraction * geom.nextLevelWriteCost;
        break;
    }

    out.dynamicEnergy = per_access * access_multiplier;
    return out;
}

NormalizedOverhead
normalizeScheme(const SchemeSpec &spec, const SchemeSpec &reference,
                const CacheGeometry &geom, SramObjective objective,
                const TechParams &tech)
{
    const SchemeOverhead x = evaluateScheme(spec, geom, objective, tech);
    const SchemeOverhead ref =
        evaluateScheme(reference, geom, objective, tech);
    NormalizedOverhead n;
    n.area = x.codeAreaFraction / ref.codeAreaFraction;
    n.latency = x.codingLatencyLevels / ref.codingLatencyLevels;
    n.power = x.dynamicEnergy / ref.dynamicEnergy;
    return n;
}

} // namespace tdc
