/**
 * @file
 * Normalized technology parameters for the analytical SRAM model.
 *
 * The paper uses Cacti 4.0 at 70 nm and reports *relative* overheads
 * (normalized energy, % area). This model therefore works in
 * normalized units — one SRAM cell of area, one unit of gate
 * capacitance — chosen so that first-order RC scaling matches the
 * published Cacti behaviour: bitline energy dominates and grows with
 * the number of columns swung per access, wordline delay grows with
 * row width, and sense-amp/decoder overheads grow with partitioning.
 */

#ifndef TDC_VLSI_TECH_HH
#define TDC_VLSI_TECH_HH

namespace tdc
{

/** Normalized 70 nm-flavoured constants. Units: cell pitches, cell
 *  capacitances, and gate energies relative to one SRAM cell. */
struct TechParams
{
    // --- Delay coefficients (arbitrary time units) -----------------
    double decodeBase = 2.0;   ///< decoder intrinsic delay
    double decodePerBit = 0.8; ///< per address bit decoded
    double wordlinePerCol = 0.004; ///< wordline RC per column driven
    double bitlinePerRow = 0.010;  ///< bitline RC per row of height
    double senseAmp = 1.5;         ///< sense amplifier resolve
    double muxPerLevel = 0.5;      ///< column mux per 2:1 level
    double routePerSqrtBit = 0.0006; ///< global H-tree per sqrt(bit)
    double routePerSubarrayLevel = 0.35; ///< H-tree depth per log2(N_sub)

    // --- Energy coefficients (arbitrary energy units) --------------
    double eDecodePerBit = 0.4;   ///< decoder energy per address bit
    double eWordlinePerCol = 0.010; ///< wordline swing per column
    /** Bitline partial-swing energy per column per row-of-height:
     *  every column of the activated subarray swings its bitline. */
    double eBitlinePerColRow = 0.00022;
    double eSenseAmpPerCol = 0.012; ///< per column sensed
    double ePerOutputBit = 0.02;    ///< data output drive per bit
    double eRoutePerSqrtBit = 0.0020; ///< H-tree energy
    double ePerSubarray = 0.08; ///< predecode + H-tree switching per subarray
    /** Energy of one 2-input logic gate evaluation (XOR/OR in the
     *  coding logic), relative to the array units above. */
    double ePerGate = 0.010;

    // --- Area coefficients (units of one SRAM cell) ----------------
    double cellArea = 1.0;
    double senseAmpAreaPerCol = 6.0; ///< per column per segment
    double decodeAreaPerRow = 0.6;   ///< row decoder strip
    double areaWireOverhead = 0.12;  ///< global wiring fraction
    double gateArea = 2.0;           ///< one coding logic gate
};

/** The default technology point used everywhere. */
inline const TechParams &
defaultTech()
{
    static const TechParams tech;
    return tech;
}

} // namespace tdc

#endif // TDC_VLSI_TECH_HH
