/**
 * @file
 * In-DRAM ECC (IECC): a tiny extended-Hamming SEC-DED code each chip
 * applies to its own symbolBits-wide burst before the rank-level
 * symbol code sees it. A single in-chip bit flip is corrected inside
 * the device; a double flip is detected and reported, which the
 * rank-level SSC-DSD decoder consumes as a symbol *erasure* — the
 * IECC + chipkill composition the scheme family models.
 *
 * Check bits live in the chip's spare ECC columns, modeled as
 * fault-free side storage (the usual idealization: in-device ECC
 * arrays are smaller and independently protected).
 */

#ifndef TDC_DRAM_CHIP_IECC_HH
#define TDC_DRAM_CHIP_IECC_HH

#include <cstdint>

#include "ecc/code.hh"

namespace tdc
{

/** Extended-Hamming SEC-DED over one data_bits-wide chip burst. */
class ChipSecded
{
  public:
    /** @param data_bits burst width, 2..16 (x4/x8 devices use 4/8). */
    explicit ChipSecded(unsigned data_bits);

    unsigned dataBits() const { return data; }

    /** Hamming check bits + the overall parity bit. */
    unsigned checkBits() const { return hamming + 1; }

    /** Check word (checkBits() wide) for burst @p sym. */
    uint32_t encode(uint32_t sym) const;

    /**
     * Decode @p sym against @p check: corrects a single bit error in
     * place (kCorrected), flags a double as kDetectedUncorrectable.
     */
    DecodeStatus decode(uint32_t &sym, uint32_t check) const;

  private:
    /** Rebuild the positional codeword (bit i = position i). */
    uint32_t placeBits(uint32_t sym, uint32_t check) const;

    unsigned data;
    unsigned hamming;        ///< h: 2^h >= data + h + 1
    unsigned codeBits;       ///< data + hamming, positions 1..codeBits
    uint32_t dataPos[16];    ///< position of data bit j
};

} // namespace tdc

#endif // TDC_DRAM_CHIP_IECC_HH
