#include "dram/dram_array.hh"

#include <map>
#include <stdexcept>

namespace tdc
{

DramArray::DramArray(const DramGeometry &g)
    : geom(g), array(g.rows(), g.cols())
{
    if (g.symbolBits == 0 || g.symbolBits > 31)
        throw std::invalid_argument("DramArray: bad symbol width");
    if (g.chips == 0 || g.banks == 0 || g.rowsPerBank == 0)
        throw std::invalid_argument("DramArray: empty geometry");
    array.setSymbolBits(g.symbolBits);
}

uint32_t
DramArray::readSymbol(size_t row, size_t chip) const
{
    const size_t lo = chip * geom.symbolBits;
    uint32_t sym = 0;
    for (size_t j = 0; j < geom.symbolBits; ++j)
        sym |= uint32_t(array.readBit(row, lo + j)) << j;
    return sym;
}

void
DramArray::writeSymbol(size_t row, size_t chip, uint32_t value)
{
    const size_t lo = chip * geom.symbolBits;
    for (size_t j = 0; j < geom.symbolBits; ++j)
        array.writeBit(row, lo + j, (value >> j) & 1u);
}

std::vector<uint32_t>
DramArray::readCodeword(size_t row) const
{
    std::vector<uint32_t> word(geom.chips);
    for (size_t i = 0; i < geom.chips; ++i)
        word[i] = readSymbol(row, i);
    return word;
}

void
DramArray::writeCodeword(size_t row, const std::vector<uint32_t> &word)
{
    for (size_t i = 0; i < geom.chips && i < word.size(); ++i)
        writeSymbol(row, i, word[i]);
}

namespace
{

/** Sorted (unit, count) pairs from a unit-indexed counter map. */
std::vector<std::pair<size_t, size_t>>
toPairs(const std::map<size_t, size_t> &counts)
{
    return {counts.begin(), counts.end()};
}

} // namespace

std::vector<std::pair<size_t, size_t>>
DramArray::stuckChips() const
{
    std::map<size_t, size_t> counts;
    for (const auto &[row, count] : array.stuckRows()) {
        (void)count;
        for (size_t c = 0; c < array.cols(); ++c)
            if (array.isStuck(row, c))
                ++counts[chipOfCol(c)];
    }
    return toPairs(counts);
}

std::vector<std::pair<size_t, size_t>>
DramArray::stuckColumns() const
{
    std::map<size_t, size_t> counts;
    for (const auto &[row, count] : array.stuckRows()) {
        (void)count;
        for (size_t c = 0; c < array.cols(); ++c)
            if (array.isStuck(row, c))
                ++counts[c];
    }
    return toPairs(counts);
}

std::vector<std::pair<size_t, size_t>>
DramArray::stuckBanks() const
{
    std::map<size_t, size_t> counts;
    for (const auto &[row, count] : array.stuckRows())
        counts[bankOfRow(row)] += count;
    return toPairs(counts);
}

void
DramArray::repairChip(size_t chip)
{
    const size_t lo = chip * geom.symbolBits;
    for (size_t r = 0; r < array.rows(); ++r)
        for (size_t j = 0; j < geom.symbolBits; ++j)
            if (array.isStuck(r, lo + j))
                array.clearFault(r, lo + j);
}

void
DramArray::repairColumn(size_t col)
{
    for (size_t r = 0; r < array.rows(); ++r)
        if (array.isStuck(r, col))
            array.clearFault(r, col);
}

} // namespace tdc
