/**
 * @file
 * DRAM-shaped array geometry: a rank of chips x banks x rows, where
 * each chip contributes one symbolBits-wide burst (x4/x8 device width)
 * per row. One array row is one rank-level symbol codeword; the cell
 * substrate is the same MemoryArray every fault and scrub path already
 * understands, annotated with the symbol width so symbol-granular
 * fault shapes (chip kill) land on whole-device column groups.
 */

#ifndef TDC_DRAM_DRAM_ARRAY_HH
#define TDC_DRAM_DRAM_ARRAY_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "array/memory_array.hh"

namespace tdc
{

/** Geometry of one DRAM rank as seen by the rank-level symbol code. */
struct DramGeometry
{
    /** Device data width: bits per chip per beat (x4 or x8). */
    size_t symbolBits = 4;

    /** Chips in the rank, data + check devices. */
    size_t chips = 15;

    /** Independent banks per chip (stacked row blocks here). */
    size_t banks = 2;

    size_t rowsPerBank = 32;

    size_t rows() const { return banks * rowsPerBank; }
    size_t cols() const { return chips * symbolBits; }
};

/**
 * One DRAM rank: a MemoryArray of geometry().rows() x geometry().cols()
 * cells, where chip i owns columns [i*symbolBits, (i+1)*symbolBits)
 * and bank b owns rows [b*rowsPerBank, (b+1)*rowsPerBank). Adds
 * symbol-granular access and per-chip / per-bank / per-column hard-
 * fault summaries for chipkill repair policies.
 */
class DramArray
{
  public:
    explicit DramArray(const DramGeometry &g);

    const DramGeometry &geometry() const { return geom; }
    MemoryArray &cells() { return array; }
    const MemoryArray &cells() const { return array; }

    size_t chipOfCol(size_t c) const { return c / geom.symbolBits; }
    size_t bankOfRow(size_t r) const { return r / geom.rowsPerBank; }

    /** Chip @p chip's symbol in row @p row, bit j = column chip*b+j. */
    uint32_t readSymbol(size_t row, size_t chip) const;

    void writeSymbol(size_t row, size_t chip, uint32_t value);

    /** All chips of @p row as a codeword (index = chip). */
    std::vector<uint32_t> readCodeword(size_t row) const;

    void writeCodeword(size_t row, const std::vector<uint32_t> &word);

    /**
     * Chips currently holding stuck-at cells, as (chip, stuck-cell
     * count) pairs sorted by chip — the repair-unit view a spare-chip
     * budget steers by.
     */
    std::vector<std::pair<size_t, size_t>> stuckChips() const;

    /** Per-column twin of stuckChips() for spare-column repair. */
    std::vector<std::pair<size_t, size_t>> stuckColumns() const;

    /** Per-bank stuck-cell summary (bank, count), sorted by bank. */
    std::vector<std::pair<size_t, size_t>> stuckBanks() const;

    /** Drop every stuck-at fault in chip @p chip's column group. */
    void repairChip(size_t chip);

    /** Drop every stuck-at fault in column @p col. */
    void repairColumn(size_t col);

  private:
    DramGeometry geom;
    MemoryArray array;
};

} // namespace tdc

#endif // TDC_DRAM_DRAM_ARRAY_HH
