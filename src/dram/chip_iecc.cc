#include "dram/chip_iecc.hh"

#include <stdexcept>

namespace tdc
{

namespace
{

bool
isPowerOfTwo(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
parityOf(uint32_t v)
{
    unsigned p = 0;
    for (; v; v &= v - 1)
        p ^= 1u;
    return p;
}

} // namespace

ChipSecded::ChipSecded(unsigned data_bits) : data(data_bits)
{
    if (data_bits < 2 || data_bits > 16)
        throw std::invalid_argument("ChipSecded: data width out of range");
    hamming = 2;
    while ((1u << hamming) < data + hamming + 1)
        ++hamming;
    codeBits = data + hamming;
    // Data bits fill the non-power-of-two positions 3, 5, 6, 7, ...
    unsigned j = 0;
    for (uint32_t pos = 1; pos <= codeBits && j < data; ++pos)
        if (!isPowerOfTwo(pos))
            dataPos[j++] = pos;
}

uint32_t
ChipSecded::placeBits(uint32_t sym, uint32_t check) const
{
    uint32_t cw = 0;
    for (unsigned j = 0; j < data; ++j)
        cw |= ((sym >> j) & 1u) << dataPos[j];
    for (unsigned k = 0; k < hamming; ++k)
        cw |= ((check >> k) & 1u) << (1u << k);
    return cw;
}

uint32_t
ChipSecded::encode(uint32_t sym) const
{
    // Hamming bit k covers every position with bit k set.
    uint32_t check = 0;
    for (unsigned k = 0; k < hamming; ++k) {
        unsigned bit = 0;
        for (unsigned j = 0; j < data; ++j)
            if (dataPos[j] & (1u << k))
                bit ^= (sym >> j) & 1u;
        check |= uint32_t(bit) << k;
    }
    // Overall parity over every stored bit (data + hamming).
    const unsigned overall = parityOf(placeBits(sym, check) >> 1);
    return check | (uint32_t(overall) << hamming);
}

DecodeStatus
ChipSecded::decode(uint32_t &sym, uint32_t check) const
{
    const uint32_t cw = placeBits(sym, check);
    uint32_t syndrome = 0;
    for (uint32_t pos = 1; pos <= codeBits; ++pos)
        if ((cw >> pos) & 1u)
            syndrome ^= pos;
    const unsigned overall =
        parityOf(cw >> 1) ^ ((check >> hamming) & 1u);

    if (syndrome == 0 && overall == 0)
        return DecodeStatus::kClean;
    if (overall == 1) {
        // Single error: in the overall parity bit itself (syndrome 0),
        // a hamming bit (power-of-two position), or a data bit.
        if (syndrome == 0 || isPowerOfTwo(syndrome))
            return DecodeStatus::kCorrected;
        if (syndrome <= codeBits) {
            for (unsigned j = 0; j < data; ++j) {
                if (dataPos[j] == syndrome) {
                    sym ^= 1u << j;
                    return DecodeStatus::kCorrected;
                }
            }
        }
        // Phantom position of the shortened code: not a single error.
        return DecodeStatus::kDetectedUncorrectable;
    }
    return DecodeStatus::kDetectedUncorrectable;
}

} // namespace tdc
