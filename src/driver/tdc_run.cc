#include "driver/tdc_run.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <stdexcept>

#include "common/cpu_features.hh"
#include "common/parallel.hh"
#include "cpu/ipc_campaign.hh"
#include "driver/optimize.hh"
#include "scheme/figure_campaigns.hh"
#include "scheme/scheme.hh"
#include "service/cache_service.hh"
#include "service/request_gen.hh"

namespace tdc
{

// --- RunContext -----------------------------------------------------

void
RunContext::prose(const std::string &text)
{
    if (format_ == RunFormat::kTable)
        text_ += text;
}

void
RunContext::prosef(const char *fmt, ...)
{
    if (format_ != RunFormat::kTable)
        return;
    va_list args;
    va_start(args, fmt);
    char stack_buf[1024];
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt,
                                      args);
    if (needed >= 0 && size_t(needed) < sizeof(stack_buf)) {
        text_ += stack_buf;
    } else if (needed >= 0) {
        std::vector<char> big(size_t(needed) + 1);
        std::vsnprintf(big.data(), big.size(), fmt, copy);
        text_ += big.data();
    }
    va_end(copy);
    va_end(args);
}

void
RunContext::table(const CampaignResult &result)
{
    if (format_ == RunFormat::kTable)
        text_ += result.render();
    else
        tables_.push_back({result.title, result.headers, result.rows});
}

void
RunContext::table(const Table &t, const std::string &title)
{
    if (format_ == RunFormat::kTable)
        text_ += t.render();
    else
        tables_.push_back({title, t.headers(), t.data()});
}

namespace
{

std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace

std::string
RunContext::str() const
{
    if (format_ == RunFormat::kTable) {
        if (!cacheStats_)
            return text_;
        return text_ + "cache: " + cacheStats_->describe() + "\n";
    }

    std::string out;
    if (format_ == RunFormat::kCsv) {
        for (const Emitted &t : tables_) {
            if (!out.empty())
                out += "\n";
            if (!t.title.empty())
                out += "# " + t.title + "\n";
            for (size_t c = 0; c < t.headers.size(); ++c)
                out += (c ? "," : "") + csvCell(t.headers[c]);
            out += "\n";
            for (const auto &row : t.rows) {
                for (size_t c = 0; c < row.size(); ++c)
                    out += (c ? "," : "") + csvCell(row[c]);
                out += "\n";
            }
        }
        if (cacheStats_)
            out += "# cache: " + cacheStats_->describe() + "\n";
        return out;
    }

    out = "{\n";
    if (cacheStats_) {
        const CacheStats &s = *cacheStats_;
        out += "  \"cache\": {\"memory_hits\": " +
               std::to_string(s.memoryHits) +
               ", \"disk_hits\": " + std::to_string(s.diskHits) +
               ", \"misses\": " + std::to_string(s.misses) +
               ", \"stored\": " + std::to_string(s.stored) +
               ", \"corrupt\": " + std::to_string(s.corrupt) + "},\n";
    }
    out += "  \"tables\": [\n";
    for (size_t i = 0; i < tables_.size(); ++i) {
        const Emitted &t = tables_[i];
        out += "    {\n      \"title\": " + jsonString(t.title) +
               ",\n      \"headers\": [";
        for (size_t c = 0; c < t.headers.size(); ++c)
            out += (c ? ", " : "") + jsonString(t.headers[c]);
        out += "],\n      \"rows\": [\n";
        for (size_t r = 0; r < t.rows.size(); ++r) {
            out += "        [";
            for (size_t c = 0; c < t.rows[r].size(); ++c)
                out += (c ? ", " : "") + jsonString(t.rows[r][c]);
            out += r + 1 < t.rows.size() ? "],\n" : "]\n";
        }
        out += i + 1 < tables_.size() ? "      ]\n    },\n"
                                      : "      ]\n    }\n";
    }
    out += "  ]\n}\n";
    return out;
}

// --- Figure registry ------------------------------------------------

namespace
{

std::vector<FigureDef> &
figureRegistry()
{
    static std::vector<FigureDef> figures = detail::builtinFigures();
    return figures;
}

} // namespace

void
registerFigure(FigureDef figure)
{
    auto &figures = figureRegistry();
    for (FigureDef &existing : figures) {
        if (existing.key == figure.key) {
            existing = std::move(figure);
            return;
        }
    }
    figures.push_back(std::move(figure));
}

std::vector<FigureDef>
figureList()
{
    return figureRegistry();
}

// --- CLI ------------------------------------------------------------

namespace
{

const char *const kUsage =
    "tdc_run - unified driver for every figure and protection scenario\n"
    "\n"
    "usage:\n"
    "  tdc_run --figure <key> [...]          run registered figure(s)\n"
    "  tdc_run --scheme <spec> [...] --fault <spec> [...]\n"
    "          [--events N] [--seed N]       custom injection grid\n"
    "  tdc_run --machine fat|lean --protection <spec> [...]\n"
    "          [--workload <name> ...] [--cycles N] [--seed N]\n"
    "                                        custom IPC-loss grid\n"
    "  tdc_run --serve <request-spec> [--scheme 2d:...] [--fault <spec>]\n"
    "          [--shards N] [--banks N] [--ports N] [--steal-window N]\n"
    "          [--scrub-interval N] [--fault-interval N]\n"
    "          [--record-trace <path>] [--seed N]\n"
    "                                        concurrent cache service\n"
    "  tdc_run --optimize <pattern> [...] [--fault <spec> ...]\n"
    "          [--trials N] [--objective storage|area|latency|power]\n"
    "                                        design-space Pareto search\n"
    "  tdc_run --lifetime [--scheme <spec> ...] [--fit-mix <spec> ...]\n"
    "          [--scrub-interval H ...] [--spares N ...] [--mission H]\n"
    "          [--trials N] [--seed N]       custom MTTF/FIT grid\n"
    "  tdc_run --list-figures | --list-schemes | --list-faults\n"
    "  tdc_run --cpu                         report CPU features and the\n"
    "                                        selected SIMD codec backend\n"
    "\n"
    "options:\n"
    "  --format table|csv|json   output format (default: table)\n"
    "  --threads N               worker-pool size (default: TDC_THREADS)\n"
    "  --events N                Monte-Carlo events per cell, accepts\n"
    "                            scientific notation (default: 100)\n"
    "  --trials N                alias for --events (autotuner axis)\n"
    "  --cycles N                simulated cycles per IPC run\n"
    "                            (default: 150000)\n"
    "  --seed N                  base campaign seed (default: 12345)\n"
    "  --cache-dir <path>        enable the on-disk result cache at\n"
    "                            <path> (default: $TDC_CACHE_DIR)\n"
    "  --cache-stats             append this run's result-cache\n"
    "                            hit/miss/store counters to the output\n"
    "\n"
    "optimize options:\n"
    "  --optimize <pattern>      scheme-spec pattern; brace groups\n"
    "                            {a,b,c}, {lo..hi}, {lo..hi..+K},\n"
    "                            {lo..hi..xK} expand to a design grid,\n"
    "                            e.g. \"2d:edc{8,16,32}/i{1..8..x2}+vp32\"\n"
    "  --objective <axis>        overhead axis to minimize against\n"
    "                            coverage: storage (default), area,\n"
    "                            latency, power\n"
    "\n"
    "serve options:\n"
    "  --shards N                concurrent service shards (default: 4)\n"
    "  --banks N                 cache banks per shard (default: 4)\n"
    "  --ports N                 port slots per cycle (default: 1)\n"
    "  --steal-window N          RBW port-steal window, 0 disables\n"
    "                            (default: 8)\n"
    "  --scrub-interval N        ticks between background scrub steps,\n"
    "                            0 disables (default: 0)\n"
    "  --fault-interval N        ticks between injected fault events,\n"
    "                            0 disables (default: 0)\n"
    "  --record-trace <path>     save the served stream as a replayable\n"
    "                            binary trace\n"
    "\n"
    "lifetime options:\n"
    "  --fit-mix <spec>          FIT-rate mix: jaguar, transient,\n"
    "                            permanent, single, optionally scaled\n"
    "                            (\"jaguar*10000\"); repeatable\n"
    "                            (default: jaguar*10000)\n"
    "  --scrub-interval H        hours between scrubs, 0 scrubs after\n"
    "                            every event; repeatable (default: 168)\n"
    "  --spares N                spare-row repair budget; repeatable\n"
    "                            (default: 0)\n"
    "  --mission H               mission length in hours\n"
    "                            (default: 43800, five years)\n"
    "\n"
    "scheme specs (see --list-schemes):   conv:secded/i4,\n"
    "  2d:edc8/i4+vp32, wt:edc8/i4, prod:256x256, dram:chipkill/x4,\n"
    "  dram:iecc+chipkill/x8, ...\n"
    "fault specs (see --list-faults):     single, 32x32, 16x16@0.5,\n"
    "  row:32, col:8, fullrow, fullcol, chip:any, hammer:4@0.5,\n"
    "  senseamp:8\n"
    "request specs (--serve):             uniform/n1e6/w30,\n"
    "  zipf90/n1e5, burst128/n1e5/g512, trace:<path>\n";

struct CliOptions
{
    RunFormat format = RunFormat::kTable;
    long threads = -1;
    std::vector<std::string> figures;
    std::vector<std::string> schemes;
    std::vector<std::string> faults;
    std::vector<std::string> protections;
    std::vector<std::string> workloads;
    std::vector<std::string> optimizePatterns;
    OptimizeObjective objective = OptimizeObjective::kStorage;
    std::string cacheDir;
    bool cacheStats = false;
    std::string machine = "fat";
    double events = 100.0;
    double cycles = 150000.0;
    uint64_t seed = 12345;
    bool serve = false;
    std::string serveSpec;
    std::string recordTrace;
    size_t shards = 4;
    size_t banks = 4;
    unsigned ports = 1;
    unsigned stealWindow = 8;
    // Raw --scrub-interval values; the meaning is mode-dependent
    // (ticks under --serve, hours under --lifetime), so parsing is
    // deferred to dispatch.
    std::vector<std::string> scrubIntervals;
    uint64_t faultInterval = 0;
    bool lifetime = false;
    std::vector<std::string> fitMixes;
    std::vector<std::string> spares;
    double missionHours = 5.0 * 8760.0;
    bool listFigures = false;
    bool listSchemes = false;
    bool listFaults = false;
    bool cpu = false;
    bool help = false;
};

[[noreturn]] void
usageError(const std::string &what)
{
    throw std::invalid_argument(what);
}

/** Parse a positive count that may use scientific notation ("1e5"). */
double
parseCount(const std::string &flag, const std::string &value, double max)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || v < 1.0 ||
        v > max)
        usageError(flag + " expects a count in [1, " +
                   std::to_string(size_t(max)) + "], got \"" + value +
                   "\"");
    return v;
}

/** Parse a plain non-negative integer (0 allowed — "disabled"). */
uint64_t
parseU64(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size())
        usageError(flag + " expects an unsigned integer, got \"" + value +
                   "\"");
    return v;
}

/** Parse a non-negative hour count (0 = scrub after every event). */
double
parseHours(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() ||
        !(v >= 0.0) || v > 1e9)
        usageError(flag + " expects hours in [0, 1e9], got \"" + value +
                   "\"");
    return v;
}

CliOptions
parseCli(const std::vector<std::string> &args)
{
    CliOptions opt;
    const auto value = [&](size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            usageError("flag " + args[i] + " expects a value");
        return args[++i];
    };
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--figure") {
            opt.figures.push_back(value(i));
        } else if (arg == "--scheme") {
            opt.schemes.push_back(value(i));
        } else if (arg == "--fault") {
            opt.faults.push_back(value(i));
        } else if (arg == "--protection") {
            opt.protections.push_back(value(i));
        } else if (arg == "--workload") {
            opt.workloads.push_back(value(i));
        } else if (arg == "--machine") {
            opt.machine = value(i);
            if (opt.machine != "fat" && opt.machine != "lean")
                usageError("--machine expects \"fat\" or \"lean\", got \"" +
                           opt.machine + "\"");
        } else if (arg == "--format") {
            const std::string &fmt = value(i);
            if (fmt == "table")
                opt.format = RunFormat::kTable;
            else if (fmt == "csv")
                opt.format = RunFormat::kCsv;
            else if (fmt == "json")
                opt.format = RunFormat::kJson;
            else
                usageError("--format expects table|csv|json, got \"" +
                           fmt + "\"");
        } else if (arg == "--threads") {
            opt.threads = long(parseCount(arg, value(i), 256));
        } else if (arg == "--events" || arg == "--trials") {
            opt.events = parseCount(arg, value(i), 1e8);
        } else if (arg == "--optimize") {
            opt.optimizePatterns.push_back(value(i));
        } else if (arg == "--objective") {
            opt.objective = parseObjective(value(i));
        } else if (arg == "--cache-dir") {
            opt.cacheDir = value(i);
            if (opt.cacheDir.empty())
                usageError("--cache-dir expects a directory path");
        } else if (arg == "--cache-stats") {
            opt.cacheStats = true;
        } else if (arg == "--cycles") {
            opt.cycles = parseCount(arg, value(i), 1e9);
        } else if (arg == "--seed") {
            // Full-precision uint64 (0 is a legitimate seed); the
            // scientific-notation count parser would round through
            // double.
            const std::string &v = value(i);
            char *end = nullptr;
            opt.seed = std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || end != v.c_str() + v.size())
                usageError("--seed expects an unsigned integer, got \"" +
                           v + "\"");
        } else if (arg == "--serve") {
            opt.serve = true;
            opt.serveSpec = value(i);
        } else if (arg == "--record-trace") {
            opt.recordTrace = value(i);
        } else if (arg == "--shards") {
            opt.shards = size_t(parseCount(arg, value(i), 4096));
        } else if (arg == "--banks") {
            opt.banks = size_t(parseCount(arg, value(i), 4096));
        } else if (arg == "--ports") {
            opt.ports = unsigned(parseCount(arg, value(i), 64));
        } else if (arg == "--steal-window") {
            opt.stealWindow = unsigned(parseU64(arg, value(i)));
        } else if (arg == "--scrub-interval") {
            opt.scrubIntervals.push_back(value(i));
        } else if (arg == "--lifetime") {
            opt.lifetime = true;
        } else if (arg == "--fit-mix") {
            opt.fitMixes.push_back(value(i));
        } else if (arg == "--spares") {
            opt.spares.push_back(value(i));
        } else if (arg == "--mission") {
            opt.missionHours = parseCount(arg, value(i), 1e9);
        } else if (arg == "--fault-interval") {
            opt.faultInterval = parseU64(arg, value(i));
        } else if (arg == "--list-figures") {
            opt.listFigures = true;
        } else if (arg == "--list-schemes") {
            opt.listSchemes = true;
        } else if (arg == "--list-faults") {
            opt.listFaults = true;
        } else if (arg == "--cpu") {
            opt.cpu = true;
        } else if (arg == "--help" || arg == "-h") {
            opt.help = true;
        } else {
            usageError("unknown flag \"" + arg + "\" (see --help)");
        }
    }
    return opt;
}

std::string
listSchemesText()
{
    std::string out = "Registered scheme families:\n";
    for (const SchemeFamily &family : schemeFamilies()) {
        out += "\n  " + family.grammar + "\n      " + family.description +
               "\n      examples:";
        for (const std::string &example : family.examples)
            out += " " + example;
        out += "\n";
    }
    out += "\ncodes: ";
    for (size_t i = 0; i < std::size(kAllCodeKinds); ++i)
        out += (i ? ", " : "") + codeKindName(kAllCodeKinds[i]);
    out += "\n";
    return out;
}

std::string
listFaultsText()
{
    return "Fault-model specs (--fault):\n"
           "  single          one-cell upset at a random position\n"
           "  <W>x<H>         solid WxH cluster, e.g. 32x32\n"
           "  <W>x<H>@<D>     cluster with per-cell flip probability D\n"
           "  row:<W>         W-bit burst along one row\n"
           "  col:<H>         H-bit burst along one column\n"
           "  fullrow         an entire physical row fails\n"
           "  fullcol         an entire physical column fails\n"
           "  chip:<I>        chip I fails (whole symbol column group;\n"
           "                  chip:any draws a random chip)\n"
           "  hammer:<W>[@D]  row-hammer band of W victim rows, per-cell\n"
           "                  flip probability D (default solid)\n"
           "  senseamp:<H>    sense-amp failure: 2 adjacent columns\n"
           "                  over H rows\n";
}

std::string
listFiguresText()
{
    std::string out = "Registered figures (--figure):\n";
    for (const FigureDef &figure : figureList())
        out += "  " + figure.key +
               std::string(figure.key.size() < 14
                               ? 14 - figure.key.size()
                               : 1,
                           ' ') +
               figure.description + "\n";
    return out;
}

} // namespace

int
tdcRun(const std::vector<std::string> &args, std::string &out,
       std::string &err)
{
    CliOptions opt;
    try {
        opt = parseCli(args);
    } catch (const std::invalid_argument &e) {
        err += std::string("tdc_run: ") + e.what() + "\n";
        return 2;
    }

    if (opt.help) {
        out += kUsage;
        return 0;
    }
    if (opt.listFigures || opt.listSchemes || opt.listFaults) {
        if (opt.listFigures)
            out += listFiguresText();
        if (opt.listSchemes)
            out += listSchemesText();
        if (opt.listFaults)
            out += listFaultsText();
        return 0;
    }
    if (opt.cpu) {
        // Machine report: probed ISA features plus the codec backend
        // the dispatch layer settled on (honors TDC_SIMD). Goes
        // through RunContext so --format csv/json work as everywhere
        // else.
        RunContext ctx(opt.format);
        const CpuFeatures &f = cpuFeatures();
        Table features({"feature", "present"});
        features.addRow({"bmi2", f.bmi2 ? "yes" : "no"});
        features.addRow({"avx2", f.avx2 ? "yes" : "no"});
        features.addRow({"gfni", f.gfni ? "yes" : "no"});
        features.addRow({"pclmulqdq", f.pclmul ? "yes" : "no"});
        features.addRow({"vpclmulqdq", f.vpclmul ? "yes" : "no"});
        ctx.table(features, "cpu features");
        const std::optional<SimdBackend> requested = requestedSimdBackend();
        Table backend({"dispatch", "backend"});
        backend.addRow({"best supported", simdBackendName(bestSimdBackend())});
        backend.addRow({"TDC_SIMD request",
                        requested ? simdBackendName(*requested) : "(auto)"});
        backend.addRow({"active", simdBackendName(activeSimdBackend())});
        ctx.table(backend, "simd codec backend");
        out += ctx.str();
        return 0;
    }

    if (opt.figures.empty() && opt.schemes.empty() &&
        opt.protections.empty() && opt.optimizePatterns.empty() &&
        !opt.serve && !opt.lifetime) {
        err += kUsage;
        return 2;
    }

    if (opt.threads > 0)
        setParallelThreads(unsigned(opt.threads));
    if (!opt.cacheDir.empty())
        resultCache().setDirectory(opt.cacheDir);
    if (opt.cacheStats) {
        // Per-run semantics: the counters describe this invocation,
        // not the process (tests drive tdcRun in-process repeatedly).
        resultCache().resetStats();
    }

    RunContext ctx(opt.format);
    if (opt.serve) {
        try {
            if (!opt.figures.empty() || !opt.protections.empty() ||
                opt.lifetime)
                usageError("--serve is exclusive with --figure, "
                           "--protection and --lifetime");
            if (opt.schemes.size() > 1)
                usageError("--serve accepts at most one --scheme");
            if (opt.faults.size() > 1)
                usageError("--serve accepts at most one --fault");
            if (opt.scrubIntervals.size() > 1)
                usageError("--serve accepts at most one --scrub-interval");

            ServiceConfig cfg;
            cfg.bank = parseTwoDimConfig(
                opt.schemes.empty() ? "2d:edc8/i4+vp32"
                                    : opt.schemes.front());
            cfg.shards = opt.shards;
            cfg.banksPerShard = opt.banks;
            cfg.ports = opt.ports;
            cfg.stealWindow = opt.stealWindow;
            cfg.scrubInterval =
                opt.scrubIntervals.empty()
                    ? 0
                    : parseU64("--scrub-interval",
                               opt.scrubIntervals.front());
            cfg.faultInterval = opt.faultInterval;
            cfg.seed = opt.seed;
            if (!opt.faults.empty())
                cfg.fault = parseFaultModel(opt.faults.front());

            const RequestStreamSpec stream =
                parseRequestSpec(opt.serveSpec);
            const std::vector<ServiceRequest> requests =
                buildRequests(stream, cfg.totalWords(), opt.seed);
            if (!opt.recordTrace.empty())
                writeTrace(opt.recordTrace, requests);

            const CacheService service(cfg);
            const ServiceReport report = service.serve(requests);

            ctx.prosef("serve %s: %zu requests, %zu shards x %zu banks "
                       "(%s), %llu ticks, %.1f req/ktick\n\n",
                       stream.spec().c_str(), requests.size(),
                       cfg.shards, cfg.banksPerShard,
                       cfg.bank.describe().c_str(),
                       (unsigned long long)report.ticks,
                       report.throughputPerKTick());
            ctx.table(serviceLatencyTable(report),
                      "service latency: " + stream.spec());
            ctx.table(serviceReliabilityTable(report),
                      "service reliability: " + stream.spec());
        } catch (const std::invalid_argument &e) {
            err += std::string("tdc_run: ") + e.what() + "\n";
            return 2;
        } catch (const std::exception &e) {
            err += std::string("tdc_run: ") + e.what() + "\n";
            return 1;
        }
        if (opt.cacheStats)
            ctx.cacheStats(resultCache().stats());
        out += ctx.str();
        return 0;
    }
    try {
        for (const std::string &key : opt.figures) {
            bool found = false;
            for (const FigureDef &figure : figureList()) {
                if (figure.key == key) {
                    figure.run(ctx);
                    found = true;
                    break;
                }
            }
            if (!found)
                usageError("unknown figure \"" + key +
                           "\" (see --list-figures)");
        }

        if (opt.lifetime) {
            if (!opt.faults.empty())
                usageError("--lifetime draws fault classes from "
                           "--fit-mix, not --fault");
            std::vector<std::string> schemes = opt.schemes;
            if (schemes.empty())
                schemes = {"conv:secded/i4/r64", "wt:edc8/i4/r64",
                           "2d:edc8/i4+vp32/r64", "prod:64x64"};
            std::vector<std::string> mixes = opt.fitMixes;
            if (mixes.empty())
                mixes.push_back("jaguar*10000");
            std::vector<double> scrubs;
            for (const std::string &s : opt.scrubIntervals)
                scrubs.push_back(parseHours("--scrub-interval", s));
            if (scrubs.empty())
                scrubs.push_back(24.0 * 7);
            std::vector<int> spares;
            for (const std::string &s : opt.spares) {
                const uint64_t v = parseU64("--spares", s);
                if (v > 4096)
                    usageError("--spares expects at most 4096, got \"" +
                               s + "\"");
                spares.push_back(int(v));
            }
            if (spares.empty())
                spares.push_back(0);
            ctx.table(customLifetimeCampaign(schemes, mixes, scrubs,
                                             spares, opt.missionHours,
                                             int(opt.events), opt.seed));
        } else if (!opt.fitMixes.empty() || !opt.spares.empty()) {
            usageError("--fit-mix and --spares require --lifetime");
        } else if (!opt.schemes.empty()) {
            std::vector<std::string> faults = opt.faults;
            if (faults.empty())
                faults.push_back("32x32");
            ctx.table(customInjectionCampaign(opt.schemes, faults,
                                              int(opt.events), opt.seed));
        } else if (!opt.faults.empty() && opt.optimizePatterns.empty()) {
            usageError("--fault requires at least one --scheme or "
                       "--optimize");
        }

        if (!opt.optimizePatterns.empty()) {
            OptimizeRequest req;
            req.patterns = opt.optimizePatterns;
            req.faults = opt.faults;
            req.trials = int(opt.events);
            req.seed = opt.seed;
            req.objective = opt.objective;
            runOptimize(req, ctx);
        }

        if (!opt.protections.empty()) {
            const CmpConfig machine = opt.machine == "lean"
                                          ? CmpConfig::lean()
                                          : CmpConfig::fat();
            IpcLossCampaignSpec spec =
                IpcLossCampaignSpec::fromProtectionSpecs(
                    machine, "IPC loss: " + machine.name + " CMP",
                    opt.protections, opt.workloads);
            spec.cycles = uint64_t(opt.cycles);
            spec.seed = opt.seed;
            ctx.table(runIpcLossCampaign(spec));
        } else if (!opt.workloads.empty()) {
            usageError("--workload requires at least one --protection");
        }
    } catch (const std::invalid_argument &e) {
        err += std::string("tdc_run: ") + e.what() + "\n";
        return 2;
    }

    if (opt.cacheStats)
        ctx.cacheStats(resultCache().stats());
    out += ctx.str();
    return 0;
}

int
tdcRunMain(const std::vector<std::string> &args)
{
    std::string out, err;
    const int code = tdcRun(args, out, err);
    if (!out.empty())
        std::fputs(out.c_str(), stdout);
    if (!err.empty())
        std::fputs(err.c_str(), stderr);
    return code;
}

} // namespace tdc
