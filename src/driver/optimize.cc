#include "driver/optimize.hh"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hh"
#include "scheme/scheme.hh"
#include "scheme/spec_gen.hh"

namespace tdc
{

namespace
{

/** Reference + geometry of the normalized-overhead objectives: the
 *  paper's Figure 7(a) baseline (SECDED+Intv2 on the 64 kB L1). */
const char *const kCostReference = "conv:secded/i2";

/** Default fault axis: one event shape per failure class the paper
 *  distinguishes (single upset, row burst, column burst, cluster). */
const char *const kDefaultFaults[] = {"single", "row:32", "col:8",
                                      "32x32"};

} // namespace

OptimizeObjective
parseObjective(const std::string &token)
{
    if (token == "storage")
        return OptimizeObjective::kStorage;
    if (token == "area")
        return OptimizeObjective::kArea;
    if (token == "latency")
        return OptimizeObjective::kLatency;
    if (token == "power")
        return OptimizeObjective::kPower;
    throw std::invalid_argument(
        "--objective expects storage|area|latency|power, got \"" + token +
        "\"");
}

const char *
objectiveName(OptimizeObjective objective)
{
    switch (objective) {
      case OptimizeObjective::kStorage: return "storage";
      case OptimizeObjective::kArea: return "area";
      case OptimizeObjective::kLatency: return "latency";
      default: return "power";
    }
}

bool
dominates(const DesignPoint &a, const DesignPoint &b)
{
    return a.coverage >= b.coverage && a.overhead <= b.overhead &&
           (a.coverage > b.coverage || a.overhead < b.overhead);
}

std::vector<DesignPoint>
evaluateDesignSpace(const OptimizeRequest &req)
{
    const std::vector<std::string> specs =
        expandSpecPatterns(req.patterns);

    std::vector<std::string> fault_specs = req.faults;
    if (fault_specs.empty())
        fault_specs.assign(std::begin(kDefaultFaults),
                           std::end(kDefaultFaults));
    std::vector<FaultModel> faults;
    faults.reserve(fault_specs.size());
    for (const std::string &f : fault_specs)
        faults.push_back(parseFaultModel(f));

    std::vector<DesignPoint> points;
    points.reserve(specs.size());
    for (const std::string &spec : specs) {
        const SchemePtr scheme = parseScheme(spec);
        DesignPoint p;
        p.spec = scheme->spec();
        p.name = scheme->name();

        // Coverage: every (spec, fault) cell is its own counter-seeded
        // campaign — identical to a customInjectionCampaign cell, so
        // the search shares cache entries with the figure grids.
        int corrected = 0, total = 0;
        for (size_t f = 0; f < faults.size(); ++f) {
            const InjectionOutcome o = cachedInjectAndRecover(
                *scheme, faults[f], req.trials,
                shardSeed(req.seed, f));
            corrected += o.corrected;
            total += o.trials;
        }
        p.coverage = total ? double(corrected) / double(total) : 0.0;

        if (req.objective == OptimizeObjective::kStorage) {
            p.overhead = scheme->storageOverhead();
        } else {
            if (!scheme->hasCostModel())
                throw std::invalid_argument(
                    "--objective " +
                    std::string(objectiveName(req.objective)) +
                    " needs a VLSI cost model, but scheme \"" + spec +
                    "\" has none (use --objective storage)");
            const NormalizedOverhead n = cachedNormalizedCost(
                *scheme, kCostReference, CacheGeometry::l1());
            p.overhead = req.objective == OptimizeObjective::kArea
                             ? n.area
                             : req.objective == OptimizeObjective::kLatency
                                   ? n.latency
                                   : n.power;
        }
        points.push_back(std::move(p));
    }

    for (DesignPoint &p : points) {
        p.dominatedBy = 0;
        for (const DesignPoint &q : points)
            if (dominates(q, p))
                ++p.dominatedBy;
    }
    return points;
}

void
runOptimize(const OptimizeRequest &req, RunContext &ctx)
{
    const std::vector<DesignPoint> points = evaluateDesignSpace(req);

    std::vector<const DesignPoint *> frontier;
    for (const DesignPoint &p : points)
        if (p.onFrontier())
            frontier.push_back(&p);
    std::sort(frontier.begin(), frontier.end(),
              [](const DesignPoint *a, const DesignPoint *b) {
                  if (a->overhead != b->overhead)
                      return a->overhead < b->overhead;
                  if (a->coverage != b->coverage)
                      return a->coverage < b->coverage;
                  return a->spec < b->spec;
              });

    std::vector<std::string> fault_axis = req.faults;
    if (fault_axis.empty())
        fault_axis.assign(std::begin(kDefaultFaults),
                          std::end(kDefaultFaults));
    std::string fault_label;
    for (const std::string &f : fault_axis)
        fault_label += (fault_label.empty() ? "" : ",") + f;

    const std::string objective = objectiveName(req.objective);
    ctx.prosef("optimize: %zu design points, fault axis %s, %d trials "
               "per cell, objective %s\n"
               "Pareto frontier: %zu points (%zu dominated)\n\n",
               points.size(), fault_label.c_str(), req.trials,
               objective.c_str(), frontier.size(),
               points.size() - frontier.size());

    Table front({"Scheme", "Spec", "Coverage",
                 "Overhead (" + objective + ")"});
    for (const DesignPoint *p : frontier)
        front.addRow({p->name, p->spec, Table::num(p->coverage, 6),
                      Table::num(p->overhead, 6)});
    ctx.table(front, "Pareto frontier: coverage vs " + objective +
                         " overhead");

    Table all({"Spec", "Coverage", "Overhead (" + objective + ")",
               "Frontier", "Dominated by"});
    for (const DesignPoint &p : points)
        all.addRow({p.spec, Table::num(p.coverage, 6),
                    Table::num(p.overhead, 6),
                    p.onFrontier() ? "yes" : "no",
                    std::to_string(p.dominatedBy)});
    ctx.table(all, "Evaluated design points");
}

} // namespace tdc
