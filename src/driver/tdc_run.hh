/**
 * @file
 * The tdc_run CLI driver: one entry point for every figure of the
 * study and every scheme x fault x workload scenario the spec-string
 * grammars can express. The bench_fig* binaries are one-line wrappers
 * over tdcRunMain({"--figure", "figN"}), so their stdout and the
 * driver's are the same bytes by construction.
 *
 *   tdc_run --figure fig3                      # any registered figure
 *   tdc_run --scheme 2d:edc16/i2+vp32/w256 \
 *           --scheme conv:oecned/i4 \
 *           --fault 32x32 --events 1e3         # custom injection grid
 *   tdc_run --machine lean --protection l1+steal+l2 \
 *           --workload OLTP --cycles 2e5       # custom IPC grid
 *   tdc_run --optimize "2d:edc{8,16,32}/i{1..8..x2}+vp32" \
 *           --objective storage                # Pareto autotuner
 *   tdc_run --list-figures | --list-schemes | --list-faults
 *   tdc_run --figure fig7 --format csv         # table | csv | json
 *   tdc_run --figure fig3 --threads 8          # worker-pool override
 *   tdc_run --figure fig3 --cache-dir .cache \
 *           --cache-stats                      # persistent result cache
 */

#ifndef TDC_DRIVER_TDC_RUN_HH
#define TDC_DRIVER_TDC_RUN_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "reliability/campaign.hh"

namespace tdc
{

/** Output format of a driver run. */
enum class RunFormat
{
    kTable, ///< The figures' native prose + aligned tables (default).
    kCsv,   ///< Tables only, one CSV block per table.
    kJson,  ///< One JSON document listing every table.
};

/**
 * Sink the figure implementations write through. In table format,
 * prose() and table() reproduce the historical bench output byte for
 * byte; csv/json keep only the structured tables.
 */
class RunContext
{
  public:
    explicit RunContext(RunFormat format) : format_(format) {}

    /** Verbatim commentary; dropped outside table format. */
    void prose(const std::string &text);

    /** printf-style convenience over prose(). */
    void prosef(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /** Emit one campaign table (title taken from the result). */
    void table(const CampaignResult &result);

    /** Emit one raw table with an optional title. */
    void table(const Table &t, const std::string &title = "");

    RunFormat format() const { return format_; }

    /**
     * Attach the run's result-cache counters (--cache-stats): a
     * trailing "cache: ..." line in table format, a "# cache: ..."
     * comment in csv, a top-level "cache" object in json.
     */
    void cacheStats(const CacheStats &stats) { cacheStats_ = stats; }

    /** Everything emitted so far, rendered in the run's format. */
    std::string str() const;

  private:
    struct Emitted
    {
        std::string title;
        std::vector<std::string> headers;
        std::vector<std::vector<std::string>> rows;
    };

    RunFormat format_;
    std::string text_;             ///< table-format byte stream
    std::vector<Emitted> tables_;  ///< structured stream for csv/json
    std::optional<CacheStats> cacheStats_;
};

/** One registered figure: key, one-line summary, implementation. */
struct FigureDef
{
    std::string key;         ///< "--figure" operand, e.g. "fig3"
    std::string description; ///< one line for --list-figures
    std::function<void(RunContext &)> run;
};

/** Register (or replace, by key) a figure. Built-ins auto-register. */
void registerFigure(FigureDef figure);

/** All registered figures in registration order. */
std::vector<FigureDef> figureList();

/**
 * Run the driver on @p args (argv without the program name), appending
 * all output to @p out (errors go to @p err). Returns the process exit
 * code: 0 on success, 2 on usage errors (unknown flags, malformed
 * specs, unknown figures).
 */
int tdcRun(const std::vector<std::string> &args, std::string &out,
           std::string &err);

/** tdcRun + stdout/stderr printing: the main() body of tdc_run. */
int tdcRunMain(const std::vector<std::string> &args);

namespace detail
{
/** The built-in figure set (figures.cc); the registry seeds from it. */
std::vector<FigureDef> builtinFigures();
} // namespace detail

} // namespace tdc

#endif // TDC_DRIVER_TDC_RUN_HH
