/**
 * @file
 * The tdc_run --optimize design-space autotuner: expand spec patterns
 * (scheme/spec_gen.hh) into a grid of concrete protection schemes,
 * evaluate each point's fault coverage (Monte-Carlo injection through
 * the campaign result cache) against its overhead on the chosen
 * objective axis, and report the Pareto frontier.
 *
 *   coverage(spec)  = sum of corrected trials over the fault axis /
 *                     total trials                       (maximize)
 *   overhead(spec)  = storageOverhead()            [--objective storage]
 *                   | normalized code area         [--objective area]
 *                   | normalized coding latency    [--objective latency]
 *                   | normalized dynamic power     [--objective power]
 *                                                        (minimize)
 *
 * A point is dominated when another evaluated point has >= coverage
 * and <= overhead with at least one strict. The frontier table lists
 * the non-dominated points by ascending overhead; the evaluated-points
 * table lists every design point with its dominated-by count, so a
 * consumer can re-verify dominance from the emitted data alone.
 */

#ifndef TDC_DRIVER_OPTIMIZE_HH
#define TDC_DRIVER_OPTIMIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/tdc_run.hh"

namespace tdc
{

/** Overhead axis of the search. */
enum class OptimizeObjective
{
    kStorage, ///< storageOverhead(): check-bit storage fraction
    kArea,    ///< normalized code area vs conv:secded/i2 on l1()
    kLatency, ///< normalized coding latency vs conv:secded/i2 on l1()
    kPower,   ///< normalized dynamic power vs conv:secded/i2 on l1()
};

/** Parse storage|area|latency|power (throws std::invalid_argument
 *  quoting the token otherwise). */
OptimizeObjective parseObjective(const std::string &token);

const char *objectiveName(OptimizeObjective objective);

/** One --optimize invocation. */
struct OptimizeRequest
{
    /** Spec patterns (see scheme/spec_gen.hh); expanded + deduped. */
    std::vector<std::string> patterns;

    /** Fault axis; empty selects the default mixed axis
     *  (single, row:32, col:8, 32x32). */
    std::vector<std::string> faults;

    int trials = 100;
    uint64_t seed = 12345;
    OptimizeObjective objective = OptimizeObjective::kStorage;
};

/** One evaluated design point. */
struct DesignPoint
{
    std::string spec;  ///< canonical scheme spec
    std::string name;  ///< display name
    double coverage = 0.0;
    double overhead = 0.0;
    size_t dominatedBy = 0; ///< number of evaluated points dominating it

    bool onFrontier() const { return dominatedBy == 0; }
};

/** Evaluate the grid and annotate dominance (points in spec order). */
std::vector<DesignPoint> evaluateDesignSpace(const OptimizeRequest &req);

/** Pareto dominance on (coverage maximize, overhead minimize). */
bool dominates(const DesignPoint &a, const DesignPoint &b);

/** Run the search and emit the frontier + evaluated-points tables. */
void runOptimize(const OptimizeRequest &req, RunContext &ctx);

} // namespace tdc

#endif // TDC_DRIVER_OPTIMIZE_HH
