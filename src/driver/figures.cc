/**
 * @file
 * The built-in --figure implementations: the paper's figures and
 * tables, each one a direct port of its historical bench_* main onto
 * the RunContext sink. In table format the emitted bytes are the
 * bench binaries' exact historical stdout (pinned by the driver
 * golden tests); csv/json keep the structured tables only.
 */

#include "driver/tdc_run.hh"

#include "array/fault.hh"
#include "common/rng.hh"
#include "core/twod_array.hh"
#include "cpu/cmp_simulator.hh"
#include "cpu/ipc_campaign.hh"
#include "reliability/scrub_model.hh"
#include "scheme/figure_campaigns.hh"

namespace tdc
{

namespace
{

// --- Figure 1 -------------------------------------------------------

void
figure1(RunContext &ctx)
{
    ctx.prose("=== Figure 1(b): extra memory storage ===\n\n");
    ctx.table(figure1StorageCampaign());
    ctx.prose("\nPaper shape: storage grows steeply with correction "
              "strength; 64b words pay\nproportionally more "
              "(OECNED/64b = 89.1% as quoted for Figure 3(b)).\n");

    ctx.prose("\n=== Figure 1(c): extra energy per read ===\n\n");
    ctx.table(figure1EnergyCampaign());
    ctx.prose("\nPaper shape: energy overhead grows superlinearly with "
              "code strength (check-bit\ncolumns + wider XOR trees); "
              "EDC8 and SECDED stay cheap.\n");
}

// --- Figure 2 -------------------------------------------------------

void
figure2(RunContext &ctx)
{
    ctx.prose("=== Figure 2: normalized energy per read vs interleave "
              "degree ===\n\n");
    ctx.table(figure2EnergyCampaign(
        "--- Figure 2(b): 64kB cache, (72,64) SECDED words ---",
        64 * 1024, 64, 1));
    ctx.prose("\n");
    ctx.table(figure2EnergyCampaign(
        "--- Figure 2(c): 4MB cache, (266,256) SECDED words, 8 banks ---",
        4 * 1024 * 1024, 256, 8));
    ctx.prose("\n");
    ctx.prose("Paper shape: energy rises with interleave degree under "
              "every objective; the rise\nis steeper for the 4MB cache "
              "(wider words multiply the bitline swing cost).\n");
}

// --- Figure 3 -------------------------------------------------------

void
figure3(RunContext &ctx)
{
    constexpr int kTrialsPerPoint = 40;

    ctx.prose("=== Figure 3: coverage and overhead on a 256x256 data "
              "array ===\n\n");
    ctx.table(figure3OverheadCampaign());

    ctx.prosef("\n--- Injection campaigns (%d solid clusters per point)"
               " ---\n\n", kTrialsPerPoint);
    ctx.table(figure3InjectionCampaign(kTrialsPerPoint));

    ctx.prose(
        "\nPaper shape: (a) corrects only <=4-bit row bursts; (b) buys "
        "32-bit bursts at 89%\nstorage; (c) corrects full 32x32 "
        "clusters at 25%. Full-column failures (1x256)\nneed the "
        "SECDED-horizontal variant (the grey box of Figure 4(b)): with "
        "an even\nnumber of rows per vertical group the column flip is "
        "parity-invisible, so the\nEDC-only scheme detects but cannot "
        "locate it -- SECDED pinpoints and fixes it\nrow by row.\n");
}

// --- Figure 5 -------------------------------------------------------

void
figure5(RunContext &ctx)
{
    ctx.prose("=== Figure 5: performance (IPC) loss in 2D-protected "
              "caches ===\n\n");
    ctx.table(runIpcLossCampaign(IpcLossCampaignSpec::figure5(
        CmpConfig::fat(), "--- Figure 5(a: fat baseline) ---")));
    ctx.prose("\n");
    ctx.table(runIpcLossCampaign(IpcLossCampaignSpec::figure5(
        CmpConfig::lean(), "--- Figure 5(b: lean baseline) ---")));
    ctx.prose("\n");
    ctx.prose(
        "Paper shape: full protection costs low single digits (paper: "
        "2.9% fat / 1.8% lean\naverage); port stealing removes most "
        "of the fat CMP's L1 port contention; the\nlean CMP's loss has "
        "a larger L2 component than the fat CMP's.\n");
}

// --- Figure 6 -------------------------------------------------------

constexpr uint64_t kFig6Cycles = 150000;
constexpr uint64_t kFig6Seed = 42;

void
figure6L1Table(RunContext &ctx, const CmpConfig &m, const char *title)
{
    ctx.prosef("--- %s: L1 data cache accesses / 100 cycles (per core)"
               " ---\n\n", title);
    Table t({"Workload", "Read:Data", "Write", "Fill/Evict",
             "Extra read (2D)", "Total", "Extra %"});
    for (const WorkloadProfile &w : standardWorkloads()) {
        CmpSimulator sim(m, w, ProtectionConfig::full(true), kFig6Seed);
        const CmpSimResult r = sim.run(kFig6Cycles);
        const double reads = r.per100(r.l1ReadsData) / m.cores;
        const double writes = r.per100(r.l1Writes) / m.cores;
        const double fills = r.per100(r.l1FillEvict) / m.cores;
        const double extra = r.per100(r.l1ExtraReads) / m.cores;
        const double total = reads + writes + fills + extra;
        t.addRow({w.name, Table::num(reads, 1), Table::num(writes, 1),
                  Table::num(fills, 1), Table::num(extra, 1),
                  Table::num(total, 1), Table::pct(extra / total)});
    }
    ctx.table(t, std::string(title) + ": L1 accesses / 100 cycles");
    ctx.prose("\n");
}

void
figure6L2Table(RunContext &ctx, const CmpConfig &m, const char *title)
{
    ctx.prosef("--- %s: L2 cache accesses / 100 cycles (all cores) "
               "---\n\n", title);
    Table t({"Workload", "Read:Inst", "Read:Data", "Write", "Fill/Evict",
             "Extra read (2D)", "Total"});
    for (const WorkloadProfile &w : standardWorkloads()) {
        CmpSimulator sim(m, w, ProtectionConfig::full(true), kFig6Seed);
        const CmpSimResult r = sim.run(kFig6Cycles);
        const double ri = r.per100(r.l2ReadsInst);
        const double rd = r.per100(r.l2ReadsData);
        const double wr = r.per100(r.l2Writes);
        const double fe = r.per100(r.l2FillEvict);
        const double ex = r.per100(r.l2ExtraReads);
        t.addRow({w.name, Table::num(ri, 1), Table::num(rd, 1),
                  Table::num(wr, 1), Table::num(fe, 1), Table::num(ex, 1),
                  Table::num(ri + rd + wr + fe + ex, 1)});
    }
    ctx.table(t, std::string(title) + ": L2 accesses / 100 cycles");
    ctx.prose("\n");
}

void
figure6(RunContext &ctx)
{
    ctx.prose("=== Figure 6: cache access breakdown per 100 CPU cycles "
              "===\n\n");
    const CmpConfig fat = CmpConfig::fat();
    const CmpConfig lean = CmpConfig::lean();
    figure6L1Table(ctx, fat, "Figure 6(a) fat baseline");
    figure6L1Table(ctx, lean, "Figure 6(b) lean baseline");
    figure6L2Table(ctx, fat, "Figure 6(c) fat baseline");
    figure6L2Table(ctx, lean, "Figure 6(d) lean baseline");
    ctx.prose(
        "Paper shape: writes (the source of read-before-write traffic) "
        "are a small\nfraction of accesses; 2D coding adds roughly 20% "
        "extra reads; the fat CMP has\nhigher per-core L1 bandwidth, the "
        "lean CMP higher aggregate L2 bandwidth.\n");
}

// --- Figure 7 -------------------------------------------------------

void
figure7(RunContext &ctx)
{
    ctx.prose("=== Figure 7: overhead of coding schemes for 32x32-bit "
              "coverage ===\n\n");

    ctx.table(figure7Campaign(
        "--- Figure 7(a): 64kB L1 data cache (normalized to "
        "SECDED+Intv2 = 100%) ---",
        CacheGeometry::l1(),
        {
            "2d:edc8/i4+vp32",
            "conv:dected/i16",
            "conv:qecped/i8",
            "conv:oecned/i4",
            "wt:edc8/i4",
        }));
    ctx.prose("\n");

    ctx.table(figure7Campaign(
        "--- Figure 7(b): 4MB L2 cache (normalized to "
        "SECDED+Intv2 = 100%) ---",
        CacheGeometry::l2(),
        {
            "2d:edc16/i2+vp32/w256",
            "conv:dected/i16",
            "conv:qecped/i8",
            "conv:oecned/i4",
        }));
    ctx.prose("\n");

    ctx.prose(
        "Paper shape: 2D coding is the cheapest on every axis; "
        "conventional multi-bit ECC\npays 300-500% dynamic power "
        "(coding logic + deep interleaving); write-through\nsaves array "
        "area but burns power duplicating stores into the L2.\n");
}

// --- Figure 8 -------------------------------------------------------

void
figure8(RunContext &ctx)
{
    ctx.prose("=== Figure 8(a): 16MB L2 cache yield vs failing cells "
              "===\n\n");
    ctx.table(figure8YieldCampaign());
    ctx.prose("\nPaper shape: spare-only collapses first; ECC-only "
              "degrades with multi-bit words;\nECC + a few spares "
              "stays near 100% across the sweep.\n");

    ctx.prose("\n=== Figure 8(a) cross-check: Monte Carlo vs analytic "
              "(small array) ===\n\n");
    ctx.table(figure8YieldMonteCarloCampaign());

    ctx.prose("\n=== Figure 8(b): P(all soft errors correctable), "
              "10 x 16MB caches, 1000 FIT/Mb ===\n\n");
    ctx.table(figure8SoftErrorCampaign());
    ctx.prose(
        "\nPaper shape: without 2D coding the success probability decays "
        "with operating\ntime, faster at higher hard-error rates; with 2D "
        "coding runtime immunity holds.\n");
}

// --- Related work ---------------------------------------------------

void
relatedWork(RunContext &ctx)
{
    ctx.prose("=== Related work: HV product code vs 2D coding "
              "(256x256 array) ===\n\n");
    ctx.prosef("Storage overhead: product code %.1f%%, 2D coding "
               "25.0%%\n\n",
               100.0 * parseScheme("prod:256x256")->storageOverhead());

    ctx.table(relatedWorkCampaign());

    ctx.prose(
        "\nThe product code is cheaper but collapses on any 2x2 block "
        "(silently!) and on\neven per-line patterns; the paper's scheme "
        "interleaves both dimensions so solid\nclusters within 32x32 "
        "never cancel, and detection never requires reading the\n"
        "vertical code.\n");
}

// --- Chipkill -------------------------------------------------------

void
chipkill(RunContext &ctx)
{
    ctx.prose("=== Chipkill/DDC vs 2D coding: coverage vs storage "
              "===\n\n");
    ctx.prose("One scheme per protection class: interleaved SECDED, "
              "the paper's 2D coding,\nthe HV product code, and two "
              "chipkill-class DRAM ranks -- RS(15,12) SSC-DSD\nover "
              "x4 chips, and x8 chips with per-chip IECC SEC-DED "
              "feeding chip erasures\ninto a shortened RS(11,8).\n\n");

    ctx.table(chipkillOverheadCampaign());
    ctx.prose("\n");
    ctx.table(chipkillInjectionCampaign());

    ctx.prose(
        "\nThe symbol code rides out whole-chip kills and anything "
        "confined to one chip,\nbut a dense multi-row hammer band "
        "spans chips and only detects; 2D coding\ncovers the wide "
        "SRAM-shaped clusters the symbol code cannot locate. IECC\n"
        "buys per-chip bit repair and erasure marking at a steep "
        "check-bit cost on\nnarrow bursts -- the coverage-vs-storage "
        "trade the table quantifies.\n");
}

// --- Table 1 --------------------------------------------------------

void
lifetime(RunContext &ctx)
{
    ctx.prose("=== Lifetime/FIT reliability: fault accumulation over "
              "5-year missions ===\n\n");
    ctx.prose("Jaguar field-failure FIT mix accelerated 10000x "
              "(accelerated testing);\ntransient events flip bits, "
              "permanent events stick rows/cols/cells. Each cell\n"
              "reports the censored MTTF estimate, the FIT rate, and "
              "surviving trials.\n\n");

    ctx.table(lifetimeScrubCampaign());
    ctx.prose("\nFrequent checking shrinks the accumulation window "
              "(Section 2.1's per-read\nlimit is T=event); monthly "
              "scrubbing lets independent events meet in one\nwindow "
              "and overwhelm the horizontal code.\n\n");

    ctx.table(lifetimeSpareCampaign());
    ctx.prose("\nSpare rows retire accumulated stuck-at rows after "
              "each clean scrub, so the\npermanent-fault population "
              "stops compounding; transient-dominated failures\n"
              "are unaffected.\n");
}

void
table1(RunContext &ctx)
{
    ctx.prose("=== Table 1: simulated systems ===\n\n");

    Table machines({"Parameter", "Fat CMP", "Lean CMP"});
    const CmpConfig fat = CmpConfig::fat();
    const CmpConfig lean = CmpConfig::lean();
    machines.addRow({"Cores", std::to_string(fat.cores),
                     std::to_string(lean.cores)});
    machines.addRow({"Core type", "4-wide out-of-order",
                     "2-wide in-order, 4 threads"});
    machines.addRow({"In-flight window", std::to_string(fat.robSize),
                     std::to_string(lean.robSize)});
    machines.addRow({"Store queue", std::to_string(fat.storeQueue),
                     std::to_string(lean.storeQueue)});
    machines.addRow({"L1 D-cache", "64kB 2-way 64B, 2-cycle, 2-port WB",
                     "64kB 2-way 64B, 2-cycle, 1-port WB"});
    machines.addRow({"L2 cache",
                     "16MB 8-way, " + std::to_string(fat.l2HitLatency) +
                         "-cycle hit, " + std::to_string(fat.l2Banks) +
                         " banks",
                     "4MB 16-way, " + std::to_string(lean.l2HitLatency) +
                         "-cycle hit, " + std::to_string(lean.l2Banks) +
                         " banks"});
    machines.addRow({"Memory latency (cycles)",
                     std::to_string(fat.memLatency),
                     std::to_string(lean.memLatency)});
    ctx.table(machines, "Table 1: simulated systems");

    ctx.prose("\n=== Table 1: workload profiles (substituted synthetic"
              " generators; see DESIGN.md) ===\n\n");
    Table wl({"Workload", "Class", "load%", "store%", "L1I miss%",
              "L1D miss%", "L2 miss%", "dirty evict%"});
    for (const WorkloadProfile &w : standardWorkloads()) {
        wl.addRow({w.name, w.scientific ? "scientific" : "commercial",
                   Table::pct(w.loadFrac), Table::pct(w.storeFrac),
                   Table::pct(w.l1iMissRate), Table::pct(w.l1dMissRate),
                   Table::pct(w.l2MissRate),
                   Table::pct(w.dirtyEvictFrac)});
    }
    ctx.table(wl, "Table 1: workload profiles");
}

// --- Ablations ------------------------------------------------------

void
ablationVerticalInterleaveSweep(RunContext &ctx)
{
    ctx.prose("--- Ablation 1: vertical interleave factor (256-row "
              "bank, EDC8+Intv4 horizontal) ---\n\n");
    Rng rng(31337);
    Table t({"V (parity rows)", "Vertical storage", "Total overhead",
             "Max cluster height", "Corrects 32x32?", "Recovery row reads"});
    for (size_t v : {8u, 16u, 32u, 64u}) {
        TwoDimConfig cfg = TwoDimConfig::l1Default();
        cfg.verticalParityRows = v;
        TwoDimArray arr(cfg);
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                arr.writeWord(r, s, BitVector(64, rng.next()));

        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), 32, 32, 1.0);
        const bool ok = arr.scrub();
        const uint64_t reads = arr.lastRecovery().rowReads;
        t.addRow({std::to_string(v),
                  Table::pct(double(v) / double(cfg.dataRows)),
                  Table::pct(arr.storageOverhead()),
                  std::to_string(v), ok ? "yes" : "no",
                  std::to_string(reads)});
    }
    ctx.table(t, "Ablation 1: vertical interleave factor");
    ctx.prose("\nV trades vertical storage and coverage height; V=32 "
              "(the paper's choice) is the\nsmallest factor that "
              "covers 32x32 clusters.\n\n");
}

void
ablationHorizontalCodeSweep(RunContext &ctx)
{
    ctx.prose("--- Ablation 2: horizontal code choice ---\n\n");
    Rng rng(777);
    Table t({"Horizontal", "Storage (H only)", "Inline single-bit fix",
             "Detect width (Intv4)", "32x32 corrected?"});
    for (CodeKind kind : {CodeKind::kEdc8, CodeKind::kEdc16,
                          CodeKind::kSecDed}) {
        TwoDimConfig cfg = TwoDimConfig::l1Default();
        cfg.horizontalKind = kind;
        TwoDimArray arr(cfg);
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                arr.writeWord(r, s, BitVector(64, rng.next()));
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), 32, 32, 1.0);
        const bool ok = arr.scrub();

        const CodePtr code = makeCode(kind, 64);
        t.addRow({codeKindName(kind), Table::pct(code->storageOverhead()),
                  code->correctCapability() > 0 ? "yes" : "no",
                  std::to_string(4 * code->burstDetectCapability()),
                  ok ? "yes" : "no"});
    }
    ctx.table(t, "Ablation 2: horizontal code choice");
    ctx.prose("\nSECDED horizontal adds inline correction (the yield "
              "configuration of Section 5.2)\nat the same storage as "
              "EDC8; EDC16 widens detection but doubles check bits.\n\n");
}

void
ablationStealWindowSweep(RunContext &ctx)
{
    ctx.prose("--- Ablation 3: port-stealing window (fat CMP, OLTP) "
              "---\n\n");
    const WorkloadProfile &w = workloadByName("OLTP");
    Table t({"Steal window (cycles)", "IPC loss vs baseline"});
    CmpSimulator base(CmpConfig::fat(), w, ProtectionConfig::none(), 42);
    const double base_ipc = base.run(120000).ipc();
    for (unsigned window : {0u, 1u, 2u, 4u, 8u, 16u}) {
        CmpConfig m = CmpConfig::fat();
        m.stealWindow = window;
        ProtectionConfig prot = ProtectionConfig::l1Only(window > 0);
        CmpSimulator sim(m, w, prot, 42);
        const double ipc = sim.run(120000).ipc();
        t.addRow({std::to_string(window),
                  Table::pct((base_ipc - ipc) / base_ipc)});
    }
    ctx.table(t, "Ablation 3: port-stealing window");
    ctx.prose("\nA few cycles of store-queue residency are enough to "
              "absorb most read-before-\nwrite reads into idle port "
              "slots.\n\n");
}

void
ablationReadBeforeWriteCost(RunContext &ctx)
{
    ctx.prose("--- Ablation 4: isolated read-before-write cost "
              "(full 2D, both machines) ---\n\n");
    Table t({"Machine", "Workload", "Extra reads / 100 cycles",
             "IPC loss"});
    for (const CmpConfig &m : {CmpConfig::fat(), CmpConfig::lean()}) {
        for (const char *name : {"OLTP", "Ocean"}) {
            const WorkloadProfile &w = workloadByName(name);
            CmpSimulator base(m, w, ProtectionConfig::none(), 42);
            CmpSimulator prot(m, w, ProtectionConfig::full(true), 42);
            const CmpSimResult rb = base.run(120000);
            const CmpSimResult rp = prot.run(120000);
            t.addRow({m.name, name,
                      Table::num(rp.per100(rp.l1ExtraReads +
                                           rp.l2ExtraReads), 1),
                      Table::pct((rb.ipc() - rp.ipc()) / rb.ipc())});
        }
    }
    ctx.table(t, "Ablation 4: isolated read-before-write cost");
    ctx.prose("\n");
}

void
ablationWriteThroughComparison(RunContext &ctx)
{
    ctx.prose("--- Ablation 5: 2D write-back L1 vs EDC write-through "
              "L1 (both over 2D L2) ---\n\n");
    Table t({"Machine", "Workload", "Scheme", "IPC loss",
             "L2 writes / 100 cycles"});
    for (const CmpConfig &m : {CmpConfig::fat(), CmpConfig::lean()}) {
        for (const char *name : {"OLTP", "Web"}) {
            const WorkloadProfile &w = workloadByName(name);
            CmpSimulator base(m, w, ProtectionConfig::none(), 42);
            const double base_ipc = base.run(120000).ipc();
            for (const ProtectionConfig &prot :
                 {ProtectionConfig::full(true),
                  ProtectionConfig::writeThroughL1()}) {
                CmpSimulator sim(m, w, prot, 42);
                const CmpSimResult r = sim.run(120000);
                t.addRow({m.name, name, prot.label(),
                          Table::pct((base_ipc - r.ipc()) / base_ipc),
                          Table::num(r.per100(r.l2Writes), 1)});
            }
        }
    }
    ctx.table(t, "Ablation 5: write-back 2D vs write-through EDC L1");
    ctx.prose("\nWrite-through duplicates every store into the shared "
              "L2: several times the L2\nwrite traffic of the "
              "write-back 2D scheme, and a larger IPC cost on the "
              "lean CMP\nwhose threads contend for L2 banks (the "
              "Section 2.1/5.1 argument for 2D-protected\nwrite-back "
              "L1 caches).\n\n");
}

void
ablationScrubIntervalSweep(RunContext &ctx)
{
    ctx.prose("--- Ablation 6: scrub interval vs per-read checking "
              "(16MB, SECDED words) ---\n\n");
    Table t({"Scrub interval", "E[uncorrectable] / 5 years",
             "P(survive 5 years)"});
    const double mission = 5 * 8760.0;
    // Scale the soft-error rate up to a harsh environment so the
    // differences are visible at table precision.
    auto params = [](double interval) {
        ScrubParams p;
        p.words = 2 * 1024 * 1024;
        p.errorsPerHour = 0.5;
        p.scrubIntervalHours = interval;
        return p;
    };
    for (double interval : {0.0, 1.0, 24.0, 24.0 * 7, 24.0 * 30}) {
        ScrubModel m(params(interval));
        const char *label = interval == 0.0 ? "per-read check"
                                            : nullptr;
        t.addRow({label != nullptr ? label
                                   : Table::num(interval, 0) + " h",
                  Table::num(m.expectedUncorrectable(mission), 4),
                  Table::pct(m.survivalProbability(mission), 2)});
    }
    ctx.table(t, "Ablation 6: scrub interval vs per-read checking");
    ctx.prose("\nScrubbing's vulnerability window grows linearly with "
              "the interval (Section 2.1);\nchecking on every read "
              "eliminates it, which is why the 2D scheme keeps the\n"
              "horizontal check on the access path.\n\n");
}

void
ablationRecoveryLatencySweep(RunContext &ctx)
{
    ctx.prose("--- Ablation 7: recovery latency vs bank size "
              "(Section 4: 'a few hundred or\n    thousand cycles, "
              "depending on the number of rows') ---\n\n");
    Rng rng(4242);
    Table t({"Bank rows", "Fault", "Recovery row reads",
             "Reads / bank rows"});
    for (size_t rows : {64u, 128u, 256u, 512u, 1024u}) {
        TwoDimConfig cfg = TwoDimConfig::l1Default();
        cfg.dataRows = rows;
        TwoDimArray arr(cfg);
        for (size_t r = 0; r < arr.rows(); ++r)
            for (size_t s = 0; s < arr.wordsPerRow(); ++s)
                arr.writeWord(r, s, BitVector(64, rng.next()));
        FaultInjector inj(rng);
        inj.injectCluster(arr.cells(), 32, 32, 1.0);
        const RecoveryReport rep = arr.recover();
        t.addRow({std::to_string(rows),
                  rep.success ? "32x32 corrected" : "FAILED",
                  std::to_string(rep.rowReads),
                  Table::num(double(rep.rowReads) / double(rows), 2)});
    }
    ctx.table(t, "Ablation 7: recovery latency vs bank size");
    ctx.prose("\nRecovery costs a small constant number of bank "
              "marches (O(rows)), independent\nof the error size — "
              "cheap because errors are rare (the paper's argument "
              "that the\nrecovery path needs no optimization).\n\n");
}

void
ablation(RunContext &ctx)
{
    ctx.prose("=== Ablations: 2D coding design choices ===\n\n");
    ablationVerticalInterleaveSweep(ctx);
    ablationHorizontalCodeSweep(ctx);
    ablationStealWindowSweep(ctx);
    ablationReadBeforeWriteCost(ctx);
    ablationWriteThroughComparison(ctx);
    ablationScrubIntervalSweep(ctx);
    ablationRecoveryLatencySweep(ctx);
}

} // namespace

namespace detail
{

std::vector<FigureDef>
builtinFigures()
{
    return {
        {"fig1", "storage + energy overhead of per-word EDC/ECC",
         figure1},
        {"fig2", "read energy vs physical interleave degree", figure2},
        {"fig3", "coverage + overhead on a 256x256 array (injection)",
         figure3},
        {"fig5", "IPC loss of 2D protection on both CMPs", figure5},
        {"fig6", "cache access breakdown per 100 cycles", figure6},
        {"fig7", "area/latency/power of schemes at 32x32 coverage",
         figure7},
        {"fig8", "yield and multi-year soft-error reliability", figure8},
        {"lifetime", "MTTF/FIT over mission time (scrub + spare sweeps)",
         lifetime},
        {"table1", "simulated systems and workload profiles", table1},
        {"ablation", "2D design-choice ablation sweeps", ablation},
        {"related-work", "HV product code vs 2D coding (injection)",
         relatedWork},
        {"chipkill", "chipkill/DDC vs 2D coding (coverage vs storage)",
         chipkill},
    };
}

} // namespace detail

} // namespace tdc
