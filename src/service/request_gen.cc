#include "service/request_gen.hh"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "common/parallel.hh"
#include "common/rng.hh"

namespace tdc
{

namespace
{

[[noreturn]] void
genError(const std::string &spec, const std::string &what)
{
    throw std::invalid_argument("request spec \"" + spec + "\": " + what);
}

/** Decimal digits of @p digits (from @p token), range-checked. */
uint64_t
parseDigits(const std::string &spec, const std::string &token,
            const std::string &digits, uint64_t lo, uint64_t hi)
{
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        genError(spec, "malformed number in \"" + token + "\"");
    const unsigned long long v = std::strtoull(digits.c_str(), nullptr, 10);
    if (v < lo || v > hi)
        genError(spec, "value out of range [" + std::to_string(lo) + ".." +
                           std::to_string(hi) + "] in \"" + token + "\"");
    return v;
}

/** Count that may use scientific notation ("1e6"), as a whole number. */
uint64_t
parseCount(const std::string &spec, const std::string &token,
           const std::string &text, double lo, double hi)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() ||
        v != std::floor(v) || v < lo || v > hi)
        genError(spec, "expected a count in [" +
                           std::to_string(uint64_t(lo)) + ".." +
                           std::to_string(uint64_t(hi)) + "] in \"" +
                           token + "\"");
    return uint64_t(v);
}

} // namespace

std::string
RequestStreamSpec::spec() const
{
    if (dist == RequestDist::kTrace)
        return "trace:" + tracePath;

    std::string out;
    switch (dist) {
      case RequestDist::kUniform: out = "uniform"; break;
      case RequestDist::kZipf:
        out = "zipf" + std::to_string(zipfHundredths);
        break;
      case RequestDist::kBurst:
        out = "burst" + std::to_string(burstLen);
        break;
      case RequestDist::kTrace: break; // handled above
    }
    out += "/n" + std::to_string(count);
    out += "/w" + std::to_string(writePct);
    if (dist == RequestDist::kBurst && burstGap != 0)
        out += "/g" + std::to_string(burstGap);
    return out;
}

RequestStreamSpec
parseRequestSpec(const std::string &spec)
{
    if (spec.rfind("trace:", 0) == 0) {
        RequestStreamSpec s;
        s.dist = RequestDist::kTrace;
        s.tracePath = spec.substr(6);
        if (s.tracePath.empty())
            genError(spec, "empty path after \"trace:\"");
        return s;
    }

    // Tokens separate on '/'; the first names the distribution.
    std::vector<std::string> tokens;
    std::string current;
    for (char c : spec) {
        if (c == '/') {
            tokens.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    tokens.push_back(current);

    RequestStreamSpec s;
    const std::string &head = tokens.front();
    if (head == "uniform") {
        s.dist = RequestDist::kUniform;
    } else if (head.rfind("zipf", 0) == 0) {
        s.dist = RequestDist::kZipf;
        if (head.size() > 4)
            s.zipfHundredths = unsigned(
                parseDigits(spec, head, head.substr(4), 1, 99));
    } else if (head.rfind("burst", 0) == 0) {
        s.dist = RequestDist::kBurst;
        if (head.size() > 5)
            s.burstLen = size_t(
                parseDigits(spec, head, head.substr(5), 1, 1u << 20));
    } else {
        genError(spec, "unknown distribution \"" + head +
                           "\" (uniform, zipf, burst, trace:<path>)");
    }

    for (size_t i = 1; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        if (tok.rfind("n", 0) == 0) {
            s.count = size_t(parseCount(spec, tok, tok.substr(1), 1, 1e9));
        } else if (tok.rfind("w", 0) == 0) {
            s.writePct =
                unsigned(parseDigits(spec, tok, tok.substr(1), 0, 100));
        } else if (tok.rfind("b", 0) == 0) {
            if (s.dist != RequestDist::kBurst)
                genError(spec, "\"" + tok +
                                   "\" only applies to burst streams");
            s.burstLen = size_t(
                parseDigits(spec, tok, tok.substr(1), 1, 1u << 20));
        } else if (tok.rfind("g", 0) == 0) {
            if (s.dist != RequestDist::kBurst)
                genError(spec, "\"" + tok +
                                   "\" only applies to burst streams");
            s.burstGap = size_t(
                parseDigits(spec, tok, tok.substr(1), 1, 1u << 30));
        } else {
            genError(spec, "unknown token \"" + tok + "\"");
        }
    }
    return s;
}

std::vector<ServiceRequest>
buildRequests(const RequestStreamSpec &spec, size_t words, uint64_t seed)
{
    if (spec.dist == RequestDist::kTrace)
        return readTrace(spec.tracePath);
    if (words == 0)
        throw std::invalid_argument(
            "buildRequests: generator needs a nonzero address space");

    const size_t burst_gap = spec.burstGap != 0 ? spec.burstGap
                                                : 4 * spec.burstLen;
    // Power-law skew exponent for the zipf approximation: drawing
    // u ~ U[0,1) and taking floor(words * u^k) concentrates mass near
    // address 0 with Zipf-like tail weight for k = 1/(1-theta).
    const double zipf_k =
        1.0 / (1.0 - double(spec.zipfHundredths) / 100.0);

    std::vector<ServiceRequest> requests(spec.count);
    // Request i is a pure function of its own workload-domain stream,
    // so generation itself can shard over the pool (and the stream
    // never collides with injection/scrub consumers of the same seed).
    parallelFor(spec.count, [&](size_t i) {
        Rng rng(shardSeed(seed, kSeedDomainWorkload, i));
        ServiceRequest &r = requests[i];
        switch (spec.dist) {
          case RequestDist::kUniform:
            r.tick = i;
            r.address = rng.nextBelow(words);
            break;
          case RequestDist::kZipf: {
            r.tick = i;
            const size_t rank =
                size_t(double(words) * std::pow(rng.nextDouble(), zipf_k));
            // Scatter hot ranks over the space (and over banks/shards)
            // with a fixed mixing stride coprime to any power of two.
            r.address =
                (std::min(rank, words - 1) * 0x9e3779b97f4a7c15ULL) %
                words;
            break;
          }
          case RequestDist::kBurst: {
            const size_t burst = i / spec.burstLen;
            const size_t offset = i % spec.burstLen;
            // The burst base address is a pure function of the burst
            // index: every request of the burst derives it afresh.
            Rng base_rng(shardSeed(seed, kSeedDomainWorkload + 1, burst));
            r.tick = burst * burst_gap + offset;
            r.address = (base_rng.nextBelow(words) + offset) % words;
            break;
          }
          case RequestDist::kTrace:
            break; // unreachable
        }
        r.op = rng.nextBelow(100) < spec.writePct ? RequestOp::kWrite
                                                  : RequestOp::kRead;
        r.value = rng.next();
    });
    return requests;
}

} // namespace tdc
