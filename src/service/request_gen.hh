/**
 * @file
 * Synthetic request-stream generators and the trace/generator spec
 * grammar — the --serve axis of the tdc_run driver:
 *
 *   spec     ::= "trace:" path | dist opt*
 *   dist     ::= "uniform" | "zipf" [hundredths] | "burst" [length]
 *   opt      ::= "/n" count | "/w" write-pct | "/b" burst-len
 *              | "/g" burst-gap
 *
 *   uniform            addresses i.i.d. uniform, one arrival per tick
 *   zipf / zipf90      power-law skew toward hot addresses
 *                      (theta = hundredths/100, default zipf80)
 *   burst / burst128   back-to-back runs of consecutive addresses,
 *                      idle gap between bursts (port-steal fodder)
 *   trace:<path>       replay a recorded binary trace verbatim
 *
 *   /n<count>          requests (scientific notation ok, default 1e5)
 *   /w<pct>            write percentage 0..100 (default 30)
 *   /b<len>            burst length (burst only, default 64)
 *   /g<gap>            ticks from burst start to burst start
 *                      (burst only, default 4 * burst length)
 *
 * Like the scheme/fault grammars, malformed specs throw
 * std::invalid_argument quoting the offending token, and spec() of a
 * parsed generator round-trips. Generation of request i is a pure
 * function of (spec, words, seed, i) — workload-domain counter
 * streams, never shared state — so streams are reproducible
 * everywhere and identical at any TDC_THREADS.
 */

#ifndef TDC_SERVICE_REQUEST_GEN_HH
#define TDC_SERVICE_REQUEST_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/request.hh"

namespace tdc
{

/** Distribution kinds of the synthetic generators. */
enum class RequestDist
{
    kUniform,
    kZipf,
    kBurst,
    kTrace, ///< replay from tracePath, no synthesis
};

/** Parsed --serve spec: either a generator shape or a trace path. */
struct RequestStreamSpec
{
    RequestDist dist = RequestDist::kUniform;
    size_t count = 100000;   ///< requests to generate
    unsigned writePct = 30;  ///< write percentage, 0..100
    unsigned zipfHundredths = 80; ///< theta * 100, zipf only
    size_t burstLen = 64;    ///< burst length, burst only
    size_t burstGap = 0;     ///< burst-start stride; 0 = 4 * burstLen
    std::string tracePath;   ///< trace only

    /** Canonical spec string; parseRequestSpec(spec()) round-trips. */
    std::string spec() const;

    bool operator==(const RequestStreamSpec &) const = default;
};

/**
 * Parse a --serve spec. Throws std::invalid_argument quoting the
 * offending token on unknown distributions, malformed numbers, or
 * out-of-range values.
 */
RequestStreamSpec parseRequestSpec(const std::string &spec);

/**
 * Materialize the stream: synthesize spec.count requests over the
 * address space [0, words), or load spec.tracePath for trace specs
 * (then @p words / @p seed are ignored; the trace replays verbatim).
 * Ticks are non-decreasing. @p words must be nonzero for generators.
 */
std::vector<ServiceRequest> buildRequests(const RequestStreamSpec &spec,
                                          size_t words, uint64_t seed);

} // namespace tdc

#endif // TDC_SERVICE_REQUEST_GEN_HH
