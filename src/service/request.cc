#include "service/request.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/parallel.hh"

namespace tdc
{

BitVector
expandValue(uint64_t value, size_t bits)
{
    BitVector word(bits);
    for (size_t w = 0; w < bits; w += 64) {
        const size_t len = std::min<size_t>(64, bits - w);
        // Slice w/64 of the expansion is its own counter-based stream
        // of the payload seed: pure in (value, bits), cheap, and every
        // slice differs.
        word.setSlice(w, BitVector(len, shardSeed(value, w / 64)));
    }
    return word;
}

namespace
{

constexpr char kMagic[8] = {'T', 'D', 'C', 'T', 'R', 'A', 'C', 'E'};
constexpr uint32_t kVersion = 1;
constexpr size_t kRecordBytes = 25; // tick u64 + op u8 + addr/value u64

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out += char((v >> (8 * i)) & 0xff);
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out += char((v >> (8 * i)) & 0xff);
}

uint32_t
getU32(const unsigned char *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(p[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}

[[noreturn]] void
traceError(const std::string &what)
{
    throw std::invalid_argument("trace: " + what);
}

} // namespace

void
writeTrace(std::ostream &out, const std::vector<ServiceRequest> &requests)
{
    std::string bytes;
    bytes.reserve(sizeof(kMagic) + 8 + requests.size() * kRecordBytes);
    bytes.append(kMagic, sizeof(kMagic));
    putU32(bytes, kVersion);
    putU32(bytes, uint32_t(requests.size()));
    for (const ServiceRequest &r : requests) {
        putU64(bytes, r.tick);
        bytes += char(uint8_t(r.op));
        putU64(bytes, r.address);
        putU64(bytes, r.value);
    }
    out.write(bytes.data(), std::streamsize(bytes.size()));
    if (!out)
        throw std::runtime_error("trace: write failed");
}

void
writeTrace(const std::string &path,
           const std::vector<ServiceRequest> &requests)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("trace: cannot open \"" + path +
                                 "\" for writing");
    writeTrace(out, requests);
    out.flush();
    if (!out)
        throw std::runtime_error("trace: write to \"" + path +
                                 "\" failed");
}

std::vector<ServiceRequest>
readTrace(std::istream &in)
{
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (bytes.size() < sizeof(kMagic) + 8)
        traceError("file shorter than the 16-byte header");
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        traceError("bad magic (expected \"TDCTRACE\")");
    const auto *p =
        reinterpret_cast<const unsigned char *>(bytes.data());
    const uint32_t version = getU32(p + 8);
    if (version != kVersion)
        traceError("unsupported version \"" + std::to_string(version) +
                   "\" (expected " + std::to_string(kVersion) + ")");
    const uint32_t count = getU32(p + 12);
    const size_t body = bytes.size() - sizeof(kMagic) - 8;
    if (body != size_t(count) * kRecordBytes)
        traceError("truncated body: header promises \"" +
                   std::to_string(count) + "\" records (" +
                   std::to_string(size_t(count) * kRecordBytes) +
                   " bytes), file carries " + std::to_string(body));

    std::vector<ServiceRequest> requests;
    requests.reserve(count);
    const unsigned char *rec = p + 16;
    for (uint32_t i = 0; i < count; ++i, rec += kRecordBytes) {
        ServiceRequest r;
        r.tick = getU64(rec);
        const uint8_t op = rec[8];
        if (op > uint8_t(RequestOp::kWrite))
            traceError("record " + std::to_string(i) +
                       ": malformed op byte \"" + std::to_string(op) +
                       "\"");
        r.op = RequestOp(op);
        r.address = getU64(rec + 9);
        r.value = getU64(rec + 17);
        requests.push_back(r);
    }
    return requests;
}

std::vector<ServiceRequest>
readTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("trace: cannot open \"" + path + "\"");
    return readTrace(in);
}

} // namespace tdc
