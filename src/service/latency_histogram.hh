/**
 * @file
 * Exact integer-latency histogram for the cache service: per-cycle
 * counts, so percentiles are exact order statistics and two runs are
 * comparable bit-for-bit (no bucketing noise, no floating state).
 */

#ifndef TDC_SERVICE_LATENCY_HISTOGRAM_HH
#define TDC_SERVICE_LATENCY_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace tdc
{

/**
 * Counts of observed integer latencies. Merging is field-wise
 * addition, so per-shard histograms reduced in shard order are
 * independent of worker scheduling.
 */
class LatencyHistogram
{
  public:
    /** Record one latency observation of @p cycles. */
    void add(uint64_t cycles);

    /** Merge another histogram (per-latency counts summed). */
    LatencyHistogram &operator+=(const LatencyHistogram &other);

    uint64_t count() const { return total; }
    uint64_t sum() const { return weighted; }
    uint64_t max() const;
    double mean() const;

    /**
     * Exact percentile: the smallest latency L such that at least
     * ceil(p * count()) observations are <= L. @p p is clamped to
     * [0, 1]; p = 0 yields the minimum observation, p = 1 the
     * maximum. Returns 0 on an empty histogram.
     */
    uint64_t percentile(double p) const;

    uint64_t p50() const { return percentile(0.50); }
    uint64_t p99() const { return percentile(0.99); }
    uint64_t p999() const { return percentile(0.999); }

    /** Raw per-latency counts (index = latency in cycles). */
    const std::vector<uint64_t> &counts() const { return bins; }

    bool operator==(const LatencyHistogram &) const = default;

  private:
    std::vector<uint64_t> bins; ///< bins[L] = observations at L cycles
    uint64_t total = 0;
    uint64_t weighted = 0;
};

} // namespace tdc

#endif // TDC_SERVICE_LATENCY_HISTOGRAM_HH
