#include "service/latency_histogram.hh"

#include <algorithm>
#include <cmath>

namespace tdc
{

void
LatencyHistogram::add(uint64_t cycles)
{
    if (cycles >= bins.size())
        bins.resize(cycles + 1, 0);
    ++bins[cycles];
    ++total;
    weighted += cycles;
}

LatencyHistogram &
LatencyHistogram::operator+=(const LatencyHistogram &other)
{
    if (other.bins.size() > bins.size())
        bins.resize(other.bins.size(), 0);
    for (size_t i = 0; i < other.bins.size(); ++i)
        bins[i] += other.bins[i];
    total += other.total;
    weighted += other.weighted;
    return *this;
}

uint64_t
LatencyHistogram::max() const
{
    for (size_t i = bins.size(); i > 0; --i) {
        if (bins[i - 1] != 0)
            return i - 1;
    }
    return 0;
}

double
LatencyHistogram::mean() const
{
    return total == 0 ? 0.0 : double(weighted) / double(total);
}

uint64_t
LatencyHistogram::percentile(double p) const
{
    if (total == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    // ceil(p * total) computed in floating point overshoots whenever
    // p * total lands epsilon above an integer (0.07 * 100 =
    // 7.0000000000000007 -> ceil 8), sliding the order statistic up a
    // rank. Shave one ulp-scale margin before taking the ceiling.
    const double scaled = p * double(total) * (1.0 - 1e-12);
    const uint64_t target =
        std::clamp<uint64_t>(uint64_t(std::ceil(scaled)), 1, total);
    uint64_t seen = 0;
    for (size_t i = 0; i < bins.size(); ++i) {
        seen += bins[i];
        if (seen >= target)
            return i;
    }
    return max();
}

} // namespace tdc
