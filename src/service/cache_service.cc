#include "service/cache_service.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/port_scheduler.hh"

namespace tdc
{

size_t
ServiceConfig::wordsPerShard() const
{
    const size_t words_per_row = bank.interleaveDegree;
    return banksPerShard * bank.dataRows * words_per_row;
}

ServiceCounters &
ServiceCounters::operator+=(const ServiceCounters &o)
{
    requests += o.requests;
    reads += o.reads;
    writes += o.writes;
    rbwAbsorbed += o.rbwAbsorbed;
    rbwCharged += o.rbwCharged;
    portDelay += o.portDelay;
    corrected += o.corrected;
    due += o.due;
    sdc += o.sdc;
    recoveries += o.recoveries;
    recoveryRowReads += o.recoveryRowReads;
    scrubSteps += o.scrubSteps;
    scrubRepairs += o.scrubRepairs;
    scrubDue += o.scrubDue;
    faultEvents += o.faultEvents;
    return *this;
}

double
ServiceReport::throughputPerKTick() const
{
    return ticks == 0 ? 0.0
                      : 1000.0 * double(total.counters.requests) /
                            double(ticks);
}

CacheService::CacheService(const ServiceConfig &config) : cfg(config)
{
    if (cfg.shards == 0)
        throw std::invalid_argument("CacheService: zero shards");
    if (cfg.banksPerShard == 0)
        throw std::invalid_argument("CacheService: zero banks per shard");
    if (cfg.ports == 0)
        throw std::invalid_argument("CacheService: zero ports");
}

namespace
{

/**
 * One shard's serving loop: its own store, port scheduler, scrub
 * cursor, and RNG streams. Everything here is a pure function of
 * (cfg, shard index, the shard's request subsequence).
 */
class ShardWorker
{
  public:
    ShardWorker(const ServiceConfig &cfg, size_t shard)
        : cfg(cfg), store(cfg.bank, cfg.banksPerShard),
          sched(cfg.ports, cfg.stealWindow),
          shardBase(shardSeed(cfg.seed, shard)),
          golden(store.totalWords(), 0),
          written(store.totalWords(), 0)
    {
    }

    void
    serveOne(const ServiceRequest &req, RequestOutcome *outcome)
    {
        // Ticks clamp forward: the port model is monotonic.
        const uint64_t t = std::max(req.tick, clock);
        runBackgroundUpTo(t);
        sched.advanceTo(t);
        clock = t;

        ++rep.counters.requests;
        uint64_t latency = 0;
        RequestOutcome out;
        const size_t local = req.address / cfg.shards;
        if (req.op == RequestOp::kRead) {
            ++rep.counters.reads;
            const unsigned delay = sched.issueDemand();
            rep.counters.portDelay += delay;
            uint64_t sweep_reads = 0;
            const AccessResult res = readTracked(local, sweep_reads);
            rep.counters.recoveryRowReads += sweep_reads;
            latency = cfg.readLatency + delay + sweep_reads;

            out.status = res.status;
            if (!res.ok()) {
                ++rep.counters.due;
            } else {
                const BitVector expected =
                    written[local] ? expandValue(golden[local],
                                                 store.dataBits())
                                   : BitVector(store.dataBits());
                if (res.data != expected) {
                    out.silent = true;
                    ++rep.counters.sdc;
                } else if (res.status == DecodeStatus::kCorrected ||
                           sweep_reads != 0) {
                    ++rep.counters.corrected;
                }
            }
        } else {
            ++rep.counters.writes;
            // The 2D write is a read-before-write: the read half
            // steals an idle slot when one is in the window, else it
            // charges a demand slot; the write half always queues.
            if (sched.issueStolenRead() == 0)
                ++rep.counters.rbwAbsorbed;
            else
                ++rep.counters.rbwCharged;
            const unsigned delay = sched.issueDemand();
            rep.counters.portDelay += delay;
            latency = cfg.writeLatency + delay;
            store.writeWord(local, expandValue(req.value,
                                               store.dataBits()));
            golden[local] = req.value;
            written[local] = 1;
        }
        rep.latency.add(latency);
        if (outcome) {
            out.latency = uint32_t(std::min<uint64_t>(latency,
                                                      0xffffffffULL));
            *outcome = out;
        }
    }

    ShardServiceReport
    finish()
    {
        rep.store = store.aggregateStats();
        return std::move(rep);
    }

  private:
    /** Read local word @p local, tracking recovery-sweep row reads. */
    AccessResult
    readTracked(size_t local, uint64_t &sweep_reads)
    {
        TwoDimArray &bank = store.bank(store.bankOf(local));
        const uint64_t before = bank.stats().recoveries;
        const AccessResult res = store.readWord(local);
        if (bank.stats().recoveries != before) {
            ++rep.counters.recoveries;
            sweep_reads = bank.lastRecovery().rowReads;
        }
        return res;
    }

    /** Fire every scrub/injection event scheduled at or before @p t. */
    void
    runBackgroundUpTo(uint64_t t)
    {
        // Merge the two periodic schedules in tick order; on a tie the
        // scrub step runs before the fault event (fixed, documented
        // order — determinism does not depend on the tie rule, only on
        // its consistency).
        while (true) {
            const uint64_t scrub_at =
                cfg.scrubInterval == 0
                    ? UINT64_MAX
                    : (scrubSteps + 1) * cfg.scrubInterval;
            const uint64_t fault_at =
                cfg.faultInterval == 0
                    ? UINT64_MAX
                    : (faultEvents + 1) * cfg.faultInterval;
            if (scrub_at > t && fault_at > t)
                return;
            if (scrub_at <= fault_at)
                scrubStep(scrub_at);
            else
                faultEvent(fault_at);
        }
    }

    /** Scrub one row (round-robin over banks x rows) at @p tick. */
    void
    scrubStep(uint64_t tick)
    {
        sched.advanceTo(std::max(tick, clock));
        clock = std::max(tick, clock);
        ++scrubSteps;
        ++rep.counters.scrubSteps;

        const size_t rows = cfg.bank.dataRows;
        const size_t slots = store.bank(0).wordsPerRow();
        const size_t global_row =
            (scrubSteps - 1) % (cfg.banksPerShard * rows);
        const size_t bank = global_row / rows;
        const size_t row = global_row % rows;
        for (size_t slot = 0; slot < slots; ++slot) {
            // Background reads compete for ports like stolen RBW
            // reads: free when an idle slot is in the window.
            sched.issueStolenRead();
            const size_t local = (row * slots + slot) * cfg.banksPerShard
                                 + bank;
            uint64_t sweep_reads = 0;
            const AccessResult res = readTracked(local, sweep_reads);
            if (!res.ok())
                ++rep.counters.scrubDue;
            else if (res.status == DecodeStatus::kCorrected ||
                     sweep_reads != 0)
                ++rep.counters.scrubRepairs;
        }
    }

    /** Inject one online fault event at @p tick. */
    void
    faultEvent(uint64_t tick)
    {
        sched.advanceTo(std::max(tick, clock));
        clock = std::max(tick, clock);
        // Event k draws from the injection-domain stream of this
        // shard's base — never colliding with scrub or workload
        // streams of the same campaign seed.
        Rng rng(shardSeed(shardBase, kSeedDomainInjection, faultEvents));
        ++faultEvents;
        ++rep.counters.faultEvents;
        FaultInjector inj(rng);
        const size_t bank = size_t(rng.nextBelow(cfg.banksPerShard));
        inj.inject(store.bank(bank).cells(), cfg.fault);
    }

    const ServiceConfig &cfg;
    TwoDimCacheStore store;
    PortScheduler sched;
    uint64_t shardBase;
    uint64_t clock = 0;
    uint64_t scrubSteps = 0;
    uint64_t faultEvents = 0;
    std::vector<uint64_t> golden;
    std::vector<char> written;
    ShardServiceReport rep;
};

} // namespace

ServiceReport
CacheService::serve(const std::vector<ServiceRequest> &requests) const
{
    // Validate every address up front so a bad stream leaves nothing
    // half-served.
    const size_t words = cfg.totalWords();
    for (size_t i = 0; i < requests.size(); ++i) {
        if (requests[i].address >= words)
            throw std::out_of_range(
                "CacheService::serve: request " + std::to_string(i) +
                " address " + std::to_string(requests[i].address) +
                " >= " + std::to_string(words));
    }

    // Partition by address, preserving arrival order per shard.
    std::vector<std::vector<size_t>> byShard(cfg.shards);
    for (size_t i = 0; i < requests.size(); ++i)
        byShard[requests[i].address % cfg.shards].push_back(i);

    ServiceReport report;
    report.shards.resize(cfg.shards);
    if (cfg.recordOutcomes)
        report.outcomes.resize(requests.size());

    // Each shard writes only its own report slot and its own outcome
    // slots, so the sweep is bit-identical at any pool size.
    parallelFor(cfg.shards, [&](size_t s) {
        ShardWorker worker(cfg, s);
        for (size_t i : byShard[s])
            worker.serveOne(requests[i], cfg.recordOutcomes
                                             ? &report.outcomes[i]
                                             : nullptr);
        report.shards[s] = worker.finish();
    });

    for (const ShardServiceReport &shard : report.shards) {
        report.total.counters += shard.counters;
        report.total.latency += shard.latency;
        report.total.store += shard.store;
    }
    for (const ServiceRequest &r : requests)
        report.ticks = std::max(report.ticks, r.tick + 1);
    return report;
}

namespace
{

std::string
stealPct(const ServiceCounters &c)
{
    const uint64_t total = c.rbwAbsorbed + c.rbwCharged;
    return total == 0
               ? "-"
               : Table::pct(double(c.rbwAbsorbed) / double(total));
}

} // namespace

Table
serviceLatencyTable(const ServiceReport &report)
{
    Table t({"Shard", "Requests", "Reads", "Writes", "RBW stolen",
             "RBW charged", "Steal%", "p50", "p99", "p999", "max",
             "mean", "req/ktick"});
    const auto row = [&](const std::string &label,
                         const ShardServiceReport &r) {
        const double ktick =
            report.ticks == 0 ? 0.0
                              : 1000.0 * double(r.counters.requests) /
                                    double(report.ticks);
        t.addRow({label, std::to_string(r.counters.requests),
                  std::to_string(r.counters.reads),
                  std::to_string(r.counters.writes),
                  std::to_string(r.counters.rbwAbsorbed),
                  std::to_string(r.counters.rbwCharged),
                  stealPct(r.counters),
                  std::to_string(r.latency.p50()),
                  std::to_string(r.latency.p99()),
                  std::to_string(r.latency.p999()),
                  std::to_string(r.latency.max()),
                  Table::num(r.latency.mean(), 2),
                  Table::num(ktick, 1)});
    };
    for (size_t s = 0; s < report.shards.size(); ++s)
        row(std::to_string(s), report.shards[s]);
    row("all", report.total);
    return t;
}

Table
serviceReliabilityTable(const ServiceReport &report)
{
    Table t({"Shard", "Corrected", "DUE", "SDC", "Sweeps", "SweepReads",
             "ScrubSteps", "ScrubFix", "ScrubDUE", "Faults",
             "InlineFix", "RBW reads"});
    const auto row = [&](const std::string &label,
                         const ShardServiceReport &r) {
        t.addRow({label, std::to_string(r.counters.corrected),
                  std::to_string(r.counters.due),
                  std::to_string(r.counters.sdc),
                  std::to_string(r.counters.recoveries),
                  std::to_string(r.counters.recoveryRowReads),
                  std::to_string(r.counters.scrubSteps),
                  std::to_string(r.counters.scrubRepairs),
                  std::to_string(r.counters.scrubDue),
                  std::to_string(r.counters.faultEvents),
                  std::to_string(r.store.inlineCorrections),
                  std::to_string(r.store.readBeforeWrites)});
    };
    for (size_t s = 0; s < report.shards.size(); ++s)
        row(std::to_string(s), report.shards[s]);
    row("all", report.total);
    return t;
}

} // namespace tdc
