/**
 * @file
 * The request-stream front end of the study: a sharded cache service
 * that serves millions of timestamped read/write requests against
 * TwoDimCacheStore shards, with the paper's read-before-write port
 * stealing and asynchronous background scrub + fault arrival competing
 * for port slots under live traffic — reporting throughput and
 * p50/p99/p999 latency next to the reliability verdicts
 * (corrected / DUE / SDC).
 *
 * Sharding and determinism: requests partition by address (shard =
 * address mod shards); each shard owns its own store, port scheduler,
 * histogram, and counter-based RNG streams, and shards run over the
 * common/parallel worker pool. Every per-shard outcome is a pure
 * function of (config, that shard's request subsequence), and shard
 * reports merge in ascending shard order — so the full report is
 * bit-identical at any TDC_THREADS setting.
 */

#ifndef TDC_SERVICE_CACHE_SERVICE_HH
#define TDC_SERVICE_CACHE_SERVICE_HH

#include <cstdint>
#include <vector>

#include "array/fault.hh"
#include "common/table.hh"
#include "core/twod_cache_store.hh"
#include "service/latency_histogram.hh"
#include "service/request.hh"

namespace tdc
{

/** Configuration of one cache-service instance. */
struct ServiceConfig
{
    /** Per-bank 2D protection (the --scheme 2d:... axis). */
    TwoDimConfig bank = TwoDimConfig::l1Default();

    size_t banksPerShard = 4;
    size_t shards = 4;

    /** Port slots per cycle per shard. */
    unsigned ports = 1;

    /** Idle-slot window the RBW read may steal from (0 disables). */
    unsigned stealWindow = 8;

    /**
     * Ticks between background scrub steps (one row readback per
     * step, walking banks round-robin); 0 disables scrubbing. Scrub
     * reads ride idle port slots like stolen RBW reads.
     */
    uint64_t scrubInterval = 0;

    /** Ticks between injected fault events; 0 disables injection. */
    uint64_t faultInterval = 0;

    /** Fault model of the online events (the --fault axis). */
    FaultModel fault = FaultModel::singleBit();

    /** Base seed; every stream derives via domain-separated shards. */
    uint64_t seed = 12345;

    /** Base access latencies in cycles (before queueing/recovery). */
    unsigned readLatency = 2;
    unsigned writeLatency = 2;

    /** Record a per-request outcome vector (latency + verdict). */
    bool recordOutcomes = false;

    /** Flat words one shard serves. */
    size_t wordsPerShard() const;

    /** Flat words of the whole service (the request address space). */
    size_t totalWords() const { return shards * wordsPerShard(); }
};

/** Per-request result (recorded when ServiceConfig::recordOutcomes). */
struct RequestOutcome
{
    uint32_t latency = 0;             ///< cycles, queueing included
    DecodeStatus status = DecodeStatus::kClean;
    bool silent = false;              ///< read returned wrong data unflagged

    bool operator==(const RequestOutcome &) const = default;
};

/** Scalar service counters (merged field-wise, shard order). */
struct ServiceCounters
{
    uint64_t requests = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t rbwAbsorbed = 0;  ///< RBW reads hidden by port stealing
    uint64_t rbwCharged = 0;   ///< RBW reads that cost a demand slot
    uint64_t portDelay = 0;    ///< summed queueing delay, cycles
    uint64_t corrected = 0;    ///< reads repaired (in-line or sweep)
    uint64_t due = 0;          ///< detected-uncorrectable reads
    uint64_t sdc = 0;          ///< silently wrong reads
    uint64_t recoveries = 0;   ///< demand-read-triggered sweeps
    uint64_t recoveryRowReads = 0; ///< latency charged to those sweeps
    uint64_t scrubSteps = 0;
    uint64_t scrubRepairs = 0; ///< scrub reads that fixed something
    uint64_t scrubDue = 0;     ///< scrub reads left uncorrectable
    uint64_t faultEvents = 0;

    ServiceCounters &operator+=(const ServiceCounters &o);
    bool operator==(const ServiceCounters &) const = default;
};

/** One shard's slice of the report. */
struct ShardServiceReport
{
    ServiceCounters counters;
    LatencyHistogram latency;
    TwoDimStats store; ///< aggregated bank stats of the shard's store

    bool operator==(const ShardServiceReport &) const = default;
};

/** Full service run outcome. */
struct ServiceReport
{
    std::vector<ShardServiceReport> shards; ///< ascending shard order
    ShardServiceReport total;               ///< merged in shard order
    uint64_t ticks = 0;                     ///< simulated duration
    std::vector<RequestOutcome> outcomes;   ///< per input request, opt.

    /** Served requests per 1000 simulated cycles. */
    double throughputPerKTick() const;

    bool operator==(const ServiceReport &) const = default;
};

/**
 * The concurrent cache service. Construction validates the config
 * (throws std::invalid_argument on zero shards/banks/ports); serve()
 * validates addresses (throws std::out_of_range on any address >=
 * totalWords(), store untouched) and requires per-shard ticks to be
 * served in non-decreasing order (earlier ticks clamp forward).
 */
class CacheService
{
  public:
    explicit CacheService(const ServiceConfig &config);

    const ServiceConfig &config() const { return cfg; }

    /** Serve @p requests (arrival order; ticks non-decreasing). */
    ServiceReport serve(const std::vector<ServiceRequest> &requests) const;

  private:
    ServiceConfig cfg;
};

/** Per-shard latency/throughput table ("all" row last). */
Table serviceLatencyTable(const ServiceReport &report);

/** Per-shard reliability table ("all" row last). */
Table serviceReliabilityTable(const ServiceReport &report);

} // namespace tdc

#endif // TDC_SERVICE_CACHE_SERVICE_HH
