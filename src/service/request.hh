/**
 * @file
 * The request-level workload unit of the cache service: one timestamped
 * read or write aimed at a flat word address, plus the replayable
 * binary trace format (recorder/loader) that pins a stream of them to
 * disk byte-for-byte.
 */

#ifndef TDC_SERVICE_REQUEST_HH
#define TDC_SERVICE_REQUEST_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/bit_vector.hh"

namespace tdc
{

/** Request kind. */
enum class RequestOp : uint8_t
{
    kRead = 0,
    kWrite = 1,
};

/**
 * One timestamped cache-service request. Addresses are flat word
 * indices into the served store; write payloads are carried as a
 * 64-bit value seed expanded to the store's word width by
 * expandValue(), so a request is 25 bytes on the wire regardless of
 * word size.
 */
struct ServiceRequest
{
    uint64_t tick = 0;    ///< arrival time, cycles
    RequestOp op = RequestOp::kRead;
    uint64_t address = 0; ///< flat word index
    uint64_t value = 0;   ///< write payload seed (ignored for reads)

    bool operator==(const ServiceRequest &) const = default;
};

/**
 * Expand a 64-bit payload seed to a @p bits -wide stored word. The
 * expansion is a pure function of (value, bits), so golden models and
 * the store agree on every byte without shipping wide payloads.
 */
BitVector expandValue(uint64_t value, size_t bits);

/**
 * Binary trace format, version 1: a 16-byte header ("TDCTRACE",
 * version u32, count u32) followed by one packed little-endian record
 * per request (tick u64, op u8, address u64, value u64 = 25 bytes).
 * Fixed little-endian byte order makes recorded traces portable and
 * the round trip byte-identical.
 */

/** Write @p requests to @p path. @throws std::runtime_error on I/O. */
void writeTrace(const std::string &path,
                const std::vector<ServiceRequest> &requests);

/** Serialize to a stream (the writeTrace backend). */
void writeTrace(std::ostream &out,
                const std::vector<ServiceRequest> &requests);

/**
 * Load a recorded trace. @throws std::runtime_error when the file is
 * unreadable, and std::invalid_argument (offending detail quoted) on a
 * bad magic, unsupported version, truncated body, or malformed record.
 */
std::vector<ServiceRequest> readTrace(const std::string &path);

/** Deserialize from a stream (the readTrace backend). */
std::vector<ServiceRequest> readTrace(std::istream &in);

} // namespace tdc

#endif // TDC_SERVICE_REQUEST_HH
