#include "common/bit_vector.hh"

#include <bit>

namespace tdc
{

BitVector::BitVector(size_t nbits)
    : numBits(nbits), wordStore((nbits + bitsPerWord - 1) / bitsPerWord, 0)
{
}

BitVector::BitVector(size_t nbits, uint64_t value)
    : BitVector(nbits)
{
    if (!wordStore.empty()) {
        wordStore[0] = value;
        trimTopWord();
    }
}

void
BitVector::trimTopWord()
{
    const size_t rem = numBits % bitsPerWord;
    if (rem != 0 && !wordStore.empty())
        wordStore.back() &= (uint64_t(1) << rem) - 1;
}

bool
BitVector::get(size_t pos) const
{
    assert(pos < numBits);
    return (wordStore[pos / bitsPerWord] >> (pos % bitsPerWord)) & 1;
}

void
BitVector::set(size_t pos, bool value)
{
    assert(pos < numBits);
    const uint64_t mask = uint64_t(1) << (pos % bitsPerWord);
    if (value)
        wordStore[pos / bitsPerWord] |= mask;
    else
        wordStore[pos / bitsPerWord] &= ~mask;
}

void
BitVector::flip(size_t pos)
{
    assert(pos < numBits);
    wordStore[pos / bitsPerWord] ^= uint64_t(1) << (pos % bitsPerWord);
}

void
BitVector::clear()
{
    std::fill(wordStore.begin(), wordStore.end(), 0);
}

bool
BitVector::none() const
{
    for (uint64_t w : wordStore)
        if (w != 0)
            return false;
    return true;
}

size_t
BitVector::popcount() const
{
    size_t count = 0;
    for (uint64_t w : wordStore)
        count += std::popcount(w);
    return count;
}

size_t
BitVector::findFirst() const
{
    for (size_t i = 0; i < wordStore.size(); ++i) {
        if (wordStore[i] != 0)
            return i * bitsPerWord + std::countr_zero(wordStore[i]);
    }
    return numBits;
}

size_t
BitVector::findLast() const
{
    for (size_t i = wordStore.size(); i-- > 0;) {
        if (wordStore[i] != 0)
            return i * bitsPerWord + 63 - std::countl_zero(wordStore[i]);
    }
    return numBits;
}

BitVector &
BitVector::operator^=(const BitVector &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0; i < wordStore.size(); ++i)
        wordStore[i] ^= other.wordStore[i];
    return *this;
}

BitVector &
BitVector::operator&=(const BitVector &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0; i < wordStore.size(); ++i)
        wordStore[i] &= other.wordStore[i];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0; i < wordStore.size(); ++i)
        wordStore[i] |= other.wordStore[i];
    return *this;
}

BitVector
BitVector::operator^(const BitVector &other) const
{
    BitVector out(*this);
    out ^= other;
    return out;
}

BitVector
BitVector::operator&(const BitVector &other) const
{
    BitVector out(*this);
    out &= other;
    return out;
}

BitVector
BitVector::operator|(const BitVector &other) const
{
    BitVector out(*this);
    out |= other;
    return out;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return numBits == other.numBits && wordStore == other.wordStore;
}

BitVector
BitVector::slice(size_t pos, size_t len) const
{
    assert(pos + len <= numBits);
    BitVector out(len);
    // Word-at-a-time copy with a bit offset.
    const size_t shift = pos % bitsPerWord;
    size_t src = pos / bitsPerWord;
    for (size_t dst = 0; dst < out.wordStore.size(); ++dst, ++src) {
        uint64_t w = wordStore[src] >> shift;
        if (shift != 0 && src + 1 < wordStore.size())
            w |= wordStore[src + 1] << (bitsPerWord - shift);
        out.wordStore[dst] = w;
    }
    out.trimTopWord();
    return out;
}

void
BitVector::setSlice(size_t pos, const BitVector &src)
{
    assert(pos + src.numBits <= numBits);
    for (size_t i = 0; i < src.numBits; ++i)
        set(pos + i, src.get(i));
}

void
BitVector::append(const BitVector &other)
{
    const size_t old = numBits;
    numBits += other.numBits;
    wordStore.resize((numBits + bitsPerWord - 1) / bitsPerWord, 0);
    for (size_t i = 0; i < other.numBits; ++i)
        set(old + i, other.get(i));
}

void
BitVector::pushBack(bool bit)
{
    ++numBits;
    wordStore.resize((numBits + bitsPerWord - 1) / bitsPerWord, 0);
    set(numBits - 1, bit);
}

uint64_t
BitVector::toUint64(size_t pos, size_t len) const
{
    assert(pos <= numBits);
    len = std::min(len, numBits - pos);
    assert(len <= 64);
    uint64_t out = 0;
    for (size_t i = 0; i < len; ++i)
        out |= uint64_t(get(pos + i)) << i;
    return out;
}

bool
BitVector::parity() const
{
    uint64_t acc = 0;
    for (uint64_t w : wordStore)
        acc ^= w;
    return std::popcount(acc) & 1;
}

std::string
BitVector::toString() const
{
    std::string out;
    out.reserve(numBits);
    for (size_t i = 0; i < numBits; ++i)
        out.push_back(get(i) ? '1' : '0');
    return out;
}

} // namespace tdc
