#include "common/bit_vector.hh"

#include <algorithm>
#include <bit>

namespace tdc
{

BitVector::BitVector(size_t nbits)
    : numBits(nbits)
{
    const size_t w = wordCount();
    if (w > inlineWords) {
        wordPtr = new uint64_t[w];
        capWords = w;
    }
    std::fill_n(wordPtr, w, 0);
}

BitVector::BitVector(size_t nbits, uint64_t value)
    : BitVector(nbits)
{
    if (numBits != 0) {
        wordPtr[0] = value;
        trimTopWord();
    }
}

BitVector::BitVector(const BitVector &other)
    : numBits(other.numBits)
{
    const size_t w = wordCount();
    if (w > inlineWords) {
        wordPtr = new uint64_t[w];
        capWords = w;
    }
    std::copy_n(other.wordPtr, w, wordPtr);
}

BitVector::BitVector(BitVector &&other) noexcept
    : numBits(other.numBits)
{
    if (other.wordPtr != other.inlineStore) {
        wordPtr = other.wordPtr;
        capWords = other.capWords;
        other.wordPtr = other.inlineStore;
        other.capWords = inlineWords;
    } else {
        std::copy_n(other.inlineStore, wordCount(), inlineStore);
    }
    other.numBits = 0;
}

BitVector &
BitVector::operator=(const BitVector &other)
{
    if (this == &other)
        return *this;
    numBits = other.numBits;
    reserveWords(wordCount(), 0);
    std::copy_n(other.wordPtr, wordCount(), wordPtr);
    return *this;
}

BitVector &
BitVector::operator=(BitVector &&other) noexcept
{
    if (this == &other)
        return *this;
    if (other.wordPtr != other.inlineStore) {
        release();
        wordPtr = other.wordPtr;
        capWords = other.capWords;
        numBits = other.numBits;
        other.wordPtr = other.inlineStore;
        other.capWords = inlineWords;
    } else {
        // Inline source: plain copy (capacity here is always enough).
        numBits = other.numBits;
        std::copy_n(other.inlineStore, wordCount(), wordPtr);
    }
    other.numBits = 0;
    return *this;
}

void
BitVector::reserveWords(size_t words, size_t preserveWords)
{
    if (words <= capWords)
        return;
    const size_t newCap = std::max(words, capWords * 2);
    uint64_t *fresh = new uint64_t[newCap];
    std::copy_n(wordPtr, preserveWords, fresh);
    release();
    wordPtr = fresh;
    capWords = newCap;
}

void
BitVector::trimTopWord()
{
    const size_t rem = numBits % bitsPerWord;
    if (rem != 0)
        wordPtr[wordCount() - 1] &= (uint64_t(1) << rem) - 1;
}

bool
BitVector::get(size_t pos) const
{
    assert(pos < numBits);
    return (wordPtr[pos / bitsPerWord] >> (pos % bitsPerWord)) & 1;
}

void
BitVector::set(size_t pos, bool value)
{
    assert(pos < numBits);
    const uint64_t mask = uint64_t(1) << (pos % bitsPerWord);
    if (value)
        wordPtr[pos / bitsPerWord] |= mask;
    else
        wordPtr[pos / bitsPerWord] &= ~mask;
}

void
BitVector::flip(size_t pos)
{
    assert(pos < numBits);
    wordPtr[pos / bitsPerWord] ^= uint64_t(1) << (pos % bitsPerWord);
}

void
BitVector::clear()
{
    std::fill_n(wordPtr, wordCount(), 0);
}

bool
BitVector::none() const
{
    for (size_t i = 0, n = wordCount(); i < n; ++i)
        if (wordPtr[i] != 0)
            return false;
    return true;
}

size_t
BitVector::popcount() const
{
    size_t count = 0;
    for (size_t i = 0, n = wordCount(); i < n; ++i)
        count += std::popcount(wordPtr[i]);
    return count;
}

size_t
BitVector::findFirst() const
{
    for (size_t i = 0, n = wordCount(); i < n; ++i) {
        if (wordPtr[i] != 0)
            return i * bitsPerWord + std::countr_zero(wordPtr[i]);
    }
    return numBits;
}

size_t
BitVector::findLast() const
{
    for (size_t i = wordCount(); i-- > 0;) {
        if (wordPtr[i] != 0)
            return i * bitsPerWord + 63 - std::countl_zero(wordPtr[i]);
    }
    return numBits;
}

BitVector &
BitVector::operator^=(const BitVector &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0, n = wordCount(); i < n; ++i)
        wordPtr[i] ^= other.wordPtr[i];
    return *this;
}

BitVector &
BitVector::operator&=(const BitVector &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0, n = wordCount(); i < n; ++i)
        wordPtr[i] &= other.wordPtr[i];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &other)
{
    assert(numBits == other.numBits);
    for (size_t i = 0, n = wordCount(); i < n; ++i)
        wordPtr[i] |= other.wordPtr[i];
    return *this;
}

BitVector
BitVector::operator^(const BitVector &other) const
{
    BitVector out(*this);
    out ^= other;
    return out;
}

BitVector
BitVector::operator&(const BitVector &other) const
{
    BitVector out(*this);
    out &= other;
    return out;
}

BitVector
BitVector::operator|(const BitVector &other) const
{
    BitVector out(*this);
    out |= other;
    return out;
}

bool
BitVector::operator==(const BitVector &other) const
{
    if (numBits != other.numBits)
        return false;
    return std::equal(wordPtr, wordPtr + wordCount(), other.wordPtr);
}

BitVector
BitVector::slice(size_t pos, size_t len) const
{
    assert(pos + len <= numBits);
    BitVector out(len);
    // Word-at-a-time copy with a bit offset.
    const size_t shift = pos % bitsPerWord;
    size_t src = pos / bitsPerWord;
    for (size_t dst = 0, n = out.wordCount(); dst < n; ++dst, ++src) {
        uint64_t w = wordPtr[src] >> shift;
        if (shift != 0 && src + 1 < wordCount())
            w |= wordPtr[src + 1] << (bitsPerWord - shift);
        out.wordPtr[dst] = w;
    }
    out.trimTopWord();
    return out;
}

void
BitVector::setSlice(size_t pos, const BitVector &src)
{
    assert(pos + src.numBits <= numBits);
    // Word-at-a-time deposit: each source word lands across at most
    // two destination words.
    for (size_t i = 0, n = src.wordCount(); i < n; ++i) {
        const size_t len = std::min(src.numBits - i * bitsPerWord,
                                    bitsPerWord);
        setBits(pos + i * bitsPerWord, src.wordPtr[i], len);
    }
}

void
BitVector::setBits(size_t pos, uint64_t value, size_t len)
{
    assert(pos <= numBits);
    len = std::min(len, numBits - pos);
    if (len == 0)
        return;
    assert(len <= bitsPerWord);
    const uint64_t mask =
        len == bitsPerWord ? ~uint64_t(0) : (uint64_t(1) << len) - 1;
    value &= mask;
    const size_t w = pos / bitsPerWord;
    const size_t off = pos % bitsPerWord;
    wordPtr[w] = (wordPtr[w] & ~(mask << off)) | (value << off);
    if (off + len > bitsPerWord) {
        const size_t spill = bitsPerWord - off;
        wordPtr[w + 1] =
            (wordPtr[w + 1] & ~(mask >> spill)) | (value >> spill);
    }
}

void
BitVector::append(const BitVector &other)
{
    assert(this != &other);
    const size_t old = numBits;
    const size_t oldWords = wordCount();
    numBits += other.numBits;
    reserveWords(wordCount(), oldWords);
    std::fill(wordPtr + oldWords, wordPtr + wordCount(), 0);
    setSlice(old, other);
}

void
BitVector::pushBack(bool bit)
{
    const size_t oldWords = wordCount();
    ++numBits;
    reserveWords(wordCount(), oldWords);
    if (wordCount() > oldWords)
        wordPtr[wordCount() - 1] = 0;
    set(numBits - 1, bit);
}

uint64_t
BitVector::toUint64(size_t pos, size_t len) const
{
    assert(pos <= numBits);
    len = std::min(len, numBits - pos);
    assert(len <= 64);
    if (len == 0)
        return 0;
    const size_t w = pos / bitsPerWord;
    const size_t off = pos % bitsPerWord;
    uint64_t out = wordPtr[w] >> off;
    if (off != 0 && w + 1 < wordCount())
        out |= wordPtr[w + 1] << (bitsPerWord - off);
    if (len < bitsPerWord)
        out &= (uint64_t(1) << len) - 1;
    return out;
}

bool
BitVector::parity() const
{
    uint64_t acc = 0;
    for (size_t i = 0, n = wordCount(); i < n; ++i)
        acc ^= wordPtr[i];
    return std::popcount(acc) & 1;
}

std::string
BitVector::toString() const
{
    std::string out;
    out.reserve(numBits);
    for (size_t i = 0; i < numBits; ++i)
        out.push_back(get(i) ? '1' : '0');
    return out;
}

} // namespace tdc
