/**
 * @file
 * Small statistics helpers shared by the simulators and benches.
 */

#ifndef TDC_COMMON_STATS_HH
#define TDC_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tdc
{

/**
 * Streaming accumulator for mean / variance / extrema (Welford).
 */
class RunningStat
{
  public:
    void add(double x);

    size_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Named scalar counters, in insertion order, for simulator stat dumps.
 */
class StatGroup
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set counter @p name. */
    void set(const std::string &name, uint64_t value);

    /** Read counter @p name (0 if absent). */
    uint64_t get(const std::string &name) const;

    /** All counters in insertion order. */
    const std::vector<std::pair<std::string, uint64_t>> &entries() const
    {
        return ordered;
    }

    /** Reset every counter to zero. */
    void clear();

  private:
    std::map<std::string, size_t> index;
    std::vector<std::pair<std::string, uint64_t>> ordered;
};

} // namespace tdc

#endif // TDC_COMMON_STATS_HH
