/**
 * @file
 * Minimal worker-pool parallel-for for the simulation sweeps.
 *
 * The Monte-Carlo drivers (recovery sweeps, yield/soft-error trials,
 * CMP simulation batches) are embarrassingly parallel across trials.
 * This utility shards such loops over a small persistent thread pool
 * with no external dependencies. Determinism is the caller's contract:
 * every iteration writes only its own slot (and derives any randomness
 * from shardSeed), so results are bit-identical at any thread count.
 */

#ifndef TDC_COMMON_PARALLEL_HH
#define TDC_COMMON_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>

namespace tdc
{

/**
 * Worker threads parallelFor may use, including the calling thread.
 * Defaults to the TDC_THREADS environment variable when set (clamped
 * to >= 1), else the hardware concurrency.
 */
unsigned parallelThreads();

/** Override the thread count; 0 restores the default. */
void setParallelThreads(unsigned n);

/**
 * Invoke body(i) for every i in [0, n), distributing iterations over
 * the pool. The calling thread participates; the call returns after
 * every iteration completed. The first exception thrown by any
 * iteration is rethrown here (remaining iterations are abandoned).
 *
 * Iterations must be independent: they run in unspecified order on
 * unspecified threads. Nested calls from inside a body run serially
 * on the calling worker. Bodies that need per-iteration randomness
 * must derive it from shardSeed(seed, i), never from shared state.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &body);

/**
 * Counter-based RNG stream derivation: a SplitMix64-style mix of a
 * base seed and a shard index. Adjacent shards get statistically
 * independent streams, and the mapping depends only on (base, shard),
 * never on execution order — the determinism anchor for every
 * threaded sweep.
 */
uint64_t shardSeed(uint64_t base, uint64_t shard);

/**
 * Well-known stream domains for the three-argument shardSeed overload.
 * Two independent consumers of one campaign seed (say, fault-injection
 * events and background-scrub scheduling) that both count 0, 1, 2, ...
 * would collide stream-for-stream if they derived from the plain
 * two-argument shardSeed — every event i would see the very bytes
 * "random" scrub decision i saw. Each consumer class therefore names
 * its own domain and derives via shardSeed(base, domain, counter).
 */
inline constexpr uint64_t kSeedDomainInjection = 0x496e6a656374ULL;
inline constexpr uint64_t kSeedDomainScrub = 0x5363727562ULL;
inline constexpr uint64_t kSeedDomainService = 0x53657276696365ULL;
inline constexpr uint64_t kSeedDomainWorkload = 0x576f726b6c6fULL;
inline constexpr uint64_t kSeedDomainLifetime = 0x4c69666574696dULL;

/**
 * Domain-separated stream derivation: like shardSeed(base, shard) but
 * namespaced by @p domain, so counters in different domains never
 * collide even when they share @p base and @p shard. Use one of the
 * kSeedDomain* constants (or any fixed literal) per consumer class.
 */
uint64_t shardSeed(uint64_t base, uint64_t domain, uint64_t shard);

} // namespace tdc

#endif // TDC_COMMON_PARALLEL_HH
