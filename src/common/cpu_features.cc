#include "common/cpu_features.hh"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define TDC_X86 1
#include <cpuid.h>
#include <immintrin.h>
#else
#define TDC_X86 0
#endif

namespace tdc
{

namespace
{

#if TDC_X86

/** XCR0 via XGETBV: are the XMM+YMM states OS-enabled? */
__attribute__((target("xsave"))) bool
osSupportsAvx()
{
    // Only called after the caller confirmed OSXSAVE, so the
    // instruction itself is always executable.
    const uint64_t xcr0 = _xgetbv(0);
    return (xcr0 & 0x6) == 0x6; // SSE + AVX state
}

CpuFeatures
probe()
{
    CpuFeatures f;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    f.pclmul = (ecx >> 1) & 1;
    const bool osxsave = (ecx >> 27) & 1;
    const bool avx = (ecx >> 28) & 1;
    const bool ymm = osxsave && avx && osSupportsAvx();

    unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
        f.bmi2 = (ebx7 >> 8) & 1;
        f.avx2 = ymm && ((ebx7 >> 5) & 1);
        f.gfni = (ecx7 >> 8) & 1;
        f.vpclmul = ymm && ((ecx7 >> 10) & 1);
    }
    return f;
}

#else

CpuFeatures
probe()
{
    return {};
}

#endif // TDC_X86

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures features = probe();
    return features;
}

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::kScalar:
        return "scalar";
      case SimdBackend::kBmi2:
        return "bmi2";
      case SimdBackend::kAvx2:
        return "avx2";
    }
    return "scalar";
}

std::optional<SimdBackend>
parseSimdBackend(const std::string &name)
{
    if (name == "scalar")
        return SimdBackend::kScalar;
    if (name == "bmi2")
        return SimdBackend::kBmi2;
    if (name == "avx2")
        return SimdBackend::kAvx2;
    return std::nullopt;
}

SimdBackend
bestSimdBackend()
{
    const CpuFeatures &f = cpuFeatures();
    // The AVX2 tier layers on the BMI2 paths, so it requires both
    // feature bits (true of every AVX2-era core).
    if (f.avx2 && f.bmi2)
        return SimdBackend::kAvx2;
    if (f.bmi2)
        return SimdBackend::kBmi2;
    return SimdBackend::kScalar;
}

std::optional<SimdBackend>
requestedSimdBackend()
{
    const char *env = std::getenv("TDC_SIMD");
    if (env == nullptr)
        return std::nullopt;
    return parseSimdBackend(env);
}

SimdBackend
setSimdBackend(SimdBackend backend)
{
    const SimdBackend clamped = std::min(backend, bestSimdBackend());
    detail::simdBackendState.store(int(clamped), std::memory_order_relaxed);
    return clamped;
}

namespace detail
{

std::atomic<int> simdBackendState{-1};

SimdBackend
resolveSimdBackend()
{
    // Racing first calls all compute the same value; the store is
    // idempotent.
    const SimdBackend resolved =
        requestedSimdBackend().value_or(bestSimdBackend());
    return setSimdBackend(resolved);
}

} // namespace detail

namespace simd
{

#if TDC_X86

__attribute__((target("bmi2"))) uint64_t
pextBmi2(uint64_t x, uint64_t mask)
{
    return _pext_u64(x, mask);
}

__attribute__((target("bmi2"))) uint64_t
pdepBmi2(uint64_t x, uint64_t mask)
{
    return _pdep_u64(x, mask);
}

__attribute__((target("avx2"))) uint64_t
xorFoldAvx2(const uint64_t *words, size_t nwords)
{
    __m256i acc = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= nwords; i += 4) {
        acc = _mm256_xor_si256(
            acc,
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(words + i)));
    }
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    const __m128i x = _mm_xor_si128(lo, hi);
    uint64_t out = uint64_t(_mm_cvtsi128_si64(x)) ^
                   uint64_t(_mm_extract_epi64(x, 1));
    for (; i < nwords; ++i)
        out ^= words[i];
    return out;
}

#else

// Non-x86 stubs: the dispatcher never selects these tiers off x86
// (bestSimdBackend() == kScalar), but keep the symbols correct so a
// stray direct call cannot miscompute.

uint64_t
pextBmi2(uint64_t x, uint64_t mask)
{
    uint64_t out = 0;
    for (uint64_t bit = 1; mask != 0; mask &= mask - 1, bit <<= 1) {
        if (x & mask & -mask)
            out |= bit;
    }
    return out;
}

uint64_t
pdepBmi2(uint64_t x, uint64_t mask)
{
    uint64_t out = 0;
    for (uint64_t bit = 1; mask != 0; mask &= mask - 1, bit <<= 1) {
        if (x & bit)
            out |= mask & -mask;
    }
    return out;
}

uint64_t
xorFoldAvx2(const uint64_t *words, size_t nwords)
{
    uint64_t out = 0;
    for (size_t i = 0; i < nwords; ++i)
        out ^= words[i];
    return out;
}

#endif // TDC_X86

} // namespace simd

} // namespace tdc
