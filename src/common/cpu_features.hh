/**
 * @file
 * Runtime CPU feature probe and SIMD codec backend dispatch.
 *
 * The codec substrate keeps one scalar implementation per kernel (the
 * PR 2-3 word-parallel paths, retained as differential-test oracles)
 * and layers hardware fast paths behind the same APIs: BMI2
 * PEXT/PDEP for the interleave gather/scatter, AVX2 for the wide XOR
 * folds of the EDC and line codecs, and the unrolled table folds plus
 * the closed-form quartic BCH locator on any accelerated tier. Which
 * tier runs is decided once at startup from CPUID, overridable with
 * `TDC_SIMD=scalar|bmi2|avx2` (for CI matrices and reproducing the
 * scalar trajectory) or programmatically via setSimdBackend() (for
 * differential tests and benchmarks).
 *
 * Every backend is bit-identical by construction — campaign, figure
 * and service outputs must not depend on the backend (or on
 * TDC_THREADS); the suites under tests/common and tests/ecc enforce
 * it kernel by kernel.
 */

#ifndef TDC_COMMON_CPU_FEATURES_HH
#define TDC_COMMON_CPU_FEATURES_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace tdc
{

/** Instruction-set features the codec kernels can exploit. */
struct CpuFeatures
{
    bool bmi2 = false;    ///< PEXT/PDEP
    bool avx2 = false;    ///< 256-bit integer SIMD (and OS YMM state)
    bool gfni = false;    ///< GF(2^8) affine instructions (probed only)
    bool pclmul = false;  ///< carry-less multiply (probed only)
    bool vpclmul = false; ///< vectorized carry-less multiply (probed only)
};

/** Features of the machine we are running on (probed once). */
const CpuFeatures &cpuFeatures();

/**
 * Codec backend tiers, ordered: each tier includes the previous ones'
 * fast paths. kBmi2 turns on the PEXT/PDEP interleave paths, the
 * unrolled table folds and the deg-4 closed-form BCH locator; kAvx2
 * additionally vectorizes the wide XOR folds.
 */
enum class SimdBackend
{
    kScalar = 0,
    kBmi2 = 1,
    kAvx2 = 2,
};

/** Short lowercase name ("scalar", "bmi2", "avx2"). */
const char *simdBackendName(SimdBackend backend);

/** Parse a backend name; std::nullopt when unrecognized. */
std::optional<SimdBackend> parseSimdBackend(const std::string &name);

/** Highest tier this CPU supports. */
SimdBackend bestSimdBackend();

/**
 * The backend requested via TDC_SIMD, before clamping; std::nullopt
 * when the variable is unset or unrecognized (auto-dispatch).
 */
std::optional<SimdBackend> requestedSimdBackend();

/**
 * Select the backend for subsequent codec calls, clamped to what the
 * CPU supports; returns the backend actually in effect. Like
 * setParallelThreads this is a test/benchmark hook: call it only
 * between campaigns, not while worker threads are decoding.
 */
SimdBackend setSimdBackend(SimdBackend backend);

namespace detail
{
/** -1 = not resolved yet; otherwise a SimdBackend value. */
extern std::atomic<int> simdBackendState;
SimdBackend resolveSimdBackend();
} // namespace detail

/**
 * The backend in effect: TDC_SIMD when set to a valid name (clamped
 * to bestSimdBackend()), otherwise the best supported tier. Resolved
 * once, then a relaxed atomic load — cheap enough for per-call
 * dispatch in the word-level kernels.
 */
inline SimdBackend
activeSimdBackend()
{
    const int v = detail::simdBackendState.load(std::memory_order_relaxed);
    if (v >= 0)
        return SimdBackend(v);
    return detail::resolveSimdBackend();
}

/** True iff the BMI2 (or higher) fast paths are selected. */
inline bool
simdBmi2Active()
{
    return activeSimdBackend() >= SimdBackend::kBmi2;
}

/** True iff the AVX2 fast paths are selected. */
inline bool
simdAvx2Active()
{
    return activeSimdBackend() >= SimdBackend::kAvx2;
}

namespace simd
{

/**
 * Hardware kernels. Call only when the matching tier is active —
 * activeSimdBackend() never reports a tier the CPU cannot execute, so
 * the dispatch guards above are sufficient. (Off x86 they fall back
 * to slow software equivalents so a stray call is still correct.)
 */

/** BMI2 PEXT: gather the bits of @p x selected by @p mask. */
uint64_t pextBmi2(uint64_t x, uint64_t mask);

/** BMI2 PDEP: scatter the low bits of @p x to the @p mask positions. */
uint64_t pdepBmi2(uint64_t x, uint64_t mask);

/** AVX2 XOR fold of @p nwords 64-bit words (any alignment). */
uint64_t xorFoldAvx2(const uint64_t *words, size_t nwords);

} // namespace simd

/**
 * RAII guard for tests/benchmarks: forces a backend in its scope and
 * restores the previous one on destruction.
 */
class ScopedSimdBackend
{
  public:
    explicit ScopedSimdBackend(SimdBackend backend)
        : previous(activeSimdBackend())
    {
        setSimdBackend(backend);
    }
    ~ScopedSimdBackend() { setSimdBackend(previous); }

    ScopedSimdBackend(const ScopedSimdBackend &) = delete;
    ScopedSimdBackend &operator=(const ScopedSimdBackend &) = delete;

  private:
    SimdBackend previous;
};

} // namespace tdc

#endif // TDC_COMMON_CPU_FEATURES_HH
