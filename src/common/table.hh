/**
 * @file
 * Plain-text table rendering used by the bench harnesses to print the
 * rows/series of every reproduced paper table and figure.
 */

#ifndef TDC_COMMON_TABLE_HH
#define TDC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace tdc
{

/**
 * Column-aligned ASCII table. Cells are strings; helpers format
 * numbers. Rendered with a header rule, suitable for bench output.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row of pre-formatted cells (padded/truncated to fit). */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision fractional digits. */
    static std::string num(double value, int precision = 2);

    /** Format a value as a percentage ("12.5%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render the whole table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Header cells (for structured re-rendering, e.g. CSV/JSON). */
    const std::vector<std::string> &headers() const { return header; }

    /** Body rows as raw cells. */
    const std::vector<std::vector<std::string>> &data() const
    {
        return rows;
    }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace tdc

#endif // TDC_COMMON_TABLE_HH
