/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * A self-contained xoshiro256** implementation so that every experiment
 * in the repository is reproducible bit-for-bit across platforms and
 * standard-library versions (std::mt19937 distributions are not
 * portable across implementations).
 */

#ifndef TDC_COMMON_RNG_HH
#define TDC_COMMON_RNG_HH

#include <cstdint>

namespace tdc
{

/**
 * xoshiro256** generator with SplitMix64 seeding.
 *
 * All simulation components draw randomness through this class so a
 * single seed fully determines an experiment.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x2d2d2d2d5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0 */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p = 0.5);

    /** Exponentially distributed value with rate @p lambda. */
    double nextExponential(double lambda);

    /** Poisson-distributed count with mean @p mean (mean < ~700). */
    uint64_t nextPoisson(double mean);

    /** Standard normal via Box-Muller. */
    double nextGaussian();

  private:
    uint64_t state[4];
    bool haveSpareGaussian = false;
    double spareGaussian = 0.0;
};

} // namespace tdc

#endif // TDC_COMMON_RNG_HH
