#include "common/bit_matrix.hh"

#include <cassert>

namespace tdc
{

BitMatrix::BitMatrix(size_t rows, size_t cols)
    : numCols(cols), rowStore(rows, BitVector(cols))
{
}

bool
BitMatrix::get(size_t row, size_t col) const
{
    assert(row < rows() && col < numCols);
    return rowStore[row].get(col);
}

void
BitMatrix::set(size_t row, size_t col, bool value)
{
    assert(row < rows() && col < numCols);
    rowStore[row].set(col, value);
}

void
BitMatrix::flip(size_t row, size_t col)
{
    assert(row < rows() && col < numCols);
    rowStore[row].flip(col);
}

const BitVector &
BitMatrix::row(size_t r) const
{
    assert(r < rows());
    return rowStore[r];
}

BitVector &
BitMatrix::row(size_t r)
{
    assert(r < rows());
    return rowStore[r];
}

void
BitMatrix::setRow(size_t r, const BitVector &value)
{
    assert(r < rows());
    assert(value.size() == numCols);
    rowStore[r] = value;
}

BitVector
BitMatrix::column(size_t c) const
{
    assert(c < numCols);
    BitVector out(rows());
    for (size_t r = 0; r < rows(); ++r)
        out.set(r, rowStore[r].get(c));
    return out;
}

void
BitMatrix::setColumn(size_t c, const BitVector &value)
{
    assert(c < numCols);
    assert(value.size() == rows());
    for (size_t r = 0; r < rows(); ++r)
        rowStore[r].set(c, value.get(r));
}

void
BitMatrix::clear()
{
    for (auto &r : rowStore)
        r.clear();
}

size_t
BitMatrix::popcount() const
{
    size_t count = 0;
    for (const auto &r : rowStore)
        count += r.popcount();
    return count;
}

} // namespace tdc
