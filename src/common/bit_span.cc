#include "common/bit_span.hh"

#include "common/cpu_features.hh"

namespace tdc
{

BitCompressPlan::BitCompressPlan(uint64_t mask)
    : selectMask(mask), bitCount(unsigned(std::popcount(mask)))
{
    // Hacker's Delight 7-4: derive the butterfly stage masks. Stage i
    // moves the selected bits that still have to cross a distance of
    // 2^i; the masks depend only on the select mask, so they are
    // computed once here and replayed per word in compress()/expand().
    uint64_t m = mask;
    uint64_t mk = ~m << 1; // bits to the left of each selected bit
    for (unsigned i = 0; i < stages; ++i) {
        uint64_t mp = mk ^ (mk << 1); // parallel prefix of mk
        mp ^= mp << 2;
        mp ^= mp << 4;
        mp ^= mp << 8;
        mp ^= mp << 16;
        mp ^= mp << 32;
        const uint64_t mv = mp & m; // bits moving this stage
        moveMasks[i] = mv;
        m = (m ^ mv) | (mv >> (1u << i));
        mk &= ~mp;
    }
}

uint64_t
BitCompressPlan::compress(uint64_t x) const
{
    if (simdBmi2Active())
        return simd::pextBmi2(x, selectMask);
    x &= selectMask;
    for (unsigned i = 0; i < stages; ++i) {
        const uint64_t t = x & moveMasks[i];
        x = (x ^ t) | (t >> (1u << i));
    }
    return x;
}

uint64_t
BitCompressPlan::expand(uint64_t x) const
{
    if (simdBmi2Active())
        return simd::pdepBmi2(x, selectMask);
    if (bitCount < 64)
        x &= (uint64_t(1) << bitCount) - 1;
    // Replay the butterfly in reverse to scatter the low bits back to
    // their mask positions (Hacker's Delight 7-5).
    for (unsigned i = stages; i-- > 0;) {
        const uint64_t mv = moveMasks[i];
        const uint64_t t = x << (1u << i);
        x = (x & ~mv) | (t & mv);
    }
    return x & selectMask;
}

uint64_t
strideMask64(size_t stride)
{
    assert(stride >= 1 && stride <= 64);
    uint64_t mask = 0;
    for (size_t p = 0; p < 64; p += stride)
        mask |= uint64_t(1) << p;
    return mask;
}

} // namespace tdc
