#include "common/table.hh"

#include <cstdio>
#include <sstream>

namespace tdc
{

Table::Table(std::vector<std::string> headers)
    : header(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(header.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << '\n';
    };

    emit_row(header);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace tdc
