/**
 * @file
 * Non-owning views over BitVector word storage, plus the word-level
 * primitives the codec/array hot loops are built from.
 *
 * A BitVector always starts its bits at bit 0 of word 0, so a span over
 * one is word-aligned by construction. Spans never allocate: they are
 * (pointer, bit-length) pairs, cheap to pass by value, and let the
 * access-critical paths (TwoDimArray::readWord/writeWord, the EDC and
 * Hsiao codecs, InterleaveMap gather/scatter) operate on rows in place
 * instead of constructing row-sized temporaries per access.
 */

#ifndef TDC_COMMON_BIT_SPAN_HH
#define TDC_COMMON_BIT_SPAN_HH

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "common/bit_vector.hh"

namespace tdc
{

/**
 * Read-only word-aligned view of @p nbits bits packed into uint64_t
 * words, bit 0 = LSB of word 0. The invariant of BitVector carries
 * over: bits at positions >= size() in the top word are zero.
 */
class ConstBitSpan
{
  public:
    ConstBitSpan(const uint64_t *words, size_t nbits)
        : wordPtr(words), numBits(nbits)
    {
    }

    /** View of an entire BitVector. */
    explicit ConstBitSpan(const BitVector &v)
        : ConstBitSpan(v.wordData(), v.size())
    {
    }

    size_t size() const { return numBits; }
    bool empty() const { return numBits == 0; }

    /** Number of 64-bit words backing the span. */
    size_t wordCount() const { return (numBits + 63) / 64; }

    const uint64_t *words() const { return wordPtr; }
    uint64_t word(size_t i) const { return wordPtr[i]; }

    bool get(size_t pos) const
    {
        assert(pos < numBits);
        return (wordPtr[pos / 64] >> (pos % 64)) & 1;
    }

    /** True iff no bit is set. */
    bool none() const
    {
        for (size_t i = 0, n = wordCount(); i < n; ++i)
            if (wordPtr[i] != 0)
                return false;
        return true;
    }

    /** Number of set bits. */
    size_t popcount() const
    {
        size_t count = 0;
        for (size_t i = 0, n = wordCount(); i < n; ++i)
            count += std::popcount(wordPtr[i]);
        return count;
    }

    /** Parity (XOR) of all bits. */
    bool parity() const
    {
        uint64_t acc = 0;
        for (size_t i = 0, n = wordCount(); i < n; ++i)
            acc ^= wordPtr[i];
        return std::popcount(acc) & 1;
    }

    /**
     * Parity of the AND with @p other (same length): one row of a
     * parity-check-matrix product, i.e. popcount(this & other) & 1
     * without materializing the AND.
     */
    bool parityOfAnd(ConstBitSpan other) const
    {
        assert(numBits == other.numBits);
        uint64_t acc = 0;
        for (size_t i = 0, n = wordCount(); i < n; ++i)
            acc ^= wordPtr[i] & other.wordPtr[i];
        return std::popcount(acc) & 1;
    }

    /** Materialize an owning copy. */
    BitVector toBitVector() const
    {
        BitVector out(numBits);
        uint64_t *dst = out.wordData();
        for (size_t i = 0, n = wordCount(); i < n; ++i)
            dst[i] = wordPtr[i];
        return out;
    }

  private:
    const uint64_t *wordPtr;
    size_t numBits;
};

/** Mutable counterpart of ConstBitSpan. */
class BitSpan
{
  public:
    BitSpan(uint64_t *words, size_t nbits) : wordPtr(words), numBits(nbits) {}

    /** View of an entire BitVector (the vector must outlive the span). */
    explicit BitSpan(BitVector &v) : BitSpan(v.wordData(), v.size()) {}

    operator ConstBitSpan() const { return {wordPtr, numBits}; }

    size_t size() const { return numBits; }
    size_t wordCount() const { return (numBits + 63) / 64; }

    uint64_t *words() { return wordPtr; }
    uint64_t word(size_t i) const { return wordPtr[i]; }

    bool get(size_t pos) const
    {
        assert(pos < numBits);
        return (wordPtr[pos / 64] >> (pos % 64)) & 1;
    }

    void set(size_t pos, bool value)
    {
        assert(pos < numBits);
        const uint64_t mask = uint64_t(1) << (pos % 64);
        if (value)
            wordPtr[pos / 64] |= mask;
        else
            wordPtr[pos / 64] &= ~mask;
    }

    /**
     * In-place XOR with @p other (same length). Safe when both spans
     * alias the same storage (the result is then all-zero).
     */
    void xorWith(ConstBitSpan other)
    {
        assert(numBits == other.size());
        const uint64_t *src = other.words();
        for (size_t i = 0, n = wordCount(); i < n; ++i)
            wordPtr[i] ^= src[i];
    }

    /** Clear all bits (whole backing words, honoring the invariant). */
    void clear()
    {
        for (size_t i = 0, n = wordCount(); i < n; ++i)
            wordPtr[i] = 0;
    }

    /** Copy from @p other (same length). */
    void copyFrom(ConstBitSpan other)
    {
        assert(numBits == other.size());
        const uint64_t *src = other.words();
        for (size_t i = 0, n = wordCount(); i < n; ++i)
            wordPtr[i] = src[i];
    }

  private:
    uint64_t *wordPtr;
    size_t numBits;
};

/**
 * Precomputed plan for compressing (gathering) the bits selected by a
 * fixed mask to the low end of a word, and for the inverse expansion
 * (scatter). On a BMI2-capable machine (and unless TDC_SIMD forces
 * the scalar tier — see common/cpu_features.hh) compress/expand are
 * single PEXT/PDEP instructions; the retained software path is the
 * O(log w) butterfly network of Hacker's Delight 7-4, built once per
 * mask, so the scalar per-word cost is 6 shift/XOR/AND stages (log2
 * of the word width) regardless of mask weight. Both paths are
 * bit-identical; the scalar one doubles as the differential oracle.
 *
 * InterleaveMap uses one plan per interleave degree: the stride mask
 * 0b...000100010001 selects every degree-th bit, and compressing a
 * shifted row word gathers one codeword's bits out of the interleaved
 * physical row in a handful of ALU ops instead of a per-bit loop.
 */
class BitCompressPlan
{
  public:
    explicit BitCompressPlan(uint64_t mask);

    uint64_t mask() const { return selectMask; }

    /** Number of selected bits = size of the compressed result. */
    unsigned count() const { return bitCount; }

    /** PEXT: gather the bits of @p x under the mask to the low end. */
    uint64_t compress(uint64_t x) const;

    /**
     * PDEP: scatter the low count() bits of @p x to the mask positions.
     * Bits of @p x above count() are ignored.
     */
    uint64_t expand(uint64_t x) const;

  private:
    static constexpr unsigned stages = 6; // log2(64)

    uint64_t selectMask;
    unsigned bitCount;
    /** Butterfly stage masks for compress (Hacker's Delight 7-4). */
    uint64_t moveMasks[stages];
};

/**
 * The stride mask with bits set at 0, stride, 2*stride, ... (all
 * multiples of @p stride below 64). @pre 1 <= stride <= 64.
 */
uint64_t strideMask64(size_t stride);

} // namespace tdc

#endif // TDC_COMMON_BIT_SPAN_HH
