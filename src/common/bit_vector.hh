/**
 * @file
 * Dynamically sized bit vector used throughout the coding, array and
 * cache substrates.
 *
 * std::vector<bool> is avoided on purpose: the codecs need word-level
 * access (XOR of whole vectors, popcount, burst extraction) that a
 * packed uint64_t representation provides directly.
 */

#ifndef TDC_COMMON_BIT_VECTOR_HH
#define TDC_COMMON_BIT_VECTOR_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tdc
{

/**
 * A fixed-length sequence of bits packed into 64-bit words.
 *
 * Bit 0 is the least-significant bit of word 0. All binary operators
 * require operands of identical length; this is asserted, not resized,
 * because a silent length mismatch in a codec is always a bug.
 *
 * Storage is small-buffer optimized: vectors up to 320 bits (every
 * codeword geometry of the study, and an L1 physical row) live inline
 * with no heap traffic, which is what keeps the per-access codec path
 * allocation-free. Longer vectors (wide physical rows) spill to the
 * heap exactly like a std::vector would.
 */
class BitVector
{
  public:
    /** Construct an empty (zero-length) vector. */
    BitVector() = default;

    /** Construct a vector of @p nbits bits, all cleared. */
    explicit BitVector(size_t nbits);

    /**
     * Construct from the low @p nbits of an integer value.
     * Bits above 64 (if nbits > 64) are cleared.
     */
    BitVector(size_t nbits, uint64_t value);

    BitVector(const BitVector &other);
    BitVector(BitVector &&other) noexcept;
    BitVector &operator=(const BitVector &other);
    BitVector &operator=(BitVector &&other) noexcept;
    ~BitVector() { release(); }

    /** Number of bits in the vector. */
    size_t size() const { return numBits; }

    /** True iff the vector has zero length. */
    bool empty() const { return numBits == 0; }

    /** Read the bit at @p pos. */
    bool get(size_t pos) const;

    /** Set the bit at @p pos to @p value. */
    void set(size_t pos, bool value);

    /** Invert the bit at @p pos. */
    void flip(size_t pos);

    /** Clear all bits. */
    void clear();

    /** True iff no bit is set. */
    bool none() const;

    /** True iff at least one bit is set. */
    bool any() const { return !none(); }

    /** Number of set bits. */
    size_t popcount() const;

    /** Position of the lowest set bit, or size() if none. */
    size_t findFirst() const;

    /** Position of the highest set bit, or size() if none. */
    size_t findLast() const;

    /** In-place XOR with @p other (same length required). */
    BitVector &operator^=(const BitVector &other);

    /** In-place AND with @p other (same length required). */
    BitVector &operator&=(const BitVector &other);

    /** In-place OR with @p other (same length required). */
    BitVector &operator|=(const BitVector &other);

    BitVector operator^(const BitVector &other) const;
    BitVector operator&(const BitVector &other) const;
    BitVector operator|(const BitVector &other) const;

    bool operator==(const BitVector &other) const;
    bool operator!=(const BitVector &other) const
    {
        return !(*this == other);
    }

    /**
     * Extract @p len bits starting at @p pos into a new vector.
     * @pre pos + len <= size()
     */
    BitVector slice(size_t pos, size_t len) const;

    /**
     * Overwrite @p src.size() bits starting at @p pos with @p src.
     * @pre pos + src.size() <= size()
     */
    void setSlice(size_t pos, const BitVector &src);

    /** Append all bits of @p other at the end (grows the vector). */
    void append(const BitVector &other);

    /** Append a single bit at the end (grows the vector). */
    void pushBack(bool bit);

    /**
     * Return the low min(64, size()-pos) bits starting at @p pos as an
     * integer (little-endian bit order).
     */
    uint64_t toUint64(size_t pos = 0, size_t len = 64) const;

    /** Parity (XOR) of all bits. */
    bool parity() const;

    /**
     * Overwrite min(len, 64, size()-pos) bits starting at @p pos with
     * the low bits of @p value (little-endian bit order).
     */
    void setBits(size_t pos, uint64_t value, size_t len = 64);

    /** Render as a '0'/'1' string, bit 0 first. */
    std::string toString() const;

    /** Number of 64-bit words backing the vector. */
    size_t wordCount() const
    {
        return (numBits + bitsPerWord - 1) / bitsPerWord;
    }

    /**
     * Raw pointer to the packed word storage. The mutable overload is
     * the escape hatch the span/codec hot paths are built on; callers
     * must preserve the invariant that bits at positions >= size() in
     * the top word stay zero.
     */
    const uint64_t *wordData() const { return wordPtr; }
    uint64_t *wordData() { return wordPtr; }

  private:
    /** Zero any stale bits above numBits in the top word. */
    void trimTopWord();

    /** Free the heap buffer, if any (leaves members stale). */
    void release()
    {
        if (wordPtr != inlineStore)
            delete[] wordPtr;
    }

    /**
     * Ensure capacity for @p words words, carrying over the first
     * @p preserveWords valid words (grow path); pass 0 to drop the
     * contents (assign path).
     */
    void reserveWords(size_t words, size_t preserveWords);

    static constexpr size_t bitsPerWord = 64;
    /** Inline capacity: 320 bits, one cache line of payload. */
    static constexpr size_t inlineWords = 5;

    size_t numBits = 0;
    size_t capWords = inlineWords;
    uint64_t *wordPtr = inlineStore;
    uint64_t inlineStore[inlineWords];
};

} // namespace tdc

#endif // TDC_COMMON_BIT_VECTOR_HH
