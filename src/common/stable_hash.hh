/**
 * @file
 * A small, portable, *stable* content hash for cache keys.
 *
 * The campaign result cache (reliability/result_cache.hh) addresses
 * its entries by a digest of the canonical experiment description, and
 * those digests live in on-disk file names that must stay valid across
 * processes, platforms, compilers, and library versions. std::hash
 * guarantees none of that, so this header provides a self-contained
 * streaming hash whose output is pinned by unit tests: two 64-bit
 * FNV-1a lanes with distinct offset bases, finalized through a
 * SplitMix64-style avalanche, giving a 128-bit digest with no
 * dependencies and byte-order independence (input is consumed as
 * bytes; integers are fed in little-endian order explicitly).
 *
 * This is a fingerprint for content addressing, not a cryptographic
 * hash — collisions are guarded against downstream by storing the full
 * key inside every cache entry and verifying it on load.
 */

#ifndef TDC_COMMON_STABLE_HASH_HH
#define TDC_COMMON_STABLE_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tdc
{

/** 128-bit digest as two 64-bit halves. */
struct StableDigest
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    /** 32 lowercase hex characters, hi half first. */
    std::string hex() const;

    bool operator==(const StableDigest &) const = default;
};

/**
 * Streaming stable hash. Feed bytes/integers/strings in any
 * interleaving; the digest depends only on the concatenated byte
 * stream (update("ab") == update("a") + update("b")). Each typed
 * update is framed with a tag byte + length so that structurally
 * different key sequences cannot alias byte-identically.
 */
class StableHash
{
  public:
    StableHash();

    /** Raw bytes, unframed (the primitive the others build on). */
    void updateBytes(const void *data, size_t len);

    /** A length-framed string field. */
    void update(std::string_view s);

    /** A framed 64-bit integer field (fed little-endian). */
    void update(uint64_t v);

    /** A framed double field (IEEE-754 bit pattern — bit-exact). */
    void update(double v);

    /** Digest of everything fed so far (non-destructive). */
    StableDigest digest() const;

  private:
    uint64_t a_;
    uint64_t b_;
};

/** One-shot convenience: digest of a single string. */
StableDigest stableHash(std::string_view s);

} // namespace tdc

#endif // TDC_COMMON_STABLE_HASH_HH
