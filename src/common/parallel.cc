#include "common/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace tdc
{

namespace
{

/** Set while a pool worker is executing loop bodies, so nested
 *  parallelFor calls degrade to serial instead of deadlocking. */
thread_local bool inWorker = false;

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("TDC_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return unsigned(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/**
 * Persistent pool. Workers sleep on a condition variable between
 * jobs; a job is a (body, n) pair dispatched through an atomic
 * iteration counter. The submitting thread works alongside the pool,
 * so a configured count of T uses T-1 pool threads. Jobs are
 * submitted from one thread at a time (the simulation drivers all run
 * their sweeps from the main thread).
 */
class WorkerPool
{
  public:
    static WorkerPool &instance()
    {
        static WorkerPool pool;
        return pool;
    }

    unsigned threads()
    {
        std::lock_guard<std::mutex> lock(mu);
        return configured;
    }

    void setThreads(unsigned n)
    {
        std::lock_guard<std::mutex> lock(mu);
        configured = n == 0 ? defaultThreads() : n;
    }

    void run(size_t n, const std::function<void(size_t)> &fn)
    {
        std::unique_lock<std::mutex> lock(mu);
        const size_t want = std::min<size_t>(configured, n);
        if (inWorker || want <= 1) {
            lock.unlock();
            for (size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        resize(lock, want - 1);

        body = &fn;
        limit = n;
        next.store(0, std::memory_order_relaxed);
        firstError = nullptr;
        active = workers.size();
        ++generation;
        lock.unlock();
        cvWork.notify_all();

        // The submitting thread participates — marked as a worker so
        // a nested parallelFor inside the body degrades to serial
        // instead of re-entering the dispatcher mid-job.
        inWorker = true;
        workItems(fn);
        inWorker = false;

        lock.lock();
        cvDone.wait(lock, [&] { return active == 0; });
        body = nullptr;
        if (firstError) {
            std::exception_ptr e = firstError;
            firstError = nullptr;
            lock.unlock();
            std::rethrow_exception(e);
        }
    }

  private:
    WorkerPool() = default;

    ~WorkerPool()
    {
        std::unique_lock<std::mutex> lock(mu);
        stop = true;
        lock.unlock();
        cvWork.notify_all();
        for (std::thread &w : workers)
            w.join();
    }

    /** Adjust the pool to @p count workers. @p lock holds mu and no
     *  job is in flight. Rare (bench/test setup), so the simplest
     *  correct scheme is used: retire the whole pool and respawn. */
    void resize(std::unique_lock<std::mutex> &lock, size_t count)
    {
        if (workers.size() == count)
            return;
        stop = true;
        lock.unlock();
        cvWork.notify_all();
        for (std::thread &w : workers)
            w.join();
        lock.lock();
        workers.clear();
        stop = false;
        for (size_t i = 0; i < count; ++i) {
            // Hand each worker the generation current at spawn time so
            // it never mistakes an already-finished job for a new one.
            const uint64_t seen = generation;
            workers.emplace_back([this, seen] { workerLoop(seen); });
        }
    }

    void workerLoop(uint64_t seen)
    {
        inWorker = true;
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
            cvWork.wait(lock,
                        [&] { return stop || generation != seen; });
            if (stop)
                return;
            seen = generation;
            const std::function<void(size_t)> *fn = body;
            lock.unlock();
            workItems(*fn);
            lock.lock();
            if (--active == 0)
                cvDone.notify_all();
        }
    }

    void workItems(const std::function<void(size_t)> &fn)
    {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= limit)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!firstError)
                    firstError = std::current_exception();
                // Abandon the remaining iterations.
                next.store(limit, std::memory_order_relaxed);
            }
        }
    }

    std::mutex mu;
    std::condition_variable cvWork;
    std::condition_variable cvDone;
    std::vector<std::thread> workers;
    unsigned configured = defaultThreads();

    const std::function<void(size_t)> *body = nullptr;
    size_t limit = 0;
    std::atomic<size_t> next{0};
    size_t active = 0;
    uint64_t generation = 0;
    bool stop = false;
    std::exception_ptr firstError;
};

} // namespace

unsigned
parallelThreads()
{
    return WorkerPool::instance().threads();
}

void
setParallelThreads(unsigned n)
{
    WorkerPool::instance().setThreads(n);
}

void
parallelFor(size_t n, const std::function<void(size_t)> &body)
{
    if (n == 0)
        return;
    WorkerPool::instance().run(n, body);
}

uint64_t
shardSeed(uint64_t base, uint64_t shard)
{
    // SplitMix64 finalizer over a golden-ratio stride: decorrelates
    // adjacent shards even for adjacent base seeds.
    uint64_t x = base + 0x9e3779b97f4a7c15ULL * (shard + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
shardSeed(uint64_t base, uint64_t domain, uint64_t shard)
{
    // Fold the domain through the same finalizer first: the inner mix
    // scatters (base, domain) pairs over the full 64-bit space, so the
    // outer per-shard streams of distinct domains are unrelated — and
    // distinct from the legacy un-domained shardSeed(base, shard)
    // streams (domain folding never degenerates to the identity).
    return shardSeed(shardSeed(base ^ 0xd0a1a1d5ca1ab1e5ULL, domain),
                     shard);
}

} // namespace tdc
