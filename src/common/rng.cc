#include "common/rng.hh"

#include <cassert>
#include <cmath>

namespace tdc
{

namespace
{

/** SplitMix64 step used to expand the user seed into generator state. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state)
        s = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    uint64_t value;
    do {
        value = next();
    } while (value >= limit);
    return value % bound;
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    return lo + int64_t(nextBelow(uint64_t(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return double(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextExponential(double lambda)
{
    assert(lambda > 0.0);
    double u;
    do {
        u = nextDouble();
    } while (u == 0.0);
    return -std::log(u) / lambda;
}

uint64_t
Rng::nextPoisson(double mean)
{
    assert(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's product-of-uniforms method.
        const double threshold = std::exp(-mean);
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= nextDouble();
        } while (p > threshold);
        return k - 1;
    }
    // Normal approximation with continuity correction for large means;
    // accurate enough for the reliability models that use it.
    const double g = nextGaussian();
    const double v = mean + g * std::sqrt(mean) + 0.5;
    return v <= 0.0 ? 0 : uint64_t(v);
}

double
Rng::nextGaussian()
{
    if (haveSpareGaussian) {
        haveSpareGaussian = false;
        return spareGaussian;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian = v * scale;
    haveSpareGaussian = true;
    return u * scale;
}

} // namespace tdc
