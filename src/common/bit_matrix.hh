/**
 * @file
 * Two-dimensional bit matrix: the in-memory model of an SRAM cell array.
 */

#ifndef TDC_COMMON_BIT_MATRIX_HH
#define TDC_COMMON_BIT_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/bit_vector.hh"

namespace tdc
{

/**
 * A rows x cols matrix of bits, stored row-major as one BitVector per
 * row. Models the physical cell array of an SRAM sub-bank: "horizontal"
 * is the wordline direction (a row), "vertical" is the bitline
 * direction (a column), matching the paper's terminology.
 */
class BitMatrix
{
  public:
    BitMatrix() = default;

    /** Construct a @p rows x @p cols matrix of cleared bits. */
    BitMatrix(size_t rows, size_t cols);

    size_t rows() const { return rowStore.size(); }
    size_t cols() const { return numCols; }

    bool get(size_t row, size_t col) const;
    void set(size_t row, size_t col, bool value);
    void flip(size_t row, size_t col);

    /** Read-only access to an entire row. */
    const BitVector &row(size_t r) const;

    /** Mutable access to an entire row. */
    BitVector &row(size_t r);

    /** Replace row @p r (length must equal cols()). */
    void setRow(size_t r, const BitVector &value);

    /** Extract column @p c as a BitVector of length rows(). */
    BitVector column(size_t c) const;

    /** Replace column @p c (length must equal rows()). */
    void setColumn(size_t c, const BitVector &value);

    /** Clear every bit. */
    void clear();

    /** Total number of set bits in the matrix. */
    size_t popcount() const;

    bool operator==(const BitMatrix &other) const = default;

  private:
    size_t numCols = 0;
    std::vector<BitVector> rowStore;
};

} // namespace tdc

#endif // TDC_COMMON_BIT_MATRIX_HH
