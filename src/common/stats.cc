#include "common/stats.hh"

#include <cmath>

namespace tdc
{

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        if (x < lo)
            lo = x;
        if (x > hi)
            hi = x;
    }
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / double(n);
    m2 += delta * (x - mu);
}

double
RunningStat::variance() const
{
    return n > 1 ? m2 / double(n - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
StatGroup::inc(const std::string &name, uint64_t delta)
{
    auto it = index.find(name);
    if (it == index.end()) {
        index.emplace(name, ordered.size());
        ordered.emplace_back(name, delta);
    } else {
        ordered[it->second].second += delta;
    }
}

void
StatGroup::set(const std::string &name, uint64_t value)
{
    auto it = index.find(name);
    if (it == index.end()) {
        index.emplace(name, ordered.size());
        ordered.emplace_back(name, value);
    } else {
        ordered[it->second].second = value;
    }
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? 0 : ordered[it->second].second;
}

void
StatGroup::clear()
{
    for (auto &e : ordered)
        e.second = 0;
}

} // namespace tdc
