#include "common/stable_hash.hh"

#include <cstring>

namespace tdc
{

namespace
{

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr uint64_t kBasisA = 0xcbf29ce484222325ULL;  // FNV-1a offset
constexpr uint64_t kBasisB = 0x9ae16a3b2f90404fULL;  // independent lane

/** SplitMix64 finalizer: avalanches the weak FNV tail bits. */
uint64_t
avalanche(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

std::string
StableDigest::hex() const
{
    static const char *digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i)
        out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    for (int i = 0; i < 16; ++i)
        out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
    return out;
}

StableHash::StableHash() : a_(kBasisA), b_(kBasisB) {}

void
StableHash::updateBytes(const void *data, size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        a_ = (a_ ^ p[i]) * kFnvPrime;
        // Second lane walks the stream backwards through a rotated
        // byte so the two lanes never degenerate into each other.
        b_ = (b_ ^ (uint64_t(p[i]) << 8 | (b_ >> 56))) * kFnvPrime;
    }
}

void
StableHash::update(std::string_view s)
{
    const unsigned char tag = 's';
    updateBytes(&tag, 1);
    const uint64_t len = s.size();
    unsigned char frame[8];
    for (int i = 0; i < 8; ++i)
        frame[i] = (unsigned char)(len >> (8 * i));
    updateBytes(frame, 8);
    updateBytes(s.data(), s.size());
}

void
StableHash::update(uint64_t v)
{
    unsigned char bytes[9];
    bytes[0] = 'u';
    for (int i = 0; i < 8; ++i)
        bytes[1 + i] = (unsigned char)(v >> (8 * i));
    updateBytes(bytes, 9);
}

void
StableHash::update(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    unsigned char bytes[9];
    bytes[0] = 'd';
    for (int i = 0; i < 8; ++i)
        bytes[1 + i] = (unsigned char)(bits >> (8 * i));
    updateBytes(bytes, 9);
}

StableDigest
StableHash::digest() const
{
    StableDigest d;
    d.hi = avalanche(a_ ^ (b_ * kFnvPrime));
    d.lo = avalanche(b_ ^ avalanche(a_));
    return d;
}

StableDigest
stableHash(std::string_view s)
{
    StableHash h;
    h.update(s);
    return h.digest();
}

} // namespace tdc
