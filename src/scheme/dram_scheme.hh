/**
 * @file
 * The "dram:" protection-scheme family: chipkill/DDC (rank-level
 * RS/SSC-DSD over per-chip symbols) and IECC+chipkill (per-chip
 * SEC-DED feeding chip erasures into the rank-level symbol code), on
 * the DramArray geometry. Registered in the scheme registry next to
 * conv/2d/wt/prod so campaign grids, --figure chipkill, the lifetime
 * engine and the --optimize search all reach it through spec strings:
 *
 *   dram     ::= "dram:" variant "/x" width opt*
 *   variant  ::= "chipkill" | "iecc+chipkill"
 *   width    ::= "4" | "8"         ; x4 -> 12+3 chips, x8 -> 8+3 chips
 *   opt      ::= "/r" rows-per-bank | "/b" banks | "/cols"
 *
 * "/cols" switches the lifetime repair units from spare chips to spare
 * columns (the spare-column repair granularity of the ROADMAP item).
 */

#ifndef TDC_SCHEME_DRAM_SCHEME_HH
#define TDC_SCHEME_DRAM_SCHEME_HH

#include "dram/dram_array.hh"
#include "scheme/scheme.hh"

namespace tdc
{

/** Configuration of one dram: scheme instance. */
struct DramSchemeConfig
{
    /** Per-chip SEC-DED in front of the rank-level symbol code. */
    bool iecc = false;

    DramGeometry geometry;

    /** Lifetime repair units: spare columns instead of spare chips. */
    bool columnRepair = false;
};

/** Build a chipkill-class scheme (the "dram:" family backend). */
SchemePtr makeDramScheme(const DramSchemeConfig &config);

/** The registrable "dram" family (scheme.cc registers it built-in). */
SchemeFamily dramSchemeFamily();

} // namespace tdc

#endif // TDC_SCHEME_DRAM_SCHEME_HH
