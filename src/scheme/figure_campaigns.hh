/**
 * @file
 * Declarative definitions of the paper's figure campaigns, one builder
 * per panel, all executed through the unified campaign driver
 * (reliability/campaign.hh) with every protection-scheme axis named by
 * a spec string through the scheme registry (scheme/scheme.hh). The
 * bench_fig* binaries and the tdc_run driver run these builders, and
 * the golden-pin tests execute the same builders — so the printed
 * tables and the pinned tables can never drift apart.
 */

#ifndef TDC_SCHEME_FIGURE_CAMPAIGNS_HH
#define TDC_SCHEME_FIGURE_CAMPAIGNS_HH

#include "reliability/campaign.hh"
#include "scheme/scheme.hh"

namespace tdc
{

/** Figure 1(b): extra check-bit storage for 64b and 256b words. */
CampaignResult figure1StorageCampaign();

/** Figure 1(c): extra dynamic energy per read vs. code strength. */
CampaignResult figure1EnergyCampaign();

/**
 * Figure 2(b)/(c): normalized read energy vs. physical interleave
 * degree under each optimizer objective, for one cache geometry.
 */
CampaignResult figure2EnergyCampaign(const std::string &title,
                                     size_t capacity_bytes,
                                     size_t word_bits, size_t banks);

/** Figure 3 header table: storage overhead + guaranteed coverage. */
CampaignResult figure3OverheadCampaign();

/**
 * Figure 3 injection grid: error footprints x protection schemes on a
 * 256x256 data array, verdicts by Monte-Carlo fault injection.
 */
CampaignResult figure3InjectionCampaign(int trials = 40,
                                        uint64_t seed = 2026);

/**
 * Figure 7(a)/(b): code area / latency / power of the schemes named
 * by @p scheme_specs (registry spec strings) with the same 32x32
 * coverage target, normalized to SECDED+Intv2 ("conv:secded/i2").
 */
CampaignResult figure7Campaign(const std::string &title,
                               const CacheGeometry &geom,
                               const std::vector<std::string> &scheme_specs);

/** Figure 8(a): 16MB L2 yield vs. failing cells (analytic). */
CampaignResult figure8YieldCampaign();

/** Figure 8(a) cross-check: Monte Carlo vs. analytic ECC-only yield. */
CampaignResult figure8YieldMonteCarloCampaign(int trials = 300,
                                              uint64_t seed = 99);

/** Figure 8(b): P(all soft errors correctable) over operating years. */
CampaignResult figure8SoftErrorCampaign();

/**
 * Related-work grid (Section 6): the HV product code vs. the paper's
 * 2D coding under the same injected footprints.
 */
CampaignResult relatedWorkCampaign(int trials = 50, uint64_t seed = 60606);

/**
 * Chipkill figure, header table: storage overhead + guaranteed
 * coverage for the cross-family comparison set (interleaved SECDED,
 * the paper's 2D coding, the Tanner product code, chipkill/DDC and
 * IECC+chipkill).
 */
CampaignResult chipkillOverheadCampaign();

/**
 * Chipkill figure, injection grid: SRAM-shaped and device-derived
 * fault footprints (single / bursts / clusters / chip kill /
 * row-hammer / sense-amp) crossed with the same comparison set,
 * verdicts by Monte-Carlo injection through cachedInjectAndRecover.
 */
CampaignResult chipkillInjectionCampaign(int trials = 50,
                                         uint64_t seed = 10107);

/**
 * A fully custom injection grid: every fault (rows) crossed with
 * every scheme spec (columns), @p trials Monte-Carlo events per cell,
 * each cell seeded with shardSeed(seed, cell) — the tdc_run
 * "--scheme x --fault y" scenario executor. Cells render as
 * InjectionOutcome::summary().
 */
CampaignResult customInjectionCampaign(
    const std::vector<std::string> &scheme_specs,
    const std::vector<std::string> &fault_specs, int trials,
    uint64_t seed);

/**
 * The lifetime figure, scrub panel: MTTF/FIT per scheme (columns) over
 * a scrub-interval sweep (rows: per-event, daily, weekly, monthly)
 * under the accelerated Jaguar mix ("jaguar*10000") on small (64-row)
 * device geometries, 5-year missions. Cells evaluate through
 * cachedSchemeLifetime, so the numeric results replay from the result
 * cache like every other campaign cell.
 */
CampaignResult lifetimeScrubCampaign(int trials = 60, uint64_t seed = 7777);

/**
 * The lifetime figure, repair panel: the same schemes under weekly
 * scrubbing with a growing spare-row budget (rows: 0/2/8 spares).
 */
CampaignResult lifetimeSpareCampaign(int trials = 60, uint64_t seed = 7777);

/**
 * Fully custom lifetime grid (tdc_run --lifetime): rows = every
 * (fit-mix, scrub-interval, spare-budget) combination, columns =
 * scheme specs, each cell one cachedSchemeLifetime evaluation seeded
 * with shardSeed(seed, column) — rows of one column replay identical
 * event timelines, so sweeps read as paired comparisons. Malformed
 * mix specs throw std::invalid_argument quoting the offending token.
 */
CampaignResult customLifetimeCampaign(
    const std::vector<std::string> &scheme_specs,
    const std::vector<std::string> &mix_specs,
    const std::vector<double> &scrub_interval_hours,
    const std::vector<int> &spare_rows, double mission_hours, int trials,
    uint64_t seed);

} // namespace tdc

#endif // TDC_SCHEME_FIGURE_CAMPAIGNS_HH
