#include "scheme/figure_campaigns.hh"

#include "common/parallel.hh"
#include "core/twod_array.hh"
#include "ecc/cost_model.hh"
#include "reliability/soft_error_model.hh"
#include "reliability/yield_model.hh"
#include "vlsi/sram_model.hh"
#include "vlsi/tech.hh"

namespace tdc
{

namespace
{

/** Extra read energy of a coded array vs. a plain one (Figure 1(c)). */
double
extraEnergyPerRead(CodeKind kind, size_t capacity_bytes, size_t word_bits,
                   size_t banks)
{
    const CodingCost cost = codingCost(kind, word_bits);
    const SramMetrics plain =
        cacheArrayMetrics(capacity_bytes, word_bits, 0, 2, banks,
                          SramObjective::kBalanced);
    const SramMetrics coded =
        cacheArrayMetrics(capacity_bytes, word_bits, cost.checkBits, 2,
                          banks, SramObjective::kBalanced);
    const double coding_logic =
        defaultTech().ePerGate * double(cost.detectGates);
    return (coded.readEnergy + coding_logic) / plain.readEnergy - 1.0;
}

std::vector<std::string>
figure1RowLabels()
{
    std::vector<std::string> labels;
    for (CodeKind kind : kFigure1Kinds)
        labels.push_back(codeKindName(kind));
    return labels;
}

/** Parse every spec in @p specs through the registry. */
std::vector<SchemePtr>
parseAll(const std::vector<std::string> &specs)
{
    std::vector<SchemePtr> schemes;
    schemes.reserve(specs.size());
    for (const std::string &spec : specs)
        schemes.push_back(parseScheme(spec));
    return schemes;
}

} // namespace

CampaignResult
figure1StorageCampaign()
{
    CampaignGrid grid;
    grid.rowHeader = "Code";
    grid.rowLabels = figure1RowLabels();
    grid.colHeaders = {"HD", "64b word", "256b word"};
    grid.parallelCells = false;
    grid.cell = [](size_t row, size_t col) -> std::string {
        const CodeKind kind = kFigure1Kinds[row];
        switch (col) {
          case 0:
            return std::to_string(makeCode(kind, 64)->minDistance());
          case 1:
            return Table::pct(codingCost(kind, 64).storageOverhead);
          default:
            return Table::pct(codingCost(kind, 256).storageOverhead);
        }
    };
    return runCampaignGrid(grid);
}

CampaignResult
figure1EnergyCampaign()
{
    CampaignGrid grid;
    grid.rowHeader = "Code";
    grid.rowLabels = figure1RowLabels();
    grid.colHeaders = {"64b word / 64kB array", "256b word / 4MB array"};
    grid.parallelCells = false;
    grid.cell = [](size_t row, size_t col) {
        const CodeKind kind = kFigure1Kinds[row];
        return col == 0
                   ? Table::pct(extraEnergyPerRead(kind, 64 * 1024, 64, 1))
                   : Table::pct(
                         extraEnergyPerRead(kind, 4 * 1024 * 1024, 256, 8));
    };
    return runCampaignGrid(grid);
}

CampaignResult
figure2EnergyCampaign(const std::string &title, size_t capacity_bytes,
                      size_t word_bits, size_t banks)
{
    static const SramObjective kObjectives[] = {
        SramObjective::kDelay,
        SramObjective::kDelayArea,
        SramObjective::kBalanced,
        SramObjective::kPower,
    };
    const size_t check = checkBitsOf(CodeKind::kSecDed, word_bits);
    const double base = cacheArrayMetrics(capacity_bytes, word_bits, check,
                                          1, banks, SramObjective::kDelay)
                            .readEnergy;

    CampaignGrid grid;
    grid.title = title;
    grid.rowHeader = "Degree";
    for (size_t degree = 1; degree <= 16; degree *= 2)
        grid.rowLabels.push_back(std::to_string(degree) + ":1");
    grid.colHeaders = {"Delay-opt", "Delay+Area-opt", "Balanced",
                       "Power-opt"};
    grid.parallelCells = false;
    grid.cell = [=](size_t row, size_t col) {
        const size_t degree = size_t(1) << row;
        const SramMetrics m =
            cacheArrayMetrics(capacity_bytes, word_bits, check, degree,
                              banks, kObjectives[col]);
        return Table::num(m.readEnergy / base, 2);
    };
    return runCampaignGrid(grid);
}

CampaignResult
figure3OverheadCampaign()
{
    // The scheme axis by spec string; labels derive from the scheme
    // names except the 2D row, which Figure 3 spells with its vertical
    // code ("2D EDC8+Intv4/EDC32").
    const std::vector<SchemePtr> schemes =
        parseAll({"conv:secded/i4", "conv:oecned/i4", "2d:edc8/i4+vp32"});

    CampaignGrid grid;
    grid.rowHeader = "Scheme";
    grid.rowLabels = {"(a) " + schemes[0]->name(),
                      "(b) " + schemes[1]->name(),
                      "(c) 2D EDC8+Intv4/EDC32"};
    grid.colHeaders = {"Storage overhead", "Guaranteed coverage"};
    grid.parallelCells = false;
    grid.cell = [schemes](size_t row, size_t col) -> std::string {
        if (col == 1) {
            static const char *coverage[] = {"4-bit row bursts",
                                             "32-bit row bursts",
                                             "32x32-bit clusters"};
            return coverage[row];
        }
        return Table::pct(schemes[row]->storageOverhead());
    };
    return runCampaignGrid(grid);
}

CampaignResult
figure3InjectionCampaign(int trials, uint64_t seed)
{
    // Scheme axis: the two conventional baselines and the two 2D
    // variants (EDC8 horizontal; SECDED horizontal for full columns).
    const std::vector<SchemePtr> schemes = parseAll({
        "conv:secded/i4",
        "conv:oecned/i4",
        "2d:edc8/i4+vp32",
        "2d:secded/i4+vp32",
    });

    // Fault-model axis: the paper's footprint sweep.
    static const char *const kFootprints[] = {
        "1x1",  "4x1",  "8x1",   "32x1",
        "4x4",  "8x8",  "16x16", "32x32",
        "1x32", "1x256",
    };

    CampaignGrid grid;
    grid.rowHeader = "Error footprint";
    std::vector<FaultModel> faults;
    for (const char *spec : kFootprints) {
        faults.push_back(parseFaultModel(spec));
        grid.rowLabels.push_back(spec);
    }
    // Figure 3 abbreviates the 2D columns with their vertical code
    // instead of the schemes' canonical "2D(...)+vp" names.
    grid.colHeaders = {schemes[0]->name(), schemes[1]->name(),
                       "2D (EDC8, EDC32)", "2D (SECDED, EDC32)"};
    const size_t nc = grid.colHeaders.size();
    grid.outcomeCell = [=](size_t row, size_t col) {
        // Each cell is its own campaign with a counter-based seed, so
        // the grid is a pure function of (trials, seed) — and therefore
        // memoizable in the result cache.
        const uint64_t cell_seed = shardSeed(seed, row * nc + col);
        return cachedInjectAndRecover(*schemes[col], faults[row], trials,
                                      cell_seed);
    };
    grid.formatOutcome = [](const InjectionOutcome &o) {
        return o.verdict();
    };
    return runCampaignGrid(grid);
}

CampaignResult
figure7Campaign(const std::string &title, const CacheGeometry &geom,
                const std::vector<std::string> &scheme_specs)
{
    const std::vector<SchemePtr> schemes = parseAll(scheme_specs);

    CampaignGrid grid;
    grid.title = title;
    grid.rowHeader = "Scheme";
    for (const SchemePtr &s : schemes)
        grid.rowLabels.push_back(s->name());
    grid.colHeaders = {"Code area", "Coding latency", "Dynamic power"};
    grid.parallelCells = false;
    grid.cell = [=](size_t row, size_t col) {
        // The normalized triple is dominated by the SRAM-optimizer
        // search inside costSpec(), so it is memoized as one 3-wide
        // record per (scheme, reference, geometry) in the result cache.
        const NormalizedOverhead n =
            cachedNormalizedCost(*schemes[row], "conv:secded/i2", geom);
        const double v = col == 0 ? n.area : col == 1 ? n.latency : n.power;
        return Table::pct(v, 0);
    };
    return runCampaignGrid(grid);
}

CampaignResult
figure8YieldCampaign()
{
    static const double kFailingCells[] = {0.0,    400.0,  800.0, 1600.0,
                                           2400.0, 3200.0, 4000.0};
    CampaignGrid grid;
    grid.rowHeader = "Failing cells";
    for (double f : kFailingCells)
        grid.rowLabels.push_back(Table::num(f, 0));
    grid.colHeaders = {"Spare_128", "ECC only", "ECC + Spare_16",
                       "ECC + Spare_32"};
    grid.parallelCells = false;
    grid.cell = [](size_t row, size_t col) {
        const YieldModel ym(YieldParams::l2Cache16MB());
        const double f = kFailingCells[row];
        switch (col) {
          case 0: return Table::pct(ym.yieldSpareOnly(f, 128));
          case 1: return Table::pct(ym.yieldEccOnly(f));
          case 2: return Table::pct(ym.yieldEccPlusSpares(f, 16));
          default: return Table::pct(ym.yieldEccPlusSpares(f, 32));
        }
    };
    return runCampaignGrid(grid);
}

CampaignResult
figure8YieldMonteCarloCampaign(int trials, uint64_t seed)
{
    static const size_t kFaults[] = {200, 400, 800};
    YieldParams small;
    small.words = 65536;
    small.wordBits = 72;
    const YieldModel model(small);

    CampaignGrid grid;
    grid.rowHeader = "Failing cells";
    for (size_t f : kFaults)
        grid.rowLabels.push_back(std::to_string(f));
    grid.colHeaders = {"ECC-only (analytic)", "ECC-only (Monte Carlo)"};
    grid.cell = [=, &model](size_t row, size_t col) {
        const size_t f = kFaults[row];
        if (col == 0)
            return Table::pct(model.yieldEccOnly(double(f)));
        // The Monte-Carlo yield sweep is pure in (params, faults,
        // spares, trials, seed), so its fraction is memoizable.
        const std::string key =
            "fig8yield|words=" + std::to_string(small.words) +
            "|bits=" + std::to_string(small.wordBits) +
            "|faults=" + std::to_string(f) + "|spares=16|trials=" +
            std::to_string(trials) +
            "|seed=" + std::to_string(shardSeed(seed, row));
        const std::vector<double> v = resultCache().reals(key, 1, [&] {
            return std::vector<double>{
                model.monteCarloParallel(f, 16, trials,
                                         shardSeed(seed, row))
                    .eccOnly};
        });
        return Table::pct(v[0]);
    };
    return runCampaignGrid(grid);
}

CampaignResult
figure8SoftErrorCampaign()
{
    static const double kHer[] = {0.000005, 0.00001, 0.00005};

    CampaignGrid grid;
    grid.rowHeader = "Years";
    for (double years = 0.0; years <= 5.0; years += 1.0)
        grid.rowLabels.push_back(Table::num(years, 0));
    grid.colHeaders = {"With 2D coding", "No 2D, HER=0.0005%",
                       "No 2D, HER=0.001%", "No 2D, HER=0.005%"};
    grid.parallelCells = false;
    grid.cell = [](size_t row, size_t col) {
        const double years = double(row);
        if (col == 0) {
            const SoftErrorModel m(ReliabilityParams::figure8b(kHer[0]));
            return Table::pct(m.successProbabilityWith2D(years));
        }
        const SoftErrorModel m(ReliabilityParams::figure8b(kHer[col - 1]));
        return Table::pct(m.successProbability(years));
    };
    return runCampaignGrid(grid);
}

CampaignResult
relatedWorkCampaign(int trials, uint64_t seed)
{
    const std::vector<SchemePtr> schemes =
        parseAll({"prod:256x256", "2d:edc8/i4+vp32"});
    static const char *const kFootprints[] = {
        "1x1", "3x1", "1x3", "2x2", "8x8", "32x32",
    };

    CampaignGrid grid;
    grid.rowHeader = "Error footprint";
    std::vector<FaultModel> faults;
    for (const char *spec : kFootprints) {
        faults.push_back(parseFaultModel(spec));
        grid.rowLabels.push_back(spec);
    }
    grid.colHeaders = {"HV product code", "2D (EDC8+Intv4, EDC32)"};
    const size_t nc = grid.colHeaders.size();
    grid.outcomeCell = [=](size_t row, size_t col) {
        const uint64_t cell_seed = shardSeed(seed, row * nc + col);
        return cachedInjectAndRecover(*schemes[col], faults[row], trials,
                                      cell_seed);
    };
    grid.formatOutcome = [](const InjectionOutcome &o) {
        return o.verdict();
    };
    return runCampaignGrid(grid);
}

namespace
{

/** The chipkill figure's comparison set: one scheme per protection
 *  class, on small (64-row) geometries so cells stay quick. */
const std::vector<std::string> kChipkillFigureSchemes = {
    "conv:secded/i4/r64",
    "2d:edc8/i4+vp32/r64",
    "prod:64x64",
    "dram:chipkill/x4",
    "dram:iecc+chipkill/x8",
};

} // namespace

CampaignResult
chipkillOverheadCampaign()
{
    const std::vector<SchemePtr> schemes =
        parseAll(kChipkillFigureSchemes);

    CampaignGrid grid;
    grid.rowHeader = "Scheme";
    for (const SchemePtr &s : schemes)
        grid.rowLabels.push_back(s->name());
    grid.colHeaders = {"Storage overhead", "Guaranteed coverage"};
    grid.parallelCells = false;
    grid.cell = [schemes](size_t row, size_t col) -> std::string {
        if (col == 1) {
            static const char *coverage[] = {
                "4-bit row bursts",
                "32x32-bit clusters",
                "any single cell + HV-flagged patterns",
                "any single chip (SSC), double-chip detect",
                "1 bit per chip + any single chip (erasure)",
            };
            return coverage[row];
        }
        return Table::pct(schemes[row]->storageOverhead());
    };
    return runCampaignGrid(grid);
}

CampaignResult
chipkillInjectionCampaign(int trials, uint64_t seed)
{
    const std::vector<SchemePtr> schemes =
        parseAll(kChipkillFigureSchemes);

    // Fault axis: the SRAM footprints the paper sweeps plus the
    // device-derived DRAM shapes. On bit arrays (symbol width 1) a
    // chip kill degenerates to a full column, so every cell is
    // well-defined across the whole comparison set.
    static const char *const kFootprints[] = {
        "single", "row:4", "8x8", "fullcol",
        "chip:any", "hammer:3@0.5", "senseamp:16",
    };

    CampaignGrid grid;
    grid.title = "Chipkill comparison: " + std::to_string(trials) +
                 " events/cell, seed " + std::to_string(seed);
    grid.rowHeader = "Fault";
    std::vector<FaultModel> faults;
    for (const char *spec : kFootprints) {
        faults.push_back(parseFaultModel(spec));
        grid.rowLabels.push_back(spec);
    }
    for (const SchemePtr &scheme : schemes)
        grid.colHeaders.push_back(scheme->name());
    const size_t nc = grid.colHeaders.size();
    grid.outcomeCell = [=](size_t row, size_t col) {
        const uint64_t cell_seed = shardSeed(seed, row * nc + col);
        return cachedInjectAndRecover(*schemes[col], faults[row], trials,
                                      cell_seed);
    };
    grid.formatOutcome = [](const InjectionOutcome &o) {
        return o.verdict();
    };
    return runCampaignGrid(grid);
}

CampaignResult
customInjectionCampaign(const std::vector<std::string> &scheme_specs,
                        const std::vector<std::string> &fault_specs,
                        int trials, uint64_t seed)
{
    const std::vector<SchemePtr> schemes = parseAll(scheme_specs);
    std::vector<FaultModel> faults;
    faults.reserve(fault_specs.size());
    for (const std::string &spec : fault_specs)
        faults.push_back(parseFaultModel(spec));

    CampaignGrid grid;
    grid.title = "Injection campaign: " + std::to_string(trials) +
                 " events/cell, seed " + std::to_string(seed);
    grid.rowHeader = "Fault";
    for (const FaultModel &fault : faults)
        grid.rowLabels.push_back(fault.describe());
    for (const SchemePtr &scheme : schemes)
        grid.colHeaders.push_back(scheme->name());
    const size_t nc = grid.colHeaders.size();
    grid.outcomeCell = [=](size_t row, size_t col) {
        const uint64_t cell_seed = shardSeed(seed, row * nc + col);
        return cachedInjectAndRecover(*schemes[col], faults[row], trials,
                                      cell_seed);
    };
    return runCampaignGrid(grid);
}

// --- Lifetime/FIT grids ---------------------------------------------

namespace
{

/** The lifetime figure's device set: small (64-row) geometries so the
 *  per-trial mission replay stays quick. */
const std::vector<std::string> kLifetimeFigureSchemes = {
    "conv:secded/i4/r64",
    "wt:edc8/i4/r64",
    "2d:edc8/i4+vp32/r64",
    "prod:64x64",
};

/** Row label of one lifetime configuration, e.g.
 *  "jaguar*10000 T=168h s=2" (T=event for per-event checking). */
std::string
lifetimeRowLabel(const FitMix &mix, double scrub_hours, int spares)
{
    std::string label = mix.spec();
    label += scrub_hours <= 0.0 ? " T=event"
                                : " T=" + exactDouble(scrub_hours) + "h";
    label += " s=" + std::to_string(spares);
    return label;
}

} // namespace

CampaignResult
customLifetimeCampaign(const std::vector<std::string> &scheme_specs,
                       const std::vector<std::string> &mix_specs,
                       const std::vector<double> &scrub_interval_hours,
                       const std::vector<int> &spare_rows,
                       double mission_hours, int trials, uint64_t seed)
{
    const std::vector<SchemePtr> schemes = parseAll(scheme_specs);
    std::vector<FitMix> mixes;
    mixes.reserve(mix_specs.size());
    for (const std::string &spec : mix_specs)
        mixes.push_back(parseFitMix(spec));

    // Row axis: every (mix, scrub, spares) combination, in that
    // nesting order.
    struct RowConfig
    {
        size_t mix;
        double scrub;
        int spares;
    };
    std::vector<RowConfig> rows;
    for (size_t m = 0; m < mixes.size(); ++m)
        for (double scrub : scrub_interval_hours)
            for (int spares : spare_rows)
                rows.push_back({m, scrub, spares});

    CampaignGrid grid;
    grid.title = "Lifetime campaign: " + exactDouble(mission_hours) +
                 "h missions, " + std::to_string(trials) +
                 " trials/cell, seed " + std::to_string(seed);
    grid.rowHeader = "Mix / scrub / spares";
    for (const RowConfig &rc : rows)
        grid.rowLabels.push_back(
            lifetimeRowLabel(mixes[rc.mix], rc.scrub, rc.spares));
    for (const SchemePtr &scheme : schemes)
        grid.colHeaders.push_back(scheme->name());
    grid.cell = [=](size_t row, size_t col) {
        const RowConfig &rc = rows[row];
        LifetimeParams params;
        params.mix = mixes[rc.mix];
        params.missionHours = mission_hours;
        params.scrubIntervalHours = rc.scrub;
        params.spareRows = rc.spares;
        params.trials = trials;
        // Seed by column only: every row of a column replays the same
        // per-trial event timelines, so the (mix, scrub, spares) sweep
        // is a paired comparison instead of fresh Monte-Carlo noise —
        // and the MTTF monotonicity guarantees become visible in the
        // rendered table.
        params.seed = shardSeed(seed, col);
        return cachedSchemeLifetime(*schemes[col], params).summary();
    };
    return runCampaignGrid(grid);
}

CampaignResult
lifetimeScrubCampaign(int trials, uint64_t seed)
{
    CampaignResult res = customLifetimeCampaign(
        kLifetimeFigureSchemes, {"jaguar*10000"},
        {0.0, 24.0, 24.0 * 7, 24.0 * 30}, {0}, 5.0 * 8760.0, trials, seed);
    res.title = "Lifetime vs scrub interval: jaguar*10000 mix, "
                "5-year missions, " +
                std::to_string(trials) + " trials/cell";
    return res;
}

CampaignResult
lifetimeSpareCampaign(int trials, uint64_t seed)
{
    CampaignResult res = customLifetimeCampaign(
        kLifetimeFigureSchemes, {"jaguar*10000"}, {24.0 * 7}, {0, 2, 8},
        5.0 * 8760.0, trials, seed);
    res.title = "Lifetime vs spare-row budget: jaguar*10000 mix, "
                "weekly scrub, " +
                std::to_string(trials) + " trials/cell";
    return res;
}

} // namespace tdc
