/**
 * @file
 * Spec-pattern expansion for the --optimize design-space search: one
 * pattern string with brace groups expands into the cartesian grid of
 * concrete spec strings it denotes.
 *
 * Group forms (no nesting):
 *
 *   {a,b,c}          literal alternatives
 *   {lo..hi}         integers lo, lo+1, ..., hi
 *   {lo..hi..+K}     integers lo, lo+K, ... while <= hi
 *   {lo..hi..xK}     integers lo, lo*K, ... while <= hi
 *
 * Example: "2d:edc{8,16,32}/i{1..8..x2}+vp{16,32,64}" expands to
 * 3 x 4 x 3 = 36 scheme specs. Groups expand left-to-right with the
 * leftmost varying slowest, so the output order is deterministic.
 *
 * Malformed patterns (unbalanced braces, empty alternatives, bad range
 * bounds or steps, oversized grids) throw std::invalid_argument
 * quoting the offending token.
 */

#ifndef TDC_SCHEME_SPEC_GEN_HH
#define TDC_SCHEME_SPEC_GEN_HH

#include <string>
#include <vector>

namespace tdc
{

/** Grid-size guard: one pattern may expand to at most this many
 *  specs (a design-space search beyond this is a typo, not a plan). */
constexpr size_t kMaxSpecExpansion = 65536;

/** Expand one pattern into its concrete spec strings (at least one:
 *  a pattern with no groups expands to itself). */
std::vector<std::string> expandSpecPattern(const std::string &pattern);

/**
 * Expand every pattern and concatenate, dropping duplicate specs
 * (first occurrence wins) so overlapping patterns do not evaluate the
 * same design point twice.
 */
std::vector<std::string>
expandSpecPatterns(const std::vector<std::string> &patterns);

} // namespace tdc

#endif // TDC_SCHEME_SPEC_GEN_HH
