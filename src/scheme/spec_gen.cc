#include "scheme/spec_gen.hh"

#include <cstdlib>
#include <stdexcept>
#include <unordered_set>

namespace tdc
{

namespace
{

[[noreturn]] void
patternError(const std::string &what, const std::string &token)
{
    throw std::invalid_argument(what + " \"" + token + "\"");
}

/** Parse a non-negative integer that consumes the whole token. */
long
rangeInt(const std::string &token, const std::string &group)
{
    char *end = nullptr;
    const long v = std::strtol(token.c_str(), &end, 10);
    if (token.empty() || end != token.c_str() + token.size() || v < 0)
        patternError("range group expects non-negative integer bounds, "
                     "got",
                     group);
    return v;
}

/** Expand one brace-group body (text between '{' and '}'). */
std::vector<std::string>
expandGroup(const std::string &body)
{
    const size_t dots = body.find("..");
    if (dots == std::string::npos) {
        // Alternatives: {a,b,c}. Empty alternatives are typos.
        std::vector<std::string> out;
        size_t start = 0;
        while (true) {
            const size_t comma = body.find(',', start);
            const std::string token =
                body.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
            if (token.empty())
                patternError("empty alternative in group", "{" + body + "}");
            out.push_back(token);
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        return out;
    }

    // Range: lo..hi[..+K | ..xK]
    const std::string group = "{" + body + "}";
    const std::string lo_tok = body.substr(0, dots);
    std::string rest = body.substr(dots + 2);
    std::string step_tok;
    const size_t dots2 = rest.find("..");
    if (dots2 != std::string::npos) {
        step_tok = rest.substr(dots2 + 2);
        rest = rest.substr(0, dots2);
    }
    const long lo = rangeInt(lo_tok, group);
    const long hi = rangeInt(rest, group);
    if (lo > hi)
        patternError("range group expects lo <= hi, got", group);

    bool multiplicative = false;
    long step = 1;
    if (!step_tok.empty()) {
        if (step_tok[0] == 'x')
            multiplicative = true;
        else if (step_tok[0] != '+')
            patternError("range step expects +K or xK, got", group);
        step = rangeInt(step_tok.substr(1), group);
        if (step < 1 || (multiplicative && step < 2))
            patternError(multiplicative
                             ? "multiplicative step expects K >= 2, got"
                             : "additive step expects K >= 1, got",
                         group);
    }

    std::vector<std::string> out;
    for (long v = lo; v <= hi; v = multiplicative ? v * step : v + step) {
        out.push_back(std::to_string(v));
        if (out.size() > kMaxSpecExpansion)
            patternError("range group expands past the grid limit,", group);
        if (multiplicative && v == 0)
            break; // 0 * K never advances
    }
    return out;
}

} // namespace

std::vector<std::string>
expandSpecPattern(const std::string &pattern)
{
    std::vector<std::string> specs{""};
    size_t pos = 0;
    while (pos < pattern.size()) {
        const size_t open = pattern.find_first_of("{}", pos);
        if (open == std::string::npos) {
            for (std::string &s : specs)
                s += pattern.substr(pos);
            break;
        }
        if (pattern[open] == '}')
            patternError("unmatched '}' in pattern", pattern);
        const size_t close = pattern.find_first_of("{}", open + 1);
        if (close == std::string::npos || pattern[close] != '}')
            patternError("unmatched '{' in pattern", pattern);

        const std::string prefix = pattern.substr(pos, open - pos);
        const std::vector<std::string> values =
            expandGroup(pattern.substr(open + 1, close - open - 1));

        if (specs.size() * values.size() > kMaxSpecExpansion)
            patternError("pattern expands past the grid limit of " +
                             std::to_string(kMaxSpecExpansion) + " specs:",
                         pattern);
        std::vector<std::string> next;
        next.reserve(specs.size() * values.size());
        for (const std::string &head : specs)
            for (const std::string &v : values)
                next.push_back(head + prefix + v);
        specs = std::move(next);
        pos = close + 1;
    }
    if (pattern.empty())
        patternError("empty spec pattern", pattern);
    return specs;
}

std::vector<std::string>
expandSpecPatterns(const std::vector<std::string> &patterns)
{
    std::vector<std::string> out;
    std::unordered_set<std::string> seen;
    for (const std::string &pattern : patterns) {
        for (std::string &spec : expandSpecPattern(pattern)) {
            if (seen.insert(spec).second)
                out.push_back(std::move(spec));
        }
    }
    return out;
}

} // namespace tdc
