#include "scheme/scheme.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "array/product_code_array.hh"
#include "array/protected_array.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/twod_array.hh"
#include "reliability/recovery_sweep.hh"
#include "scheme/dram_scheme.hh"

namespace tdc
{

InjectionOutcome
cachedInjectAndRecover(const ProtectionScheme &scheme,
                       const FaultModel &fault, int trials, uint64_t seed)
{
    const std::string key =
        injectionCacheKey(scheme.spec(), fault.spec(), trials, seed);
    return resultCache().outcome(
        key, [&] { return scheme.injectAndRecover(fault, trials, seed); });
}

NormalizedOverhead
cachedNormalizedCost(const ProtectionScheme &scheme,
                     const std::string &reference_spec,
                     const CacheGeometry &geom)
{
    const std::string key =
        "cost|scheme=" + scheme.spec() + "|ref=" + reference_spec +
        "|geom=" + std::to_string(geom.capacityBytes) + "/" +
        std::to_string(geom.wordBits) + "/" + std::to_string(geom.banks) +
        "/" + std::to_string(geom.writeFraction) + "/" +
        std::to_string(geom.nextLevelWriteCost);
    const std::vector<double> v = resultCache().reals(key, 3, [&] {
        const SchemeSpec reference =
            parseScheme(reference_spec)->costSpec();
        const NormalizedOverhead n =
            normalizeScheme(scheme.costSpec(), reference, geom);
        return std::vector<double>{n.area, n.latency, n.power};
    });
    NormalizedOverhead n;
    n.area = v[0];
    n.latency = v[1];
    n.power = v[2];
    return n;
}

LifetimeResult
cachedSchemeLifetime(const ProtectionScheme &scheme, LifetimeParams params)
{
    params.schemeSpec = scheme.spec();
    return cachedLifetime(params, [&scheme](uint64_t seed) {
        return scheme.openLifetimeSession(seed);
    });
}

std::unique_ptr<DeviceSession>
ProtectionScheme::openLifetimeSession(uint64_t) const
{
    throw std::logic_error("scheme \"" + spec() +
                           "\" has no lifetime device model");
}

SchemeSpec
ProtectionScheme::costSpec() const
{
    throw std::logic_error("scheme \"" + spec() +
                           "\" has no VLSI cost model");
}

SchemeOverhead
ProtectionScheme::cost(const CacheGeometry &geom,
                       SramObjective objective) const
{
    return evaluateScheme(costSpec(), geom, objective);
}

namespace
{

// --- Shared spec-grammar helpers ------------------------------------

/** Lowercased codeKindName: the single source of code spellings. */
std::string
codeToken(CodeKind kind)
{
    std::string label = codeKindName(kind);
    std::transform(label.begin(), label.end(), label.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return label;
}

[[noreturn]] void
specError(const std::string &spec, const std::string &what)
{
    throw std::invalid_argument("scheme spec \"" + spec + "\": " + what);
}

/** Parse the decimal digits of @p digits (from @p token) in range. */
size_t
parseNumber(const std::string &spec, const std::string &token,
            const std::string &digits, size_t lo, size_t hi)
{
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        specError(spec, "malformed number in \"" + token + "\"");
    const unsigned long long v = std::strtoull(digits.c_str(), nullptr, 10);
    if (v < lo || v > hi)
        specError(spec, "value out of range [" + std::to_string(lo) + ".." +
                            std::to_string(hi) + "] in \"" + token + "\"");
    return size_t(v);
}

/** Interleaved-parity class width of EDC kinds (0 = not an EDC code). */
size_t
edcClassWidth(CodeKind kind)
{
    switch (kind) {
      case CodeKind::kEdc8: return 8;
      case CodeKind::kEdc16: return 16;
      case CodeKind::kEdc32: return 32;
      default: return 0;
    }
}

/** The conv/wt/2d body: code, /i degree, optional /w bits, /r rows,
 *  and (2d only) +vp parity rows. */
struct BodyParams
{
    CodeKind code = CodeKind::kSecDed;
    size_t degree = 0;
    size_t wordBits = 64;
    size_t rows = 256;
    size_t verticalRows = 32;
};

BodyParams
parseBody(const std::string &body, const std::string &spec, bool allow_vp)
{
    // Tokens separate on '/' and '+' equally ("i4+vp32" == "i4/vp32").
    std::vector<std::string> tokens;
    std::string current;
    for (char c : body) {
        if (c == '/' || c == '+') {
            tokens.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    tokens.push_back(current);

    BodyParams p;
    try {
        p.code = parseCodeKind(tokens.front());
    } catch (const std::invalid_argument &e) {
        specError(spec, e.what());
    }

    bool have_degree = false;
    for (size_t i = 1; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        if (tok.rfind("vp", 0) == 0 && allow_vp) {
            p.verticalRows = parseNumber(spec, tok, tok.substr(2), 1, 4096);
        } else if (tok.rfind("i", 0) == 0) {
            p.degree = parseNumber(spec, tok, tok.substr(1), 1, 64);
            have_degree = true;
        } else if (tok.rfind("w", 0) == 0) {
            p.wordBits = parseNumber(spec, tok, tok.substr(1), 8, 512);
        } else if (tok.rfind("r", 0) == 0) {
            p.rows = parseNumber(spec, tok, tok.substr(1), 1, 65536);
        } else {
            specError(spec, "unknown token \"" + tok + "\"");
        }
    }
    if (!have_degree)
        specError(spec, "missing interleave degree (\"/i<deg>\")");
    if (const size_t n = edcClassWidth(p.code);
        n != 0 && p.wordBits % n != 0)
        specError(spec, "word width " + std::to_string(p.wordBits) +
                            " is not a multiple of the \"" +
                            codeToken(p.code) + "\" class width " +
                            std::to_string(n));
    if (allow_vp && p.verticalRows > p.rows)
        specError(spec, "vertical parity rows \"vp" +
                            std::to_string(p.verticalRows) +
                            "\" exceed the bank's " +
                            std::to_string(p.rows) + " data rows");
    return p;
}

/** Append the non-default geometry suffix shared by conv/wt/2d. */
std::string
geometrySuffix(size_t word_bits, size_t rows)
{
    std::string out;
    if (word_bits != 64)
        out += "/w" + std::to_string(word_bits);
    if (rows != 256)
        out += "/r" + std::to_string(rows);
    return out;
}

// --- Monte-Carlo trial bodies ---------------------------------------

/** Fill @p bits with rng words (matches the recovery-sweep fill). */
BitVector
randomWord(size_t bits, Rng &rng)
{
    BitVector d(bits);
    for (size_t w = 0; w < bits; w += 64) {
        const size_t len = std::min<size_t>(64, bits - w);
        d.setSlice(w, BitVector(len, rng.next()));
    }
    return d;
}

/** Shard @p trials over the pool; each trial reports (corrected,
 *  silent) and the outcome is reduced in trial order. */
template <typename Trial>
InjectionOutcome
runTrials(int trials, uint64_t seed, Trial &&trial)
{
    const size_t n = trials < 0 ? 0 : size_t(trials);
    std::vector<char> corrected(n, 0), silent(n, 0);
    parallelFor(n, [&](size_t t) {
        bool c = false, s = false;
        trial(shardSeed(seed, t), c, s);
        corrected[t] = c ? 1 : 0;
        silent[t] = s ? 1 : 0;
    });
    InjectionOutcome out;
    for (size_t t = 0; t < n; ++t) {
        ++out.trials;
        out.corrected += corrected[t];
        out.detectedOnly += !corrected[t] && !silent[t];
        out.silent += silent[t];
    }
    return out;
}

// --- Lifetime device sessions ---------------------------------------
//
// One DeviceSession per family, mirroring that family's
// injectAndRecover trial body exactly: same golden fill, same
// scrub/verify classification. The lifetime engine drives these over
// mission time instead of one event per fresh array.

/** conv/wt session: a ProtectedArray, scrubbed by per-word readback
 *  (in-line correction is the conventional scrub). */
class ConvSession final : public DeviceSession
{
  public:
    ConvSession(CodeKind code, size_t degree, size_t word_bits,
                size_t rows, uint64_t seed)
        : arr(rows, makeCode(code, word_bits), degree)
    {
        Rng rng(seed);
        golden.assign(arr.rows(),
                      std::vector<BitVector>(arr.wordsPerRow()));
        for (size_t r = 0; r < arr.rows(); ++r) {
            for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot) {
                golden[r][slot] = randomWord(word_bits, rng);
                arr.writeWord(r, slot, golden[r][slot]);
            }
        }
    }

    void inject(const FaultModel &fault, Rng &rng) override
    {
        FaultInjector inj(rng);
        inj.inject(arr.cells(), fault);
    }

    Verdict scrubAndVerify() override
    {
        bool due = false, silent = false;
        for (size_t r = 0; r < arr.rows(); ++r) {
            for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot) {
                const AccessResult res = arr.readWord(r, slot);
                if (!res.ok())
                    due = true;
                else if (res.data != golden[r][slot])
                    silent = true;
            }
        }
        // A silently wrong word dominates: the device lost data without
        // flagging it somewhere, however many words it also detected.
        return silent ? Verdict::kSdc
               : due  ? Verdict::kDue
                      : Verdict::kCorrected;
    }

    std::vector<std::pair<size_t, size_t>> stuckRows() override
    {
        return arr.cells().stuckRows();
    }

    void repairRow(size_t row) override
    {
        arr.cells().clearRowFaults(row);
        for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot)
            arr.writeWord(row, slot, golden[row][slot]);
    }

  private:
    ProtectedArray arr;
    std::vector<std::vector<BitVector>> golden;
};

/** 2d session: a TwoDimArray bank; scrub runs the Figure 4(b)
 *  recovery process, then the recovery-sweep verification pass. */
class TwoDimSession final : public DeviceSession
{
  public:
    TwoDimSession(const TwoDimConfig &config, uint64_t seed) : arr(config)
    {
        Rng rng(seed);
        golden.assign(arr.rows(),
                      std::vector<BitVector>(arr.wordsPerRow()));
        for (size_t r = 0; r < arr.rows(); ++r) {
            for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot) {
                golden[r][slot] = randomWord(arr.dataBits(), rng);
                arr.writeWord(r, slot, golden[r][slot]);
            }
        }
    }

    void inject(const FaultModel &fault, Rng &rng) override
    {
        FaultInjector inj(rng);
        inj.inject(arr.cells(), fault);
    }

    Verdict scrubAndVerify() override
    {
        const bool scrubbed = arr.scrub();
        bool due = !scrubbed, silent = false;
        for (size_t r = 0; r < arr.rows(); ++r) {
            for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot) {
                const AccessResult res = arr.readWord(r, slot);
                if (!res.ok())
                    due = true;
                else if (res.data != golden[r][slot])
                    silent = true;
            }
        }
        return silent ? Verdict::kSdc
               : due  ? Verdict::kDue
                      : Verdict::kCorrected;
    }

    std::vector<std::pair<size_t, size_t>> stuckRows() override
    {
        return arr.cells().stuckRows();
    }

    void repairRow(size_t row) override
    {
        // clearRowFaults preserves visible values, so the vertical
        // parity stays consistent; rewriting the golden words through
        // writeWord then maintains it incrementally as usual.
        arr.cells().clearRowFaults(row);
        for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot)
            arr.writeWord(row, slot, golden[row][slot]);
    }

  private:
    TwoDimArray arr;
    std::vector<std::vector<BitVector>> golden;
};

/** prod session: an HV product-code array; scrub is checkAndCorrect
 *  plus the row-readback comparison of the injection trials. */
class ProdSession final : public DeviceSession
{
  public:
    ProdSession(size_t rows, size_t cols, uint64_t seed) : arr(rows, cols)
    {
        Rng rng(seed);
        golden.reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
            golden.push_back(randomWord(cols, rng));
            arr.writeRow(r, golden.back());
        }
    }

    void inject(const FaultModel &fault, Rng &rng) override
    {
        FaultInjector inj(rng);
        inj.inject(arr.cells(), fault);
    }

    Verdict scrubAndVerify() override
    {
        const ProductCodeReport rep = arr.checkAndCorrect();
        bool matches = true;
        for (size_t r = 0; r < arr.rows() && matches; ++r)
            matches = arr.readRow(r) == golden[r];
        if (rep.clean && matches)
            return Verdict::kCorrected;
        return rep.clean ? Verdict::kSdc : Verdict::kDue;
    }

    std::vector<std::pair<size_t, size_t>> stuckRows() override
    {
        return arr.cells().stuckRows();
    }

    void repairRow(size_t row) override
    {
        arr.cells().clearRowFaults(row);
        arr.writeRow(row, golden[row]);
    }

  private:
    ProductCodeArray arr;
    std::vector<BitVector> golden;
};

// --- conv / wt ------------------------------------------------------

/**
 * Conventional 1D protection: per-word code + physical interleaving
 * on a ProtectedArray. Also the injection backend of wt (the
 * write-through L1 array is the same EDC-coded array; duplication
 * into the next level only changes the cost model).
 */
class ConventionalScheme : public ProtectionScheme
{
  public:
    ConventionalScheme(CodeKind code, size_t degree, size_t word_bits,
                       size_t rows, bool write_through)
        : code_(code), degree_(degree), wordBits_(word_bits), rows_(rows),
          writeThrough_(write_through)
    {
    }

    std::string name() const override
    {
        const std::string base =
            codeKindName(code_) + "+Intv" + std::to_string(degree_);
        return writeThrough_ ? base + "(Wr-through)" : base;
    }

    std::string spec() const override
    {
        return std::string(writeThrough_ ? "wt:" : "conv:") +
               codeToken(code_) + "/i" + std::to_string(degree_) +
               geometrySuffix(wordBits_, rows_);
    }

    double storageOverhead() const override
    {
        return makeCode(code_, wordBits_)->storageOverhead();
    }

    bool hasCostModel() const override { return true; }

    SchemeSpec costSpec() const override
    {
        return writeThrough_ ? SchemeSpec::writeThrough(code_, degree_)
                             : SchemeSpec::conventional(code_, degree_);
    }

    InjectionOutcome injectAndRecover(const FaultModel &fault, int trials,
                                      uint64_t seed) const override
    {
        return runTrials(trials, seed, [&](uint64_t trial_seed, bool &c,
                                           bool &s) {
            Rng rng(trial_seed);
            ProtectedArray arr(rows_, makeCode(code_, wordBits_), degree_);
            std::vector<std::vector<BitVector>> golden(
                arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
            for (size_t r = 0; r < arr.rows(); ++r) {
                for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot) {
                    golden[r][slot] = randomWord(wordBits_, rng);
                    arr.writeWord(r, slot, golden[r][slot]);
                }
            }
            FaultInjector inj(rng);
            inj.inject(arr.cells(), fault);

            bool all_ok = true, any_silent = false;
            for (size_t r = 0; r < arr.rows(); ++r) {
                for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot) {
                    const AccessResult res = arr.readWord(r, slot);
                    if (!res.ok())
                        all_ok = false;
                    else if (res.data != golden[r][slot])
                        all_ok = false, any_silent = true;
                }
            }
            c = all_ok;
            s = any_silent;
        });
    }

    std::unique_ptr<DeviceSession>
    openLifetimeSession(uint64_t seed) const override
    {
        return std::make_unique<ConvSession>(code_, degree_, wordBits_,
                                             rows_, seed);
    }

  private:
    CodeKind code_;
    size_t degree_;
    size_t wordBits_;
    size_t rows_;
    bool writeThrough_;
};

// --- 2d -------------------------------------------------------------

/** The paper's 2D coding bank; injection runs the recovery sweep. */
class TwoDimScheme : public ProtectionScheme
{
  public:
    explicit TwoDimScheme(const TwoDimConfig &config) : config_(config) {}

    std::string name() const override
    {
        return "2D(" + codeKindName(config_.horizontalKind) + "+Intv" +
               std::to_string(config_.interleaveDegree) + ",EDC" +
               std::to_string(config_.verticalParityRows) + ")";
    }

    std::string spec() const override
    {
        return "2d:" + codeToken(config_.horizontalKind) + "/i" +
               std::to_string(config_.interleaveDegree) + "+vp" +
               std::to_string(config_.verticalParityRows) +
               geometrySuffix(config_.wordBits, config_.dataRows);
    }

    double storageOverhead() const override
    {
        return TwoDimArray(config_).storageOverhead();
    }

    bool hasCostModel() const override { return true; }

    SchemeSpec costSpec() const override
    {
        return SchemeSpec::twoDim(config_.horizontalKind,
                                  config_.interleaveDegree,
                                  config_.verticalParityRows);
    }

    InjectionOutcome injectAndRecover(const FaultModel &fault, int trials,
                                      uint64_t seed) const override
    {
        RecoverySweepParams params;
        params.config = config_;
        params.fault = fault;
        params.trials = trials;
        params.seed = seed;
        const RecoverySweepResult res = runRecoverySweep(params);
        InjectionOutcome out;
        out.trials = res.trials;
        out.corrected = res.recovered;
        out.detectedOnly = res.detectedOnly;
        out.silent = res.silent;
        return out;
    }

    std::unique_ptr<DeviceSession>
    openLifetimeSession(uint64_t seed) const override
    {
        return std::make_unique<TwoDimSession>(config_, seed);
    }

    const TwoDimConfig &config() const { return config_; }

  private:
    TwoDimConfig config_;
};

// --- prod -----------------------------------------------------------

/** Related-work HV product code (one parity row + column per array). */
class ProductCodeScheme : public ProtectionScheme
{
  public:
    ProductCodeScheme(size_t rows, size_t cols) : rows_(rows), cols_(cols)
    {
    }

    std::string name() const override
    {
        return "HVProd(" + std::to_string(rows_) + "x" +
               std::to_string(cols_) + ")";
    }

    std::string spec() const override
    {
        return "prod:" + std::to_string(rows_) + "x" +
               std::to_string(cols_);
    }

    double storageOverhead() const override
    {
        return double(rows_ + cols_) / double(rows_ * cols_);
    }

    InjectionOutcome injectAndRecover(const FaultModel &fault, int trials,
                                      uint64_t seed) const override
    {
        return runTrials(trials, seed, [&](uint64_t trial_seed, bool &c,
                                           bool &s) {
            Rng rng(trial_seed);
            ProductCodeArray arr(rows_, cols_);
            std::vector<BitVector> golden;
            golden.reserve(rows_);
            for (size_t r = 0; r < rows_; ++r) {
                golden.push_back(randomWord(cols_, rng));
                arr.writeRow(r, golden.back());
            }
            FaultInjector inj(rng);
            inj.inject(arr.cells(), fault);

            const ProductCodeReport rep = arr.checkAndCorrect();
            bool matches = true;
            for (size_t r = 0; r < rows_ && matches; ++r)
                matches = arr.readRow(r) == golden[r];
            c = rep.clean && matches;
            s = rep.clean && !matches;
        });
    }

    std::unique_ptr<DeviceSession>
    openLifetimeSession(uint64_t seed) const override
    {
        return std::make_unique<ProdSession>(rows_, cols_, seed);
    }

  private:
    size_t rows_;
    size_t cols_;
};

// --- Registry -------------------------------------------------------

std::vector<SchemeFamily>
builtinFamilies()
{
    std::vector<SchemeFamily> families;

    families.push_back(
        {"conv", "conv:<code>/i<deg>[/w<bits>][/r<rows>]",
         "conventional per-word code + physical interleaving",
         {"conv:secded/i4", "conv:oecned/i4", "conv:dected/i16",
          "conv:qecped/i8", "conv:secded/i2/w256"},
         [](const std::string &body, const std::string &spec) {
             const BodyParams p = parseBody(body, spec, false);
             return makeConventionalScheme(p.code, p.degree, p.wordBits,
                                           p.rows);
         }});

    families.push_back(
        {"2d", "2d:<code>/i<deg>+vp<rows>[/w<bits>][/r<rows>]",
         "the paper's 2D coding: horizontal code + interleave + "
         "vertical parity",
         {"2d:edc8/i4+vp32", "2d:edc16/i2+vp32/w256",
          "2d:secded/i4+vp32"},
         [](const std::string &, const std::string &spec) {
             return makeTwoDimScheme(parseTwoDimConfig(spec));
         }});

    families.push_back(
        {"wt", "wt:<code>/i<deg>[/w<bits>][/r<rows>]",
         "EDC-only write-through L1 duplicating stores into the next "
         "level",
         {"wt:edc8/i4"},
         [](const std::string &body, const std::string &spec) {
             const BodyParams p = parseBody(body, spec, false);
             return makeWriteThroughScheme(p.code, p.degree, p.wordBits,
                                           p.rows);
         }});

    families.push_back(
        {"prod", "prod:<rows>x<cols>",
         "related-work HV product code (horizontal + vertical parity)",
         {"prod:256x256", "prod:64x64"},
         [](const std::string &body, const std::string &spec) {
             const size_t x = body.find('x');
             if (x == std::string::npos)
                 specError(spec, "expected \"<rows>x<cols>\", got \"" +
                                     body + "\"");
             const size_t rows = parseNumber(spec, body, body.substr(0, x),
                                             2, 4096);
             const size_t cols = parseNumber(spec, body, body.substr(x + 1),
                                             2, 4096);
             return makeProductCodeScheme(rows, cols);
         }});

    families.push_back(dramSchemeFamily());

    return families;
}

std::vector<SchemeFamily> &
familyRegistry()
{
    static std::vector<SchemeFamily> families = builtinFamilies();
    return families;
}

} // namespace

void
registerScheme(SchemeFamily family)
{
    auto &families = familyRegistry();
    for (SchemeFamily &existing : families) {
        if (existing.key == family.key) {
            existing = std::move(family);
            return;
        }
    }
    families.push_back(std::move(family));
}

std::vector<SchemeFamily>
schemeFamilies()
{
    return familyRegistry();
}

SchemePtr
parseScheme(const std::string &spec)
{
    const size_t colon = spec.find(':');
    if (colon == std::string::npos)
        throw std::invalid_argument("scheme spec \"" + spec +
                                    "\": missing \":\" after the family");
    const std::string key = spec.substr(0, colon);
    for (const SchemeFamily &family : familyRegistry()) {
        if (family.key == key)
            return family.parse(spec.substr(colon + 1), spec);
    }
    throw std::invalid_argument("scheme spec \"" + spec +
                                "\": unknown family \"" + key + "\"");
}

TwoDimConfig
parseTwoDimConfig(const std::string &spec)
{
    const size_t colon = spec.find(':');
    if (colon == std::string::npos)
        throw std::invalid_argument("scheme spec \"" + spec +
                                    "\": missing \":\" after the family");
    if (spec.substr(0, colon) != "2d")
        throw std::invalid_argument(
            "scheme spec \"" + spec + "\": family \"" +
            spec.substr(0, colon) +
            "\" has no bank configuration (need \"2d\")");
    const BodyParams p = parseBody(spec.substr(colon + 1), spec, true);
    TwoDimConfig cfg;
    cfg.horizontalKind = p.code;
    cfg.interleaveDegree = p.degree;
    cfg.wordBits = p.wordBits;
    cfg.dataRows = p.rows;
    cfg.verticalParityRows = p.verticalRows;
    return cfg;
}

std::vector<std::string>
exampleSchemeSpecs()
{
    std::vector<std::string> specs;
    for (const SchemeFamily &family : familyRegistry())
        specs.insert(specs.end(), family.examples.begin(),
                     family.examples.end());
    return specs;
}

SchemePtr
makeConventionalScheme(CodeKind code, size_t degree, size_t word_bits,
                       size_t rows)
{
    return std::make_shared<ConventionalScheme>(code, degree, word_bits,
                                                rows, false);
}

SchemePtr
makeTwoDimScheme(const TwoDimConfig &config)
{
    return std::make_shared<TwoDimScheme>(config);
}

SchemePtr
makeWriteThroughScheme(CodeKind code, size_t degree, size_t word_bits,
                       size_t rows)
{
    return std::make_shared<ConventionalScheme>(code, degree, word_bits,
                                                rows, true);
}

SchemePtr
makeProductCodeScheme(size_t rows, size_t cols)
{
    return std::make_shared<ProductCodeScheme>(rows, cols);
}

} // namespace tdc
