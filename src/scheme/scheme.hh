/**
 * @file
 * The runtime-pluggable protection-scheme API. Every way the study
 * protects an array — conventional per-word ECC + interleaving, the
 * paper's 2D coding, write-through EDC, the related-work HV product
 * code — is one ProtectionScheme behind one registry, constructed
 * from a spec string:
 *
 *   spec     ::= family ":" body
 *   family   ::= "conv" | "2d" | "wt" | "prod" | "dram" | <registered>
 *   conv/wt  ::= code "/i" degree opt*        ; e.g. conv:secded/i4
 *   2d       ::= code "/i" degree "+vp" rows opt*
 *                                             ; e.g. 2d:edc8/i4+vp32
 *   prod     ::= rows "x" cols                ; e.g. prod:256x256
 *   dram     ::= variant "/x" width dopt*     ; e.g. dram:chipkill/x4
 *   variant  ::= "chipkill" | "iecc+chipkill"
 *   opt      ::= "/w" word-bits | "/r" data-rows
 *   dopt     ::= "/r" rows-per-bank | "/b" banks | "/cols"
 *   code     ::= parity|edc8|edc16|edc32|secded|dected|qecped|oecned
 *
 * spec() round-trips: parseScheme(s->spec()) reconstructs an equal
 * scheme, and malformed specs throw std::invalid_argument quoting the
 * offending token. Campaign grids, the tdc_run driver, and tests all
 * name schemes exclusively through this grammar, so a new scenario is
 * data, not C++.
 */

#ifndef TDC_SCHEME_SCHEME_HH
#define TDC_SCHEME_SCHEME_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "array/fault.hh"
#include "core/twod_config.hh"
#include "reliability/lifetime.hh"     // DeviceSession + LifetimeResult
#include "reliability/result_cache.hh" // InjectionOutcome + ResultCache
#include "vlsi/scheme_overhead.hh"

namespace tdc
{

/**
 * One pluggable protection scheme: a name, a round-trippable spec
 * string, static cost figures, and a Monte-Carlo inject+recover cell
 * executor. Concrete families (conv/2d/wt/prod) live behind the
 * registry; campaign code holds only SchemePtr handles.
 */
class ProtectionScheme
{
  public:
    virtual ~ProtectionScheme() = default;

    /** Display label, e.g. "SECDED+Intv4" or "2D(EDC8+Intv4,EDC32)". */
    virtual std::string name() const = 0;

    /** Canonical spec string; parseScheme(spec()) reconstructs *this. */
    virtual std::string spec() const = 0;

    /** Check-bit (+ vertical / product parity) storage, fraction of
     *  data bits, on the scheme's own array geometry. */
    virtual double storageOverhead() const = 0;

    /**
     * Run @p trials of (fill a fresh array with random data, inject
     * one @p fault event, repair through the scheme's machinery,
     * verify against the golden data). Trial i draws all randomness
     * from shardSeed(seed, i) and trials shard over the worker pool,
     * so the outcome is a pure function of the arguments —
     * bit-identical at any TDC_THREADS setting.
     */
    virtual InjectionOutcome injectAndRecover(const FaultModel &fault,
                                              int trials,
                                              uint64_t seed) const = 0;

    /**
     * Open one lifetime-engine device session (reliability/lifetime.hh):
     * a fresh array filled with golden data derived from @p seed,
     * driven by runLifetime through inject / scrubAndVerify /
     * repairRow with exactly the machinery this scheme's
     * injectAndRecover trials use. The built-in families all implement
     * it; the default throws std::logic_error for registered families
     * without a device model.
     */
    virtual std::unique_ptr<DeviceSession>
    openLifetimeSession(uint64_t seed) const;

    /** True when the scheme has a VLSI cost model (costSpec() works). */
    virtual bool hasCostModel() const { return false; }

    /**
     * The vlsi/scheme_overhead description of this scheme, for
     * evaluateScheme/normalizeScheme (Figures 1(c) and 7). Throws
     * std::logic_error for families without a cost model (prod).
     */
    virtual SchemeSpec costSpec() const;

    /** evaluateScheme(costSpec(), geom, objective) convenience. */
    SchemeOverhead cost(const CacheGeometry &geom,
                        SramObjective objective =
                            SramObjective::kBalanced) const;
};

/** Shared immutable handle used across campaigns and the driver. */
using SchemePtr = std::shared_ptr<const ProtectionScheme>;

/**
 * injectAndRecover through the campaign result cache: the cell is
 * keyed by (scheme.spec(), fault.spec(), trials, seed) and memoized in
 * resultCache() — in memory always, on disk when a cache directory is
 * configured. Because injectAndRecover is a pure function of exactly
 * those arguments (counter-based seeding), the cached result is
 * bit-identical to a cold run at any TDC_THREADS x TDC_SIMD setting.
 * Every figure campaign and the --optimize search evaluate injection
 * cells through this entry point.
 */
InjectionOutcome cachedInjectAndRecover(const ProtectionScheme &scheme,
                                        const FaultModel &fault,
                                        int trials, uint64_t seed);

/**
 * runLifetime over @p scheme through the campaign result cache:
 * params.schemeSpec is overwritten with scheme.spec() (the canonical
 * key axis) and the session factory is scheme.openLifetimeSession, so
 * the cell is a pure function of (scheme, mix, mission, scrub, spares,
 * trials, seed) and memoizes exactly like injection cells. Every
 * lifetime figure/custom grid evaluates through this entry point.
 */
LifetimeResult cachedSchemeLifetime(const ProtectionScheme &scheme,
                                    LifetimeParams params);

/**
 * normalizeScheme(scheme.costSpec(), reference, geom) through the
 * result cache, keyed by (scheme spec, reference spec, every geometry
 * field). The SRAM-optimizer search inside costSpec() dominates the
 * analytic figures (fig7) and the --optimize overhead axis, so both
 * share these entries. @p reference_spec must parse to a scheme with a
 * cost model (e.g. "conv:secded/i2").
 */
NormalizedOverhead cachedNormalizedCost(const ProtectionScheme &scheme,
                                        const std::string &reference_spec,
                                        const CacheGeometry &geom);

/** One registered spec-string family ("conv", "2d", ...). */
struct SchemeFamily
{
    /** Family key, the text before ':' in a spec. */
    std::string key;

    /** One-line grammar, e.g. "conv:<code>/i<deg>[/w<bits>][/r<rows>]". */
    std::string grammar;

    /** What the family models (for --list-schemes). */
    std::string description;

    /** Canonical example specs; every one must parse and round-trip. */
    std::vector<std::string> examples;

    /**
     * Build a scheme from the body text after "key:". @p spec is the
     * full spec string for error messages. Must throw
     * std::invalid_argument on any malformed or out-of-range body.
     */
    std::function<SchemePtr(const std::string &body,
                            const std::string &spec)>
        parse;
};

/**
 * Register a new family. Re-registering an existing key replaces it
 * (last registration wins). Built-in families (conv, 2d, wt, prod)
 * are registered on first use of the registry.
 */
void registerScheme(SchemeFamily family);

/** All registered families, in registration order. */
std::vector<SchemeFamily> schemeFamilies();

/**
 * Parse @p spec through the registry. Throws std::invalid_argument
 * (offending token quoted) for unknown families, unknown codes,
 * malformed bodies, or out-of-range degrees/geometry.
 */
SchemePtr parseScheme(const std::string &spec);

/** Every registered family's canonical examples (round-trip axis). */
std::vector<std::string> exampleSchemeSpecs();

/**
 * Parse a "2d:" spec straight to its bank configuration — for callers
 * that need the raw TwoDimConfig (e.g. the cache-service front end)
 * rather than the ProtectionScheme wrapper. Throws
 * std::invalid_argument (offending token quoted) on a malformed body
 * or a non-"2d" family.
 */
TwoDimConfig parseTwoDimConfig(const std::string &spec);

// --- Built-in family constructors (the registry uses these too) -----

/** conv: per-word @p code, @p degree-way interleaved. */
SchemePtr makeConventionalScheme(CodeKind code, size_t degree,
                                 size_t word_bits = 64, size_t rows = 256);

/** 2d: a TwoDimConfig bank (horizontal code + vertical parity). */
SchemePtr makeTwoDimScheme(const TwoDimConfig &config);

/** wt: EDC-only write-through L1 (cost model; injects like conv). */
SchemePtr makeWriteThroughScheme(CodeKind code, size_t degree,
                                 size_t word_bits = 64, size_t rows = 256);

/** prod: rows x cols HV product-code array. */
SchemePtr makeProductCodeScheme(size_t rows, size_t cols);

} // namespace tdc

#endif // TDC_SCHEME_SCHEME_HH
