#include "scheme/dram_scheme.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "dram/chip_iecc.hh"
#include "ecc/reed_solomon.hh"

namespace tdc
{

namespace
{

[[noreturn]] void
specError(const std::string &spec, const std::string &what)
{
    throw std::invalid_argument("scheme spec \"" + spec + "\": " + what);
}

size_t
parseNumber(const std::string &spec, const std::string &token,
            const std::string &digits, size_t lo, size_t hi)
{
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        specError(spec, "malformed number in \"" + token + "\"");
    const unsigned long long v = std::strtoull(digits.c_str(), nullptr, 10);
    if (v < lo || v > hi)
        specError(spec, "value out of range [" + std::to_string(lo) + ".." +
                            std::to_string(hi) + "] in \"" + token + "\"");
    return size_t(v);
}

/** Data chips per rank: 12 for x4 (RS(15,12)), 8 for x8 (RS(11,8)). */
size_t
dataChipsForWidth(size_t symbol_bits)
{
    return symbol_bits == 4 ? 12 : 8;
}

/** Golden content + side-stored IECC check words of one rank. */
struct RankState
{
    /** golden[row] = the encoded codeword the rank was filled with. */
    std::vector<std::vector<uint32_t>> golden;

    /** checks[row][chip] = IECC check word (IECC variant only). */
    std::vector<std::vector<uint32_t>> checks;
};

/**
 * Fill @p dram with random data symbols, RS-encode every row, and
 * (for IECC) compute the per-chip check words — the golden state every
 * trial and session verifies against.
 */
RankState
fillRank(DramArray &dram, const SymbolRsCode &rs, const ChipSecded *iecc,
         Rng &rng)
{
    const DramGeometry &g = dram.geometry();
    RankState state;
    state.golden.assign(g.rows(), std::vector<uint32_t>(g.chips, 0));
    if (iecc)
        state.checks.assign(g.rows(), std::vector<uint32_t>(g.chips, 0));
    const uint64_t symbols = uint64_t(1) << g.symbolBits;
    for (size_t r = 0; r < g.rows(); ++r) {
        std::vector<uint32_t> &word = state.golden[r];
        for (size_t i = SymbolRsCode::kCheckSymbols; i < g.chips; ++i)
            word[i] = uint32_t(rng.nextBelow(symbols));
        rs.encode(word);
        dram.writeCodeword(r, word);
        if (iecc)
            for (size_t i = 0; i < g.chips; ++i)
                state.checks[r][i] = iecc->encode(word[i]);
    }
    return state;
}

/**
 * One scrub pass over every row: IECC pre-pass (in-chip corrections +
 * chip-erasure flags), then the rank-level SSC-DSD decode (erasure
 * mode when exactly one chip is flagged dead or erased), write-back of
 * corrected words, and verification of the *delivered* word against
 * golden. @p dead_chips adds known-dead chips to each row's erasures;
 * @p chip_hits (when non-null) accumulates, per chip, the number of
 * rows whose rank-level correction touched it — the observable the
 * session's dead-chip detector integrates.
 */
void
scrubRank(DramArray &dram, const SymbolRsCode &rs, const ChipSecded *iecc,
          const RankState &state, const std::set<size_t> &dead_chips,
          std::vector<size_t> *chip_hits, bool &due, bool &silent)
{
    const DramGeometry &g = dram.geometry();
    std::vector<uint32_t> word;
    for (size_t r = 0; r < g.rows(); ++r) {
        word = dram.readCodeword(r);
        std::vector<size_t> erasures;
        bool changed = false;
        if (iecc) {
            for (size_t i = 0; i < g.chips; ++i) {
                const uint32_t before = word[i];
                const DecodeStatus st =
                    iecc->decode(word[i], state.checks[r][i]);
                changed |= word[i] != before;
                if (st == DecodeStatus::kDetectedUncorrectable)
                    erasures.push_back(i);
            }
        }
        for (size_t chip : dead_chips)
            if (std::find(erasures.begin(), erasures.end(), chip) ==
                erasures.end())
                erasures.push_back(chip);

        SymbolDecodeResult res;
        if (erasures.empty())
            res = rs.decode(word);
        else if (erasures.size() == 1)
            res = rs.decodeErasure(word, erasures.front());
        else
            res.status = DecodeStatus::kDetectedUncorrectable;

        if (res.uncorrectable()) {
            due = true;
            continue;
        }
        if (res.corrected()) {
            changed = true;
            if (chip_hits)
                for (const auto &[pos, value] : res.corrections) {
                    (void)value;
                    ++(*chip_hits)[pos];
                }
        }
        if (changed)
            dram.writeCodeword(r, word);
        if (word != state.golden[r])
            silent = true;
    }
}

/** Shard @p trials over the pool (the scheme.cc runTrials pattern). */
template <typename Trial>
InjectionOutcome
runDramTrials(int trials, uint64_t seed, Trial &&trial)
{
    const size_t n = trials < 0 ? 0 : size_t(trials);
    std::vector<char> corrected(n, 0), silent(n, 0);
    parallelFor(n, [&](size_t t) {
        bool c = false, s = false;
        trial(shardSeed(seed, t), c, s);
        corrected[t] = c ? 1 : 0;
        silent[t] = s ? 1 : 0;
    });
    InjectionOutcome out;
    for (size_t t = 0; t < n; ++t) {
        ++out.trials;
        out.corrected += corrected[t];
        out.detectedOnly += !corrected[t] && !silent[t];
        out.silent += silent[t];
    }
    return out;
}

/**
 * Lifetime session over one rank. Repair units are chips (default) or
 * columns ("/cols"); a chip whose rank-level corrections dominated two
 * consecutive scrub passes is declared dead and becomes a standing
 * erasure, so a later fault on a second chip still decodes (the
 * chipkill ride-through). Repairing a chip clears its dead mark.
 */
class DramSession final : public DeviceSession
{
  public:
    DramSession(const DramSchemeConfig &config, uint64_t seed)
        : cfg(config), dram(config.geometry),
          rs(config.geometry.symbolBits,
             config.geometry.chips - SymbolRsCode::kCheckSymbols),
          iecc(config.iecc
                   ? std::make_unique<ChipSecded>(config.geometry.symbolBits)
                   : nullptr),
          streak(config.geometry.chips, 0)
    {
        Rng rng(seed);
        state = fillRank(dram, rs, iecc.get(), rng);
    }

    void inject(const FaultModel &fault, Rng &rng) override
    {
        FaultInjector injector(rng);
        injector.inject(dram.cells(), fault);
    }

    Verdict scrubAndVerify() override
    {
        bool due = false, silent = false;
        std::vector<size_t> hits(cfg.geometry.chips, 0);
        scrubRank(dram, rs, iecc.get(), state, dead, &hits, due, silent);
        // Dead-chip detector: a chip corrected in at least half the
        // rows "dominated" the pass; two consecutive dominated passes
        // (a transient kill heals after one) declare it dead.
        for (size_t i = 0; i < hits.size(); ++i) {
            if (2 * hits[i] >= cfg.geometry.rows()) {
                if (++streak[i] >= 2)
                    dead.insert(i);
            } else {
                streak[i] = 0;
            }
        }
        if (silent)
            return Verdict::kSdc;
        return due ? Verdict::kDue : Verdict::kCorrected;
    }

    std::vector<std::pair<size_t, size_t>> stuckRows() override
    {
        return cfg.columnRepair ? dram.stuckColumns() : dram.stuckChips();
    }

    void repairRow(size_t unit) override
    {
        if (cfg.columnRepair) {
            dram.repairColumn(unit);
            const size_t chip = dram.chipOfCol(unit);
            const size_t bit = unit % cfg.geometry.symbolBits;
            for (size_t r = 0; r < cfg.geometry.rows(); ++r)
                dram.cells().writeBit(
                    r, unit, (state.golden[r][chip] >> bit) & 1u);
        } else {
            dram.repairChip(unit);
            for (size_t r = 0; r < cfg.geometry.rows(); ++r)
                dram.writeSymbol(r, unit, state.golden[r][unit]);
            dead.erase(unit);
            streak[unit] = 0;
        }
    }

  private:
    DramSchemeConfig cfg;
    DramArray dram;
    SymbolRsCode rs;
    std::unique_ptr<ChipSecded> iecc;
    RankState state;
    std::set<size_t> dead;
    std::vector<size_t> streak;
};

class DramScheme final : public ProtectionScheme
{
  public:
    explicit DramScheme(const DramSchemeConfig &config)
        : cfg(config),
          rs(config.geometry.symbolBits,
             config.geometry.chips - SymbolRsCode::kCheckSymbols)
    {
    }

    std::string name() const override
    {
        const size_t n = cfg.geometry.chips;
        return std::string(cfg.iecc ? "IECC+" : "") + "Chipkill(x" +
               std::to_string(cfg.geometry.symbolBits) + ",RS" +
               std::to_string(n) + "/" +
               std::to_string(n - SymbolRsCode::kCheckSymbols) + ")";
    }

    std::string spec() const override
    {
        std::string s = std::string("dram:") +
                        (cfg.iecc ? "iecc+chipkill" : "chipkill") + "/x" +
                        std::to_string(cfg.geometry.symbolBits);
        if (cfg.geometry.rowsPerBank != 32)
            s += "/r" + std::to_string(cfg.geometry.rowsPerBank);
        if (cfg.geometry.banks != 2)
            s += "/b" + std::to_string(cfg.geometry.banks);
        if (cfg.columnRepair)
            s += "/cols";
        return s;
    }

    double storageOverhead() const override
    {
        const size_t b = cfg.geometry.symbolBits;
        const size_t data = rs.dataSymbols() * b;
        double check = double(SymbolRsCode::kCheckSymbols * b);
        if (cfg.iecc)
            check += double(cfg.geometry.chips *
                            ChipSecded(unsigned(b)).checkBits());
        return check / double(data);
    }

    InjectionOutcome injectAndRecover(const FaultModel &fault, int trials,
                                      uint64_t seed) const override
    {
        return runDramTrials(trials, seed, [&](uint64_t trial_seed,
                                               bool &c, bool &s) {
            Rng rng(trial_seed);
            DramArray dram(cfg.geometry);
            const std::unique_ptr<ChipSecded> chip_code =
                cfg.iecc ? std::make_unique<ChipSecded>(
                               unsigned(cfg.geometry.symbolBits))
                         : nullptr;
            const RankState state =
                fillRank(dram, rs, chip_code.get(), rng);
            FaultInjector injector(rng);
            injector.inject(dram.cells(), fault);
            bool due = false, silent = false;
            scrubRank(dram, rs, chip_code.get(), state, {}, nullptr, due,
                      silent);
            c = !due && !silent;
            s = silent;
        });
    }

    std::unique_ptr<DeviceSession>
    openLifetimeSession(uint64_t seed) const override
    {
        return std::make_unique<DramSession>(cfg, seed);
    }

  private:
    DramSchemeConfig cfg;
    SymbolRsCode rs;
};

} // namespace

SchemePtr
makeDramScheme(const DramSchemeConfig &config)
{
    return std::make_shared<DramScheme>(config);
}

SchemeFamily
dramSchemeFamily()
{
    SchemeFamily family;
    family.key = "dram";
    family.grammar =
        "dram:{chipkill|iecc+chipkill}/x{4|8}[/r<rows>][/b<banks>][/cols]";
    family.description =
        "DRAM rank with RS/SSC-DSD chipkill (x4: 12+3 chips, x8: 8+3 "
        "chips), optionally per-chip IECC SEC-DED feeding chip erasures; "
        "/cols repairs spare columns instead of spare chips";
    family.examples = {"dram:chipkill/x4", "dram:iecc+chipkill/x8",
                       "dram:chipkill/x8/r16/b4/cols"};
    family.parse = [](const std::string &body, const std::string &spec) {
        std::vector<std::string> tokens;
        size_t start = 0;
        while (start <= body.size()) {
            const size_t slash = body.find('/', start);
            tokens.push_back(body.substr(
                start, slash == std::string::npos ? std::string::npos
                                                  : slash - start));
            if (slash == std::string::npos)
                break;
            start = slash + 1;
        }

        DramSchemeConfig cfg;
        if (tokens.front() == "chipkill")
            cfg.iecc = false;
        else if (tokens.front() == "iecc+chipkill")
            cfg.iecc = true;
        else
            specError(spec, "unknown dram variant \"" + tokens.front() +
                                "\" (chipkill | iecc+chipkill)");

        bool have_width = false;
        for (size_t i = 1; i < tokens.size(); ++i) {
            const std::string &tok = tokens[i];
            if (tok == "x4" || tok == "x8") {
                cfg.geometry.symbolBits = tok == "x4" ? 4 : 8;
                have_width = true;
            } else if (tok == "cols") {
                cfg.columnRepair = true;
            } else if (tok.rfind("r", 0) == 0) {
                cfg.geometry.rowsPerBank =
                    parseNumber(spec, tok, tok.substr(1), 1, 4096);
            } else if (tok.rfind("b", 0) == 0) {
                cfg.geometry.banks =
                    parseNumber(spec, tok, tok.substr(1), 1, 64);
            } else {
                specError(spec, "unknown token \"" + tok + "\"");
            }
        }
        if (!have_width)
            specError(spec, "missing device width (\"/x4\" or \"/x8\")");
        cfg.geometry.chips = dataChipsForWidth(cfg.geometry.symbolBits) +
                             SymbolRsCode::kCheckSymbols;
        return makeDramScheme(cfg);
    };
    return family;
}

} // namespace tdc
