#include "workload/workload_profile.hh"

#include <cassert>

namespace tdc
{

namespace
{

/**
 * Calibration notes (targets from Figure 6 of the paper):
 *  - Commercial workloads (OLTP/DSS/Web) have large instruction
 *    footprints (visible L2 Read:Inst traffic), moderate L1D miss
 *    rates and bursty access patterns.
 *  - Scientific workloads stream data: Moldyn is compute-heavy with a
 *    hot L1, Ocean and Sparse miss more and move more fill/evict
 *    traffic.
 *  - Writes are a modest fraction of total cache accesses everywhere
 *    (the observation that makes read-before-write cheap).
 */
std::vector<WorkloadProfile>
buildWorkloads()
{
    std::vector<WorkloadProfile> all;

    WorkloadProfile oltp;
    oltp.name = "OLTP";
    oltp.loadFrac = 0.26;
    oltp.storeFrac = 0.12;
    oltp.l1iMissRate = 0.020;
    oltp.l1dMissRate = 0.045;
    oltp.l2MissRate = 0.18;
    oltp.dirtyEvictFrac = 0.40;
    oltp.burstOnProb = 0.03;
    oltp.burstOffProb = 0.08;
    oltp.burstLoadBoost = 1.7;
    oltp.dirtySharedFrac = 0.14;
    oltp.ilpBubbleProb = 0.62;
    all.push_back(oltp);

    WorkloadProfile dss;
    dss.name = "DSS";
    dss.loadFrac = 0.30;
    dss.storeFrac = 0.08;
    dss.l1iMissRate = 0.012;
    dss.l1dMissRate = 0.030;
    dss.l2MissRate = 0.30;
    dss.dirtyEvictFrac = 0.25;
    dss.burstOnProb = 0.02;
    dss.burstOffProb = 0.10;
    dss.burstLoadBoost = 1.5;
    dss.dirtySharedFrac = 0.06;
    dss.ilpBubbleProb = 0.55;
    all.push_back(dss);

    WorkloadProfile web;
    web.name = "Web";
    web.loadFrac = 0.27;
    web.storeFrac = 0.11;
    web.l1iMissRate = 0.025;
    web.l1dMissRate = 0.040;
    web.l2MissRate = 0.12;
    web.dirtyEvictFrac = 0.35;
    web.burstOnProb = 0.04;
    web.burstOffProb = 0.07;
    web.burstLoadBoost = 1.8;
    web.dirtySharedFrac = 0.1;
    web.ilpBubbleProb = 0.64;
    all.push_back(web);

    WorkloadProfile moldyn;
    moldyn.name = "Moldyn";
    moldyn.loadFrac = 0.30;
    moldyn.storeFrac = 0.11;
    moldyn.l1iMissRate = 0.001;
    moldyn.l1dMissRate = 0.012;
    moldyn.l2MissRate = 0.25;
    moldyn.dirtyEvictFrac = 0.45;
    moldyn.burstOnProb = 0.01;
    moldyn.burstOffProb = 0.25;
    moldyn.burstLoadBoost = 1.2;
    moldyn.scientific = true;
    moldyn.dirtySharedFrac = 0.04;
    moldyn.ilpBubbleProb = 0.42;
    all.push_back(moldyn);

    WorkloadProfile ocean;
    ocean.name = "Ocean";
    ocean.loadFrac = 0.27;
    ocean.storeFrac = 0.10;
    ocean.l1iMissRate = 0.001;
    ocean.l1dMissRate = 0.055;
    ocean.l2MissRate = 0.45;
    ocean.dirtyEvictFrac = 0.50;
    ocean.burstOnProb = 0.01;
    ocean.burstOffProb = 0.25;
    ocean.burstLoadBoost = 1.2;
    ocean.scientific = true;
    ocean.dirtySharedFrac = 0.06;
    ocean.ilpBubbleProb = 0.45;
    all.push_back(ocean);

    WorkloadProfile sparse;
    sparse.name = "Sparse";
    sparse.loadFrac = 0.30;
    sparse.storeFrac = 0.08;
    sparse.l1iMissRate = 0.001;
    sparse.l1dMissRate = 0.065;
    sparse.l2MissRate = 0.50;
    sparse.dirtyEvictFrac = 0.30;
    sparse.burstOnProb = 0.01;
    sparse.burstOffProb = 0.25;
    sparse.burstLoadBoost = 1.2;
    sparse.scientific = true;
    sparse.dirtySharedFrac = 0.03;
    sparse.ilpBubbleProb = 0.48;
    all.push_back(sparse);

    return all;
}

} // namespace

const std::vector<WorkloadProfile> &
standardWorkloads()
{
    static const std::vector<WorkloadProfile> all = buildWorkloads();
    return all;
}

const WorkloadProfile &
workloadByName(const std::string &name)
{
    for (const WorkloadProfile &w : standardWorkloads()) {
        if (w.name == name)
            return w;
    }
    assert(false && "unknown workload");
    return standardWorkloads().front();
}

} // namespace tdc
