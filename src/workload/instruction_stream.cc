#include "workload/instruction_stream.hh"

#include <algorithm>

namespace tdc
{

InstructionStream::InstructionStream(const WorkloadProfile &profile_,
                                     uint64_t seed)
    : profile(profile_), rng(seed)
{
}

SyntheticInstr
InstructionStream::next()
{
    // Markov burst phase transition.
    if (inBurst) {
        if (rng.nextBool(profile.burstOffProb))
            inBurst = false;
    } else {
        if (rng.nextBool(profile.burstOnProb))
            inBurst = true;
    }
    const double boost = inBurst ? profile.burstLoadBoost : 1.0;
    const double load_p = std::min(0.9, profile.loadFrac * boost);
    const double store_p = std::min(0.9 - load_p, profile.storeFrac * boost);

    SyntheticInstr instr;
    instr.ifetchMiss = rng.nextBool(profile.l1iMissRate);
    instr.bankHash = uint32_t(rng.next());

    // ILP bubbles: geometric tail, capped so one draw cannot freeze a
    // core for long.
    if (rng.nextBool(profile.ilpBubbleProb)) {
        instr.bubbles = 1;
        while (instr.bubbles < 4 && rng.nextBool(0.45))
            ++instr.bubbles;
    }

    const double draw = rng.nextDouble();
    if (draw < load_p)
        instr.kind = SyntheticInstr::Kind::kLoad;
    else if (draw < load_p + store_p)
        instr.kind = SyntheticInstr::Kind::kStore;
    else
        instr.kind = SyntheticInstr::Kind::kNonMem;

    if (instr.kind != SyntheticInstr::Kind::kNonMem) {
        instr.l1dMiss = rng.nextBool(profile.l1dMissRate);
        if (instr.l1dMiss) {
            instr.l2Miss = rng.nextBool(profile.l2MissRate);
            instr.dirtyEvict = rng.nextBool(profile.dirtyEvictFrac);
            instr.dirtyShared =
                !instr.l2Miss && rng.nextBool(profile.dirtySharedFrac);
        }
    }
    return instr;
}

} // namespace tdc
