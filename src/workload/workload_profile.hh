/**
 * @file
 * Per-workload behavioural profiles for the CMP cache-hierarchy
 * simulation.
 *
 * The paper drives FLEXUS full-system simulation with commercial
 * (OLTP/DSS/Web) and scientific (Moldyn/Ocean/Sparse) workloads. We
 * do not have Solaris images or DB2; instead each workload is
 * characterized by the statistics that determine cache-port and
 * bandwidth behaviour — instruction mix, miss ratios, dirty-eviction
 * ratio and burstiness — calibrated so the per-100-cycle access mixes
 * match Figure 6. DESIGN.md documents this substitution.
 */

#ifndef TDC_WORKLOAD_WORKLOAD_PROFILE_HH
#define TDC_WORKLOAD_WORKLOAD_PROFILE_HH

#include <string>
#include <vector>

namespace tdc
{

/** Behavioural profile of one workload. */
struct WorkloadProfile
{
    std::string name;

    /** Fraction of instructions that are loads. */
    double loadFrac = 0.25;
    /** Fraction of instructions that are stores. */
    double storeFrac = 0.10;

    /** L1 I-cache miss probability per instruction. */
    double l1iMissRate = 0.005;
    /** L1 D-cache miss probability per data access. */
    double l1dMissRate = 0.03;
    /** L2 miss probability per L2 access. */
    double l2MissRate = 0.15;

    /** Probability a replaced L1 line is dirty (causes a write-back). */
    double dirtyEvictFrac = 0.30;

    /**
     * Probability that an L1 miss is served by dirty data in a peer
     * core's L1 (an L1-to-L1 transfer — one of the operations the
     * paper lists as directly affected by 2D coding). High for the
     * sharing-intensive commercial workloads.
     */
    double dirtySharedFrac = 0.05;

    /**
     * Probability that an instruction is preceded by pipeline bubbles
     * (dependency chains, branch redirects, FU conflicts). Encodes
     * the workload's ILP: commercial codes issue fewer instructions
     * per cycle than streaming scientific kernels. Bubbles are drawn
     * inside the instruction stream so baseline and protected runs
     * stay matched sample-for-sample.
     */
    double ilpBubbleProb = 0.55;

    /**
     * Two-state Markov burstiness: probability of switching from calm
     * to bursty and back, and the memory-intensity multiplier applied
     * while bursty. Commercial workloads are bursty; scientific ones
     * stream steadily.
     */
    double burstOnProb = 0.02;
    double burstOffProb = 0.10;
    double burstLoadBoost = 1.6;

    /** True for the scientific (streaming) workloads. */
    bool scientific = false;
};

/**
 * The six workloads of Table 1, in the order the figures plot them:
 * OLTP (DB2), DSS (DB2), Web (Apache), Moldyn, Ocean, Sparse.
 */
const std::vector<WorkloadProfile> &standardWorkloads();

/** Find a standard workload by name (asserts on unknown name). */
const WorkloadProfile &workloadByName(const std::string &name);

} // namespace tdc

#endif // TDC_WORKLOAD_WORKLOAD_PROFILE_HH
