/**
 * @file
 * Synthetic per-core instruction stream driven by a WorkloadProfile.
 */

#ifndef TDC_WORKLOAD_INSTRUCTION_STREAM_HH
#define TDC_WORKLOAD_INSTRUCTION_STREAM_HH

#include <cstdint>

#include "common/rng.hh"
#include "workload/workload_profile.hh"

namespace tdc
{

/** One synthetic instruction as seen by the cache hierarchy. */
struct SyntheticInstr
{
    enum class Kind
    {
        kNonMem,
        kLoad,
        kStore,
    };

    Kind kind = Kind::kNonMem;

    /** Instruction-fetch misses the L1I (goes to L2). */
    bool ifetchMiss = false;

    /** For loads/stores: the data access misses the L1D. */
    bool l1dMiss = false;

    /** For L1D misses: the refill also misses the L2. */
    bool l2Miss = false;

    /** For L1D misses: the victim line is dirty (write-back to L2). */
    bool dirtyEvict = false;

    /** For L1D misses: served by dirty data in a peer core's L1. */
    bool dirtyShared = false;

    /** Uniform hash used to pick an L2 bank. */
    uint32_t bankHash = 0;

    /** Dead issue slots preceding this instruction (ILP stalls). */
    unsigned bubbles = 0;
};

/**
 * Stochastic instruction generator with two-state Markov burstiness.
 * Each core (or hardware thread) owns one stream seeded
 * independently, so runs are reproducible and baseline/protected
 * simulations can be paired sample-by-sample (the matched-pair
 * methodology the paper borrows from SimFlex).
 */
class InstructionStream
{
  public:
    InstructionStream(const WorkloadProfile &profile, uint64_t seed);

    /** Generate the next instruction. */
    SyntheticInstr next();

    /** Whether the stream is currently in its bursty phase. */
    bool bursty() const { return inBurst; }

  private:
    const WorkloadProfile profile;
    Rng rng;
    bool inBurst = false;
};

} // namespace tdc

#endif // TDC_WORKLOAD_INSTRUCTION_STREAM_HH
