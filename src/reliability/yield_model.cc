#include "reliability/yield_model.hh"

#include <cassert>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace tdc
{

YieldParams
YieldParams::l2Cache16MB()
{
    YieldParams p;
    p.words = 16ull * 1024 * 1024 * 8 / 64; // 2M 64-bit data words
    p.wordBits = 72;                        // (72,64) SECDED storage
    return p;
}

double
YieldModel::expectedFaultyWords(double faults) const
{
    // Per-word fault count ~ Poisson(lambda), lambda = F / N.
    const double lambda = faults / double(p.words);
    return double(p.words) * (1.0 - std::exp(-lambda));
}

double
YieldModel::expectedMultiFaultWords(double faults) const
{
    const double lambda = faults / double(p.words);
    return double(p.words) *
           (1.0 - std::exp(-lambda) * (1.0 + lambda));
}

double
YieldModel::poissonCdf(double mean, double k)
{
    if (mean <= 0.0)
        return 1.0;
    if (mean < 60.0) {
        double term = std::exp(-mean);
        double sum = term;
        for (double i = 1.0; i <= k; ++i) {
            term *= mean / i;
            sum += term;
        }
        return std::min(1.0, sum);
    }
    // Normal approximation with continuity correction.
    const double z = (k + 0.5 - mean) / std::sqrt(mean);
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
YieldModel::yieldSpareOnly(double faults, size_t spares) const
{
    return poissonCdf(expectedFaultyWords(faults), double(spares));
}

double
YieldModel::yieldEccOnly(double faults) const
{
    return poissonCdf(expectedMultiFaultWords(faults), 0.0);
}

double
YieldModel::yieldEccPlusSpares(double faults, size_t spares) const
{
    return poissonCdf(expectedMultiFaultWords(faults), double(spares));
}

YieldModel::McResult
YieldModel::monteCarlo(size_t faults, size_t spares, int trials,
                       Rng &rng) const
{
    McResult out;
    for (int t = 0; t < trials; ++t) {
        // Scatter faults; count per-word multiplicities.
        std::unordered_map<uint64_t, unsigned> hit;
        hit.reserve(faults * 2);
        for (size_t f = 0; f < faults; ++f) {
            const uint64_t bit = rng.nextBelow(p.totalBits());
            ++hit[bit / p.wordBits];
        }
        size_t any = hit.size();
        size_t multi = 0;
        for (const auto &[word, count] : hit)
            multi += count >= 2;
        out.spareOnly += any <= spares ? 1.0 : 0.0;
        out.eccOnly += multi == 0 ? 1.0 : 0.0;
        out.eccPlusSpares += multi <= spares ? 1.0 : 0.0;
    }
    out.spareOnly /= trials;
    out.eccOnly /= trials;
    out.eccPlusSpares /= trials;
    return out;
}

} // namespace tdc
