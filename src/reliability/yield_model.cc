#include "reliability/yield_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/parallel.hh"

namespace tdc
{

YieldParams
YieldParams::l2Cache16MB()
{
    YieldParams p;
    p.words = 16ull * 1024 * 1024 * 8 / 64; // 2M 64-bit data words
    p.wordBits = 72;                        // (72,64) SECDED storage
    return p;
}

double
YieldModel::expectedFaultyWords(double faults) const
{
    // Per-word fault count ~ Poisson(lambda), lambda = F / N.
    const double lambda = faults / double(p.words);
    return double(p.words) * (1.0 - std::exp(-lambda));
}

double
YieldModel::expectedMultiFaultWords(double faults) const
{
    const double lambda = faults / double(p.words);
    return double(p.words) *
           (1.0 - std::exp(-lambda) * (1.0 + lambda));
}

double
YieldModel::poissonCdf(double mean, double k)
{
    if (mean <= 0.0)
        return 1.0;
    if (mean < 60.0) {
        double term = std::exp(-mean);
        double sum = term;
        for (double i = 1.0; i <= k; ++i) {
            term *= mean / i;
            sum += term;
        }
        return std::min(1.0, sum);
    }
    // Normal approximation with continuity correction.
    const double z = (k + 0.5 - mean) / std::sqrt(mean);
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
YieldModel::yieldSpareOnly(double faults, size_t spares) const
{
    return poissonCdf(expectedFaultyWords(faults), double(spares));
}

double
YieldModel::yieldEccOnly(double faults) const
{
    return poissonCdf(expectedMultiFaultWords(faults), 0.0);
}

double
YieldModel::yieldEccPlusSpares(double faults, size_t spares) const
{
    return poissonCdf(expectedMultiFaultWords(faults), double(spares));
}

YieldModel::TrialCounts
YieldModel::scatterTrial(size_t faults, Rng &rng,
                         std::unordered_map<uint64_t, unsigned> &hit)
    const
{
    // Scatter faults; count per-word multiplicities.
    hit.clear();
    for (size_t f = 0; f < faults; ++f) {
        const uint64_t bit = rng.nextBelow(p.totalBits());
        ++hit[bit / p.wordBits];
    }
    TrialCounts counts;
    counts.any = hit.size();
    for (const auto &[word, count] : hit)
        counts.multi += count >= 2;
    return counts;
}

YieldModel::McResult
YieldModel::monteCarlo(size_t faults, size_t spares, int trials,
                       Rng &rng) const
{
    McResult out;
    std::unordered_map<uint64_t, unsigned> hit;
    hit.reserve(faults * 2);
    for (int t = 0; t < trials; ++t) {
        const TrialCounts counts = scatterTrial(faults, rng, hit);
        out.spareOnly += counts.any <= spares ? 1.0 : 0.0;
        out.eccOnly += counts.multi == 0 ? 1.0 : 0.0;
        out.eccPlusSpares += counts.multi <= spares ? 1.0 : 0.0;
    }
    out.spareOnly /= trials;
    out.eccOnly /= trials;
    out.eccPlusSpares /= trials;
    return out;
}

YieldModel::McResult
YieldModel::monteCarloParallel(size_t faults, size_t spares, int trials,
                               uint64_t seed) const
{
    McResult out;
    if (trials <= 0)
        return out;

    // One trial scatters O(faults) cells into a hash map, so trials
    // are chunky; shard a handful per stream. The shard size is fixed
    // (never derived from the thread count) to keep the trial ->
    // RNG-stream mapping thread-count-invariant.
    constexpr int kShardTrials = 4;
    const size_t shards = size_t((trials + kShardTrials - 1) / kShardTrials);
    struct Counts
    {
        int spareOnly = 0;
        int eccOnly = 0;
        int eccPlusSpares = 0;
    };
    std::vector<Counts> counts(shards);
    parallelFor(shards, [&](size_t s) {
        Rng rng(shardSeed(seed, s));
        const int lo = int(s) * kShardTrials;
        const int hi = std::min(trials, lo + kShardTrials);
        Counts c;
        std::unordered_map<uint64_t, unsigned> hit;
        hit.reserve(faults * 2);
        for (int t = lo; t < hi; ++t) {
            const TrialCounts trial = scatterTrial(faults, rng, hit);
            c.spareOnly += trial.any <= spares;
            c.eccOnly += trial.multi == 0;
            c.eccPlusSpares += trial.multi <= spares;
        }
        counts[s] = c;
    });

    for (const Counts &c : counts) {
        out.spareOnly += c.spareOnly;
        out.eccOnly += c.eccOnly;
        out.eccPlusSpares += c.eccPlusSpares;
    }
    out.spareOnly /= trials;
    out.eccOnly /= trials;
    out.eccPlusSpares /= trials;
    return out;
}

} // namespace tdc
