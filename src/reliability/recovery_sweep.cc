#include "reliability/recovery_sweep.hh"

#include <vector>

#include "array/fault.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/twod_array.hh"

namespace tdc
{

namespace
{

/** Per-trial outcome, reduced in trial order after the parallel run. */
struct TrialOutcome
{
    bool recovered = false;
    bool silent = false;
    uint64_t rowReads = 0;
    uint64_t rowsReconstructed = 0;
    uint64_t columnsRepaired = 0;
};

TrialOutcome
runTrial(const RecoverySweepParams &p, size_t trial)
{
    TrialOutcome out;
    Rng rng(shardSeed(p.seed, trial));

    TwoDimArray arr(p.config);
    std::vector<std::vector<BitVector>> golden(
        arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
    for (size_t r = 0; r < arr.rows(); ++r) {
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            BitVector d(arr.dataBits());
            for (size_t w = 0; w < arr.dataBits(); w += 64) {
                const size_t len = std::min<size_t>(64, arr.dataBits() - w);
                d.setSlice(w, BitVector(len, rng.next()));
            }
            arr.writeWord(r, s, d);
            golden[r][s] = std::move(d);
        }
    }

    FaultInjector inj(rng);
    inj.inject(arr.cells(), p.fault);

    const bool scrubbed = arr.scrub();
    if (arr.stats().recoveries > 0) {
        const RecoveryReport &rep = arr.lastRecovery();
        out.rowReads = rep.rowReads;
        out.rowsReconstructed = rep.rowsReconstructed.size();
        out.columnsRepaired = rep.columnsRepaired.size();
    }

    // Full verification pass: every word is read back so a silently
    // wrong word is counted even when a detected (flagged) word comes
    // first in scan order.
    bool any_bad = !scrubbed;
    for (size_t r = 0; r < arr.rows(); ++r) {
        for (size_t s = 0; s < arr.wordsPerRow(); ++s) {
            const AccessResult res = arr.readWord(r, s);
            if (!res.ok())
                any_bad = true;
            else if (res.data != golden[r][s])
                out.silent = any_bad = true;
        }
    }
    out.recovered = !any_bad;
    return out;
}

} // namespace

RecoverySweepResult
runRecoverySweep(const RecoverySweepParams &params)
{
    const size_t n = params.trials < 0 ? 0 : size_t(params.trials);
    std::vector<TrialOutcome> outcomes(n);
    parallelFor(n, [&](size_t trial) {
        outcomes[trial] = runTrial(params, trial);
    });

    RecoverySweepResult result;
    for (const TrialOutcome &o : outcomes) {
        ++result.trials;
        result.recovered += o.recovered;
        result.detectedOnly += !o.recovered && !o.silent;
        result.silent += o.silent;
        result.rowReads += o.rowReads;
        result.rowsReconstructed += o.rowsReconstructed;
        result.columnsRepaired += o.columnsRepaired;
    }
    return result;
}

} // namespace tdc
