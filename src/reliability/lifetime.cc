#include "reliability/lifetime.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "common/parallel.hh"
#include "reliability/result_cache.hh"

namespace tdc
{

// --- FIT mixes ------------------------------------------------------

std::string
FitMix::spec() const
{
    return scale == 1.0 ? base : base + "*" + exactDouble(scale);
}

double
FitMix::totalFitTransient() const
{
    double sum = 0.0;
    for (const FitClass &c : classes)
        sum += c.fitTransient;
    return sum;
}

double
FitMix::totalFitPermanent() const
{
    double sum = 0.0;
    for (const FitClass &c : classes)
        sum += c.fitPermanent;
    return sum;
}

FitMix
jaguarFitMix(double scale)
{
    // The FaultSim Jaguar mix, mapped onto the repository's array
    // footprints: bit = one cell, word = an 8-bit row burst, column /
    // row = full physical lines, bank = a small solid cluster,
    // multi-bank / multi-rank = progressively larger sparse clusters
    // (one particle or one failing peripheral structure touching many
    // cells of a region).
    FitMix mix;
    mix.base = "jaguar";
    mix.scale = scale;
    mix.classes = {
        {"bit", FaultModel::singleBit(), 14.2, 18.6},
        {"word", FaultModel::rowBurst(8), 1.4, 0.3},
        {"column", FaultModel::fullColumn(), 1.4, 5.6},
        {"row", FaultModel::fullRow(), 0.2, 8.2},
        {"bank", FaultModel::cluster(4, 4), 0.8, 10.0},
        {"nbank", FaultModel::cluster(16, 16, 0.25), 0.3, 1.4},
        {"nrank", FaultModel::cluster(32, 32, 0.125), 0.9, 2.8},
    };
    return mix;
}

std::vector<std::string>
fitMixNames()
{
    return {"jaguar", "transient", "permanent", "single"};
}

namespace
{

[[noreturn]] void
mixError(const std::string &spec, const std::string &what)
{
    throw std::invalid_argument("fit-mix spec \"" + spec + "\": " + what);
}

FitMix
namedMix(const std::string &name, const std::string &spec)
{
    if (name == "jaguar")
        return jaguarFitMix();
    if (name == "transient" || name == "permanent") {
        // The Jaguar mix restricted to one persistence: the classes
        // keep their own rates, the other manifestation is zeroed.
        FitMix mix = jaguarFitMix();
        mix.base = name;
        for (FitClass &c : mix.classes) {
            if (name == "transient")
                c.fitPermanent = 0.0;
            else
                c.fitTransient = 0.0;
        }
        return mix;
    }
    if (name == "single") {
        FitMix mix;
        mix.base = "single";
        mix.classes = {{"bit", FaultModel::singleBit(), 50.0, 50.0}};
        return mix;
    }
    std::string known;
    for (const std::string &n : fitMixNames())
        known += (known.empty() ? "" : ", ") + n;
    mixError(spec, "unknown mix \"" + name + "\" (known: " + known + ")");
}

} // namespace

FitMix
parseFitMix(const std::string &spec)
{
    const size_t star = spec.find('*');
    const std::string name = spec.substr(0, star);
    FitMix mix = namedMix(name, spec);
    if (star != std::string::npos) {
        const std::string digits = spec.substr(star + 1);
        char *end = nullptr;
        const double scale = std::strtod(digits.c_str(), &end);
        if (digits.empty() || end != digits.c_str() + digits.size() ||
            !std::isfinite(scale) || scale <= 0.0)
            mixError(spec, "malformed scale \"" + digits +
                               "\" (expect a positive number)");
        mix.scale = scale;
    }
    return mix;
}

// --- Timelines ------------------------------------------------------

std::vector<LifetimeEvent>
drawEventTimeline(const FitMix &mix, double mission_hours, uint64_t seed)
{
    std::vector<LifetimeEvent> events;
    const double rate = mix.eventsPerHour();
    const double total_fit = mix.totalFit();
    if (rate <= 0.0 || mission_hours <= 0.0)
        return events;

    Rng rng(seed);
    double t = 0.0;
    for (;;) {
        t += rng.nextExponential(rate);
        if (t >= mission_hours)
            break;
        // Joint (class, persistence) pick: one uniform draw over the
        // cumulative unscaled FIT buckets, transient before permanent
        // within each class.
        double pick = rng.nextDouble() * total_fit;
        LifetimeEvent ev;
        ev.hours = t;
        ev.classIndex = uint32_t(mix.classes.size() - 1);
        ev.hard = true;
        for (uint32_t i = 0; i < mix.classes.size(); ++i) {
            const FitClass &c = mix.classes[i];
            if (pick < c.fitTransient) {
                ev.classIndex = i;
                ev.hard = false;
                break;
            }
            pick -= c.fitTransient;
            if (pick < c.fitPermanent) {
                ev.classIndex = i;
                ev.hard = true;
                break;
            }
            pick -= c.fitPermanent;
        }
        events.push_back(ev);
    }
    return events;
}

// --- The engine -----------------------------------------------------

namespace
{

/** Per-trial outcome, reduced in trial order by runLifetime. */
struct TrialOutcome
{
    bool due = false;
    bool sdc = false;
    double observedHours = 0.0;
    int64_t events = 0;
    int64_t hardEvents = 0;
    int64_t correctedEvents = 0;
    int64_t dueEvents = 0;
    int64_t sdcEvents = 0;
    int64_t scrubs = 0;
    int64_t repairs = 0;
};

TrialOutcome
runTrial(const LifetimeParams &p, const DeviceSessionFactory &factory,
         uint64_t trial_seed)
{
    TrialOutcome out;
    out.observedHours = p.missionHours;

    // The timeline and the golden fill are drawn from dedicated
    // kSeedDomainLifetime streams, and event k's injection coordinates
    // from the kSeedDomainInjection stream counted by *event index* —
    // all three independent of the scrub interval and spare budget, so
    // differently-configured devices live through the same history.
    const std::vector<LifetimeEvent> timeline = drawEventTimeline(
        p.mix, p.missionHours, shardSeed(trial_seed, kSeedDomainLifetime, 0));
    out.events = int64_t(timeline.size());
    if (timeline.empty())
        return out; // nothing arrived: trivially survives

    std::unique_ptr<DeviceSession> session =
        factory(shardSeed(trial_seed, kSeedDomainLifetime, 1));
    int spares = p.spareRows;

    size_t i = 0;
    while (i < timeline.size()) {
        // The batch [i, j) = every event sharing event i's scrub
        // window. Empty windows are skipped: scrubbing an already
        // clean-or-stable device is idempotent (a corrected verdict
        // reproduces itself until new faults arrive).
        size_t j = i + 1;
        if (p.scrubIntervalHours > 0.0) {
            const uint64_t window =
                uint64_t(timeline[i].hours / p.scrubIntervalHours);
            while (j < timeline.size() &&
                   uint64_t(timeline[j].hours / p.scrubIntervalHours) ==
                       window)
                ++j;
        }

        for (size_t k = i; k < j; ++k) {
            const LifetimeEvent &ev = timeline[k];
            FaultModel fault = p.mix.classes[ev.classIndex].shape;
            fault.persistence = ev.hard ? FaultPersistence::kStuckAt
                                        : FaultPersistence::kTransient;
            Rng rng(shardSeed(trial_seed, kSeedDomainInjection, k));
            session->inject(fault, rng);
            if (ev.hard)
                ++out.hardEvents;
        }

        ++out.scrubs;
        const DeviceSession::Verdict verdict = session->scrubAndVerify();
        const int64_t batch = int64_t(j - i);
        switch (verdict) {
          case DeviceSession::Verdict::kCorrected:
            out.correctedEvents += batch;
            break;
          case DeviceSession::Verdict::kDue:
            out.dueEvents += batch;
            break;
          case DeviceSession::Verdict::kSdc:
            out.sdcEvents += batch;
            break;
        }
        if (verdict != DeviceSession::Verdict::kCorrected) {
            // Failure time = the failing batch's FIRST arrival: the
            // moment the eventually-fatal damage began accumulating.
            // Anchoring to an event (not the scrub boundary) keeps the
            // failure clock a function of the shared event history;
            // anchoring to the first (not last) event keeps rare
            // scrubbing from inflating MTTF by batching late events
            // into the fatal window.
            out.due = verdict == DeviceSession::Verdict::kDue;
            out.sdc = verdict == DeviceSession::Verdict::kSdc;
            out.observedHours = timeline[i].hours;
            return out;
        }

        // BISR-style repair after a clean scrub: spend spare rows on
        // the most-stuck rows first (ties to the lowest row index).
        if (spares > 0) {
            std::vector<std::pair<size_t, size_t>> stuck =
                session->stuckRows();
            std::sort(stuck.begin(), stuck.end(),
                      [](const auto &a, const auto &b) {
                          return a.second != b.second ? a.second > b.second
                                                      : a.first < b.first;
                      });
            for (const auto &[row, count] : stuck) {
                if (spares == 0)
                    break;
                session->repairRow(row);
                --spares;
                ++out.repairs;
            }
        }
        i = j;
    }
    return out;
}

} // namespace

LifetimeResult
runLifetime(const LifetimeParams &params, const DeviceSessionFactory &factory)
{
    const size_t n = params.trials < 0 ? 0 : size_t(params.trials);
    std::vector<TrialOutcome> outcomes(n);
    parallelFor(n, [&](size_t t) {
        outcomes[t] = runTrial(params, factory, shardSeed(params.seed, t));
    });

    LifetimeResult res;
    for (const TrialOutcome &o : outcomes) {
        ++res.trials;
        res.survived += !o.due && !o.sdc;
        res.dueTrials += o.due;
        res.sdcTrials += o.sdc;
        res.events += o.events;
        res.hardEvents += o.hardEvents;
        res.correctedEvents += o.correctedEvents;
        res.dueEvents += o.dueEvents;
        res.sdcEvents += o.sdcEvents;
        res.scrubs += o.scrubs;
        res.repairs += o.repairs;
        res.deviceHours += o.observedHours;
    }
    return res;
}

double
LifetimeResult::mttfHours() const
{
    if (failures() == 0)
        return std::numeric_limits<double>::infinity();
    return deviceHours / double(failures());
}

double
LifetimeResult::fit() const
{
    if (deviceHours <= 0.0)
        return 0.0;
    return double(failures()) * 1e9 / deviceHours;
}

double
LifetimeResult::survivalRate() const
{
    return trials == 0 ? 1.0 : double(survived) / double(trials);
}

std::string
LifetimeResult::summary() const
{
    char buf[96];
    if (failures() == 0) {
        std::snprintf(buf, sizeof(buf), "mttf inf fit 0 (%d/%d)", survived,
                      trials);
    } else {
        std::snprintf(buf, sizeof(buf), "mttf %.3gh fit %.3g (%d/%d)",
                      mttfHours(), fit(), survived, trials);
    }
    return buf;
}

// --- Caching --------------------------------------------------------

std::string
lifetimeCacheKey(const LifetimeParams &p)
{
    return "lifetime|scheme=" + p.schemeSpec + "|mix=" + p.mix.spec() +
           "|mission=" + exactDouble(p.missionHours) +
           "|scrub=" + exactDouble(p.scrubIntervalHours) +
           "|spares=" + std::to_string(p.spareRows) +
           "|trials=" + std::to_string(p.trials) +
           "|seed=" + std::to_string(p.seed);
}

namespace
{

ResultCache::Record
packLifetime(const LifetimeResult &r)
{
    return ResultCache::Record{
        {r.trials, r.survived, r.dueTrials, r.sdcTrials, r.events,
         r.hardEvents, r.correctedEvents, r.dueEvents, r.sdcEvents,
         r.scrubs, r.repairs},
        {r.deviceHours}};
}

constexpr size_t kLifetimeInts = 11;

LifetimeResult
unpackLifetime(const ResultCache::Record &rec)
{
    LifetimeResult r;
    r.trials = int(rec.ints[0]);
    r.survived = int(rec.ints[1]);
    r.dueTrials = int(rec.ints[2]);
    r.sdcTrials = int(rec.ints[3]);
    r.events = rec.ints[4];
    r.hardEvents = rec.ints[5];
    r.correctedEvents = rec.ints[6];
    r.dueEvents = rec.ints[7];
    r.sdcEvents = rec.ints[8];
    r.scrubs = rec.ints[9];
    r.repairs = rec.ints[10];
    r.deviceHours = rec.reals[0];
    return r;
}

} // namespace

LifetimeResult
cachedLifetime(const LifetimeParams &params,
               const DeviceSessionFactory &factory)
{
    const std::string key = lifetimeCacheKey(params);
    ResultCache &cache = resultCache();
    const ResultCache::Record rec = cache.memoize(
        key, [&] { return packLifetime(runLifetime(params, factory)); });
    if (rec.ints.size() != kLifetimeInts || rec.reals.size() != 1) {
        // Width mismatch (a foreign record type under this key):
        // recompute and overwrite rather than fabricate counters.
        const LifetimeResult fresh = runLifetime(params, factory);
        cache.store(key, packLifetime(fresh));
        return fresh;
    }
    return unpackLifetime(rec);
}

} // namespace tdc
