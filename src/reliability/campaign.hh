/**
 * @file
 * Unified figure-campaign driver. Every figure benchmark in the study
 * is a grid — scheme x interleave degree x fault model x workload —
 * whose cells are either analytic model evaluations or Monte-Carlo
 * injection campaigns. This driver expresses such a figure
 * declaratively (axes + a pure cell evaluator) and executes it over
 * the parallelFor worker pool with counter-based seeding, so every
 * campaign table is bit-identical at any TDC_THREADS setting.
 */

#ifndef TDC_RELIABILITY_CAMPAIGN_HH
#define TDC_RELIABILITY_CAMPAIGN_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "reliability/result_cache.hh"

namespace tdc
{

/**
 * A declarative figure grid: row labels x column headers, with a pure
 * cell evaluator. The evaluator must depend only on (row, col) — any
 * randomness must come from a counter-based stream derived from the
 * cell index — so the executed table is independent of thread count
 * and execution order.
 */
struct CampaignGrid
{
    /** Panel heading printed above the table ("--- Figure 2(b) ---").
     *  Empty = table only. */
    std::string title;

    /** Header of the label column ("Error footprint", "Workload"...). */
    std::string rowHeader;

    std::vector<std::string> rowLabels;
    std::vector<std::string> colHeaders;

    /** Formatted value of cell (row, col). Analytic grids set this;
     *  injection grids should set outcomeCell instead so the numeric
     *  result is computed (and memoized) separately from formatting. */
    std::function<std::string(size_t row, size_t col)> cell;

    /**
     * Numeric evaluator for injection grids: returns the raw
     * InjectionOutcome of cell (row, col) — typically via
     * cachedInjectAndRecover, so repeated grids replay from the result
     * cache. When set, `cell` must be empty; the executor evaluates
     * outcomes first (in parallel when parallelCells), keeps them in
     * CampaignResult::outcomes, and renders the table cells afterwards
     * through formatOutcome.
     */
    std::function<InjectionOutcome(size_t row, size_t col)> outcomeCell;

    /** Renders an outcome into its table cell (default: summary()).
     *  Pure formatting only — never any computation worth caching. */
    std::function<std::string(const InjectionOutcome &outcome)>
        formatOutcome;

    /**
     * Optional trailing rows computed from the full cell matrix after
     * every cell ran (e.g. a per-column "Average" row). Each returned
     * row is label + one cell per column.
     */
    std::function<std::vector<std::vector<std::string>>(
        const std::vector<std::vector<std::string>> &cells)>
        summary;

    /**
     * Evaluate cells over the worker pool. Leave on for grids of
     * Monte-Carlo campaigns (each cell's inner sweep then degrades to
     * serial via the nested-parallelFor rule); analytic grids may
     * clear it to keep the pool free for an outer driver.
     */
    bool parallelCells = true;
};

/** An executed campaign: the raw cells plus the rendered table. */
struct CampaignResult
{
    std::string title;
    std::vector<std::string> headers; ///< rowHeader + colHeaders
    std::vector<std::vector<std::string>> rows; ///< label + cells (+summary)
    std::vector<std::vector<std::string>> cells; ///< raw grid cells only

    /** Raw numeric outcomes (outcomeCell grids only, else empty) —
     *  the memoizable result, decoupled from the rendered strings. */
    std::vector<std::vector<InjectionOutcome>> outcomes;

    /** Assemble the tdc::Table (header + rows). */
    Table toTable() const;

    /** Title (when present), blank line, then the table. */
    std::string render() const;

    void print() const;
};

/** Execute the grid: all cells, then summary rows, reduced in order. */
CampaignResult runCampaignGrid(const CampaignGrid &grid);

} // namespace tdc

#endif // TDC_RELIABILITY_CAMPAIGN_HH
