/**
 * @file
 * In-the-field reliability model: the interaction between
 * manufacture-time hard errors repaired by ECC and later soft errors
 * (Figure 8(b) of the paper).
 */

#ifndef TDC_RELIABILITY_SOFT_ERROR_MODEL_HH
#define TDC_RELIABILITY_SOFT_ERROR_MODEL_HH

#include <cstddef>

#include "common/rng.hh"

namespace tdc
{

/** System and environment parameters of the Figure 8(b) study. */
struct ReliabilityParams
{
    /** Number of caches in the system. */
    size_t numCaches = 10;
    /** Megabits of data per cache (16MB = 128 Mb). */
    double mbitPerCache = 16.0 * 8.0;
    /** Soft-error rate in FIT per Mbit (paper: 1000 FIT/Mb). */
    double fitPerMbit = 1000.0;
    /** Fraction of bits with a manufacture-time hard fault (HER). */
    double hardErrorRate = 0.00001;
    /** Bits per protected word including check bits. */
    size_t wordBits = 72;

    static ReliabilityParams figure8b(double her);

    /** Total data megabits. */
    double totalMbit() const { return double(numCaches) * mbitPerCache; }

    /** Expected soft errors per hour across the system. */
    double softErrorsPerHour() const
    {
        // FIT = failures per 1e9 device-hours.
        return totalMbit() * fitPerMbit / 1e9;
    }
};

/**
 * Probability model for "ECC corrects hard errors" deployments.
 *
 * When SECDED ECC is used to map out single-bit hard faults, any word
 * carrying such a fault has spent its correction budget: one later
 * soft error in the same word becomes an uncorrectable double error.
 * Without a multi-bit correction layer, system reliability therefore
 * decays with operating time. With 2D coding the vertical dimension
 * still recovers those words, so the success probability stays at
 * 1.0 (the paper's "With 2D coding" line).
 */
class SoftErrorModel
{
  public:
    explicit SoftErrorModel(const ReliabilityParams &params) : p(params) {}

    const ReliabilityParams &params() const { return p; }

    /** Fraction of words that contain at least one hard-faulty bit. */
    double faultyWordFraction() const;

    /** Expected number of soft errors in @p years of operation. */
    double expectedSoftErrors(double years) const;

    /**
     * Probability that every soft error in @p years lands in a word
     * without a pre-existing hard fault (i.e. remains correctable by
     * the horizontal SECDED alone).
     */
    double successProbability(double years) const;

    /** Same quantity with 2D coding: always 1 (vertical recovery). */
    double successProbabilityWith2D(double /*years*/) const { return 1.0; }

    /**
     * Monte-Carlo cross-check: draw the Poisson soft-error count and
     * test each error against the faulty-word fraction.
     */
    double monteCarlo(double years, int trials, Rng &rng) const;

    /**
     * Threaded Monte-Carlo: trials are split into fixed-size shards,
     * each drawing from its own counter-based RNG stream
     * (shardSeed(seed, shard)), and shard counts are reduced in shard
     * order — the result is bit-identical at any thread count.
     */
    double monteCarloParallel(double years, int trials,
                              uint64_t seed) const;

  private:
    /**
     * One Monte-Carlo trial: true iff every soft error drawn for the
     * mission lands in a word without a pre-existing hard fault.
     * Shared by the serial and threaded drivers so the trial model
     * cannot diverge between them.
     */
    bool trialSurvives(double mean, double q, Rng &rng) const;

    ReliabilityParams p;
};

} // namespace tdc

#endif // TDC_RELIABILITY_SOFT_ERROR_MODEL_HH
