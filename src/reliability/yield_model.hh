/**
 * @file
 * Stapper-style memory yield model (Figure 8(a) of the paper).
 *
 * Hard faults are assumed uniformly distributed over the cell array
 * (the model of Stapper & Lee the paper cites). A data word is
 * repairable by ECC iff it contains at most one faulty bit; words
 * with multi-bit faults must be remapped to spare rows. The memory
 * yields iff the number of unrepairable words does not exceed the
 * spare budget.
 */

#ifndef TDC_RELIABILITY_YIELD_MODEL_HH
#define TDC_RELIABILITY_YIELD_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/rng.hh"

namespace tdc
{

/** Geometry of the memory whose yield is being estimated. */
struct YieldParams
{
    /** Number of protected data words (16MB / 64b = 2M words). */
    size_t words = 2 * 1024 * 1024;
    /** Bits per stored word including check bits ((72,64) SECDED). */
    size_t wordBits = 72;

    /** The paper's 16MB L2 with (72,64) SECDED words. */
    static YieldParams l2Cache16MB();

    size_t totalBits() const { return words * wordBits; }
};

/**
 * Analytic yield estimates. With F faults scattered over N words of
 * w bits, the per-word fault count is approximately Poisson with
 * lambda = F/N; the number of words with >= k faults is itself
 * approximately Poisson, which gives closed-form yields.
 */
class YieldModel
{
  public:
    explicit YieldModel(const YieldParams &params) : p(params) {}

    /** Expected number of words containing >= 1 faulty bit. */
    double expectedFaultyWords(double faults) const;

    /** Expected number of words containing >= 2 faulty bits. */
    double expectedMultiFaultWords(double faults) const;

    /**
     * Yield with spare rows only (no ECC): every word with any fault
     * consumes a spare; the chip is good iff faulty words <= spares.
     */
    double yieldSpareOnly(double faults, size_t spares) const;

    /**
     * Yield with in-line ECC only (no spares): single-bit faults are
     * corrected for free, but any word with a multi-bit fault kills
     * the chip.
     */
    double yieldEccOnly(double faults) const;

    /**
     * Yield with ECC + spare rows: ECC absorbs single-bit-fault
     * words, spares absorb the (few) multi-bit-fault words. This is
     * the synergistic configuration Figure 8(a) shows dominating.
     */
    double yieldEccPlusSpares(double faults, size_t spares) const;

    /**
     * Monte-Carlo cross-check: scatter @p faults faulty cells
     * uniformly, count multi-fault and any-fault words, and report
     * the fraction of @p trials that yield under each policy.
     */
    struct McResult
    {
        double spareOnly = 0.0;
        double eccOnly = 0.0;
        double eccPlusSpares = 0.0;
    };
    McResult monteCarlo(size_t faults, size_t spares, int trials,
                        Rng &rng) const;

    /**
     * Threaded Monte-Carlo: fixed-size trial shards with per-shard
     * counter-based RNG streams (shardSeed(seed, shard)), reduced in
     * shard order — bit-identical at any thread count.
     */
    McResult monteCarloParallel(size_t faults, size_t spares, int trials,
                                uint64_t seed) const;

  private:
    /** P(Poisson(mean) <= k) with a normal tail for large means. */
    static double poissonCdf(double mean, double k);

    /**
     * One Monte-Carlo trial: scatter @p faults cells and report how
     * many words have any fault / multiple faults. Shared by the
     * serial and threaded drivers so the trial model cannot diverge
     * between them. @p hit is caller-provided scratch.
     */
    struct TrialCounts
    {
        size_t any = 0;
        size_t multi = 0;
    };
    TrialCounts scatterTrial(size_t faults, Rng &rng,
                             std::unordered_map<uint64_t, unsigned> &hit)
        const;

    YieldParams p;
};

} // namespace tdc

#endif // TDC_RELIABILITY_YIELD_MODEL_HH
