/**
 * @file
 * Monte-Carlo recovery sweep: the fault-injection campaign that backs
 * the Figure 3/7 coverage studies, packaged as a reusable, threadable
 * driver. Each trial builds a fresh 2D-protected bank, injects one
 * clustered error event, runs the scrub/recovery process, and checks
 * the restored contents against the golden data.
 */

#ifndef TDC_RELIABILITY_RECOVERY_SWEEP_HH
#define TDC_RELIABILITY_RECOVERY_SWEEP_HH

#include <cstdint>

#include "array/fault.hh"
#include "core/twod_config.hh"

namespace tdc
{

/** One injection campaign: geometry, fault model, trial budget. */
struct RecoverySweepParams
{
    /** Bank configuration under test. */
    TwoDimConfig config = TwoDimConfig::l1Default();

    /** Injected fault event (one per trial). */
    FaultModel fault = FaultModel::cluster(32, 32);

    /** Independent trials to run. */
    int trials = 32;

    /**
     * Base seed. Trial i draws all randomness from an Rng seeded with
     * shardSeed(seed, i), so the campaign outcome is a pure function
     * of (params) — independent of thread count and execution order.
     */
    uint64_t seed = 1;
};

/** Aggregated campaign outcome (summed in trial order). */
struct RecoverySweepResult
{
    int trials = 0;
    /** Bank fully restored and every word matches the golden data. */
    int recovered = 0;
    /** Not restored, but no silently wrong word was returned. */
    int detectedOnly = 0;
    /** At least one word read back wrong without any error flagged. */
    int silent = 0;

    /** Summed sweep row reads (the paper's recovery-latency proxy). */
    uint64_t rowReads = 0;
    /** Rows reconstructed via the vertical path, summed over trials. */
    uint64_t rowsReconstructed = 0;
    /** Columns repaired via the column-location path. */
    uint64_t columnsRepaired = 0;

    bool operator==(const RecoverySweepResult &) const = default;
};

/**
 * Run the campaign, sharding trials across the parallelFor pool.
 * Results are bit-identical at any thread count (see
 * RecoverySweepParams::seed).
 */
RecoverySweepResult runRecoverySweep(const RecoverySweepParams &params);

} // namespace tdc

#endif // TDC_RELIABILITY_RECOVERY_SWEEP_HH
