#include "reliability/scrub_model.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tdc
{

double
ScrubModel::doubleUpsetProbPerWordPerInterval() const
{
    // Poisson arrivals at rate r over window T: P(>=2) =
    // 1 - e^{-rT}(1 + rT). Computed via expm1 so the second-order
    // term survives for the tiny per-word rates of real memories
    // (rT ~ 1e-8 would cancel to zero in the naive form).
    const double rt = p.perWordRate() * p.scrubIntervalHours;
    return -std::expm1(-rt) - rt * std::exp(-rt);
}

double
ScrubModel::expectedUncorrectable(double mission_hours) const
{
    if (p.scrubIntervalHours <= 0.0)
        return 0.0; // per-read checking: no accumulation window
    const double intervals = mission_hours / p.scrubIntervalHours;
    return double(p.words) * intervals *
           doubleUpsetProbPerWordPerInterval();
}

double
ScrubModel::survivalProbability(double mission_hours) const
{
    return std::exp(-expectedUncorrectable(mission_hours));
}

double
ScrubModel::monteCarlo(double mission_hours, int trials, Rng &rng) const
{
    if (p.scrubIntervalHours <= 0.0)
        return 1.0;
    int survived = 0;
    const double per_interval_mean =
        p.errorsPerHour * p.scrubIntervalHours;
    // The mission rarely divides into whole scrub windows: the final
    // partial window (mean scaled by the residual hours) accumulates
    // upsets like any other. Dropping it made every sub-interval
    // mission survive with probability exactly 1.
    const uint64_t full = uint64_t(mission_hours / p.scrubIntervalHours);
    const double residual_mean =
        p.errorsPerHour *
        (mission_hours - double(full) * p.scrubIntervalHours);
    // One scratch buffer reused across every interval of every trial;
    // the handful of upsets per window makes a linear scan cheaper
    // than rebuilding a hash set per interval.
    std::vector<uint64_t> hit;
    for (int t = 0; t < trials; ++t) {
        bool ok = true;
        for (uint64_t i = 0; i <= full && ok; ++i) {
            const bool partial = i == full;
            if (partial && residual_mean <= 0.0)
                break;
            const uint64_t upsets =
                rng.nextPoisson(partial ? residual_mean
                                        : per_interval_mean);
            hit.clear();
            for (uint64_t u = 0; u < upsets; ++u) {
                const uint64_t word = rng.nextBelow(p.words);
                if (std::find(hit.begin(), hit.end(), word) !=
                    hit.end()) {
                    ok = false; // second upset in an unscrubbed word
                    break;
                }
                hit.push_back(word);
            }
        }
        survived += ok;
    }
    return double(survived) / double(trials);
}

} // namespace tdc
