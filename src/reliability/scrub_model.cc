#include "reliability/scrub_model.hh"

#include <cmath>
#include <unordered_set>

namespace tdc
{

double
ScrubModel::doubleUpsetProbPerWordPerInterval() const
{
    // Poisson arrivals at rate r over window T: P(>=2) =
    // 1 - e^{-rT}(1 + rT). Computed via expm1 so the second-order
    // term survives for the tiny per-word rates of real memories
    // (rT ~ 1e-8 would cancel to zero in the naive form).
    const double rt = p.perWordRate() * p.scrubIntervalHours;
    return -std::expm1(-rt) - rt * std::exp(-rt);
}

double
ScrubModel::expectedUncorrectable(double mission_hours) const
{
    if (p.scrubIntervalHours <= 0.0)
        return 0.0; // per-read checking: no accumulation window
    const double intervals = mission_hours / p.scrubIntervalHours;
    return double(p.words) * intervals *
           doubleUpsetProbPerWordPerInterval();
}

double
ScrubModel::survivalProbability(double mission_hours) const
{
    return std::exp(-expectedUncorrectable(mission_hours));
}

double
ScrubModel::monteCarlo(double mission_hours, int trials, Rng &rng) const
{
    if (p.scrubIntervalHours <= 0.0)
        return 1.0;
    int survived = 0;
    const double per_interval_mean =
        p.errorsPerHour * p.scrubIntervalHours;
    const uint64_t intervals =
        uint64_t(mission_hours / p.scrubIntervalHours);
    for (int t = 0; t < trials; ++t) {
        bool ok = true;
        for (uint64_t i = 0; i < intervals && ok; ++i) {
            const uint64_t upsets = rng.nextPoisson(per_interval_mean);
            std::unordered_set<uint64_t> hit;
            for (uint64_t u = 0; u < upsets; ++u) {
                const uint64_t word = rng.nextBelow(p.words);
                if (!hit.insert(word).second) {
                    ok = false; // second upset in an unscrubbed word
                    break;
                }
            }
        }
        survived += ok;
    }
    return double(survived) / double(trials);
}

} // namespace tdc
