/**
 * @file
 * Time-evolving lifetime/FIT reliability engine.
 *
 * Every injection campaign in the repository fires a fixed event count
 * and recovers once; this engine instead evolves one protected device
 * over mission time. Fault events arrive as a Poisson process whose
 * rate is the sum of per-fault-class FIT rates (failures per 1e9
 * device-hours, the FaultSim/Jaguar convention), each class pairing a
 * FaultModel footprint with a transient and a permanent rate.
 * Transient events flip stored bits; permanent events accumulate as
 * stuck-at rows/cols/cells. The device is scrubbed at a configurable
 * interval (0 = check on every event, the paper's per-read limit), a
 * spare-row budget repairs accumulated stuck rows after every clean
 * scrub, and each event batch is classified corrected / DUE / SDC by
 * the scrub verdict. The trial aggregate yields MTTF and FIT per
 * scheme, and the whole evaluation is a pure function of its
 * parameters: timelines, golden fills, and per-event injection
 * randomness derive from counter-based shardSeed streams that are
 * independent of the scrub interval and spare budget — so results are
 * bit-identical at any TDC_THREADS x TDC_SIMD setting, and more
 * scrubbing / more spares face the *same* event history.
 *
 * The engine lives in reliability/ below the scheme registry, so it
 * sees devices only through the DeviceSession interface; the scheme
 * layer implements sessions per family (scheme/scheme.hh:
 * ProtectionScheme::openLifetimeSession, cachedSchemeLifetime).
 */

#ifndef TDC_RELIABILITY_LIFETIME_HH
#define TDC_RELIABILITY_LIFETIME_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "array/fault.hh"
#include "common/rng.hh"

namespace tdc
{

/**
 * One device under lifetime test: a per-trial session over a protected
 * array, holding the golden data it was filled with. The engine drives
 * it with inject / scrubAndVerify / repairRow; the concrete families
 * (conv/wt, 2d, prod) implement the verbs with exactly the machinery
 * their injectAndRecover trials use.
 */
class DeviceSession
{
  public:
    /** Classification of one scrub over the accumulated error state. */
    enum class Verdict
    {
        /** Every word read back equal to the golden data. */
        kCorrected,
        /** Uncorrectable but detected: data loss is flagged (DUE). */
        kDue,
        /** At least one word wrong with no error flagged (silent). */
        kSdc,
    };

    virtual ~DeviceSession() = default;

    /** Realize one @p fault event (shape + persistence) on the device,
     *  drawing any unanchored coordinates from @p rng. */
    virtual void inject(const FaultModel &fault, Rng &rng) = 0;

    /** Run the scheme's scrub/recovery machinery, then verify every
     *  word against the golden data and classify the outcome. */
    virtual Verdict scrubAndVerify() = 0;

    /** Rows currently holding stuck-at cells, as (row, stuck-cell
     *  count) sorted by row (MemoryArray::stuckRows). */
    virtual std::vector<std::pair<size_t, size_t>> stuckRows() = 0;

    /**
     * Map row @p row out to a spare: clear its stuck-at overlay and
     * rewrite the row's golden content through the scheme's write path
     * (legitimate — repair runs only after a corrected scrub, when the
     * scheme demonstrably still delivers every word's data).
     */
    virtual void repairRow(size_t row) = 0;
};

/** Builds a fresh session whose golden fill derives from @p seed. */
using DeviceSessionFactory =
    std::function<std::unique_ptr<DeviceSession>(uint64_t seed)>;

/** One fault class of a FIT mix: a footprint plus its arrival rates. */
struct FitClass
{
    /** Short label ("bit", "word", "column", ...). */
    std::string label;

    /** Event footprint; persistence is overridden per arrival. */
    FaultModel shape;

    /** Transient-arrival rate, failures per 1e9 device-hours. */
    double fitTransient = 0.0;

    /** Permanent (stuck-at) arrival rate, same unit. */
    double fitPermanent = 0.0;
};

/**
 * A named per-fault-class FIT mix with an acceleration scale. The
 * canonical spec is "<name>" or "<name>*<scale>" (exactDouble
 * round-trip), e.g. "jaguar*10000" — the mix axis of lifetime cache
 * keys and the --fit-mix grammar. Scales model accelerated testing:
 * real FIT rates produce ~1e-3 events over a 5-year mission, so the
 * observable-event regimes the figures explore run the same mix a few
 * decades hotter.
 */
struct FitMix
{
    /** Registered mix name ("jaguar", "transient", ...). */
    std::string base = "jaguar";

    /** Rate multiplier applied to every class (accelerated testing). */
    double scale = 1.0;

    std::vector<FitClass> classes;

    /** Canonical spec: base, "*<scale>" appended when scale != 1. */
    std::string spec() const;

    /** Sum of unscaled transient FITs over the classes. */
    double totalFitTransient() const;

    /** Sum of unscaled permanent FITs over the classes. */
    double totalFitPermanent() const;

    double totalFit() const
    {
        return totalFitTransient() + totalFitPermanent();
    }

    /** Scaled total arrival rate in events per device-hour. */
    double eventsPerHour() const { return totalFit() * scale / 1e9; }
};

/**
 * The FaultSim Jaguar field-failure mix: seven fault classes (bit,
 * word, column, row, bank, multi-bank, multi-rank) with the published
 * fit_transient = {14.2, 1.4, 1.4, 0.2, 0.8, 0.3, 0.9} and
 * fit_permanent = {18.6, 0.3, 5.6, 8.2, 10.0, 1.4, 2.8} per-class
 * rates, mapped onto the repository's FaultModel footprints.
 */
FitMix jaguarFitMix(double scale = 1.0);

/** Registered mix names accepted by parseFitMix. */
std::vector<std::string> fitMixNames();

/**
 * Parse a FIT-mix spec "<name>[*<scale>]" (the --fit-mix axis):
 * "jaguar", "transient" / "permanent" (the Jaguar mix restricted to
 * one persistence), "single" (single-bit-only, equal rates). Scale
 * accepts scientific notation ("jaguar*1e4"); the canonical spec()
 * re-spells it exactly. Malformed names or non-positive scales throw
 * std::invalid_argument quoting the offending token.
 */
FitMix parseFitMix(const std::string &spec);

/** One Poisson arrival on a device timeline. */
struct LifetimeEvent
{
    /** Arrival time in device-hours since mission start. */
    double hours = 0.0;

    /** Index into FitMix::classes. */
    uint32_t classIndex = 0;

    /** Permanent (stuck-at) manifestation vs transient flip. */
    bool hard = false;
};

/**
 * Draw one trial's full event timeline: exponential inter-arrivals at
 * the mix's scaled total rate, each arrival's (class, persistence)
 * picked from the cumulative per-class rate buckets. A pure function
 * of (mix, mission, seed) — notably independent of scrub interval and
 * spare budget, the anchor of the engine's monotonicity properties.
 */
std::vector<LifetimeEvent> drawEventTimeline(const FitMix &mix,
                                             double mission_hours,
                                             uint64_t seed);

/** Parameters of one lifetime evaluation (one campaign cell). */
struct LifetimeParams
{
    /** Canonical ProtectionScheme::spec() — cache key + labels only;
     *  the device itself comes from the session factory. */
    std::string schemeSpec;

    FitMix mix;

    /** Mission time per trial in device-hours (default: 5 years). */
    double missionHours = 5.0 * 8760.0;

    /** Hours between scrubs; 0 = check after every event (the
     *  per-read limit of the paper's Section 2.1). */
    double scrubIntervalHours = 24.0;

    /** Spare rows available per trial for stuck-row repair. */
    int spareRows = 0;

    int trials = 200;

    uint64_t seed = 12345;
};

/** Aggregate outcome of a lifetime evaluation. */
struct LifetimeResult
{
    int trials = 0;

    /** Trials that reached mission end without data loss. */
    int survived = 0;

    /** Trials ending in a detected-uncorrectable scrub (DUE). */
    int dueTrials = 0;

    /** Trials ending in silent data corruption. */
    int sdcTrials = 0;

    /** Total fault events injected across trials. */
    int64_t events = 0;

    /** Events with permanent (stuck-at) manifestation. */
    int64_t hardEvents = 0;

    /** Events classified by their window's scrub verdict. */
    int64_t correctedEvents = 0;
    int64_t dueEvents = 0;
    int64_t sdcEvents = 0;

    /** Scrub passes executed (only non-empty windows are scrubbed). */
    int64_t scrubs = 0;

    /** Spare-row repairs performed. */
    int64_t repairs = 0;

    /**
     * Observed device-hours summed over trials: mission time for
     * survivors, the failing event's arrival time for failures — the
     * exposure denominator of the censored MTTF/FIT estimators.
     */
    double deviceHours = 0.0;

    int failures() const { return dueTrials + sdcTrials; }

    /** Censored exponential estimate: observed hours per failure
     *  (infinity when no trial failed). */
    double mttfHours() const;

    /** Failures per 1e9 device-hours (0 when nothing was observed). */
    double fit() const;

    /** Fraction of trials surviving the mission. */
    double survivalRate() const;

    /** Campaign-cell rendering: "mttf 4.2e+03h fit 2.4e+05 (187/200)". */
    std::string summary() const;

    bool operator==(const LifetimeResult &) const = default;
};

/**
 * Evaluate @p params against devices built by @p factory. Trials shard
 * over the worker pool; trial t derives every stream from
 * shardSeed(seed, t) under kSeedDomainLifetime (timeline, golden fill)
 * and kSeedDomainInjection (event k's coordinates, counted by event
 * index — NOT by scrub window), and the per-trial outcomes reduce in
 * trial order. Bit-identical at any TDC_THREADS setting.
 */
LifetimeResult runLifetime(const LifetimeParams &params,
                           const DeviceSessionFactory &factory);

/**
 * runLifetime through the campaign result cache, keyed by
 * lifetimeCacheKey(params). @p factory must realize exactly the scheme
 * params.schemeSpec names (the scheme layer's cachedSchemeLifetime
 * guarantees this); the cached result is then bit-identical to a cold
 * run for the same reason injection cells are.
 */
LifetimeResult cachedLifetime(const LifetimeParams &params,
                              const DeviceSessionFactory &factory);

/** Canonical cache key of one lifetime cell ("lifetime|scheme=..."). */
std::string lifetimeCacheKey(const LifetimeParams &params);

} // namespace tdc

#endif // TDC_RELIABILITY_LIFETIME_HH
