/**
 * @file
 * Scrubbing coverage model (paper Section 2.1: periodic scrubbing
 * "has lower error coverage than checking ECC on every read",
 * citing Saleh/Serrano/Patel).
 */

#ifndef TDC_RELIABILITY_SCRUB_MODEL_HH
#define TDC_RELIABILITY_SCRUB_MODEL_HH

#include <cstddef>

#include "common/rng.hh"

namespace tdc
{

/** Parameters of the scrubbing study. */
struct ScrubParams
{
    /** Protected words in the memory. */
    size_t words = 2 * 1024 * 1024;
    /** Bits per word (data + check). */
    size_t wordBits = 72;
    /** Single-bit soft-error rate for the whole memory, per hour. */
    double errorsPerHour = 1.28e-3;
    /** Scrub interval in hours (0 = check on every read, i.e. the
     *  interval is effectively the mean access gap, ~0). */
    double scrubIntervalHours = 24.0;

    /** Per-word upset rate per hour. */
    double perWordRate() const
    {
        return errorsPerHour / double(words);
    }
};

/**
 * With SECDED per word, data is lost when a second upset lands in a
 * word that already holds an unscrubbed first upset. Between scrubs
 * of interval T, the per-word double-upset probability is
 * ~ (rT)^2/2 (two Poisson arrivals in the window); across N words and
 * a mission time M, the expected number of uncorrectable events is
 * N * (M/T) * (rT)^2 / 2 = N * M * r^2 * T / 2 — linear in the scrub
 * interval, which is the paper's point: frequent checking (T -> 0,
 * the per-read check) suppresses the vulnerability window entirely.
 */
class ScrubModel
{
  public:
    explicit ScrubModel(const ScrubParams &params) : p(params) {}

    const ScrubParams &params() const { return p; }

    /** P(a given word accumulates >= 2 upsets within one interval). */
    double doubleUpsetProbPerWordPerInterval() const;

    /** Expected uncorrectable (double-upset) events in @p hours. */
    double expectedUncorrectable(double mission_hours) const;

    /** P(no uncorrectable event over @p hours). */
    double survivalProbability(double mission_hours) const;

    /**
     * Monte-Carlo cross-check of survivalProbability: simulate
     * Poisson upsets onto random words, clearing all words at every
     * scrub boundary. A mission that is not a whole number of scrub
     * intervals ends with a partial window whose upset mean is scaled
     * by the residual hours.
     */
    double monteCarlo(double mission_hours, int trials, Rng &rng) const;

  private:
    ScrubParams p;
};

} // namespace tdc

#endif // TDC_RELIABILITY_SCRUB_MODEL_HH
