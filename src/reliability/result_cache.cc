#include "reliability/result_cache.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#ifdef _WIN32
#include <process.h>
#define TDC_GETPID _getpid
#else
#include <unistd.h>
#define TDC_GETPID getpid
#endif

#include "common/stable_hash.hh"

namespace tdc
{

std::string
InjectionOutcome::verdict() const
{
    if (silent == trials && trials > 0)
        return "SILENT corruption";
    if (silent > 0)
        return "NOT covered";
    if (corrected == trials)
        return "corrected";
    if (corrected > 0)
        return "partially corrected";
    return "detected only";
}

std::string
InjectionOutcome::summary() const
{
    return verdict() + " " + std::to_string(corrected) + "/" +
           std::to_string(trials);
}

std::string
CacheStats::describe() const
{
    return std::to_string(hits()) + " hits (" +
           std::to_string(memoryHits) + " memory, " +
           std::to_string(diskHits) + " disk), " +
           std::to_string(misses) + " misses, " + std::to_string(stored) +
           " stored, " + std::to_string(corrupt) + " corrupt";
}

namespace
{

// On-disk entry layout (all integers little-endian):
//   magic[8] "TDCRCACH"
//   u32 version          format salt (ResultCache::kFormatVersion)
//   u32 keyLen,  key bytes    full canonical key (collision guard)
//   u32 nInts,   u32 nReals
//   i64 ints[nInts]
//   u64 realBits[nReals]      IEEE-754 bit patterns, bit-exact
//   u64 digestHi, u64 digestLo    StableHash of every preceding byte
constexpr char kMagic[8] = {'T', 'D', 'C', 'R', 'C', 'A', 'C', 'H'};
constexpr size_t kMaxVectorLen = 1u << 20;

void
putU32(std::string &buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf += char((v >> (8 * i)) & 0xff);
}

void
putU64(std::string &buf, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf += char((v >> (8 * i)) & 0xff);
}

uint32_t
getU32(const unsigned char *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(p[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}

std::string
serializeEntry(const std::string &key, const ResultCache::Record &record)
{
    std::string buf;
    buf.append(kMagic, sizeof(kMagic));
    putU32(buf, ResultCache::kFormatVersion);
    putU32(buf, uint32_t(key.size()));
    buf += key;
    putU32(buf, uint32_t(record.ints.size()));
    putU32(buf, uint32_t(record.reals.size()));
    for (int64_t v : record.ints)
        putU64(buf, uint64_t(v));
    for (double v : record.reals) {
        uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        putU64(buf, bits);
    }
    StableHash h;
    h.updateBytes(buf.data(), buf.size());
    const StableDigest d = h.digest();
    putU64(buf, d.hi);
    putU64(buf, d.lo);
    return buf;
}

/** Parse @p buf back into (key, record); false = corrupt or stale. */
bool
parseEntry(const std::string &buf, const std::string &expected_key,
           ResultCache::Record &record)
{
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(buf.data());
    size_t off = 0;
    const auto need = [&](size_t n) { return off + n <= buf.size(); };

    if (!need(sizeof(kMagic) + 4) ||
        std::memcmp(p, kMagic, sizeof(kMagic)) != 0)
        return false;
    off = sizeof(kMagic);
    if (getU32(p + off) != ResultCache::kFormatVersion)
        return false; // stale format: recompute under the new salt
    off += 4;

    if (!need(4))
        return false;
    const uint32_t key_len = getU32(p + off);
    off += 4;
    if (key_len > kMaxVectorLen || !need(key_len))
        return false;
    if (std::string_view(buf.data() + off, key_len) != expected_key)
        return false; // digest collision or foreign entry
    off += key_len;

    if (!need(8))
        return false;
    const uint32_t n_ints = getU32(p + off);
    const uint32_t n_reals = getU32(p + off + 4);
    off += 8;
    if (n_ints > kMaxVectorLen || n_reals > kMaxVectorLen)
        return false;
    const size_t payload = 8 * (size_t(n_ints) + size_t(n_reals));
    if (buf.size() != off + payload + 16)
        return false; // truncated (or trailing garbage)

    StableHash h;
    h.updateBytes(buf.data(), off + payload);
    const StableDigest d = h.digest();
    if (d.hi != getU64(p + off + payload) ||
        d.lo != getU64(p + off + payload + 8))
        return false;

    record.ints.clear();
    record.reals.clear();
    record.ints.reserve(n_ints);
    record.reals.reserve(n_reals);
    for (uint32_t i = 0; i < n_ints; ++i, off += 8)
        record.ints.push_back(int64_t(getU64(p + off)));
    for (uint32_t i = 0; i < n_reals; ++i, off += 8) {
        const uint64_t bits = getU64(p + off);
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        record.reals.push_back(v);
    }
    return true;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

void
ResultCache::setDirectory(std::string dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    dir_ = std::move(dir);
}

std::string
ResultCache::directory() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dir_;
}

std::string
ResultCache::entryFileName(const std::string &key)
{
    return stableHash(key).hex() + ".tdcr";
}

std::optional<ResultCache::Record>
ResultCache::loadFromDisk(const std::string &key)
{
    // Caller holds mutex_ (dir_ and stats_ are touched).
    if (dir_.empty())
        return std::nullopt;
    const std::filesystem::path path =
        std::filesystem::path(dir_) / entryFileName(key);
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return std::nullopt;
    std::string buf((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return std::nullopt;
    Record record;
    if (!parseEntry(buf, key, record)) {
        ++stats_.corrupt;
        return std::nullopt;
    }
    return record;
}

void
ResultCache::storeToDisk(const std::string &key, const Record &record)
{
    // Caller holds mutex_. Best-effort: I/O failures (read-only dir,
    // disk full) silently leave the disk tier behind — the in-memory
    // tier and the computed result are unaffected.
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return;
    const std::filesystem::path final_path =
        std::filesystem::path(dir_) / entryFileName(key);
    // Unique temp name per writer, then an atomic rename: two
    // processes sharing --cache-dir never expose a torn entry, and
    // the last full write wins (both wrote identical bytes anyway).
    static std::atomic<uint64_t> counter{0};
    const std::filesystem::path tmp_path =
        final_path.string() + ".tmp." +
        std::to_string(uint64_t(TDC_GETPID())) + "." +
        std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out.is_open())
            return;
        const std::string buf = serializeEntry(key, record);
        out.write(buf.data(), std::streamsize(buf.size()));
        if (!out.good()) {
            out.close();
            std::filesystem::remove(tmp_path, ec);
            return;
        }
    }
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec)
        std::filesystem::remove(tmp_path, ec);
    else
        ++stats_.stored;
}

std::optional<ResultCache::Record>
ResultCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
        ++stats_.memoryHits;
        return it->second;
    }
    if (std::optional<Record> rec = loadFromDisk(key)) {
        ++stats_.diskHits;
        memory_.emplace(key, *rec);
        return rec;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
ResultCache::store(const std::string &key, const Record &record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    memory_[key] = record;
    storeToDisk(key, record);
}

ResultCache::Record
ResultCache::memoize(const std::string &key,
                     const std::function<Record()> &compute)
{
    if (std::optional<Record> rec = lookup(key))
        return *rec;
    // Compute outside the lock: the evaluator may itself parallelFor,
    // and racing threads at worst duplicate a pure computation.
    const Record rec = compute();
    store(key, rec);
    return rec;
}

InjectionOutcome
ResultCache::outcome(const std::string &key,
                     const std::function<InjectionOutcome()> &compute)
{
    const Record rec = memoize(key, [&] {
        const InjectionOutcome o = compute();
        return Record{{o.trials, o.corrected, o.detectedOnly, o.silent},
                      {}};
    });
    if (rec.ints.size() != 4) {
        // Width mismatch (a foreign record type under this key):
        // recompute and overwrite rather than fabricate counters.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.corrupt;
            memory_.erase(key);
        }
        const InjectionOutcome o = compute();
        store(key,
              Record{{o.trials, o.corrected, o.detectedOnly, o.silent},
                     {}});
        return o;
    }
    InjectionOutcome o;
    o.trials = int(rec.ints[0]);
    o.corrected = int(rec.ints[1]);
    o.detectedOnly = int(rec.ints[2]);
    o.silent = int(rec.ints[3]);
    return o;
}

std::vector<double>
ResultCache::reals(const std::string &key, size_t count,
                   const std::function<std::vector<double>()> &compute)
{
    const Record rec =
        memoize(key, [&] { return Record{{}, compute()}; });
    if (rec.reals.size() != count) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.corrupt;
            memory_.erase(key);
        }
        const std::vector<double> v = compute();
        store(key, Record{{}, v});
        return v;
    }
    return rec.reals;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ResultCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = CacheStats{};
}

void
ResultCache::clearMemory()
{
    std::lock_guard<std::mutex> lock(mutex_);
    memory_.clear();
}

ResultCache &
resultCache()
{
    static ResultCache cache = [] {
        const char *dir = std::getenv("TDC_CACHE_DIR");
        return ResultCache(dir != nullptr ? dir : "");
    }();
    return cache;
}

std::string
injectionCacheKey(const std::string &scheme_spec,
                  const std::string &fault_spec, int trials, uint64_t seed)
{
    return "inject|scheme=" + scheme_spec + "|fault=" + fault_spec +
           "|trials=" + std::to_string(trials) +
           "|seed=" + std::to_string(seed);
}

} // namespace tdc
