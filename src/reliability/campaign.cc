#include "reliability/campaign.hh"

#include <cassert>
#include <cstdio>

#include "common/parallel.hh"

namespace tdc
{

Table
CampaignResult::toTable() const
{
    Table t(headers);
    for (const auto &row : rows)
        t.addRow(row);
    return t;
}

std::string
CampaignResult::render() const
{
    std::string out;
    if (!title.empty())
        out += title + "\n\n";
    out += toTable().render();
    return out;
}

void
CampaignResult::print() const
{
    std::fputs(render().c_str(), stdout);
}

CampaignResult
runCampaignGrid(const CampaignGrid &grid)
{
    assert(grid.cell);
    const size_t nr = grid.rowLabels.size();
    const size_t nc = grid.colHeaders.size();

    // Flat cell sharding: each cell writes only its own slot, and the
    // table is assembled serially in row-major order afterwards.
    std::vector<std::vector<std::string>> cells(
        nr, std::vector<std::string>(nc));
    const auto eval = [&](size_t i) {
        cells[i / nc][i % nc] = grid.cell(i / nc, i % nc);
    };
    if (grid.parallelCells) {
        parallelFor(nr * nc, eval);
    } else {
        for (size_t i = 0; i < nr * nc; ++i)
            eval(i);
    }

    CampaignResult result;
    result.title = grid.title;
    result.headers.reserve(1 + nc);
    result.headers.push_back(grid.rowHeader);
    result.headers.insert(result.headers.end(), grid.colHeaders.begin(),
                          grid.colHeaders.end());
    for (size_t r = 0; r < nr; ++r) {
        std::vector<std::string> row;
        row.reserve(1 + nc);
        row.push_back(grid.rowLabels[r]);
        row.insert(row.end(), cells[r].begin(), cells[r].end());
        result.rows.push_back(std::move(row));
    }
    result.cells = std::move(cells);
    if (grid.summary) {
        for (auto &row : grid.summary(result.cells))
            result.rows.push_back(std::move(row));
    }
    return result;
}

} // namespace tdc

