#include "reliability/campaign.hh"

#include <cassert>
#include <cstdio>

#include "array/product_code_array.hh"
#include "array/protected_array.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "ecc/code_factory.hh"
#include "reliability/recovery_sweep.hh"

namespace tdc
{

Table
CampaignResult::toTable() const
{
    Table t(headers);
    for (const auto &row : rows)
        t.addRow(row);
    return t;
}

std::string
CampaignResult::render() const
{
    std::string out;
    if (!title.empty())
        out += title + "\n\n";
    out += toTable().render();
    return out;
}

void
CampaignResult::print() const
{
    std::fputs(render().c_str(), stdout);
}

CampaignResult
runCampaignGrid(const CampaignGrid &grid)
{
    assert(grid.cell);
    const size_t nr = grid.rowLabels.size();
    const size_t nc = grid.colHeaders.size();

    // Flat cell sharding: each cell writes only its own slot, and the
    // table is assembled serially in row-major order afterwards.
    std::vector<std::vector<std::string>> cells(
        nr, std::vector<std::string>(nc));
    const auto eval = [&](size_t i) {
        cells[i / nc][i % nc] = grid.cell(i / nc, i % nc);
    };
    if (grid.parallelCells) {
        parallelFor(nr * nc, eval);
    } else {
        for (size_t i = 0; i < nr * nc; ++i)
            eval(i);
    }

    CampaignResult result;
    result.title = grid.title;
    result.headers.reserve(1 + nc);
    result.headers.push_back(grid.rowHeader);
    result.headers.insert(result.headers.end(), grid.colHeaders.begin(),
                          grid.colHeaders.end());
    for (size_t r = 0; r < nr; ++r) {
        std::vector<std::string> row;
        row.reserve(1 + nc);
        row.push_back(grid.rowLabels[r]);
        row.insert(row.end(), cells[r].begin(), cells[r].end());
        result.rows.push_back(std::move(row));
    }
    result.cells = std::move(cells);
    if (grid.summary) {
        for (auto &row : grid.summary(result.cells))
            result.rows.push_back(std::move(row));
    }
    return result;
}

InjectionScheme
InjectionScheme::conventional(CodeKind code, size_t degree, size_t rows,
                              size_t word_bits)
{
    InjectionScheme s;
    s.kind = Kind::kConventional;
    s.code = code;
    s.degree = degree;
    s.rows = rows;
    s.wordBits = word_bits;
    return s;
}

InjectionScheme
InjectionScheme::twoDim(const TwoDimConfig &config)
{
    InjectionScheme s;
    s.kind = Kind::kTwoDim;
    s.config = config;
    return s;
}

InjectionScheme
InjectionScheme::productCode(size_t rows, size_t cols)
{
    InjectionScheme s;
    s.kind = Kind::kProductCode;
    s.rows = rows;
    s.cols = cols;
    return s;
}

std::string
InjectionOutcome::verdict() const
{
    if (silent == trials && trials > 0)
        return "SILENT corruption";
    if (silent > 0)
        return "NOT covered";
    if (corrected == trials)
        return "corrected";
    if (corrected > 0)
        return "partially corrected";
    return "detected only";
}

namespace
{

/** Fill @p bits with rng words (matches the recovery-sweep fill). */
BitVector
randomWord(size_t bits, Rng &rng)
{
    BitVector d(bits);
    for (size_t w = 0; w < bits; w += 64) {
        const size_t len = std::min<size_t>(64, bits - w);
        d.setSlice(w, BitVector(len, rng.next()));
    }
    return d;
}

/** One conventional-array trial: all-words verify after injection. */
void
conventionalTrial(const InjectionScheme &s, const FaultModel &fault,
                  uint64_t trial_seed, bool &corrected_out,
                  bool &silent_out)
{
    Rng rng(trial_seed);
    ProtectedArray arr(s.rows, makeCode(s.code, s.wordBits), s.degree);
    std::vector<std::vector<BitVector>> golden(
        arr.rows(), std::vector<BitVector>(arr.wordsPerRow()));
    for (size_t r = 0; r < arr.rows(); ++r) {
        for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot) {
            golden[r][slot] = randomWord(s.wordBits, rng);
            arr.writeWord(r, slot, golden[r][slot]);
        }
    }
    FaultInjector inj(rng);
    inj.inject(arr.cells(), fault);

    bool all_ok = true, any_silent = false;
    for (size_t r = 0; r < arr.rows(); ++r) {
        for (size_t slot = 0; slot < arr.wordsPerRow(); ++slot) {
            const AccessResult res = arr.readWord(r, slot);
            if (!res.ok())
                all_ok = false;
            else if (res.data != golden[r][slot])
                all_ok = false, any_silent = true;
        }
    }
    corrected_out = all_ok;
    silent_out = any_silent;
}

/** One HV-product-code trial: checkAndCorrect then row-level verify. */
void
productCodeTrial(const InjectionScheme &s, const FaultModel &fault,
                 uint64_t trial_seed, bool &corrected_out,
                 bool &silent_out)
{
    Rng rng(trial_seed);
    ProductCodeArray arr(s.rows, s.cols);
    std::vector<BitVector> golden;
    golden.reserve(s.rows);
    for (size_t r = 0; r < s.rows; ++r) {
        golden.push_back(randomWord(s.cols, rng));
        arr.writeRow(r, golden.back());
    }
    FaultInjector inj(rng);
    inj.inject(arr.cells(), fault);

    const ProductCodeReport rep = arr.checkAndCorrect();
    bool matches = true;
    for (size_t r = 0; r < s.rows && matches; ++r)
        matches = arr.readRow(r) == golden[r];
    corrected_out = rep.clean && matches;
    silent_out = rep.clean && !matches;
}

} // namespace

InjectionOutcome
runInjectionCampaign(const InjectionScheme &scheme, const FaultModel &fault,
                     int trials, uint64_t seed)
{
    InjectionOutcome out;

    if (scheme.kind == InjectionScheme::Kind::kTwoDim) {
        // The 2D arm *is* the recovery sweep: same fill, same scrub,
        // same all-words verification.
        RecoverySweepParams params;
        params.config = scheme.config;
        params.fault = fault;
        params.trials = trials;
        params.seed = seed;
        const RecoverySweepResult res = runRecoverySweep(params);
        out.trials = res.trials;
        out.corrected = res.recovered;
        out.detectedOnly = res.detectedOnly;
        out.silent = res.silent;
        return out;
    }

    const size_t n = trials < 0 ? 0 : size_t(trials);
    std::vector<char> corrected(n, 0), silent(n, 0);
    parallelFor(n, [&](size_t t) {
        bool c = false, s = false;
        if (scheme.kind == InjectionScheme::Kind::kConventional)
            conventionalTrial(scheme, fault, shardSeed(seed, t), c, s);
        else
            productCodeTrial(scheme, fault, shardSeed(seed, t), c, s);
        corrected[t] = c ? 1 : 0;
        silent[t] = s ? 1 : 0;
    });
    for (size_t t = 0; t < n; ++t) {
        ++out.trials;
        out.corrected += corrected[t];
        out.detectedOnly += !corrected[t] && !silent[t];
        out.silent += silent[t];
    }
    return out;
}

} // namespace tdc
