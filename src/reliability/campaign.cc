#include "reliability/campaign.hh"

#include <cassert>
#include <cstdio>

#include "common/parallel.hh"

namespace tdc
{

Table
CampaignResult::toTable() const
{
    Table t(headers);
    for (const auto &row : rows)
        t.addRow(row);
    return t;
}

std::string
CampaignResult::render() const
{
    std::string out;
    if (!title.empty())
        out += title + "\n\n";
    out += toTable().render();
    return out;
}

void
CampaignResult::print() const
{
    std::fputs(render().c_str(), stdout);
}

CampaignResult
runCampaignGrid(const CampaignGrid &grid)
{
    assert(bool(grid.cell) != bool(grid.outcomeCell));
    const size_t nr = grid.rowLabels.size();
    const size_t nc = grid.colHeaders.size();

    // Flat cell sharding: each cell writes only its own slot, and the
    // table is assembled serially in row-major order afterwards.
    // Injection grids (outcomeCell) compute raw numeric outcomes here
    // — the expensive, memoizable step — and render the strings in a
    // separate serial pass below, so formatting never ends up inside
    // what the result cache stores.
    std::vector<std::vector<std::string>> cells(
        nr, std::vector<std::string>(nc));
    std::vector<std::vector<InjectionOutcome>> outcomes;
    const bool numeric = bool(grid.outcomeCell);
    if (numeric)
        outcomes.assign(nr, std::vector<InjectionOutcome>(nc));
    const auto eval = [&](size_t i) {
        if (numeric)
            outcomes[i / nc][i % nc] = grid.outcomeCell(i / nc, i % nc);
        else
            cells[i / nc][i % nc] = grid.cell(i / nc, i % nc);
    };
    if (grid.parallelCells) {
        parallelFor(nr * nc, eval);
    } else {
        for (size_t i = 0; i < nr * nc; ++i)
            eval(i);
    }
    if (numeric) {
        std::function<std::string(const InjectionOutcome &)> format =
            grid.formatOutcome;
        if (!format)
            format = [](const InjectionOutcome &o) { return o.summary(); };
        for (size_t r = 0; r < nr; ++r)
            for (size_t c = 0; c < nc; ++c)
                cells[r][c] = format(outcomes[r][c]);
    }

    CampaignResult result;
    result.title = grid.title;
    result.headers.reserve(1 + nc);
    result.headers.push_back(grid.rowHeader);
    result.headers.insert(result.headers.end(), grid.colHeaders.begin(),
                          grid.colHeaders.end());
    for (size_t r = 0; r < nr; ++r) {
        std::vector<std::string> row;
        row.reserve(1 + nc);
        row.push_back(grid.rowLabels[r]);
        row.insert(row.end(), cells[r].begin(), cells[r].end());
        result.rows.push_back(std::move(row));
    }
    result.cells = std::move(cells);
    result.outcomes = std::move(outcomes);
    if (grid.summary) {
        for (auto &row : grid.summary(result.cells))
            result.rows.push_back(std::move(row));
    }
    return result;
}

} // namespace tdc

