#include "reliability/soft_error_model.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.hh"

namespace tdc
{

ReliabilityParams
ReliabilityParams::figure8b(double her)
{
    ReliabilityParams p;
    p.numCaches = 10;
    p.mbitPerCache = 16.0 * 8.0;
    p.fitPerMbit = 1000.0;
    p.hardErrorRate = her;
    p.wordBits = 72;
    return p;
}

double
SoftErrorModel::faultyWordFraction() const
{
    // Each of the wordBits cells is hard-faulty independently with
    // probability HER.
    return 1.0 - std::pow(1.0 - p.hardErrorRate, double(p.wordBits));
}

double
SoftErrorModel::expectedSoftErrors(double years) const
{
    return p.softErrorsPerHour() * years * 24.0 * 365.0;
}

double
SoftErrorModel::successProbability(double years) const
{
    // Soft errors arrive as a Poisson process with rate r; each lands
    // in a hard-faulty word with probability q. Thinning: fatal
    // events are Poisson with rate r*q, so
    // P(no fatal event in t) = exp(-r * t * q).
    const double q = faultyWordFraction();
    return std::exp(-expectedSoftErrors(years) * q);
}

bool
SoftErrorModel::trialSurvives(double mean, double q, Rng &rng) const
{
    const uint64_t n = rng.nextPoisson(mean);
    bool ok = true;
    for (uint64_t i = 0; i < n && ok; ++i)
        ok = !rng.nextBool(q);
    return ok;
}

double
SoftErrorModel::monteCarlo(double years, int trials, Rng &rng) const
{
    const double mean = expectedSoftErrors(years);
    const double q = faultyWordFraction();
    int survived = 0;
    for (int t = 0; t < trials; ++t)
        survived += trialSurvives(mean, q, rng);
    return double(survived) / double(trials);
}

double
SoftErrorModel::monteCarloParallel(double years, int trials,
                                   uint64_t seed) const
{
    if (trials <= 0)
        return 0.0;
    const double mean = expectedSoftErrors(years);
    const double q = faultyWordFraction();

    // Shard size is fixed (not derived from the thread count), so the
    // trial -> RNG-stream mapping is identical however many workers
    // execute the shards.
    constexpr int kShardTrials = 256;
    const size_t shards = size_t((trials + kShardTrials - 1) / kShardTrials);
    std::vector<int> survived(shards, 0);
    parallelFor(shards, [&](size_t s) {
        Rng rng(shardSeed(seed, s));
        const int lo = int(s) * kShardTrials;
        const int hi = std::min(trials, lo + kShardTrials);
        int count = 0;
        for (int t = lo; t < hi; ++t)
            count += trialSurvives(mean, q, rng);
        survived[s] = count;
    });

    int total = 0;
    for (int count : survived)
        total += count;
    return double(total) / double(trials);
}

} // namespace tdc
