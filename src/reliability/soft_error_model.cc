#include "reliability/soft_error_model.hh"

#include <cmath>

namespace tdc
{

ReliabilityParams
ReliabilityParams::figure8b(double her)
{
    ReliabilityParams p;
    p.numCaches = 10;
    p.mbitPerCache = 16.0 * 8.0;
    p.fitPerMbit = 1000.0;
    p.hardErrorRate = her;
    p.wordBits = 72;
    return p;
}

double
SoftErrorModel::faultyWordFraction() const
{
    // Each of the wordBits cells is hard-faulty independently with
    // probability HER.
    return 1.0 - std::pow(1.0 - p.hardErrorRate, double(p.wordBits));
}

double
SoftErrorModel::expectedSoftErrors(double years) const
{
    return p.softErrorsPerHour() * years * 24.0 * 365.0;
}

double
SoftErrorModel::successProbability(double years) const
{
    // Soft errors arrive as a Poisson process with rate r; each lands
    // in a hard-faulty word with probability q. Thinning: fatal
    // events are Poisson with rate r*q, so
    // P(no fatal event in t) = exp(-r * t * q).
    const double q = faultyWordFraction();
    return std::exp(-expectedSoftErrors(years) * q);
}

double
SoftErrorModel::monteCarlo(double years, int trials, Rng &rng) const
{
    const double mean = expectedSoftErrors(years);
    const double q = faultyWordFraction();
    int survived = 0;
    for (int t = 0; t < trials; ++t) {
        const uint64_t n = rng.nextPoisson(mean);
        bool ok = true;
        for (uint64_t i = 0; i < n && ok; ++i)
            ok = !rng.nextBool(q);
        survived += ok;
    }
    return double(survived) / double(trials);
}

} // namespace tdc
