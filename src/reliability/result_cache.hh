/**
 * @file
 * Persistent, content-addressed campaign result cache.
 *
 * Every Monte-Carlo cell in the repository is a pure function of its
 * canonical description — (scheme spec, fault spec, trials, seed) for
 * injection campaigns, (model params, trials, seed) for yield sweeps,
 * (scheme, geometry, objective) for analytic cost cells — because all
 * randomness is counter-seeded (common/parallel.hh). That purity makes
 * cell results memoizable at campaign level: the cache keys each cell
 * by a StableHash of its canonical key string plus a format-version
 * salt, and stores the *raw numeric outcome* (never formatted table
 * strings), so a repeated figure run or a design-space search replays
 * in milliseconds instead of re-running the Monte Carlo.
 *
 * Two tiers:
 *  - an in-memory map, always on, shared by every campaign in the
 *    process (thread-safe; campaign cells evaluate under parallelFor);
 *  - an optional on-disk store (--cache-dir / TDC_CACHE_DIR), one
 *    small file per entry named by the key digest, written atomically
 *    via rename so concurrent writer processes sharing a directory
 *    never observe torn entries.
 *
 * Entry files are versioned and self-verifying (magic + salt + full
 * key echo + checksum). A corrupt, truncated, stale-version, or
 * digest-colliding entry is counted and silently treated as a miss —
 * the cell recomputes and the entry is rewritten. Cached results are
 * bit-identical to cold results by construction at any TDC_THREADS x
 * TDC_SIMD setting, because what is stored is exactly the value the
 * pure evaluator returns.
 */

#ifndef TDC_RELIABILITY_RESULT_CACHE_HH
#define TDC_RELIABILITY_RESULT_CACHE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace tdc
{

/** Outcome counters of one injection campaign (summed in trial order).
 *  Lives here (not in scheme/) so the cache and the campaign grid can
 *  carry raw outcomes without depending on the scheme registry. */
struct InjectionOutcome
{
    int trials = 0;
    /** Array repaired and every word read back equal to the golden data. */
    int corrected = 0;
    /** Not repaired, but every wrong word was flagged (no silent loss). */
    int detectedOnly = 0;
    /** At least one word read back wrong without any error flagged. */
    int silent = 0;

    /** Coverage verdict string used by the figure tables. */
    std::string verdict() const;

    /** Verdict plus the corrected/trials ratio ("corrected 50/50"). */
    std::string summary() const;

    bool operator==(const InjectionOutcome &) const = default;
};

/** Running cache counters (monotonic per ResultCache instance). */
struct CacheStats
{
    uint64_t memoryHits = 0;
    uint64_t diskHits = 0;
    uint64_t misses = 0;
    uint64_t stored = 0;   ///< entries written to the disk tier
    uint64_t corrupt = 0;  ///< corrupt/stale/mismatched entries dropped

    uint64_t hits() const { return memoryHits + diskHits; }

    /** One-line human summary ("3 hits (2 memory, 1 disk), ..."). */
    std::string describe() const;

    bool operator==(const CacheStats &) const = default;
};

/**
 * The two-tier content-addressed cache. Values are small generic
 * records (integer counters + IEEE-754-exact doubles) so injection
 * outcomes, yield fractions, and cost-model triples all share one
 * store and one on-disk format.
 */
class ResultCache
{
  public:
    /** Disk-format version salt: bump on any change to the entry
     *  layout or to the meaning of any cached value. Old entries are
     *  then detected stale and silently recomputed. */
    static constexpr uint32_t kFormatVersion = 1;

    /** Generic cached payload. */
    struct Record
    {
        std::vector<int64_t> ints;
        std::vector<double> reals;

        bool operator==(const Record &) const = default;
    };

    /** @p dir enables the disk tier ("" = in-memory only). */
    explicit ResultCache(std::string dir = "");

    /** Point the disk tier at @p dir (created on first store; "" turns
     *  the disk tier off). The in-memory tier is unaffected. */
    void setDirectory(std::string dir);

    /** Active disk-tier directory ("" when off). */
    std::string directory() const;

    /** Look @p key up in memory, then on disk. */
    std::optional<Record> lookup(const std::string &key);

    /** Store in memory and (when enabled) on disk. */
    void store(const std::string &key, const Record &record);

    /**
     * Memoize: return the cached record for @p key, or run
     * @p compute, store its result, and return it. @p compute must be
     * a pure function of the key. Safe to call concurrently (two
     * racing threads may both compute; both store the identical
     * record).
     */
    Record memoize(const std::string &key,
                   const std::function<Record()> &compute);

    /** memoize() specialized to injection outcomes. */
    InjectionOutcome
    outcome(const std::string &key,
            const std::function<InjectionOutcome()> &compute);

    /**
     * memoize() specialized to a fixed-width vector of doubles (e.g. a
     * cost-model triple). A cached record whose width differs from
     * @p count is treated as corrupt and recomputed.
     */
    std::vector<double>
    reals(const std::string &key, size_t count,
          const std::function<std::vector<double>()> &compute);

    CacheStats stats() const;

    /** Zero the counters (the entries stay). */
    void resetStats();

    /** Drop the in-memory tier (the disk tier stays). Tests use this
     *  to model a fresh process against a warm directory. */
    void clearMemory();

    /** The on-disk file name (digest + extension) @p key maps to. */
    static std::string entryFileName(const std::string &key);

  private:
    std::optional<Record> loadFromDisk(const std::string &key);
    void storeToDisk(const std::string &key, const Record &record);

    mutable std::mutex mutex_;
    std::string dir_;
    std::unordered_map<std::string, Record> memory_;
    CacheStats stats_;
};

/**
 * The process-wide cache every campaign layer shares. Its disk tier
 * starts at $TDC_CACHE_DIR when that is set and non-empty, else off;
 * the tdc_run --cache-dir flag re-points it via setDirectory().
 */
ResultCache &resultCache();

/**
 * Canonical cache key of one injection-campaign cell. The scheme and
 * fault strings must be *canonical* specs (ProtectionScheme::spec(),
 * FaultModel::spec()) so equivalent spellings share an entry.
 */
std::string injectionCacheKey(const std::string &scheme_spec,
                              const std::string &fault_spec, int trials,
                              uint64_t seed);

} // namespace tdc

#endif // TDC_RELIABILITY_RESULT_CACHE_HH
