#include "ecc/interleaved_parity.hh"

#include <cassert>

#include "common/cpu_features.hh"

namespace tdc
{

InterleavedParityCode::InterleavedParityCode(size_t data_bits, size_t n)
    : k(data_bits), numClasses(n), wordParallel(n <= 64 && 64 % n == 0)
{
    assert(k > 0);
    assert(numClasses > 0);
    assert(numClasses <= k);
}

uint64_t
InterleavedParityCode::foldClasses(const uint64_t *words, size_t nbits) const
{
    // Bit p of word w belongs to class (64w + p) mod n = p mod n when
    // n divides 64, so the words can be XOR-folded together first and
    // the 64-bit accumulator halved down to n bits afterwards. The
    // word fold vectorizes on the AVX2 tier once the operand is wide
    // enough to fill a 256-bit lane (the L2 geometries).
    uint64_t acc = 0;
    const size_t full = nbits / 64;
    if (full >= 4 && simdAvx2Active()) {
        acc = simd::xorFoldAvx2(words, full);
    } else {
        for (size_t w = 0; w < full; ++w)
            acc ^= words[w];
    }
    const size_t rem = nbits % 64;
    if (rem != 0)
        acc ^= words[full] & ((uint64_t(1) << rem) - 1);
    for (size_t width = 64; width > numClasses; width /= 2)
        acc ^= acc >> (width / 2);
    return numClasses < 64 ? acc & ((uint64_t(1) << numClasses) - 1) : acc;
}

BitVector
InterleavedParityCode::computeCheck(const BitVector &data) const
{
    assert(data.size() == k);
    if (wordParallel)
        return BitVector(numClasses, foldClasses(data.wordData(), k));

    BitVector check(numClasses);
    for (size_t i = 0; i < k; ++i) {
        if (data.get(i))
            check.flip(i % numClasses);
    }
    return check;
}

uint64_t
InterleavedParityCode::syndromeBits(const BitVector &codeword) const
{
    // Recomputed check over the data region XOR the stored check bits.
    return foldClasses(codeword.wordData(), k) ^
           codeword.toUint64(k, numClasses);
}

BitVector
InterleavedParityCode::syndrome(const BitVector &codeword) const
{
    assert(codeword.size() == codewordBits());
    if (wordParallel)
        return BitVector(numClasses, syndromeBits(codeword));

    BitVector syn = computeCheck(codeword.slice(0, k));
    syn ^= codeword.slice(k, numClasses);
    return syn;
}

bool
InterleavedParityCode::syndromeClean(const BitVector &codeword) const
{
    // The allocation-free predicate is an accelerated-tier upgrade;
    // the scalar tier keeps the reference decode path so the two can
    // be differential-tested (and benchmarked) against each other.
    assert(codeword.size() == codewordBits());
    if (wordParallel && simdBmi2Active())
        return syndromeBits(codeword) == 0;
    return Code::syndromeClean(codeword);
}

DecodeResult
InterleavedParityCode::decode(const BitVector &codeword) const
{
    assert(codeword.size() == codewordBits());
    DecodeResult result;
    result.data = codeword.slice(0, k);
    const bool clean = wordParallel ? syndromeBits(codeword) == 0
                                    : syndrome(codeword).none();
    result.status = clean ? DecodeStatus::kClean
                          : DecodeStatus::kDetectedUncorrectable;
    return result;
}

std::string
InterleavedParityCode::name() const
{
    return "EDC" + std::to_string(numClasses) + " (" +
           std::to_string(codewordBits()) + "," + std::to_string(k) + ")";
}

} // namespace tdc
