#include "ecc/interleaved_parity.hh"

#include <cassert>

namespace tdc
{

InterleavedParityCode::InterleavedParityCode(size_t data_bits, size_t n)
    : k(data_bits), numClasses(n)
{
    assert(k > 0);
    assert(numClasses > 0);
    assert(numClasses <= k);
}

BitVector
InterleavedParityCode::computeCheck(const BitVector &data) const
{
    assert(data.size() == k);
    BitVector check(numClasses);
    for (size_t i = 0; i < k; ++i) {
        if (data.get(i))
            check.flip(i % numClasses);
    }
    return check;
}

BitVector
InterleavedParityCode::syndrome(const BitVector &codeword) const
{
    assert(codeword.size() == codewordBits());
    BitVector syn = computeCheck(codeword.slice(0, k));
    syn ^= codeword.slice(k, numClasses);
    return syn;
}

DecodeResult
InterleavedParityCode::decode(const BitVector &codeword) const
{
    DecodeResult result;
    result.data = codeword.slice(0, k);
    result.status = syndrome(codeword).none()
                        ? DecodeStatus::kClean
                        : DecodeStatus::kDetectedUncorrectable;
    return result;
}

std::string
InterleavedParityCode::name() const
{
    return "EDC" + std::to_string(numClasses) + " (" +
           std::to_string(codewordBits()) + "," + std::to_string(k) + ")";
}

} // namespace tdc
