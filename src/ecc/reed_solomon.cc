#include "ecc/reed_solomon.hh"

#include <stdexcept>
#include <string>

namespace tdc
{

SymbolRsCode::SymbolRsCode(unsigned symbol_bits, size_t data_symbols)
    : field_(symbol_bits), data_(data_symbols)
{
    if (data_symbols == 0)
        throw std::invalid_argument(
            "SymbolRsCode: data_symbols must be >= 1");
    if (data_symbols + kCheckSymbols > field_.order())
        throw std::invalid_argument(
            "SymbolRsCode: " + std::to_string(data_symbols) +
            " data symbols do not fit GF(2^" +
            std::to_string(symbol_bits) + ") (n <= " +
            std::to_string(field_.order()) + ")");
}

void
SymbolRsCode::syndromes(const std::vector<uint32_t> &word,
                        uint32_t s[kCheckSymbols]) const
{
    // S_j = word(alpha^j), evaluated by Horner from the top symbol.
    for (size_t j = 0; j < kCheckSymbols; ++j) {
        const uint32_t x = field_.alphaPow(int64_t(j));
        uint32_t acc = 0;
        for (size_t i = word.size(); i-- > 0;)
            acc = field_.add(field_.mul(acc, x), word[i]);
        s[j] = acc;
    }
}

void
SymbolRsCode::encode(std::vector<uint32_t> &word) const
{
    // Solve the 3x3 Vandermonde system (nodes 1, alpha, alpha^2) for
    // the check symbols c0..c2 so that all three syndromes vanish:
    //   c0 +       c1 +         c2 = D0
    //   c0 + alpha c1 + alpha^2 c2 = D1
    //   c0 + a^2  c1 +  a^4    c2 = D2
    // where D_j is the data contribution to syndrome j. With
    // u = alpha + 1 (char 2), elimination gives
    //   c2 = (u*E1 + E2) / (u^3 + u^4),  E_j = D_j + D0,
    //   c1 = (E1 + c2*u^2) / u,  c0 = D0 + c1 + c2.
    uint32_t d[kCheckSymbols];
    for (size_t j = 0; j < kCheckSymbols; ++j) {
        const uint32_t x = field_.alphaPow(int64_t(j));
        uint32_t acc = 0;
        for (size_t i = word.size(); i-- > kCheckSymbols;)
            acc = field_.add(field_.mul(acc, x), word[i]);
        // Horner above stops at position 3; scale by x^3 explicitly.
        d[j] = field_.mul(acc, field_.pow(x, int64_t(kCheckSymbols)));
    }
    const uint32_t u = field_.add(field_.alphaPow(1), 1);
    const uint32_t u2 = field_.sqr(u);
    const uint32_t e1 = field_.add(d[1], d[0]);
    const uint32_t e2 = field_.add(d[2], d[0]);
    const uint32_t denom =
        field_.add(field_.mul(u2, u), field_.sqr(u2)); // u^3 + u^4
    const uint32_t c2 =
        field_.div(field_.add(field_.mul(u, e1), e2), denom);
    const uint32_t c1 = field_.div(field_.add(e1, field_.mul(c2, u2)), u);
    word[0] = field_.add(d[0], field_.add(c1, c2));
    word[1] = c1;
    word[2] = c2;
}

bool
SymbolRsCode::syndromeClean(const std::vector<uint32_t> &word) const
{
    uint32_t s[kCheckSymbols];
    syndromes(word, s);
    return s[0] == 0 && s[1] == 0 && s[2] == 0;
}

SymbolDecodeResult
SymbolRsCode::decode(std::vector<uint32_t> &word) const
{
    SymbolDecodeResult res;
    uint32_t s[kCheckSymbols];
    syndromes(word, s);
    if (s[0] == 0 && s[1] == 0 && s[2] == 0)
        return res;

    // Single-error signature: S0 = e, S1 = e*a^p, S2 = e*a^2p with
    // e != 0 and p inside the shortened codeword. Any double error
    // misses this signature (distance 4), so it lands in detected.
    if (s[0] != 0 && s[1] != 0) {
        const uint32_t ratio = field_.div(s[1], s[0]); // alpha^p
        const size_t p = field_.log(ratio);
        if (p < codeSymbols() && field_.mul(s[1], ratio) == s[2]) {
            word[p] = field_.add(word[p], s[0]);
            res.status = DecodeStatus::kCorrected;
            res.corrections.push_back({p, s[0]});
            return res;
        }
    }
    res.status = DecodeStatus::kDetectedUncorrectable;
    return res;
}

SymbolDecodeResult
SymbolRsCode::decodeErasure(std::vector<uint32_t> &word,
                            size_t erasure) const
{
    SymbolDecodeResult res;
    uint32_t s[kCheckSymbols];
    syndromes(word, s);
    if (s[0] == 0 && s[1] == 0 && s[2] == 0)
        return res;

    const uint32_t ap = field_.alphaPow(int64_t(erasure));

    // Hypothesis 1: the erased symbol is the only one in error.
    if (s[0] != 0 && field_.mul(s[0], ap) == s[1] &&
        field_.mul(s[1], ap) == s[2]) {
        word[erasure] = field_.add(word[erasure], s[0]);
        res.status = DecodeStatus::kCorrected;
        res.corrections.push_back({erasure, s[0]});
        return res;
    }

    // Hypothesis 2: erasure value e_p at p plus one unknown error e_q
    // at q (1 erasure + 1 error <= d - 1). Eliminating e_p:
    //   T1 = S1 + a^p S0 = e_q (a^q + a^p)
    //   T2 = S2 + a^p S1 = e_q a^q (a^q + a^p)
    // so a^q = T2 / T1; the remaining system is then consistent by
    // construction, leaving only the position-validity checks.
    const uint32_t t1 = field_.add(s[1], field_.mul(ap, s[0]));
    const uint32_t t2 = field_.add(s[2], field_.mul(ap, s[1]));
    if (t1 != 0 && t2 != 0) {
        const uint32_t aq = field_.div(t2, t1);
        const size_t q = field_.log(aq);
        if (q < codeSymbols() && q != erasure) {
            const uint32_t eq = field_.div(t1, field_.add(aq, ap));
            const uint32_t ep = field_.add(s[0], eq);
            word[q] = field_.add(word[q], eq);
            res.corrections.push_back({q, eq});
            if (ep != 0) {
                word[erasure] = field_.add(word[erasure], ep);
                res.corrections.push_back({erasure, ep});
            }
            res.status = DecodeStatus::kCorrected;
            return res;
        }
    }
    res.status = DecodeStatus::kDetectedUncorrectable;
    return res;
}

SymbolDecodeResult
SymbolRsCode::decodeNaive(std::vector<uint32_t> &word) const
{
    SymbolDecodeResult res;
    if (syndromeClean(word))
        return res;
    for (size_t p = 0; p < codeSymbols(); ++p) {
        for (uint32_t e = 1; e < field_.size(); ++e) {
            word[p] = field_.add(word[p], e);
            if (syndromeClean(word)) {
                res.status = DecodeStatus::kCorrected;
                res.corrections.push_back({p, e});
                return res;
            }
            word[p] = field_.add(word[p], e);
        }
    }
    res.status = DecodeStatus::kDetectedUncorrectable;
    return res;
}

} // namespace tdc
