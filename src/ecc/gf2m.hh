/**
 * @file
 * Finite-field arithmetic over GF(2^m), 3 <= m <= 12, via log/antilog
 * tables. Substrate for the BCH codecs.
 */

#ifndef TDC_ECC_GF2M_HH
#define TDC_ECC_GF2M_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdc
{

/**
 * GF(2^m) built from a fixed primitive polynomial per m. Elements are
 * represented as integers 0..2^m-1 (polynomial basis). alpha = 2 is a
 * primitive element.
 */
class GF2m
{
  public:
    explicit GF2m(unsigned m);

    unsigned degree() const { return m; }

    /** Field size 2^m. */
    uint32_t size() const { return fieldSize; }

    /** Multiplicative group order 2^m - 1. */
    uint32_t order() const { return fieldSize - 1; }

    /** Field addition = XOR. */
    uint32_t add(uint32_t a, uint32_t b) const { return a ^ b; }

    uint32_t mul(uint32_t a, uint32_t b) const;
    uint32_t inv(uint32_t a) const;
    uint32_t div(uint32_t a, uint32_t b) const;

    /** alpha^e for any integer exponent (reduced mod order). */
    uint32_t alphaPow(int64_t e) const;

    /**
     * alpha^e for an already-reduced exponent 0 <= e < 2*order():
     * a single table read, no modular reduction. The decode hot loops
     * (Chien sweep, syndrome squaring chains) maintain exponents in
     * this range themselves.
     */
    uint32_t expDirect(uint32_t e) const { return expTable[e]; }

    /** Discrete log base alpha. @pre a != 0 */
    uint32_t log(uint32_t a) const;

    /** a^e for field element a. */
    uint32_t pow(uint32_t a, int64_t e) const;

    /** a^2: one log and one exp read (Frobenius map). */
    uint32_t sqr(uint32_t a) const
    {
        return a == 0 ? 0 : expTable[2 * logTable[a]];
    }

    /**
     * Unique square root (the Frobenius map is a bijection in
     * characteristic 2): sqrt(a) = a^((2^m - 1 + 1) / 2) via
     * log/antilog — the group order is odd, so (order + 1) / 2
     * inverts doubling mod order.
     */
    uint32_t sqrt(uint32_t a) const
    {
        if (a == 0)
            return 0;
        return expTable[uint32_t(uint64_t(logTable[a]) *
                                 ((order() + 1) / 2) % order())];
    }

    /**
     * Batch scale: out[i] = a * in[i] for i in [0, n). The log of
     * @p a is hoisted out of the loop, so each element costs one log
     * and one exp table read. Aliasing out == in is allowed.
     */
    void mulColumn(uint32_t a, const uint32_t *in, uint32_t *out,
                   size_t n) const;

    /** Sentinel returned by solveQuadratic when no root exists. */
    static constexpr uint32_t kNoRoot = 0xFFFFFFFFu;

    /**
     * The smaller root y of y^2 + y = c (the other is y ^ 1), or
     * kNoRoot when c has no such decomposition (odd trace). One table
     * read; the backbone of the closed-form quadratic/cubic error
     * locators.
     */
    uint32_t solveQuadratic(uint32_t c) const { return qrtTable[c]; }

    /** The primitive polynomial used (bit i = coefficient of x^i). */
    uint32_t primitivePoly() const { return primPoly; }

  private:
    unsigned m;
    uint32_t fieldSize;
    uint32_t primPoly;
    std::vector<uint32_t> expTable; // expTable[i] = alpha^i, 0..2*order
    std::vector<uint32_t> logTable; // logTable[a] = log_alpha(a)
    std::vector<uint32_t> qrtTable; // qrtTable[c] = min y: y^2+y=c
};

/**
 * Polynomial over GF(2^m), coefficient i = coeff of x^i. Minimal
 * operations needed by BCH generator construction and decoding.
 */
class GFPoly
{
  public:
    GFPoly() = default;
    explicit GFPoly(std::vector<uint32_t> coeffs);

    /** Degree; the zero polynomial reports degree 0. */
    size_t degree() const;

    uint32_t coeff(size_t i) const { return i < c.size() ? c[i] : 0; }
    void setCoeff(size_t i, uint32_t value);

    bool isZero() const;

    /** Evaluate at @p x using Horner's rule. */
    uint32_t eval(const GF2m &field, uint32_t x) const;

    static GFPoly add(const GFPoly &a, const GFPoly &b);
    static GFPoly mul(const GF2m &field, const GFPoly &a, const GFPoly &b);

    /** Formal derivative (char 2: even-power terms vanish). */
    GFPoly derivative() const;

    const std::vector<uint32_t> &coeffs() const { return c; }

  private:
    void trim();
    std::vector<uint32_t> c;
};

} // namespace tdc

#endif // TDC_ECC_GF2M_HH
